// Reproduction of the paper's **Figure 1**: the two basic approaches to
// analog circuit synthesis — (a) knowledge-based design-plan execution and
// (b) optimization-based search around a performance evaluator — plus the
// evaluator subcategories of section 2.2 (equation-based, simulation-based,
// and the ASTRX/OBLX relaxed-dc middle road).
//
// Fig. 1 itself is a schematic; the quantitative claim behind it is the
// trade the text spells out: plans execute in microseconds but are rigid,
// optimization is open to new specs/schematics but costs orders of magnitude
// more evaluations.  We run all engines on the same spec grid and tabulate
// success, quality, and cost.
#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>

#include "core/report.hpp"
#include "core/runreport.hpp"
#include "knowledge/opamp_plans.hpp"
#include "sizing/eqmodel.hpp"
#include "sizing/relaxed.hpp"
#include "sizing/simmodel.hpp"
#include "sizing/synth.hpp"
#include "topology/genetic.hpp"
#include "topology/library.hpp"
#include "topology/select.hpp"

namespace {
using namespace amsyn;
using Clock = std::chrono::steady_clock;

struct SpecPoint {
  double gainDb, ugf, pm, slew;
};

const std::vector<SpecPoint> kGrid = {
    {60, 2e6, 60, 2e6},  {65, 5e6, 60, 5e6},   {70, 3e6, 55, 3e6},
    {70, 1e7, 55, 1e7},  {75, 5e6, 60, 5e6},   {65, 2e7, 55, 2e7},
};

sizing::SpecSet specSetFor(const SpecPoint& p) {
  sizing::SpecSet s;
  s.atLeast("gain_db", p.gainDb)
      .atLeast("ugf", p.ugf)
      .atLeast("pm", p.pm)
      .atLeast("slew", p.slew)
      .minimize("power", 0.5, 1e-3);
  return s;
}

void printComparison() {
  const auto& proc = circuit::defaultProcess();
  std::cout << "=== Figure 1: knowledge-based vs optimization-based synthesis ===\n";
  std::cout << "(two-stage opamp, " << kGrid.size() << "-point spec grid; plan = Fig. 1a,\n";
  std::cout << " eq-opt / relaxed-dc / sim-opt = Fig. 1b with the section-2.2 evaluators)\n\n";

  core::Table t({"engine", "solved", "avg power (mW)", "avg evals", "avg time (ms)"});

  // --- Fig. 1a: design-plan execution ---
  {
    std::size_t solved = 0;
    double power = 0, timeMs = 0, evals = 0;
    for (const auto& sp : kGrid) {
      const auto t0 = Clock::now();
      const auto plan = knowledge::twoStageOpampPlan();
      const auto res = plan.execute(proc, {{"spec.gain_db", sp.gainDb},
                                           {"spec.ugf", sp.ugf},
                                           {"spec.pm", sp.pm},
                                           {"spec.slew", sp.slew},
                                           {"spec.cload", 5e-12}});
      timeMs += std::chrono::duration<double, std::milli>(Clock::now() - t0).count();
      evals += static_cast<double>(res.trace.size());
      if (!res.success) continue;
      sizing::TwoStageEquationModel model(proc, 5e-12);
      const auto perf = model.evaluate(knowledge::extractTwoStageDesign(res.context));
      if (specSetFor(sp).satisfied(perf, 0.02)) {
        ++solved;
        power += perf.at("power");
      }
    }
    t.addRow({"design plan (IDAC/OASYS)",
              std::to_string(solved) + "/" + std::to_string(kGrid.size()),
              core::Table::num(solved ? power / solved * 1e3 : 0),
              core::Table::num(evals / kGrid.size()),
              core::Table::num(timeMs / kGrid.size())});
  }

  // --- Fig. 1b with the equation evaluator (OPASYN/OPTIMAN) ---
  {
    std::size_t solved = 0;
    double power = 0, timeMs = 0, evals = 0;
    for (std::size_t i = 0; i < kGrid.size(); ++i) {
      sizing::TwoStageEquationModel model(proc, 5e-12);
      sizing::SynthesisOptions opts;
      opts.seed = 100 + i;
      const auto res = sizing::synthesize(model, specSetFor(kGrid[i]), opts);
      timeMs += res.seconds * 1e3;
      evals += static_cast<double>(res.evaluations);
      if (res.feasible) {
        ++solved;
        power += res.performance.at("power");
      }
    }
    t.addRow({"eq-based optimization (OPTIMAN)",
              std::to_string(solved) + "/" + std::to_string(kGrid.size()),
              core::Table::num(solved ? power / solved * 1e3 : 0),
              core::Table::num(evals / kGrid.size()),
              core::Table::num(timeMs / kGrid.size())});
  }

  // --- Fig. 1b with the relaxed-dc AWE evaluator (ASTRX/OBLX) ---
  {
    std::size_t solved = 0;
    double power = 0, timeMs = 0, evals = 0;
    // The relaxed formulation adds the bias unknowns to the search space;
    // run a reduced grid to keep the bench brisk.
    const std::vector<std::size_t> subset = {0, 2};
    for (std::size_t i : subset) {
      auto tmpl = sizing::twoStageTemplate(proc, {});
      sizing::RelaxedDcModel model(std::move(tmpl), proc);
      auto specs = specSetFor(kGrid[i]);
      specs.atMost("_dc_residual", 1e-2, 4.0);
      sizing::SynthesisOptions opts;
      opts.seed = 200 + i;
      opts.anneal.movesPerStage = 600;
      const auto res = sizing::synthesize(model, specs, opts);
      timeMs += res.seconds * 1e3;
      evals += static_cast<double>(res.evaluations);
      if (res.feasible) {
        ++solved;
        power += res.performance.at("power");
      }
    }
    t.addRow({"relaxed-dc + AWE (ASTRX/OBLX)",
              std::to_string(solved) + "/" + std::to_string(subset.size()),
              core::Table::num(solved ? power / solved * 1e3 : 0),
              core::Table::num(evals / subset.size()),
              core::Table::num(timeMs / subset.size())});
  }

  // --- Fig. 1b with the full-simulation evaluator (FRIDGE) ---
  {
    std::size_t solved = 0;
    double power = 0, timeMs = 0, evals = 0;
    const std::vector<std::size_t> subset = {0, 2};
    for (std::size_t i : subset) {
      auto tmpl = sizing::twoStageTemplate(proc, {});
      sizing::SimulationModel model(std::move(tmpl), proc);
      sizing::SynthesisOptions opts;
      opts.seed = 300 + i;
      opts.anneal.movesPerStage = 96;  // full SPICE per move: keep it honest but finite
      opts.anneal.stagnationStages = 6;
      opts.refineEvaluations = 120;
      const auto res = sizing::synthesize(model, specSetFor(kGrid[i]), opts);
      timeMs += res.seconds * 1e3;
      evals += static_cast<double>(res.evaluations);
      if (res.feasible) {
        ++solved;
        power += res.performance.at("power");
      }
    }
    t.addRow({"simulation-based (FRIDGE)",
              std::to_string(solved) + "/" + std::to_string(subset.size()),
              core::Table::num(solved ? power / solved * 1e3 : 0),
              core::Table::num(evals / subset.size()),
              core::Table::num(timeMs / subset.size())});
  }

  t.print(std::cout);
  std::cout << "\nreading: the plan solves its covered specs in a handful of steps and\n"
               "sub-millisecond time but cannot trade the objective; the optimizers pay\n"
               "hundreds-to-thousands of evaluations for openness, with cost per\n"
               "evaluation rising equation -> AWE -> full simulation, exactly the\n"
               "trajectory section 2.2 describes.\n\n";
}

/// Candidate-space scaling: selection cost over the hand-written 2-entry
/// library vs the generated composition space (topology/compose.hpp), with
/// the numbers behind the table exported to BENCH_fig1_approaches.json so
/// trend tracking catches both a shrinking space (lost compositions) and a
/// selection-time regression.
void printGeneratedSpace() {
  const auto& proc = circuit::defaultProcess();
  const double loadCap = 5e-12;
  const auto specs = specSetFor(kGrid[2]);  // 70 dB / 3 MHz: mid-grid point

  const auto tLegacy0 = Clock::now();
  const auto legacy = topology::amplifierLibrary(proc, loadCap, topology::TopologySpace::Legacy);
  const double legacyBuildS =
      std::chrono::duration<double>(Clock::now() - tLegacy0).count();

  // First build pays bounds sampling over every composed structure; the
  // second hits the (process, loadCap) memo — both are worth watching.
  const auto tGen0 = Clock::now();
  const auto gen =
      topology::amplifierLibrary(proc, loadCap, topology::TopologySpace::Generated);
  const double genBuildS = std::chrono::duration<double>(Clock::now() - tGen0).count();
  const auto tGen1 = Clock::now();
  const auto genAgain =
      topology::amplifierLibrary(proc, loadCap, topology::TopologySpace::Generated);
  const double genMemoS = std::chrono::duration<double>(Clock::now() - tGen1).count();
  benchmark::DoNotOptimize(genAgain.size());

  struct Timing {
    double intervalS = 0, ruleS = 0, geneticS = 0;
    std::string geneticWinner;
  };
  auto timeSelection = [&](const topology::TopologyLibrary& lib) {
    Timing tm;
    const auto t0 = Clock::now();
    const auto iv = topology::intervalSelect(lib, specs);
    tm.intervalS = std::chrono::duration<double>(Clock::now() - t0).count();
    benchmark::DoNotOptimize(iv.size());
    const auto t1 = Clock::now();
    const auto rb = topology::ruleBasedSelect(lib, specs);
    tm.ruleS = std::chrono::duration<double>(Clock::now() - t1).count();
    benchmark::DoNotOptimize(rb.size());
    topology::GeneticOptions gopts;
    gopts.seed = 5;
    gopts.populationSize = 24;
    gopts.generations = 20;
    const auto t2 = Clock::now();
    const auto gres = topology::geneticSelectAndSize(lib, specs, gopts);
    tm.geneticS = std::chrono::duration<double>(Clock::now() - t2).count();
    tm.geneticWinner = gres.topology;
    return tm;
  };
  const Timing lt = timeSelection(legacy);
  const Timing gt = timeSelection(gen);

  std::cout << "=== Candidate space: hand-written menu vs generated composition ===\n\n";
  core::Table t({"space", "entries", "build (ms)", "interval (us)", "rules (us)",
                 "genetic (ms)"});
  t.addRow({"legacy menu", std::to_string(legacy.size()), core::Table::num(legacyBuildS * 1e3),
            core::Table::num(lt.intervalS * 1e6), core::Table::num(lt.ruleS * 1e6),
            core::Table::num(lt.geneticS * 1e3)});
  t.addRow({"generated (blocks)", std::to_string(gen.size()), core::Table::num(genBuildS * 1e3),
            core::Table::num(gt.intervalS * 1e6), core::Table::num(gt.ruleS * 1e6),
            core::Table::num(gt.geneticS * 1e3)});
  t.print(std::cout);
  std::cout << "memoized rebuild: " << core::Table::num(genMemoS * 1e3)
            << " ms; genetic winners: legacy=" << lt.geneticWinner
            << ", generated=" << gt.geneticWinner << "\n\n";

  core::RunReport report;
  report.name = "fig1_approaches";
  report.addInfo("benchmark", "fig1_approaches");
  report.addValue("legacy_space_size", static_cast<double>(legacy.size()))
      .addValue("candidate_space_size", static_cast<double>(gen.size()))
      .addValue("generated_build_seconds", genBuildS)
      .addValue("generated_memo_rebuild_seconds", genMemoS)
      .addValue("legacy_interval_select_seconds", lt.intervalS)
      .addValue("legacy_rule_select_seconds", lt.ruleS)
      .addValue("legacy_genetic_seconds", lt.geneticS)
      .addValue("generated_interval_select_seconds", gt.intervalS)
      .addValue("generated_rule_select_seconds", gt.ruleS)
      .addValue("generated_genetic_seconds", gt.geneticS);
  report.write("BENCH_fig1_approaches.json");
  std::cout << "wrote BENCH_fig1_approaches.json: " << gen.size()
            << " generated candidates vs " << legacy.size() << " hand-written\n\n";
}

void BM_PlanExecution(benchmark::State& state) {
  const auto& proc = circuit::defaultProcess();
  const auto plan = knowledge::twoStageOpampPlan();
  for (auto _ : state) {
    const auto res = plan.execute(proc, {{"spec.gain_db", 70},
                                         {"spec.ugf", 5e6},
                                         {"spec.pm", 60},
                                         {"spec.slew", 5e6},
                                         {"spec.cload", 5e-12}});
    benchmark::DoNotOptimize(res.success);
  }
}
BENCHMARK(BM_PlanExecution)->Unit(benchmark::kMicrosecond);

void BM_EquationSynthesis(benchmark::State& state) {
  const auto& proc = circuit::defaultProcess();
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sizing::TwoStageEquationModel model(proc, 5e-12);
    sizing::SynthesisOptions opts;
    opts.seed = seed++;
    const auto res = sizing::synthesize(model, specSetFor(kGrid[0]), opts);
    benchmark::DoNotOptimize(res.cost);
  }
}
BENCHMARK(BM_EquationSynthesis)->Unit(benchmark::kMillisecond);

}  // namespace

int main(int argc, char** argv) {
  printComparison();
  printGeneratedSpace();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
