// Ablation studies over amsyn's own design choices (DESIGN.md section 4):
// the quantitative justification for the mechanisms the surveyed tools
// introduced.  Each ablation switches one mechanism off and measures what
// the paper says it buys:
//   1. device stacking [43,45]      -> cell area & wiring
//   2. symmetric-pair placement     -> symmetry error of the diff pair
//   3. OAC-style warm starts [25]   -> evaluations to re-solve nearby specs
//   4. feasibility push (penalty-gap closing) -> spec satisfaction
//   5. RAIL bypass synthesis        -> supply spike with metal-only sizing
#include <benchmark/benchmark.h>

#include <iostream>

#include "core/celllayout.hpp"
#include "layout/cell/modgen.hpp"
#include "core/report.hpp"
#include "power/rail.hpp"
#include "sizing/database.hpp"
#include "sizing/eqmodel.hpp"
#include "sizing/opamp.hpp"
#include "sizing/pulse.hpp"

namespace {
using namespace amsyn;
const circuit::Process& proc() { return circuit::defaultProcess(); }

void ablationStacking() {
  std::cout << "--- ablation 1: device stacking (refs [43],[45]) ---\n";
  const auto net = sizing::buildTwoStageOpamp(sizing::TwoStageParams{}, proc(), {});
  core::CellLayoutOptions on, off;
  on.useStacking = true;
  on.annealPlacement = false;
  off.useStacking = false;
  off.annealPlacement = false;
  const auto rOn = core::layoutCell(net, proc(), on);
  const auto rOff = core::layoutCell(net, proc(), off);
  core::Table t({"stacking", "area (klambda^2)", "wire (lambda)", "devices merged"});
  t.addRow({"on", core::Table::num(rOn.areaLambda2 / 1e3),
            core::Table::num(rOn.wirelengthLambda), std::to_string(rOn.stackedDevices)});
  t.addRow({"off", core::Table::num(rOff.areaLambda2 / 1e3),
            core::Table::num(rOff.wirelengthLambda), std::to_string(rOff.stackedDevices)});
  t.print(std::cout);
  std::cout << "\n";
}

void ablationSymmetry() {
  std::cout << "--- ablation 2: symmetric-pair placement cost term ---\n";
  std::vector<layout::PlacementComponent> comps;
  circuit::MosParams mp{circuit::MosType::Nmos, 20e-6, 2e-6, 1, 0.0, 1.0};
  for (int i = 0; i < 2; ++i) {
    layout::PlacementComponent c;
    c.name = i == 0 ? "M1" : "M2";
    c.variants = {layout::generateMos(c.name, mp, i == 0 ? "n1" : "n2",
                                      i == 0 ? "inp" : "inn", "tail", "0", proc())};
    c.symmetryPeer = i == 0 ? "M2" : "M1";
    comps.push_back(std::move(c));
  }
  {
    layout::PlacementComponent c;
    c.name = "M5";
    c.variants = {layout::generateMos("M5", mp, "tail", "nb", "0", "0", proc())};
    comps.push_back(std::move(c));
  }
  core::Table t({"symmetry weight", "symmetry error", "area (klambda^2)"});
  for (double w : {0.0, 2.0, 8.0}) {
    layout::PlacerOptions opts;
    opts.symmetryWeight = w;
    opts.seed = 11;
    const auto p = layout::placeCells(comps, opts);
    t.addRow({core::Table::num(w), core::Table::num(p.symmetryError),
              core::Table::num(static_cast<double>(p.boundingBox.area()) / 1e3)});
  }
  t.print(std::cout);
  std::cout << "\n";
}

void ablationWarmStart() {
  std::cout << "--- ablation 3: OAC-style design-database warm starts [25] ---\n";
  sizing::TwoStageEquationModel model(proc(), 5e-12);
  auto specsAt = [](double gain, double ugf) {
    sizing::SpecSet s;
    s.atLeast("gain_db", gain).atLeast("ugf", ugf).atLeast("pm", 55).minimize("power", 0.5,
                                                                              1e-3);
    return s;
  };
  // Cold: each spec solved from scratch.
  std::size_t coldEvals = 0;
  for (double ugf : {3e6, 3.3e6, 3.6e6}) {
    sizing::SynthesisOptions opts;
    opts.seed = 21;
    const auto r = sizing::synthesize(model, specsAt(66, ugf), opts);
    coldEvals += r.evaluations;
  }
  // Warm: database reuse across the sweep.
  sizing::DesignDatabase db;
  std::size_t warmEvals = 0;
  for (double ugf : {3e6, 3.3e6, 3.6e6}) {
    sizing::SynthesisOptions opts;
    opts.seed = 21;
    const auto r =
        sizing::synthesizeWithDatabase(db, model, specsAt(66, ugf), "pt", opts);
    warmEvals += r.evaluations;
  }
  core::Table t({"strategy", "total evaluations (3-point spec sweep)"});
  t.addRow({"cold start each time", std::to_string(coldEvals)});
  t.addRow({"database warm start", std::to_string(warmEvals)});
  t.print(std::cout);
  std::cout << "\n";
}

void ablationFeasibilityPush() {
  std::cout << "--- ablation 4: feasibility push (penalty-gap closing) ---\n";
  sizing::PulseDetectorModel model(proc());
  sizing::SpecSet specs;
  specs.atMost("peaking_us", 1.5)
      .atLeast("counting_khz", 200.0)
      .atMost("noise_e", 1000.0)
      .atLeast("gain_v_fc", 20.0)
      .atMost("gain_v_fc", 23.0)
      .atLeast("range_v", 1.0)
      .minimize("power", 1.0, 1e-3);
  core::Table t({"feasibility push", "feasible", "power (mW)"});
  for (bool push : {false, true}) {
    sizing::SynthesisOptions opts;
    opts.seed = 11;
    opts.feasibilityPush = push;
    const auto r = sizing::synthesize(model, specs, opts);
    t.addRow({push ? "on" : "off", r.feasible ? "yes" : "NO",
              core::Table::num(r.performance.at("power") * 1e3)});
  }
  t.print(std::cout);
  std::cout << "\n";
}

void ablationBypass() {
  std::cout << "--- ablation 5: RAIL bypass-capacitance synthesis ---\n";
  power::PowerGridSpec spec;
  spec.chip = geom::Rect::fromSize(0, 0, 20000, 20000);
  spec.rows = 6;
  spec.cols = 6;
  spec.vdd = 5.0;
  spec.pads = {{{0, 0}, 0.5, 5e-9}, {{20000, 20000}, 0.5, 5e-9}};
  spec.loads = {{"dsp", geom::Rect::fromSize(1000, 1000, 8000, 8000), 60e-3, 300e-3,
                 2e-9, 400e-12, false},
                {"adc", geom::Rect::fromSize(1000, 12000, 5000, 6000), 8e-3, 0.0, 2e-9,
                 200e-12, true}};
  core::Table t({"bypass synthesis", "constraints met", "worst spike (mV)",
                 "added decap (nF)"});
  for (bool bypass : {false, true}) {
    power::PowerGrid grid(spec, proc());
    power::applyUniformWidth(grid, 2e-6);
    power::RailOptions opts;
    if (!bypass) opts.maxDecapPerBlock = 0.0;  // metal-only sizing
    const auto r = power::synthesizePowerGrid(grid, power::RailConstraints{}, proc(), opts);
    t.addRow({bypass ? "on" : "off", r.constraintsMet ? "yes" : "NO",
              core::Table::num(r.final.worstSpikeVolts * 1e3),
              core::Table::num(r.addedDecapFarads * 1e9)});
  }
  t.print(std::cout);
  std::cout << "\npackage L di/dt sets the spike floor; without bypass synthesis no\n"
               "amount of metal can meet the transient constraint — the reason RAIL\n"
               "treats power distribution as more than a wire-sizing problem.\n\n";
}

void BM_AssembleFullSystem(benchmark::State& state) {
  // End-to-end cell flow as the macro-benchmark.
  const auto net = sizing::buildTwoStageOpamp(sizing::TwoStageParams{}, proc(), {});
  for (auto _ : state) {
    core::CellLayoutOptions opts;
    opts.annealPlacement = false;
    const auto r = core::layoutCell(net, proc(), opts);
    benchmark::DoNotOptimize(r.areaLambda2);
  }
}
BENCHMARK(BM_AssembleFullSystem)->Unit(benchmark::kMillisecond)->Iterations(5);

}  // namespace

int main(int argc, char** argv) {
  std::cout << "=== amsyn design-choice ablations ===\n\n";
  ablationStacking();
  ablationSymmetry();
  ablationWarmStart();
  ablationFeasibilityPush();
  ablationBypass();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
