// Reproduction of the paper's **Figure 2**: "KOAN/ANAGRAM II Cell Layouts.
// Six layouts of the identical CMOS opamp are shown.  The two middle layouts
// are automatic, the rest manual.  The automatic layouts compare favorably
// to the manual ones."
//
// We regenerate the experiment: the identical two-stage CMOS opamp is laid
// out six ways — four deterministic "manual-style" variants (row orderings
// with/without stacking/folding, the procedural strategy of ref [32]) and
// two KOAN/ANAGRAM-style automatic runs (annealed placement + maze routing,
// different seeds) — and compared on the quantitative axes a layout
// photograph encodes: area, wirelength, routing completion, crosstalk
// exposure, and diffusion merging.
#include <benchmark/benchmark.h>

#include <iostream>

#include "core/celllayout.hpp"
#include "core/report.hpp"
#include "sizing/opamp.hpp"

namespace {
using namespace amsyn;

circuit::Netlist theOpamp() {
  sizing::TwoStageParams p;  // the identical opamp for all six layouts
  return sizing::buildTwoStageOpamp(p, circuit::defaultProcess(), {});
}

struct LayoutRun {
  std::string name;
  bool automatic = false;
  core::CellLayoutResult result;
};

LayoutRun runLayout(const std::string& name, bool anneal, bool stacking,
                    std::uint64_t seed) {
  core::CellLayoutOptions opts;
  opts.annealPlacement = anneal;
  opts.useStacking = stacking;
  opts.seed = seed;
  LayoutRun run;
  run.name = name;
  run.automatic = anneal;
  run.result = core::layoutCell(theOpamp(), circuit::defaultProcess(), opts);
  return run;
}

void printFigure2() {
  std::cout << "=== Figure 2: six layouts of the identical CMOS opamp ===\n";
  std::cout << "(paper: 4 manual + 2 automatic KOAN/ANAGRAM II; the automatic layouts\n";
  std::cout << " 'compare favorably to the manual ones')\n\n";

  std::vector<LayoutRun> runs;
  runs.push_back(runLayout("manual-1 (row, stacked)", false, true, 1));
  runs.push_back(runLayout("manual-2 (row, flat)", false, false, 1));
  runs.push_back(runLayout("auto-1 (KOAN/ANAGRAM)", true, true, 3));
  runs.push_back(runLayout("auto-2 (KOAN/ANAGRAM)", true, true, 17));
  runs.push_back(runLayout("manual-3 (row, stacked)", false, true, 2));
  runs.push_back(runLayout("manual-4 (row, flat)", false, false, 2));

  core::Table t({"layout", "area (klambda^2)", "wire (lambda)", "routed", "stacked",
                 "crosstalk (lambda)"});
  double manualArea = 0, autoArea = 0, manualWire = 0, autoWire = 0;
  std::size_t nManual = 0, nAuto = 0;
  for (const auto& r : runs) {
    t.addRow({r.name, core::Table::num(r.result.areaLambda2 / 1e3),
              core::Table::num(r.result.wirelengthLambda),
              r.result.routing.allRouted ? "yes" : "NO",
              std::to_string(r.result.stackedDevices),
              core::Table::num(r.result.routing.crosstalkExposureLambda)});
    if (r.automatic) {
      autoArea += r.result.areaLambda2;
      autoWire += r.result.wirelengthLambda;
      ++nAuto;
    } else {
      manualArea += r.result.areaLambda2;
      manualWire += r.result.wirelengthLambda;
      ++nManual;
    }
  }
  t.print(std::cout);

  std::cout << "\nautomatic / manual area ratio: "
            << core::Table::num(autoArea / nAuto / (manualArea / nManual))
            << "   wire ratio: "
            << core::Table::num(autoWire / nAuto / (manualWire / nManual)) << "\n";
  std::cout << "(a ratio near or below 1 reproduces the paper's 'compare favorably')\n\n";
}

void BM_KoanPlacement(benchmark::State& state) {
  const auto net = theOpamp();
  std::uint64_t seed = 1;
  for (auto _ : state) {
    core::CellLayoutOptions opts;
    opts.annealPlacement = true;
    opts.seed = seed++;
    const auto r = core::layoutCell(net, circuit::defaultProcess(), opts);
    benchmark::DoNotOptimize(r.areaLambda2);
  }
}
BENCHMARK(BM_KoanPlacement)->Unit(benchmark::kMillisecond)->Iterations(3);

void BM_RowLayoutAndRoute(benchmark::State& state) {
  const auto net = theOpamp();
  for (auto _ : state) {
    core::CellLayoutOptions opts;
    opts.annealPlacement = false;
    const auto r = core::layoutCell(net, circuit::defaultProcess(), opts);
    benchmark::DoNotOptimize(r.areaLambda2);
  }
}
BENCHMARK(BM_RowLayoutAndRoute)->Unit(benchmark::kMillisecond)->Iterations(5);

}  // namespace

int main(int argc, char** argv) {
  printFigure2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
