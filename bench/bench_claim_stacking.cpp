// Reproduction of the section-3.1 stacking claims: ref [43] (Malavasi &
// Pandini) gives an exact algorithm that extracts all optimal stacks but
// "can be time-consuming since the underlying algorithm is exponential";
// ref [45] (Basaran & Rutenbar) "extracts one optimal set of stacks very
// fast" — an O(n) method for a placer's inner loop.
//
// We grow a diffusion graph and time both extractors, verifying that the
// heuristic always achieves the same (Euler-optimal) stack count.
#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>

#include "core/report.hpp"
#include "layout/cell/stack.hpp"

namespace {
using namespace amsyn;
using Clock = std::chrono::steady_clock;

/// A ladder-with-rungs diffusion graph of n devices: realistic mix of
/// series chains and shared nodes.
circuit::Netlist ladderNetlist(int n) {
  circuit::Netlist net;
  for (int i = 0; i < n; ++i) {
    const std::string a = "n" + std::to_string(i / 2);
    const std::string b = "n" + std::to_string(i / 2 + 1 + (i % 2));
    net.addMos("M" + std::to_string(i), a, "g" + std::to_string(i), b, "0",
               circuit::MosType::Nmos, 10e-6, 2e-6);
  }
  return net;
}

void printClaim() {
  std::cout << "=== Claim (sec. 3.1): exact stacking is exponential, the O(n)\n";
  std::cout << "    heuristic is fast at equal stack quality (refs [43],[45]) ===\n\n";

  core::Table t({"devices", "min stacks (Euler)", "greedy stacks", "greedy us",
                 "exact us", "exact #solutions"});
  for (int n : {4, 6, 8, 10, 12}) {
    const auto net = ladderNetlist(n);
    const auto graphs = layout::buildDiffusionGraphs(net);
    const auto& g = graphs.front();

    const auto t0 = Clock::now();
    const auto greedy = layout::greedyStacking(g);
    const double greedyUs =
        std::chrono::duration<double, std::micro>(Clock::now() - t0).count();

    const auto t1 = Clock::now();
    const auto exact = layout::enumerateOptimalStackings(g, 64);
    const double exactUs =
        std::chrono::duration<double, std::micro>(Clock::now() - t1).count();

    t.addRow({std::to_string(n), std::to_string(g.minimumStacks()),
              std::to_string(greedy.stacks.size()), core::Table::num(greedyUs),
              core::Table::num(exactUs), std::to_string(exact.size())});
  }
  t.print(std::cout);
  std::cout << "\nreading: the greedy extractor always hits the Euler lower bound (same\n"
               "merge quality as the exact set) while its runtime stays flat; the exact\n"
               "enumerator's cost explodes with device count — which is why [45] put\n"
               "the O(n) version inside the placer's inner loop and reserved [43]'s\n"
               "exhaustive enumeration for small groups.\n\n";
}

void BM_GreedyStacking(benchmark::State& state) {
  const auto net = ladderNetlist(static_cast<int>(state.range(0)));
  const auto graphs = layout::buildDiffusionGraphs(net);
  for (auto _ : state) {
    const auto s = layout::greedyStacking(graphs.front());
    benchmark::DoNotOptimize(s.stacks.size());
  }
}
BENCHMARK(BM_GreedyStacking)->Arg(4)->Arg(8)->Arg(12)->Arg(14);

void BM_ExactStacking(benchmark::State& state) {
  const auto net = ladderNetlist(static_cast<int>(state.range(0)));
  const auto graphs = layout::buildDiffusionGraphs(net);
  for (auto _ : state) {
    const auto s = layout::enumerateOptimalStackings(graphs.front(), 64);
    benchmark::DoNotOptimize(s.size());
  }
}
BENCHMARK(BM_ExactStacking)->Arg(4)->Arg(8)->Arg(12);

}  // namespace

int main(int argc, char** argv) {
  printClaim();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
