// Evaluation-cache effectiveness benchmark (BENCH_cache.json).
//
// The paper's runtime analysis (section 2.2) is dominated by redundant
// candidate evaluations: corner search re-enumerates the same box vertices
// across specs and in the final audit, and genetic selection re-scores
// duplicate genomes.  The process-wide evaluation cache
// (core/evalcache.hpp) short-circuits those repeats; this benchmark
// quantifies the win on the two workloads and — crucially — re-checks the
// cache's contract while doing so: the measured results must be
// bit-identical with the cache on and off.
//
// Workload 1 (headline): simulation-based worst-case corner hunting at a
// fixed design, hunt + audit (the exact shape robustSynthesize runs).  Full
// simulator evaluations cost hundreds of microseconds; a cache hit costs a
// netlist canonicalization plus a hash lookup, so the audit phase runs at
// near-100% hit rate and the overall wall clock should drop well past the
// 1.3x acceptance bar.
//
// Workload 2 (honest floor): genetic topology selection over the
// equation-model library.  Equation evaluations cost ~1 us — the same order
// as a lookup — so this measures the cache's overhead floor rather than a
// win; the number is reported, not asserted.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <iostream>

#include "core/evalcache.hpp"
#include "core/parallel.hpp"
#include "core/report.hpp"
#include "core/runreport.hpp"
#include "manufacture/corners.hpp"
#include "sizing/simmodel.hpp"
#include "topology/genetic.hpp"
#include "topology/library.hpp"

namespace {
using namespace amsyn;

const circuit::Process& nominalProc() { return circuit::defaultProcess(); }

manufacture::ModelFactory simFactory() {
  return [](const circuit::Process& p) -> std::unique_ptr<sizing::PerformanceModel> {
    sizing::SimModelOptions opts;
    opts.measureNoise = false;  // keep a single hunt affordable
    return std::make_unique<sizing::SimulationModel>(
        sizing::twoStageTemplate(p, {5e-12, 2.2, true}), p, opts);
  };
}

std::vector<double> middlePoint() {
  const auto tmpl = sizing::twoStageTemplate(nominalProc(), {5e-12, 2.2, true});
  std::vector<double> x;
  for (const auto& v : tmpl.variables)
    x.push_back(v.logScale && v.lo > 0 ? std::sqrt(v.lo * v.hi) : 0.5 * (v.lo + v.hi));
  return x;
}

sizing::SpecSet cornerSpecs() {
  sizing::SpecSet s;
  s.atLeast("gain_db", 55.0).atLeast("pm", 45.0).atLeast("ugf", 1e6).atMost("power", 1e-2);
  return s;
}

bool bitIdentical(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

/// Hit rate as a percentage for stdout; "n/a" when there was no traffic at
/// all, so an idle cache never prints as a 0% one.
std::string hitRatePercent(std::uint64_t hits, std::uint64_t misses) {
  if (hits + misses == 0) return "n/a";
  return core::Table::num(100.0 * static_cast<double>(hits) /
                          static_cast<double>(hits + misses)) +
         "%";
}

struct HuntRun {
  double seconds = 0.0;
  std::vector<double> margins;  ///< hunt margins then audit margins, spec order
};

/// Hunt a worst corner per spec at a fixed design, then audit (re-hunt) —
/// the robustSynthesize access pattern, minus the synthesis in between.
HuntRun cornerHuntAndAudit(bool cacheOn) {
  auto& c = core::cache::EvalCache::instance();
  c.clear();
  c.setEnabled(cacheOn);
  const auto factory = simFactory();
  const auto specs = cornerSpecs();
  const auto x = middlePoint();
  manufacture::VariationSpace space;

  HuntRun run;
  const auto t0 = std::chrono::steady_clock::now();
  for (int phase = 0; phase < 2; ++phase)  // 0 = hunt, 1 = audit
    for (const auto& spec : specs.specs()) {
      const auto wc = manufacture::worstCaseCorner(factory, nominalProc(), space, x, spec);
      run.margins.push_back(wc.margin);
      run.margins.push_back(wc.value);
    }
  run.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return run;
}

struct GeneticRun {
  double seconds = 0.0;
  std::vector<double> x;
  double cost = 0.0;
};

GeneticRun geneticSearch(bool cacheOn) {
  auto& c = core::cache::EvalCache::instance();
  c.clear();
  c.setEnabled(cacheOn);
  const auto lib = topology::amplifierLibrary(nominalProc(), 5e-12);
  sizing::SpecSet specs;
  specs.atLeast("gain_db", 60.0).atLeast("ugf", 2e6).atLeast("pm", 50.0).minimize("power",
                                                                                  0.3, 1e-3);
  topology::GeneticOptions opts;
  opts.seed = 7;
  opts.generations = 40;
  GeneticRun run;
  const auto t0 = std::chrono::steady_clock::now();
  const auto res = topology::geneticSelectAndSize(lib, specs, opts);
  run.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  run.x = res.x;
  run.cost = res.cost;
  return run;
}

void writeJson() {
  auto& c = core::cache::EvalCache::instance();
  const bool savedEnabled = c.enabled();
  core::ScopedThreadPool scoped(std::max<std::size_t>(2, core::ThreadPool::configuredThreads()));

  std::cout << "=== Evaluation-cache effectiveness (BENCH_cache.json) ===\n\n";

  // --- workload 1: simulation-based corner hunt + audit ---
  const HuntRun off = cornerHuntAndAudit(false);
  const auto statsBefore = c.stats();
  const HuntRun on = cornerHuntAndAudit(true);
  const auto statsAfter = c.stats();

  const std::uint64_t hits = statsAfter.hits - statsBefore.hits;
  const std::uint64_t misses = statsAfter.misses - statsBefore.misses;
  const double speedup = off.seconds / std::max(on.seconds, 1e-12);
  const bool identical = bitIdentical(off.margins, on.margins);

  core::Table t({"corner hunt + audit (sim model)", "seconds", "notes"});
  t.addRow({"cache off", core::Table::num(off.seconds), "every vertex re-simulated"});
  t.addRow({"cache on", core::Table::num(on.seconds),
            "hit rate " + hitRatePercent(hits, misses)});
  t.print(std::cout);
  std::cout << "speedup: " << core::Table::num(speedup)
            << "x   margins bit-identical: " << (identical ? "yes" : "NO") << "\n\n";

  // --- workload 2: genetic selection over microsecond equation models ---
  const GeneticRun goff = geneticSearch(false);
  const auto gBefore = c.stats();
  const GeneticRun gon = geneticSearch(true);
  const auto gAfter = c.stats();
  const std::uint64_t ghits = gAfter.hits - gBefore.hits;
  const std::uint64_t gmisses = gAfter.misses - gBefore.misses;
  const double gSpeedup = goff.seconds / std::max(gon.seconds, 1e-12);
  const bool gIdentical = bitIdentical(goff.x, gon.x) && goff.cost == gon.cost;

  std::cout << "genetic selection (equation models): " << core::Table::num(goff.seconds)
            << " s off, " << core::Table::num(gon.seconds) << " s on ("
            << core::Table::num(gSpeedup) << "x, hit rate "
            << hitRatePercent(ghits, gmisses)
            << "), result identical: " << (gIdentical ? "yes" : "NO") << "\n"
            << "(equation evaluations cost about as much as a lookup — this is the\n"
            << " cache's overhead floor, not its use case)\n\n";

  core::RunReport report;
  report.name = "evaluation_cache";
  report.addInfo("benchmark", "evaluation_cache");
  report.addValue("corner_hunt_seconds_cache_off", off.seconds)
      .addValue("corner_hunt_seconds_cache_on", on.seconds)
      .addValue("speedup", speedup)
      // addRatio emits null (not 0) when hits+misses == 0: "no traffic" must
      // never read as "0% hit rate".
      .addRatio("hit_rate", static_cast<double>(hits), static_cast<double>(hits + misses))
      .addValue("hits", static_cast<double>(hits))
      .addValue("misses", static_cast<double>(misses))
      .addValue("results_bit_identical", identical ? 1.0 : 0.0)
      .addValue("genetic_seconds_cache_off", goff.seconds)
      .addValue("genetic_seconds_cache_on", gon.seconds)
      .addValue("genetic_speedup", gSpeedup)
      .addRatio("genetic_hit_rate", static_cast<double>(ghits),
                static_cast<double>(ghits + gmisses))
      .addValue("genetic_results_bit_identical", gIdentical ? 1.0 : 0.0);
  report.write("BENCH_cache.json");
  std::cout << "wrote BENCH_cache.json: " << core::Table::num(speedup)
            << "x corner-hunt speedup at hit rate " << hitRatePercent(hits, misses)
            << "\n\n";

  c.setEnabled(savedEnabled);
  c.clear();
}

/// Microbenchmark: the cost of a hit — one canonical key computation plus a
/// sharded lookup — which bounds the cache's overhead on a miss, too.
void BM_CacheHit(benchmark::State& state) {
  auto& c = core::cache::EvalCache::instance();
  c.setEnabled(true);
  const auto factory = simFactory();
  const auto model = factory(nominalProc());
  const auto x = middlePoint();
  sizing::safeEvaluate(*model, x);  // warm the entry
  for (auto _ : state) {
    auto perf = sizing::safeEvaluate(*model, x);
    benchmark::DoNotOptimize(perf);
  }
}
BENCHMARK(BM_CacheHit)->Unit(benchmark::kMicrosecond);

void BM_SimEvalMiss(benchmark::State& state) {
  auto& c = core::cache::EvalCache::instance();
  c.setEnabled(false);  // every iteration pays the full simulator
  const auto factory = simFactory();
  const auto model = factory(nominalProc());
  const auto x = middlePoint();
  for (auto _ : state) {
    auto perf = sizing::safeEvaluate(*model, x);
    benchmark::DoNotOptimize(perf);
  }
  c.setEnabled(true);
}
BENCHMARK(BM_SimEvalMiss)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  writeJson();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
