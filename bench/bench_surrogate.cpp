// Surrogate-screening effectiveness benchmark (BENCH_surrogate.json).
//
// The evaluation cache (bench_cache) removes *repeated* evaluations; the
// learned surrogate (core/surrogate.hpp) attacks the remaining cost — fresh
// evaluations of candidates that were never worth running.  Two claims are
// measured, matching the store's two modes:
//
// Ordering (safety: bit-identical by construction).  Corner hunting and
// batch scoring pre-rank their work by predicted promise; results land in
// their original slots, so the measured margins must match the unranked run
// bit for bit.  This benchmark re-checks that contract on the corner
// hunt + audit workload while recording the (scheduling-only) timing delta.
//
// Pruning (audited, off by default).  During corner-aware synthesis the
// cost function skips candidates whose predicted worst-case constraint
// margin is confidently infeasible — a calibrated 6-sigma band plus a fixed
// margin must sit below zero.  We run the full cutting-plane robust
// synthesis with and without pruning and report evaluations avoided, wall
// time, and whether the final robust design survived unchanged.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cstring>
#include <iostream>

#include "core/evalcache.hpp"
#include "core/parallel.hpp"
#include "core/report.hpp"
#include "core/runreport.hpp"
#include "core/surrogate.hpp"
#include "manufacture/corners.hpp"
#include "sizing/eqmodel.hpp"

namespace {
using namespace amsyn;
namespace surr = core::surrogate;

const circuit::Process& nominalProc() { return circuit::defaultProcess(); }

manufacture::ModelFactory cornerFactory() {
  return [](const circuit::Process& p) {
    return sizing::makeTwoStageCornerModel(p, nominalProc(), 5e-12);
  };
}

sizing::SpecSet hardSpecs() {
  sizing::SpecSet s;
  s.atLeast("gain_db", 66.0)
      .atLeast("ugf", 3e6)
      .atLeast("pm", 50.0)
      .atMost("power", 8e-3)
      .minimize("power", 0.3, 1e-3);
  return s;
}

std::vector<double> middlePoint() {
  const auto model = cornerFactory()(nominalProc());
  std::vector<double> x;
  for (const auto& v : model->variables())
    x.push_back(v.logScale && v.lo > 0 ? std::sqrt(v.lo * v.hi) : 0.5 * (v.lo + v.hi));
  return x;
}

bool bitIdentical(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() || std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

/// The store's stats ride on monotonic process-wide metrics counters, so
/// per-phase numbers are deltas between snapshots.
surr::Store::SurrogateStats statsDelta(const surr::Store::SurrogateStats& before,
                                       const surr::Store::SurrogateStats& after) {
  surr::Store::SurrogateStats d;
  d.observations = after.observations - before.observations;
  d.predictions = after.predictions - before.predictions;
  d.declined = after.declined - before.declined;
  d.orderedBatches = after.orderedBatches - before.orderedBatches;
  d.pruned = after.pruned - before.pruned;
  d.classes = after.classes;
  return d;
}

/// Reset every cross-run memory (cache + surrogate) so each arm trains and
/// evaluates from scratch under the requested mode.
void resetState(surr::Mode mode) {
  core::cache::EvalCache::instance().clear();
  auto& store = surr::Store::instance();
  store.clear();
  store.setMode(mode);
}

struct HuntRun {
  double seconds = 0.0;
  std::vector<double> margins;  ///< hunt then audit margins+values, spec order
};

/// Worst-corner hunt for every constraint, twice (hunt + audit) — the
/// robustSynthesize access pattern at a fixed design.
HuntRun cornerHuntAndAudit(surr::Mode mode) {
  resetState(mode);
  const auto factory = cornerFactory();
  const auto specs = hardSpecs();
  const auto x = middlePoint();
  manufacture::VariationSpace space;

  HuntRun run;
  const auto t0 = std::chrono::steady_clock::now();
  for (int phase = 0; phase < 2; ++phase)
    for (const auto& spec : specs.specs()) {
      if (spec.isObjective()) continue;
      const auto wc = manufacture::worstCaseCorner(factory, nominalProc(), space, x, spec);
      run.margins.push_back(wc.margin);
      run.margins.push_back(wc.value);
    }
  run.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return run;
}

struct RobustRun {
  double seconds = 0.0;
  manufacture::RobustResult res;
};

RobustRun robustRun(surr::Mode mode) {
  resetState(mode);
  const auto specs = hardSpecs();
  manufacture::VariationSpace space;
  manufacture::RobustOptions opts;
  opts.synthesis.seed = 19;

  RobustRun r;
  const auto t0 = std::chrono::steady_clock::now();
  r.res = manufacture::robustSynthesize(cornerFactory(), nominalProc(), space, specs, opts);
  r.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return r;
}

void writeJson() {
  const surr::Mode savedMode = surr::Store::instance().mode();
  const bool savedCache = core::cache::EvalCache::instance().enabled();
  core::cache::EvalCache::instance().setEnabled(true);
  core::ScopedThreadPool scoped(
      std::max<std::size_t>(2, core::ThreadPool::configuredThreads()));

  std::cout << "=== Surrogate screening (BENCH_surrogate.json) ===\n\n";

  // --- ordering: corner hunt + audit, results bit-identical by contract ---
  const HuntRun off = cornerHuntAndAudit(surr::Mode::Off);
  const auto statsBeforeOrder = surr::Store::instance().stats();
  const HuntRun ordered = cornerHuntAndAudit(surr::Mode::Ordering);
  const auto orderStats = statsDelta(statsBeforeOrder, surr::Store::instance().stats());
  const bool orderIdentical = bitIdentical(off.margins, ordered.margins);

  core::Table t({"corner hunt + audit", "seconds", "notes"});
  t.addRow({"surrogate off", core::Table::num(off.seconds), "claim order: vertex index"});
  t.addRow({"surrogate ordering", core::Table::num(ordered.seconds),
            std::to_string(orderStats.orderedBatches) + " batches pre-ranked"});
  t.print(std::cout);
  std::cout << "margins bit-identical: " << (orderIdentical ? "yes" : "NO")
            << "   (ordering is pure scheduling; identity is the contract)\n\n";

  // --- pruning, headline: corner hunt + audit with vertex screening ---
  // The hunt phase trains the surrogate (64 vertices per spec, one class
  // across all corners); the audit phase then skips vertices that are
  // confidently not the worst corner.  The found corners/margins must match
  // the unscreened run exactly — screening is argmin-safe by construction
  // and audited offline by tests/surrogate_test.cpp.
  const HuntRun pbase = cornerHuntAndAudit(surr::Mode::Off);
  const auto statsBeforeScreen = surr::Store::instance().stats();
  const HuntRun pscreen = cornerHuntAndAudit(surr::Mode::Pruning);
  const auto screenStats = statsDelta(statsBeforeScreen, surr::Store::instance().stats());
  const double evalsAvoided = static_cast<double>(screenStats.pruned);
  const double pruneSpeedup = pbase.seconds / std::max(pscreen.seconds, 1e-12);
  const bool huntIdentical = bitIdentical(pbase.margins, pscreen.margins);

  core::Table p({"corner hunt + audit", "seconds", "notes"});
  p.addRow({"surrogate off", core::Table::num(pbase.seconds),
            "every vertex evaluated"});
  p.addRow({"surrogate pruning", core::Table::num(pscreen.seconds),
            core::Table::num(evalsAvoided) + " vertex evals avoided"});
  p.print(std::cout);
  std::cout << "speedup: " << core::Table::num(pruneSpeedup)
            << "x   hunt results unchanged: " << (huntIdentical ? "yes" : "NO") << "\n\n";

  // --- pruning, flow-level: full robust synthesis must be unaffected ---
  // Inside robustSynthesize, pruning is scoped to the hunts (the optimizer
  // consumes exact costs); lifetime residual variance from the synthesis
  // traffic keeps the band honest, so few or no hunt vertices screen here —
  // the check is that the final robust design is unchanged.
  const RobustRun base = robustRun(surr::Mode::Off);
  const auto statsBeforeRobust = surr::Store::instance().stats();
  const RobustRun pruned = robustRun(surr::Mode::Pruning);
  const auto robustStats = statsDelta(statsBeforeRobust, surr::Store::instance().stats());
  const bool robustXIdentical = bitIdentical(base.res.robust.x, pruned.res.robust.x);
  const bool robustVerdictMatch =
      base.res.robustFeasibleAtCorners == pruned.res.robustFeasibleAtCorners &&
      base.res.robust.feasible == pruned.res.robust.feasible;
  std::cout << "robust synthesis under pruning: design unchanged "
            << (robustXIdentical ? "yes" : "NO") << ", corner verdict match "
            << (robustVerdictMatch ? "yes" : "NO") << ", "
            << robustStats.pruned << " hunt vertices screened\n"
            << "(every prune is audited: tests/surrogate_test.cpp re-evaluates the\n"
            << " prune log offline and requires zero false prunes)\n\n";

  core::RunReport report;
  report.name = "surrogate_screening";
  report.addInfo("benchmark", "surrogate_screening");
  report.addValue("ordering_hunt_seconds_off", off.seconds)
      .addValue("ordering_hunt_seconds_on", ordered.seconds)
      .addValue("ordering_margins_bit_identical", orderIdentical ? 1.0 : 0.0)
      .addValue("ordering_batches", static_cast<double>(orderStats.orderedBatches))
      .addValue("ordering_observations", static_cast<double>(orderStats.observations))
      .addValue("pruning_hunt_seconds_off", pbase.seconds)
      .addValue("pruning_hunt_seconds_on", pscreen.seconds)
      .addValue("pruning_speedup", pruneSpeedup)
      .addValue("evals_avoided", evalsAvoided)
      .addValue("pruning_hunt_results_bit_identical", huntIdentical ? 1.0 : 0.0)
      // addRatio: null (not 0) if the screening run made no predictions.
      .addRatio("evals_avoided_fraction", evalsAvoided,
                static_cast<double>(screenStats.predictions))
      .addValue("robust_x_bit_identical", robustXIdentical ? 1.0 : 0.0)
      .addValue("robust_verdict_match", robustVerdictMatch ? 1.0 : 0.0)
      .addValue("robust_hunt_vertices_screened", static_cast<double>(robustStats.pruned))
      .addValue("surrogate_classes", static_cast<double>(robustStats.classes))
      .addValue("surrogate_declined", static_cast<double>(robustStats.declined));
  report.write("BENCH_surrogate.json");
  std::cout << "wrote BENCH_surrogate.json: " << core::Table::num(evalsAvoided)
            << " evals avoided, robust design "
            << (robustXIdentical ? "unchanged" : "CHANGED") << "\n\n";

  resetState(savedMode);
  core::cache::EvalCache::instance().setEnabled(savedCache);
}

/// Microbenchmark: one surrogate prediction (lazy weight refresh amortized),
/// which bounds the per-candidate cost of both ordering and pruning.
void BM_SurrogatePredict(benchmark::State& state) {
  resetState(surr::Mode::Ordering);
  const auto model = cornerFactory()(nominalProc());
  const auto specs = hardSpecs();
  const sizing::CostFunction cost(*model, specs, {});
  const auto x = middlePoint();
  // Train past the maturity threshold so predictions actually fire.
  for (std::size_t i = 0; i < 64; ++i) {
    auto xi = x;
    xi[i % xi.size()] *= 1.0 + 1e-3 * static_cast<double>(i + 1);
    sizing::safeEvaluate(*model, xi);
  }
  for (auto _ : state) {
    auto pred = cost.predictedCost(x);
    benchmark::DoNotOptimize(pred);
  }
  resetState(surr::Mode::Off);
}
BENCHMARK(BM_SurrogatePredict)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  writeJson();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
