// Reproduction of the section-2.2 evaluator-cost claim: "The big advantage
// of using design plans is their fast execution speed"; equation-based
// optimization evaluates "(simplified) analytic design equations"; the
// simulation-based subcategory performs "a full SPICE simulation run at
// every iteration ... the drawback are the long run times"; ASTRX/OBLX sits
// in between by evaluating "the linear small-signal characteristics ...
// efficiently using AWE."
//
// One table: microseconds per performance evaluation for each strategy on
// the identical two-stage opamp, plus the implied cost of a 10k-iteration
// annealing run.
#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>

#include "core/report.hpp"
#include "sizing/eqmodel.hpp"
#include "sizing/relaxed.hpp"
#include "sizing/simmodel.hpp"

namespace {
using namespace amsyn;
using Clock = std::chrono::steady_clock;

template <typename Fn>
double microsecondsPerCall(Fn&& fn, std::size_t calls) {
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < calls; ++i) fn();
  return std::chrono::duration<double, std::micro>(Clock::now() - t0).count() /
         static_cast<double>(calls);
}

void printClaim() {
  const auto& proc = circuit::defaultProcess();
  std::cout << "=== Claim (sec. 2.2): evaluation cost — equations << AWE << SPICE ===\n\n";

  sizing::TwoStageEquationModel eqModel(proc, 5e-12);
  const auto xEq = eqModel.initialPoint();

  auto relaxedTmpl = sizing::twoStageTemplate(proc, {});
  sizing::RelaxedDcModel relaxedModel(std::move(relaxedTmpl), proc);
  const auto xRelaxed = relaxedModel.initialPoint();

  auto simTmpl = sizing::twoStageTemplate(proc, {});
  sizing::SimulationModel simModel(std::move(simTmpl), proc);
  const std::vector<double> xSim = {60e-6, 20e-6, 20e-6, 150e-6, 60e-6, 3e-12, 20e-6};

  const double usEq = microsecondsPerCall([&] { eqModel.evaluate(xEq); }, 2000);
  const double usRelaxed =
      microsecondsPerCall([&] { relaxedModel.evaluate(xRelaxed); }, 50);
  const double usSim = microsecondsPerCall([&] { simModel.evaluate(xSim); }, 20);

  core::Table t({"evaluator", "us / evaluation", "relative", "10k-iteration run"});
  auto runCost = [](double us) {
    const double s = us * 1e4 / 1e6;
    return core::Table::num(s) + " s";
  };
  t.addRow({"design equations (OPASYN/OPTIMAN)", core::Table::num(usEq), "1x",
            runCost(usEq)});
  t.addRow({"relaxed-dc + AWE (ASTRX/OBLX)", core::Table::num(usRelaxed),
            core::Table::num(usRelaxed / usEq) + "x", runCost(usRelaxed)});
  t.addRow({"full simulation (FRIDGE)", core::Table::num(usSim),
            core::Table::num(usSim / usEq) + "x", runCost(usSim)});
  t.print(std::cout);

  std::cout << "\nreading: every step down the table buys generality (no hand-derived\n"
               "equations; exact device behavior) at the evaluation-cost ordering the\n"
               "paper describes; AWE's skip of the nonlinear DC solve is what made the\n"
               "ASTRX/OBLX middle road practical inside an annealer.\n\n";
}

void BM_EquationEval(benchmark::State& state) {
  const auto& proc = circuit::defaultProcess();
  sizing::TwoStageEquationModel model(proc, 5e-12);
  const auto x = model.initialPoint();
  for (auto _ : state) {
    const auto p = model.evaluate(x);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_EquationEval);

void BM_RelaxedDcAweEval(benchmark::State& state) {
  const auto& proc = circuit::defaultProcess();
  auto tmpl = sizing::twoStageTemplate(proc, {});
  sizing::RelaxedDcModel model(std::move(tmpl), proc);
  const auto x = model.initialPoint();
  for (auto _ : state) {
    const auto p = model.evaluate(x);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_RelaxedDcAweEval)->Unit(benchmark::kMicrosecond);

void BM_FullSimulationEval(benchmark::State& state) {
  const auto& proc = circuit::defaultProcess();
  auto tmpl = sizing::twoStageTemplate(proc, {});
  sizing::SimulationModel model(std::move(tmpl), proc);
  const std::vector<double> x = {60e-6, 20e-6, 20e-6, 150e-6, 60e-6, 3e-12, 20e-6};
  for (auto _ : state) {
    const auto p = model.evaluate(x);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_FullSimulationEval)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  printClaim();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
