// Reproduction of the section-2.2 evaluator-cost claim: "The big advantage
// of using design plans is their fast execution speed"; equation-based
// optimization evaluates "(simplified) analytic design equations"; the
// simulation-based subcategory performs "a full SPICE simulation run at
// every iteration ... the drawback are the long run times"; ASTRX/OBLX sits
// in between by evaluating "the linear small-signal characteristics ...
// efficiently using AWE."
//
// One table: microseconds per performance evaluation for each strategy on
// the identical two-stage opamp, plus the implied cost of a 10k-iteration
// annealing run.
#include <benchmark/benchmark.h>

#include <chrono>
#include <fstream>
#include <iostream>

#include "core/parallel.hpp"
#include "core/report.hpp"
#include "core/runreport.hpp"
#include "core/threadpool.hpp"
#include "sizing/eqmodel.hpp"
#include "sizing/relaxed.hpp"
#include "sizing/simmodel.hpp"

namespace {
using namespace amsyn;
using Clock = std::chrono::steady_clock;

template <typename Fn>
double microsecondsPerCall(Fn&& fn, std::size_t calls) {
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < calls; ++i) fn();
  return std::chrono::duration<double, std::micro>(Clock::now() - t0).count() /
         static_cast<double>(calls);
}

void printClaim() {
  const auto& proc = circuit::defaultProcess();
  std::cout << "=== Claim (sec. 2.2): evaluation cost — equations << AWE << SPICE ===\n\n";

  sizing::TwoStageEquationModel eqModel(proc, 5e-12);
  const auto xEq = eqModel.initialPoint();

  auto relaxedTmpl = sizing::twoStageTemplate(proc, {});
  sizing::RelaxedDcModel relaxedModel(std::move(relaxedTmpl), proc);
  const auto xRelaxed = relaxedModel.initialPoint();

  auto simTmpl = sizing::twoStageTemplate(proc, {});
  sizing::SimulationModel simModel(std::move(simTmpl), proc);
  const std::vector<double> xSim = {60e-6, 20e-6, 20e-6, 150e-6, 60e-6, 3e-12, 20e-6};

  const double usEq = microsecondsPerCall([&] { eqModel.evaluate(xEq); }, 2000);
  const double usRelaxed =
      microsecondsPerCall([&] { relaxedModel.evaluate(xRelaxed); }, 50);
  const double usSim = microsecondsPerCall([&] { simModel.evaluate(xSim); }, 20);

  core::Table t({"evaluator", "us / evaluation", "relative", "10k-iteration run"});
  auto runCost = [](double us) {
    const double s = us * 1e4 / 1e6;
    return core::Table::num(s) + " s";
  };
  t.addRow({"design equations (OPASYN/OPTIMAN)", core::Table::num(usEq), "1x",
            runCost(usEq)});
  t.addRow({"relaxed-dc + AWE (ASTRX/OBLX)", core::Table::num(usRelaxed),
            core::Table::num(usRelaxed / usEq) + "x", runCost(usRelaxed)});
  t.addRow({"full simulation (FRIDGE)", core::Table::num(usSim),
            core::Table::num(usSim / usEq) + "x", runCost(usSim)});
  t.print(std::cout);

  std::cout << "\nreading: every step down the table buys generality (no hand-derived\n"
               "equations; exact device behavior) at the evaluation-cost ordering the\n"
               "paper describes; AWE's skip of the nonlinear DC solve is what made the\n"
               "ASTRX/OBLX middle road practical inside an annealer.\n\n";
}

/// Machine-readable record: microseconds per evaluation for each evaluator,
/// plus the wall time of a batched evaluation sweep (the shape every parallel
/// loop in amsyn reduces to) at one thread and at the configured pool width.
void writeJson() {
  const auto& proc = circuit::defaultProcess();

  sizing::TwoStageEquationModel eqModel(proc, 5e-12);
  const auto xEq = eqModel.initialPoint();
  auto relaxedTmpl = sizing::twoStageTemplate(proc, {});
  sizing::RelaxedDcModel relaxedModel(std::move(relaxedTmpl), proc);
  const auto xRelaxed = relaxedModel.initialPoint();
  auto simTmpl = sizing::twoStageTemplate(proc, {});
  sizing::SimulationModel simModel(std::move(simTmpl), proc);
  const std::vector<double> xSim = {60e-6, 20e-6, 20e-6, 150e-6, 60e-6, 3e-12, 20e-6};

  const double usEq = microsecondsPerCall([&] { eqModel.evaluate(xEq); }, 2000);
  const double usRelaxed =
      microsecondsPerCall([&] { relaxedModel.evaluate(xRelaxed); }, 50);
  const double usSim = microsecondsPerCall([&] { simModel.evaluate(xSim); }, 10);

  // Batched sweep: the relaxed-dc evaluator is stateless, so a fixed batch
  // can be scored concurrently — identical work at any thread count.
  constexpr std::size_t kBatch = 64;
  auto batchSeconds = [&](std::size_t threads) {
    core::ScopedThreadPool scoped(threads);
    const auto t0 = Clock::now();
    core::parallelFor(kBatch, [&](std::size_t) { relaxedModel.evaluate(xRelaxed); });
    return std::chrono::duration<double>(Clock::now() - t0).count();
  };
  const std::size_t threads =
      std::max<std::size_t>(2, core::ThreadPool::configuredThreads());
  const double s1 = batchSeconds(1);
  const double sn = batchSeconds(threads);

  // Shared run-report schema (core/runreport.hpp): historical keys plus the
  // registry snapshot — LU factor/reuse split, Newton iterations, and the
  // failure histogram accumulated by the evaluations above.
  core::RunReport report;
  report.name = "evaluation_speed";
  report.addInfo("benchmark", "evaluation_speed");
  report.addValue("us_per_eval_equations", usEq)
      .addValue("us_per_eval_relaxed_awe", usRelaxed)
      .addValue("us_per_eval_full_simulation", usSim)
      .addValue("batch_size", static_cast<double>(kBatch))
      .addValue("batch_seconds_1_thread", s1)
      .addValue("threads", static_cast<double>(threads))
      .addValue("batch_seconds_n_threads", sn)
      .addValue("batch_speedup", s1 / std::max(sn, 1e-12));
  report.write("BENCH_eval_speed.json");
  std::cout << "wrote BENCH_eval_speed.json: batch of " << kBatch << " relaxed-dc evals "
            << s1 << " s at 1 thread, " << sn << " s at " << threads << " threads\n\n";
}

void BM_EquationEval(benchmark::State& state) {
  const auto& proc = circuit::defaultProcess();
  sizing::TwoStageEquationModel model(proc, 5e-12);
  const auto x = model.initialPoint();
  for (auto _ : state) {
    const auto p = model.evaluate(x);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_EquationEval);

void BM_RelaxedDcAweEval(benchmark::State& state) {
  const auto& proc = circuit::defaultProcess();
  auto tmpl = sizing::twoStageTemplate(proc, {});
  sizing::RelaxedDcModel model(std::move(tmpl), proc);
  const auto x = model.initialPoint();
  for (auto _ : state) {
    const auto p = model.evaluate(x);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_RelaxedDcAweEval)->Unit(benchmark::kMicrosecond);

void BM_FullSimulationEval(benchmark::State& state) {
  const auto& proc = circuit::defaultProcess();
  auto tmpl = sizing::twoStageTemplate(proc, {});
  sizing::SimulationModel model(std::move(tmpl), proc);
  const std::vector<double> x = {60e-6, 20e-6, 20e-6, 150e-6, 60e-6, 3e-12, 20e-6};
  for (auto _ : state) {
    const auto p = model.evaluate(x);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_FullSimulationEval)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  printClaim();
  writeJson();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
