// Reproduction of the section-2.2 evaluator-cost claim: "The big advantage
// of using design plans is their fast execution speed"; equation-based
// optimization evaluates "(simplified) analytic design equations"; the
// simulation-based subcategory performs "a full SPICE simulation run at
// every iteration ... the drawback are the long run times"; ASTRX/OBLX sits
// in between by evaluating "the linear small-signal characteristics ...
// efficiently using AWE."
//
// One table: microseconds per performance evaluation for each strategy on
// the identical two-stage opamp, plus the implied cost of a 10k-iteration
// annealing run.
// A second table measures the sparse-MNA fast path (sim/solver.hpp): the
// same DC + AC evaluation on a netlist-size family, forced dense vs forced
// sparse, with fill ratios and symbolic-reuse traffic.
#include <benchmark/benchmark.h>

#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>

#include "core/metrics.hpp"
#include "core/parallel.hpp"
#include "core/report.hpp"
#include "core/runreport.hpp"
#include "core/threadpool.hpp"
#include "sim/ac.hpp"
#include "sim/dc.hpp"
#include "sim/mna.hpp"
#include "sim/mnasparse.hpp"
#include "sim/solver.hpp"
#include "sizing/eqmodel.hpp"
#include "sizing/relaxed.hpp"
#include "sizing/simmodel.hpp"

namespace {
using namespace amsyn;
using Clock = std::chrono::steady_clock;

template <typename Fn>
double microsecondsPerCall(Fn&& fn, std::size_t calls) {
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < calls; ++i) fn();
  return std::chrono::duration<double, std::micro>(Clock::now() - t0).count() /
         static_cast<double>(calls);
}

void printClaim() {
  const auto& proc = circuit::defaultProcess();
  std::cout << "=== Claim (sec. 2.2): evaluation cost — equations << AWE << SPICE ===\n\n";

  sizing::TwoStageEquationModel eqModel(proc, 5e-12);
  const auto xEq = eqModel.initialPoint();

  auto relaxedTmpl = sizing::twoStageTemplate(proc, {});
  sizing::RelaxedDcModel relaxedModel(std::move(relaxedTmpl), proc);
  const auto xRelaxed = relaxedModel.initialPoint();

  auto simTmpl = sizing::twoStageTemplate(proc, {});
  sizing::SimulationModel simModel(std::move(simTmpl), proc);
  const std::vector<double> xSim = {60e-6, 20e-6, 20e-6, 150e-6, 60e-6, 3e-12, 20e-6};

  const double usEq = microsecondsPerCall([&] { eqModel.evaluate(xEq); }, 2000);
  const double usRelaxed =
      microsecondsPerCall([&] { relaxedModel.evaluate(xRelaxed); }, 50);
  const double usSim = microsecondsPerCall([&] { simModel.evaluate(xSim); }, 20);

  core::Table t({"evaluator", "us / evaluation", "relative", "10k-iteration run"});
  auto runCost = [](double us) {
    const double s = us * 1e4 / 1e6;
    return core::Table::num(s) + " s";
  };
  t.addRow({"design equations (OPASYN/OPTIMAN)", core::Table::num(usEq), "1x",
            runCost(usEq)});
  t.addRow({"relaxed-dc + AWE (ASTRX/OBLX)", core::Table::num(usRelaxed),
            core::Table::num(usRelaxed / usEq) + "x", runCost(usRelaxed)});
  t.addRow({"full simulation (FRIDGE)", core::Table::num(usSim),
            core::Table::num(usSim / usEq) + "x", runCost(usSim)});
  t.print(std::cout);

  std::cout << "\nreading: every step down the table buys generality (no hand-derived\n"
               "equations; exact device behavior) at the evaluation-cost ordering the\n"
               "paper describes; AWE's skip of the nonlinear DC solve is what made the\n"
               "ASTRX/OBLX middle road practical inside an annealer.\n\n";
}

void writeSparseClaim(core::RunReport& report);

/// Machine-readable record: microseconds per evaluation for each evaluator,
/// plus the wall time of a batched evaluation sweep (the shape every parallel
/// loop in amsyn reduces to) at one thread and at the configured pool width.
void writeJson() {
  const auto& proc = circuit::defaultProcess();

  sizing::TwoStageEquationModel eqModel(proc, 5e-12);
  const auto xEq = eqModel.initialPoint();
  auto relaxedTmpl = sizing::twoStageTemplate(proc, {});
  sizing::RelaxedDcModel relaxedModel(std::move(relaxedTmpl), proc);
  const auto xRelaxed = relaxedModel.initialPoint();
  auto simTmpl = sizing::twoStageTemplate(proc, {});
  sizing::SimulationModel simModel(std::move(simTmpl), proc);
  const std::vector<double> xSim = {60e-6, 20e-6, 20e-6, 150e-6, 60e-6, 3e-12, 20e-6};

  const double usEq = microsecondsPerCall([&] { eqModel.evaluate(xEq); }, 2000);
  const double usRelaxed =
      microsecondsPerCall([&] { relaxedModel.evaluate(xRelaxed); }, 50);
  const double usSim = microsecondsPerCall([&] { simModel.evaluate(xSim); }, 10);

  // Batched sweep: the relaxed-dc evaluator is stateless, so a fixed batch
  // can be scored concurrently — identical work at any thread count.
  constexpr std::size_t kBatch = 64;
  auto batchSeconds = [&](std::size_t threads) {
    core::ScopedThreadPool scoped(threads);
    const auto t0 = Clock::now();
    core::parallelFor(kBatch, [&](std::size_t) { relaxedModel.evaluate(xRelaxed); });
    return std::chrono::duration<double>(Clock::now() - t0).count();
  };
  const std::size_t threads =
      std::max<std::size_t>(2, core::ThreadPool::configuredThreads());
  const double s1 = batchSeconds(1);
  const double sn = batchSeconds(threads);

  // Shared run-report schema (core/runreport.hpp): historical keys plus the
  // registry snapshot — LU factor/reuse split, Newton iterations, and the
  // failure histogram accumulated by the evaluations above.
  core::RunReport report;
  report.name = "evaluation_speed";
  report.addInfo("benchmark", "evaluation_speed");
  report.addValue("us_per_eval_equations", usEq)
      .addValue("us_per_eval_relaxed_awe", usRelaxed)
      .addValue("us_per_eval_full_simulation", usSim)
      .addValue("batch_size", static_cast<double>(kBatch))
      .addValue("batch_seconds_1_thread", s1)
      .addValue("threads", static_cast<double>(threads))
      .addValue("batch_seconds_n_threads", sn)
      .addValue("batch_speedup", s1 / std::max(sn, 1e-12));
  writeSparseClaim(report);
  report.write("BENCH_eval_speed.json");
  std::cout << "wrote BENCH_eval_speed.json: batch of " << kBatch << " relaxed-dc evals "
            << s1 << " s at 1 thread, " << sn << " s at " << threads << " threads\n\n";
}

/// RC ladder driven by a unit AC source, a diode every eighth tap so the DC
/// solve stays a real Newton loop.  MNA size ~= segments + 2: the circuit
/// family every extracted interconnect evaluation looks like, at sizes the
/// dense kernel's O(n^3) cannot keep up with.
circuit::Netlist ladderNetlist(std::size_t segments) {
  circuit::Netlist net;
  net.addVSource("V1", "t0", "0", 1.0, 1.0);
  for (std::size_t i = 0; i < segments; ++i) {
    const std::string a = "t" + std::to_string(i);
    const std::string b = "t" + std::to_string(i + 1);
    net.addResistor("R" + std::to_string(i), a, b, 100.0 + static_cast<double>(i % 7));
    net.addCapacitor("C" + std::to_string(i), b, "0", 1e-12);
    if (i % 8 == 3) net.addDiode("D" + std::to_string(i), b, "0", 1e-15);
  }
  return net;
}

/// One "performance evaluation" of a netlist: DC operating point plus a
/// 19-point AC sweep — the inner loop of every simulation-based sizing run.
double evalSeconds(const sim::Mna& mna, const std::string& outNode, std::size_t calls) {
  const auto freqs = sim::logspace(1e3, 1e9, 3);
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < calls; ++i) {
    const auto op = sim::dcOperatingPoint(mna);
    const auto sweep = sim::acAnalysis(mna, op, outNode, freqs);
    benchmark::DoNotOptimize(sweep.points.data());
  }
  return std::chrono::duration<double>(Clock::now() - t0).count() /
         static_cast<double>(calls);
}

/// Dense-vs-sparse table + BENCH_eval_speed.json keys for the sparse-MNA
/// fast path: per-size timings, speedups, factor fill, and the symbolic
/// cache traffic of the sparse legs.
void writeSparseClaim(core::RunReport& report) {
  const auto& proc = circuit::defaultProcess();
  std::cout << "=== Sparse-MNA fast path: forced dense vs forced sparse ===\n\n";

  struct SizeCase {
    std::string label;
    circuit::Netlist net;
    std::string outNode;
    std::size_t calls;
  };
  std::vector<SizeCase> cases;
  cases.push_back({"opamp_tb", sizing::buildTwoStageOpamp({}, proc), "out", 40});
  for (const std::size_t segs : {std::size_t{16}, std::size_t{64}, std::size_t{256}})
    cases.push_back({"ladder_" + std::to_string(segs), ladderNetlist(segs),
                     "t" + std::to_string(segs), segs >= 256 ? 3u : (segs >= 64 ? 10u : 30u)});

  const auto& reg = core::metrics::Registry::instance();
  const auto& sc = sim::sparseCounters();
  const auto savedMode = sim::solverMode();

  core::Table t({"netlist", "n", "dense s/eval", "sparse s/eval", "speedup", "fill"});
  double logSum = 0.0;
  double largestSpeedup = 0.0;
  std::uint64_t hits0 = reg.total(sc.symbolicHits), analyses0 = reg.total(sc.analyses),
                refactors0 = reg.total(sc.refactors);
  for (const auto& sc_ : cases) {
    const sim::Mna mna(sc_.net, proc);

    sim::setSolverMode(sim::SolverMode::Dense);
    const double sDense = evalSeconds(mna, sc_.outNode, sc_.calls);
    sim::setSolverMode(sim::SolverMode::Sparse);
    const double sSparse = evalSeconds(mna, sc_.outNode, sc_.calls);

    // Factor fill of the DC Jacobian pattern under the dense-compatible
    // (natural) ordering: nnz(L+U+D) / n^2.
    sim::SparseMna sp(mna);
    num::VecD x0(mna.size(), proc.vdd / 2);
    sp.assemble(x0, {}, true, nullptr);
    num::SparseLuD lu;
    const double fill =
        lu.factor(sp.csc()) == num::SparseLuStatus::Ok ? lu.fillRatio() : 1.0;

    const double speedup = sDense / std::max(sSparse, 1e-12);
    logSum += std::log(speedup);
    largestSpeedup = std::max(largestSpeedup, speedup);
    t.addRow({sc_.label, core::Table::num(static_cast<double>(mna.size())),
              core::Table::num(sDense), core::Table::num(sSparse),
              core::Table::num(speedup) + "x", core::Table::num(fill)});
    report.addValue("dense_s_per_eval_" + sc_.label, sDense)
        .addValue("sparse_s_per_eval_" + sc_.label, sSparse)
        .addValue("sparse_speedup_" + sc_.label, speedup)
        .addValue("sparse_fill_ratio_" + sc_.label, fill)
        .addValue("mna_size_" + sc_.label, static_cast<double>(mna.size()));
  }
  sim::setSolverMode(savedMode);
  t.print(std::cout);

  const double geomean = std::exp(logSum / static_cast<double>(cases.size()));
  const std::uint64_t hits = reg.total(sc.symbolicHits) - hits0;
  const std::uint64_t analyses = reg.total(sc.analyses) - analyses0;
  const std::uint64_t refactors = reg.total(sc.refactors) - refactors0;
  report.addValue("sparse_speedup_geomean", geomean)
      .addValue("sparse_speedup_largest", largestSpeedup)
      .addValue("sparse_symbolic_hits", static_cast<double>(hits))
      .addValue("sparse_analyses", static_cast<double>(analyses))
      .addValue("sparse_refactors", static_cast<double>(refactors));
  std::cout << "\ngeomean speedup " << core::Table::num(geomean) << "x; largest "
            << core::Table::num(largestSpeedup)
            << "x.  symbolic cache over the sparse legs: " << hits << " hits, "
            << analyses << " analyses, " << refactors
            << " refactors — every Newton iteration and AC point past the first "
               "is a numeric replay.\n\n";
}

void BM_EquationEval(benchmark::State& state) {
  const auto& proc = circuit::defaultProcess();
  sizing::TwoStageEquationModel model(proc, 5e-12);
  const auto x = model.initialPoint();
  for (auto _ : state) {
    const auto p = model.evaluate(x);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_EquationEval);

void BM_RelaxedDcAweEval(benchmark::State& state) {
  const auto& proc = circuit::defaultProcess();
  auto tmpl = sizing::twoStageTemplate(proc, {});
  sizing::RelaxedDcModel model(std::move(tmpl), proc);
  const auto x = model.initialPoint();
  for (auto _ : state) {
    const auto p = model.evaluate(x);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_RelaxedDcAweEval)->Unit(benchmark::kMicrosecond);

void BM_FullSimulationEval(benchmark::State& state) {
  const auto& proc = circuit::defaultProcess();
  auto tmpl = sizing::twoStageTemplate(proc, {});
  sizing::SimulationModel model(std::move(tmpl), proc);
  const std::vector<double> x = {60e-6, 20e-6, 20e-6, 150e-6, 60e-6, 3e-12, 20e-6};
  for (auto _ : state) {
    const auto p = model.evaluate(x);
    benchmark::DoNotOptimize(p);
  }
}
BENCHMARK(BM_FullSimulationEval)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  printClaim();
  writeJson();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
