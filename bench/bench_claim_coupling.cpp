// Reproduction of the section-3.2 coupling claims: segregated channels [53],
// constraint-based channel routing with variable separations and shields
// [54,55], and WREN's SNR-driven global routing + constraint mapping [56]
// all exist to keep "noisy digital and sensitive analog" wiring apart.
//
// Two experiments:
//  1. channel level — the same pin problem routed (a) plainly, (b) with
//     class separations, (c) with shield insertion: crosstalk adjacency vs
//     channel height;
//  2. chip level — WREN routing a sensitive net against noisy traffic with
//     and without an SNR budget: coupling before/after the constraint
//     mapper's per-channel directives.
#include <benchmark/benchmark.h>

#include <iostream>

#include "core/report.hpp"
#include "layout/system/channel.hpp"
#include "layout/system/wren.hpp"

namespace {
using namespace amsyn;

std::vector<layout::ChannelPin> busProblem() {
  // Three noisy bus bits interleaved with two sensitive analog lines, all
  // spanning most of the channel.
  std::vector<layout::ChannelPin> pins;
  int col = 0;
  for (const std::string net : {"bus0", "sens0", "bus1", "sens1", "bus2"}) {
    pins.push_back({net, col, true});
    pins.push_back({net, col + 20, false});
    col += 2;
  }
  return pins;
}

std::vector<layout::ChannelNetSpec> busSpecs() {
  return {{"bus0", layout::WireClass::Noisy, 1},  {"bus1", layout::WireClass::Noisy, 1},
          {"bus2", layout::WireClass::Noisy, 1},  {"sens0", layout::WireClass::Sensitive, 1},
          {"sens1", layout::WireClass::Sensitive, 1}};
}

void printClaim() {
  std::cout << "=== Claim (sec. 3.2): separations and shields kill digital->analog\n";
  std::cout << "    coupling at a measured track cost (refs [53],[54],[55],[56]) ===\n\n";

  // --- channel-level experiment ---
  core::Table t({"channel strategy", "height (tracks)", "density LB",
                 "crosstalk adjacency (cols)", "shields"});
  {
    layout::ChannelOptions plain;
    plain.classSeparationTracks = 0;
    const auto r = layout::routeChannel(busProblem(), busSpecs(), plain);
    t.addRow({"plain left-edge (digital style)", std::to_string(r.height),
              std::to_string(r.densityLowerBound), std::to_string(r.crosstalkAdjacency),
              "0"});
  }
  {
    layout::ChannelOptions sep;
    sep.classSeparationTracks = 1;
    const auto r = layout::routeChannel(busProblem(), busSpecs(), sep);
    t.addRow({"+ class separation [54]", std::to_string(r.height),
              std::to_string(r.densityLowerBound), std::to_string(r.crosstalkAdjacency),
              "0"});
  }
  {
    layout::ChannelOptions sh;
    sh.classSeparationTracks = 1;
    sh.insertShields = true;
    const auto r = layout::routeChannel(busProblem(), busSpecs(), sh);
    t.addRow({"+ grounded shields [55]", std::to_string(r.height),
              std::to_string(r.densityLowerBound), std::to_string(r.crosstalkAdjacency),
              std::to_string(r.shieldsInserted)});
  }
  t.print(std::cout);

  // --- chip-level WREN experiment ---
  std::cout << "\nWREN global routing with an SNR budget (single shared corridor,\n"
               "worst case for a sensitive net):\n";
  layout::ChannelGraph g;
  g.addNode({0, 0});
  g.addNode({8000, 0});
  g.addEdge(0, 1, 8);
  std::vector<layout::GlobalNet> nets = {
      {"clk", layout::WireClass::Noisy, {{0, 0}, {8000, 0}}, 0.0},
      {"bus", layout::WireClass::Noisy, {{0, 0}, {8000, 0}}, 0.0},
      {"sig", layout::WireClass::Sensitive, {{0, 0}, {8000, 0}}, 2.5},
  };
  const auto r = layout::wrenGlobalRoute(g, nets);
  core::Table w({"quantity", "value"});
  w.addRow({"raw coupling on 'sig'", core::Table::num(r.couplingRaw.at("sig"))});
  w.addRow({"SNR budget", "2.5"});
  w.addRow({"coupling after constraint mapping",
            core::Table::num(r.couplingMitigated.at("sig"))});
  w.addRow({"budget met", r.snrMet.at("sig") ? "yes" : "NO"});
  w.addRow({"channel directives issued", std::to_string(r.directives.size())});
  w.print(std::cout);
  std::cout << "\nreading: raw sharing violates the SNR budget by a wide margin; the\n"
               "WREN-style mapper converts the chip-level budget into per-channel\n"
               "separation/shield directives that the detailed router then honors —\n"
               "the [46]-influenced constraint-mapping glue the paper highlights.\n\n";
}

void BM_ChannelRouting(benchmark::State& state) {
  const auto pins = busProblem();
  const auto specs = busSpecs();
  layout::ChannelOptions opts;
  opts.classSeparationTracks = 1;
  opts.insertShields = true;
  for (auto _ : state) {
    const auto r = layout::routeChannel(pins, specs, opts);
    benchmark::DoNotOptimize(r.height);
  }
}
BENCHMARK(BM_ChannelRouting);

void BM_WrenGlobalRoute(benchmark::State& state) {
  layout::ChannelGraph g;
  for (int j = 0; j < 4; ++j)
    for (int i = 0; i < 6; ++i) g.addNode({i * 1000, j * 1000});
  auto id = [](int i, int j) { return static_cast<std::size_t>(j * 6 + i); };
  for (int j = 0; j < 4; ++j)
    for (int i = 0; i + 1 < 6; ++i) g.addEdge(id(i, j), id(i + 1, j), 8);
  for (int j = 0; j + 1 < 4; ++j)
    for (int i = 0; i < 6; ++i) g.addEdge(id(i, j), id(i, j + 1), 8);
  std::vector<layout::GlobalNet> nets;
  for (int k = 0; k < 8; ++k)
    nets.push_back({"n" + std::to_string(k),
                    k % 3 == 0 ? layout::WireClass::Noisy
                               : (k % 3 == 1 ? layout::WireClass::Sensitive
                                             : layout::WireClass::Quiet),
                    {{(k % 6) * 1000, 0}, {(5 - k % 6) * 1000, 3000}},
                    k % 3 == 1 ? 2.0 : 0.0});
  for (auto _ : state) {
    const auto r = layout::wrenGlobalRoute(g, nets);
    benchmark::DoNotOptimize(r.anyOverflow);
  }
}
BENCHMARK(BM_WrenGlobalRoute)->Unit(benchmark::kMicrosecond);

}  // namespace

int main(int argc, char** argv) {
  printClaim();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
