// Reproduction of the section-2.2 manufacturability claim: extending
// ASTRX/OBLX with worst-case corner search "has been successful in several
// test cases but does increase the CPU time required (e.g., by roughly
// 4X-10X)" (the paper's ref [31]).
//
// We run nominal-only synthesis and the cutting-plane corner-aware loop on
// the same spec set and compare model-evaluation counts and wall time, then
// confirm the nominal design actually fails at its worst corner while the
// robust one survives.
#include <benchmark/benchmark.h>

#include <chrono>
#include <fstream>
#include <iostream>

#include "core/parallel.hpp"
#include "core/report.hpp"
#include "core/runreport.hpp"
#include "core/threadpool.hpp"
#include "manufacture/corners.hpp"
#include "manufacture/yield.hpp"
#include "sizing/eqmodel.hpp"

namespace {
using namespace amsyn;

const circuit::Process& nominalProc() { return circuit::defaultProcess(); }

manufacture::ModelFactory factory() {
  return [](const circuit::Process& p) {
    return sizing::makeTwoStageCornerModel(p, nominalProc(), 5e-12);
  };
}

sizing::SpecSet robustSpecs() {
  sizing::SpecSet s;
  s.atLeast("gain_db", 66.0)
      .atLeast("ugf", 3e6)
      .atLeast("pm", 50.0)
      .atMost("power", 8e-3)
      .minimize("power", 0.3, 1e-3);
  return s;
}

void printClaim() {
  std::cout << "=== Claim (sec. 2.2): corner-aware synthesis costs ~4x-10x CPU ===\n\n";
  const auto specs = robustSpecs();
  manufacture::VariationSpace space;
  manufacture::RobustOptions opts;
  opts.synthesis.seed = 19;
  const auto res = manufacture::robustSynthesize(factory(), nominalProc(), space, specs, opts);

  core::Table t({"run", "feasible", "power (mW)", "model evals"});
  t.addRow({"nominal only", res.nominal.feasible ? "yes" : "NO",
            core::Table::num(res.nominal.performance.at("power") * 1e3),
            core::Table::num(res.nominalEvaluations)});
  t.addRow({"corner-aware (cutting-plane)", res.robustFeasibleAtCorners ? "yes" : "NO",
            core::Table::num(res.robust.performance.at("power") * 1e3),
            core::Table::num(res.robustEvaluations)});
  t.print(std::cout);

  const double ratio = res.robustEvaluations / std::max(res.nominalEvaluations, 1.0);
  std::cout << "\nCPU (evaluation) ratio robust/nominal: " << core::Table::num(ratio)
            << "x   (paper: roughly 4x-10x)\n";
  std::cout << "active corners accumulated: " << res.activeCorners << " over "
            << res.rounds << " cutting-plane rounds\n\n";

  // Does the nominal design actually need the protection?  Hunt its worst
  // corner for each constraint.
  std::cout << "worst-corner audit of the NOMINAL design:\n";
  core::Table audit({"spec", "nominal value", "worst-corner value", "margin"});
  for (const auto& spec : specs.specs()) {
    if (spec.isObjective()) continue;
    const auto wc = manufacture::worstCaseCorner(factory(), nominalProc(), space,
                                                 res.nominal.x, spec);
    const auto nom = factory()(nominalProc())->evaluate(res.nominal.x);
    audit.addRow({spec.describe(), core::Table::num(nom.at(spec.performance)),
                  core::Table::num(wc.value),
                  core::Table::num(wc.margin) + (wc.margin < 0 ? "  <-- fails" : "")});
  }
  audit.print(std::cout);

  // Yield comparison under global variation.
  manufacture::YieldOptions yopts;
  yopts.samples = 300;
  const auto yNom =
      manufacture::yieldMonteCarlo(factory(), nominalProc(), res.nominal.x, specs, yopts);
  const auto yRob =
      manufacture::yieldMonteCarlo(factory(), nominalProc(), res.robust.x, specs, yopts);
  std::cout << "\nMonte-Carlo yield (300 samples, global corners): nominal "
            << core::Table::num(yNom.yield.estimate * 100) << "%, robust "
            << core::Table::num(yRob.yield.estimate * 100) << "%\n\n";
}

/// Machine-readable scaling record: the identical corner-aware synthesis at
/// one thread and at the configured pool width.  The parallel loops are
/// deterministic by construction, so besides the timings we record whether
/// the two runs really did produce the same design.
void writeJson() {
  const auto specs = robustSpecs();
  manufacture::VariationSpace space;
  manufacture::RobustOptions opts;
  opts.synthesis.seed = 19;

  struct TimedRun {
    double seconds = 0.0;
    manufacture::RobustResult res;
  };
  auto timedRun = [&](std::size_t threads) {
    core::ScopedThreadPool scoped(threads);
    TimedRun r;
    const auto t0 = std::chrono::steady_clock::now();
    r.res = manufacture::robustSynthesize(factory(), nominalProc(), space, specs, opts);
    r.seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    return r;
  };

  const std::size_t threads =
      std::max<std::size_t>(2, core::ThreadPool::configuredThreads());
  const TimedRun serial = timedRun(1);
  const TimedRun parallel = timedRun(threads);
  const bool identical = serial.res.robust.x == parallel.res.robust.x &&
                         serial.res.robust.cost == parallel.res.robust.cost &&
                         serial.res.activeCorners == parallel.res.activeCorners;

  // Shared run-report schema (core/runreport.hpp): the caller-supplied
  // values keep their historical keys, and the registry/span sections ride
  // along — per-phase wall times, LU factor/reuse split, failure histogram.
  core::RunReport report;
  report.name = "corner_aware_synthesis";
  report.addInfo("benchmark", "corner_aware_synthesis");
  report.addValue("seconds_1_thread", serial.seconds)
      .addValue("threads", static_cast<double>(threads))
      .addValue("seconds_n_threads", parallel.seconds)
      .addValue("speedup", serial.seconds / std::max(parallel.seconds, 1e-12))
      .addValue("results_bit_identical", identical ? 1.0 : 0.0)
      .addValue("robust_evaluations", parallel.res.robustEvaluations)
      .addValue("nominal_evaluations", parallel.res.nominalEvaluations)
      .addValue("active_corners", static_cast<double>(parallel.res.activeCorners))
      // The section-2.2 claim, measured directly: corner-search phase wall
      // time over nominal-sizing phase wall time (paper: roughly 4x-10x).
      .addValue("nominal_sizing_seconds", parallel.res.nominalSeconds)
      .addValue("corner_search_seconds", parallel.res.cornerSearchSeconds)
      .addValue("corner_to_nominal_time_ratio",
                parallel.res.cornerSearchSeconds /
                    std::max(parallel.res.nominalSeconds, 1e-12));
  report.write("BENCH_corners.json");
  std::cout << "wrote BENCH_corners.json: " << serial.seconds << " s at 1 thread, "
            << parallel.seconds << " s at " << threads
            << " threads, identical=" << (identical ? "yes" : "NO") << "\n\n";
}

void BM_NominalSynthesis(benchmark::State& state) {
  const auto specs = robustSpecs();
  std::uint64_t seed = 1;
  for (auto _ : state) {
    const auto model = factory()(nominalProc());
    sizing::SynthesisOptions opts;
    opts.seed = seed++;
    const auto res = sizing::synthesize(*model, specs, opts);
    benchmark::DoNotOptimize(res.cost);
  }
}
BENCHMARK(BM_NominalSynthesis)->Unit(benchmark::kMillisecond);

void BM_RobustSynthesis(benchmark::State& state) {
  const auto specs = robustSpecs();
  std::uint64_t seed = 1;
  for (auto _ : state) {
    manufacture::RobustOptions opts;
    opts.synthesis.seed = seed++;
    const auto res = manufacture::robustSynthesize(factory(), nominalProc(),
                                                   manufacture::VariationSpace{}, specs,
                                                   opts);
    benchmark::DoNotOptimize(res.robustEvaluations);
  }
}
BENCHMARK(BM_RobustSynthesis)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

int main(int argc, char** argv) {
  printClaim();
  writeJson();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
