// Reproduction of the paper's **Table 1**: "Example of synthesis experiment"
// — the AMGIE pulse-detector frontend (charge-sensitive amplifier + 4-stage
// pulse-shaping amplifier).  The paper reports the synthesis system cutting
// power by ~6x versus an expert manual design (40 mW -> 7 mW) while meeting
// peaking time, counting rate, noise, gain and output-range specs.
//
// We regenerate the table's three columns (specification / manual /
// synthesis) from our own engine and check the *shape*: synthesis feasible,
// power several times below manual, noise rising toward (but not past) its
// budget.  The google-benchmark section times the synthesis run itself.
#include <benchmark/benchmark.h>

#include <iostream>

#include "core/report.hpp"
#include "knowledge/pulse_plan.hpp"
#include "sizing/pulse.hpp"
#include "sizing/synth.hpp"

namespace {
using namespace amsyn;

sizing::SpecSet table1Specs() {
  sizing::SpecSet s;
  s.atMost("peaking_us", 1.5)
      .atLeast("counting_khz", 200.0)
      .atMost("noise_e", 1000.0)
      .atLeast("gain_v_fc", 20.0)
      .atMost("gain_v_fc", 23.0)
      .atLeast("range_v", 1.0)
      .minimize("power", 1.0, 1e-3)
      .minimize("area_mm2", 0.2, 1.0);
  return s;
}

void printTable1() {
  const auto& proc = circuit::defaultProcess();
  sizing::PulseDetectorModel model(proc);
  const auto manual = model.evaluate(model.manualDesign());

  sizing::SynthesisOptions opts;
  opts.seed = 11;
  const auto synth = sizing::synthesize(model, table1Specs(), opts);

  // Knowledge-based (hierarchical OASYS-style plan) design for comparison.
  const auto plan = knowledge::pulseDetectorPlan();
  const auto planRes = plan.execute(proc, {{"spec.peaking_us", 1.5},
                                           {"spec.counting_khz", 200},
                                           {"spec.noise_e", 1000},
                                           {"spec.gain_v_fc", 20},
                                           {"spec.range_v", 1.0}});
  sizing::Performance planPerf;
  if (planRes.success)
    planPerf = model.evaluate(knowledge::extractPulseDetectorDesign(planRes.context));

  std::cout << "=== Table 1: pulse-detector frontend synthesis experiment ===\n";
  std::cout << "(paper: manual 40 mW / 0.7 mm^2 vs synthesis 7 mW / 0.6 mm^2 — a ~6x\n";
  std::cout << " power reduction at equal specs; we reproduce the shape, not the mW)\n\n";

  core::Table t({"performance", "specification", "manual", "plan", "synthesis",
                 "paper(man)", "paper(syn)"});
  auto row = [&](const std::string& label, const std::string& spec, const std::string& key,
                 double scale, const std::string& pm, const std::string& ps) {
    t.addRow({label, spec, core::Table::num(manual.at(key) * scale),
              planRes.success ? core::Table::num(planPerf.at(key) * scale) : "-",
              core::Table::num(synth.performance.at(key) * scale), pm, ps});
  };
  row("peaking time (us)", "< 1.5", "peaking_us", 1.0, "1.1", "1.1");
  row("counting rate (kHz)", "> 200", "counting_khz", 1.0, "200", "294");
  row("noise (rms e-)", "< 1000", "noise_e", 1.0, "750", "905");
  row("gain (V/fC)", "20", "gain_v_fc", 1.0, "20", "21");
  row("output range (V)", "-1..1", "range_v", 1.0, "1", "1.5");
  row("power (mW)", "minimal", "power", 1e3, "40", "7");
  row("area (mm^2)", "minimal", "area_mm2", 1.0, "0.7", "0.6");
  t.print(std::cout);

  const double ratio = manual.at("power") / synth.performance.at("power");
  std::cout << "\nsynthesis feasible: " << (synth.feasible ? "yes" : "NO") << "\n";
  std::cout << "power reduction vs manual: " << core::Table::num(ratio)
            << "x (paper: ~5.7x)\n";
  std::cout << "model evaluations: " << synth.evaluations << "\n\n";
}

void BM_Table1Synthesis(benchmark::State& state) {
  const auto& proc = circuit::defaultProcess();
  sizing::PulseDetectorModel model(proc);
  const auto specs = table1Specs();
  std::uint64_t seed = 1;
  for (auto _ : state) {
    sizing::SynthesisOptions opts;
    opts.seed = seed++;
    const auto res = sizing::synthesize(model, specs, opts);
    benchmark::DoNotOptimize(res.cost);
  }
}
BENCHMARK(BM_Table1Synthesis)->Unit(benchmark::kMillisecond);

void BM_Table1SingleEvaluation(benchmark::State& state) {
  const auto& proc = circuit::defaultProcess();
  sizing::PulseDetectorModel model(proc);
  const auto x = model.manualDesign();
  for (auto _ : state) {
    const auto perf = model.evaluate(x);
    benchmark::DoNotOptimize(perf);
  }
}
BENCHMARK(BM_Table1SingleEvaluation);

}  // namespace

int main(int argc, char** argv) {
  printTable1();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
