// Resilience-layer overhead and degradation benchmark (BENCH_robustness.json).
//
// The job execution layer (core/jobqueue.hpp + core/resilience.hpp) must be
// effectively free when nothing goes wrong, and must degrade gracefully —
// not collapse — when faults arrive.  Two claims, both measured:
//
//   1. Deadline-check overhead < 1%.  Arming a wall-clock deadline adds a
//      strided monotonic-clock read to EvalBudget::consume()
//      (kDeadlineCheckStride = 64 charges per read).  We run the same fixed
//      set of full simulator evaluations with no deadline and with a
//      far-future deadline — the evaluation cache disabled in BOTH arms, so
//      the comparison is clock-read overhead, not cacheability (armed
//      deadlines make evaluations uncacheable by contract) — and report the
//      ratio.
//
//   2. Throughput retained under a 10% injected fault rate.  A JobQueue
//      batch runs clean, then again under a seeded chaos schedule (10%
//      stage-fault rate) with per-stage retries enabled.  Faulted jobs pay
//      retries, so throughput drops — but the batch completes with every
//      job terminal, and the retained fraction is reported.
#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>

#include "circuit/process.hpp"
#include "core/evalcache.hpp"
#include "core/evalstatus.hpp"
#include "core/jobqueue.hpp"
#include "core/parallel.hpp"
#include "core/report.hpp"
#include "core/resilience.hpp"
#include "core/runreport.hpp"
#include "sim/fault.hpp"
#include "sizing/perfmodel.hpp"
#include "sizing/simmodel.hpp"

namespace {
using namespace amsyn;

const circuit::Process& nominalProc() { return circuit::defaultProcess(); }

std::vector<double> middlePoint(const sizing::CircuitTemplate& tmpl) {
  std::vector<double> x;
  for (const auto& v : tmpl.variables)
    x.push_back(v.logScale && v.lo > 0 ? std::sqrt(v.lo * v.hi) : 0.5 * (v.lo + v.hi));
  return x;
}

double nowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

/// Seconds for `evals` full simulator evaluations, deadline armed or not.
/// Cache off in both arms: armed deadlines are uncacheable by contract, so
/// leaving the cache on would measure cacheability, not the clock reads.
double timedEvaluations(std::size_t evals, bool armDeadline) {
  auto& c = core::cache::EvalCache::instance();
  c.clear();
  c.setEnabled(false);
  sizing::SimModelOptions opts;
  opts.measureNoise = false;
  if (armDeadline)
    opts.deadlineNs = core::EvalBudget::nowNs() + 3'600'000'000'000LL;  // +1h
  const auto tmpl = sizing::twoStageTemplate(nominalProc(), {5e-12, 2.2, true});
  sizing::SimulationModel model(tmpl, nominalProc(), opts);
  const auto x = middlePoint(tmpl);
  const double t0 = nowSeconds();
  for (std::size_t i = 0; i < evals; ++i) {
    auto perf = sizing::safeEvaluate(model, x);
    benchmark::DoNotOptimize(perf);
  }
  return nowSeconds() - t0;
}

std::vector<sizing::SpecSet> batchSpecs(std::size_t jobs) {
  std::vector<sizing::SpecSet> batch(jobs);
  for (std::size_t i = 0; i < jobs; ++i)
    batch[i]
        .atLeast("gain_db", 36.0 + static_cast<double>(i % 3))
        .atLeast("ugf", 1e7)
        .atLeast("pm", 55.0)
        .atMost("power", 4e-3);
  return batch;
}

core::JobQueueOptions queueOptions() {
  core::JobQueueOptions opts;
  opts.flow.loadCap = 2e-12;
  opts.flow.seed = 7;
  opts.flow.maxRedesigns = 1;
  opts.flow.synthesis.seed = 11;
  opts.flow.synthesis.multistarts = 2;
  opts.flow.synthesis.anneal.stagnationStages = 2;
  opts.flow.synthesis.anneal.coolingRate = 0.7;
  opts.flow.synthesis.refineEvaluations = 40;
  opts.flow.layout.annealPlacement = false;
  opts.flow.stageRetry = core::RetryPolicy::transient(3);
  opts.flow.stageRetry.backoff = core::BackoffPolicy::none();
  opts.retry = core::RetryPolicy::transient(2);
  opts.retry.backoff = core::BackoffPolicy::none();
  return opts;
}

struct BatchRun {
  double seconds = 0.0;
  std::size_t succeeded = 0;
  std::size_t terminal = 0;
};

BatchRun timedBatch(const std::vector<sizing::SpecSet>& batch) {
  auto& c = core::cache::EvalCache::instance();
  c.clear();
  c.setEnabled(true);
  BatchRun run;
  const double t0 = nowSeconds();
  const auto out = core::runBatchResilient(batch, nominalProc(), queueOptions());
  run.seconds = nowSeconds() - t0;
  for (const auto& rec : out.jobs) {
    run.succeeded += rec.state == core::JobState::Succeeded ? 1 : 0;
    run.terminal += rec.state == core::JobState::Succeeded ||
                            rec.state == core::JobState::Failed
                        ? 1
                        : 0;
  }
  return run;
}

void writeJson() {
  auto& c = core::cache::EvalCache::instance();
  const bool savedEnabled = c.enabled();
  core::ScopedThreadPool scoped(
      std::max<std::size_t>(2, core::ThreadPool::configuredThreads()));

  std::cout << "=== Resilience-layer overhead (BENCH_robustness.json) ===\n\n";

  // --- claim 1: deadline-check overhead ---
  // Interleaved min-of-N: per-arm wall clock on a shared box is noisy at
  // this scale, and min-of-repeats is the standard noise-robust estimator
  // of the true cost.  BM_ConsumeWork* below pins the per-charge number.
  constexpr std::size_t kEvals = 400;
  constexpr int kRepeats = 5;
  (void)timedEvaluations(kEvals / 8, false);  // warm-up (page cache, pool)
  double plain = timedEvaluations(kEvals, false);
  double armed = timedEvaluations(kEvals, true);
  for (int r = 1; r < kRepeats; ++r) {
    plain = std::min(plain, timedEvaluations(kEvals, false));
    armed = std::min(armed, timedEvaluations(kEvals, true));
  }
  const double overhead = armed / std::max(plain, 1e-12) - 1.0;

  core::Table t({"simulator evaluations (x" + std::to_string(kEvals) + ")",
                 "seconds", "notes"});
  t.addRow({"no deadline", core::Table::num(plain), "plain work-unit budget"});
  t.addRow({"deadline armed", core::Table::num(armed),
            "strided clock read every 64 charges"});
  t.print(std::cout);
  std::cout << "deadline-check overhead: " << core::Table::num(overhead * 100)
            << "% (claim: < 1%)\n\n";

  // --- claim 2: throughput retained under a 10% fault rate ---
  const auto batch = batchSpecs(6);
  const BatchRun clean = timedBatch(batch);
  BatchRun faulted;
  {
    sim::BatchFaultPlan plan;
    plan.seed = 2026;
    plan.rate(sim::FaultSite::StageRun) = 0.10;
    sim::ScopedBatchFaults armedFaults(plan);
    faulted = timedBatch(batch);
  }
  const double cleanTput = static_cast<double>(batch.size()) / clean.seconds;
  const double faultTput = static_cast<double>(batch.size()) / faulted.seconds;
  const double retained = faultTput / std::max(cleanTput, 1e-12);

  core::Table t2({"job batch (6 flows)", "seconds", "jobs/s", "succeeded"});
  t2.addRow({"clean", core::Table::num(clean.seconds), core::Table::num(cleanTput),
             std::to_string(clean.succeeded) + "/" + std::to_string(batch.size())});
  t2.addRow({"10% stage faults", core::Table::num(faulted.seconds),
             core::Table::num(faultTput),
             std::to_string(faulted.succeeded) + "/" + std::to_string(batch.size())});
  t2.print(std::cout);
  std::cout << "throughput retained under faults: "
            << core::Table::num(retained * 100) << "%   every job terminal: "
            << (faulted.terminal == batch.size() ? "yes" : "NO") << "\n\n";

  core::RunReport report;
  report.name = "robustness";
  report.addInfo("benchmark", "robustness");
  report.addValue("eval_seconds_no_deadline", plain)
      .addValue("eval_seconds_deadline_armed", armed)
      .addValue("deadline_overhead_fraction", overhead)
      .addValue("batch_seconds_clean", clean.seconds)
      .addValue("batch_seconds_faulted", faulted.seconds)
      .addValue("batch_succeeded_clean", static_cast<double>(clean.succeeded))
      .addValue("batch_succeeded_faulted", static_cast<double>(faulted.succeeded))
      .addValue("throughput_retained_fraction", retained)
      .addValue("all_jobs_terminal_under_faults",
                faulted.terminal == batch.size() ? 1.0 : 0.0);
  report.write("BENCH_robustness.json");
  std::cout << "wrote BENCH_robustness.json: " << core::Table::num(overhead * 100)
            << "% deadline overhead, " << core::Table::num(retained * 100)
            << "% throughput retained\n\n";

  c.setEnabled(savedEnabled);
  c.clear();
}

/// Microbenchmark: one budget charge through the consumeWork hook, the
/// innermost cost the deadline machinery can add to a Newton iteration.
void BM_ConsumeWorkPlain(benchmark::State& state) {
  core::EvalBudget budget;
  for (auto _ : state) benchmark::DoNotOptimize(sim::consumeWork(&budget));
}
BENCHMARK(BM_ConsumeWorkPlain);

void BM_ConsumeWorkDeadlineArmed(benchmark::State& state) {
  core::EvalBudget budget;
  budget.setDeadlineNs(core::EvalBudget::nowNs() + 3'600'000'000'000LL);
  for (auto _ : state) benchmark::DoNotOptimize(sim::consumeWork(&budget));
}
BENCHMARK(BM_ConsumeWorkDeadlineArmed);

}  // namespace

int main(int argc, char** argv) {
  writeJson();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
