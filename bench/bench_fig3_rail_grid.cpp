// Reproduction of the paper's **Figure 3**: "RAIL power grid design for IBM
// data channel" — the RAIL system redesigning the power distribution of the
// mixed analog/digital recording-channel chip [62] so that "a demanding set
// of dc, ac and transient performance constraints were met automatically."
//
// We regenerate the experiment on the synthetic data-channel chip
// (substitution documented in DESIGN.md): a digital-style baseline grid
// (sized for connectivity and average IR drop only) versus RAIL synthesis
// (AWE-evaluated dc + transient + EM + analog-victim constraints), and a
// sweep showing how the requirement set drives metal area and bypass
// capacitance.
#include <benchmark/benchmark.h>

#include <iostream>

#include "core/report.hpp"
#include "power/rail.hpp"

namespace {
using namespace amsyn;

power::PowerGridSpec dataChannelSpec() {
  power::PowerGridSpec s;
  s.chip = geom::Rect::fromSize(0, 0, 20000, 20000);
  s.rows = 6;
  s.cols = 6;
  s.vdd = 5.0;
  s.pads = {{{0, 0}, 0.5, 5e-9}, {{20000, 20000}, 0.5, 5e-9}};
  s.loads = {
      // A 27 MHz recording-channel-like mix: hot DSP, controller, and the
      // sensitive analog read path.
      {"dsp", geom::Rect::fromSize(1000, 1000, 8000, 8000), 60e-3, 300e-3, 2e-9,
       400e-12, false},
      {"ctrl", geom::Rect::fromSize(12000, 1000, 6000, 5000), 20e-3, 100e-3, 2e-9,
       150e-12, false},
      {"adc", geom::Rect::fromSize(1000, 12000, 5000, 6000), 8e-3, 0.0, 2e-9, 200e-12,
       true},
      {"vco", geom::Rect::fromSize(13000, 13000, 4000, 4000), 5e-3, 0.0, 2e-9, 200e-12,
       true},
  };
  return s;
}

std::string pf(bool ok) { return ok ? "met" : "VIOLATED"; }

void printFigure3() {
  const auto& proc = circuit::defaultProcess();
  const auto spec = dataChannelSpec();
  power::RailConstraints cons;

  std::cout << "=== Figure 3: RAIL power-grid design for the data-channel chip ===\n";
  std::cout << "(constraints: IR drop <= " << cons.maxDcDropVolts * 1e3
            << " mV, spike <= " << cons.maxSpikeVolts * 1e3 << " mV, analog spike <= "
            << cons.maxAnalogSpikeVolts * 1e3 << " mV, EM stress <= 1)\n\n";

  // Digital-style baseline: uniform width sized for average IR drop only.
  power::PowerGrid baseline(spec, proc);
  power::applyUniformWidth(baseline, 6e-6);
  const auto base = baseline.analyze();

  // RAIL synthesis from a skinny start.
  power::PowerGrid railGrid(spec, proc);
  power::applyUniformWidth(railGrid, 2e-6);
  const auto rail = power::synthesizePowerGrid(railGrid, cons, proc);

  core::Table t({"metric", "constraint", "digital-style grid", "RAIL grid"});
  t.addRow({"worst IR drop (mV)", "<= " + core::Table::num(cons.maxDcDropVolts * 1e3),
            core::Table::num(base.worstDcDropVolts * 1e3) + " (" +
                pf(base.worstDcDropVolts <= cons.maxDcDropVolts) + ")",
            core::Table::num(rail.final.worstDcDropVolts * 1e3) + " (" +
                pf(rail.final.worstDcDropVolts <= cons.maxDcDropVolts) + ")"});
  t.addRow({"worst spike (mV)", "<= " + core::Table::num(cons.maxSpikeVolts * 1e3),
            core::Table::num(base.worstSpikeVolts * 1e3) + " (" +
                pf(base.worstSpikeVolts <= cons.maxSpikeVolts) + ")",
            core::Table::num(rail.final.worstSpikeVolts * 1e3) + " (" +
                pf(rail.final.worstSpikeVolts <= cons.maxSpikeVolts) + ")"});
  t.addRow({"analog-victim spike (mV)",
            "<= " + core::Table::num(cons.maxAnalogSpikeVolts * 1e3),
            core::Table::num(base.worstAnalogSpikeVolts * 1e3) + " (" +
                pf(base.worstAnalogSpikeVolts <= cons.maxAnalogSpikeVolts) + ")",
            core::Table::num(rail.final.worstAnalogSpikeVolts * 1e3) + " (" +
                pf(rail.final.worstAnalogSpikeVolts <= cons.maxAnalogSpikeVolts) + ")"});
  t.addRow({"EM stress (x limit)", "<= 1",
            core::Table::num(base.worstEmStressRatio) + " (" +
                pf(base.worstEmStressRatio <= 1.0) + ")",
            core::Table::num(rail.final.worstEmStressRatio) + " (" +
                pf(rail.final.worstEmStressRatio <= 1.0) + ")"});
  t.addRow({"metal area (mm^2)", "-", core::Table::num(base.metalAreaM2 * 1e6),
            core::Table::num(rail.final.metalAreaM2 * 1e6)});
  t.print(std::cout);

  std::cout << "\nRAIL met all constraints: " << (rail.constraintsMet ? "yes" : "NO")
            << " (" << rail.iterations << " width/decap iterations, "
            << core::Table::num(rail.addedDecapFarads * 1e9)
            << " nF of synthesized bypass capacitance)\n";
  std::cout << "The digital-style grid handles connectivity and ohmic drop but misses\n"
               "the transient constraints the paper calls out — exactly why RAIL casts\n"
               "mixed-signal power-grid design as constrained synthesis.\n\n";

  // Constraint sweep: tightening the analog spike budget costs decap/metal.
  std::cout << "analog-spike budget sweep (RAIL re-synthesis per point):\n";
  core::Table sweep({"budget (mV)", "met", "metal (mm^2)", "bypass (nF)", "iters"});
  for (double budget : {0.20, 0.12, 0.08, 0.05}) {
    power::PowerGrid g(spec, proc);
    power::applyUniformWidth(g, 2e-6);
    power::RailConstraints c = cons;
    c.maxAnalogSpikeVolts = budget;
    const auto r = power::synthesizePowerGrid(g, c, proc);
    sweep.addRow({core::Table::num(budget * 1e3), r.constraintsMet ? "yes" : "NO",
                  core::Table::num(r.final.metalAreaM2 * 1e6),
                  core::Table::num(r.addedDecapFarads * 1e9),
                  std::to_string(r.iterations)});
  }
  sweep.print(std::cout);
  std::cout << "\n";
}

void BM_GridAnalysisAwe(benchmark::State& state) {
  const auto& proc = circuit::defaultProcess();
  power::PowerGrid grid(dataChannelSpec(), proc);
  power::applyUniformWidth(grid, 10e-6);
  for (auto _ : state) {
    const auto a = grid.analyze();
    benchmark::DoNotOptimize(a.worstSpikeVolts);
  }
}
BENCHMARK(BM_GridAnalysisAwe)->Unit(benchmark::kMillisecond);

void BM_RailSynthesis(benchmark::State& state) {
  const auto& proc = circuit::defaultProcess();
  const auto spec = dataChannelSpec();
  for (auto _ : state) {
    power::PowerGrid grid(spec, proc);
    power::applyUniformWidth(grid, 2e-6);
    const auto r = power::synthesizePowerGrid(grid, power::RailConstraints{}, proc);
    benchmark::DoNotOptimize(r.constraintsMet);
  }
}
BENCHMARK(BM_RailSynthesis)->Unit(benchmark::kMillisecond)->Iterations(3);

}  // namespace

int main(int argc, char** argv) {
  printFigure3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  return 0;
}
