// Cross-module integration tests: scenarios that span frontend, backend and
// substrates, checking that independent engines agree on the same circuit.
#include <gtest/gtest.h>

#include <cmath>

#include "awe/awe.hpp"
#include "core/assemble.hpp"
#include "core/celllayout.hpp"
#include "core/flow.hpp"
#include "extract/sens.hpp"
#include "sim/ac.hpp"
#include "sim/dc.hpp"
#include "sim/measure.hpp"
#include "sizing/eqmodel.hpp"
#include "sizing/opamp.hpp"
#include "symbolic/analyze.hpp"
#include "symbolic/linearize.hpp"

namespace {
using namespace amsyn;
const circuit::Process& proc() { return circuit::defaultProcess(); }
}  // namespace

// Three independent linear-analysis engines — direct complex MNA, AWE
// moment-matching, and symbolic analysis — must agree on the identical
// amplifier at every frequency where their assumptions hold.
TEST(TriEngineConsistency, SimAweSymbolicAgreeOnAmplifier) {
  auto net = circuit::Netlist();
  net.addVSource("VDD", "vdd", "0", 5.0);
  net.addVSource("VG", "g", "0", 1.05, 1.0);
  net.addResistor("RD", "vdd", "out", 50e3);
  net.addMos("M1", "out", "g", "0", "0", circuit::MosType::Nmos, 40e-6, 2e-6);
  net.addCapacitor("CL", "out", "0", 3e-12);

  sim::Mna mna(net, proc());
  const auto op = sim::dcOperatingPoint(mna, sim::flatStart(mna, proc().vdd / 2));
  ASSERT_TRUE(op.converged);

  const auto awem = awe::aweTransfer(mna, op, "out", 3);
  const auto lin = symbolic::linearize(mna, op);
  const auto h = symbolic::voltageTransfer(lin.circuit, lin.node("g"), lin.node("out"));

  for (double f : {1e2, 1e4, 1e6, 3e7}) {
    const double simMag = std::abs(sim::acTransfer(mna, op, "out", f));
    const double aweMag = awem.magnitudeAt(f);
    const double symMag = h.magnitudeAt(lin.circuit.symbols(), f);
    EXPECT_NEAR(aweMag, simMag, simMag * 0.03) << "AWE vs sim at " << f;
    EXPECT_NEAR(symMag, simMag, simMag * 0.03) << "symbolic vs sim at " << f;
  }
}

// Sensitivity -> constraint mapping -> parasitic-bounded routing: the full
// "critical glue" loop of section 3.1.
TEST(SensitivityToRouting, BoundsFlowIntoRoadModeRouting) {
  const auto net = sizing::buildTwoStageOpamp(sizing::TwoStageParams{}, proc(), {});

  // Gain at 1 MHz as the guarded performance.
  auto measure = [&](const circuit::Netlist& n) {
    sim::Mna mna(n, proc());
    const auto op = sim::dcOperatingPoint(mna, sim::flatStart(mna, proc().vdd / 2));
    if (!op.converged) return 0.0;
    return std::abs(sim::acTransfer(mna, op, "out", 1e6));
  };
  const std::vector<std::string> nets = {"no1", "out", "n1"};
  const auto sens = extract::capacitanceSensitivity(net, measure, nets, 20e-15);
  ASSERT_GT(std::abs(sens.nominal), 0.0);

  // Allow 10% degradation of the 1 MHz gain; map to per-net cap bounds.
  const auto bounds = extract::mapParasiticBounds(sens, 0.1 * std::abs(sens.nominal));
  ASSERT_EQ(bounds.size(), nets.size());

  // Feed the bounds to the router (ROAD mode) during cell layout.
  core::CellLayoutOptions opts;
  opts.annealPlacement = false;
  for (const auto& [name, cap] : bounds) {
    layout::RouteNet rn;
    rn.name = name;
    rn.capBound = cap;
    opts.netOverrides.push_back(rn);
  }
  const auto cell = core::layoutCell(net, proc(), opts);
  ASSERT_TRUE(cell.success);
  // The router reports bound compliance per net; every guarded net must have
  // been routed and assessed.
  for (const auto& name : nets) {
    if (!cell.routing.nets.count(name)) continue;  // single-pin nets skipped
    EXPECT_TRUE(cell.routing.nets.at(name).routed) << name;
  }
}

// Extracted parasitics must degrade (never improve) the amplifier bandwidth.
TEST(LayoutInTheLoop, ParasiticsOnlyEverSlowTheAmplifier) {
  const auto net = sizing::buildTwoStageOpamp(sizing::TwoStageParams{}, proc(), {});
  core::CellLayoutOptions opts;
  opts.annealPlacement = false;
  const auto cell = core::layoutCell(net, proc(), opts);
  ASSERT_TRUE(cell.success);

  const auto pre = core::measureAmplifier(net, proc());
  const auto post = core::measureAmplifier(cell.annotated, proc());
  ASSERT_FALSE(pre.count("_infeasible"));
  ASSERT_FALSE(post.count("_infeasible"));
  EXPECT_LE(post.at("ugf"), pre.at("ugf") * 1.02);
  EXPECT_GT(post.at("ugf"), pre.at("ugf") * 0.2);  // but not absurdly so
}

// Full system assembly in one call (ACACIA-style).
TEST(SystemAssembly, DataChannelChipAssembles) {
  std::vector<layout::Block> blocks = {
      {"dsp", 8000, 6000, 10.0, 0.0},
      {"ctrl", 5000, 4000, 6.0, 0.0},
      {"adc", 4000, 4000, 0.0, 8.0},
      {"vco", 3000, 3000, 0.0, 5.0},
  };
  std::vector<core::SystemSignal> signals = {
      {"bus", layout::WireClass::Noisy, {"dsp", "ctrl"}, 0.0},
      {"clk", layout::WireClass::Noisy, {"vco", "dsp", "ctrl"}, 0.0},
      {"sample", layout::WireClass::Sensitive, {"adc", "dsp"}, 5.0},
  };
  std::map<std::string, core::SystemBlockPower> power = {
      {"dsp", {60e-3, 300e-3, 400e-12}},
      {"ctrl", {20e-3, 100e-3, 150e-12}},
      {"adc", {8e-3, 0.0, 200e-12}},
      {"vco", {5e-3, 0.0, 200e-12}},
  };
  core::AssembleOptions opts;
  opts.seed = 7;
  const auto res = core::assembleSystem(blocks, signals, power, proc(), opts);

  EXPECT_TRUE(res.floorplan.overlapFree);
  EXPECT_TRUE(res.allSignalsRouted);
  EXPECT_TRUE(res.allSnrBudgetsMet)
      << "sample coupling " << res.globalRouting.couplingMitigated.at("sample");
  EXPECT_TRUE(res.powerConstraintsMet)
      << "dc " << res.powerAfter.worstDcDropVolts << " spike "
      << res.powerAfter.worstSpikeVolts;
  EXPECT_TRUE(res.success);
  // The power synthesis must have actually improved on the skinny grid.
  EXPECT_LT(res.powerAfter.worstDcDropVolts, res.powerBefore.worstDcDropVolts);
}

// OTA-topology flow: modest specs should pick the simpler amplifier and
// still complete layout + post-layout verification.
TEST(FlowOtaPath, ModestSpecsSelectOtaAndComplete) {
  sizing::SpecSet specs;
  specs.atLeast("gain_db", 36.0)
      .atLeast("ugf", 1e7)
      .atLeast("pm", 60.0)
      .atMost("power", 4e-3)
      .minimize("power", 0.3, 1e-3);
  core::FlowOptions opts;
  opts.loadCap = 2e-12;
  opts.seed = 3;
  opts.layout.annealPlacement = false;
  const auto res = core::synthesizeAmplifier(specs, proc(), opts);
  ASSERT_TRUE(res.success) << res.failureReason;
  EXPECT_EQ(res.topology, "five-transistor-ota");
}
