// Tests for scoped execution contexts (core/context.hpp): config snapshot
// semantics, scope installation, per-context metrics slices, fault-plan
// isolation, isolated cache/surrogate handles — and the PR's headline
// proof, a differential suite showing the whole flow and the robust corner
// search are *bit-identical* between the legacy ambient-global path and an
// explicitly installed context, at 1 and 8 threads, cache on and off.
// Contexts may only ever change *attribution and isolation*, never results.
//
// The registry-overflow tests are deliberately LAST in this file: they fill
// the metrics registry to capacity for their process.  Under ctest every
// TEST runs in its own process (gtest_discover_tests), so they cannot
// poison siblings there; keeping them last protects direct-binary runs too.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

#include "circuit/process.hpp"
#include "core/context.hpp"
#include "core/evalcache.hpp"
#include "core/flow.hpp"
#include "core/flowgraph.hpp"
#include "core/metrics.hpp"
#include "core/parallel.hpp"
#include "core/surrogate.hpp"
#include "manufacture/corners.hpp"
#include "sim/fault.hpp"
#include "sizing/eqmodel.hpp"
#include "sizing/perfmodel.hpp"

namespace core = amsyn::core;
namespace cache = amsyn::core::cache;
namespace metrics = amsyn::core::metrics;
namespace surrogate = amsyn::core::surrogate;
namespace sim = amsyn::sim;
namespace sz = amsyn::sizing;
namespace mf = amsyn::manufacture;
namespace ckt = amsyn::circuit;

namespace {

const ckt::Process& nominal() { return ckt::defaultProcess(); }

/// RAII save/restore of one environment variable (fromEnv tests mutate the
/// environment; nothing else in the process reads it at runtime anymore,
/// which is itself part of what this file verifies).
struct EnvVarGuard {
  explicit EnvVarGuard(const char* name) : name_(name) {
    if (const char* v = std::getenv(name)) saved_ = v;
  }
  ~EnvVarGuard() {
    if (saved_)
      ::setenv(name_, saved_->c_str(), 1);
    else
      ::unsetenv(name_);
  }
  const char* name_;
  std::optional<std::string> saved_;
};

/// RAII snapshot/restore of the shared cache's knobs (same discipline as
/// tests/evalcache_test.cpp: the shared cache is process-wide state).
struct CacheGuard {
  CacheGuard()
      : c(cache::EvalCache::instance()),
        enabled(c.enabled()),
        capacity(c.capacity()),
        quantum(c.quantum()) {
    c.setEnabled(true);
    c.setQuantum(0.0);
    c.clear();
  }
  ~CacheGuard() {
    c.setEnabled(enabled);
    c.setCapacity(capacity);
    c.setQuantum(quantum);
    c.clear();
  }
  cache::EvalCache& c;
  bool enabled;
  std::size_t capacity;
  double quantum;
};

/// Minimal cacheable model counting real evaluations, so a context-resolved
/// cache hit (count unchanged) is distinguishable from a miss.
class CountingModel : public sz::PerformanceModel {
 public:
  explicit CountingModel(double base = 1.0) : base_(base) {}

  const std::vector<sz::DesignVariable>& variables() const override { return vars_; }

  sz::Performance evaluate(const std::vector<double>& x) const override {
    ++evals_;
    return {{"gain_db", base_ + x.at(0)}, {"power", base_ * x.at(0)}};
  }

  std::optional<cache::Digest128> cacheKey(const std::vector<double>& x) const override {
    cache::Hasher128 h;
    h.mixString("context-counting-model");
    h.mixDouble(base_);
    // Context-resolved quantum: the key builder must follow the installed
    // context's cache, not the shared singleton.
    h.mixQuantizedDoubles(x, core::currentEvalCache().quantum());
    return h.digest();
  }

  int evals() const { return evals_.load(); }

 private:
  double base_;
  mutable std::atomic<int> evals_{0};
  std::vector<sz::DesignVariable> vars_{{"a", 1.0, 10.0, false, 1.0}};
};

std::uint64_t rawBits(double v) {
  std::uint64_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

::testing::AssertionResult perfBitIdentical(const sz::Performance& a,
                                            const sz::Performance& b) {
  if (a.size() != b.size())
    return ::testing::AssertionFailure()
           << "sizes differ: " << a.size() << " vs " << b.size();
  auto ia = a.begin();
  auto ib = b.begin();
  for (; ia != a.end(); ++ia, ++ib) {
    if (ia->first != ib->first)
      return ::testing::AssertionFailure()
             << "keys differ: " << ia->first << " vs " << ib->first;
    if (rawBits(ia->second) != rawBits(ib->second))
      return ::testing::AssertionFailure()
             << ia->first << " differs in bits: " << ia->second << " vs " << ib->second;
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult vecBitIdentical(const std::vector<double>& a,
                                           const std::vector<double>& b) {
  if (a.size() != b.size())
    return ::testing::AssertionFailure()
           << "sizes differ: " << a.size() << " vs " << b.size();
  for (std::size_t i = 0; i < a.size(); ++i)
    if (rawBits(a[i]) != rawBits(b[i]))
      return ::testing::AssertionFailure()
             << "x[" << i << "] differs in bits: " << a[i] << " vs " << b[i];
  return ::testing::AssertionSuccess();
}

cache::Digest128 keyOf(std::uint64_t tag) {
  cache::Hasher128 h;
  h.mixString("context-test").mix(tag);
  return h.digest();
}

/// A deterministic config for explicit contexts in the differential and
/// isolation tests: independent of whatever AMSYN_* the CI leg set, so the
/// tests assert the same thing in every leg.
core::ContextConfig deterministicConfig() {
  core::ContextConfig cfg = core::ContextConfig::fromEnv();
  cfg.evalCacheEnabled = true;
  cfg.evalCacheQuantum = 0.0;
  cfg.surrogateMode = surrogate::Mode::Off;
  return cfg;
}

}  // namespace

// ---------------------------------------------------------------------------
// ContextConfig::fromEnv — the one sanctioned environment snapshot

TEST(ContextConfig, FromEnvSnapshotsEveryKnob) {
  EnvVarGuard g1("AMSYN_THREADS"), g2("AMSYN_SOLVER"), g3("AMSYN_EVAL_CACHE"),
      g4("AMSYN_EVAL_CACHE_CAPACITY"), g5("AMSYN_EVAL_CACHE_QUANTUM"),
      g6("AMSYN_SURROGATE"), g7("AMSYN_JOB_DEADLINE_MS"), g8("AMSYN_TOPOLOGY_SPACE");
  ::setenv("AMSYN_THREADS", "5", 1);
  ::setenv("AMSYN_SOLVER", "Sparse", 1);  // parser is case-insensitive
  ::setenv("AMSYN_EVAL_CACHE", "off", 1);
  ::setenv("AMSYN_EVAL_CACHE_CAPACITY", "1024", 1);
  ::setenv("AMSYN_EVAL_CACHE_QUANTUM", "0.25", 1);
  ::setenv("AMSYN_SURROGATE", "ordering", 1);
  ::setenv("AMSYN_JOB_DEADLINE_MS", "900", 1);
  ::setenv("AMSYN_TOPOLOGY_SPACE", "generated", 1);

  const core::ContextConfig cfg = core::ContextConfig::fromEnv();
  EXPECT_EQ(cfg.threads, 5u);
  EXPECT_EQ(cfg.solver, core::SolverKind::Sparse);
  EXPECT_FALSE(cfg.evalCacheEnabled);
  EXPECT_EQ(cfg.evalCacheCapacity, 1024u);
  EXPECT_DOUBLE_EQ(cfg.evalCacheQuantum, 0.25);
  EXPECT_EQ(cfg.surrogateMode, surrogate::Mode::Ordering);
  EXPECT_EQ(cfg.jobDeadlineMs, 900u);
  EXPECT_EQ(cfg.topologySpace, core::TopologySpaceKind::Generated);
}

TEST(ContextConfig, FromEnvDefaultsWhenUnset) {
  EnvVarGuard g1("AMSYN_THREADS"), g2("AMSYN_SOLVER"), g3("AMSYN_EVAL_CACHE"),
      g4("AMSYN_EVAL_CACHE_CAPACITY"), g5("AMSYN_EVAL_CACHE_QUANTUM"),
      g6("AMSYN_SURROGATE"), g7("AMSYN_JOB_DEADLINE_MS"), g8("AMSYN_TOPOLOGY_SPACE");
  for (const char* name :
       {"AMSYN_THREADS", "AMSYN_SOLVER", "AMSYN_EVAL_CACHE",
        "AMSYN_EVAL_CACHE_CAPACITY", "AMSYN_EVAL_CACHE_QUANTUM", "AMSYN_SURROGATE",
        "AMSYN_JOB_DEADLINE_MS", "AMSYN_TOPOLOGY_SPACE"})
    ::unsetenv(name);

  const core::ContextConfig cfg = core::ContextConfig::fromEnv();
  EXPECT_EQ(cfg.threads, 0u);
  EXPECT_EQ(cfg.solver, core::SolverKind::Auto);
  EXPECT_TRUE(cfg.evalCacheEnabled);
  EXPECT_EQ(cfg.evalCacheCapacity, std::size_t{1} << 16);
  EXPECT_DOUBLE_EQ(cfg.evalCacheQuantum, 0.0);
  EXPECT_EQ(cfg.surrogateMode, surrogate::Mode::Off);
  EXPECT_EQ(cfg.jobDeadlineMs, 0u);
  EXPECT_EQ(cfg.topologySpace, core::TopologySpaceKind::Legacy);
}

TEST(ContextConfig, UnparseableValuesFallBackToDefaults) {
  EnvVarGuard g1("AMSYN_THREADS"), g2("AMSYN_SOLVER"), g7("AMSYN_JOB_DEADLINE_MS");
  ::setenv("AMSYN_THREADS", "junk", 1);
  ::setenv("AMSYN_SOLVER", "quantum", 1);
  ::setenv("AMSYN_JOB_DEADLINE_MS", "900ms", 1);  // trailing garbage = unset
  const core::ContextConfig cfg = core::ContextConfig::fromEnv();
  EXPECT_EQ(cfg.threads, 0u);
  EXPECT_EQ(cfg.solver, core::SolverKind::Auto);
  EXPECT_EQ(cfg.jobDeadlineMs, 0u);
}

// ---------------------------------------------------------------------------
// Ambient context and scope mechanics

TEST(ExecutionContext, AmbientIsCurrentWithoutAScopeAndRecordsNoSlice) {
  EXPECT_EQ(core::ExecutionContext::scoped(), nullptr);
  EXPECT_EQ(&core::ExecutionContext::current(), &core::ExecutionContext::ambient());
  // The ambient context deliberately has no metrics slice (un-scoped code
  // pays one thread-local null check and nothing else).
  EXPECT_EQ(core::ExecutionContext::ambient().metricsSlice(), nullptr);
  EXPECT_TRUE(core::ExecutionContext::ambient().sliceCounters().empty());
  // Shared handles resolve to the legacy singletons.
  EXPECT_EQ(&core::ExecutionContext::ambient().evalCache(),
            &cache::EvalCache::instance());
  EXPECT_EQ(&core::ExecutionContext::ambient().surrogateStore(),
            &surrogate::Store::instance());
  EXPECT_FALSE(core::ExecutionContext::ambient().hasIsolatedEvalCache());
  EXPECT_FALSE(core::ExecutionContext::ambient().hasIsolatedSurrogate());
}

TEST(ExecutionContext, ScopeInstallsNestsAndRestores) {
  core::ExecutionContext a(deterministicConfig());
  core::ExecutionContext b(deterministicConfig());
  EXPECT_EQ(core::ExecutionContext::scoped(), nullptr);
  {
    core::ContextScope sa(a);
    EXPECT_EQ(core::ExecutionContext::scoped(), &a);
    EXPECT_EQ(&core::ExecutionContext::current(), &a);
    {
      core::ContextScope sb(b);
      EXPECT_EQ(&core::ExecutionContext::current(), &b);
    }
    EXPECT_EQ(&core::ExecutionContext::current(), &a);
  }
  EXPECT_EQ(core::ExecutionContext::scoped(), nullptr);
  EXPECT_EQ(&core::ExecutionContext::current(), &core::ExecutionContext::ambient());
}

TEST(ExecutionContext, ChildInheritsConfigHandlesAndCurrentSolverPreference) {
  core::ContextConfig cfg = deterministicConfig();
  cfg.jobDeadlineMs = 4321;
  core::ExecutionContext parent(cfg);
  // The child copies the parent's *current* preference, not its config
  // default — FlowOptions::solver applied on the parent must carry into
  // jobs created afterwards.
  parent.setSolverKind(core::SolverKind::Sparse);
  const auto child = parent.makeChild();
  EXPECT_EQ(child->config().jobDeadlineMs, 4321u);
  EXPECT_EQ(&child->evalCache(), &parent.evalCache());
  EXPECT_EQ(&child->surrogateStore(), &parent.surrogateStore());
  EXPECT_FALSE(child->hasIsolatedEvalCache());
  EXPECT_EQ(child->solverKind(), core::SolverKind::Sparse);
  // The child's slice chains under the parent's.
  ASSERT_NE(child->metricsSlice(), nullptr);
  EXPECT_EQ(child->metricsSlice()->parent(), parent.metricsSlice());
}

// ---------------------------------------------------------------------------
// Per-context metrics slices (satellite: disjoint slices, invariant totals)

TEST(ContextMetrics, SlicesAreDisjointAndSumToProcessTotals) {
  const metrics::CounterId work = metrics::registry().counter("ctx.test.work");
  const std::uint64_t before = metrics::registry().total(work);

  core::ExecutionContext tenantA(deterministicConfig());
  core::ExecutionContext tenantB(deterministicConfig());
  core::ScopedThreadPool pool(4);  // both tenants share one pool
  {
    core::ContextScope scope(tenantA);
    core::parallelFor(37, [&](std::size_t) { metrics::add(work); });
  }
  {
    core::ContextScope scope(tenantB);
    core::parallelFor(21, [&](std::size_t) { metrics::add(work); });
  }

  const auto slicesA = tenantA.sliceCounters();
  const auto slicesB = tenantB.sliceCounters();
  ASSERT_EQ(slicesA.count("ctx.test.work"), 1u);
  ASSERT_EQ(slicesB.count("ctx.test.work"), 1u);
  EXPECT_EQ(slicesA.at("ctx.test.work"), 37u);
  EXPECT_EQ(slicesB.at("ctx.test.work"), 21u);
  // Slices are additive observers: the process total is exactly the sum of
  // the two tenants' disjoint slices on top of whatever ran before.
  EXPECT_EQ(metrics::registry().total(work) - before, 58u);
  // And the ambient context still records no slice of its own.
  EXPECT_TRUE(core::ExecutionContext::ambient().sliceCounters().empty());
}

TEST(ContextMetrics, ChildDeltasChainIntoTheParentSlice) {
  const metrics::CounterId work = metrics::registry().counter("ctx.test.child");
  core::ExecutionContext tenant(deterministicConfig());
  const auto job = tenant.makeChild();
  {
    core::ContextScope scope(*job);
    metrics::add(work, 5);
  }
  EXPECT_EQ(job->sliceCounters().at("ctx.test.child"), 5u);
  // The tenant sees its job's delta too (chained slice), without the job
  // having to report anything explicitly.
  EXPECT_EQ(tenant.sliceCounters().at("ctx.test.child"), 5u);
}

TEST(ContextMetrics, ReportOverloadEmitsSliceValuesAndIsInertForAmbient) {
  core::FlowResult r;
  r.topology = "two_stage_miller";
  // Ambient context: the two-argument overload is byte-identical to the
  // single-argument form (no slice to emit).
  EXPECT_EQ(core::flowRunReportJson(r),
            core::flowRunReportJson(r, core::ExecutionContext::ambient()));

  const metrics::CounterId work = metrics::registry().counter("ctx.test.report");
  core::ExecutionContext ctx(deterministicConfig());
  {
    core::ContextScope scope(ctx);
    metrics::add(work, 3);
  }
  const std::string json = core::flowRunReportJson(r, ctx);
  EXPECT_NE(json.find("\"ctx.ctx.test.report\""), std::string::npos);
  // The slice is sparse: counters the context never touched are absent.
  EXPECT_EQ(json.find("\"ctx.core.jobs.submitted\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Fault-plan isolation (satellite: per-context chaos plans never leak)

TEST(ContextFaults, SiblingContextsNeverSeeEachOthersPlans) {
  core::ExecutionContext tenantA(deterministicConfig());
  core::ExecutionContext tenantB(deterministicConfig());
  sim::BatchFaultPlan plan;
  plan.seed = 7;
  plan.rate(sim::FaultSite::JobTask) = 1.0;
  {
    core::ContextScope scopeA(tenantA);
    sim::ScopedBatchFaults armed(plan);  // arms tenantA's schedule
    EXPECT_TRUE(sim::batchFaultsArmed());
    {
      sim::BatchFaultScope job(0);
      EXPECT_TRUE(sim::takeBatchFault(sim::FaultSite::JobTask));
    }
    {
      // Sibling tenant on the same thread: the plan must be invisible.
      core::ContextScope scopeB(tenantB);
      EXPECT_FALSE(sim::batchFaultsArmed());
      sim::BatchFaultScope job(0);
      EXPECT_FALSE(sim::takeBatchFault(sim::FaultSite::JobTask));
    }
    {
      // A child of the armed tenant inherits the plan through the chain.
      const auto job = tenantA.makeChild();
      core::ContextScope scopeChild(*job);
      EXPECT_TRUE(sim::batchFaultsArmed());
      sim::BatchFaultScope faultScope(1);
      EXPECT_TRUE(sim::takeBatchFault(sim::FaultSite::JobTask));
    }
  }
  // Disarm happened on tenantA; the ambient context was never armed.
  EXPECT_FALSE(sim::batchFaultsArmed());
}

// ---------------------------------------------------------------------------
// Isolated handles (satellite: isolated caches never observe shared state)

TEST(ContextIsolation, IsolatedEvalCacheNeverObservesSharedEntries) {
  CacheGuard guard;
  core::ExecutionContext ctx(deterministicConfig(),
                             core::ContextIsolation{.evalCache = true});
  ASSERT_TRUE(ctx.hasIsolatedEvalCache());
  ASSERT_NE(&ctx.evalCache(), &cache::EvalCache::instance());

  const std::vector<double> x{2.0};
  cache::CachedEval payload{{{"gain_db", 9.0}}, core::EvalStatus::Ok};
  cache::CachedEval out;

  // Shared insert is invisible to the isolated cache...
  cache::EvalCache::instance().insert(keyOf(1), x, payload);
  EXPECT_FALSE(ctx.evalCache().lookup(keyOf(1), x, out));
  // ...and an isolated insert is invisible to the shared cache.
  ctx.evalCache().insert(keyOf(2), x, payload);
  EXPECT_FALSE(cache::EvalCache::instance().lookup(keyOf(2), x, out));
  EXPECT_TRUE(ctx.evalCache().lookup(keyOf(2), x, out));
  EXPECT_TRUE(perfBitIdentical(out.performance, payload.performance));
}

TEST(ContextIsolation, SafeEvaluateCachesThroughTheInstalledContext) {
  CacheGuard guard;
  core::ExecutionContext ctx(deterministicConfig(),
                             core::ContextIsolation{.evalCache = true});
  CountingModel model(2.0);
  const std::vector<double> x{3.0};
  const std::size_t sharedEntriesBefore = cache::EvalCache::instance().stats().entries;
  {
    core::ContextScope scope(ctx);
    const auto first = sz::safeEvaluate(model, x);
    const auto second = sz::safeEvaluate(model, x);
    EXPECT_EQ(model.evals(), 1);  // second call hit the isolated cache
    EXPECT_TRUE(perfBitIdentical(first, second));
  }
  // Nothing leaked into the shared cache.
  EXPECT_EQ(cache::EvalCache::instance().stats().entries, sharedEntriesBefore);
  EXPECT_EQ(ctx.evalCache().stats().entries, 1u);
  // Outside the scope the same model evaluates against the shared cache, so
  // the isolated entry is not visible: a real evaluation runs again.
  (void)sz::safeEvaluate(model, x);
  EXPECT_EQ(model.evals(), 2);
}

TEST(ContextIsolation, IsolatedSurrogateStoreIsIndependentOfTheSharedOne) {
  core::ContextConfig cfg = deterministicConfig();  // surrogateMode = Off
  core::ExecutionContext ctx(cfg, core::ContextIsolation{.surrogate = true});
  ASSERT_TRUE(ctx.hasIsolatedSurrogate());
  ASSERT_NE(&ctx.surrogateStore(), &surrogate::Store::instance());
  EXPECT_EQ(ctx.surrogateStore().mode(), surrogate::Mode::Off);

  auto& shared = surrogate::Store::instance();
  const surrogate::Mode sharedBefore = shared.mode();
  shared.setMode(surrogate::Mode::Ordering);
  EXPECT_EQ(ctx.surrogateStore().mode(), surrogate::Mode::Off);
  ctx.surrogateStore().setMode(surrogate::Mode::Pruning);
  EXPECT_EQ(shared.mode(), surrogate::Mode::Ordering);
  shared.setMode(sharedBefore);
}

// ---------------------------------------------------------------------------
// Differential suite: ambient-global vs explicit-context runs, bit for bit

namespace {

sz::SynthesisOptions fastSynthesisOptions() {
  sz::SynthesisOptions opts;
  opts.seed = 11;
  opts.multistarts = 2;
  opts.anneal.stagnationStages = 2;
  opts.anneal.coolingRate = 0.7;
  opts.refineEvaluations = 40;
  return opts;
}

/// One full flow run.  `ctx` == nullptr runs the legacy ambient-global
/// path (synthesizeAmplifier, no scope anywhere); otherwise the run goes
/// through the explicit-context engine entry point FlowEngine::run(...,
/// ctx) — the daemon-style path this PR introduced.
core::FlowResult runFlow(bool cacheOn, std::size_t threads,
                         core::ExecutionContext* ctx) {
  auto& c = cache::EvalCache::instance();
  c.clear();
  c.setEnabled(cacheOn);
  core::ScopedThreadPool scoped(threads);
  sz::SpecSet specs;
  specs.atLeast("gain_db", 36.0)
      .atLeast("ugf", 1e7)
      .atLeast("pm", 60.0)
      .atMost("power", 4e-3)
      .minimize("power", 0.3, 1e-3);
  core::FlowOptions opts;
  opts.loadCap = 2e-12;
  opts.seed = 3;
  opts.synthesis = fastSynthesisOptions();
  opts.layout.annealPlacement = false;
  if (!ctx) return core::synthesizeAmplifier(specs, nominal(), opts);
  core::FlowEngine engine(core::amplifierStageGraph());
  return engine.run(specs, nominal(), opts, *ctx);
}

/// The run-report prefix that is a pure function of the FlowResult (same
/// masking as tests/evalcache_test.cpp: counters/spans and the wall-clock
/// `stage.N.seconds` digits legitimately differ between runs).
std::string reportResultPrefix(const core::FlowResult& r) {
  std::string json = core::flowRunReportJson(r);
  const auto pos = json.find("\"counters\"");
  if (pos != std::string::npos) json = json.substr(0, pos);
  std::string masked;
  std::size_t at = 0;
  while (true) {
    const auto hit = json.find(".seconds\": ", at);
    if (hit == std::string::npos) break;
    const auto valueStart = hit + std::strlen(".seconds\": ");
    auto valueEnd = valueStart;
    while (valueEnd < json.size() && json[valueEnd] != ',' && json[valueEnd] != '\n')
      ++valueEnd;
    masked += json.substr(at, valueStart - at);
    masked += '#';
    at = valueEnd;
  }
  masked += json.substr(at);
  return masked;
}

void expectFlowsBitIdentical(const core::FlowResult& a, const core::FlowResult& b,
                             const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.topology, b.topology);
  EXPECT_TRUE(vecBitIdentical(a.designPoint, b.designPoint));
  EXPECT_EQ(a.redesigns, b.redesigns);
  EXPECT_EQ(a.failureReason, b.failureReason);
  EXPECT_EQ(a.failureStatus, b.failureStatus);
  ASSERT_EQ(a.verifications.size(), b.verifications.size());
  for (std::size_t i = 0; i < a.verifications.size(); ++i) {
    EXPECT_EQ(a.verifications[i].stage, b.verifications[i].stage);
    EXPECT_EQ(a.verifications[i].passed, b.verifications[i].passed);
    EXPECT_TRUE(
        perfBitIdentical(a.verifications[i].measured, b.verifications[i].measured));
  }
  ASSERT_EQ(a.stageRecords.size(), b.stageRecords.size());
  for (std::size_t i = 0; i < a.stageRecords.size(); ++i) {
    EXPECT_EQ(a.stageRecords[i].name, b.stageRecords[i].name);
    EXPECT_EQ(a.stageRecords[i].attempt, b.stageRecords[i].attempt);
    EXPECT_EQ(a.stageRecords[i].status, b.stageRecords[i].status);
    EXPECT_EQ(a.stageRecords[i].detail, b.stageRecords[i].detail);
    EXPECT_EQ(a.stageRecords[i].evalStatus, b.stageRecords[i].evalStatus);
  }
  EXPECT_EQ(reportResultPrefix(a), reportResultPrefix(b));
}

mf::RobustResult runRobust(bool cacheOn, std::size_t threads,
                           core::ExecutionContext* ctx) {
  auto& c = cache::EvalCache::instance();
  c.clear();
  c.setEnabled(cacheOn);
  core::ScopedThreadPool scoped(threads);
  sz::SpecSet specs;
  specs.atLeast("gain_db", 55.0).atLeast("ugf", 1e6).minimize("power", 0.5, 1e-3);
  mf::RobustOptions ropts;
  ropts.synthesis = fastSynthesisOptions();
  ropts.maxRounds = 1;
  const mf::ModelFactory factory = [](const ckt::Process& p) {
    return sz::makeTwoStageCornerModel(p, nominal(), 5e-12);
  };
  if (!ctx)
    return mf::robustSynthesize(factory, nominal(), mf::VariationSpace{}, specs, ropts);
  core::ContextScope scope(*ctx);
  return mf::robustSynthesize(factory, nominal(), mf::VariationSpace{}, specs, ropts);
}

void expectRobustBitIdentical(const mf::RobustResult& a, const mf::RobustResult& b,
                              const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_TRUE(vecBitIdentical(a.nominal.x, b.nominal.x));
  EXPECT_TRUE(perfBitIdentical(a.nominal.performance, b.nominal.performance));
  EXPECT_EQ(a.nominal.feasible, b.nominal.feasible);
  EXPECT_TRUE(vecBitIdentical(a.robust.x, b.robust.x));
  EXPECT_TRUE(perfBitIdentical(a.robust.performance, b.robust.performance));
  EXPECT_EQ(a.robust.feasible, b.robust.feasible);
  EXPECT_EQ(a.robustFeasibleAtCorners, b.robustFeasibleAtCorners);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.activeCorners, b.activeCorners);
  EXPECT_EQ(a.nominalEvaluations, b.nominalEvaluations);
  EXPECT_EQ(a.robustEvaluations, b.robustEvaluations);
}

}  // namespace

TEST(ContextDifferential, FlowIsBitIdenticalBetweenAmbientAndExplicitContexts) {
  CacheGuard guard;
  const auto reference = runFlow(/*cacheOn=*/false, /*threads=*/1, nullptr);
  for (const bool cacheOn : {false, true}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
      const std::string label = std::string("cache=") + (cacheOn ? "on" : "off") +
                                " threads=" + std::to_string(threads);
      const auto ambient = runFlow(cacheOn, threads, nullptr);
      expectFlowsBitIdentical(reference, ambient, "ambient " + label);
      core::ExecutionContext ctx(deterministicConfig());
      const auto scoped = runFlow(cacheOn, threads, &ctx);
      expectFlowsBitIdentical(ambient, scoped, "explicit " + label);
      // The explicit run actually recorded a slice — the differential would
      // be vacuous if the context never saw the work it paid for.
      EXPECT_FALSE(ctx.sliceCounters().empty()) << label;
    }
  }
}

TEST(ContextDifferential, CornerSearchIsBitIdenticalBetweenAmbientAndExplicitContexts) {
  CacheGuard guard;
  const auto reference = runRobust(/*cacheOn=*/false, /*threads=*/1, nullptr);
  for (const bool cacheOn : {false, true}) {
    for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
      const std::string label = std::string("cache=") + (cacheOn ? "on" : "off") +
                                " threads=" + std::to_string(threads);
      const auto ambient = runRobust(cacheOn, threads, nullptr);
      expectRobustBitIdentical(reference, ambient, "ambient " + label);
      core::ExecutionContext ctx(deterministicConfig());
      const auto scoped = runRobust(cacheOn, threads, &ctx);
      expectRobustBitIdentical(ambient, scoped, "explicit " + label);
      EXPECT_FALSE(ctx.sliceCounters().empty()) << label;
    }
  }
}

// ---------------------------------------------------------------------------
// Registry capacity overflow (satellite: fail loudly, name the offender)
// LAST IN THIS FILE — these fill the registry for their process.

TEST(MetricsRegistryOverflow, CounterExhaustionNamesTheOffendingMetric) {
  std::string offender;
  try {
    for (std::size_t i = 0; i < metrics::kMaxCounters + 1; ++i) {
      offender = "ctx.test.overflow.counter." + std::to_string(i);
      (void)metrics::registry().counter(offender);
    }
    FAIL() << "registering " << metrics::kMaxCounters + 1
           << " fresh counters should exhaust the table";
  } catch (const std::length_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(offender), std::string::npos)
        << "overflow error must name the offending metric: " << what;
    EXPECT_NE(what.find(std::to_string(metrics::kMaxCounters)), std::string::npos)
        << "overflow error must state the capacity: " << what;
    EXPECT_NE(what.find("counter capacity exhausted"), std::string::npos) << what;
  }
}

TEST(MetricsRegistryOverflow, HistogramExhaustionNamesTheOffendingMetric) {
  std::string offender;
  try {
    for (std::size_t i = 0; i < metrics::kMaxHistograms + 1; ++i) {
      offender = "ctx.test.overflow.hist." + std::to_string(i);
      (void)metrics::registry().histogram(offender);
    }
    FAIL() << "registering " << metrics::kMaxHistograms + 1
           << " fresh histograms should exhaust the table";
  } catch (const std::length_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find(offender), std::string::npos) << what;
    EXPECT_NE(what.find("histogram capacity exhausted"), std::string::npos) << what;
  }
}
