// Tests for the observability layer: the sharded metrics registry
// (core/metrics.hpp), hierarchical trace spans (core/trace.hpp), the JSON
// run report (core/runreport.hpp), and the sim::SimStats /
// sim::FailureStats shims on top of them.
//
// The registry's totals are monotonic process-wide accumulators, so every
// test here measures *deltas* against a baseline taken at its start instead
// of asserting absolute values — tests must pass in any order and alongside
// each other's traffic.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "circuit/parser.hpp"
#include "core/flow.hpp"
#include "core/metrics.hpp"
#include "core/parallel.hpp"
#include "core/runreport.hpp"
#include "core/trace.hpp"
#include "manufacture/corners.hpp"
#include "sim/ac.hpp"
#include "sim/dc.hpp"
#include "sim/mna.hpp"
#include "sim/stats.hpp"
#include "sizing/eqmodel.hpp"
#include "topology/library.hpp"
#include "topology/select.hpp"

namespace core = amsyn::core;
namespace metrics = amsyn::core::metrics;
namespace trace = amsyn::core::trace;
namespace sim = amsyn::sim;
namespace sz = amsyn::sizing;
namespace tp = amsyn::topology;
namespace mf = amsyn::manufacture;
namespace ckt = amsyn::circuit;

namespace {

const ckt::Process& nominal() { return ckt::defaultProcess(); }

/// Spin until the monotonic clock visibly advances so span durations are
/// strictly positive even on coarse clocks.
void burnClock() {
  const auto t0 = trace::monotonicNowNs();
  while (trace::monotonicNowNs() == t0) {
  }
}

sz::SynthesisOptions fastSynthesisOptions() {
  sz::SynthesisOptions opts;
  opts.seed = 11;
  opts.multistarts = 4;
  opts.anneal.stagnationStages = 2;
  opts.anneal.coolingRate = 0.7;
  opts.refineEvaluations = 40;
  return opts;
}

}  // namespace

// ---------------------------------------------------------------------------
// Registry basics

TEST(Metrics, CounterRegistrationIsIdempotent) {
  auto& reg = metrics::Registry::instance();
  const auto a = reg.counter("test.idempotent");
  const auto b = reg.counter("test.idempotent");
  EXPECT_EQ(a.idx, b.idx);
  EXPECT_EQ(reg.counterName(a.idx), "test.idempotent");
}

TEST(Metrics, AddIsVisibleInThreadValueAndTotal) {
  auto& reg = metrics::Registry::instance();
  const auto id = reg.counter("test.add_visible");
  const auto threadBefore = reg.threadValue(id);
  const auto totalBefore = reg.total(id);
  metrics::add(id);
  metrics::add(id, 9);
  EXPECT_EQ(reg.threadValue(id) - threadBefore, 10u);
  EXPECT_EQ(reg.total(id) - totalBefore, 10u);
  EXPECT_EQ(reg.total("test.add_visible"), reg.total(id));
}

TEST(Metrics, UnknownNameTotalsToZero) {
  EXPECT_EQ(metrics::Registry::instance().total("test.never_registered"), 0u);
}

TEST(Metrics, GaugeAppearsInSnapshot) {
  auto& reg = metrics::Registry::instance();
  reg.setGauge("test.gauge", 2.5);
  const auto snap = reg.snapshot();
  ASSERT_TRUE(snap.gauges.count("test.gauge"));
  EXPECT_EQ(snap.gauges.at("test.gauge"), 2.5);
}

TEST(Metrics, HistogramAggregatesCountSumMinMax) {
  auto& reg = metrics::Registry::instance();
  const auto id = reg.histogram("test.hist");
  metrics::record(id, 1.0);
  metrics::record(id, 4.0);
  metrics::record(id, -2.0);
  const auto snap = reg.snapshot();
  ASSERT_TRUE(snap.histograms.count("test.hist"));
  const auto& h = snap.histograms.at("test.hist");
  EXPECT_GE(h.count, 3u);
  EXPECT_LE(h.min, -2.0);
  EXPECT_GE(h.max, 4.0);
}

// ---------------------------------------------------------------------------
// The counter-loss bugfix: increments from pool workers and exited threads
// must reach the aggregate.

TEST(Metrics, PoolThreadIncrementsReachTotal) {
  auto& reg = metrics::Registry::instance();
  const auto id = reg.counter("test.pool_increments");
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    const auto before = reg.total(id);
    core::ScopedThreadPool scoped(threads);
    core::parallelFor(100, [&](std::size_t) { metrics::add(id); });
    // The sum over shards is order-free: the aggregate is invariant to how
    // the 100 increments were distributed over worker threads.
    EXPECT_EQ(reg.total(id) - before, 100u) << "threads=" << threads;
  }
}

TEST(Metrics, ExitedThreadCountsFoldIntoRetiredTotals) {
  auto& reg = metrics::Registry::instance();
  const auto id = reg.counter("test.exited_thread");
  const auto before = reg.total(id);
  std::thread worker([&] { metrics::add(id, 7); });
  worker.join();  // the worker's shard retires on thread exit
  EXPECT_EQ(reg.total(id) - before, 7u);
}

TEST(SimStatsShim, TotalCapturesPoolThreadLuTraffic) {
  // The PR-1 bug: LU counters were plain thread_locals, so factorizations
  // recorded on a pool worker never reached the caller.  totalSimStats()
  // must see all of them, at any thread count.
  const auto before = sim::totalSimStats();
  core::ScopedThreadPool scoped(4);
  core::parallelFor(32, [&](std::size_t) { sim::recordLuFactorization(); });
  const auto after = sim::totalSimStats();
  EXPECT_EQ(after.luFactorizations - before.luFactorizations, 32u);
}

TEST(SimStatsShim, ThreadViewBaselinesOnReset) {
  sim::resetSimStats();
  EXPECT_EQ(sim::simStats().luFactorizations, 0u);
  EXPECT_EQ(sim::simStats().luReuses, 0u);
  sim::recordLuFactorization();
  sim::recordLuFactorization();
  sim::recordLuReuse();
  EXPECT_EQ(sim::simStats().luFactorizations, 2u);
  EXPECT_EQ(sim::simStats().luReuses, 1u);
  sim::resetSimStats();
  EXPECT_EQ(sim::simStats().luFactorizations, 0u);
  EXPECT_EQ(sim::simStats().luReuses, 0u);
}

TEST(SimStatsShim, FailureTalliesAreFirstClassRegistryCounters) {
  auto& reg = metrics::Registry::instance();
  const auto nanBefore = reg.total("sim.fail.nan_detected");
  const auto gminBefore = reg.total("sim.strategy.gmin");
  sim::resetFailureStats();
  sim::recordEvalFailure(core::EvalStatus::NanDetected);
  sim::recordEvalFailure(core::EvalStatus::NanDetected);
  sim::recordDcStrategy(sim::DcStrategy::Gmin);
  EXPECT_EQ(sim::evalFailureCount(core::EvalStatus::NanDetected), 2u);
  EXPECT_EQ(sim::dcStrategyCount(sim::DcStrategy::Gmin), 1u);
  EXPECT_EQ(reg.total("sim.fail.nan_detected"), nanBefore + 2u);
  EXPECT_EQ(reg.total("sim.strategy.gmin"), gminBefore + 1u);
  const auto snap = reg.snapshot();
  ASSERT_TRUE(snap.counters.count("sim.fail.nan_detected"));
  ASSERT_TRUE(snap.counters.count("sim.strategy.gmin"));
  // Reset re-baselines the shim reads but never zeroes the registry: the
  // process totals (and report snapshots) stay monotonic.
  sim::resetFailureStats();
  EXPECT_EQ(sim::evalFailureCount(core::EvalStatus::NanDetected), 0u);
  EXPECT_EQ(sim::dcStrategyCount(sim::DcStrategy::Gmin), 0u);
  EXPECT_EQ(reg.total("sim.fail.nan_detected"), nanBefore + 2u);
}

// ---------------------------------------------------------------------------
// Trace spans

TEST(Trace, NestedSpansRecordHierarchicalPaths) {
  trace::reset();
  {
    trace::Span outer("outer");
    burnClock();
    {
      trace::Span inner("inner");
      burnClock();
    }
  }
  const auto spans = trace::collect();
  ASSERT_TRUE(spans.count("outer"));
  ASSERT_TRUE(spans.count("outer/inner"));
  const auto& outer = spans.at("outer");
  const auto& inner = spans.at("outer/inner");
  EXPECT_EQ(outer.count, 1u);
  EXPECT_EQ(inner.count, 1u);
  EXPECT_GT(inner.totalNs, 0u);
  // A parent's wall time contains its child's.
  EXPECT_GE(outer.totalNs, inner.totalNs);
  EXPECT_LE(outer.minNs, outer.maxNs);
}

TEST(Trace, SpanAggregatesAcrossCallsAndThreads) {
  trace::reset();
  { trace::Span s("repeat"); }
  { trace::Span s("repeat"); }
  std::thread t([] { trace::Span s("repeat"); });
  t.join();
  const auto spans = trace::collect();
  ASSERT_TRUE(spans.count("repeat"));
  EXPECT_EQ(spans.at("repeat").count, 3u);
}

TEST(Trace, SpanRecordsCounterDeltas) {
  auto& reg = metrics::Registry::instance();
  const auto id = reg.counter("test.span_delta");
  trace::reset();
  {
    trace::Span s("delta_span");
    metrics::add(id, 5);
  }
  const auto spans = trace::collect();
  ASSERT_TRUE(spans.count("delta_span"));
  const auto& deltas = spans.at("delta_span").counterDeltas;
  ASSERT_GT(deltas.size(), id.idx);
  EXPECT_EQ(deltas[id.idx], 5u);
}

TEST(Trace, MacroCompilesAndRecords) {
  trace::reset();
  {
    AMSYN_SPAN("macro_span");
    burnClock();
  }
  const auto spans = trace::collect();
#if AMSYN_TRACE_ENABLED
  ASSERT_TRUE(spans.count("macro_span"));
  EXPECT_EQ(spans.at("macro_span").count, 1u);
#else
  // AMSYN_TRACE=OFF build: the macro is a no-op statement.
  EXPECT_EQ(spans.count("macro_span"), 0u);
#endif
}

// ---------------------------------------------------------------------------
// Run reports

TEST(RunReport, JsonIsDeterministicAndWellFormed) {
  core::RunReport report;
  report.name = "unit";
  report.includeMetrics = false;
  report.includeSpans = false;
  report.addInfo("topology", "two-stage \"miller\"").addValue("speedup", 2.5);
  const std::string a = report.toJson();
  EXPECT_EQ(a, report.toJson());
  EXPECT_NE(a.find("\"report\": \"unit\""), std::string::npos);
  EXPECT_NE(a.find("\"topology\": \"two-stage \\\"miller\\\"\""), std::string::npos);
  EXPECT_NE(a.find("\"speedup\": 2.5"), std::string::npos);
  // No registry sections when excluded.
  EXPECT_EQ(a.find("\"counters\""), std::string::npos);
  EXPECT_EQ(a.find("\"spans\""), std::string::npos);
}

TEST(RunReport, MetricsSectionsRoundTripThroughFile) {
  auto& reg = metrics::Registry::instance();
  metrics::add(reg.counter("test.report_counter"), 42);
  trace::reset();
  {
    AMSYN_SPAN("report_span");
    burnClock();
  }
  core::RunReport report;
  report.name = "roundtrip";
  report.addValue("answer", 42.0);
  const std::string json = report.toJson();
  EXPECT_NE(json.find("\"test.report_counter\""), std::string::npos);
#if AMSYN_TRACE_ENABLED
  EXPECT_NE(json.find("\"report_span\""), std::string::npos);
#endif

  const std::string path = ::testing::TempDir() + "amsyn_metrics_report.json";
  report.write(path);
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), json + "\n");
  std::remove(path.c_str());
}

TEST(RunReport, JsonNumberIsRoundTripExact) {
  EXPECT_EQ(core::jsonNumber(0.1), "0.10000000000000001");
  EXPECT_EQ(core::jsonNumber(std::nan("")), "null");
  EXPECT_EQ(core::jsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

TEST(RunReport, FlowReportCarriesOutcomeAndVerifications) {
  core::FlowResult result;
  result.success = true;
  result.topology = "ota";
  result.redesigns = 1;
  core::VerificationRecord pre;
  pre.stage = "pre-layout";
  pre.passed = true;
  pre.measured["gain_db"] = 62.0;
  result.verifications.push_back(pre);
  const std::string json = core::flowRunReportJson(result);
  EXPECT_NE(json.find("\"report\": \"flow\""), std::string::npos);
  EXPECT_NE(json.find("\"topology\": \"ota\""), std::string::npos);
  EXPECT_NE(json.find("\"success\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"verify.0.stage\": \"pre-layout\""), std::string::npos);
  EXPECT_NE(json.find("\"verify.0.gain_db\": 62"), std::string::npos);
  EXPECT_NE(json.find("\"failure_status\": \"ok\""), std::string::npos);
}

// ---------------------------------------------------------------------------
// Instrumented analyses: counters flow from real runs and stay invariant to
// the thread count.

TEST(Instrumentation, AcSweepFeedsRegistryCounters) {
  auto net = ckt::parseDeck(R"(
V1 in 0 DC 0 AC 1
R1 in out 1k
C1 out 0 1n
.end)");
  sim::Mna mna(net, nominal());
  auto& reg = metrics::Registry::instance();
  const auto dcBefore = reg.total("sim.dc_solves");
  const auto luBefore = sim::totalSimStats();
  const auto op = sim::dcOperatingPoint(mna);
  ASSERT_TRUE(op.converged);
  const auto sweep = sim::acAnalysis(mna, op, "out", {1e3, 1e3, 2e3, 2e3});
  ASSERT_EQ(sweep.points.size(), 4u);
  EXPECT_EQ(reg.total("sim.dc_solves") - dcBefore, 1u);
  const auto luAfter = sim::totalSimStats();
  EXPECT_EQ(luAfter.luFactorizations - luBefore.luFactorizations, 2u);
  EXPECT_EQ(luAfter.luReuses - luBefore.luReuses, 2u);
  EXPECT_GE(reg.total("sim.ac_points"), 4u);
}

TEST(Instrumentation, SynthesisCountersAreThreadCountInvariant) {
  const tp::TopologyLibrary lib = tp::amplifierLibrary(nominal(), 5e-12);
  sz::SpecSet specs;
  specs.atLeast("gain_db", 60.0).atLeast("ugf", 3e6).minimize("power", 0.5, 1e-3);
  const auto opts = fastSynthesisOptions();

  auto& reg = metrics::Registry::instance();
  const std::vector<std::string> names = {"sizing.cost_evals", "anneal.moves_attempted",
                                          "anneal.moves_accepted", "anneal.stages"};
  auto run = [&](std::size_t threads) {
    std::map<std::string, std::uint64_t> before;
    for (const auto& n : names) before[n] = reg.total(n);
    core::ScopedThreadPool scoped(threads);
    tp::selectAndSize(lib, specs, opts);
    std::map<std::string, std::uint64_t> delta;
    for (const auto& n : names) delta[n] = reg.total(n) - before[n];
    return delta;
  };

  const auto serial = run(1);
  const auto parallel = run(2);
  for (const auto& n : names) {
    EXPECT_GT(serial.at(n), 0u) << n;
    // Deterministic evaluation engine: the same work happens regardless of
    // how it was scheduled, so counter deltas match exactly.
    EXPECT_EQ(serial.at(n), parallel.at(n)) << n;
  }
}

TEST(Instrumentation, CornerSearchReportsPhaseTimesAndVertexEvals) {
  sz::SpecSet specs;
  specs.atLeast("gain_db", 55.0).atLeast("ugf", 1e6).minimize("power", 0.5, 1e-3);
  mf::RobustOptions ropts;
  ropts.synthesis = fastSynthesisOptions();
  ropts.synthesis.multistarts = 2;
  ropts.maxRounds = 1;
  const mf::ModelFactory factory = [](const ckt::Process& p) {
    return sz::makeTwoStageCornerModel(p, nominal(), 5e-12);
  };

  auto& reg = metrics::Registry::instance();
  const auto vertexBefore = reg.total("corners.vertex_evals");
  trace::reset();
  core::ScopedThreadPool scoped(2);
  const auto res = mf::robustSynthesize(factory, nominal(), {}, specs, ropts);

  // The phase wall times behind the paper's 4x-10x corner-search CPU claim.
  EXPECT_GT(res.nominalSeconds, 0.0);
  EXPECT_GT(res.cornerSearchSeconds, 0.0);
  EXPECT_GT(res.robustEvaluations, res.nominalEvaluations);
  // Each worstCaseCorner call enumerates all 64 box vertices.
  EXPECT_GE(reg.total("corners.vertex_evals") - vertexBefore, 64u);

#if AMSYN_TRACE_ENABLED
  const auto spans = trace::collect();
  ASSERT_TRUE(spans.count("nominal_sizing"));
  ASSERT_TRUE(spans.count("corner_search"));
  EXPECT_GT(spans.at("corner_search").totalNs, 0u);
  // corner_hunt runs inside parallelMap: on the caller it nests under
  // corner_search, on a pool worker it opens a fresh per-thread root.
  std::uint64_t hunts = 0;
  const std::string leaf = "corner_hunt";
  for (const auto& [path, s] : spans)
    if (path.size() >= leaf.size() &&
        path.compare(path.size() - leaf.size(), leaf.size(), leaf) == 0)
      hunts += s.count;
  EXPECT_GT(hunts, 0u);
#endif
}
