#include <gtest/gtest.h>

#include <cmath>

#include "extract/extract.hpp"
#include "extract/matchgen.hpp"
#include "extract/sens.hpp"
#include "sim/ac.hpp"
#include "sim/dc.hpp"
#include "sim/measure.hpp"
#include "sizing/opamp.hpp"

namespace ex = amsyn::extract;
namespace geom = amsyn::geom;
namespace ckt = amsyn::circuit;
namespace sim = amsyn::sim;
namespace sz = amsyn::sizing;

namespace {
const ckt::Process& proc() { return ckt::defaultProcess(); }

geom::Layout twoWireLayout(geom::Coord gap) {
  geom::Layout l;
  // Two parallel metal1 wires, 1000 units long, 12 wide, `gap` apart.
  l.wires.push_back({geom::Layer::Metal1, {0, 0, 1000, 12}, "a"});
  l.wires.push_back({geom::Layer::Metal1, {0, 12 + gap, 1000, 24 + gap}, "b"});
  return l;
}
}  // namespace

TEST(Extract, GroundCapScalesWithLength) {
  geom::Layout small, big;
  small.wires.push_back({geom::Layer::Metal1, {0, 0, 500, 12}, "n"});
  big.wires.push_back({geom::Layer::Metal1, {0, 0, 5000, 12}, "n"});
  const auto eSmall = ex::extractParasitics(small, proc());
  const auto eBig = ex::extractParasitics(big, proc());
  EXPECT_GT(eBig.groundCapOf("n"), 5.0 * eSmall.groundCapOf("n"));
}

TEST(Extract, CouplingFallsWithSpacing) {
  const auto close = ex::extractParasitics(twoWireLayout(8), proc());
  const auto far = ex::extractParasitics(twoWireLayout(20), proc());
  EXPECT_GT(close.couplingBetween("a", "b"), far.couplingBetween("a", "b"));
  EXPECT_GT(far.couplingBetween("a", "b"), 0.0);
  // Beyond the window: no coupling.
  const auto veryFar = ex::extractParasitics(twoWireLayout(100), proc());
  EXPECT_DOUBLE_EQ(veryFar.couplingBetween("a", "b"), 0.0);
}

TEST(Extract, CouplingIsSymmetric) {
  const auto e = ex::extractParasitics(twoWireLayout(8), proc());
  EXPECT_DOUBLE_EQ(e.couplingBetween("a", "b"), e.couplingBetween("b", "a"));
  EXPECT_DOUBLE_EQ(e.worstCoupling(), e.couplingBetween("a", "b"));
}

TEST(Extract, ResistanceTracksSquares) {
  geom::Layout l;
  l.wires.push_back({geom::Layer::Poly, {0, 0, 1200, 12}, "r"});  // 100 squares
  const auto e = ex::extractParasitics(l, proc());
  EXPECT_NEAR(e.nets.at("r").resistance, 100.0 * proc().rsPoly, 1.0);
}

TEST(Extract, BackAnnotateAddsCapacitors) {
  ckt::Netlist net;
  net.addVSource("V1", "a", "0", 1.0, 1.0);
  net.addResistor("R1", "a", "b", 1e3);
  net.addResistor("R2", "b", "0", 1e3);

  ex::ExtractionResult ext;
  ext.nets["b"].groundCap = 2e-12;
  ext.nets["a"].groundCap = 1e-12;
  ext.nets["a"].couplingTo["b"] = 0.5e-12;
  ext.nets["b"].couplingTo["a"] = 0.5e-12;

  const auto annotated = ex::backAnnotate(net, ext);
  std::size_t caps = 0;
  for (const auto& d : annotated.devices())
    if (d.type == ckt::DeviceType::Capacitor) ++caps;
  EXPECT_EQ(caps, 3u);  // 2 ground + 1 coupling
  // The original netlist is untouched.
  EXPECT_EQ(net.devices().size(), 3u);
}

TEST(Extract, BackAnnotationShiftsPole) {
  // RC divider: added parasitic cap must lower the measured bandwidth.
  ckt::Netlist net;
  net.addVSource("V1", "in", "0", 0.0, 1.0);
  net.addResistor("R1", "in", "out", 100e3);
  net.addCapacitor("CL", "out", "0", 1e-12);

  ex::ExtractionResult ext;
  ext.nets["out"].groundCap = 3e-12;

  auto bandwidth = [&](const ckt::Netlist& n) {
    sim::Mna mna(n, proc());
    const auto op = sim::dcOperatingPoint(mna);
    const auto sweep = sim::acAnalysis(mna, op, "out", sim::logspace(1e3, 1e9, 8));
    return sim::bandwidth3dB(sweep).value_or(0.0);
  };
  const double before = bandwidth(net);
  const double after = bandwidth(ex::backAnnotate(net, ext));
  EXPECT_LT(after, before * 0.5);  // 1 pF -> 4 pF: pole drops 4x
}

TEST(Sensitivity, FindsTheCriticalNet) {
  // Gain at 1 MHz of an RC lowpass: cap on "out" matters, cap on "in"
  // (driven by the ideal source) does not.
  ckt::Netlist net;
  net.addVSource("V1", "in", "0", 0.0, 1.0);
  net.addResistor("R1", "in", "out", 100e3);
  net.addCapacitor("CL", "out", "0", 1e-12);
  auto measure = [&](const ckt::Netlist& n) {
    sim::Mna mna(n, proc());
    const auto op = sim::dcOperatingPoint(mna);
    return std::abs(sim::acTransfer(mna, op, "out", 1e6));
  };
  const auto sens =
      ex::capacitanceSensitivity(net, measure, {"in", "out"}, 10e-15);
  EXPECT_GT(std::abs(sens.dPerfDCap.at("out")), 100.0 * std::abs(sens.dPerfDCap.at("in")));
}

TEST(Sensitivity, MapperGivesLooseBoundsToInsensitiveNets) {
  ex::Sensitivity sens;
  sens.dPerfDCap["critical"] = -2e9;   // 2 units per nF
  sens.dPerfDCap["dontcare"] = -2e3;
  const auto bounds = ex::mapParasiticBounds(sens, 0.1);
  EXPECT_GT(bounds.at("dontcare"), 1e4 * bounds.at("critical"));
  // Budget check: bound * |S| == equal share of the allowed degradation.
  EXPECT_NEAR(bounds.at("critical") * 2e9, 0.05, 1e-9);
}

TEST(Sensitivity, MapperRejectsNonPositiveBudget) {
  ex::Sensitivity sens;
  sens.dPerfDCap["n"] = 1.0;
  EXPECT_THROW(ex::mapParasiticBounds(sens, 0.0), std::invalid_argument);
}

TEST(MatchGen, FindsDiffPairAndMirrorsInOpamp) {
  const auto net = sz::buildTwoStageOpamp(sz::TwoStageParams{}, proc(), {});
  const auto constraints = ex::generateMatchingConstraints(net);

  bool pairM1M2 = false, mirrorM3M4 = false, mirrorBias = false;
  for (const auto& c : constraints) {
    if (c.kind == ex::MatchKind::DifferentialPair &&
        ((c.deviceA == "M1" && c.deviceB == "M2") ||
         (c.deviceA == "M2" && c.deviceB == "M1")))
      pairM1M2 = true;
    if (c.kind == ex::MatchKind::CurrentMirror &&
        ((c.deviceA == "M3" && c.deviceB == "M4")))
      mirrorM3M4 = true;
    if (c.kind == ex::MatchKind::CurrentMirror && c.deviceA == "M8") mirrorBias = true;
  }
  EXPECT_TRUE(pairM1M2);
  EXPECT_TRUE(mirrorM3M4);
  EXPECT_TRUE(mirrorBias);  // M8 diode mirrors into M5 or M7
}

TEST(MatchGen, DiffPairImpliesSymmetricNets) {
  const auto net = sz::buildTwoStageOpamp(sz::TwoStageParams{}, proc(), {});
  const auto constraints = ex::generateMatchingConstraints(net);
  for (const auto& c : constraints) {
    if (c.kind != ex::MatchKind::DifferentialPair) continue;
    ASSERT_EQ(c.symmetricNets.size(), 2u);
    // Gate nets of the pair: inp / inn.
    const auto& g = c.symmetricNets[0];
    EXPECT_TRUE((g.first == "inp" && g.second == "inn") ||
                (g.first == "inn" && g.second == "inp"));
  }
}

TEST(MatchGen, NoFalsePairOnSupplySources) {
  // Two unrelated NMOS with sources at ground: not a differential pair.
  ckt::Netlist net;
  net.addMos("Ma", "x", "g1", "0", "0", ckt::MosType::Nmos, 10e-6, 2e-6);
  net.addMos("Mb", "y", "g2", "0", "0", ckt::MosType::Nmos, 10e-6, 2e-6);
  const auto constraints = ex::generateMatchingConstraints(net);
  for (const auto& c : constraints)
    EXPECT_NE(c.kind, ex::MatchKind::DifferentialPair);
}
