// The resilience layer end to end: taxonomy split, deterministic backoff,
// wall-clock deadlines, per-stage and per-job retry, admission control,
// crash-consistent journaling (proven by truncating the journal at every
// byte boundary), OOM classification, and the chaos soak — seeded batch
// fault schedules over real flows at {1,2,8} threads with the evaluation
// cache on and off, asserting zero crashes and bit-deterministic results.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <new>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "circuit/process.hpp"
#include "core/context.hpp"
#include "core/evalcache.hpp"
#include "core/evalstatus.hpp"
#include "core/flow.hpp"
#include "core/flowgraph.hpp"
#include "core/jobqueue.hpp"
#include "core/metrics.hpp"
#include "core/parallel.hpp"
#include "core/resilience.hpp"
#include "sim/fault.hpp"
#include "sizing/simmodel.hpp"
#include "sizing/spec.hpp"

namespace core = amsyn::core;
namespace cache = amsyn::core::cache;
namespace sim = amsyn::sim;
namespace sz = amsyn::sizing;
namespace ckt = amsyn::circuit;

using core::EvalStatus;

namespace {

const ckt::Process& nominal() { return ckt::defaultProcess(); }

std::string tempPath(const std::string& name) {
  return ::testing::TempDir() + name;
}

std::string readFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

void writeFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

std::uint64_t counterTotal(const std::string& name) {
  return core::metrics::Registry::instance().total(name);
}

}  // namespace

// ---------------------------------------------------------------------------
// Taxonomy: transient-vs-permanent split and exception classification

TEST(EvalStatusTaxonomy, RetryableSplitMatchesTheDocumentedPolicy) {
  EXPECT_TRUE(core::isRetryable(EvalStatus::SingularJacobian));
  EXPECT_TRUE(core::isRetryable(EvalStatus::BudgetExhausted));
  EXPECT_TRUE(core::isRetryable(EvalStatus::InternalError));
  EXPECT_TRUE(core::isRetryable(EvalStatus::DeadlineExpired));

  EXPECT_FALSE(core::isRetryable(EvalStatus::Ok));
  EXPECT_FALSE(core::isRetryable(EvalStatus::DcNoConvergence));
  EXPECT_FALSE(core::isRetryable(EvalStatus::NanDetected));
  EXPECT_FALSE(core::isRetryable(EvalStatus::BadTopology));
  EXPECT_FALSE(core::isRetryable(EvalStatus::NoAcCrossing));
  EXPECT_FALSE(core::isRetryable(EvalStatus::OutOfMemory));
  EXPECT_FALSE(core::isRetryable(EvalStatus::Rejected));
}

TEST(EvalStatusTaxonomy, NewCodesHaveStableNames) {
  EXPECT_STREQ(core::evalStatusName(EvalStatus::DeadlineExpired), "deadline_expired");
  EXPECT_STREQ(core::evalStatusName(EvalStatus::OutOfMemory), "out_of_memory");
  EXPECT_STREQ(core::evalStatusName(EvalStatus::Rejected), "rejected");
}

TEST(EvalStatusTaxonomy, ClassifyExceptionSeparatesOomFromInternalError) {
  EXPECT_EQ(core::classifyException(nullptr), EvalStatus::Ok);
  EXPECT_EQ(core::classifyException(std::make_exception_ptr(std::bad_alloc{})),
            EvalStatus::OutOfMemory);
  EXPECT_EQ(core::classifyException(std::make_exception_ptr(std::runtime_error("x"))),
            EvalStatus::InternalError);
  EXPECT_EQ(core::classifyException(std::make_exception_ptr(42)),
            EvalStatus::InternalError);
}

TEST(EvalStatusTaxonomy, WorkExhaustionCoversBudgetAndDeadline) {
  EXPECT_TRUE(core::isWorkExhaustion(EvalStatus::BudgetExhausted));
  EXPECT_TRUE(core::isWorkExhaustion(EvalStatus::DeadlineExpired));
  EXPECT_FALSE(core::isWorkExhaustion(EvalStatus::SingularJacobian));
  EXPECT_FALSE(core::isWorkExhaustion(EvalStatus::Ok));
}

// ---------------------------------------------------------------------------
// Backoff / retry policy as data

TEST(BackoffPolicy, GrowsExponentiallyAndCaps) {
  core::BackoffPolicy b;  // 10ms, x2, cap 1000, no jitter
  EXPECT_EQ(b.delayMs(7, 0), 0u);
  EXPECT_EQ(b.delayMs(7, 1), 10u);
  EXPECT_EQ(b.delayMs(7, 2), 20u);
  EXPECT_EQ(b.delayMs(7, 3), 40u);
  EXPECT_EQ(b.delayMs(7, 8), 1000u);  // 10 * 2^7 = 1280, capped
  EXPECT_EQ(core::BackoffPolicy::none().delayMs(7, 3), 0u);
}

TEST(BackoffPolicy, JitterIsDeterministicAndBounded) {
  core::BackoffPolicy b;
  b.initialMs = 100;
  b.multiplier = 1.0;
  b.jitter = 0.5;
  bool sawVariation = false;
  for (std::size_t retry = 1; retry <= 16; ++retry) {
    const std::uint64_t d = b.delayMs(42, retry);
    EXPECT_GE(d, 50u);   // factor in [1 - jitter, 1]
    EXPECT_LE(d, 100u);
    EXPECT_EQ(d, b.delayMs(42, retry)) << "same (seed, retry) must reproduce";
    if (d != 100u) sawVariation = true;
  }
  EXPECT_TRUE(sawVariation);
  // A different seed draws a different schedule (overwhelmingly likely
  // across 16 retries).
  bool differs = false;
  for (std::size_t retry = 1; retry <= 16; ++retry)
    differs = differs || b.delayMs(43, retry) != b.delayMs(42, retry);
  EXPECT_TRUE(differs);
}

TEST(RetryPolicy, DefaultIsNoRetries) {
  const core::RetryPolicy p;
  EXPECT_FALSE(p.shouldRetry(EvalStatus::SingularJacobian, 1));
}

TEST(RetryPolicy, TransientPolicyFollowsTheTaxonomy) {
  const auto p = core::RetryPolicy::transient(3);
  EXPECT_TRUE(p.shouldRetry(EvalStatus::SingularJacobian, 1));
  EXPECT_TRUE(p.shouldRetry(EvalStatus::DeadlineExpired, 2));
  EXPECT_FALSE(p.shouldRetry(EvalStatus::SingularJacobian, 3));  // cap reached
  EXPECT_FALSE(p.shouldRetry(EvalStatus::NanDetected, 1));       // permanent
  EXPECT_FALSE(p.shouldRetry(EvalStatus::Ok, 1));
}

TEST(RetryPolicy, ExplicitListIsHonoredButOomIsHardExcluded) {
  core::RetryPolicy p;
  p.maxAttempts = 5;
  p.retryableStatuses = {EvalStatus::NanDetected, EvalStatus::OutOfMemory};
  EXPECT_TRUE(p.shouldRetry(EvalStatus::NanDetected, 1));
  EXPECT_FALSE(p.shouldRetry(EvalStatus::SingularJacobian, 1));  // not listed
  EXPECT_FALSE(p.shouldRetry(EvalStatus::OutOfMemory, 1))
      << "OOM must never be retried, even when listed";
}

// ---------------------------------------------------------------------------
// Deadlines on the work budget

TEST(DeadlineBudget, AlreadyExpiredDeadlineFailsTheFirstCharge) {
  core::EvalBudget budget;
  budget.setDeadlineNs(core::EvalBudget::nowNs() - 1);
  EXPECT_FALSE(budget.consume());
  EXPECT_TRUE(budget.exhausted());
  EXPECT_TRUE(budget.deadlineExpired());
  EXPECT_EQ(budget.exhaustionStatus(), EvalStatus::DeadlineExpired);
}

TEST(DeadlineBudget, FarFutureDeadlineLeavesWorkLimitSemanticsIntact) {
  core::EvalBudget budget(3);
  budget.setDeadlineNs(core::EvalBudget::nowNs() + 3'600'000'000'000LL);  // +1h
  EXPECT_TRUE(budget.consume());
  EXPECT_TRUE(budget.consume());
  EXPECT_TRUE(budget.consume());
  EXPECT_FALSE(budget.consume());  // work limit, not the clock
  EXPECT_EQ(budget.exhaustionStatus(), EvalStatus::BudgetExhausted);
}

TEST(DeadlineBudget, CheckDeadlineLatchesBetweenStrides) {
  core::EvalBudget budget;
  budget.setDeadlineNs(core::EvalBudget::nowNs() + 3'600'000'000'000LL);
  ASSERT_TRUE(budget.consume());  // first charge checks; stride now pending
  // Move the deadline into the past: the strided path would not notice for
  // another kDeadlineCheckStride charges, but a boundary checkpoint must.
  budget.setDeadlineNs(core::EvalBudget::nowNs() - 1);
  ASSERT_FALSE(budget.consume());  // setDeadlineNs re-arms an immediate check
  EXPECT_TRUE(budget.checkDeadline());
  EXPECT_EQ(budget.exhaustionStatus(), EvalStatus::DeadlineExpired);
}

TEST(DeadlineBudget, ComposedBudgetExpiresAndLatches) {
  core::DeadlineBudget dl(0, 1);  // 1 ms
  EXPECT_TRUE(dl.armed());
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(dl.expired());
  EXPECT_EQ(dl.budget().exhaustionStatus(), EvalStatus::DeadlineExpired);

  core::DeadlineBudget unarmed(0, 0);
  EXPECT_FALSE(unarmed.armed());
  EXPECT_FALSE(unarmed.expired());
}

TEST(DeadlineBudget, EffectiveDeadlinePrefersOptionThenContext) {
  // The env knob is snapshotted into ContextConfig (once, at context
  // creation); the fallback comes from the current context's config, not
  // from a live getenv.
  unsetenv("AMSYN_JOB_DEADLINE_MS");
  EXPECT_EQ(core::effectiveDeadlineMs(0), 0u);
  EXPECT_EQ(core::effectiveDeadlineMs(250), 250u);
  core::ContextConfig cfg = core::ContextConfig::fromEnv();
  cfg.jobDeadlineMs = 900;
  core::ExecutionContext ctx(cfg);
  core::ContextScope scope(ctx);
  EXPECT_EQ(core::effectiveDeadlineMs(0), 900u);
  EXPECT_EQ(core::effectiveDeadlineMs(250), 250u) << "explicit option wins";
}

TEST(DeadlineBudget, ContextConfigSnapshotsTheDeadlineEnvKnob) {
  setenv("AMSYN_JOB_DEADLINE_MS", "900", 1);
  EXPECT_EQ(core::ContextConfig::fromEnv().jobDeadlineMs, 900u);
  setenv("AMSYN_JOB_DEADLINE_MS", "junk", 1);
  EXPECT_EQ(core::ContextConfig::fromEnv().jobDeadlineMs, 0u)
      << "malformed env is ignored";
  unsetenv("AMSYN_JOB_DEADLINE_MS");
  EXPECT_EQ(core::ContextConfig::fromEnv().jobDeadlineMs, 0u);
}

TEST(DeadlineBudget, DeadlineMakesSimEvaluationsUncacheable) {
  const sz::OpampTestbench tb{5e-12, 2.2, true};
  auto tmpl = sz::twoStageTemplate(nominal(), tb);
  const std::vector<double> x = {60e-6, 30e-6, 40e-6, 120e-6, 60e-6, 2e-12, 50e-6};
  {
    sz::SimulationModel model(tmpl, nominal(), {});
    EXPECT_TRUE(model.cacheKey(x).has_value());
  }
  {
    sz::SimModelOptions opts;
    opts.deadlineNs = core::EvalBudget::nowNs() + 1'000'000'000LL;
    sz::SimulationModel model(tmpl, nominal(), opts);
    EXPECT_FALSE(model.cacheKey(x).has_value())
        << "wall-clock-truncatable evaluations must never be cached";
  }
}

// ---------------------------------------------------------------------------
// Stage-level retry inside the FlowEngine (fabricated stages)

namespace {

/// Fails with `status` on the first `failures` executions, then passes.
class FlakyStage : public core::FlowStage {
 public:
  FlakyStage(std::size_t failures, EvalStatus status)
      : failures_(failures), status_(status) {}
  std::string name() const override { return "flaky"; }
  core::StageOutcome run(core::DesignContext&) override {
    ++runs;
    if (runs <= failures_)
      return core::StageOutcome::fail("flaky stage failure", status_);
    return core::StageOutcome::pass();
  }
  std::size_t runs = 0;

 private:
  std::size_t failures_;
  EvalStatus status_;
};

class SleepStage : public core::FlowStage {
 public:
  explicit SleepStage(std::uint64_t ms) : ms_(ms) {}
  std::string name() const override { return "sleep"; }
  core::StageOutcome run(core::DesignContext&) override {
    ++runs;
    std::this_thread::sleep_for(std::chrono::milliseconds(ms_));
    return core::StageOutcome::pass();
  }
  std::size_t runs = 0;

 private:
  std::uint64_t ms_;
};

class ThrowStage : public core::FlowStage {
 public:
  std::string name() const override { return "throw"; }
  core::StageOutcome run(core::DesignContext&) override {
    throw std::bad_alloc{};
  }
};

sz::SpecSet trivialSpecs() {
  sz::SpecSet specs;
  specs.atLeast("ugf", 1e6);
  return specs;
}

std::size_t countRecords(const core::FlowResult& r, const std::string& stage) {
  std::size_t n = 0;
  for (const auto& rec : r.stageRecords) n += rec.name == stage ? 1 : 0;
  return n;
}

}  // namespace

TEST(FlowStageRetry, TransientFailureRetriesUntilPassAndCountsIt) {
  const std::uint64_t attempts0 = counterTotal("core.flow.retry.attempts");
  const std::uint64_t successes0 = counterTotal("core.flow.retry.successes");

  std::vector<std::unique_ptr<core::FlowStage>> stages;
  auto flaky = std::make_unique<FlakyStage>(2, EvalStatus::SingularJacobian);
  FlakyStage* flakyPtr = flaky.get();
  stages.push_back(std::move(flaky));
  core::FlowEngine engine(std::move(stages));

  core::FlowOptions opts;
  opts.maxRedesigns = 0;
  opts.stageRetry = core::RetryPolicy::transient(3);
  opts.stageRetry.backoff = core::BackoffPolicy::none();
  const auto result = engine.run(trivialSpecs(), nominal(), opts);

  EXPECT_TRUE(result.success);
  EXPECT_EQ(flakyPtr->runs, 3u);
  EXPECT_EQ(countRecords(result, "flaky"), 3u)
      << "every execution must leave its own StageRecord";
  EXPECT_EQ(result.stageRecords[0].status, core::StageStatus::Failed);
  EXPECT_EQ(result.stageRecords[1].status, core::StageStatus::Failed);
  EXPECT_EQ(result.stageRecords[2].status, core::StageStatus::Passed);
  EXPECT_EQ(counterTotal("core.flow.retry.attempts") - attempts0, 2u);
  EXPECT_EQ(counterTotal("core.flow.retry.successes") - successes0, 1u);
}

TEST(FlowStageRetry, PermanentFailureIsNeverRetried) {
  std::vector<std::unique_ptr<core::FlowStage>> stages;
  auto flaky = std::make_unique<FlakyStage>(99, EvalStatus::BadTopology);
  FlakyStage* flakyPtr = flaky.get();
  stages.push_back(std::move(flaky));
  core::FlowEngine engine(std::move(stages));

  core::FlowOptions opts;
  opts.maxRedesigns = 0;
  opts.stageRetry = core::RetryPolicy::transient(5);
  opts.stageRetry.backoff = core::BackoffPolicy::none();
  const auto result = engine.run(trivialSpecs(), nominal(), opts);

  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.failureStatus, EvalStatus::BadTopology);
  EXPECT_EQ(flakyPtr->runs, 1u);
}

TEST(FlowStageRetry, ExhaustedRetriesFailTheAttemptAndCount) {
  const std::uint64_t exhausted0 = counterTotal("core.flow.retry.exhausted");
  std::vector<std::unique_ptr<core::FlowStage>> stages;
  auto flaky = std::make_unique<FlakyStage>(99, EvalStatus::SingularJacobian);
  FlakyStage* flakyPtr = flaky.get();
  stages.push_back(std::move(flaky));
  core::FlowEngine engine(std::move(stages));

  core::FlowOptions opts;
  opts.maxRedesigns = 0;
  opts.stageRetry = core::RetryPolicy::transient(2);
  opts.stageRetry.backoff = core::BackoffPolicy::none();
  const auto result = engine.run(trivialSpecs(), nominal(), opts);

  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.failureStatus, EvalStatus::SingularJacobian);
  EXPECT_EQ(flakyPtr->runs, 2u);  // maxAttempts total executions
  EXPECT_EQ(counterTotal("core.flow.retry.exhausted") - exhausted0, 1u);
}

TEST(FlowStageRetry, DefaultOptionsKeepTheOldSingleAttemptBehavior) {
  std::vector<std::unique_ptr<core::FlowStage>> stages;
  auto flaky = std::make_unique<FlakyStage>(99, EvalStatus::SingularJacobian);
  FlakyStage* flakyPtr = flaky.get();
  stages.push_back(std::move(flaky));
  core::FlowEngine engine(std::move(stages));

  core::FlowOptions opts;
  opts.maxRedesigns = 1;
  const auto result = engine.run(trivialSpecs(), nominal(), opts);
  EXPECT_FALSE(result.success);
  EXPECT_EQ(flakyPtr->runs, 2u) << "one execution per redesign attempt, no retries";
}

// ---------------------------------------------------------------------------
// Deadlines at the engine level

TEST(FlowDeadline, ExpiryAtAStageBoundaryIsTerminal) {
  std::vector<std::unique_ptr<core::FlowStage>> stages;
  auto sleeper = std::make_unique<SleepStage>(30);
  SleepStage* sleeperPtr = sleeper.get();
  stages.push_back(std::move(sleeper));
  stages.push_back(std::make_unique<FlakyStage>(0, EvalStatus::Ok));
  core::FlowEngine engine(std::move(stages));

  core::FlowOptions opts;
  opts.maxRedesigns = 4;
  opts.deadlineMs = 5;  // expires inside the sleep stage
  const auto result = engine.run(trivialSpecs(), nominal(), opts);

  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.failureStatus, EvalStatus::DeadlineExpired);
  EXPECT_EQ(sleeperPtr->runs, 1u) << "no redesign attempts after expiry";
  EXPECT_EQ(countRecords(result, "flaky"), 0u)
      << "the boundary check must stop the attempt before the next stage";
}

TEST(FlowDeadline, RealFlowReportsDeadlineExpired) {
  // A 1 ms allowance cannot cover topology selection + sizing: the flow
  // must come back quickly with the structured deadline status, not hang
  // or burn through every redesign attempt.
  sz::SpecSet specs;
  specs.atLeast("gain_db", 36.0).atLeast("ugf", 1e7).atLeast("pm", 60.0);
  core::FlowOptions opts;
  opts.maxRedesigns = 4;
  opts.deadlineMs = 1;
  const auto result = core::synthesizeAmplifier(specs, nominal(), opts);
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.failureStatus, EvalStatus::DeadlineExpired);
}

TEST(FlowDeadline, ZeroDeadlineMeansNone) {
  std::vector<std::unique_ptr<core::FlowStage>> stages;
  stages.push_back(std::make_unique<SleepStage>(5));
  core::FlowEngine engine(std::move(stages));
  core::FlowOptions opts;  // deadlineMs = 0, env unset
  unsetenv("AMSYN_JOB_DEADLINE_MS");
  const auto result = engine.run(trivialSpecs(), nominal(), opts);
  EXPECT_TRUE(result.success);
}

// ---------------------------------------------------------------------------
// OOM containment: a throwing stage (or a bad_alloc anywhere inside a job)
// becomes out_of_memory, which nothing retries.

TEST(OomContainment, BadAllocInAStageIsContainedAndNotRetried) {
  auto makeStages = [] {
    std::vector<std::unique_ptr<core::FlowStage>> stages;
    stages.push_back(std::make_unique<ThrowStage>());
    return stages;
  };
  // The stage throws out of run(); the engine does not catch (stages are
  // trusted engine components) but the JobQueue's task boundary must.
  core::JobQueueOptions qopts;
  qopts.stageFactory = makeStages;
  qopts.retry = core::RetryPolicy::transient(5);
  qopts.retry.retryableStatuses = {EvalStatus::OutOfMemory,
                                   EvalStatus::InternalError};
  qopts.retry.backoff = core::BackoffPolicy::none();
  qopts.flow.maxRedesigns = 0;

  const auto out = core::runBatchResilient({trivialSpecs()}, nominal(), qopts);
  ASSERT_EQ(out.jobs.size(), 1u);
  EXPECT_EQ(out.jobs[0].state, core::JobState::Failed);
  EXPECT_EQ(out.jobs[0].result.failureStatus, EvalStatus::OutOfMemory);
  EXPECT_EQ(out.jobs[0].attempts, 1u) << "OOM must never be retried";
}

// ---------------------------------------------------------------------------
// Job queue: admission control, per-job retry, structured rejection

namespace {

core::JobQueueOptions passingQueueOptions() {
  core::JobQueueOptions opts;
  opts.stageFactory = [] {
    std::vector<std::unique_ptr<core::FlowStage>> stages;
    stages.push_back(std::make_unique<FlakyStage>(0, EvalStatus::Ok));
    return stages;
  };
  opts.flow.maxRedesigns = 0;
  return opts;
}

std::vector<sz::SpecSet> trivialBatch(std::size_t n) {
  return std::vector<sz::SpecSet>(n, trivialSpecs());
}

}  // namespace

TEST(JobQueue, AdmissionCapShedsOverflowWithStructuredRejection) {
  const std::uint64_t rejected0 = counterTotal("core.jobs.rejected");
  auto opts = passingQueueOptions();
  opts.maxPending = 3;
  const auto out = core::JobQueue(opts).run(trivialBatch(6), nominal());

  ASSERT_EQ(out.jobs.size(), 6u);
  EXPECT_EQ(out.admitted, 3u);
  EXPECT_EQ(out.rejected, 3u);
  for (std::size_t i = 0; i < 3; ++i) {
    EXPECT_EQ(out.jobs[i].state, core::JobState::Succeeded) << "job " << i;
    EXPECT_TRUE(out.jobs[i].result.success);
  }
  for (std::size_t i = 3; i < 6; ++i) {
    EXPECT_EQ(out.jobs[i].state, core::JobState::Rejected) << "job " << i;
    EXPECT_FALSE(out.jobs[i].result.success);
    EXPECT_EQ(out.jobs[i].result.failureStatus, EvalStatus::Rejected);
    EXPECT_NE(out.jobs[i].result.failureReason.find("admission control"),
              std::string::npos);
    EXPECT_EQ(out.jobs[i].attempts, 0u);
  }
  EXPECT_EQ(counterTotal("core.jobs.rejected") - rejected0, 3u);

  const std::string report = core::batchRunReportJson(out);
  EXPECT_NE(report.find("\"rejected\": 3"), std::string::npos) << report;
}

TEST(JobQueue, UnboundedQueueAdmitsEverything) {
  const auto out = core::JobQueue(passingQueueOptions()).run(trivialBatch(4), nominal());
  EXPECT_EQ(out.admitted, 4u);
  EXPECT_EQ(out.rejected, 0u);
  for (const auto& rec : out.jobs)
    EXPECT_EQ(rec.state, core::JobState::Succeeded);
}

TEST(JobQueue, JobLevelRetryRerunsTheWholeFlow) {
  const std::uint64_t retries0 = counterTotal("core.jobs.retries");
  // The first engine run fails transiently; the factory's shared counter
  // makes the second run pass — exactly a transient environmental fault.
  auto failsRemaining = std::make_shared<std::atomic<int>>(1);
  core::JobQueueOptions opts;
  opts.stageFactory = [failsRemaining] {
    std::vector<std::unique_ptr<core::FlowStage>> stages;
    const int remaining = failsRemaining->fetch_sub(1);
    stages.push_back(std::make_unique<FlakyStage>(
        remaining > 0 ? 99 : 0, EvalStatus::SingularJacobian));
    return stages;
  };
  opts.flow.maxRedesigns = 0;
  opts.retry = core::RetryPolicy::transient(3);
  opts.retry.backoff = core::BackoffPolicy::none();

  const auto out = core::JobQueue(opts).run(trivialBatch(1), nominal());
  ASSERT_EQ(out.jobs.size(), 1u);
  EXPECT_EQ(out.jobs[0].state, core::JobState::Succeeded);
  EXPECT_EQ(out.jobs[0].attempts, 2u);
  EXPECT_EQ(out.retried, 1u);
  EXPECT_EQ(counterTotal("core.jobs.retries") - retries0, 1u);
}

TEST(JobQueue, FailedJobsReportTheFlowsStatus) {
  core::JobQueueOptions opts;
  opts.stageFactory = [] {
    std::vector<std::unique_ptr<core::FlowStage>> stages;
    stages.push_back(std::make_unique<FlakyStage>(99, EvalStatus::NanDetected));
    return stages;
  };
  opts.flow.maxRedesigns = 0;
  const auto out = core::JobQueue(opts).run(trivialBatch(2), nominal());
  for (const auto& rec : out.jobs) {
    EXPECT_EQ(rec.state, core::JobState::Failed);
    EXPECT_EQ(rec.result.failureStatus, EvalStatus::NanDetected);
  }
}

// ---------------------------------------------------------------------------
// Journal lines: round-trip, corruption rejection

TEST(JobJournal, EntryRoundTripsThroughItsLine) {
  core::JobJournalEntry e;
  e.job = 17;
  e.attempts = 3;
  e.success = true;
  e.topology = "two-stage-miller";
  e.status = EvalStatus::Ok;
  e.failureReason = "";
  e.redesigns = 2;
  const auto parsed = core::JobJournalEntry::parseLine(e.toLine());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, e);
}

TEST(JobJournal, EntryWithHostileStringsRoundTrips) {
  core::JobJournalEntry e;
  e.job = 0;
  e.success = false;
  e.topology = "a\"b\\c";
  e.status = EvalStatus::DeadlineExpired;
  e.failureReason = "line1\nline2\ttab\rcr \x01 control {\"json\":1}";
  const auto parsed = core::JobJournalEntry::parseLine(e.toLine());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, e);
}

TEST(JobJournal, EverySingleByteCorruptionIsRejected) {
  core::JobJournalEntry e;
  e.job = 5;
  e.attempts = 2;
  e.success = true;
  e.topology = "folded-cascode";
  e.status = EvalStatus::Ok;
  e.failureReason = "quote\" and backslash\\";
  e.redesigns = 1;
  const std::string line = e.toLine();
  for (std::size_t i = 0; i < line.size(); ++i) {
    std::string bad = line;
    bad[i] = static_cast<char>(bad[i] ^ 0x01);
    const auto parsed = core::JobJournalEntry::parseLine(bad);
    // Either the checksum/framing rejects it outright, or (for a flip
    // inside the crc digits themselves) the recomputed crc mismatches.
    EXPECT_FALSE(parsed.has_value()) << "byte " << i << " flip accepted: " << bad;
  }
}

TEST(JobJournal, LoadStopsAtTheFirstInvalidLine) {
  const std::string path = tempPath("journal_stop.jsonl");
  core::JobJournalEntry a;
  a.job = 0;
  a.success = true;
  core::JobJournalEntry b;
  b.job = 1;
  b.success = false;
  b.status = EvalStatus::DcNoConvergence;
  writeFile(path, a.toLine() + "\n" + "garbage line\n" + b.toLine() + "\n");
  const auto loaded = core::BatchJournal::load(path);
  EXPECT_EQ(loaded.size(), 1u) << "entries after the tear cannot be trusted";
  EXPECT_TRUE(loaded.count(0));
  std::remove(path.c_str());
}

TEST(JobJournal, MissingFileIsAnEmptyJournal) {
  EXPECT_TRUE(core::BatchJournal::load(tempPath("nonexistent.jsonl")).empty());
}

// The crash-consistency property, proven exhaustively: a journal truncated
// at EVERY byte boundary loads exactly the complete lines before the cut.
TEST(JobJournal, TruncationAtEveryByteBoundaryLoadsTheValidPrefix) {
  std::vector<core::JobJournalEntry> entries(4);
  entries[0] = {0, 1, true, "two-stage-miller", EvalStatus::Ok, "", 0};
  entries[1] = {1, 3, false, "ota", EvalStatus::SingularJacobian,
                "verify failed: singular_jacobian", 2};
  entries[2] = {2, 1, false, "", EvalStatus::Rejected,
                "admission control: queue capacity 3 exceeded", 0};
  entries[3] = {3, 2, true, "folded\"cascode\\x", EvalStatus::Ok, "", 1};

  std::string full;
  std::vector<std::size_t> lineEnds;  // byte offset just past each '\n'
  for (const auto& e : entries) {
    full += e.toLine() + "\n";
    lineEnds.push_back(full.size());
  }

  const std::string path = tempPath("journal_trunc.jsonl");
  for (std::size_t cut = 0; cut <= full.size(); ++cut) {
    writeFile(path, full.substr(0, cut));
    const auto loaded = core::BatchJournal::load(path);
    // A line whose content is fully present counts even when the crash tore
    // off only its trailing newline — the checksum and framing are intact.
    std::size_t wholeLines = 0;
    while (wholeLines < lineEnds.size() && lineEnds[wholeLines] - 1 <= cut) ++wholeLines;
    ASSERT_EQ(loaded.size(), wholeLines) << "cut at byte " << cut;
    for (std::size_t i = 0; i < wholeLines; ++i) {
      ASSERT_TRUE(loaded.count(i)) << "cut at byte " << cut;
      EXPECT_EQ(loaded.at(i), entries[i]) << "cut at byte " << cut;
    }
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Crash + resume: a batch killed at any journal boundary resumes to the
// byte-identical report of an uninterrupted run.

TEST(JobQueueJournal, ResumeFromEveryTruncationReproducesTheFullReport) {
  const std::string path = tempPath("batch_journal.jsonl");
  std::remove(path.c_str());

  // Deterministic mixed outcomes: even jobs pass, odd jobs fail
  // permanently, job 5 is shed by admission control.
  core::JobQueueOptions opts;
  opts.maxPending = 5;
  opts.journalPath = path;
  opts.flow.maxRedesigns = 0;
  opts.stageFactory = [] {
    std::vector<std::unique_ptr<core::FlowStage>> stages;
    class ParityStage : public core::FlowStage {
     public:
      std::string name() const override { return "parity"; }
      core::StageOutcome run(core::DesignContext& ctx) override {
        // Per-job seeds are streamSeed(base, index): recover parity from
        // the spec set instead — jobs with an even ugf bound pass.
        const double bound = ctx.specs.specs().front().bound;
        const bool even = static_cast<std::uint64_t>(bound) % 2 == 0;
        ctx.result.topology = even ? "even-topo" : "";
        if (even) return core::StageOutcome::pass();
        return core::StageOutcome::fail("odd job fails (fabricated)",
                                        EvalStatus::DcNoConvergence);
      }
    };
    stages.push_back(std::make_unique<ParityStage>());
    return stages;
  };

  std::vector<sz::SpecSet> batch(6);
  for (std::size_t i = 0; i < batch.size(); ++i)
    batch[i].atLeast("ugf", 1e6 + static_cast<double>(i));  // parity = i % 2

  const auto full = core::JobQueue(opts).run(batch, nominal());
  const std::string fullReport = core::batchRunReportJson(full);
  const std::string journalBytes = readFile(path);
  ASSERT_FALSE(journalBytes.empty());

  // Crash simulation: truncate the journal at every byte boundary, resume,
  // and demand the exact same final report.
  core::JobQueueOptions resumeOpts = opts;
  resumeOpts.resume = true;
  for (std::size_t cut = 0; cut <= journalBytes.size(); ++cut) {
    writeFile(path, journalBytes.substr(0, cut));
    const auto resumed = core::JobQueue(resumeOpts).run(batch, nominal());
    EXPECT_EQ(core::batchRunReportJson(resumed), fullReport)
        << "resume after truncation at byte " << cut;
  }

  // And a resumed run marks journaled jobs as restored, not re-run.
  writeFile(path, journalBytes);
  const auto resumed = core::JobQueue(resumeOpts).run(batch, nominal());
  EXPECT_EQ(resumed.resumed, batch.size());
  for (const auto& rec : resumed.jobs) EXPECT_TRUE(rec.fromJournal);
  std::remove(path.c_str());
}

TEST(JobQueueJournal, FreshRunTruncatesAStaleJournal) {
  const std::string path = tempPath("stale_journal.jsonl");
  writeFile(path, "stale garbage\n");
  auto opts = passingQueueOptions();
  opts.journalPath = path;
  opts.resume = false;
  const auto out = core::JobQueue(opts).run(trivialBatch(2), nominal());
  EXPECT_EQ(out.resumed, 0u);
  const auto loaded = core::BatchJournal::load(path);
  EXPECT_EQ(loaded.size(), 2u) << "journal holds exactly this run's jobs";
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Batch fault schedule: pure-function draws, window gating, thread-count
// invariance of the per-job fault sequence.

namespace {

std::vector<bool> drawSequence(std::size_t jobIndex, sim::FaultSite site,
                               std::size_t n, bool openWindow) {
  sim::BatchFaultScope scope(jobIndex);
  std::optional<sim::SolverFaultWindow> window;
  if (openWindow) window.emplace();
  std::vector<bool> seq(n);
  for (std::size_t i = 0; i < n; ++i) seq[i] = sim::takeBatchFault(site);
  return seq;
}

}  // namespace

TEST(BatchFaults, DisarmedScheduleNeverFires) {
  ASSERT_FALSE(sim::batchFaultsArmed());
  const auto seq = drawSequence(0, sim::FaultSite::StageRun, 32, true);
  for (const bool hit : seq) EXPECT_FALSE(hit);
}

TEST(BatchFaults, DrawsArePureFunctionsOfJobSiteOccurrence) {
  sim::BatchFaultPlan plan;
  plan.seed = 99;
  plan.rate(sim::FaultSite::StageRun) = 0.5;
  sim::ScopedBatchFaults armed(plan);

  const auto a = drawSequence(3, sim::FaultSite::StageRun, 64, false);
  const auto b = drawSequence(3, sim::FaultSite::StageRun, 64, false);
  EXPECT_EQ(a, b) << "same (job, site, occurrence) must reproduce";
  EXPECT_NE(a, drawSequence(4, sim::FaultSite::StageRun, 64, false))
      << "different jobs draw decorrelated sequences";

  std::size_t hits = 0;
  for (const bool hit : a) hits += hit ? 1 : 0;
  EXPECT_GT(hits, 16u);  // rate 0.5 over 64 draws: binomial, far from 0/64
  EXPECT_LT(hits, 48u);
}

TEST(BatchFaults, SequencesAreThreadCountInvariant) {
  sim::BatchFaultPlan plan;
  plan.seed = 7;
  plan.rate(sim::FaultSite::JobTask) = 0.3;
  sim::ScopedBatchFaults armed(plan);

  // Reference sequences, drawn serially.
  std::vector<std::vector<bool>> reference(8);
  for (std::size_t j = 0; j < reference.size(); ++j)
    reference[j] = drawSequence(j, sim::FaultSite::JobTask, 32, false);

  for (const std::size_t threads : {std::size_t{2}, std::size_t{8}}) {
    core::ScopedThreadPool scoped(threads);
    const auto parallelDrawn = core::parallelMap(reference.size(), [&](std::size_t j) {
      return drawSequence(j, sim::FaultSite::JobTask, 32, false);
    });
    EXPECT_EQ(parallelDrawn, reference) << "threads=" << threads;
  }
}

TEST(BatchFaults, SolverSitesFireOnlyInsideAWindow) {
  sim::BatchFaultPlan plan;
  plan.seed = 1;
  plan.rate(sim::FaultSite::DcNewton) = 1.0;
  plan.rate(sim::FaultSite::BudgetCharge) = 1.0;
  sim::ScopedBatchFaults armed(plan);

  const auto closed = drawSequence(0, sim::FaultSite::DcNewton, 8, false);
  for (const bool hit : closed) EXPECT_FALSE(hit) << "no window, no solver faults";
  const auto open = drawSequence(0, sim::FaultSite::DcNewton, 8, true);
  for (const bool hit : open) EXPECT_TRUE(hit);

  // consumeWork consults the BudgetCharge site through the same gate.
  {
    sim::BatchFaultScope scope(0);
    EXPECT_TRUE(sim::consumeWork(nullptr));
    sim::SolverFaultWindow window;
    EXPECT_FALSE(sim::consumeWork(nullptr)) << "injected exhaustion";
  }
}

TEST(BatchFaults, NoScopeMeansNoFaults) {
  sim::BatchFaultPlan plan;
  plan.seed = 1;
  plan.rate(sim::FaultSite::StageRun) = 1.0;
  sim::ScopedBatchFaults armed(plan);
  EXPECT_FALSE(sim::takeBatchFault(sim::FaultSite::StageRun))
      << "threads with no bound job must never draw faults";
}

TEST(BatchFaults, ScopesNestAndRestore) {
  sim::BatchFaultPlan plan;
  plan.seed = 5;
  plan.rate(sim::FaultSite::StageRun) = 0.5;
  sim::ScopedBatchFaults armed(plan);

  const auto ref = drawSequence(1, sim::FaultSite::StageRun, 8, false);
  sim::BatchFaultScope outer(1);
  std::vector<bool> outerSeq;
  for (std::size_t i = 0; i < 4; ++i)
    outerSeq.push_back(sim::takeBatchFault(sim::FaultSite::StageRun));
  {
    sim::BatchFaultScope inner(2);  // fresh counters for job 2
    (void)sim::takeBatchFault(sim::FaultSite::StageRun);
  }
  for (std::size_t i = 0; i < 4; ++i)  // outer counters resume where they left off
    outerSeq.push_back(sim::takeBatchFault(sim::FaultSite::StageRun));
  EXPECT_EQ(outerSeq, ref);
}

// ---------------------------------------------------------------------------
// Chaos soak: real flows under a seeded fault schedule at {1,2,8} threads,
// cache on/off.  Zero hangs (the suite's ctest TIMEOUT enforces it), zero
// crashes, every job terminal, and the surviving results bit-identical
// across every configuration.

namespace {

sz::SynthesisOptions fastSynthesisOptions() {
  sz::SynthesisOptions opts;
  opts.seed = 11;
  opts.multistarts = 2;
  opts.anneal.stagnationStages = 2;
  opts.anneal.coolingRate = 0.7;
  opts.refineEvaluations = 40;
  return opts;
}

std::vector<sz::SpecSet> chaosSpecs() {
  std::vector<sz::SpecSet> batch(3);
  batch[0].atLeast("gain_db", 36.0).atLeast("ugf", 1e7).atLeast("pm", 60.0).atMost(
      "power", 4e-3);
  batch[1].atLeast("gain_db", 55.0).atLeast("ugf", 5e6).atLeast("pm", 55.0).minimize(
      "power", 0.3, 1e-3);
  batch[2].atLeast("gain_db", 180.0).atLeast("ugf", 1e10).atLeast("pm", 75.0);
  return batch;
}

core::JobQueueOptions chaosQueueOptions() {
  core::JobQueueOptions opts;
  opts.flow.loadCap = 2e-12;
  opts.flow.seed = 7;
  opts.flow.maxRedesigns = 1;
  opts.flow.synthesis = fastSynthesisOptions();
  opts.flow.layout.annealPlacement = false;
  opts.retry = core::RetryPolicy::transient(2);
  opts.retry.backoff = core::BackoffPolicy::none();
  return opts;
}

void expectJobsIdentical(const core::BatchRunResult& a, const core::BatchRunResult& b,
                         const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(a.jobs.size(), b.jobs.size());
  for (std::size_t i = 0; i < a.jobs.size(); ++i) {
    EXPECT_EQ(a.jobs[i].state, b.jobs[i].state) << "job " << i;
    EXPECT_EQ(a.jobs[i].attempts, b.jobs[i].attempts) << "job " << i;
    EXPECT_EQ(a.jobs[i].result.success, b.jobs[i].result.success) << "job " << i;
    EXPECT_EQ(a.jobs[i].result.topology, b.jobs[i].result.topology) << "job " << i;
    EXPECT_EQ(a.jobs[i].result.failureStatus, b.jobs[i].result.failureStatus)
        << "job " << i;
    EXPECT_EQ(a.jobs[i].result.failureReason, b.jobs[i].result.failureReason)
        << "job " << i;
    EXPECT_EQ(a.jobs[i].result.designPoint, b.jobs[i].result.designPoint)
        << "job " << i;
  }
  EXPECT_EQ(core::batchRunReportJson(a), core::batchRunReportJson(b));
}

}  // namespace

TEST(ChaosSoak, InjectedFaultsNeverCrashAndResultsAreThreadAndCacheInvariant) {
  sim::BatchFaultPlan plan;
  plan.seed = 2026;
  plan.rate(sim::FaultSite::StageRun) = 0.10;
  plan.rate(sim::FaultSite::JobTask) = 0.10;
  plan.rate(sim::FaultSite::DcNewton) = 0.05;
  plan.rate(sim::FaultSite::LuFactor) = 0.05;
  sim::ScopedBatchFaults armed(plan);

  auto& c = cache::EvalCache::instance();
  const bool wasEnabled = c.enabled();
  const auto batch = chaosSpecs();
  const auto opts = chaosQueueOptions();

  std::optional<core::BatchRunResult> reference;
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    for (const bool cacheOn : {false, true}) {
      c.clear();
      c.setEnabled(cacheOn);
      core::ScopedThreadPool scoped(threads);
      auto out = core::JobQueue(opts).run(batch, nominal());
      ASSERT_EQ(out.jobs.size(), batch.size());
      for (const auto& rec : out.jobs) {
        EXPECT_TRUE(rec.state == core::JobState::Succeeded ||
                    rec.state == core::JobState::Failed)
            << "every job must reach a terminal state";
        EXPECT_GE(rec.attempts, 1u);
        EXPECT_LE(rec.attempts, opts.retry.maxAttempts);
      }
      if (!reference) {
        reference = std::move(out);
      } else {
        expectJobsIdentical(*reference, out,
                            "threads=" + std::to_string(threads) +
                                " cache=" + (cacheOn ? "on" : "off"));
      }
    }
  }
  c.setEnabled(wasEnabled);
  c.clear();
}

TEST(ChaosSoak, SaturatedStageFaultsDegradeToFailedJobsNotCrashes) {
  sim::BatchFaultPlan plan;
  plan.seed = 3;
  plan.rate(sim::FaultSite::StageRun) = 1.0;  // every stage execution fails
  sim::ScopedBatchFaults armed(plan);

  auto opts = chaosQueueOptions();
  opts.retry = core::RetryPolicy::transient(2);
  opts.retry.backoff = core::BackoffPolicy::none();
  const auto out = core::JobQueue(opts).run(chaosSpecs(), nominal());
  for (const auto& rec : out.jobs) {
    EXPECT_EQ(rec.state, core::JobState::Failed);
    EXPECT_EQ(rec.result.failureStatus, EvalStatus::InternalError);
    EXPECT_EQ(rec.attempts, 2u) << "retries granted, then exhausted";
  }
}

TEST(ChaosSoak, InjectedDeadlineChecksTerminateJobsWithDeadlineExpired) {
  sim::BatchFaultPlan plan;
  plan.seed = 4;
  plan.rate(sim::FaultSite::DeadlineCheck) = 1.0;
  sim::ScopedBatchFaults armed(plan);

  auto opts = chaosQueueOptions();
  opts.retry = core::RetryPolicy::none();
  const auto out = core::JobQueue(opts).run(chaosSpecs(), nominal());
  for (const auto& rec : out.jobs) {
    EXPECT_EQ(rec.state, core::JobState::Failed);
    EXPECT_EQ(rec.result.failureStatus, EvalStatus::DeadlineExpired);
  }
}

// ---------------------------------------------------------------------------
// Report and metrics schema

TEST(BatchReport, CarriesPerJobOutcomesAndAggregates) {
  auto opts = passingQueueOptions();
  opts.maxPending = 1;
  const auto out = core::JobQueue(opts).run(trivialBatch(2), nominal());
  const std::string report = core::batchRunReportJson(out);
  EXPECT_NE(report.find("\"report\": \"jobs\""), std::string::npos) << report;
  EXPECT_NE(report.find("\"job.0.state\": \"succeeded\""), std::string::npos) << report;
  EXPECT_NE(report.find("\"job.1.state\": \"rejected\""), std::string::npos) << report;
  EXPECT_NE(report.find("\"job.1.status\": \"rejected\""), std::string::npos) << report;
  // No metrics/span snapshot: the report must be identical across a full
  // run and a crash+resume, and registry contents differ between those.
  EXPECT_EQ(report.find("\"counters\""), std::string::npos) << report;
  EXPECT_EQ(report.find("\"spans\""), std::string::npos) << report;
}

TEST(MetricsSchema, ResilienceCountersAreRegisteredEagerly) {
  // Constructing one engine + one queue is enough; the counters must exist
  // in the registry snapshot even when nothing incremented them.
  core::FlowEngine engine(core::amplifierStageGraph());
  core::JobQueue queue(core::JobQueueOptions{});
  const auto snap = core::metrics::Registry::instance().snapshot();
  for (const char* name :
       {"core.flow.retry.attempts", "core.flow.retry.successes",
        "core.flow.retry.exhausted", "core.flow.deadline.expired",
        "core.jobs.submitted", "core.jobs.admitted", "core.jobs.rejected",
        "core.jobs.succeeded", "core.jobs.failed", "core.jobs.retries",
        "core.jobs.resumed", "core.jobs.exceptions"})
    EXPECT_TRUE(snap.counters.count(name)) << name;
}
