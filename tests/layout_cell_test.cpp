#include <gtest/gtest.h>

#include <functional>
#include <numeric>
#include <set>

#include "circuit/netlist.hpp"
#include "layout/cell/modgen.hpp"
#include "layout/cell/place.hpp"
#include "layout/cell/route.hpp"
#include "layout/cell/stack.hpp"

namespace lay = amsyn::layout;
namespace geom = amsyn::geom;
namespace ckt = amsyn::circuit;

namespace {
const ckt::Process& proc() { return ckt::defaultProcess(); }

ckt::MosParams nmos(double w = 10e-6, double l = 2e-6) {
  return {ckt::MosType::Nmos, w, l, 1, 0.0, 1.0};
}
ckt::MosParams pmos(double w = 10e-6, double l = 2e-6) {
  return {ckt::MosType::Pmos, w, l, 1, 0.0, 1.0};
}

/// Are all shapes of a net (wires + pins of placed instances) one connected
/// component?  Shapes connect when they overlap after 1-unit inflation and
/// are on the same layer, or one of them is a contact/via.
bool netConnected(const geom::Layout& layout, const std::string& net) {
  struct Piece {
    geom::Layer layer;
    geom::Rect rect;
  };
  std::vector<Piece> pieces;
  for (const auto& w : layout.wires)
    if (w.net == net) pieces.push_back({w.layer, w.rect});
  for (const auto& inst : layout.instances)
    for (const auto& pin : inst.transformedPins())
      if (pin.name == net) pieces.push_back({pin.layer, pin.rect});
  if (pieces.size() < 2) return pieces.size() == 1;

  auto connects = [](const Piece& a, const Piece& b) {
    if (!a.rect.inflated(1).overlaps(b.rect.inflated(1))) return false;
    if (a.layer == b.layer) return true;
    auto isCut = [](geom::Layer l) {
      return l == geom::Layer::Contact || l == geom::Layer::Via;
    };
    return isCut(a.layer) || isCut(b.layer);
  };
  std::vector<std::size_t> group(pieces.size());
  std::iota(group.begin(), group.end(), std::size_t{0});
  std::function<std::size_t(std::size_t)> find = [&](std::size_t x) {
    while (group[x] != x) x = group[x] = group[group[x]];
    return x;
  };
  for (std::size_t i = 0; i < pieces.size(); ++i)
    for (std::size_t j = i + 1; j < pieces.size(); ++j)
      if (connects(pieces[i], pieces[j])) group[find(i)] = find(j);
  std::set<std::size_t> roots;
  for (std::size_t i = 0; i < pieces.size(); ++i) roots.insert(find(i));
  return roots.size() == 1;
}
}  // namespace

// ------------------------------------------------------------- module gen

TEST(ModGen, MosHasAllPins) {
  const auto m = lay::generateMos("M1", nmos(), "d", "g", "s", "b", proc());
  EXPECT_FALSE(m.pinsOnNet("d").empty());
  EXPECT_FALSE(m.pinsOnNet("g").empty());
  EXPECT_FALSE(m.pinsOnNet("s").empty());
  EXPECT_FALSE(m.pinsOnNet("b").empty());
  EXPECT_GT(m.boundingBox().area(), 0);
}

TEST(ModGen, FoldingShrinksHeightGrowsWidth) {
  lay::MosGenOptions one, four;
  four.fingers = 4;
  const auto m1 = lay::generateMos("M1", nmos(40e-6), "d", "g", "s", "b", proc(), one);
  const auto m4 = lay::generateMos("M1", nmos(40e-6), "d", "g", "s", "b", proc(), four);
  EXPECT_LT(m4.boundingBox().height(), m1.boundingBox().height());
  EXPECT_GT(m4.boundingBox().width(), m1.boundingBox().width());
}

TEST(ModGen, FoldedSourceOnOutside) {
  lay::MosGenOptions o;
  o.fingers = 2;
  const auto m = lay::generateMos("M1", nmos(20e-6), "d", "g", "s", "b", proc(), o);
  // 2 fingers: 3 contacts, alternating s-d-s: two source pins, one drain.
  EXPECT_EQ(m.pinsOnNet("s").size(), 2u);
  EXPECT_EQ(m.pinsOnNet("d").size(), 1u);
}

TEST(ModGen, PmosGetsNWell) {
  const auto m = lay::generateMos("M3", pmos(), "d", "g", "s", "vdd", proc());
  bool hasWell = false;
  for (const auto& s : m.shapes)
    if (s.layer == geom::Layer::NWell) hasWell = true;
  EXPECT_TRUE(hasWell);
}

TEST(ModGen, StackSharesDiffusion) {
  // Two devices in series (cascode): 3 contacts instead of 4.
  std::vector<lay::StackedDevice> devs = {
      {"M1", nmos(), "out", "g1", "mid", "0"},
      {"M2", nmos(), "mid", "g2", "gnd2", "0"},
  };
  const auto stack = lay::generateMosStack("stk", devs, proc());
  EXPECT_EQ(stack.pinsOnNet("mid").size(), 1u);  // shared region, one contact
  EXPECT_FALSE(stack.pinsOnNet("g1").empty());
  EXPECT_FALSE(stack.pinsOnNet("g2").empty());
  // Stack must be narrower than two separate devices side by side.
  const auto single = lay::generateMos("M1", nmos(), "a", "g", "b", "0", proc());
  EXPECT_LT(stack.boundingBox().width(), 2 * single.boundingBox().width());
}

TEST(ModGen, StackRejectsBrokenChain) {
  std::vector<lay::StackedDevice> devs = {
      {"M1", nmos(), "a", "g1", "x", "0"},
      {"M2", nmos(), "y", "g2", "b", "0"},  // x != y
  };
  EXPECT_THROW(lay::generateMosStack("bad", devs, proc()), std::invalid_argument);
}

TEST(ModGen, StackRejectsWidthMismatch) {
  std::vector<lay::StackedDevice> devs = {
      {"M1", nmos(10e-6), "a", "g1", "m", "0"},
      {"M2", nmos(20e-6), "m", "g2", "b", "0"},
  };
  EXPECT_THROW(lay::generateMosStack("bad", devs, proc()), std::invalid_argument);
}

TEST(ModGen, ResistorAreaScalesWithValue) {
  const auto r1 = lay::generateResistor("R1", 1e3, "a", "b", proc());
  const auto r2 = lay::generateResistor("R2", 10e3, "a", "b", proc());
  auto polyArea = [](const geom::CellMaster& m) {
    geom::Coord area = 0;
    for (const auto& s : m.shapes)
      if (s.layer == geom::Layer::Poly) area += s.rect.area();
    return area;
  };
  EXPECT_GT(polyArea(r2), 5 * polyArea(r1));
}

TEST(ModGen, CapacitorAreaMatchesValue) {
  const auto c = lay::generateCapacitor("C1", 1e-12, "top", "bot", proc());
  // 1 pF at 1 fF/um^2 -> 1000 um^2 -> side ~31.6 um = 79 lambda.
  const double sideLambda = static_cast<double>(c.boundingBox().width()) / 4.0;
  EXPECT_NEAR(sideLambda, 31.6e-6 / proc().lambda, 12.0);
}

// ------------------------------------------------------------- stacking

namespace {
/// Diff-pair-plus-mirror netlist: M1,M2 share "tail"; M3,M4 share "vdd".
ckt::Netlist mirrorPairNetlist() {
  ckt::Netlist n;
  n.addMos("M1", "n1", "inp", "tail", "0", ckt::MosType::Nmos, 20e-6, 2e-6);
  n.addMos("M2", "n2", "inn", "tail", "0", ckt::MosType::Nmos, 20e-6, 2e-6);
  n.addMos("M3", "n1", "n1", "vdd", "vdd", ckt::MosType::Pmos, 10e-6, 2e-6);
  n.addMos("M4", "n2", "n1", "vdd", "vdd", ckt::MosType::Pmos, 10e-6, 2e-6);
  return n;
}
}  // namespace

TEST(Stacking, GroupsByTypeAndWidth) {
  const auto graphs = lay::buildDiffusionGraphs(mirrorPairNetlist());
  ASSERT_EQ(graphs.size(), 2u);  // one NMOS group, one PMOS group
  for (const auto& g : graphs) EXPECT_EQ(g.edges.size(), 2u);
}

TEST(Stacking, WidthToleranceSplitsGroups) {
  ckt::Netlist n;
  n.addMos("M1", "a", "g", "b", "0", ckt::MosType::Nmos, 10e-6, 2e-6);
  n.addMos("M2", "b", "g", "c", "0", ckt::MosType::Nmos, 30e-6, 2e-6);
  const auto graphs = lay::buildDiffusionGraphs(n);
  EXPECT_EQ(graphs.size(), 2u);
}

TEST(Stacking, EulerBoundForPath) {
  // Chain a-b-c-d: 2 odd vertices -> 1 stack.
  ckt::Netlist n;
  n.addMos("M1", "a", "g1", "b", "0", ckt::MosType::Nmos, 10e-6, 2e-6);
  n.addMos("M2", "b", "g2", "c", "0", ckt::MosType::Nmos, 10e-6, 2e-6);
  n.addMos("M3", "c", "g3", "d", "0", ckt::MosType::Nmos, 10e-6, 2e-6);
  const auto graphs = lay::buildDiffusionGraphs(n);
  ASSERT_EQ(graphs.size(), 1u);
  EXPECT_EQ(graphs[0].minimumStacks(), 1u);
}

TEST(Stacking, EulerBoundForStar) {
  // Star at "mid" with 3 leaves: 4 odd vertices... degree(mid)=3 (odd),
  // leaves odd -> 4 odd -> 2 stacks.
  ckt::Netlist n;
  n.addMos("M1", "a", "g1", "mid", "0", ckt::MosType::Nmos, 10e-6, 2e-6);
  n.addMos("M2", "b", "g2", "mid", "0", ckt::MosType::Nmos, 10e-6, 2e-6);
  n.addMos("M3", "c", "g3", "mid", "0", ckt::MosType::Nmos, 10e-6, 2e-6);
  const auto graphs = lay::buildDiffusionGraphs(n);
  EXPECT_EQ(graphs[0].minimumStacks(), 2u);
}

TEST(Stacking, GreedyAchievesEulerMinimum) {
  for (const auto& net : {mirrorPairNetlist()}) {
    for (const auto& g : lay::buildDiffusionGraphs(net)) {
      const auto s = lay::greedyStacking(g);
      EXPECT_TRUE(lay::stackingValid(g, s));
      EXPECT_EQ(s.stacks.size(), g.minimumStacks());
    }
  }
}

TEST(Stacking, GreedyHandlesEulerCircuit) {
  // Ring a-b-c-a: all even degrees -> single closed trail, 1 stack.
  ckt::Netlist n;
  n.addMos("M1", "a", "g1", "b", "0", ckt::MosType::Nmos, 10e-6, 2e-6);
  n.addMos("M2", "b", "g2", "c", "0", ckt::MosType::Nmos, 10e-6, 2e-6);
  n.addMos("M3", "c", "g3", "a", "0", ckt::MosType::Nmos, 10e-6, 2e-6);
  const auto graphs = lay::buildDiffusionGraphs(n);
  const auto s = lay::greedyStacking(graphs[0]);
  EXPECT_TRUE(lay::stackingValid(graphs[0], s));
  EXPECT_EQ(s.stacks.size(), 1u);
}

TEST(Stacking, ExactMatchesGreedyCount) {
  for (const auto& g : lay::buildDiffusionGraphs(mirrorPairNetlist())) {
    const auto exact = lay::enumerateOptimalStackings(g, 8);
    ASSERT_FALSE(exact.empty());
    const auto greedy = lay::greedyStacking(g);
    for (const auto& s : exact) {
      EXPECT_TRUE(lay::stackingValid(g, s));
      EXPECT_EQ(s.stacks.size(), greedy.stacks.size());
    }
  }
}

TEST(Stacking, ExactEnumeratesMultipleSolutions) {
  // A path of 4 devices admits several optimal chains (direction/branching).
  ckt::Netlist n;
  n.addMos("M1", "a", "g1", "b", "0", ckt::MosType::Nmos, 10e-6, 2e-6);
  n.addMos("M2", "b", "g2", "c", "0", ckt::MosType::Nmos, 10e-6, 2e-6);
  n.addMos("M3", "b", "g3", "d", "0", ckt::MosType::Nmos, 10e-6, 2e-6);
  n.addMos("M4", "b", "g4", "e", "0", ckt::MosType::Nmos, 10e-6, 2e-6);
  const auto graphs = lay::buildDiffusionGraphs(n);
  const auto exact = lay::enumerateOptimalStackings(graphs[0], 16);
  EXPECT_GT(exact.size(), 1u);
}

TEST(Stacking, ExactThrowsOnHugeGroup) {
  ckt::Netlist n;
  for (int i = 0; i < 16; ++i)
    n.addMos("M" + std::to_string(i), "n" + std::to_string(i), "g",
             "n" + std::to_string(i + 1), "0", ckt::MosType::Nmos, 10e-6, 2e-6);
  const auto graphs = lay::buildDiffusionGraphs(n);
  EXPECT_THROW(lay::enumerateOptimalStackings(graphs[0]), std::invalid_argument);
  // ...but the O(n) extractor handles it fine.
  const auto s = lay::greedyStacking(graphs[0]);
  EXPECT_TRUE(lay::stackingValid(graphs[0], s));
  EXPECT_EQ(s.stacks.size(), 1u);
}

// ------------------------------------------------------------- placement

namespace {
std::vector<lay::PlacementComponent> diffPairComponents() {
  std::vector<lay::PlacementComponent> comps;
  lay::MosGenOptions fold2;
  fold2.fingers = 2;
  {
    lay::PlacementComponent c;
    c.name = "M1";
    c.variants = {lay::generateMos("M1", nmos(20e-6), "n1", "inp", "tail", "0", proc()),
                  lay::generateMos("M1", nmos(20e-6), "n1", "inp", "tail", "0", proc(),
                                   fold2)};
    c.symmetryPeer = "M2";
    comps.push_back(std::move(c));
  }
  {
    lay::PlacementComponent c;
    c.name = "M2";
    c.variants = {lay::generateMos("M2", nmos(20e-6), "n2", "inn", "tail", "0", proc()),
                  lay::generateMos("M2", nmos(20e-6), "n2", "inn", "tail", "0", proc(),
                                   fold2)};
    c.symmetryPeer = "M1";
    comps.push_back(std::move(c));
  }
  {
    lay::PlacementComponent c;
    c.name = "M5";
    c.variants = {lay::generateMos("M5", nmos(20e-6), "tail", "nb", "0", "0", proc())};
    comps.push_back(std::move(c));
  }
  return comps;
}
}  // namespace

TEST(Placer, RowPlacementIsLegal) {
  const auto p = lay::rowPlacement(diffPairComponents());
  EXPECT_TRUE(p.overlapFree);
  EXPECT_EQ(p.instances.size(), 3u);
  EXPECT_GT(p.wirelength, 0.0);
}

TEST(Placer, AnnealedPlacementIsLegalAndCompact) {
  const auto comps = diffPairComponents();
  lay::PlacerOptions opts;
  opts.seed = 3;
  const auto row = lay::rowPlacement(comps, opts);
  const auto an = lay::placeCells(comps, opts);
  EXPECT_TRUE(an.overlapFree);
  // The annealer must not be grossly worse than the trivial row.
  EXPECT_LT(static_cast<double>(an.boundingBox.area()),
            2.0 * static_cast<double>(row.boundingBox.area()));
}

TEST(Placer, SymmetricPairEndsUpMirrored) {
  const auto comps = diffPairComponents();
  lay::PlacerOptions opts;
  opts.seed = 5;
  opts.symmetryWeight = 8.0;
  const auto p = lay::placeCells(comps, opts);
  // Pair members must sit at (near-)equal heights.
  const auto& a = p.instances[0].boundingBox();
  const auto& b = p.instances[1].boundingBox();
  EXPECT_LT(std::abs(static_cast<double>(a.center().y - b.center().y)), 40.0);
}

TEST(Placer, WirelengthEstimateCountsSharedNets) {
  const auto comps = diffPairComponents();
  const auto p = lay::rowPlacement(comps);
  // "tail" spans all three devices: moving M5 far away must raise the
  // estimate.
  auto far = p.instances;
  far[2].placement.dx += 4000;
  EXPECT_GT(lay::estimateWirelength(far), p.wirelength);
}

// ------------------------------------------------------------- routing

TEST(Router, RoutesSimpleNetAndConnectsIt) {
  const auto comps = diffPairComponents();
  const auto p = lay::rowPlacement(comps);
  std::vector<lay::RouteNet> nets = {{"tail", lay::WireClass::Quiet, 0.0, std::nullopt}};
  const auto r = lay::routeCells(p.instances, nets, proc());
  ASSERT_TRUE(r.nets.at("tail").routed);
  EXPECT_TRUE(r.allRouted);
  EXPECT_GT(r.nets.at("tail").lengthLambda, 0.0);
  EXPECT_TRUE(netConnected(r.layout, "tail"));
}

TEST(Router, RoutesMultipleNets) {
  const auto comps = diffPairComponents();
  const auto p = lay::rowPlacement(comps);
  std::vector<lay::RouteNet> nets = {
      {"tail", lay::WireClass::Quiet, 0.0, std::nullopt},
      {"0", lay::WireClass::Quiet, 0.0, std::nullopt},
  };
  const auto r = lay::routeCells(p.instances, nets, proc());
  EXPECT_TRUE(r.allRouted);
  EXPECT_TRUE(netConnected(r.layout, "tail"));
  EXPECT_TRUE(netConnected(r.layout, "0"));
}

TEST(Router, CrosstalkPenaltySeparatesIncompatibleNets) {
  // Two parallel two-pin nets, one noisy one sensitive: with the penalty on,
  // exposure must be no worse than with it off.
  const auto comps = diffPairComponents();
  const auto p = lay::rowPlacement(comps);
  std::vector<lay::RouteNet> nets = {
      {"inp", lay::WireClass::Sensitive, 0.0, std::nullopt},
      {"tail", lay::WireClass::Noisy, 0.0, std::nullopt},
  };
  lay::RouterOptions noPenalty;
  noPenalty.crosstalkPenalty = 0;
  lay::RouterOptions withPenalty;
  withPenalty.crosstalkPenalty = 40;
  const auto r0 = lay::routeCells(p.instances, nets, proc(), noPenalty);
  const auto r1 = lay::routeCells(p.instances, nets, proc(), withPenalty);
  // "inp" is a single-pin net here (only gates of M1), so use tail/inp as a
  // smoke check: the run must succeed and exposure must not grow.
  EXPECT_LE(r1.crosstalkExposureLambda, r0.crosstalkExposureLambda + 1e-9);
}

TEST(Router, CapBoundReported) {
  const auto comps = diffPairComponents();
  const auto p = lay::rowPlacement(comps);
  std::vector<lay::RouteNet> nets = {
      {"tail", lay::WireClass::Quiet, 1e-18, std::nullopt},  // absurd bound
  };
  const auto r = lay::routeCells(p.instances, nets, proc());
  ASSERT_TRUE(r.nets.at("tail").routed);
  EXPECT_FALSE(r.nets.at("tail").capBoundMet);  // bound impossible to meet
  EXPECT_GT(r.nets.at("tail").estimatedCap, 1e-18);
}
