#include <gtest/gtest.h>

#include "core/celllayout.hpp"
#include "core/flow.hpp"
#include "core/report.hpp"
#include "sizing/opamp.hpp"

namespace core = amsyn::core;
namespace ckt = amsyn::circuit;
namespace sz = amsyn::sizing;

namespace {
const ckt::Process& proc() { return ckt::defaultProcess(); }
}

TEST(Report, TableFormatsColumns) {
  core::Table t({"metric", "spec", "got"});
  t.addRow({"gain", ">= 60", core::Table::num(72.5)});
  t.addRow({"power", "min", core::Table::num(1.2e-3)});
  const std::string s = t.toString();
  EXPECT_NE(s.find("gain"), std::string::npos);
  EXPECT_NE(s.find("72.5"), std::string::npos);
  EXPECT_NE(s.find("0.0012"), std::string::npos);
}

TEST(CellLayout, LaysOutTwoStageOpamp) {
  const auto net = sz::buildTwoStageOpamp(sz::TwoStageParams{}, proc(), {});
  core::CellLayoutOptions opts;
  opts.annealPlacement = false;  // deterministic and fast for the unit test
  const auto res = core::layoutCell(net, proc(), opts);
  ASSERT_TRUE(res.success) << "placement overlapFree=" << res.placement.overlapFree
                           << " allRouted=" << res.routing.allRouted;
  EXPECT_GT(res.areaLambda2, 0.0);
  EXPECT_GT(res.wirelengthLambda, 0.0);
  // All 8 transistors + Cc must appear in some component.
  EXPECT_GE(res.placement.instances.size(), 3u);
  // The testbench elements must NOT be in the layout.
  for (const auto& inst : res.placement.instances) {
    EXPECT_EQ(inst.name.find("RFB"), std::string::npos);
    EXPECT_EQ(inst.name.find("CFB"), std::string::npos);
  }
}

TEST(CellLayout, StackingAbsorbsSharedDiffusions) {
  const auto net = sz::buildTwoStageOpamp(sz::TwoStageParams{}, proc(), {});
  core::CellLayoutOptions with, without;
  with.useStacking = true;
  with.annealPlacement = false;
  without.useStacking = false;
  without.annealPlacement = false;
  const auto rWith = core::layoutCell(net, proc(), with);
  const auto rWithout = core::layoutCell(net, proc(), without);
  EXPECT_GT(rWith.stackedDevices, 0u);
  EXPECT_EQ(rWithout.stackedDevices, 0u);
  // Fewer placement components when stacks absorb devices.
  EXPECT_LT(rWith.placement.instances.size(), rWithout.placement.instances.size());
}

TEST(CellLayout, MatchingConstraintsDetected) {
  const auto net = sz::buildTwoStageOpamp(sz::TwoStageParams{}, proc(), {});
  core::CellLayoutOptions opts;
  opts.annealPlacement = false;
  const auto res = core::layoutCell(net, proc(), opts);
  bool hasPair = false;
  for (const auto& mc : res.matching)
    if (mc.kind == amsyn::extract::MatchKind::DifferentialPair) hasPair = true;
  EXPECT_TRUE(hasPair);
}

TEST(CellLayout, ExtractionAnnotatesNetlist) {
  const auto net = sz::buildTwoStageOpamp(sz::TwoStageParams{}, proc(), {});
  core::CellLayoutOptions opts;
  opts.annealPlacement = false;
  const auto res = core::layoutCell(net, proc(), opts);
  ASSERT_TRUE(res.success);
  EXPECT_GT(res.annotated.devices().size(), net.devices().size());
}

TEST(Flow, MeasureAmplifierReportsCorePerformances) {
  const auto net = sz::buildTwoStageOpamp(sz::TwoStageParams{}, proc(), {});
  const auto perf = core::measureAmplifier(net, proc());
  ASSERT_FALSE(perf.count("_infeasible"));
  EXPECT_GT(perf.at("gain_db"), 40.0);
  EXPECT_GT(perf.at("ugf"), 1e5);
  EXPECT_GT(perf.at("power"), 0.0);
}

TEST(Flow, EndToEndAmplifierSynthesis) {
  sz::SpecSet specs;
  specs.atLeast("gain_db", 62.0)
      .atLeast("ugf", 2e6)
      .atLeast("pm", 50.0)
      .atMost("power", 8e-3)
      .minimize("power", 0.2, 1e-3);
  core::FlowOptions opts;
  opts.seed = 7;
  opts.layout.annealPlacement = false;  // keep the test fast
  const auto res = core::synthesizeAmplifier(specs, proc(), opts);
  ASSERT_TRUE(res.success) << res.failureReason;
  EXPECT_EQ(res.topology, "two-stage-miller");
  ASSERT_GE(res.verifications.size(), 2u);
  EXPECT_EQ(res.verifications.front().stage, "pre-layout");
  EXPECT_EQ(res.verifications.back().stage, "post-layout");
  EXPECT_TRUE(res.verifications.back().passed);
  // The post-layout UGF must still be measured (parasitics included).
  EXPECT_GT(res.verifications.back().measured.at("ugf"), 1e6);
}
