#include <gtest/gtest.h>

#include <cmath>

#include "manufacture/corners.hpp"
#include "manufacture/yield.hpp"
#include "sim/dc.hpp"
#include "sizing/eqmodel.hpp"
#include "sizing/opamp.hpp"

namespace mf = amsyn::manufacture;
namespace sz = amsyn::sizing;
namespace ckt = amsyn::circuit;
namespace num = amsyn::num;

namespace {
const ckt::Process& nominal() { return ckt::defaultProcess(); }

mf::ModelFactory twoStageFactory(double cl = 5e-12) {
  // Corner semantics: the design's geometry is frozen at the nominal
  // process; each corner re-derives currents/overdrives from that geometry.
  return [cl](const ckt::Process& p) {
    return sz::makeTwoStageCornerModel(p, nominal(), cl);
  };
}
}  // namespace

TEST(VariationSpace, MapsUnitCubeToPhysicalRanges) {
  mf::VariationSpace space;
  const auto lo = space.apply(nominal(), {0, 0.5, 0.5, 0.5, 0.5, 0.5});
  const auto hi = space.apply(nominal(), {1, 0.5, 0.5, 0.5, 0.5, 0.5});
  EXPECT_NEAR(lo.vdd, nominal().vdd * 0.9, 1e-9);
  EXPECT_NEAR(hi.vdd, nominal().vdd * 1.1, 1e-9);
  const auto cold = space.apply(nominal(), {0.5, 0.0, 0.5, 0.5, 0.5, 0.5});
  const auto hot = space.apply(nominal(), {0.5, 1.0, 0.5, 0.5, 0.5, 0.5});
  EXPECT_LT(cold.temperature, hot.temperature);
  // Hot silicon is slower: kp drops with temperature.
  EXPECT_GT(cold.kpN, hot.kpN);
}

TEST(WorstCase, GainWorstCornerIsWorseThanNominal) {
  const auto factory = twoStageFactory();
  sz::TwoStageEquationModel model(nominal(), 5e-12);
  const auto x = model.initialPoint();
  const double nominalGain = model.evaluate(x).at("gain_db");

  mf::VariationSpace space;
  const sz::Spec spec{"gain_db", sz::SpecKind::GreaterEqual, nominalGain, 1.0, 0.0};
  const auto wc = mf::worstCaseCorner(factory, nominal(), space, x, spec);
  EXPECT_LE(wc.value, nominalGain + 1e-9);
  EXPECT_LE(wc.margin, 1e-9);  // at best equal to nominal
}

TEST(WorstCase, FindsVddCornerForPower) {
  // Power = vdd * I: worst (largest) power is at max vdd and the kp/vt
  // corner maximizing mirror current; the corner must report vdd high.
  const auto factory = twoStageFactory();
  sz::TwoStageEquationModel model(nominal(), 5e-12);
  const auto x = model.initialPoint();
  const double nomPower = model.evaluate(x).at("power");
  mf::VariationSpace space;
  const sz::Spec spec{"power", sz::SpecKind::LessEqual, nomPower, 1.0, 0.0};
  const auto wc = mf::worstCaseCorner(factory, nominal(), space, x, spec);
  EXPECT_GT(wc.corner[0], 0.9);  // vdd coordinate pushed high
  EXPECT_GT(wc.value, nomPower);
}

TEST(RobustSynthesis, CornerAwareDesignSurvivesCorners) {
  const auto factory = twoStageFactory();
  sz::SpecSet specs;
  specs.atLeast("gain_db", 65.0)
      .atLeast("ugf", 3e6)
      .atLeast("pm", 50.0)
      .atMost("power", 8e-3)
      .minimize("power", 0.3, 1e-3);
  mf::RobustOptions opts;
  opts.synthesis.seed = 19;
  const auto res = mf::robustSynthesize(factory, nominal(), mf::VariationSpace{}, specs, opts);
  ASSERT_TRUE(res.nominal.feasible);
  EXPECT_TRUE(res.robustFeasibleAtCorners);
  // The paper: manufacturability costs roughly 4x-10x CPU.
  EXPECT_GT(res.robustEvaluations, 2.0 * res.nominalEvaluations);
}

TEST(RobustSynthesis, RobustDesignSpendsMorePowerThanNominal) {
  // Margin against corners is not free: the robust design should not be
  // cheaper than the nominal one.
  const auto factory = twoStageFactory();
  sz::SpecSet specs;
  specs.atLeast("gain_db", 68.0).atLeast("ugf", 5e6).atLeast("pm", 55.0).minimize("power",
                                                                                  1.0, 1e-3);
  mf::RobustOptions opts;
  opts.synthesis.seed = 31;
  const auto res = mf::robustSynthesize(factory, nominal(), mf::VariationSpace{}, specs, opts);
  ASSERT_TRUE(res.nominal.feasible);
  // Robustness costs margin: the corner-aware result should not be wildly
  // cheaper than the nominal optimum (both searches are stochastic, so we
  // assert a band rather than strict ordering).
  EXPECT_GE(res.robust.performance.at("power"),
            res.nominal.performance.at("power") * 0.5);
  EXPECT_GT(res.robust.performance.at("power"), 0.0);
}

TEST(Pelgrom, SigmaShrinksWithArea) {
  const double sigmaSmall = mf::pelgromSigmaVt(nominal(), 2e-6, 1e-6);
  const double sigmaBig = mf::pelgromSigmaVt(nominal(), 32e-6, 4e-6);
  EXPECT_GT(sigmaSmall, sigmaBig);
  EXPECT_NEAR(sigmaSmall / sigmaBig, 8.0, 1e-9);  // 64x area -> 8x less sigma
}

TEST(Pelgrom, MismatchShiftsMirrorCurrent) {
  // A 1:1 current mirror with mismatch shows output-current spread that
  // shrinks for larger devices.
  auto spread = [&](double w, double l) {
    num::Rng rng(99);
    std::vector<double> ratios;
    for (int s = 0; s < 40; ++s) {
      ckt::Netlist net;
      net.addVSource("VDD", "vdd", "0", 5.0);
      net.addISource("IREF", "vdd", "ref", 50e-6);
      net.addMos("M1", "ref", "ref", "0", "0", ckt::MosType::Nmos, w, l);
      net.addMos("M2", "out", "ref", "0", "0", ckt::MosType::Nmos, w, l);
      net.addResistor("RL", "vdd", "out", 10e3);
      mf::applyMismatch(net, nominal(), rng);
      amsyn::sim::Mna mna(net, nominal());
      const auto op = amsyn::sim::dcOperatingPoint(mna);
      if (!op.converged) continue;
      const double iOut =
          (5.0 - mna.nodeVoltage(op.x, *net.findNode("out"))) / 10e3;
      ratios.push_back(iOut / 50e-6);
    }
    return num::stddev(ratios);
  };
  const double spreadSmall = spread(4e-6, 1e-6);
  const double spreadBig = spread(40e-6, 4e-6);
  EXPECT_GT(spreadSmall, spreadBig);
}

TEST(Yield, NominalFeasibleDesignHasDecentYield) {
  const auto factory = twoStageFactory();
  sz::TwoStageEquationModel model(nominal(), 5e-12);
  const auto x = model.initialPoint();
  const auto perf = model.evaluate(x);
  // Specs set comfortably below nominal performance.
  sz::SpecSet specs;
  specs.atLeast("gain_db", perf.at("gain_db") - 15.0)
      .atMost("power", perf.at("power") * 2.0);
  mf::YieldOptions opts;
  opts.samples = 120;
  const auto res = mf::yieldMonteCarlo(factory, nominal(), x, specs, opts);
  EXPECT_GT(res.yield.estimate, 0.9);
  EXPECT_EQ(res.samples, 120u);
}

TEST(Yield, TightSpecsCutYield) {
  const auto factory = twoStageFactory();
  sz::TwoStageEquationModel model(nominal(), 5e-12);
  const auto x = model.initialPoint();
  const auto perf = model.evaluate(x);
  // Spec exactly at nominal: roughly half the global-variation samples fail.
  sz::SpecSet atNominal;
  atNominal.atLeast("gain_db", perf.at("gain_db"));
  mf::YieldOptions opts;
  opts.samples = 150;
  const auto res = mf::yieldMonteCarlo(factory, nominal(), x, atNominal, opts);
  EXPECT_LT(res.yield.estimate, 0.95);
  ASSERT_TRUE(res.worstSeen.count("gain_db"));
  EXPECT_LT(res.worstSeen.at("gain_db"), perf.at("gain_db"));
}
