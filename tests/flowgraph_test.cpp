// Tests for the staged flow engine (core/flowgraph.hpp): engine policy in
// isolation (retargeting math, calibration feedback across redesign
// attempts, stage-record trails) driven by fabricated stages with no
// simulator underneath, and the batch entry point's determinism contract —
// synthesizeBatch over N spec sets must be bit-identical, per design, to N
// sequential synthesizeAmplifier calls at any thread count with the
// evaluation cache on or off.
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "circuit/process.hpp"
#include "core/evalcache.hpp"
#include "core/flow.hpp"
#include "core/flowgraph.hpp"
#include "core/parallel.hpp"
#include "sizing/spec.hpp"

namespace core = amsyn::core;
namespace cache = amsyn::core::cache;
namespace sz = amsyn::sizing;
namespace ckt = amsyn::circuit;

namespace {

const ckt::Process& nominal() { return ckt::defaultProcess(); }

std::uint64_t rawBits(double v) {
  std::uint64_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

::testing::AssertionResult perfBitIdentical(const sz::Performance& a,
                                            const sz::Performance& b) {
  if (a.size() != b.size())
    return ::testing::AssertionFailure()
           << "sizes differ: " << a.size() << " vs " << b.size();
  auto ia = a.begin();
  auto ib = b.begin();
  for (; ia != a.end(); ++ia, ++ib) {
    if (ia->first != ib->first)
      return ::testing::AssertionFailure()
             << "keys differ: " << ia->first << " vs " << ib->first;
    if (rawBits(ia->second) != rawBits(ib->second))
      return ::testing::AssertionFailure()
             << ia->first << " differs in bits: " << ia->second << " vs " << ib->second;
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult vecBitIdentical(const std::vector<double>& a,
                                           const std::vector<double>& b) {
  if (a.size() != b.size())
    return ::testing::AssertionFailure()
           << "sizes differ: " << a.size() << " vs " << b.size();
  for (std::size_t i = 0; i < a.size(); ++i)
    if (rawBits(a[i]) != rawBits(b[i]))
      return ::testing::AssertionFailure()
             << "x[" << i << "] differs in bits: " << a[i] << " vs " << b[i];
  return ::testing::AssertionSuccess();
}

double boundOf(const sz::SpecSet& specs, const std::string& perf) {
  for (const auto& s : specs.specs())
    if (!s.isObjective() && s.performance == perf) return s.bound;
  ADD_FAILURE() << "no constraint spec for " << perf;
  return 0.0;
}

}  // namespace

// ---------------------------------------------------------------------------
// Retargeting math (engine policy, no stages involved)

TEST(FlowRetarget, DefaultRulesReproduceTheClosedLoopCorrections) {
  sz::SpecSet specs;
  specs.atLeast("ugf", 1e7).atLeast("pm", 60.0).minimize("power", 0.3, 1e-3);

  core::CalibrationStore cal;
  cal.recordRatio("ugf", core::kModelCalibration, 0.5);
  cal.recordRatio("ugf", core::kLayoutCalibration, 0.8);
  cal.recordDelta("pm", core::kModelCalibration, 5.0);
  cal.recordDelta("pm", core::kLayoutCalibration, 3.0);

  const auto rules = core::FlowEngine::defaultRetargetRules();
  const auto target = core::FlowEngine::retarget(specs, rules, cal, /*attempt=*/2);

  const double safety = 1.0 + 0.05 * 2.0;
  EXPECT_EQ(rawBits(boundOf(target, "ugf")),
            rawBits(1e7 / std::max(0.5 * 0.8, 0.2) * safety));
  EXPECT_EQ(rawBits(boundOf(target, "pm")),
            rawBits(std::min(60.0 + (5.0 + 3.0) * safety + 2.0 * 2, 80.0)));
  // Objectives pass through untouched.
  bool sawObjective = false;
  for (const auto& s : target.specs())
    if (s.isObjective()) {
      sawObjective = true;
      EXPECT_EQ(s.performance, "power");
    }
  EXPECT_TRUE(sawObjective);
}

TEST(FlowRetarget, RatioFloorAndBoundCapClampExtremeCorrections) {
  sz::SpecSet specs;
  specs.atLeast("ugf", 1e7).atLeast("pm", 60.0);
  core::CalibrationStore cal;
  cal.recordRatio("ugf", core::kModelCalibration, 0.01);  // would be a 100x inflation
  cal.recordDelta("pm", core::kModelCalibration, 50.0);   // would retarget past 80 deg
  const auto rules = core::FlowEngine::defaultRetargetRules();
  const auto target = core::FlowEngine::retarget(specs, rules, cal, /*attempt=*/1);
  EXPECT_EQ(rawBits(boundOf(target, "ugf")), rawBits(1e7 / 0.2 * 1.05));
  EXPECT_EQ(boundOf(target, "pm"), 80.0);
}

TEST(FlowRetarget, AttemptZeroWithEmptyCalibrationIsIdentity) {
  sz::SpecSet specs;
  specs.atLeast("ugf", 1e7).atLeast("pm", 60.0).atLeast("gain_db", 40.0);
  const core::CalibrationStore cal;
  EXPECT_TRUE(cal.empty());
  const auto target = core::FlowEngine::retarget(
      specs, core::FlowEngine::defaultRetargetRules(), cal, 0);
  EXPECT_EQ(rawBits(boundOf(target, "ugf")), rawBits(1e7));
  EXPECT_EQ(rawBits(boundOf(target, "pm")), rawBits(60.0));
  EXPECT_EQ(rawBits(boundOf(target, "gain_db")), rawBits(40.0));
}

// ---------------------------------------------------------------------------
// Redesign calibration loop, driven by fabricated verify stages: attempt 0
// fails "pre-layout" with a known model mismatch, attempt 1 fails
// "post-layout" with a known parasitic loss, attempt 2 succeeds.  The specs
// handed to the sizer on attempts 1 and 2 must match the measured
// corrections exactly.

namespace {

/// Records the retargeted ugf/pm bounds the engine derived for each attempt.
class TargetProbeStage : public core::FlowStage {
 public:
  std::string name() const override { return "target-probe"; }
  core::StageOutcome run(core::DesignContext& ctx) override {
    ugfTargets.push_back(boundOf(ctx.target, "ugf"));
    pmTargets.push_back(boundOf(ctx.target, "pm"));
    return core::StageOutcome::pass();
  }
  std::vector<double> ugfTargets;
  std::vector<double> pmTargets;
};

/// Fabricated pre-layout verification: on attempt 0 reports a model/sim
/// mismatch (sim ugf at half the prediction, pm 5 degrees short) and fails.
class PreLayoutStub : public core::FlowStage {
 public:
  std::string name() const override { return "pre-stub"; }
  core::StageOutcome run(core::DesignContext& ctx) override {
    if (ctx.attempt == 0) {
      ctx.calibration.recordRatio("ugf", core::kModelCalibration, 0.5);
      ctx.calibration.recordDelta("pm", core::kModelCalibration, 5.0);
      return core::StageOutcome::fail("model/sim mismatch (stub)");
    }
    return core::StageOutcome::pass();
  }
};

/// Fabricated post-layout verification: on attempt 1 reports a parasitic
/// loss (ugf down another 20%, pm 3 more degrees) and fails; passes after.
class PostLayoutStub : public core::FlowStage {
 public:
  std::string name() const override { return "post-stub"; }
  core::StageOutcome run(core::DesignContext& ctx) override {
    if (ctx.attempt == 1) {
      ctx.calibration.recordRatio("ugf", core::kLayoutCalibration, 0.8);
      ctx.calibration.recordDelta("pm", core::kLayoutCalibration, 3.0);
      return core::StageOutcome::fail("parasitic loss (stub)");
    }
    return core::StageOutcome::pass();
  }
};

}  // namespace

TEST(FlowCalibrationLoop, RetargetedBoundsTrackMeasuredCorrectionsAcrossAttempts) {
  std::vector<std::unique_ptr<core::FlowStage>> stages;
  auto probe = std::make_unique<TargetProbeStage>();
  TargetProbeStage* probePtr = probe.get();
  stages.push_back(std::move(probe));
  stages.push_back(std::make_unique<PreLayoutStub>());
  stages.push_back(std::make_unique<PostLayoutStub>());
  core::FlowEngine engine(std::move(stages));

  sz::SpecSet specs;
  specs.atLeast("ugf", 1e7).atLeast("pm", 60.0);
  core::FlowOptions opts;
  opts.maxRedesigns = 4;
  const auto result = engine.run(specs, nominal(), opts);

  EXPECT_TRUE(result.success);
  EXPECT_EQ(result.redesigns, 2u);
  ASSERT_EQ(probePtr->ugfTargets.size(), 3u);

  // Attempt 0: no calibration yet — the original bounds.
  EXPECT_EQ(rawBits(probePtr->ugfTargets[0]), rawBits(1e7));
  EXPECT_EQ(rawBits(probePtr->pmTargets[0]), rawBits(60.0));
  // Attempt 1: model correction only (ratio 0.5, delta 5), safety 1.05.
  EXPECT_EQ(rawBits(probePtr->ugfTargets[1]), rawBits(1e7 / 0.5 * 1.05));
  EXPECT_EQ(rawBits(probePtr->pmTargets[1]),
            rawBits(std::min(60.0 + 5.0 * 1.05 + 2.0, 80.0)));
  // Attempt 2: model * layout (0.5 * 0.8 = 0.4), deltas sum to 8, safety 1.10.
  EXPECT_EQ(rawBits(probePtr->ugfTargets[2]),
            rawBits(1e7 / std::max(0.5 * 0.8, 0.2) * 1.10));
  EXPECT_EQ(rawBits(probePtr->pmTargets[2]),
            rawBits(std::min(60.0 + (5.0 + 3.0) * 1.10 + 2.0 * 2, 80.0)));

  // The stage trail records the two failures and the final pass, in order.
  ASSERT_EQ(result.stageRecords.size(), 3u * 3u - 1u);  // attempt 0/1 cut short
  EXPECT_EQ(result.stageRecords[1].name, "pre-stub");
  EXPECT_EQ(result.stageRecords[1].status, core::StageStatus::Failed);
  EXPECT_EQ(result.stageRecords[1].detail, "model/sim mismatch (stub)");
  EXPECT_EQ(result.stageRecords[1].attempt, 0u);
  EXPECT_EQ(result.stageRecords[4].name, "post-stub");
  EXPECT_EQ(result.stageRecords[4].status, core::StageStatus::Failed);
  EXPECT_EQ(result.stageRecords[4].attempt, 1u);
  EXPECT_EQ(result.stageRecords.back().status, core::StageStatus::Passed);
  EXPECT_EQ(result.stageRecords.back().attempt, 2u);
  EXPECT_TRUE(result.failureReason.empty());
}

TEST(FlowEngine, ExhaustedRedesignsReportTheLastFailure) {
  class AlwaysFail : public core::FlowStage {
   public:
    std::string name() const override { return "always-fail"; }
    core::StageOutcome run(core::DesignContext&) override {
      return core::StageOutcome::fail("no luck", core::EvalStatus::DcNoConvergence);
    }
  };
  std::vector<std::unique_ptr<core::FlowStage>> stages;
  stages.push_back(std::make_unique<AlwaysFail>());
  core::FlowEngine engine(std::move(stages));
  sz::SpecSet specs;
  specs.atLeast("gain_db", 40.0);
  core::FlowOptions opts;
  opts.maxRedesigns = 2;
  const auto result = engine.run(specs, nominal(), opts);
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.redesigns, 2u);
  EXPECT_EQ(result.failureReason, "no luck");
  EXPECT_EQ(result.failureStatus, core::EvalStatus::DcNoConvergence);
  ASSERT_EQ(result.stageRecords.size(), 3u);
  for (const auto& rec : result.stageRecords)
    EXPECT_EQ(rec.status, core::StageStatus::Failed);
}

TEST(FlowEngine, SkippedStagesDoNotAbortTheAttempt) {
  class Skipper : public core::FlowStage {
   public:
    std::string name() const override { return "skipper"; }
    core::StageOutcome run(core::DesignContext&) override {
      return core::StageOutcome::skip("nothing to contribute");
    }
  };
  std::vector<std::unique_ptr<core::FlowStage>> stages;
  stages.push_back(std::make_unique<Skipper>());
  core::FlowEngine engine(std::move(stages));
  sz::SpecSet specs;
  specs.atLeast("gain_db", 40.0);
  const auto result = engine.run(specs, nominal(), core::FlowOptions{});
  EXPECT_TRUE(result.success);
  ASSERT_EQ(result.stageRecords.size(), 1u);
  EXPECT_EQ(result.stageRecords[0].status, core::StageStatus::Skipped);
  EXPECT_EQ(result.stageRecords[0].detail, "nothing to contribute");
}

// ---------------------------------------------------------------------------
// Configurable verification testbench (FlowOptions::testbench)

TEST(Measure, DefaultTestbenchReproducesTheClassicBench) {
  // A trivially measurable RC divider netlist is overkill; use the real
  // amplifier flow's schematic instead: synthesize once, then re-measure its
  // schematic with an explicit descriptor equal to the default.
  sz::SpecSet specs;
  specs.atLeast("gain_db", 36.0).atLeast("ugf", 1e7).atLeast("pm", 60.0);
  core::FlowOptions opts;
  opts.loadCap = 2e-12;
  opts.seed = 3;
  opts.synthesis.multistarts = 1;
  opts.synthesis.anneal.stagnationStages = 2;
  opts.synthesis.refineEvaluations = 20;
  opts.maxRedesigns = 0;
  opts.layout.annealPlacement = false;
  const auto flow = core::synthesizeAmplifier(specs, nominal(), opts);
  ASSERT_FALSE(flow.schematic.devices().empty());

  const auto a = core::measureAmplifier(flow.schematic, nominal());
  core::AcTestbench classic;  // probe "out", 1 Hz .. 1 GHz, 6 pts/decade
  const auto b = core::measureAmplifier(flow.schematic, nominal(), classic);
  EXPECT_TRUE(perfBitIdentical(a, b));

  // A denser grid is a different (valid) measurement, not an error.
  core::AcTestbench dense = classic;
  dense.acPointsPerDecade = 12;
  const auto c = core::measureAmplifier(flow.schematic, nominal(), dense);
  EXPECT_EQ(c.count("_infeasible"), 0u);

  // Probing a node the netlist does not drive is verification data (the
  // infeasible taxonomy), never a crash.
  core::AcTestbench bogus = classic;
  bogus.probeNode = "no-such-node";
  const auto d = core::measureAmplifier(flow.schematic, nominal(), bogus);
  EXPECT_EQ(d.count("_infeasible"), 1u);
}

// ---------------------------------------------------------------------------
// Batch determinism: synthesizeBatch == N sequential synthesizeAmplifier
// calls, bit for bit, at any thread count, cache on or off

namespace {

sz::SynthesisOptions fastSynthesisOptions() {
  sz::SynthesisOptions opts;
  opts.seed = 11;
  opts.multistarts = 2;
  opts.anneal.stagnationStages = 2;
  opts.anneal.coolingRate = 0.7;
  opts.refineEvaluations = 40;
  return opts;
}

std::vector<sz::SpecSet> batchSpecs() {
  std::vector<sz::SpecSet> batch(3);
  // An OTA-reachable point, a two-stage-leaning point, and a deliberately
  // hopeless one (the batch contract covers failing designs too).
  batch[0].atLeast("gain_db", 36.0).atLeast("ugf", 1e7).atLeast("pm", 60.0).atMost(
      "power", 4e-3);
  batch[1].atLeast("gain_db", 55.0).atLeast("ugf", 5e6).atLeast("pm", 55.0).minimize(
      "power", 0.3, 1e-3);
  batch[2].atLeast("gain_db", 180.0).atLeast("ugf", 1e10).atLeast("pm", 75.0);
  return batch;
}

core::FlowOptions batchFlowOptions() {
  core::FlowOptions opts;
  opts.loadCap = 2e-12;
  opts.seed = 7;
  opts.maxRedesigns = 1;
  opts.synthesis = fastSynthesisOptions();
  opts.layout.annealPlacement = false;
  return opts;
}

void expectFlowsBitIdentical(const core::FlowResult& a, const core::FlowResult& b,
                             const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.topology, b.topology);
  EXPECT_TRUE(vecBitIdentical(a.designPoint, b.designPoint));
  EXPECT_EQ(a.redesigns, b.redesigns);
  EXPECT_EQ(a.failureReason, b.failureReason);
  EXPECT_EQ(a.failureStatus, b.failureStatus);
  ASSERT_EQ(a.verifications.size(), b.verifications.size());
  for (std::size_t i = 0; i < a.verifications.size(); ++i) {
    EXPECT_EQ(a.verifications[i].stage, b.verifications[i].stage);
    EXPECT_EQ(a.verifications[i].passed, b.verifications[i].passed);
    EXPECT_TRUE(
        perfBitIdentical(a.verifications[i].measured, b.verifications[i].measured));
  }
  ASSERT_EQ(a.stageRecords.size(), b.stageRecords.size());
  for (std::size_t i = 0; i < a.stageRecords.size(); ++i) {
    // Everything but `seconds`, which is wall clock by design.
    EXPECT_EQ(a.stageRecords[i].name, b.stageRecords[i].name);
    EXPECT_EQ(a.stageRecords[i].attempt, b.stageRecords[i].attempt);
    EXPECT_EQ(a.stageRecords[i].status, b.stageRecords[i].status);
    EXPECT_EQ(a.stageRecords[i].detail, b.stageRecords[i].detail);
    EXPECT_EQ(a.stageRecords[i].evalStatus, b.stageRecords[i].evalStatus);
  }
}

}  // namespace

TEST(FlowBatch, MatchesSequentialFlowsBitForBitAcrossThreadsAndCacheModes) {
  auto& c = cache::EvalCache::instance();
  const bool wasEnabled = c.enabled();
  const auto specs = batchSpecs();
  const auto opts = batchFlowOptions();

  // Reference: one sequential flow per spec set, single-threaded, no cache.
  std::vector<core::FlowResult> reference;
  {
    c.clear();
    c.setEnabled(false);
    core::ScopedThreadPool scoped(1);
    for (std::size_t i = 0; i < specs.size(); ++i)
      reference.push_back(
          core::synthesizeAmplifier(specs[i], nominal(), core::batchItemOptions(opts, i)));
  }
  EXPECT_TRUE(reference[0].success) << reference[0].failureReason;
  EXPECT_FALSE(reference[2].success) << "the hopeless spec set must fail";

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    for (const bool cacheOn : {false, true}) {
      c.clear();
      c.setEnabled(cacheOn);
      core::ScopedThreadPool scoped(threads);
      const auto batch = core::synthesizeBatch(specs, nominal(), opts);
      ASSERT_EQ(batch.size(), specs.size());
      for (std::size_t i = 0; i < batch.size(); ++i)
        expectFlowsBitIdentical(reference[i], batch[i],
                                "design=" + std::to_string(i) +
                                    " threads=" + std::to_string(threads) +
                                    " cache=" + (cacheOn ? "on" : "off"));
    }
  }
  c.setEnabled(wasEnabled);
  c.clear();
}

TEST(FlowBatch, ItemOptionsDecorrelateSeedsDeterministically) {
  const core::FlowOptions base = batchFlowOptions();
  const auto a0 = core::batchItemOptions(base, 0);
  const auto a1 = core::batchItemOptions(base, 1);
  EXPECT_NE(a0.seed, a1.seed);
  EXPECT_NE(a0.seed, base.seed);  // stream 0 is already decorrelated
  // Pure function of (base.seed, index).
  EXPECT_EQ(core::batchItemOptions(base, 1).seed, a1.seed);
  // Everything else passes through.
  EXPECT_EQ(a0.loadCap, base.loadCap);
  EXPECT_EQ(a0.maxRedesigns, base.maxRedesigns);
}

TEST(FlowBatch, EmptyBatchIsANoOp) {
  const auto results = core::synthesizeBatch({}, nominal(), batchFlowOptions());
  EXPECT_TRUE(results.empty());
}
