#include <gtest/gtest.h>

#include "knowledge/pulse_plan.hpp"
#include "sizing/pulse.hpp"
#include "sizing/synth.hpp"

namespace kn = amsyn::knowledge;
namespace sz = amsyn::sizing;
namespace ckt = amsyn::circuit;

namespace {
const ckt::Process& proc() { return ckt::defaultProcess(); }

std::map<std::string, double> table1Inputs() {
  return {{"spec.peaking_us", 1.5},
          {"spec.counting_khz", 200},
          {"spec.noise_e", 1000},
          {"spec.gain_v_fc", 20},
          {"spec.range_v", 1.0}};
}
}  // namespace

TEST(PulsePlan, HierarchicalPlanMeetsTable1Specs) {
  const auto plan = kn::pulseDetectorPlan();
  const auto res = plan.execute(proc(), table1Inputs());
  ASSERT_TRUE(res.success) << (res.trace.empty() ? "" : res.trace.back());

  // Re-verify through the shared performance model.
  sz::PulseDetectorModel model(proc());
  const auto perf = model.evaluate(kn::extractPulseDetectorDesign(res.context));
  EXPECT_LE(perf.at("peaking_us"), 1.5);
  EXPECT_GE(perf.at("counting_khz"), 200.0);
  EXPECT_LE(perf.at("noise_e"), 1000.0);
  EXPECT_GE(perf.at("gain_v_fc"), 20.0);
  EXPECT_GE(perf.at("range_v"), 1.0);
}

TEST(PulsePlan, SubplansShareTheContext) {
  const auto plan = kn::pulseDetectorPlan();
  const auto res = plan.execute(proc(), table1Inputs());
  ASSERT_TRUE(res.success);
  // The sub-plans must have left their outputs in the shared context.
  EXPECT_TRUE(res.context.has("out.i_csa"));     // CSA sub-plan
  EXPECT_TRUE(res.context.has("out.i_stage"));   // shaper sub-plan
  EXPECT_TRUE(res.context.has("csa.enc"));       // CSA's own diagnostic
  // And the top plan recorded its verification.
  EXPECT_TRUE(res.context.has("perf.power"));
}

TEST(PulsePlan, BacktracksOnTightNoise) {
  auto inputs = table1Inputs();
  inputs["spec.noise_e"] = 700.0;  // tighter than the default budget allows
  const auto plan = kn::pulseDetectorPlan();
  const auto res = plan.execute(proc(), inputs);
  if (res.success) {
    EXPECT_GT(res.retries, 0u);  // must have cranked csaSpeed
    EXPECT_LE(res.context.get("perf.noise_e"), 700.0);
  } else {
    SUCCEED();  // honest failure on an over-tight budget is acceptable
  }
}

TEST(PulsePlan, FailsOnImpossibleGain) {
  auto inputs = table1Inputs();
  inputs["spec.gain_v_fc"] = 1e5;  // needs a sub-attofarad feedback cap
  const auto plan = kn::pulseDetectorPlan();
  const auto res = plan.execute(proc(), inputs);
  EXPECT_FALSE(res.success);
}

TEST(PulsePlan, PlanSitsBetweenNothingAndOptimizer) {
  // The Fig. 1 story on the Table-1 workload: the plan produces an expert-
  // grade design instantly; the optimizer beats it on power with ~10^3 more
  // evaluations.
  const auto plan = kn::pulseDetectorPlan();
  const auto planRes = plan.execute(proc(), table1Inputs());
  ASSERT_TRUE(planRes.success);
  const double planPower = planRes.context.get("perf.power");

  sz::PulseDetectorModel model(proc());
  sz::SpecSet specs;
  specs.atMost("peaking_us", 1.5)
      .atLeast("counting_khz", 200.0)
      .atMost("noise_e", 1000.0)
      .atLeast("gain_v_fc", 20.0)
      .atMost("gain_v_fc", 23.0)
      .atLeast("range_v", 1.0)
      .minimize("power", 1.0, 1e-3);
  sz::SynthesisOptions opts;
  opts.seed = 11;
  const auto opt = sz::synthesize(model, specs, opts);
  ASSERT_TRUE(opt.feasible);
  EXPECT_LT(opt.performance.at("power"), planPower);
  EXPECT_GT(opt.evaluations, 100u);
}
