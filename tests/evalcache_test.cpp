// Tests for the process-wide evaluation cache (core/evalcache.hpp): unit
// behavior of the sharded LRU table itself, and — the PR's headline proof —
// a differential suite showing that synthesis results are *bit-identical*
// with the cache on and off, at 1, 2, and 8 threads.  The cache may only
// ever change speed, never results; these tests are the enforcement.
//
// The cache is a process-wide singleton (like the metrics registry), so
// every test scopes its configuration changes with CacheGuard and measures
// statistics as deltas, never absolutes.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "circuit/process.hpp"
#include "core/evalcache.hpp"
#include "core/flow.hpp"
#include "core/flowgraph.hpp"
#include "core/parallel.hpp"
#include "manufacture/corners.hpp"
#include "sizing/eqmodel.hpp"
#include "sizing/perfmodel.hpp"

namespace core = amsyn::core;
namespace cache = amsyn::core::cache;
namespace sz = amsyn::sizing;
namespace mf = amsyn::manufacture;
namespace ckt = amsyn::circuit;

namespace {

const ckt::Process& nominal() { return ckt::defaultProcess(); }

/// RAII snapshot/restore of the singleton cache's knobs; enters each test
/// with an enabled, empty cache at default settings.
struct CacheGuard {
  CacheGuard()
      : c(cache::EvalCache::instance()),
        enabled(c.enabled()),
        capacity(c.capacity()),
        quantum(c.quantum()) {
    c.setEnabled(true);
    c.setQuantum(0.0);
    c.clear();
  }
  ~CacheGuard() {
    c.setEnabled(enabled);
    c.setCapacity(capacity);
    c.setQuantum(quantum);
    c.clear();
  }
  cache::EvalCache& c;
  bool enabled;
  std::size_t capacity;
  double quantum;
};

/// Minimal cacheable model that counts real evaluations, so tests can tell
/// a hit (count unchanged) from a miss (count advanced).
class CountingModel : public sz::PerformanceModel {
 public:
  explicit CountingModel(double base = 1.0, bool cacheable = true, bool throws = false)
      : base_(base), cacheable_(cacheable), throws_(throws) {}

  const std::vector<sz::DesignVariable>& variables() const override { return vars_; }

  sz::Performance evaluate(const std::vector<double>& x) const override {
    ++evals_;
    if (throws_) throw std::runtime_error("poisoned candidate");
    return {{"gain_db", base_ + x.at(0)}, {"power", base_ * x.at(0)}};
  }

  std::optional<cache::Digest128> cacheKey(const std::vector<double>& x) const override {
    if (!cacheable_) return std::nullopt;
    cache::Hasher128 h;
    h.mixString("counting-model");
    h.mixDouble(base_);
    h.mixQuantizedDoubles(x, cache::EvalCache::instance().quantum());
    return h.digest();
  }

  int evals() const { return evals_.load(); }

 private:
  double base_;
  bool cacheable_;
  bool throws_;
  mutable std::atomic<int> evals_{0};
  std::vector<sz::DesignVariable> vars_{{"a", 1.0, 10.0, false, 1.0}};
};

std::uint64_t rawBits(double v) {
  std::uint64_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

/// Bit-exact Performance comparison.  operator== on the map would treat
/// NaN != NaN, but a cached NaN must reproduce the evaluated NaN exactly,
/// so values compare by their raw IEEE-754 bits.
::testing::AssertionResult perfBitIdentical(const sz::Performance& a,
                                            const sz::Performance& b) {
  if (a.size() != b.size())
    return ::testing::AssertionFailure()
           << "sizes differ: " << a.size() << " vs " << b.size();
  auto ia = a.begin();
  auto ib = b.begin();
  for (; ia != a.end(); ++ia, ++ib) {
    if (ia->first != ib->first)
      return ::testing::AssertionFailure()
             << "keys differ: " << ia->first << " vs " << ib->first;
    if (rawBits(ia->second) != rawBits(ib->second))
      return ::testing::AssertionFailure()
             << ia->first << " differs in bits: " << ia->second << " vs " << ib->second;
  }
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult vecBitIdentical(const std::vector<double>& a,
                                           const std::vector<double>& b) {
  if (a.size() != b.size())
    return ::testing::AssertionFailure()
           << "sizes differ: " << a.size() << " vs " << b.size();
  for (std::size_t i = 0; i < a.size(); ++i)
    if (rawBits(a[i]) != rawBits(b[i]))
      return ::testing::AssertionFailure()
             << "x[" << i << "] differs in bits: " << a[i] << " vs " << b[i];
  return ::testing::AssertionSuccess();
}

cache::Digest128 keyOf(std::uint64_t tag) {
  cache::Hasher128 h;
  h.mixString("evalcache-test").mix(tag);
  return h.digest();
}

}  // namespace

// ---------------------------------------------------------------------------
// Unit behavior of the cache itself

TEST(EvalCache, RoundtripsFullPayloadIncludingTaxonomyKeys) {
  CacheGuard guard;
  const std::vector<double> x{1.0, 2.0};
  cache::CachedEval in;
  in.performance = {{"gain_db", 61.25},
                    {"_infeasible", 1.0},
                    {sz::kEvalStatusKey, static_cast<double>(core::EvalStatus::NanDetected)}};
  in.status = core::EvalStatus::NanDetected;
  guard.c.insert(keyOf(1), x, in);

  cache::CachedEval out;
  ASSERT_TRUE(guard.c.lookup(keyOf(1), x, out));
  EXPECT_TRUE(perfBitIdentical(in.performance, out.performance));
  EXPECT_EQ(out.status, core::EvalStatus::NanDetected);

  // A different key misses.
  EXPECT_FALSE(guard.c.lookup(keyOf(2), x, out));
}

TEST(EvalCache, ExactModeRejectsDigestMatchWithDifferentSizingBits) {
  // The collision guard behind the bit-identity proof: even if two sizing
  // vectors ever produced the same digest, the stored exact vector would
  // expose the mismatch and the lookup degrades to a (counted) miss.
  CacheGuard guard;
  const auto before = guard.c.stats();
  guard.c.insert(keyOf(3), {1.0, 2.0}, {{{"gain_db", 1.0}}, core::EvalStatus::Ok});
  cache::CachedEval out;
  EXPECT_FALSE(guard.c.lookup(keyOf(3), {1.0, std::nextafter(2.0, 3.0)}, out));
  EXPECT_TRUE(guard.c.lookup(keyOf(3), {1.0, 2.0}, out));
  const auto after = guard.c.stats();
  EXPECT_EQ(after.collisions - before.collisions, 1u);
  EXPECT_EQ(after.hits - before.hits, 1u);
}

TEST(EvalCache, QuantizedModeWaivesTheExactGuard) {
  // With a positive quantum the key already buckets the sizing vector, so a
  // digest match is accepted as-is (documented approximate mode).
  CacheGuard guard;
  guard.c.setQuantum(0.01);
  guard.c.insert(keyOf(4), {1.0}, {{{"gain_db", 2.0}}, core::EvalStatus::Ok});
  cache::CachedEval out;
  EXPECT_TRUE(guard.c.lookup(keyOf(4), {1.0 + 1e-9}, out));
}

TEST(EvalCache, EvictionKeepsOccupancyBoundedAtTinyCapacity) {
  CacheGuard guard;
  guard.c.setCapacity(32);
  const auto before = guard.c.stats();
  for (std::uint64_t i = 0; i < 1000; ++i)
    guard.c.insert(keyOf(100 + i), {static_cast<double>(i)},
                   {{{"gain_db", static_cast<double>(i)}}, core::EvalStatus::Ok});
  const auto after = guard.c.stats();
  EXPECT_LE(after.entries, 32u);
  EXPECT_GT(after.evictions - before.evictions, 0u);
  EXPECT_GT(after.bytes, 0u);
  // The freshest entry survived strict LRU; an early one was evicted.
  cache::CachedEval out;
  EXPECT_TRUE(guard.c.lookup(keyOf(100 + 999), {999.0}, out));
  EXPECT_FALSE(guard.c.lookup(keyOf(100), {0.0}, out));
}

TEST(EvalCache, ClearDropsEntriesButKeepsLifetimeTotals) {
  CacheGuard guard;
  guard.c.insert(keyOf(5), {1.0}, {{{"gain_db", 1.0}}, core::EvalStatus::Ok});
  const auto inserted = guard.c.stats();
  EXPECT_GE(inserted.entries, 1u);
  guard.c.clear();
  const auto cleared = guard.c.stats();
  EXPECT_EQ(cleared.entries, 0u);
  EXPECT_EQ(cleared.bytes, 0u);
  EXPECT_GE(cleared.inserts, inserted.inserts);  // totals are monotonic
  cache::CachedEval out;
  EXPECT_FALSE(guard.c.lookup(keyOf(5), {1.0}, out));
}

// ---------------------------------------------------------------------------
// EvalCacheOptions: the flow's explicit tri-state cache knob

TEST(EvalCacheOptions, DefaultModeLeavesTheCacheUntouched) {
  CacheGuard guard;
  guard.c.setCapacity(1234);
  core::applyEvalCacheOptions(core::EvalCacheOptions::defaults());
  EXPECT_TRUE(guard.c.enabled());
  EXPECT_EQ(guard.c.capacity(), 1234u);
}

TEST(EvalCacheOptions, BoundedModeSetsTheCapacity) {
  CacheGuard guard;
  core::applyEvalCacheOptions(core::EvalCacheOptions::bounded(64));
  EXPECT_TRUE(guard.c.enabled());
  EXPECT_EQ(guard.c.capacity(), 64u);
}

TEST(EvalCacheOptions, DisabledModeSwitchesTheCacheOff) {
  CacheGuard guard;
  core::applyEvalCacheOptions(core::EvalCacheOptions::disabled());
  EXPECT_FALSE(guard.c.enabled());
}

// ---------------------------------------------------------------------------
// safeEvaluate integration: the single choke point all hot loops share

TEST(EvalCache, SafeEvaluateHitsOnRepeatAndKillSwitchDisables) {
  CacheGuard guard;
  CountingModel model(7.0);
  const std::vector<double> x{3.0};

  const auto first = sz::safeEvaluate(model, x);
  const auto second = sz::safeEvaluate(model, x);
  EXPECT_EQ(model.evals(), 1) << "repeat evaluation must be served from cache";
  EXPECT_TRUE(perfBitIdentical(first, second));

  guard.c.setEnabled(false);  // the AMSYN_EVAL_CACHE=0 path
  const auto third = sz::safeEvaluate(model, x);
  EXPECT_EQ(model.evals(), 2) << "kill switch must force a real evaluation";
  EXPECT_TRUE(perfBitIdentical(first, third));
}

TEST(EvalCache, ModelsWithoutKeysAreNeverCached) {
  CacheGuard guard;
  CountingModel model(7.0, /*cacheable=*/false);
  const std::vector<double> x{3.0};
  sz::safeEvaluate(model, x);
  sz::safeEvaluate(model, x);
  EXPECT_EQ(model.evals(), 2);
}

TEST(EvalCache, FailureTaxonomySurvivesACacheHit) {
  // A throwing candidate is evaluated once; the hit replays the identical
  // _infeasible/_status payload without re-running (or re-tallying) it.
  CacheGuard guard;
  CountingModel model(1.0, /*cacheable=*/true, /*throws=*/true);
  const std::vector<double> x{2.0};
  const auto first = sz::safeEvaluate(model, x);
  const auto second = sz::safeEvaluate(model, x);
  EXPECT_EQ(model.evals(), 1);
  EXPECT_TRUE(perfBitIdentical(first, second));
  EXPECT_EQ(first.count("_infeasible"), 1u);
  EXPECT_EQ(sz::performanceStatus(second), core::EvalStatus::InternalError);
}

TEST(EvalCache, DistinctDesignPointsDoNotAlias) {
  CacheGuard guard;
  CountingModel model(7.0);
  const auto a = sz::safeEvaluate(model, {3.0});
  const auto b = sz::safeEvaluate(model, {4.0});
  EXPECT_EQ(model.evals(), 2);
  EXPECT_FALSE(perfBitIdentical(a, b));
}

TEST(EvalCache, ConcurrentMixedLookupsStayConsistent) {
  // Hammer one shard set from the pool: every returned payload must be the
  // one evaluation the key deterministically maps to, regardless of which
  // thread inserted it first.
  CacheGuard guard;
  CountingModel model(5.0);
  core::ScopedThreadPool scoped(8);
  constexpr std::size_t kIters = 512;
  const auto results = core::parallelMap(kIters, [&](std::size_t i) {
    const std::vector<double> x{static_cast<double>(i % 7)};
    return sz::safeEvaluate(model, x);
  });
  for (std::size_t i = 0; i < kIters; ++i) {
    const double a = static_cast<double>(i % 7);
    ASSERT_EQ(results[i].at("gain_db"), 5.0 + a);
    ASSERT_EQ(results[i].at("power"), 5.0 * a);
  }
  // 7 distinct candidates exist; duplicates may race on first evaluation
  // but the payload is deterministic either way.
  EXPECT_GE(model.evals(), 7);
  EXPECT_LE(model.evals(), 7 * 8);
}

// ---------------------------------------------------------------------------
// Differential suite: cache on == cache off, bit for bit, at any threads

namespace {

sz::SynthesisOptions fastSynthesisOptions() {
  sz::SynthesisOptions opts;
  opts.seed = 11;
  opts.multistarts = 2;
  opts.anneal.stagnationStages = 2;
  opts.anneal.coolingRate = 0.7;
  opts.refineEvaluations = 40;
  return opts;
}

core::FlowResult runFlow(bool cacheOn, std::size_t threads) {
  auto& c = cache::EvalCache::instance();
  c.clear();
  c.setEnabled(cacheOn);
  core::ScopedThreadPool scoped(threads);
  sz::SpecSet specs;
  specs.atLeast("gain_db", 36.0)
      .atLeast("ugf", 1e7)
      .atLeast("pm", 60.0)
      .atMost("power", 4e-3)
      .minimize("power", 0.3, 1e-3);
  core::FlowOptions opts;
  opts.loadCap = 2e-12;
  opts.seed = 3;
  opts.synthesis = fastSynthesisOptions();
  opts.layout.annealPlacement = false;
  return core::synthesizeAmplifier(specs, nominal(), opts);
}

/// The run-report prefix that is a pure function of the FlowResult: report
/// name + info + values.  Counters/spans legitimately differ with the cache
/// on (less simulator work ran, and span timings are wall clock), and the
/// per-stage `stage.N.seconds` values are wall clock too, so their digits
/// are masked before comparing.
std::string reportResultPrefix(const core::FlowResult& r) {
  std::string json = core::flowRunReportJson(r);
  const auto pos = json.find("\"counters\"");
  if (pos != std::string::npos) json = json.substr(0, pos);
  std::string masked;
  std::size_t at = 0;
  while (true) {
    const auto hit = json.find(".seconds\": ", at);
    if (hit == std::string::npos) break;
    const auto valueStart = hit + std::strlen(".seconds\": ");
    auto valueEnd = valueStart;
    while (valueEnd < json.size() && json[valueEnd] != ',' && json[valueEnd] != '\n')
      ++valueEnd;
    masked += json.substr(at, valueStart - at);
    masked += '#';
    at = valueEnd;
  }
  masked += json.substr(at);
  return masked;
}

void expectFlowsBitIdentical(const core::FlowResult& a, const core::FlowResult& b,
                             const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.topology, b.topology);
  EXPECT_TRUE(vecBitIdentical(a.designPoint, b.designPoint));
  EXPECT_EQ(a.redesigns, b.redesigns);
  EXPECT_EQ(a.failureReason, b.failureReason);
  EXPECT_EQ(a.failureStatus, b.failureStatus);
  ASSERT_EQ(a.verifications.size(), b.verifications.size());
  for (std::size_t i = 0; i < a.verifications.size(); ++i) {
    EXPECT_EQ(a.verifications[i].stage, b.verifications[i].stage);
    EXPECT_EQ(a.verifications[i].passed, b.verifications[i].passed);
    EXPECT_TRUE(
        perfBitIdentical(a.verifications[i].measured, b.verifications[i].measured));
  }
  // Stage records match field for field except `seconds` (wall clock).
  ASSERT_EQ(a.stageRecords.size(), b.stageRecords.size());
  for (std::size_t i = 0; i < a.stageRecords.size(); ++i) {
    EXPECT_EQ(a.stageRecords[i].name, b.stageRecords[i].name);
    EXPECT_EQ(a.stageRecords[i].attempt, b.stageRecords[i].attempt);
    EXPECT_EQ(a.stageRecords[i].status, b.stageRecords[i].status);
    EXPECT_EQ(a.stageRecords[i].detail, b.stageRecords[i].detail);
    EXPECT_EQ(a.stageRecords[i].evalStatus, b.stageRecords[i].evalStatus);
  }
  EXPECT_EQ(reportResultPrefix(a), reportResultPrefix(b));
}

mf::RobustResult runRobust(bool cacheOn, std::size_t threads) {
  auto& c = cache::EvalCache::instance();
  c.clear();
  c.setEnabled(cacheOn);
  core::ScopedThreadPool scoped(threads);
  sz::SpecSet specs;
  specs.atLeast("gain_db", 55.0).atLeast("ugf", 1e6).minimize("power", 0.5, 1e-3);
  mf::RobustOptions ropts;
  ropts.synthesis = fastSynthesisOptions();
  ropts.maxRounds = 1;
  const mf::ModelFactory factory = [](const ckt::Process& p) {
    return sz::makeTwoStageCornerModel(p, nominal(), 5e-12);
  };
  return mf::robustSynthesize(factory, nominal(), mf::VariationSpace{}, specs, ropts);
}

void expectRobustBitIdentical(const mf::RobustResult& a, const mf::RobustResult& b,
                              const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_TRUE(vecBitIdentical(a.nominal.x, b.nominal.x));
  EXPECT_TRUE(perfBitIdentical(a.nominal.performance, b.nominal.performance));
  EXPECT_EQ(a.nominal.feasible, b.nominal.feasible);
  EXPECT_TRUE(vecBitIdentical(a.robust.x, b.robust.x));
  EXPECT_TRUE(perfBitIdentical(a.robust.performance, b.robust.performance));
  EXPECT_EQ(a.robust.feasible, b.robust.feasible);
  EXPECT_EQ(a.robustFeasibleAtCorners, b.robustFeasibleAtCorners);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.activeCorners, b.activeCorners);
  // Evaluation counts are work-unit counts (cost-layer calls), not misses:
  // the cache must not change them either.
  EXPECT_EQ(a.nominalEvaluations, b.nominalEvaluations);
  EXPECT_EQ(a.robustEvaluations, b.robustEvaluations);
}

}  // namespace

TEST(EvalCacheDifferential, FlowIsBitIdenticalWithCacheOnOffAcrossThreadCounts) {
  CacheGuard guard;
  const auto reference = runFlow(/*cacheOn=*/false, /*threads=*/1);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    expectFlowsBitIdentical(reference, runFlow(false, threads),
                            "cache=off threads=" + std::to_string(threads));
    expectFlowsBitIdentical(reference, runFlow(true, threads),
                            "cache=on threads=" + std::to_string(threads));
  }
}

TEST(EvalCacheDifferential, CornerSearchIsBitIdenticalWithCacheOnOffAcrossThreadCounts) {
  CacheGuard guard;
  const auto reference = runRobust(/*cacheOn=*/false, /*threads=*/1);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{2}, std::size_t{8}}) {
    expectRobustBitIdentical(reference, runRobust(false, threads),
                             "cache=off threads=" + std::to_string(threads));
    expectRobustBitIdentical(reference, runRobust(true, threads),
                             "cache=on threads=" + std::to_string(threads));
  }
}

TEST(EvalCacheDifferential, CornerSearchActuallyHitsTheCache) {
  // The differential test would pass vacuously if nothing ever hit; this
  // pins the speedup mechanism itself (the audit re-hunts the last round's
  // corners, the vertex enumeration repeats across specs and rounds).
  CacheGuard guard;
  const auto before = guard.c.stats();
  runRobust(/*cacheOn=*/true, /*threads=*/2);
  const auto after = guard.c.stats();
  EXPECT_GT(after.hits - before.hits, 0u);
  EXPECT_GT(after.inserts - before.inserts, 0u);
}
