#include <gtest/gtest.h>

#include <cmath>

#include "layout/cell/drc.hpp"
#include "layout/cell/modgen.hpp"
#include "layout/cell/place.hpp"
#include "layout/system/segregate.hpp"
#include "sim/measure.hpp"
#include "sizing/database.hpp"
#include "sizing/eqmodel.hpp"
#include "sizing/opamp.hpp"
#include "symbolic/analyze.hpp"

namespace {
using namespace amsyn;
const circuit::Process& proc() { return circuit::defaultProcess(); }
}  // namespace

// ------------------------------------------------------------ design database

TEST(DesignDatabase, SpecDistanceOrdersByCloseness) {
  sizing::SpecSet a, b, c;
  a.atLeast("gain_db", 60).atLeast("ugf", 5e6);
  b.atLeast("gain_db", 62).atLeast("ugf", 5.5e6);  // close to a
  c.atLeast("gain_db", 90).atLeast("ugf", 5e7);    // far from a
  EXPECT_LT(sizing::DesignDatabase::specDistance(a, b),
            sizing::DesignDatabase::specDistance(a, c));
  EXPECT_DOUBLE_EQ(sizing::DesignDatabase::specDistance(a, a), 0.0);
}

TEST(DesignDatabase, NearestReturnsClosestStoredDesign) {
  sizing::DesignDatabase db;
  sizing::SpecSet s1, s2;
  s1.atLeast("gain_db", 60);
  s2.atLeast("gain_db", 85);
  db.store({"low-gain", s1, {1.0}, {}});
  db.store({"high-gain", s2, {2.0}, {}});
  sizing::SpecSet query;
  query.atLeast("gain_db", 82);
  const auto hit = db.nearest(query);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->label, "high-gain");
}

TEST(DesignDatabase, EmptyDatabaseReturnsNothing) {
  sizing::DesignDatabase db;
  sizing::SpecSet q;
  q.atLeast("gain_db", 60);
  EXPECT_FALSE(db.nearest(q).has_value());
}

TEST(DesignDatabase, WarmStartReusesAndStores) {
  // OAC-style redesign: solve one spec set cold, then a neighboring one
  // warm; both must succeed and both land in the database.
  sizing::TwoStageEquationModel model(proc(), 5e-12);
  sizing::DesignDatabase db;
  sizing::SpecSet first;
  first.atLeast("gain_db", 65).atLeast("ugf", 3e6).atLeast("pm", 55).minimize("power", 0.5,
                                                                              1e-3);
  sizing::SynthesisOptions opts;
  opts.seed = 5;
  const auto r1 = sizing::synthesizeWithDatabase(db, model, first, "first", opts);
  ASSERT_TRUE(r1.feasible);
  EXPECT_EQ(db.size(), 1u);

  sizing::SpecSet second;
  second.atLeast("gain_db", 67).atLeast("ugf", 3.5e6).atLeast("pm", 55).minimize("power",
                                                                                 0.5, 1e-3);
  const auto r2 = sizing::synthesizeWithDatabase(db, model, second, "second", opts);
  EXPECT_TRUE(r2.feasible);
  EXPECT_EQ(db.size(), 2u);
  // The warm start must yield a feasible neighbour design with comparable
  // power (it searched near the stored solution).
  EXPECT_LT(r2.performance.at("power"), r1.performance.at("power") * 4.0);
}

// ----------------------------------------------------------------- compaction

namespace {
layout::Placement spreadRow(geom::Coord gap) {
  static std::vector<geom::CellMaster> masters;  // keep masters alive
  masters.clear();
  layout::Placement p;
  circuit::MosParams mp{circuit::MosType::Nmos, 10e-6, 2e-6, 1, 0.0, 1.0};
  geom::Coord x = 0;
  for (int i = 0; i < 4; ++i) {
    masters.push_back(layout::generateMos("M" + std::to_string(i), mp,
                                          "d" + std::to_string(i), "g",
                                          "s" + std::to_string(i), "0", proc()));
  }
  for (int i = 0; i < 4; ++i) {
    geom::CellInstance inst;
    inst.name = "M" + std::to_string(i);
    inst.master = &masters[static_cast<std::size_t>(i)];
    inst.placement = {geom::Orientation::R0, x, 0};
    p.instances.push_back(inst);
    x += masters.back().boundingBox().width() + gap;
  }
  geom::Rect bb;
  for (const auto& c : p.instances) bb = bb.unionWith(c.boundingBox());
  p.boundingBox = bb;
  p.overlapFree = true;
  return p;
}
}  // namespace

TEST(Compaction, RemovesSlackWithoutOverlaps) {
  const auto loose = spreadRow(400);
  const auto tight = layout::compactPlacement(loose, 12);
  EXPECT_TRUE(tight.overlapFree);
  EXPECT_LT(tight.boundingBox.width(), loose.boundingBox.width() / 2);
}

TEST(Compaction, AlreadyCompactIsStable) {
  const auto snug = spreadRow(12);
  const auto again = layout::compactPlacement(snug, 12);
  EXPECT_TRUE(again.overlapFree);
  EXPECT_EQ(again.boundingBox.width(), snug.boundingBox.width());
}

TEST(Compaction, SymmetricPairMovesRigidly) {
  auto loose = spreadRow(300);
  const geom::Coord beforeGap = loose.instances[2].boundingBox().x0 -
                                loose.instances[1].boundingBox().x1;
  (void)beforeGap;
  const auto compacted =
      layout::compactPlacement(loose, 12, {{"M1", "M2"}});
  // M1 and M2 must have moved by the same amount.
  const geom::Coord d1 = loose.instances[1].boundingBox().x0 -
                         compacted.instances[1].boundingBox().x0;
  const geom::Coord d2 = loose.instances[2].boundingBox().x0 -
                         compacted.instances[2].boundingBox().x0;
  EXPECT_EQ(d1, d2);
  EXPECT_TRUE(compacted.overlapFree);
}

// ---------------------------------------------------- performance-driven nets

TEST(PerfDrivenPlacement, WeightedWirelengthRespondsToWeights) {
  const auto p = spreadRow(100);
  const double plain = layout::estimateWirelength(p.instances);
  const double heavyG = layout::estimateWirelengthWeighted(p.instances, {{"g", 5.0}});
  // "g" spans all devices, so weighting it up must raise the estimate.
  EXPECT_GT(heavyG, plain);
}

TEST(PerfDrivenPlacement, CriticalNetGetsShorter) {
  // Three devices share net "g"; devices 0 and 2 also share "crit".  With a
  // heavy weight on "crit", the placer should pull 0 and 2 closer together
  // than the unweighted run does.
  std::vector<layout::PlacementComponent> comps;
  circuit::MosParams mp{circuit::MosType::Nmos, 10e-6, 2e-6, 1, 0.0, 1.0};
  for (int i = 0; i < 4; ++i) {
    layout::PlacementComponent c;
    c.name = "M" + std::to_string(i);
    const std::string drain = (i == 0 || i == 2) ? "crit" : "d" + std::to_string(i);
    c.variants = {layout::generateMos(c.name, mp, drain, "g", "s" + std::to_string(i),
                                      "0", proc())};
    comps.push_back(std::move(c));
  }
  auto critLength = [&](const layout::Placement& p) {
    geom::Rect box;
    bool first = true;
    for (const auto& inst : p.instances)
      for (const auto& pin : inst.transformedPins())
        if (pin.name == "crit") {
          box = first ? pin.rect : box.unionWith(pin.rect);
          first = false;
        }
    return box.halfPerimeter();
  };
  layout::PlacerOptions plain;
  plain.seed = 9;
  layout::PlacerOptions weighted = plain;
  weighted.netWeights["crit"] = 30.0;
  const auto pPlain = layout::placeCells(comps, plain);
  const auto pWeighted = layout::placeCells(comps, weighted);
  ASSERT_TRUE(pWeighted.overlapFree);
  EXPECT_LE(critLength(pWeighted), critLength(pPlain));
}

// ----------------------------------------------------------------------- DRC

TEST(Drc, CleanLayoutHasNoViolations) {
  geom::Layout l;
  l.wires.push_back({geom::Layer::Metal1, {0, 0, 100, 12}, "a"});
  l.wires.push_back({geom::Layer::Metal1, {0, 24, 100, 36}, "b"});  // 12 apart
  EXPECT_TRUE(layout::checkDesignRules(l, proc()).empty());
}

TEST(Drc, DetectsSpacingViolation) {
  geom::Layout l;
  l.wires.push_back({geom::Layer::Metal1, {0, 0, 100, 12}, "a"});
  l.wires.push_back({geom::Layer::Metal1, {0, 16, 100, 28}, "b"});  // only 4 apart
  const auto v = layout::checkDesignRules(l, proc());
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, layout::DrcViolation::Kind::Spacing);
  EXPECT_EQ(v[0].value, 4);
  EXPECT_NE(v[0].describe().find("spacing"), std::string::npos);
}

TEST(Drc, DetectsWidthViolation) {
  geom::Layout l;
  l.wires.push_back({geom::Layer::Metal2, {0, 0, 100, 6}, "thin"});  // 6 < 12
  const auto v = layout::checkDesignRules(l, proc());
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0].kind, layout::DrcViolation::Kind::Width);
}

TEST(Drc, SameNetShapesMayAbut) {
  geom::Layout l;
  l.wires.push_back({geom::Layer::Metal1, {0, 0, 100, 12}, "a"});
  l.wires.push_back({geom::Layer::Metal1, {50, 0, 150, 12}, "a"});  // overlapping, same net
  EXPECT_TRUE(layout::checkDesignRules(l, proc()).empty());
}

TEST(Drc, DifferentLayersDoNotInteract) {
  geom::Layout l;
  l.wires.push_back({geom::Layer::Metal1, {0, 0, 100, 12}, "a"});
  l.wires.push_back({geom::Layer::Metal2, {0, 2, 100, 14}, "b"});
  EXPECT_TRUE(layout::checkDesignRules(l, proc()).empty());
}

// --------------------------------------------------------------------- PSRR

TEST(Psrr, OpampRejectsSupplyNoise) {
  const auto net = sizing::buildTwoStageOpamp(sizing::TwoStageParams{}, proc(), {});
  const auto psrr = sim::psrrDb(net, proc(), "out", 100.0);
  ASSERT_TRUE(psrr.has_value());
  // A two-stage opamp has meaningful low-frequency PSRR.
  EXPECT_GT(*psrr, 20.0);
}

TEST(Psrr, MissingSourceReportsNothing) {
  circuit::Netlist net;
  net.addVSource("V1", "in", "0", 1.0, 1.0);
  net.addResistor("R1", "in", "out", 1e3);
  net.addResistor("R2", "out", "0", 1e3);
  EXPECT_FALSE(sim::psrrDb(net, proc(), "out", 1e3).has_value());
}

// --------------------------------------------------------- symbolic poles

TEST(SymbolicPoles, RcPoleLocation) {
  symbolic::SmallSignalCircuit c(3);
  c.addConductance("g", 1e-3, 1, 2);
  c.addCapacitance("cl", 1e-9, 2, 0);
  const auto h = symbolic::voltageTransfer(c, 1, 2);
  const auto poles = h.poles(c.symbols());
  ASSERT_EQ(poles.size(), 1u);
  EXPECT_NEAR(poles[0].real(), -1e6, 1e3);  // -g/C = -1e6 rad/s
  EXPECT_TRUE(h.zeros(c.symbols()).empty());  // constant numerator
}

TEST(SymbolicPoles, TwoPoleLadder) {
  symbolic::SmallSignalCircuit c(4);
  c.addConductance("g1", 1e-3, 1, 2);
  c.addCapacitance("c1", 1e-9, 2, 0);
  c.addConductance("g2", 1e-4, 2, 3);
  c.addCapacitance("c2", 1e-10, 3, 0);
  const auto h = symbolic::voltageTransfer(c, 1, 3);
  const auto poles = h.poles(c.symbols());
  EXPECT_EQ(poles.size(), 2u);
  for (const auto& p : poles) EXPECT_LT(p.real(), 0.0);  // passive: stable
}

// ------------------------------------------------------------ segregation API

TEST(Segregate, AssignsByClassAndPreference) {
  std::vector<layout::SegregatedNet> nets = {
      {"clkA", layout::WireClass::Noisy, 0},
      {"clkB", layout::WireClass::Noisy, 2},
      {"sigA", layout::WireClass::Sensitive, 1},
      {"bias", layout::WireClass::Quiet, 3},
  };
  const auto a = layout::segregateChannels(nets);
  ASSERT_TRUE(a.valid);
  EXPECT_TRUE(layout::segregationHolds(a, nets));
  // Noisy nets land on even channels (default parity), sensitive on odd.
  EXPECT_EQ(a.channelOf.at("clkA") % 2, 0);
  EXPECT_EQ(a.channelOf.at("sigA") % 2, 1);
}

TEST(Segregate, CapacityForcesSpill) {
  std::vector<layout::SegregatedNet> nets;
  for (int i = 0; i < 6; ++i)
    nets.push_back({"n" + std::to_string(i), layout::WireClass::Noisy, 0});
  layout::SegregateOptions opts;
  opts.channelCount = 4;
  opts.maxLoadPerChannel = 2;
  const auto a = layout::segregateChannels(nets, opts);
  // 6 noisy nets at capacity 2: only channels 0 and 2 are noisy-legal, so
  // total legal capacity is 4 < 6 and the assignment must report failure.
  EXPECT_FALSE(a.valid);
  // With 8 channels (4 noisy-legal, capacity 8) everything fits.
  layout::SegregateOptions wide = opts;
  wide.channelCount = 8;
  const auto b = layout::segregateChannels(nets, wide);
  EXPECT_TRUE(b.valid);
  EXPECT_TRUE(layout::segregationHolds(b, nets));
}
