# Gate-integrity check: every test registered in this build must carry the
# tier1 label and a finite per-test TIMEOUT.  `ctest -L tier1` is the
# ROADMAP's must-stay-green gate; a test registered without the label
# silently escapes the gate, and one without a TIMEOUT can wedge CI on a
# hung solver.  This script interrogates ctest's own model of the test set
# (--show-only=json-v1), so anything add_test()-ed by any mechanism —
# gtest_discover_tests, raw add_test, future helpers — is covered.
#
# Run as a ctest test (registered in tests/CMakeLists.txt) or manually:
#   cmake -DBUILD_DIR=build -DCTEST_EXECUTABLE=$(which ctest) \
#         -P tests/tier1_gate_check.cmake
cmake_minimum_required(VERSION 3.20)

if(NOT DEFINED BUILD_DIR)
  message(FATAL_ERROR "tier1_gate_check: pass -DBUILD_DIR=<build tree>")
endif()
if(NOT DEFINED CTEST_EXECUTABLE)
  set(CTEST_EXECUTABLE ctest)
endif()

execute_process(
  COMMAND "${CTEST_EXECUTABLE}" --show-only=json-v1
  WORKING_DIRECTORY "${BUILD_DIR}"
  OUTPUT_VARIABLE model
  RESULT_VARIABLE rc
)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "tier1_gate_check: ctest --show-only=json-v1 failed (${rc})")
endif()

string(JSON ntests LENGTH "${model}" tests)
if(ntests EQUAL 0)
  message(FATAL_ERROR "tier1_gate_check: build registers no tests at all")
endif()

set(violations "")
math(EXPR last "${ntests} - 1")
foreach(i RANGE ${last})
  string(JSON name GET "${model}" tests ${i} name)
  set(has_timeout FALSE)
  set(has_tier1 FALSE)
  string(JSON nprops ERROR_VARIABLE perr LENGTH "${model}" tests ${i} properties)
  if(NOT perr AND nprops GREATER 0)
    math(EXPR plast "${nprops} - 1")
    foreach(p RANGE ${plast})
      string(JSON pname GET "${model}" tests ${i} properties ${p} name)
      if(pname STREQUAL "TIMEOUT")
        string(JSON pvalue GET "${model}" tests ${i} properties ${p} value)
        if(pvalue MATCHES "^[0-9]+(\\.[0-9]+)?$" AND pvalue GREATER 0)
          set(has_timeout TRUE)
        endif()
      elseif(pname STREQUAL "LABELS")
        string(JSON nlabels LENGTH "${model}" tests ${i} properties ${p} value)
        if(nlabels GREATER 0)
          math(EXPR llast "${nlabels} - 1")
          foreach(l RANGE ${llast})
            string(JSON label GET "${model}" tests ${i} properties ${p} value ${l})
            if(label STREQUAL "tier1")
              set(has_tier1 TRUE)
            endif()
          endforeach()
        endif()
      endif()
    endforeach()
  endif()
  if(NOT has_timeout)
    string(APPEND violations "  ${name}: no positive TIMEOUT property\n")
  endif()
  if(NOT has_tier1)
    string(APPEND violations "  ${name}: missing the tier1 label\n")
  endif()
endforeach()

if(violations)
  message(FATAL_ERROR
    "tier1_gate_check: ${ntests} tests inspected, violations found —\n"
    "${violations}"
    "register tests through amsyn_add_test() (tests/CMakeLists.txt), which "
    "applies both properties.")
endif()
message(STATUS "tier1_gate_check: all ${ntests} registered tests carry tier1 + TIMEOUT")
