#include <gtest/gtest.h>

#include <cmath>

#include "circuit/parser.hpp"
#include "sim/ac.hpp"
#include "sim/dc.hpp"
#include "sim/measure.hpp"
#include "sim/mna.hpp"
#include "sim/noise.hpp"
#include "sim/stats.hpp"
#include "sim/transient.hpp"

namespace ckt = amsyn::circuit;
namespace sim = amsyn::sim;

namespace {
const ckt::Process& proc() { return ckt::defaultProcess(); }

double nodeV(const sim::Mna& mna, const sim::DcResult& op, const std::string& node) {
  return mna.nodeVoltage(op.x, *mna.netlist().findNode(node));
}
}  // namespace

TEST(Dc, VoltageDivider) {
  auto net = ckt::parseDeck(R"(
V1 in 0 DC 10
R1 in mid 1k
R2 mid 0 3k
.end)");
  sim::Mna mna(net, proc());
  const auto op = sim::dcOperatingPoint(mna);
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(nodeV(mna, op, "mid"), 7.5, 1e-6);
}

TEST(Dc, KclResidualIsZeroAtSolution) {
  auto net = ckt::parseDeck(R"(
V1 in 0 DC 5
R1 in a 2k
R2 a 0 1k
R3 a b 5k
R4 b 0 1k
.end)");
  sim::Mna mna(net, proc());
  const auto op = sim::dcOperatingPoint(mna);
  ASSERT_TRUE(op.converged);
  amsyn::num::VecD f;
  mna.assemble(op.x, {}, nullptr, &f);
  EXPECT_LT(amsyn::num::normInf(f), 1e-9);
}

TEST(Dc, CurrentSourceIntoResistor) {
  ckt::Netlist net;
  net.addISource("I1", "0", "out", 1e-3);  // 1 mA pushed into "out"
  net.addResistor("R1", "out", "0", 2e3);
  sim::Mna mna(net, proc());
  const auto op = sim::dcOperatingPoint(mna);
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(nodeV(mna, op, "out"), 2.0, 1e-6);
}

TEST(Dc, VcvsGain) {
  auto net = ckt::parseDeck(R"(
V1 in 0 DC 0.5
E1 out 0 in 0 10
R1 out 0 1k
.end)");
  sim::Mna mna(net, proc());
  const auto op = sim::dcOperatingPoint(mna);
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(nodeV(mna, op, "out"), 5.0, 1e-9);
}

TEST(Dc, VccsIntoLoad) {
  auto net = ckt::parseDeck(R"(
V1 in 0 DC 1
G1 0 out in 0 1m
R1 out 0 1k
.end)");
  // Our convention: G pushes gm*vc from node0 -> node1, so out gets +1 mA.
  sim::Mna mna(net, proc());
  const auto op = sim::dcOperatingPoint(mna);
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(nodeV(mna, op, "out"), 1.0, 1e-9);
}

TEST(Dc, DiodeForwardDrop) {
  auto net = ckt::parseDeck(R"(
V1 in 0 DC 5
R1 in a 1k
D1 a 0
.end)");
  sim::Mna mna(net, proc());
  const auto op = sim::dcOperatingPoint(mna);
  ASSERT_TRUE(op.converged);
  const double vd = nodeV(mna, op, "a");
  EXPECT_GT(vd, 0.4);
  EXPECT_LT(vd, 0.8);
}

TEST(Dc, NmosInverterTransfersHighToLow) {
  auto net = ckt::parseDeck(R"(
V1 vdd 0 DC 5
VG g 0 DC 5
R1 vdd out 10k
M1 out g 0 0 NMOS W=20u L=1u
.end)");
  sim::Mna mna(net, proc());
  const auto op = sim::dcOperatingPoint(mna);
  ASSERT_TRUE(op.converged);
  EXPECT_LT(nodeV(mna, op, "out"), 0.5);  // transistor pulls output low
}

TEST(Dc, MosCurrentMirrorCopies) {
  // Reference branch: I=50uA into diode-connected M1; M2 mirrors into R load.
  ckt::Netlist net;
  net.addVSource("VDD", "vdd", "0", 5.0);
  net.addISource("IREF", "vdd", "ref", 50e-6);
  net.addMos("M1", "ref", "ref", "0", "0", ckt::MosType::Nmos, 20e-6, 2e-6);
  net.addMos("M2", "out", "ref", "0", "0", ckt::MosType::Nmos, 20e-6, 2e-6);
  net.addResistor("RL", "vdd", "out", 10e3);
  sim::Mna mna(net, proc());
  const auto op = sim::dcOperatingPoint(mna);
  ASSERT_TRUE(op.converged);
  // Mirrored current ~ 50uA -> drop ~0.5V across RL (modulo lambda).
  const double iOut = (5.0 - nodeV(mna, op, "out")) / 10e3;
  EXPECT_NEAR(iOut, 50e-6, 8e-6);
}

TEST(Dc, DcTransferSweepMonotoneInverter) {
  auto net = ckt::parseDeck(R"(
V1 vdd 0 DC 5
VG g 0 DC 0
R1 vdd out 10k
M1 out g 0 0 NMOS W=20u L=1u
.end)");
  sim::Mna mna(net, proc());
  const auto transfer = sim::dcTransfer(mna, "VG", 0.0, 5.0, 26, "out");
  const auto& curve = transfer.curve;
  EXPECT_EQ(transfer.requested, 26u);
  EXPECT_EQ(transfer.skipped, 0u);
  EXPECT_EQ(transfer.status, amsyn::core::EvalStatus::Ok);
  ASSERT_GE(curve.size(), 20u);
  // Monotone non-increasing.
  for (std::size_t i = 1; i < curve.size(); ++i)
    EXPECT_LE(curve[i].second, curve[i - 1].second + 1e-6);
  EXPECT_GT(curve.front().second, 4.9);
  EXPECT_LT(curve.back().second, 0.5);
}

TEST(Ac, RcLowpassPole) {
  auto net = ckt::parseDeck(R"(
V1 in 0 DC 0 AC 1
R1 in out 1k
C1 out 0 1n
.end)");
  sim::Mna mna(net, proc());
  const auto op = sim::dcOperatingPoint(mna);
  ASSERT_TRUE(op.converged);
  const double fp = 1.0 / (2 * M_PI * 1e3 * 1e-9);  // ~159 kHz
  const auto sweep = sim::acAnalysis(mna, op, "out", {fp / 100, fp, fp * 100});
  EXPECT_NEAR(std::abs(sweep.points[0].value), 1.0, 1e-3);
  EXPECT_NEAR(std::abs(sweep.points[1].value), 1.0 / std::sqrt(2.0), 1e-3);
  EXPECT_NEAR(std::abs(sweep.points[2].value), 0.01, 1e-3);
  // Phase at the pole is -45 degrees.
  EXPECT_NEAR(std::arg(sweep.points[1].value) * 180 / M_PI, -45.0, 0.5);
}

TEST(Ac, RlcSeriesResonance) {
  auto net = ckt::parseDeck(R"(
V1 in 0 DC 0 AC 1
R1 in a 10
L1 a out 1u
C1 out 0 1n
.end)");
  sim::Mna mna(net, proc());
  const auto op = sim::dcOperatingPoint(mna);
  ASSERT_TRUE(op.converged);
  const double f0 = 1.0 / (2 * M_PI * std::sqrt(1e-6 * 1e-9));
  // At resonance the cap voltage is Q times the input.
  const double q = std::sqrt(1e-6 / 1e-9) / 10.0;
  const auto h = sim::acTransfer(mna, op, "out", f0);
  EXPECT_NEAR(std::abs(h), q, q * 0.02);
}

TEST(Ac, CommonSourceGainMatchesGmRo) {
  auto net = ckt::parseDeck(R"(
VDD vdd 0 DC 5
VG g 0 DC 1.2 AC 1
IB vdd out 100u
M1 out g 0 0 NMOS W=50u L=2u
.end)");
  // Bias the gate so M1 sinks ~the 100uA the ideal source supplies.
  sim::Mna mna(net, proc());
  // Find the gate voltage where ids ~ 100 uA using the model directly.
  // vov = sqrt(2 I / beta), beta = 120u * 25 = 3 mA/V^2 -> vov ~ 0.258
  auto* vg = net.findDevice("VG");
  ASSERT_NE(vg, nullptr);
  const double beta = proc().kpN * 50e-6 / 2e-6;
  const double vov = std::sqrt(2 * 100e-6 / beta);
  vg->value = proc().vt0N + vov;
  sim::Mna mna2(net, proc());
  const auto op = sim::dcOperatingPoint(mna2);
  ASSERT_TRUE(op.converged);
  // Small-signal gain = -gm / gds of M1 (ideal current-source load).
  const auto ops = mna2.mosOperatingPoints(op.x);
  ASSERT_EQ(ops.size(), 1u);
  const double expected = ops[0].second.gm / ops[0].second.gds;
  const auto h = sim::acTransfer(mna2, op, "out", 10.0);
  EXPECT_NEAR(std::abs(h), expected, expected * 0.05);
}

TEST(Ac, SweepFactorsOncePerUniqueFrequency) {
  auto net = ckt::parseDeck(R"(
V1 in 0 DC 0 AC 1
R1 in out 1k
C1 out 0 1n
.end)");
  sim::Mna mna(net, proc());
  const auto op = sim::dcOperatingPoint(mna);
  ASSERT_TRUE(op.converged);
  sim::resetSimStats();
  const auto sweep = sim::acAnalysis(mna, op, "out", {1e3, 1e3, 2e3, 2e3});
  ASSERT_EQ(sweep.points.size(), 4u);
  // (G + jwC) depends only on w: duplicated points reuse the cached LU.
  EXPECT_EQ(sim::simStats().luFactorizations, 2u);
  EXPECT_EQ(sim::simStats().luReuses, 2u);
  // Identical frequencies must produce identical phasors.
  EXPECT_EQ(sweep.points[0].value, sweep.points[1].value);
  EXPECT_EQ(sweep.points[2].value, sweep.points[3].value);
}

TEST(Noise, AdjointSolveReusesForwardFactorization) {
  auto net = ckt::parseDeck(R"(
V1 in 0 DC 0 AC 1
R1 in out 1k
R2 out 0 1k
.end)");
  sim::Mna mna(net, proc());
  const auto op = sim::dcOperatingPoint(mna);
  ASSERT_TRUE(op.converged);
  sim::resetSimStats();
  const auto nz = sim::noiseAnalysis(mna, op, "out", {1e2, 1e3, 1e4});
  ASSERT_EQ(nz.points.size(), 3u);
  // Per frequency: the forward solve factors, the adjoint (transposed) solve
  // reuses the same factorization.
  EXPECT_EQ(sim::simStats().luFactorizations, 3u);
  EXPECT_EQ(sim::simStats().luReuses, 3u);
}

TEST(Transient, RcChargesExponentially) {
  ckt::Netlist net;
  auto& v = net.addVSource("V1", "in", "0", 0.0);
  v.waveform.kind = ckt::Waveform::Kind::Pulse;
  v.waveform.v1 = 0.0;
  v.waveform.v2 = 1.0;
  v.waveform.delay = 0.0;
  v.waveform.rise = 1e-12;
  v.waveform.width = 1.0;  // effectively a step
  v.waveform.period = 2.0;
  net.addResistor("R1", "in", "out", 1e3);
  net.addCapacitor("C1", "out", "0", 1e-9);
  sim::Mna mna(net, proc());
  const auto op = sim::dcOperatingPoint(mna);
  ASSERT_TRUE(op.converged);
  sim::TransientOptions topts;
  topts.tStop = 5e-6;
  topts.tStep = 10e-9;
  const auto tr = sim::transientAnalysis(mna, op, topts);
  ASSERT_TRUE(tr.completed);
  const auto wave = tr.nodeWaveform(mna, "out");
  // After 1 tau (1 us): 63.2%; after 5 tau: ~99.3%.
  std::size_t i1 = 0, i5 = tr.time.size() - 1;
  for (std::size_t i = 0; i < tr.time.size(); ++i)
    if (tr.time[i] <= 1e-6) i1 = i;
  EXPECT_NEAR(wave[i1], 0.632, 0.01);
  EXPECT_NEAR(wave[i5], 0.993, 0.01);
}

TEST(Transient, LinearFixedStepSweepFactorsJacobianTwice) {
  // A linear circuit on a fixed timestep assembles the identical Jacobian at
  // every Newton iteration of every step: the companion conductances depend
  // only on (h, method).  Expect exactly two factorizations — backward Euler
  // on the first step, trapezoidal thereafter — and reuse everywhere else.
  ckt::Netlist net;
  auto& v = net.addVSource("V1", "in", "0", 0.0);
  v.waveform.kind = ckt::Waveform::Kind::Pulse;
  v.waveform.v1 = 0.0;
  v.waveform.v2 = 1.0;
  v.waveform.rise = 1e-12;
  v.waveform.width = 1.0;
  v.waveform.period = 2.0;
  net.addResistor("R1", "in", "out", 1e3);
  net.addCapacitor("C1", "out", "0", 1e-9);
  sim::Mna mna(net, proc());
  const auto op = sim::dcOperatingPoint(mna);
  ASSERT_TRUE(op.converged);
  sim::TransientOptions topts;
  topts.tStop = 5e-6;
  topts.tStep = 10e-9;
  sim::resetSimStats();
  const auto tr = sim::transientAnalysis(mna, op, topts);
  ASSERT_TRUE(tr.completed);
  ASSERT_GE(tr.time.size(), 500u);
  EXPECT_EQ(sim::simStats().luFactorizations, 2u);
  EXPECT_GE(sim::simStats().luReuses, 500u);
}

TEST(Transient, LcOscillationPreservesAmplitude) {
  // LC tank started from a charged cap; trapezoidal integration should not
  // bleed energy over a few cycles.
  ckt::Netlist net;
  net.addCapacitor("C1", "osc", "0", 1e-9);
  net.addInductor("L1", "osc", "0", 1e-6);
  net.addResistor("Rbig", "osc", "0", 1e9);  // dc path
  auto& src = net.addISource("I1", "0", "osc", 0.0);
  src.waveform.kind = ckt::Waveform::Kind::Pulse;
  src.waveform.v1 = 0.0;
  src.waveform.v2 = 1e-3;
  src.waveform.delay = 0;
  src.waveform.rise = 1e-12;
  src.waveform.width = 50e-9;  // current kick, then free oscillation
  src.waveform.fall = 1e-12;
  src.waveform.period = 1.0;
  sim::Mna mna(net, proc());
  const auto op = sim::dcOperatingPoint(mna);
  ASSERT_TRUE(op.converged);
  sim::TransientOptions topts;
  topts.tStop = 1e-6;
  topts.tStep = 1e-9;
  const auto tr = sim::transientAnalysis(mna, op, topts);
  ASSERT_TRUE(tr.completed);
  const auto wave = tr.nodeWaveform(mna, "osc");
  // Peak in the first half vs the second half should be within 10%.
  double peakA = 0, peakB = 0;
  for (std::size_t i = 0; i < wave.size(); ++i) {
    if (tr.time[i] < 0.5e-6) peakA = std::max(peakA, std::abs(wave[i]));
    else peakB = std::max(peakB, std::abs(wave[i]));
  }
  EXPECT_GT(peakA, 0.0);
  EXPECT_NEAR(peakB / peakA, 1.0, 0.1);
}

TEST(Noise, ResistorDividerMatchesTheory) {
  // Output noise of two parallel resistors to ground: 4kT * (R1 || R2).
  auto net = ckt::parseDeck(R"(
V1 in 0 DC 0 AC 1
R1 in out 1k
R2 out 0 1k
.end)");
  sim::Mna mna(net, proc());
  const auto op = sim::dcOperatingPoint(mna);
  ASSERT_TRUE(op.converged);
  const auto nz = sim::noiseAnalysis(mna, op, "out", {1e3});
  const double rPar = 500.0;
  const double expected = 4.0 * proc().kT() * rPar;
  EXPECT_NEAR(nz.points[0].outputPsd, expected, expected * 1e-6);
  // Input-referred: divide by gain^2 = 0.25.
  EXPECT_NEAR(nz.points[0].inputReferredPsd, expected / 0.25, expected * 4e-6);
}

TEST(Measure, LogspaceCoversRange) {
  const auto fs = sim::logspace(1.0, 1e6, 10);
  EXPECT_DOUBLE_EQ(fs.front(), 1.0);
  EXPECT_NEAR(fs.back(), 1e6, 1.0);
  for (std::size_t i = 1; i < fs.size(); ++i) EXPECT_GT(fs[i], fs[i - 1]);
}

TEST(Measure, SinglePoleMeasurements) {
  auto net = ckt::parseDeck(R"(
V1 in 0 DC 0 AC 1
G1 0 out in 0 1m
R1 out 0 100k
C1 out 0 15.9p
.end)");
  // H(0) = gm*R = 100 (40 dB); pole at ~100 kHz; UGF ~ 10 MHz.
  sim::Mna mna(net, proc());
  const auto op = sim::dcOperatingPoint(mna);
  ASSERT_TRUE(op.converged);
  const auto sweep = sim::acAnalysis(mna, op, "out", sim::logspace(10.0, 1e9, 20));
  EXPECT_NEAR(sim::dcGainDb(sweep), 40.0, 0.1);
  const auto bw = sim::bandwidth3dB(sweep);
  ASSERT_TRUE(bw.has_value());
  EXPECT_NEAR(*bw, 1e5, 1e4);
  const auto ugf = sim::unityGainFrequency(sweep);
  ASSERT_TRUE(ugf.has_value());
  EXPECT_NEAR(*ugf, 1e7, 1e6);
  const auto pm = sim::phaseMarginDeg(sweep);
  ASSERT_TRUE(pm.has_value());
  EXPECT_NEAR(*pm, 90.0, 2.0);  // single pole: ~90 degrees
}

TEST(Measure, StaticPowerOfDivider) {
  auto net = ckt::parseDeck(R"(
V1 in 0 DC 10
R1 in 0 1k
.end)");
  sim::Mna mna(net, proc());
  const auto op = sim::dcOperatingPoint(mna);
  ASSERT_TRUE(op.converged);
  EXPECT_NEAR(sim::staticPower(mna, op), 0.1, 1e-9);  // V^2/R = 100 mW
}

TEST(Measure, SlewAndSettling) {
  const std::vector<double> t = {0, 1, 2, 3, 4, 5};
  const std::vector<double> w = {0, 0.5, 2.0, 2.4, 2.5, 2.5};
  EXPECT_DOUBLE_EQ(sim::maxSlewRate(t, w), 1.5);
  const auto st = sim::settlingTime(t, w, 2.5, 0.15);
  ASSERT_TRUE(st.has_value());
  EXPECT_DOUBLE_EQ(*st, 3.0);
}

TEST(Measure, PeakTime) {
  const std::vector<double> t = {0, 1, 2, 3};
  const std::vector<double> w = {0, 3.0, -5.0, 1.0};
  EXPECT_DOUBLE_EQ(sim::peakTime(t, w), 2.0);
}

TEST(Measure, OutputSwingOfInverterCurve) {
  auto net = ckt::parseDeck(R"(
V1 vdd 0 DC 5
VG g 0 DC 0
R1 vdd out 10k
M1 out g 0 0 NMOS W=20u L=1u
.end)");
  sim::Mna mna(net, proc());
  const auto transfer = sim::dcTransfer(mna, "VG", 0.0, 5.0, 51, "out");
  const auto swing = sim::outputSwing(transfer);
  EXPECT_TRUE(swing.valid);
  EXPECT_EQ(swing.unconvergedPoints, 0u);
  EXPECT_LT(swing.low, 1.0);
  EXPECT_GT(swing.high, 3.0);
}
