#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "sim/ac.hpp"
#include "sizing/builders.hpp"
#include "sim/dc.hpp"
#include "sim/measure.hpp"
#include "sizing/cost.hpp"
#include "sizing/eqmodel.hpp"
#include "sizing/opamp.hpp"
#include "sizing/relaxed.hpp"
#include "sizing/simmodel.hpp"
#include "sizing/synth.hpp"

namespace sz = amsyn::sizing;
namespace ckt = amsyn::circuit;
namespace sim = amsyn::sim;

namespace {
const ckt::Process& proc() { return ckt::defaultProcess(); }
}

TEST(Spec, ViolationSemantics) {
  sz::Spec ge{"gain_db", sz::SpecKind::GreaterEqual, 60.0, 1.0, 0.0};
  EXPECT_DOUBLE_EQ(ge.violation(70.0), 0.0);
  EXPECT_NEAR(ge.violation(54.0), 0.1, 1e-12);  // (60-54)/60
  sz::Spec le{"power", sz::SpecKind::LessEqual, 1e-3, 1.0, 0.0};
  EXPECT_DOUBLE_EQ(le.violation(0.5e-3), 0.0);
  EXPECT_NEAR(le.violation(2e-3), 1.0, 1e-12);
}

TEST(Spec, SetSatisfaction) {
  sz::SpecSet s;
  s.atLeast("gain_db", 60).atMost("power", 1e-3).minimize("area");
  EXPECT_TRUE(s.satisfied({{"gain_db", 65.0}, {"power", 0.5e-3}}));
  EXPECT_FALSE(s.satisfied({{"gain_db", 55.0}, {"power", 0.5e-3}}));
  EXPECT_FALSE(s.satisfied({{"power", 0.5e-3}}));  // missing perf = violation
  EXPECT_GT(s.totalViolation({{"gain_db", 30.0}, {"power", 2e-3}}), 1.0);
}

TEST(EquationModel, ProducesSanePerformances) {
  sz::TwoStageEquationModel model(proc(), 5e-12);
  const auto x = model.initialPoint();
  const auto perf = model.evaluate(x);
  EXPECT_GT(perf.at("gain_db"), 40.0);
  EXPECT_GT(perf.at("ugf"), 1e5);
  EXPECT_GT(perf.at("pm"), 0.0);
  EXPECT_LT(perf.at("pm"), 120.0);
  EXPECT_GT(perf.at("power"), 0.0);
  EXPECT_GT(perf.at("swing"), 1.0);
  EXPECT_GT(perf.at("noise_nv"), 0.0);
}

TEST(EquationModel, UgfIsBoundedByGainBandwidthProduct) {
  // The reported UGF is the true unity-gain crossing of the multi-pole
  // response: at or below the naive gm1/(2 pi Cc) GBW product, and within
  // a factor of ~2 of it for a reasonably compensated design.
  sz::TwoStageEquationModel model(proc(), 5e-12);
  auto x = model.initialPoint();
  const double i5 = x[0], vov1 = x[2], cc = x[6];
  const double gbw = (i5 / vov1) / (2 * M_PI * cc);
  const auto perf = model.evaluate(x);
  EXPECT_LE(perf.at("ugf"), gbw * 1.001);
  EXPECT_GT(perf.at("ugf"), gbw * 0.3);
}

TEST(EquationModel, MatchesSimulationWithinModelingError) {
  // The whole point of the shared parameter block: an equation-model design
  // must verify in the simulator with only first-order discrepancies
  // (factor ~2 in gain, ~30% in UGF).
  sz::TwoStageEquationModel model(proc(), 5e-12);
  std::vector<double> x = {100e-6, 300e-6, 0.2, 0.3, 0.3, 0.3, 3e-12};
  const auto eqPerf = model.evaluate(x);
  const auto params = model.toParams(x);

  auto net = sz::buildTwoStageOpamp(params, proc(), {});
  sim::Mna mna(net, proc());
  const auto op = sim::dcOperatingPoint(mna, sim::flatStart(mna, proc().vdd / 2));
  ASSERT_TRUE(op.converged);
  const auto sweep = sim::acAnalysis(mna, op, "out", sim::logspace(1.0, 1e9, 6));
  const double simGain = sim::dcGainDb(sweep);
  const auto simUgf = sim::unityGainFrequency(sweep);
  ASSERT_TRUE(simUgf.has_value());

  EXPECT_NEAR(simGain, eqPerf.at("gain_db"), 12.0);  // within ~1 decade of gain
  EXPECT_NEAR(std::log10(*simUgf), std::log10(eqPerf.at("ugf")), 0.35);
}

TEST(CostFunction, PenalizesViolationsQuadratically) {
  sz::TwoStageEquationModel model(proc(), 5e-12);
  sz::SpecSet impossible;
  impossible.atLeast("gain_db", 1e9);  // unreachable
  sz::SpecSet easy;
  easy.atLeast("gain_db", 10.0);
  const sz::CostFunction cHard(model, impossible);
  const sz::CostFunction cEasy(model, easy);
  const auto x = model.initialPoint();
  EXPECT_GT(cHard(x), cEasy(x));
  EXPECT_TRUE(cEasy.detailed(x).feasible);
  EXPECT_FALSE(cHard.detailed(x).feasible);
}

TEST(CostFunction, ObjectiveOrdersDesigns) {
  sz::TwoStageEquationModel model(proc(), 5e-12);
  sz::SpecSet s;
  s.minimize("power", 1.0, 1e-3);
  const sz::CostFunction cost(model, s);
  auto xLow = model.initialPoint();
  auto xHigh = xLow;
  xHigh[0] *= 8;  // more tail current -> more power
  xHigh[1] *= 8;
  EXPECT_LT(cost(xLow), cost(xHigh));
}

TEST(Synthesis, EquationModelMeetsModerateSpecs) {
  sz::TwoStageEquationModel model(proc(), 5e-12);
  sz::SpecSet specs;
  specs.atLeast("gain_db", 65.0)
      .atLeast("ugf", 5e6)
      .atLeast("pm", 55.0)
      .atLeast("slew", 5e6)
      .atMost("power", 5e-3)
      .minimize("power", 0.5, 1e-3);
  sz::SynthesisOptions opts;
  opts.seed = 3;
  const auto res = sz::synthesize(model, specs, opts);
  EXPECT_TRUE(res.feasible) << "gain=" << res.performance.at("gain_db")
                            << " ugf=" << res.performance.at("ugf")
                            << " pm=" << res.performance.at("pm");
  EXPECT_GE(res.performance.at("gain_db"), 65.0 - 1e-6);
  EXPECT_GT(res.evaluations, 100u);
}

TEST(Synthesis, MinimizePowerActuallyReducesIt) {
  sz::TwoStageEquationModel model(proc(), 5e-12);
  sz::SpecSet specs;
  specs.atLeast("gain_db", 60.0).atLeast("pm", 45.0).minimize("power", 2.0, 1e-3);
  sz::SynthesisOptions opts;
  opts.seed = 5;
  const auto res = sz::synthesize(model, specs, opts);
  ASSERT_TRUE(res.feasible);
  // Unconstrained initial point burns ~1 mW; optimizer should go well below.
  const auto initPerf = model.evaluate(model.initialPoint());
  EXPECT_LT(res.performance.at("power"), initPerf.at("power"));
}

TEST(SimulationModel, EvaluatesDefaultOpamp) {
  auto tmpl = sz::twoStageTemplate(proc(), {});
  sz::SimulationModel model(std::move(tmpl), proc());
  std::vector<double> x = {60e-6, 20e-6, 20e-6, 150e-6, 60e-6, 3e-12, 20e-6};
  const auto perf = model.evaluate(x);
  ASSERT_FALSE(perf.count("_infeasible"))
      << "sim model infeasible at a known-good design";
  EXPECT_GT(perf.at("gain_db"), 40.0);
  EXPECT_GT(perf.at("ugf"), 1e6);
  EXPECT_GT(perf.at("pm"), 0.0);
  EXPECT_GT(perf.at("power"), 0.0);
  EXPECT_GT(perf.at("slew"), 1e5);
  EXPECT_EQ(model.evaluations(), 1u);
}

TEST(SimulationModel, InfeasibleOnAbsurdSizes) {
  auto tmpl = sz::twoStageTemplate(proc(), {});
  sz::SimulationModel model(std::move(tmpl), proc());
  // Tiny devices and huge cc: no unity-gain crossing above 1 Hz expected,
  // or the bias fails — either way it must be flagged, not crash.
  std::vector<double> x = {1.6e-6, 1.6e-6, 1.6e-6, 1.6e-6, 1.6e-6, 2e-11, 2e-6};
  const auto perf = model.evaluate(x);
  SUCCEED();  // no throw is the contract; _infeasible may or may not be set
  (void)perf;
}

TEST(RelaxedDc, InitialPointHasTinyResidual) {
  auto tmpl = sz::twoStageTemplate(proc(), {});
  sz::RelaxedDcModel model(std::move(tmpl), proc());
  const auto x0 = model.initialPoint();
  const auto perf = model.evaluate(x0);
  ASSERT_TRUE(perf.count("_dc_residual"));
  EXPECT_LT(perf.at("_dc_residual"), 1e-2);  // warm start is a solved bias
  EXPECT_GT(perf.at("gain_db"), 20.0);       // AWE sees a real amplifier
}

TEST(RelaxedDc, ResidualGrowsWhenBiasPerturbed) {
  auto tmpl = sz::twoStageTemplate(proc(), {});
  sz::RelaxedDcModel model(std::move(tmpl), proc());
  auto x = model.initialPoint();
  auto xBad = x;
  for (std::size_t i = model.templateDimension(); i < xBad.size(); ++i) xBad[i] += 0.4;
  EXPECT_GT(model.evaluate(xBad).at("_dc_residual"),
            10.0 * model.evaluate(x).at("_dc_residual"));
}

TEST(OpampTemplates, OtaBuildsAndBiases) {
  sz::OtaParams p;
  auto net = sz::buildOta(p, proc(), {});
  sim::Mna mna(net, proc());
  const auto op = sim::dcOperatingPoint(mna, sim::flatStart(mna, proc().vdd / 2));
  ASSERT_TRUE(op.converged);
  const auto sweep = sim::acAnalysis(mna, op, "out", sim::logspace(1.0, 1e9, 6));
  EXPECT_GT(sim::dcGainDb(sweep), 30.0);  // a healthy OTA has > 30 dB
}

TEST(OpampTemplates, AreaScalesWithWidths) {
  sz::TwoStageParams small, big = small;
  big.w1 *= 4;
  big.w6 *= 4;
  EXPECT_GT(big.activeArea(proc()), small.activeArea(proc()));
}

TEST(NetlistBuilders, RegistryCoversTheBuiltInTopologiesAndMatchesDirectBuilds) {
  auto& reg = sz::NetlistBuilderRegistry::instance();
  const auto names = reg.topologies();
  EXPECT_NE(std::find(names.begin(), names.end(), "two-stage-miller"), names.end());
  EXPECT_NE(std::find(names.begin(), names.end(), "five-transistor-ota"), names.end());
  EXPECT_EQ(reg.find("no-such-topology"), nullptr);

  // The registered builder is the same construction as the direct path.
  const sz::OpampTestbench tb{5e-12, 2.2, true};
  const sz::OtaEquationModel model(proc(), tb.loadCap);
  std::vector<double> x;
  for (const auto& v : model.variables()) x.push_back(std::sqrt(v.lo * v.hi));
  const auto* builder = reg.find("five-transistor-ota");
  ASSERT_NE(builder, nullptr);
  const auto viaRegistry = (*builder)(x, proc(), tb);
  const auto direct = sz::buildOta(model.toParams(x), proc(), tb);
  EXPECT_EQ(viaRegistry.devices().size(), direct.devices().size());
  EXPECT_EQ(viaRegistry.totalGateArea(), direct.totalGateArea());
}
