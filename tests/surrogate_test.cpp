// Tests for learned surrogate screening (core/surrogate.hpp) — the safety
// harness the ISSUE demands before the surrogate is allowed anywhere near
// the evaluation hot path:
//
//  * Property tests on the incremental ridge model: the Sherman–Morrison
//    recursion must match a batch normal-equation solve to 1e-10, be
//    invariant to observation order, shrink to zero under heavy
//    regularization, and be bit-for-bit deterministic (including under
//    concurrent prediction through the Store).
//  * Differential tests: with the surrogate in Ordering mode the full flow
//    and the robust corner search are *bit-identical* to the surrogate-off
//    run at 1 and 8 threads, cache on and off.  Ordering is pure
//    scheduling; identity is the contract, and these tests are the
//    enforcement.
//  * Pruning audits: every pruned evaluation is logged with enough context
//    to re-run it offline.  Hunt-vertex prunes must never beat the found
//    worst corner (false-prune budget: zero); candidate-level prunes must
//    be truly infeasible when re-evaluated.
//
// The store is a process-wide singleton (like the eval cache), so every
// test scopes mode changes with SurrogateGuard and reads statistics as
// deltas, never absolutes.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <limits>
#include <map>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "circuit/process.hpp"
#include "core/evalcache.hpp"
#include "core/flow.hpp"
#include "core/parallel.hpp"
#include "core/runreport.hpp"
#include "core/surrogate.hpp"
#include "manufacture/corners.hpp"
#include "numeric/matrix.hpp"
#include "numeric/rng.hpp"
#include "sizing/cost.hpp"
#include "sizing/eqmodel.hpp"
#include "sizing/perfmodel.hpp"

namespace core = amsyn::core;
namespace cache = amsyn::core::cache;
namespace surr = amsyn::core::surrogate;
namespace num = amsyn::num;
namespace sz = amsyn::sizing;
namespace mf = amsyn::manufacture;
namespace ckt = amsyn::circuit;

namespace {

const ckt::Process& nominal() { return ckt::defaultProcess(); }

/// RAII scope for the singleton store: clears learned state and the prune
/// log, pins the requested mode, and restores the previous mode on exit so
/// tests cannot leak screening into each other.
struct SurrogateGuard {
  explicit SurrogateGuard(surr::Mode mode = surr::Mode::Off)
      : store(surr::Store::instance()), saved(store.mode()) {
    store.clear();
    store.setMode(mode);
  }
  ~SurrogateGuard() {
    store.clear();
    store.setMode(saved);
  }
  surr::Store& store;
  surr::Mode saved;
};

/// RAII scope for the eval cache (same pattern as tests/evalcache_test.cpp).
struct CacheGuard {
  CacheGuard()
      : c(cache::EvalCache::instance()), enabled(c.enabled()), quantum(c.quantum()) {
    c.setEnabled(true);
    c.setQuantum(0.0);
    c.clear();
  }
  ~CacheGuard() {
    c.setEnabled(enabled);
    c.setQuantum(quantum);
    c.clear();
  }
  cache::EvalCache& c;
  bool enabled;
  double quantum;
};

std::uint64_t rawBits(double v) {
  std::uint64_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

::testing::AssertionResult vecBitIdentical(const std::vector<double>& a,
                                           const std::vector<double>& b) {
  if (a.size() != b.size())
    return ::testing::AssertionFailure()
           << "sizes differ: " << a.size() << " vs " << b.size();
  for (std::size_t i = 0; i < a.size(); ++i)
    if (rawBits(a[i]) != rawBits(b[i]))
      return ::testing::AssertionFailure()
             << "element " << i << " differs in bits: " << a[i] << " vs " << b[i];
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult perfBitIdentical(const sz::Performance& a,
                                            const sz::Performance& b) {
  if (a.size() != b.size())
    return ::testing::AssertionFailure()
           << "sizes differ: " << a.size() << " vs " << b.size();
  auto ia = a.begin();
  auto ib = b.begin();
  for (; ia != a.end(); ++ia, ++ib) {
    if (ia->first != ib->first)
      return ::testing::AssertionFailure()
             << "keys differ: " << ia->first << " vs " << ib->first;
    if (rawBits(ia->second) != rawBits(ib->second))
      return ::testing::AssertionFailure()
             << ia->first << " differs in bits: " << ia->second << " vs " << ib->second;
  }
  return ::testing::AssertionSuccess();
}

// ---------------------------------------------------------------------------
// Property tests: the Sherman–Morrison recursion against ground truth

/// Deterministic synthetic regression data: features in [bias, U(0,1)...],
/// targets from a fixed linear law plus bounded noise.
struct SyntheticData {
  std::vector<std::vector<double>> phi;
  std::vector<std::map<std::string, double>> heads;
};

SyntheticData makeData(std::size_t d, std::size_t n, std::uint64_t seed) {
  num::Rng rng(seed);
  SyntheticData data;
  std::vector<double> truthA(d), truthB(d);
  for (std::size_t j = 0; j < d; ++j) {
    truthA[j] = rng.uniform(-2.0, 2.0);
    truthB[j] = rng.uniform(-2.0, 2.0);
  }
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> row(d);
    row[0] = 1.0;  // bias, matching the real feature map
    for (std::size_t j = 1; j < d; ++j) row[j] = rng.uniform();
    double ya = 0.0, yb = 0.0;
    for (std::size_t j = 0; j < d; ++j) {
      ya += truthA[j] * row[j];
      yb += truthB[j] * row[j];
    }
    data.heads.push_back({{"a", ya + 0.01 * rng.normal()},
                          {"b", yb + 0.01 * rng.normal()}});
    data.phi.push_back(std::move(row));
  }
  return data;
}

/// Ground truth: solve (lambda I + X'X) w = X'y with the dense LU kernel.
std::vector<double> batchRidge(const SyntheticData& data, const std::string& head,
                               double lambda) {
  const std::size_t d = data.phi.front().size();
  num::MatrixD a(d, d);
  std::vector<double> b(d, 0.0);
  for (std::size_t j = 0; j < d; ++j) a(j, j) = lambda;
  for (std::size_t i = 0; i < data.phi.size(); ++i) {
    const auto& row = data.phi[i];
    const double y = data.heads[i].at(head);
    for (std::size_t j = 0; j < d; ++j) {
      b[j] += row[j] * y;
      for (std::size_t k = 0; k < d; ++k) a(j, k) += row[j] * row[k];
    }
  }
  return num::solveDense(std::move(a), b);
}

void expectWeightsMatch(const std::vector<double>& got,
                        const std::vector<double>& want, double tol,
                        const std::string& label) {
  SCOPED_TRACE(label);
  ASSERT_EQ(got.size(), want.size());
  for (std::size_t j = 0; j < got.size(); ++j)
    EXPECT_NEAR(got[j], want[j], tol * (1.0 + std::abs(want[j])))
        << "coefficient " << j;
}

TEST(SurrogateRidge, ShermanMorrisonMatchesBatchNormalEquations) {
  // The incremental update must be the exact ridge solve, not an
  // approximation: across dimensions and sample counts the recursion's
  // weights agree with a from-scratch LU solve of the normal equations.
  const std::pair<std::size_t, std::size_t> shapes[] = {
      {2, 8}, {5, 5}, {8, 128}, {16, 512}};
  for (const auto& [d, n] : shapes) {
    const auto data = makeData(d, n, 1000 + d);
    surr::RidgeModel model(d);
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_TRUE(model.observe(data.phi[i], data.heads[i]));
    EXPECT_EQ(model.observations(), n);
    for (const std::string head : {"a", "b"}) {
      const auto batch = batchRidge(data, head, surr::RidgeModel::kDefaultLambda);
      expectWeightsMatch(model.weights(head), batch, 1e-10,
                         "d=" + std::to_string(d) + " n=" + std::to_string(n) +
                             " head=" + head);
    }
  }
}

TEST(SurrogateRidge, FitIsInvariantToObservationOrder) {
  // The fitted ridge solution depends on the data *set*, not the feed
  // order.  Both orders are checked against the same batch solve, which
  // also bounds them against each other.
  const std::size_t d = 6, n = 96;
  const auto data = makeData(d, n, 42);
  surr::RidgeModel forward(d), reversed(d);
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_TRUE(forward.observe(data.phi[i], data.heads[i]));
  for (std::size_t i = n; i-- > 0;)
    ASSERT_TRUE(reversed.observe(data.phi[i], data.heads[i]));
  for (const std::string head : {"a", "b"}) {
    const auto batch = batchRidge(data, head, surr::RidgeModel::kDefaultLambda);
    expectWeightsMatch(forward.weights(head), batch, 1e-10, "forward " + head);
    expectWeightsMatch(reversed.weights(head), batch, 1e-10, "reversed " + head);
  }
}

TEST(SurrogateRidge, PredictionIsInvariantUnderFeaturePermutation) {
  // Relabeling the feature coordinates (and relabeling probes the same
  // way) must not change what the model predicts: the ridge solve has no
  // preferred coordinate order.  Weights permute along with the features.
  const std::size_t d = 6, n = 72;
  const auto data = makeData(d, n, 17);
  const std::vector<std::size_t> perm = {3, 0, 5, 1, 4, 2};
  surr::RidgeModel plain(d), permuted(d);
  for (std::size_t i = 0; i < n; ++i) {
    std::vector<double> row(d);
    for (std::size_t j = 0; j < d; ++j) row[j] = data.phi[i][perm[j]];
    ASSERT_TRUE(plain.observe(data.phi[i], data.heads[i]));
    ASSERT_TRUE(permuted.observe(row, data.heads[i]));
  }
  for (const std::string head : {"a", "b"}) {
    const auto w = plain.weights(head);
    const auto wp = permuted.weights(head);
    ASSERT_EQ(w.size(), wp.size());
    for (std::size_t j = 0; j < d; ++j)
      EXPECT_NEAR(wp[j], w[perm[j]], 1e-10 * (1.0 + std::abs(w[perm[j]])));
    for (std::size_t i = 0; i < n; i += 11) {
      std::vector<double> probe(d);
      for (std::size_t j = 0; j < d; ++j) probe[j] = data.phi[i][perm[j]];
      const auto p = plain.predict(data.phi[i], head);
      const auto pp = permuted.predict(probe, head);
      ASSERT_TRUE(p.has_value());
      ASSERT_TRUE(pp.has_value());
      EXPECT_NEAR(pp->mean, p->mean, 1e-9 * (1.0 + std::abs(p->mean)));
      EXPECT_NEAR(pp->sigma, p->sigma, 1e-9 * (1.0 + p->sigma));
      EXPECT_EQ(pp->calibrated, p->calibrated);
    }
  }
}

TEST(SurrogateRidge, HeavyRegularizationDrivesWeightsToZero) {
  const std::size_t d = 5, n = 64;
  const auto data = makeData(d, n, 7);
  surr::RidgeModel model(d, /*lambda=*/1e12);
  for (std::size_t i = 0; i < n; ++i)
    ASSERT_TRUE(model.observe(data.phi[i], data.heads[i]));
  for (const std::string head : {"a", "b"})
    for (double w : model.weights(head)) EXPECT_LT(std::abs(w), 1e-6);
  // And the prediction mean follows the weights to zero.
  const auto pred = model.predict(data.phi.front(), "a");
  ASSERT_TRUE(pred.has_value());
  EXPECT_LT(std::abs(pred->mean), 1e-5);
}

TEST(SurrogateRidge, SameSequenceIsBitDeterministic) {
  const std::size_t d = 7, n = 80;
  const auto data = makeData(d, n, 99);
  surr::RidgeModel m1(d), m2(d);
  for (std::size_t i = 0; i < n; ++i) {
    ASSERT_TRUE(m1.observe(data.phi[i], data.heads[i]));
    ASSERT_TRUE(m2.observe(data.phi[i], data.heads[i]));
  }
  for (const std::string head : {"a", "b"}) {
    EXPECT_TRUE(vecBitIdentical(m1.weights(head), m2.weights(head)));
    for (std::size_t i = 0; i < n; i += 7) {
      const auto p1 = m1.predict(data.phi[i], head);
      const auto p2 = m2.predict(data.phi[i], head);
      ASSERT_TRUE(p1.has_value());
      ASSERT_TRUE(p2.has_value());
      EXPECT_EQ(rawBits(p1->mean), rawBits(p2->mean));
      EXPECT_EQ(rawBits(p1->sigma), rawBits(p2->sigma));
      EXPECT_EQ(p1->calibrated, p2->calibrated);
    }
  }
}

TEST(SurrogateRidge, MaturityAndCalibrationGates) {
  const std::size_t d = 4;
  const auto data = makeData(d, d + surr::RidgeModel::kMinCalibration + 8, 5);
  surr::RidgeModel model(d);
  for (std::size_t i = 0; i < data.phi.size(); ++i) {
    if (model.observations() < d) {
      // Underdetermined: no predictions at all.
      EXPECT_FALSE(model.predict(data.phi[0], "a").has_value());
    } else if (model.observations() < d + surr::RidgeModel::kMinCalibration) {
      // Determined but not yet calibrated: predictions exist, sigma is
      // not yet trustworthy.
      const auto p = model.predict(data.phi[0], "a");
      ASSERT_TRUE(p.has_value());
      EXPECT_FALSE(p->calibrated);
    }
    ASSERT_TRUE(model.observe(data.phi[i], data.heads[i]));
  }
  const auto p = model.predict(data.phi[0], "a");
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(p->calibrated);
  EXPECT_GT(p->sigma, 0.0);
  // Unknown head: nullopt, never a guess.
  EXPECT_FALSE(model.predict(data.phi[0], "zeta").has_value());
}

TEST(SurrogateRidge, HeadSetDriftIsDeclined) {
  surr::RidgeModel model(2);
  ASSERT_TRUE(model.observe({1.0, 0.5}, {{"a", 1.0}, {"b", 2.0}}));
  // Missing head, extra head, renamed head: all declined, count unchanged.
  EXPECT_FALSE(model.observe({1.0, 0.5}, {{"a", 1.0}}));
  EXPECT_FALSE(model.observe({1.0, 0.5}, {{"a", 1.0}, {"b", 2.0}, {"c", 3.0}}));
  EXPECT_FALSE(model.observe({1.0, 0.5}, {{"a", 1.0}, {"c", 2.0}}));
  EXPECT_FALSE(model.observe({1.0}, {{"a", 1.0}, {"b", 2.0}}));          // dim drift
  EXPECT_FALSE(model.observe({1.0, std::nan("")}, {{"a", 1.0}, {"b", 2.0}}));
  EXPECT_EQ(model.observations(), 1u);
}

TEST(SurrogateOrdering, OrderByScoreIsStableAndScoredFirst) {
  const std::vector<std::optional<double>> scores = {
      std::nullopt, 3.0, 1.0, std::nullopt, 1.0};
  const auto order = surr::orderByScore(scores);
  // Scored ascending (ties in original order), then unscored in original
  // order — a pure, deterministic scheduling permutation.
  const std::vector<std::size_t> want = {2, 4, 1, 0, 3};
  EXPECT_EQ(order, want);
  const auto empty = surr::orderByScore({});
  EXPECT_TRUE(empty.empty());
}

// ---------------------------------------------------------------------------
// Store-level determinism

TEST(SurrogateStore, ConcurrentPredictionsAreBitIdenticalToSerial) {
  SurrogateGuard guard(surr::Mode::Ordering);
  cache::Hasher128 h;
  h.mixString("surrogate-test-store-class");
  const cache::Digest128 key = h.digest();

  const std::size_t d = 4, n = 48;
  const auto data = makeData(d, n, 11);
  for (std::size_t i = 0; i < n; ++i)
    guard.store.observe({key, data.phi[i]}, data.heads[i]);

  const auto serial = guard.store.predict({key, data.phi[3]}, "a");
  ASSERT_TRUE(serial.has_value());

  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t)
    threads.emplace_back([&] {
      for (int i = 0; i < 200; ++i) {
        const auto p = surr::Store::instance().predict({key, data.phi[3]}, "a");
        if (!p || rawBits(p->mean) != rawBits(serial->mean) ||
            rawBits(p->sigma) != rawBits(serial->sigma) ||
            p->calibrated != serial->calibrated)
          mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

TEST(SurrogateStore, ClearDropsLearnedStateAndPruneLog) {
  SurrogateGuard guard(surr::Mode::Ordering);
  cache::Hasher128 h;
  h.mixString("surrogate-test-clear-class");
  const cache::Digest128 key = h.digest();
  const auto data = makeData(3, 8, 2);
  for (std::size_t i = 0; i < 8; ++i)
    guard.store.observe({key, data.phi[i]}, data.heads[i]);
  guard.store.recordPrune({key, {0.5}, "a", -1.0, 0.1, {}});
  EXPECT_FALSE(guard.store.pruneLog().empty());
  guard.store.clear();
  EXPECT_TRUE(guard.store.pruneLog().empty());
  EXPECT_FALSE(guard.store.predict({key, data.phi[0]}, "a").has_value());
}

// ---------------------------------------------------------------------------
// RunReport::addRatio — no traffic must not read as a 0% rate

TEST(RunReportRatio, ZeroDenominatorEmitsNullNotZero) {
  core::RunReport r;
  r.name = "ratio_test";
  r.includeMetrics = false;
  r.includeSpans = false;
  r.addRatio("no_traffic", 0.0, 0.0).addRatio("real_rate", 1.0, 4.0);
  const std::string json = r.toJson();
  EXPECT_NE(json.find("\"no_traffic\": null"), std::string::npos) << json;
  EXPECT_NE(json.find("\"real_rate\": 0.25"), std::string::npos) << json;
}

// ---------------------------------------------------------------------------
// Differential suite: Ordering mode is bit-identical to Off

sz::SynthesisOptions fastSynthesisOptions() {
  sz::SynthesisOptions opts;
  opts.seed = 11;
  opts.multistarts = 2;
  opts.anneal.stagnationStages = 2;
  opts.anneal.coolingRate = 0.7;
  opts.refineEvaluations = 40;
  return opts;
}

core::FlowResult runFlow(core::SurrogateOption mode, bool cacheOn,
                         std::size_t threads) {
  auto& c = cache::EvalCache::instance();
  c.clear();
  c.setEnabled(cacheOn);
  surr::Store::instance().clear();  // each arm trains from scratch
  core::ScopedThreadPool scoped(threads);
  sz::SpecSet specs;
  specs.atLeast("gain_db", 36.0)
      .atLeast("ugf", 1e7)
      .atLeast("pm", 60.0)
      .atMost("power", 4e-3)
      .minimize("power", 0.3, 1e-3);
  core::FlowOptions opts;
  opts.loadCap = 2e-12;
  opts.seed = 3;
  opts.synthesis = fastSynthesisOptions();
  opts.layout.annealPlacement = false;
  opts.surrogate = mode;  // exercises the flow-level knob, not just setMode
  return core::synthesizeAmplifier(specs, nominal(), opts);
}

/// Run-report prefix that is a pure function of the FlowResult (name + info
/// + values), with wall-clock `.seconds` values masked — counters/spans
/// legitimately differ when the surrogate trains (core.surrogate.* move).
std::string reportResultPrefix(const core::FlowResult& r) {
  std::string json = core::flowRunReportJson(r);
  const auto pos = json.find("\"counters\"");
  if (pos != std::string::npos) json = json.substr(0, pos);
  std::string masked;
  std::size_t at = 0;
  while (true) {
    const auto hit = json.find(".seconds\": ", at);
    if (hit == std::string::npos) break;
    const auto valueStart = hit + std::strlen(".seconds\": ");
    auto valueEnd = valueStart;
    while (valueEnd < json.size() && json[valueEnd] != ',' && json[valueEnd] != '\n')
      ++valueEnd;
    masked += json.substr(at, valueStart - at);
    masked += '#';
    at = valueEnd;
  }
  masked += json.substr(at);
  return masked;
}

void expectFlowsBitIdentical(const core::FlowResult& a, const core::FlowResult& b,
                             const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.topology, b.topology);
  EXPECT_TRUE(vecBitIdentical(a.designPoint, b.designPoint));
  EXPECT_EQ(a.redesigns, b.redesigns);
  EXPECT_EQ(a.failureReason, b.failureReason);
  EXPECT_EQ(a.failureStatus, b.failureStatus);
  ASSERT_EQ(a.verifications.size(), b.verifications.size());
  for (std::size_t i = 0; i < a.verifications.size(); ++i) {
    EXPECT_EQ(a.verifications[i].stage, b.verifications[i].stage);
    EXPECT_EQ(a.verifications[i].passed, b.verifications[i].passed);
    EXPECT_TRUE(
        perfBitIdentical(a.verifications[i].measured, b.verifications[i].measured));
  }
  ASSERT_EQ(a.stageRecords.size(), b.stageRecords.size());
  for (std::size_t i = 0; i < a.stageRecords.size(); ++i) {
    EXPECT_EQ(a.stageRecords[i].name, b.stageRecords[i].name);
    EXPECT_EQ(a.stageRecords[i].attempt, b.stageRecords[i].attempt);
    EXPECT_EQ(a.stageRecords[i].status, b.stageRecords[i].status);
    EXPECT_EQ(a.stageRecords[i].detail, b.stageRecords[i].detail);
    EXPECT_EQ(a.stageRecords[i].evalStatus, b.stageRecords[i].evalStatus);
  }
  EXPECT_EQ(reportResultPrefix(a), reportResultPrefix(b));
}

TEST(SurrogateDifferential, FlowIsBitIdenticalWithOrderingAcrossThreadsAndCache) {
  CacheGuard cguard;
  SurrogateGuard sguard(surr::Mode::Off);
  const auto reference =
      runFlow(core::SurrogateOption::Off, /*cacheOn=*/false, /*threads=*/1);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    for (const bool cacheOn : {false, true}) {
      expectFlowsBitIdentical(
          reference, runFlow(core::SurrogateOption::Ordering, cacheOn, threads),
          "surrogate=ordering cache=" + std::string(cacheOn ? "on" : "off") +
              " threads=" + std::to_string(threads));
    }
  }
}

mf::RobustResult runRobust(surr::Mode mode, bool cacheOn, std::size_t threads) {
  auto& c = cache::EvalCache::instance();
  c.clear();
  c.setEnabled(cacheOn);
  auto& store = surr::Store::instance();
  store.clear();
  store.setMode(mode);
  core::ScopedThreadPool scoped(threads);
  sz::SpecSet specs;
  specs.atLeast("gain_db", 55.0).atLeast("ugf", 1e6).minimize("power", 0.5, 1e-3);
  mf::RobustOptions ropts;
  ropts.synthesis = fastSynthesisOptions();
  ropts.maxRounds = 1;
  const mf::ModelFactory factory = [](const ckt::Process& p) {
    return sz::makeTwoStageCornerModel(p, nominal(), 5e-12);
  };
  return mf::robustSynthesize(factory, nominal(), mf::VariationSpace{}, specs, ropts);
}

void expectRobustBitIdentical(const mf::RobustResult& a, const mf::RobustResult& b,
                              const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_TRUE(vecBitIdentical(a.nominal.x, b.nominal.x));
  EXPECT_TRUE(perfBitIdentical(a.nominal.performance, b.nominal.performance));
  EXPECT_EQ(a.nominal.feasible, b.nominal.feasible);
  EXPECT_TRUE(vecBitIdentical(a.robust.x, b.robust.x));
  EXPECT_TRUE(perfBitIdentical(a.robust.performance, b.robust.performance));
  EXPECT_EQ(a.robust.feasible, b.robust.feasible);
  EXPECT_EQ(a.robustFeasibleAtCorners, b.robustFeasibleAtCorners);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_EQ(a.activeCorners, b.activeCorners);
  EXPECT_EQ(a.nominalEvaluations, b.nominalEvaluations);
  EXPECT_EQ(a.robustEvaluations, b.robustEvaluations);
}

TEST(SurrogateDifferential, RobustCornerSearchIsBitIdenticalWithOrdering) {
  CacheGuard cguard;
  SurrogateGuard sguard(surr::Mode::Off);
  const auto reference = runRobust(surr::Mode::Off, /*cacheOn=*/false, /*threads=*/1);
  for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
    for (const bool cacheOn : {false, true}) {
      expectRobustBitIdentical(
          reference, runRobust(surr::Mode::Ordering, cacheOn, threads),
          "surrogate=ordering cache=" + std::string(cacheOn ? "on" : "off") +
              " threads=" + std::to_string(threads));
    }
  }
}

// ---------------------------------------------------------------------------
// Pruning audits

/// Signed normalized margin (mirror of the hunt's own formula).
double auditMargin(const sz::Spec& spec, const sz::Performance& perf) {
  if (perf.count("_infeasible")) return -1.0;
  const auto it = perf.find(spec.performance);
  if (it == perf.end()) return -1.0;
  return spec.kind == sz::SpecKind::GreaterEqual
             ? (it->second - spec.bound) / spec.normalization()
             : (spec.bound - it->second) / spec.normalization();
}

sz::SpecSet hardSpecs() {
  sz::SpecSet s;
  s.atLeast("gain_db", 66.0)
      .atLeast("ugf", 3e6)
      .atLeast("pm", 50.0)
      .atMost("power", 8e-3)
      .minimize("power", 0.3, 1e-3);
  return s;
}

TEST(SurrogatePruning, HuntVertexPrunesNeverBeatTheFoundWorstCorner) {
  // The headline pruning consumer: worstCaseCorner skips vertices whose
  // predicted margin is confidently not the argmin.  Contract, in two
  // parts: (1) hunt results are bit-identical to the unscreened run, and
  // (2) re-evaluating every skipped vertex offline shows none of them was
  // the true worst corner.  False-prune budget: ZERO.
  CacheGuard cguard;
  core::ScopedThreadPool scoped(4);
  const mf::ModelFactory factory = [](const ckt::Process& p) {
    return sz::makeTwoStageCornerModel(p, nominal(), 5e-12);
  };
  const auto specs = hardSpecs();
  mf::VariationSpace space;
  const auto model = factory(nominal());
  const auto x = model->initialPoint();

  // Reference: hunt + audit (the robustSynthesize access pattern) with the
  // surrogate off.
  std::vector<double> offMargins;
  {
    SurrogateGuard guard(surr::Mode::Off);
    cache::EvalCache::instance().clear();
    for (int phase = 0; phase < 2; ++phase)
      for (const auto& spec : specs.specs()) {
        if (spec.isObjective()) continue;
        const auto wc = mf::worstCaseCorner(factory, nominal(), space, x, spec);
        offMargins.push_back(wc.margin);
        offMargins.push_back(wc.value);
      }
  }

  // Screened run: the first hunt phase trains the per-class model, the
  // second phase prunes.  Collect the found worst margin per spec for the
  // audit bound.
  SurrogateGuard guard(surr::Mode::Pruning);
  cache::EvalCache::instance().clear();
  const auto statsBefore = guard.store.stats();
  std::vector<double> onMargins;
  std::map<std::string, double> foundMin;
  for (int phase = 0; phase < 2; ++phase)
    for (const auto& spec : specs.specs()) {
      if (spec.isObjective()) continue;
      const auto wc = mf::worstCaseCorner(factory, nominal(), space, x, spec);
      onMargins.push_back(wc.margin);
      onMargins.push_back(wc.value);
      auto [it, inserted] = foundMin.emplace(spec.performance, wc.margin);
      if (!inserted) it->second = std::min(it->second, wc.margin);
    }
  const auto statsAfter = guard.store.stats();

  // (1) Screening must not have moved any result.
  EXPECT_TRUE(vecBitIdentical(offMargins, onMargins));
  // The test must not pass vacuously: the workload is sized so screening
  // actually fires (the bench measures ~25% of predictions pruned here).
  const std::uint64_t pruned = statsAfter.pruned - statsBefore.pruned;
  EXPECT_GT(pruned, 0u);
  const auto log = guard.store.pruneLog();
  ASSERT_GE(log.size(), 1u);

  // (2) Offline audit: re-evaluate every skipped vertex with the real
  // model.  A false prune would be a vertex whose true margin beats the
  // worst corner the hunt found for that spec.
  guard.store.setMode(surr::Mode::Off);  // audit evaluations stay untracked
  std::size_t audited = 0;
  for (const auto& rec : log) {
    if (rec.corner.empty()) continue;  // candidate-level prune, other audit
    ASSERT_EQ(rec.corner.size(), mf::VariationSpace::kDims);
    const sz::Spec* spec = nullptr;
    for (const auto& s : specs.specs())
      if (s.performance == rec.spec) spec = &s;
    ASSERT_NE(spec, nullptr) << "prune log names unknown spec " << rec.spec;
    const auto vertexModel = factory(space.apply(nominal(), rec.corner));
    const auto perf = sz::safeEvaluate(*vertexModel, rec.x);
    const double trueMargin = auditMargin(*spec, perf);
    EXPECT_GE(trueMargin, foundMin.at(rec.spec) - 1e-12)
        << "FALSE PRUNE: skipped vertex for " << rec.spec
        << " has true margin " << trueMargin << ", beating the found minimum "
        << foundMin.at(rec.spec) << " (predicted lower bound "
        << rec.predictedMargin << ", sigma " << rec.sigma << ")";
    ++audited;
  }
  EXPECT_EQ(audited, log.size()) << "hunt prunes must carry corner coordinates";
  // The log is bounded (first 4096), but this workload is far below the
  // bound: every counted prune must have been audited.
  EXPECT_EQ(static_cast<std::uint64_t>(audited), pruned);
}

/// Heavy, deterministic, closed-form model for the candidate-level prune
/// audit: gain rises linearly in the design coordinates, so a surrogate
/// trained on a deeply-infeasible region predicts it near-exactly.
class LinearHeavyModel : public sz::PerformanceModel {
 public:
  const std::vector<sz::DesignVariable>& variables() const override { return vars_; }

  sz::Performance evaluate(const std::vector<double>& x) const override {
    evals_.fetch_add(1, std::memory_order_relaxed);
    return {{"gain_db", 100.0 * x.at(0) + 5.0 * x.at(1)},
            {"power", 1e-3 * (x.at(0) + x.at(1))}};
  }

  std::optional<SurrogateSignature> surrogateSignature() const override {
    cache::Hasher128 h;
    h.mixString("surrogate-test-linear-heavy");
    return SurrogateSignature{h.digest(), {}};
  }

  int evals() const { return evals_.load(std::memory_order_relaxed); }

 private:
  mutable std::atomic<int> evals_{0};
  std::vector<sz::DesignVariable> vars_{{"a", 0.0, 1.0, false, 1.0},
                                        {"b", 0.0, 1.0, false, 1.0}};
};

TEST(SurrogatePruning, CandidatePrunesAreTrulyInfeasibleWhenReEvaluated) {
  SurrogateGuard guard(surr::Mode::Pruning);
  LinearHeavyModel model;
  sz::SpecSet specs;
  specs.atLeast("gain_db", 50.0);
  const sz::CostFunction cost(model, specs);

  // Train on a grid that is deeply infeasible everywhere (gain <= 21 vs the
  // 50 dB floor): feature dim is 3 (bias + 2 coords), so 48 observations
  // leave 45 prequential residuals — past the calibration threshold.
  for (int i = 0; i < 48; ++i) {
    const double a = 0.2 * static_cast<double>(i) / 47.0;
    const double b = static_cast<double>((i * 7) % 48) / 47.0;
    sz::safeEvaluate(model, {a, b});
  }

  const std::vector<double> probe = {0.1, 0.1};
  const int evalsBefore = model.evals();
  const auto d = cost.detailed(probe);
  // The probe was pruned: no real evaluation ran, the verdict is tagged.
  EXPECT_EQ(model.evals(), evalsBefore);
  EXPECT_EQ(d.status, core::EvalStatus::SurrogatePruned);
  EXPECT_FALSE(d.feasible);

  const auto log = guard.store.pruneLog();
  ASSERT_GE(log.size(), 1u);
  // Offline audit: every pruned candidate, re-evaluated for real, must
  // violate the spec that triggered the prune.  Budget of false prunes: 0.
  guard.store.setMode(surr::Mode::Off);
  for (const auto& rec : log) {
    EXPECT_TRUE(rec.corner.empty());  // candidate prunes carry no corner
    EXPECT_EQ(rec.spec, "gain_db");
    const auto perf = model.evaluate(rec.x);
    const auto& spec = specs.specs().front();
    EXPECT_GT(spec.violation(perf.at("gain_db")), 0.0)
        << "FALSE PRUNE: candidate at a=" << rec.x.at(0) << " b=" << rec.x.at(1)
        << " satisfies " << rec.spec << " (predicted upper bound "
        << rec.predictedMargin << ")";
  }
}

TEST(SurrogatePruning, OrderingModeNeverPrunes) {
  // Same setup as the candidate audit, but in Ordering mode: the candidate
  // must be evaluated for real — ordering may only schedule, never skip.
  SurrogateGuard guard(surr::Mode::Ordering);
  LinearHeavyModel model;
  sz::SpecSet specs;
  specs.atLeast("gain_db", 50.0);
  const sz::CostFunction cost(model, specs);
  for (int i = 0; i < 48; ++i) {
    const double a = 0.2 * static_cast<double>(i) / 47.0;
    const double b = static_cast<double>((i * 7) % 48) / 47.0;
    sz::safeEvaluate(model, {a, b});
  }
  const int evalsBefore = model.evals();
  const auto d = cost.detailed({0.1, 0.1});
  EXPECT_EQ(model.evals(), evalsBefore + 1);
  EXPECT_EQ(d.status, core::EvalStatus::Ok);
  EXPECT_TRUE(guard.store.pruneLog().empty());
}

}  // namespace
