#include <gtest/gtest.h>

#include "topology/genetic.hpp"
#include "topology/joint.hpp"
#include "topology/library.hpp"
#include "topology/select.hpp"

namespace tp = amsyn::topology;
namespace sz = amsyn::sizing;
namespace ckt = amsyn::circuit;

namespace {
const ckt::Process& proc() { return ckt::defaultProcess(); }

// Pinned to the Legacy space: this suite asserts hand-written-library facts
// (entry count, winners, bounds).  The generated composition space has its
// own suite in composed_topology_test.cpp.
const tp::TopologyLibrary& lib() {
  static const tp::TopologyLibrary l =
      tp::amplifierLibrary(proc(), 5e-12, tp::TopologySpace::Legacy);
  return l;
}

sz::SpecSet highGainSpecs() {
  sz::SpecSet s;
  s.atLeast("gain_db", 70.0).atLeast("ugf", 3e6).atLeast("pm", 55.0).minimize("power", 0.5,
                                                                              1e-3);
  return s;
}

sz::SpecSet lowGainFastSpecs() {
  sz::SpecSet s;
  s.atLeast("gain_db", 35.0).atLeast("ugf", 3e7).minimize("power", 1.0, 1e-3);
  return s;
}
}  // namespace

TEST(Library, HasBothAmplifiers) {
  EXPECT_EQ(lib().size(), 2u);
  EXPECT_NO_THROW(lib().byName("five-transistor-ota"));
  EXPECT_NO_THROW(lib().byName("two-stage-miller"));
  EXPECT_THROW(lib().byName("folded-cascode"), std::out_of_range);
}

TEST(Library, BoundsContainKnownAchievablePoints) {
  const auto& ts = lib().byName("two-stage-miller");
  // A mid-box design point's performance must fall inside the bounds.
  const auto perf = ts.model->evaluate(ts.model->initialPoint());
  for (const auto& [k, v] : perf) {
    ASSERT_TRUE(ts.bounds.count(k)) << k;
    EXPECT_TRUE(ts.bounds.at(k).contains(v))
        << k << "=" << v << " not in [" << ts.bounds.at(k).lo() << ", "
        << ts.bounds.at(k).hi() << "]";
  }
}

TEST(RuleBased, PrefersTwoStageForHighGain) {
  const auto ranked = tp::ruleBasedSelect(lib(), highGainSpecs());
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].name, "two-stage-miller");
  EXPECT_FALSE(ranked[0].reasons.empty());
}

TEST(RuleBased, PrefersOtaForLowGainFast) {
  const auto ranked = tp::ruleBasedSelect(lib(), lowGainFastSpecs());
  EXPECT_EQ(ranked[0].name, "five-transistor-ota");
}

TEST(IntervalCheck, RejectsOtaForHighGain) {
  // 70 dB is provably outside the single-stage OTA's achievable gain range.
  const auto verdicts = tp::intervalSelect(lib(), highGainSpecs());
  bool otaRejected = false;
  for (const auto& c : verdicts)
    if (c.name == "five-transistor-ota") otaRejected = !c.feasible;
  EXPECT_TRUE(otaRejected);
}

TEST(IntervalCheck, KeepsBothForModestSpecs) {
  sz::SpecSet s;
  s.atLeast("gain_db", 35.0).atLeast("ugf", 1e6);
  const auto verdicts = tp::intervalSelect(lib(), s);
  for (const auto& c : verdicts) EXPECT_TRUE(c.feasible) << c.name;
}

TEST(IntervalCheck, RejectsImpossibleSpecEverywhere) {
  sz::SpecSet s;
  s.atLeast("gain_db", 300.0);  // beyond any amplifier here
  const auto verdicts = tp::intervalSelect(lib(), s);
  for (const auto& c : verdicts) EXPECT_FALSE(c.feasible) << c.name;
}

TEST(SelectAndSize, PicksAndSizesTwoStageForHighGain) {
  sz::SynthesisOptions opts;
  opts.seed = 7;
  const auto res = tp::selectAndSize(lib(), highGainSpecs(), opts);
  ASSERT_TRUE(res.success);
  EXPECT_EQ(res.topology, "two-stage-miller");
  EXPECT_TRUE(res.sizing.feasible);
  EXPECT_GE(res.sizing.performance.at("gain_db"), 70.0 - 0.1);
  // The OTA must not even have been attempted (interval-rejected).
  for (const auto& c : res.consideredOrder) EXPECT_NE(c.name, "five-transistor-ota");
}

TEST(Genetic, ConvergesToFeasibleDesign) {
  tp::GeneticOptions opts;
  opts.seed = 13;
  const auto res = tp::geneticSelectAndSize(lib(), highGainSpecs(), opts);
  EXPECT_TRUE(res.feasible) << "best cost " << res.cost;
  EXPECT_EQ(res.topology, "two-stage-miller");
  EXPECT_GT(res.evaluations, 100u);
}

TEST(Genetic, PopulationMigratesToWinningTopology) {
  tp::GeneticOptions opts;
  opts.seed = 17;
  const auto res = tp::geneticSelectAndSize(lib(), highGainSpecs(), opts);
  // Selection pressure: most of the final population sits on the topology
  // that can actually meet the specs.
  ASSERT_TRUE(res.populationShare.count("two-stage-miller"));
  EXPECT_GT(res.populationShare.at("two-stage-miller"), 0.5);
}

TEST(Joint, AnnealerFindsFeasibleTopologyAndSizing) {
  tp::JointOptions opts;
  opts.seed = 23;
  const auto res = tp::jointSelectAndSize(lib(), highGainSpecs(), opts);
  EXPECT_TRUE(res.feasible) << "cost " << res.cost;
  EXPECT_EQ(res.topology, "two-stage-miller");
}

TEST(Library, ByNameMissReportsAvailableNames) {
  try {
    lib().byName("folded-cascode");
    FAIL() << "byName should have thrown";
  } catch (const std::out_of_range& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("folded-cascode"), std::string::npos) << msg;
    EXPECT_NE(msg.find("five-transistor-ota"), std::string::npos) << msg;
    EXPECT_NE(msg.find("two-stage-miller"), std::string::npos) << msg;
  }
}

TEST(Library, AddRejectsDuplicateNames) {
  tp::TopologyLibrary l;
  tp::TopologyEntry e;
  e.name = "dup";
  l.add(e);
  EXPECT_THROW(l.add(e), std::invalid_argument);
  EXPECT_EQ(l.size(), 1u);
}

namespace {
// One linear variable sweeping three performance shapes: strictly positive
// (power-like, 5 decades), sign-crossing (pm-like), and floored at zero
// (swing-like).  Exercises every branch of the widening fix.
class SpanModel : public sz::PerformanceModel {
 public:
  const std::vector<sz::DesignVariable>& variables() const override {
    static const std::vector<sz::DesignVariable> vars = {{"t", 0.0, 1.0, false}};
    return vars;
  }
  sz::Performance evaluate(const std::vector<double>& x) const override {
    const double t = x.at(0);
    return {{"power", 1e-5 + t * (1e-3 - 1e-5)},
            {"pm", -10.0 + 60.0 * t},
            {"swing", 2.0 * t}};
  }
};
}  // namespace

TEST(Bounds, WideningNeverDrivesPositiveQuantitiesNegative) {
  // Regression: midpoint widening used to push the lower bound of a
  // strictly-positive hull ([1e-5, 1e-3] here: mid - 1.15*half < 0)
  // negative, poisoning feasibility margins.
  const auto b = tp::boundsBySampling(SpanModel{}, 3, 1.15);
  EXPECT_GT(b.at("power").lo(), 0.0);
  EXPECT_LT(b.at("power").lo(), 1e-5);   // still widened downward
  EXPECT_GT(b.at("power").hi(), 1e-3);   // and upward
  // Sign-crossing hulls keep the linear widening in both directions.
  EXPECT_LT(b.at("pm").lo(), -10.0);
  EXPECT_GT(b.at("pm").hi(), 50.0);
  // A hull floored at zero clamps there instead of going negative.
  EXPECT_DOUBLE_EQ(b.at("swing").lo(), 0.0);
  EXPECT_GT(b.at("swing").hi(), 2.0);
}

TEST(Bounds, LegacyLibraryBoundsAreSane) {
  for (const auto& e : lib().entries()) {
    for (const char* perf : {"power", "ugf", "area", "noise_nv"}) {
      ASSERT_TRUE(e.bounds.count(perf)) << e.name << " " << perf;
      EXPECT_GT(e.bounds.at(perf).lo(), 0.0) << e.name << " " << perf;
    }
    EXPECT_GE(e.bounds.at("swing").lo(), 0.0) << e.name;
  }
}

TEST(RuleBased, AggregatesAllSpecsOnOnePerformance) {
  // Regression: the rule lambdas used to return on the *first* matching
  // spec, so a second bound on the same performance scored nothing.
  sz::SpecSet one;
  one.atLeast("gain_db", 70.0);
  sz::SpecSet two;
  two.atLeast("gain_db", 70.0).atLeast("gain_db", 80.0);
  auto scoreOf = [](const std::vector<tp::Candidate>& ranked, const std::string& name) {
    for (const auto& c : ranked)
      if (c.name == name) return c.score;
    ADD_FAILURE() << name << " missing from ranking";
    return 0.0;
  };
  const auto r1 = tp::ruleBasedSelect(lib(), one);
  const auto r2 = tp::ruleBasedSelect(lib(), two);
  // The second high-gain bound contributes its own +3 (two-stage) / -3 (OTA).
  EXPECT_DOUBLE_EQ(scoreOf(r2, "two-stage-miller") - scoreOf(r1, "two-stage-miller"), 3.0);
  EXPECT_DOUBLE_EQ(scoreOf(r2, "five-transistor-ota") - scoreOf(r1, "five-transistor-ota"),
                   -3.0);
}

TEST(Joint, LowGainSpecsCanKeepTheOta) {
  tp::JointOptions opts;
  opts.seed = 29;
  const auto res = tp::jointSelectAndSize(lib(), lowGainFastSpecs(), opts);
  EXPECT_TRUE(res.feasible);
  // Either topology can meet these specs; the result must at least be valid.
  EXPECT_GE(res.performance.at("gain_db"), 35.0 * 0.999);
}
