#include <gtest/gtest.h>

#include "topology/genetic.hpp"
#include "topology/joint.hpp"
#include "topology/library.hpp"
#include "topology/select.hpp"

namespace tp = amsyn::topology;
namespace sz = amsyn::sizing;
namespace ckt = amsyn::circuit;

namespace {
const ckt::Process& proc() { return ckt::defaultProcess(); }

const tp::TopologyLibrary& lib() {
  static const tp::TopologyLibrary l = tp::amplifierLibrary(proc(), 5e-12);
  return l;
}

sz::SpecSet highGainSpecs() {
  sz::SpecSet s;
  s.atLeast("gain_db", 70.0).atLeast("ugf", 3e6).atLeast("pm", 55.0).minimize("power", 0.5,
                                                                              1e-3);
  return s;
}

sz::SpecSet lowGainFastSpecs() {
  sz::SpecSet s;
  s.atLeast("gain_db", 35.0).atLeast("ugf", 3e7).minimize("power", 1.0, 1e-3);
  return s;
}
}  // namespace

TEST(Library, HasBothAmplifiers) {
  EXPECT_EQ(lib().size(), 2u);
  EXPECT_NO_THROW(lib().byName("five-transistor-ota"));
  EXPECT_NO_THROW(lib().byName("two-stage-miller"));
  EXPECT_THROW(lib().byName("folded-cascode"), std::out_of_range);
}

TEST(Library, BoundsContainKnownAchievablePoints) {
  const auto& ts = lib().byName("two-stage-miller");
  // A mid-box design point's performance must fall inside the bounds.
  const auto perf = ts.model->evaluate(ts.model->initialPoint());
  for (const auto& [k, v] : perf) {
    ASSERT_TRUE(ts.bounds.count(k)) << k;
    EXPECT_TRUE(ts.bounds.at(k).contains(v))
        << k << "=" << v << " not in [" << ts.bounds.at(k).lo() << ", "
        << ts.bounds.at(k).hi() << "]";
  }
}

TEST(RuleBased, PrefersTwoStageForHighGain) {
  const auto ranked = tp::ruleBasedSelect(lib(), highGainSpecs());
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].name, "two-stage-miller");
  EXPECT_FALSE(ranked[0].reasons.empty());
}

TEST(RuleBased, PrefersOtaForLowGainFast) {
  const auto ranked = tp::ruleBasedSelect(lib(), lowGainFastSpecs());
  EXPECT_EQ(ranked[0].name, "five-transistor-ota");
}

TEST(IntervalCheck, RejectsOtaForHighGain) {
  // 70 dB is provably outside the single-stage OTA's achievable gain range.
  const auto verdicts = tp::intervalSelect(lib(), highGainSpecs());
  bool otaRejected = false;
  for (const auto& c : verdicts)
    if (c.name == "five-transistor-ota") otaRejected = !c.feasible;
  EXPECT_TRUE(otaRejected);
}

TEST(IntervalCheck, KeepsBothForModestSpecs) {
  sz::SpecSet s;
  s.atLeast("gain_db", 35.0).atLeast("ugf", 1e6);
  const auto verdicts = tp::intervalSelect(lib(), s);
  for (const auto& c : verdicts) EXPECT_TRUE(c.feasible) << c.name;
}

TEST(IntervalCheck, RejectsImpossibleSpecEverywhere) {
  sz::SpecSet s;
  s.atLeast("gain_db", 300.0);  // beyond any amplifier here
  const auto verdicts = tp::intervalSelect(lib(), s);
  for (const auto& c : verdicts) EXPECT_FALSE(c.feasible) << c.name;
}

TEST(SelectAndSize, PicksAndSizesTwoStageForHighGain) {
  sz::SynthesisOptions opts;
  opts.seed = 7;
  const auto res = tp::selectAndSize(lib(), highGainSpecs(), opts);
  ASSERT_TRUE(res.success);
  EXPECT_EQ(res.topology, "two-stage-miller");
  EXPECT_TRUE(res.sizing.feasible);
  EXPECT_GE(res.sizing.performance.at("gain_db"), 70.0 - 0.1);
  // The OTA must not even have been attempted (interval-rejected).
  for (const auto& c : res.consideredOrder) EXPECT_NE(c.name, "five-transistor-ota");
}

TEST(Genetic, ConvergesToFeasibleDesign) {
  tp::GeneticOptions opts;
  opts.seed = 13;
  const auto res = tp::geneticSelectAndSize(lib(), highGainSpecs(), opts);
  EXPECT_TRUE(res.feasible) << "best cost " << res.cost;
  EXPECT_EQ(res.topology, "two-stage-miller");
  EXPECT_GT(res.evaluations, 100u);
}

TEST(Genetic, PopulationMigratesToWinningTopology) {
  tp::GeneticOptions opts;
  opts.seed = 17;
  const auto res = tp::geneticSelectAndSize(lib(), highGainSpecs(), opts);
  // Selection pressure: most of the final population sits on the topology
  // that can actually meet the specs.
  ASSERT_TRUE(res.populationShare.count("two-stage-miller"));
  EXPECT_GT(res.populationShare.at("two-stage-miller"), 0.5);
}

TEST(Joint, AnnealerFindsFeasibleTopologyAndSizing) {
  tp::JointOptions opts;
  opts.seed = 23;
  const auto res = tp::jointSelectAndSize(lib(), highGainSpecs(), opts);
  EXPECT_TRUE(res.feasible) << "cost " << res.cost;
  EXPECT_EQ(res.topology, "two-stage-miller");
}

TEST(Joint, LowGainSpecsCanKeepTheOta) {
  tp::JointOptions opts;
  opts.seed = 29;
  const auto res = tp::jointSelectAndSize(lib(), lowGainFastSpecs(), opts);
  EXPECT_TRUE(res.feasible);
  // Either topology can meet these specs; the result must at least be valid.
  EXPECT_GE(res.performance.at("gain_db"), 35.0 * 0.999);
}
