// Fault-tolerance tests: every fallback path of the evaluation layer must
// demonstrably fire.  Deterministic fault injection (sim/fault.hpp) breaks
// the solvers at precise points — forcing continuation rungs, NaN bail-outs,
// budget exhaustion — and the tests assert both the structured outcome
// (core::EvalStatus) and the observability counters (sim/stats.hpp).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>
#include <vector>

#include "circuit/parser.hpp"
#include "core/evalstatus.hpp"
#include "core/flow.hpp"
#include "core/parallel.hpp"
#include "manufacture/corners.hpp"
#include "sim/ac.hpp"
#include "sim/dc.hpp"
#include "sim/fault.hpp"
#include "sim/measure.hpp"
#include "sim/mna.hpp"
#include "sim/stats.hpp"
#include "sim/transient.hpp"
#include "sizing/cost.hpp"
#include "sizing/simmodel.hpp"
#include "topology/genetic.hpp"
#include "topology/select.hpp"

namespace ckt = amsyn::circuit;
namespace core = amsyn::core;
namespace sim = amsyn::sim;
namespace sizing = amsyn::sizing;
namespace topology = amsyn::topology;
namespace manufacture = amsyn::manufacture;

using core::EvalStatus;

namespace {

const ckt::Process& proc() { return ckt::defaultProcess(); }

/// A nonlinear circuit whose operating point needs several Newton
/// iterations: NMOS inverter with a resistive load.
ckt::Netlist inverterDeck() {
  return ckt::parseDeck(R"(
V1 vdd 0 DC 5
VG g 0 DC 2.5
R1 vdd out 10k
M1 out g 0 0 NMOS W=20u L=1u
.end)");
}

ckt::Netlist rcDeck() {
  return ckt::parseDeck(R"(
V1 in 0 DC 1 AC 1
R1 in out 1k
C1 out 0 1n
.end)");
}

/// Minimal equation model: one variable, smooth performance surface.
class QuadraticModel : public sizing::PerformanceModel {
 public:
  const std::vector<sizing::DesignVariable>& variables() const override { return vars_; }
  sizing::Performance evaluate(const std::vector<double>& x) const override {
    sizing::Performance p;
    p["gain_db"] = 100.0 - (x[0] - 3.0) * (x[0] - 3.0);
    p["power"] = x[0];
    return p;
  }

 private:
  std::vector<sizing::DesignVariable> vars_{{"a", 1.0, 10.0, false, 1.0}};
};

/// Model that always throws: the poisoned candidate the containment
/// boundaries must absorb.
class ThrowingModel : public sizing::PerformanceModel {
 public:
  const std::vector<sizing::DesignVariable>& variables() const override { return vars_; }
  sizing::Performance evaluate(const std::vector<double>&) const override {
    throw std::runtime_error("poisoned candidate");
  }

 private:
  std::vector<sizing::DesignVariable> vars_{{"a", 1.0, 10.0, false, 1.0}};
};

/// Model that reports a NaN score (a failed measurement leaking through).
class NanModel : public sizing::PerformanceModel {
 public:
  const std::vector<sizing::DesignVariable>& variables() const override { return vars_; }
  sizing::Performance evaluate(const std::vector<double>&) const override {
    sizing::Performance p;
    p["gain_db"] = std::numeric_limits<double>::quiet_NaN();
    return p;
  }

 private:
  std::vector<sizing::DesignVariable> vars_{{"a", 1.0, 10.0, false, 1.0}};
};

}  // namespace

// --- taxonomy basics ------------------------------------------------------

TEST(EvalStatus, NamesAreStableSnakeCase) {
  EXPECT_STREQ(core::evalStatusName(EvalStatus::Ok), "ok");
  EXPECT_STREQ(core::evalStatusName(EvalStatus::DcNoConvergence), "dc_no_convergence");
  EXPECT_STREQ(core::evalStatusName(EvalStatus::SingularJacobian), "singular_jacobian");
  EXPECT_STREQ(core::evalStatusName(EvalStatus::NanDetected), "nan_detected");
  EXPECT_STREQ(core::evalStatusName(EvalStatus::BudgetExhausted), "budget_exhausted");
  EXPECT_STREQ(core::evalStatusName(EvalStatus::BadTopology), "bad_topology");
  EXPECT_STREQ(core::evalStatusName(EvalStatus::NoAcCrossing), "no_ac_crossing");
  EXPECT_STREQ(core::evalStatusName(EvalStatus::InternalError), "internal_error");
}

TEST(EvalBudget, CountsWorkUnitsAndCancels) {
  core::EvalBudget b(3);
  EXPECT_TRUE(b.consume());
  EXPECT_TRUE(b.consume(2));
  EXPECT_FALSE(b.consume());  // 4th unit crosses the limit
  EXPECT_TRUE(b.exhausted());
  EXPECT_EQ(b.used(), 4u);

  core::EvalBudget unlimited;
  for (int i = 0; i < 1000; ++i) EXPECT_TRUE(unlimited.consume());
  unlimited.cancel();
  EXPECT_FALSE(unlimited.consume());
  EXPECT_TRUE(unlimited.exhausted());

  std::atomic<bool> stop{false};
  core::EvalBudget external(0, &stop);
  EXPECT_TRUE(external.consume());
  stop.store(true);
  EXPECT_FALSE(external.consume());
}

TEST(EvalBudget, PerformanceStatusRoundTrips) {
  sizing::Performance perf;
  EXPECT_EQ(sizing::performanceStatus(perf), EvalStatus::Ok);
  sizing::markInfeasible(perf, EvalStatus::SingularJacobian);
  EXPECT_EQ(perf.at("_infeasible"), 1.0);
  EXPECT_EQ(sizing::performanceStatus(perf), EvalStatus::SingularJacobian);
  // First reason sticks.
  sizing::markInfeasible(perf, EvalStatus::InternalError);
  EXPECT_EQ(sizing::performanceStatus(perf), EvalStatus::SingularJacobian);
}

// --- continuation ladder under injected faults ----------------------------

TEST(FaultInjection, CleanSolveUsesNewtonStrategy) {
  sim::resetFailureStats();
  auto net = inverterDeck();
  sim::Mna mna(net, proc());
  const auto op = sim::dcOperatingPoint(mna);
  ASSERT_TRUE(op.converged);
  EXPECT_EQ(op.status, EvalStatus::Ok);
  EXPECT_EQ(op.strategy, "newton");
  EXPECT_EQ(sim::dcStrategyCount(sim::DcStrategy::Newton), 1u);
  EXPECT_EQ(sim::dcStrategyCount(sim::DcStrategy::Gmin), 0u);
}

TEST(FaultInjection, SingleNewtonFailureFallsBackToGminRung) {
  sim::resetFailureStats();
  auto net = inverterDeck();
  sim::Mna mna(net, proc());

  // Reference solve, then the faulted one: the ladder must land on the same
  // operating point.
  const auto clean = sim::dcOperatingPoint(mna);
  ASSERT_TRUE(clean.converged);

  sim::FaultPlan plan;
  plan.failDcNewtonSolves = 1;  // kill rung 1 (plain Newton)
  sim::ScopedFaultInjection inject(plan);
  const auto op = sim::dcOperatingPoint(mna);
  ASSERT_TRUE(op.converged);
  EXPECT_EQ(op.status, EvalStatus::Ok);
  EXPECT_EQ(op.strategy, "gmin");
  EXPECT_EQ(sim::dcStrategyCount(sim::DcStrategy::Gmin), 1u);
  for (std::size_t i = 0; i < clean.x.size(); ++i)
    EXPECT_NEAR(op.x[i], clean.x[i], 1e-6);
}

TEST(FaultInjection, DoubleNewtonFailureFallsBackToSourceRung) {
  sim::resetFailureStats();
  auto net = inverterDeck();
  sim::Mna mna(net, proc());

  sim::FaultPlan plan;
  plan.failDcNewtonSolves = 2;  // kill plain Newton AND the first gmin step
  sim::ScopedFaultInjection inject(plan);
  const auto op = sim::dcOperatingPoint(mna);
  ASSERT_TRUE(op.converged);
  EXPECT_EQ(op.strategy, "source");
  EXPECT_EQ(sim::dcStrategyCount(sim::DcStrategy::Source), 1u);
}

TEST(FaultInjection, AllRungsKilledRecordsReasonCode) {
  sim::resetFailureStats();
  auto net = inverterDeck();
  sim::Mna mna(net, proc());

  sim::FaultPlan plan;
  plan.failDcNewtonSolves = 3;  // one per rung: newton, gmin, source
  sim::ScopedFaultInjection inject(plan);
  const auto op = sim::dcOperatingPoint(mna);
  EXPECT_FALSE(op.converged);
  EXPECT_EQ(op.status, EvalStatus::SingularJacobian);
  EXPECT_EQ(sim::evalFailureCount(EvalStatus::SingularJacobian), 1u);
}

TEST(FaultInjection, NanResidualBailsImmediatelyAndLadderRecovers) {
  auto net = inverterDeck();
  sim::Mna mna(net, proc());

  sim::FaultPlan plan;
  plan.poisonDcResiduals = 1;  // NaN in rung 1's first residual assembly
  sim::ScopedFaultInjection inject(plan);
  sim::DcOptions opts;
  const auto op = sim::dcOperatingPoint(mna, opts);
  ASSERT_TRUE(op.converged);
  EXPECT_EQ(op.strategy, "gmin");
  // The NaN bail-out must not burn the iteration limit on poisoned
  // iterates: rung 1 aborts before its first update, so the total iteration
  // count stays far below one full maxIterations pass.
  EXPECT_LT(op.iterations, opts.maxIterations);
}

TEST(FaultInjection, InjectedExhaustionFiresWithoutRealBudget) {
  sim::resetFailureStats();
  auto net = inverterDeck();
  sim::Mna mna(net, proc());

  sim::FaultPlan plan;
  plan.useExhaustBudget = true;
  plan.exhaustBudgetAfter = 2;  // exhaust mid-solve, no EvalBudget needed
  sim::ScopedFaultInjection inject(plan);
  const auto op = sim::dcOperatingPoint(mna);
  EXPECT_FALSE(op.converged);
  EXPECT_EQ(op.status, EvalStatus::BudgetExhausted);
  EXPECT_EQ(sim::evalFailureCount(EvalStatus::BudgetExhausted), 1u);
}

// --- work budgets ---------------------------------------------------------

TEST(WorkBudget, DcLadderStopsAtBudgetDeterministically) {
  sim::resetFailureStats();
  auto net = inverterDeck();
  sim::Mna mna(net, proc());

  core::EvalBudget budget(2);  // far less than the solve needs
  sim::DcOptions opts;
  opts.budget = &budget;
  const auto op = sim::dcOperatingPoint(mna, opts);
  EXPECT_FALSE(op.converged);
  EXPECT_EQ(op.status, EvalStatus::BudgetExhausted);
  EXPECT_TRUE(budget.exhausted());
  EXPECT_EQ(sim::evalFailureCount(EvalStatus::BudgetExhausted), 1u);

  // Identical budget, identical stop: the cutoff is counted, not timed.
  core::EvalBudget again(2);
  sim::DcOptions opts2;
  opts2.budget = &again;
  const auto op2 = sim::dcOperatingPoint(mna, opts2);
  EXPECT_EQ(op2.iterations, op.iterations);
  EXPECT_EQ(again.used(), budget.used());
}

TEST(WorkBudget, TransientReturnsPartialWaveformOnExhaustion) {
  auto net = rcDeck();
  sim::Mna mna(net, proc());
  const auto op = sim::dcOperatingPoint(mna);
  ASSERT_TRUE(op.converged);

  sim::TransientOptions full;
  full.tStop = 1e-6;
  full.tStep = 1e-8;
  const auto complete = sim::transientAnalysis(mna, op, full);
  ASSERT_TRUE(complete.completed);
  EXPECT_EQ(complete.status, EvalStatus::Ok);

  core::EvalBudget budget(20);
  sim::TransientOptions limited = full;
  limited.budget = &budget;
  const auto partial = sim::transientAnalysis(mna, op, limited);
  EXPECT_FALSE(partial.completed);
  EXPECT_EQ(partial.status, EvalStatus::BudgetExhausted);
  EXPECT_GT(partial.time.size(), 0u);  // partial results survive
  EXPECT_LT(partial.time.size(), complete.time.size());
}

TEST(WorkBudget, SimulationModelReportsBudgetExhausted) {
  sim::resetFailureStats();
  sizing::OpampTestbench tb;
  auto tmpl = sizing::twoStageTemplate(proc(), tb);
  sizing::SimModelOptions mopts;
  mopts.measureNoise = false;
  mopts.workBudget = 3;  // a two-stage bias point needs far more iterations
  const sizing::SimulationModel model(std::move(tmpl), proc(), mopts);

  const auto perf = model.evaluate(model.initialPoint());
  EXPECT_EQ(perf.count("_infeasible"), 1u);
  EXPECT_EQ(sizing::performanceStatus(perf), EvalStatus::BudgetExhausted);
  EXPECT_GE(sim::evalFailureCount(EvalStatus::BudgetExhausted), 1u);
}

TEST(WorkBudget, CooperativeCancelDegradesToBudgetExhausted) {
  sizing::OpampTestbench tb;
  auto tmpl = sizing::twoStageTemplate(proc(), tb);
  std::atomic<bool> cancel{true};
  sizing::SimModelOptions mopts;
  mopts.measureNoise = false;
  mopts.cancel = &cancel;
  const sizing::SimulationModel model(std::move(tmpl), proc(), mopts);

  const auto perf = model.evaluate(model.initialPoint());
  EXPECT_EQ(perf.count("_infeasible"), 1u);
  EXPECT_EQ(sizing::performanceStatus(perf), EvalStatus::BudgetExhausted);
}

// --- DC transfer sweep accounting -----------------------------------------

TEST(DcTransfer, SkippedPointsAreCountedNotDropped) {
  auto net = inverterDeck();
  sim::Mna mna(net, proc());

  // Three injected Newton failures = exactly one fully failed ladder climb:
  // the first sweep point is unconverged, all others solve normally.
  sim::FaultPlan plan;
  plan.failDcNewtonSolves = 3;
  sim::ScopedFaultInjection inject(plan);
  const auto res = sim::dcTransfer(mna, "VG", 0.0, 5.0, 11, "out");
  EXPECT_EQ(res.requested, 11u);
  EXPECT_EQ(res.skipped, 1u);
  EXPECT_EQ(res.curve.size(), 10u);
  EXPECT_EQ(res.status, EvalStatus::Ok);  // sweep itself finished
}

TEST(DcTransfer, BudgetExhaustionStopsSweepWithStatus) {
  auto net = inverterDeck();
  sim::Mna mna(net, proc());

  core::EvalBudget budget(30);  // enough for the first few points only
  sim::DcOptions opts;
  opts.budget = &budget;
  const auto res = sim::dcTransfer(mna, "VG", 0.0, 5.0, 21, "out", opts);
  EXPECT_EQ(res.status, EvalStatus::BudgetExhausted);
  EXPECT_GT(res.skipped, 0u);
  EXPECT_EQ(res.curve.size() + res.skipped, res.requested);
}

TEST(DcTransfer, OutputSwingReportsUnconvergedPoints) {
  auto net = inverterDeck();
  sim::Mna mna(net, proc());

  // Kill every ladder climb: 5 points x 3 rungs = 15 injected failures.
  sim::FaultPlan plan;
  plan.failDcNewtonSolves = 15;
  sim::ScopedFaultInjection inject(plan);
  const auto res = sim::dcTransfer(mna, "VG", 0.0, 5.0, 5, "out");
  EXPECT_EQ(res.skipped, 5u);

  const auto swing = sim::outputSwing(res);  // must not throw
  EXPECT_FALSE(swing.valid);
  EXPECT_EQ(swing.unconvergedPoints, 5u);
  EXPECT_EQ(swing.requestedPoints, 5u);
  EXPECT_NE(swing.describe().find("5 of 5 sweep points unconverged"), std::string::npos);
}

// --- AC under injected faults ---------------------------------------------

TEST(FaultInjection, AcSingularFactorizationEndsSweepWithStatus) {
  sim::resetFailureStats();
  auto net = rcDeck();
  sim::Mna mna(net, proc());
  const auto op = sim::dcOperatingPoint(mna);
  ASSERT_TRUE(op.converged);

  sim::FaultPlan plan;
  plan.failLuFactorizations = 1;
  sim::ScopedFaultInjection inject(plan);
  const auto sweep = sim::acAnalysis(mna, op, "out", sim::logspace(1.0, 1e6, 3));
  EXPECT_EQ(sweep.status, EvalStatus::SingularJacobian);
  EXPECT_EQ(sim::evalFailureCount(EvalStatus::SingularJacobian), 1u);
  // Measurement helpers treat the truncated sweep as data, not a crash.
  EXPECT_FALSE(sim::unityGainFrequency(sweep).has_value());
}

// --- containment boundaries -----------------------------------------------

TEST(Containment, SafeEvaluateAbsorbsThrowingModel) {
  sim::resetFailureStats();
  const ThrowingModel model;
  const auto perf = sizing::safeEvaluate(model, {2.0});
  EXPECT_EQ(perf.count("_infeasible"), 1u);
  EXPECT_EQ(sizing::performanceStatus(perf), EvalStatus::InternalError);
  EXPECT_EQ(sim::evalFailureCount(EvalStatus::InternalError), 1u);
}

TEST(Containment, SafeEvaluateTagsNanScores) {
  sim::resetFailureStats();
  const NanModel model;
  const auto perf = sizing::safeEvaluate(model, {2.0});
  EXPECT_EQ(perf.count("_infeasible"), 1u);
  EXPECT_EQ(sizing::performanceStatus(perf), EvalStatus::NanDetected);
  EXPECT_EQ(sim::evalFailureCount(EvalStatus::NanDetected), 1u);
}

TEST(Containment, CostFunctionIsTotalOverPoisonedModels) {
  const ThrowingModel throwing;
  sizing::SpecSet specs;
  specs.atLeast("gain_db", 60.0);
  const sizing::CostFunction cost(throwing, specs);
  const auto d = cost.detailed({2.0});
  EXPECT_TRUE(std::isfinite(d.cost));
  EXPECT_FALSE(d.feasible);
  EXPECT_EQ(d.status, EvalStatus::InternalError);

  const NanModel nan;
  const sizing::CostFunction nanCost(nan, specs);
  const auto dn = nanCost.detailed({2.0});
  EXPECT_TRUE(std::isfinite(dn.cost));
  EXPECT_EQ(dn.status, EvalStatus::NanDetected);
  // A clean evaluation of the same specs must beat the poisoned ones.
  const QuadraticModel good;
  const sizing::CostFunction goodCost(good, specs);
  EXPECT_LT(goodCost.detailed({3.0}).cost, d.cost);
  EXPECT_LT(goodCost.detailed({3.0}).cost, dn.cost);
}

TEST(Containment, ParallelForCapturedIsolatesFailingIndex) {
  const std::size_t n = 16;
  std::vector<double> clean(n, 0.0), faulted(n, 0.0);
  amsyn::core::parallelFor(n, [&](std::size_t i) { clean[i] = std::sqrt(1.0 + i); });

  const auto errs = amsyn::core::parallelForCaptured(n, [&](std::size_t i) {
    if (i == 5) throw std::runtime_error("poisoned index");
    faulted[i] = std::sqrt(1.0 + i);
  });
  ASSERT_EQ(errs.size(), n);
  EXPECT_NE(errs[5], nullptr);
  for (std::size_t i = 0; i < n; ++i) {
    if (i == 5) continue;
    EXPECT_EQ(errs[i], nullptr);
    EXPECT_EQ(faulted[i], clean[i]);  // siblings bit-identical to a clean run
  }
}

TEST(Containment, MeasureAmplifierSurvivesMalformedNetlist) {
  // No "out" node at all: verification reports infeasible data rather than
  // crashing the flow.
  auto net = ckt::parseDeck(R"(
V1 in 0 DC 5
R1 in x 1k
R2 x 0 1k
.end)");
  const auto perf = amsyn::core::measureAmplifier(net, proc());
  EXPECT_EQ(perf.count("_infeasible"), 1u);
  EXPECT_NE(sizing::performanceStatus(perf), EvalStatus::Ok);
}

// --- selection layers -----------------------------------------------------

TEST(Selection, IntervalSelectMarksNanScoresInfeasible) {
  sim::resetFailureStats();
  const double nan = std::numeric_limits<double>::quiet_NaN();
  topology::TopologyLibrary lib;
  topology::TopologyEntry good;
  good.name = "good";
  good.bounds["gain_db"] = amsyn::num::Interval(40.0, 90.0);
  lib.add(std::move(good));
  topology::TopologyEntry poisoned;
  poisoned.name = "poisoned";
  poisoned.bounds["gain_db"] = amsyn::num::Interval(nan, nan);
  lib.add(std::move(poisoned));

  sizing::SpecSet specs;
  specs.atLeast("gain_db", 60.0);
  const auto ranked = topology::intervalSelect(lib, specs);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0].name, "good");  // NaN must never outrank a real margin
  EXPECT_TRUE(ranked[0].feasible);
  EXPECT_FALSE(ranked[1].feasible);
  EXPECT_EQ(ranked[1].score, -std::numeric_limits<double>::infinity());
  ASSERT_FALSE(ranked[1].reasons.empty());
  EXPECT_NE(ranked[1].reasons.back().find("nan_detected"), std::string::npos);
  EXPECT_EQ(sim::evalFailureCount(EvalStatus::NanDetected), 1u);
}

TEST(Selection, GeneticRunWithPoisonedTopologyIsThreadCountInvariant) {
  topology::TopologyLibrary lib;
  lib.add({"good", std::make_shared<QuadraticModel>(), {}, {}, 1});
  lib.add({"poisoned", std::make_shared<ThrowingModel>(), {}, {}, 1});

  sizing::SpecSet specs;
  specs.atLeast("gain_db", 60.0);
  topology::GeneticOptions opts;
  opts.populationSize = 12;
  opts.generations = 4;
  opts.seed = 7;

  topology::GeneticResult serial, parallel;
  {
    amsyn::core::ScopedThreadPool pool(1);
    serial = topology::geneticSelectAndSize(lib, specs, opts);
  }
  {
    amsyn::core::ScopedThreadPool pool(8);
    parallel = topology::geneticSelectAndSize(lib, specs, opts);
  }
  // The poisoned topology's individuals get contained, deterministic costs,
  // so the whole run is bit-identical at any thread count.
  EXPECT_EQ(serial.topology, "good");
  EXPECT_EQ(serial.topology, parallel.topology);
  ASSERT_EQ(serial.x.size(), parallel.x.size());
  for (std::size_t i = 0; i < serial.x.size(); ++i) EXPECT_EQ(serial.x[i], parallel.x[i]);
  EXPECT_EQ(serial.cost, parallel.cost);
  EXPECT_EQ(serial.populationShare, parallel.populationShare);
}

TEST(Selection, WorstCaseCornerSurvivesThrowingCorners) {
  sim::resetFailureStats();
  const ckt::Process nominal = proc();
  // Corners that lower VDD make the model throw: the hunt must treat them
  // as violated (-1 margin) instead of crashing the vertex enumeration.
  class VddSensitiveModel : public sizing::PerformanceModel {
   public:
    explicit VddSensitiveModel(double minVdd) : minVdd_(minVdd) {}
    const std::vector<sizing::DesignVariable>& variables() const override {
      return vars_;
    }
    sizing::Performance evaluate(const std::vector<double>&) const override {
      if (vdd < minVdd_) throw std::runtime_error("brown-out");
      sizing::Performance p;
      p["gain_db"] = 20.0;
      return p;
    }
    double vdd = 0.0;

   private:
    double minVdd_;
    std::vector<sizing::DesignVariable> vars_{{"a", 1.0, 10.0, false, 1.0}};
  };

  manufacture::ModelFactory factory =
      [&](const ckt::Process& p) -> std::unique_ptr<sizing::PerformanceModel> {
    auto m = std::make_unique<VddSensitiveModel>(nominal.vdd);
    m->vdd = p.vdd;
    return m;
  };
  manufacture::VariationSpace space;
  sizing::SpecSet specs;
  specs.atLeast("gain_db", 10.0);
  const auto wc = manufacture::worstCaseCorner(factory, nominal, space, {2.0},
                                               specs.specs().front());
  EXPECT_EQ(wc.margin, -1.0);  // the throwing corners are the worst case
  EXPECT_GE(sim::evalFailureCount(EvalStatus::InternalError), 1u);
}

// --- counters -------------------------------------------------------------

TEST(FailureCounters, ResetClearsEveryReasonAndStrategy) {
  sim::recordEvalFailure(EvalStatus::NanDetected);
  sim::recordEvalFailure(EvalStatus::BadTopology);
  sim::recordDcStrategy(sim::DcStrategy::Gmin);
  sim::resetFailureStats();
  for (std::size_t i = 1; i < core::kEvalStatusCount; ++i)
    EXPECT_EQ(sim::evalFailureCount(static_cast<EvalStatus>(i)), 0u);
  EXPECT_EQ(sim::dcStrategyCount(sim::DcStrategy::Newton), 0u);
  EXPECT_EQ(sim::dcStrategyCount(sim::DcStrategy::Gmin), 0u);
  EXPECT_EQ(sim::dcStrategyCount(sim::DcStrategy::Source), 0u);
}

TEST(FailureCounters, OkIsNeverTallied) {
  sim::resetFailureStats();
  sim::recordEvalFailure(EvalStatus::Ok);
  for (std::size_t i = 0; i < core::kEvalStatusCount; ++i)
    EXPECT_EQ(sim::evalFailureCount(static_cast<EvalStatus>(i)), 0u);
}
