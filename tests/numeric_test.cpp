#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "numeric/anneal.hpp"
#include "numeric/interval.hpp"
#include "numeric/matrix.hpp"
#include "numeric/optimize.hpp"
#include "numeric/pade.hpp"
#include "numeric/polynomial.hpp"
#include "numeric/rng.hpp"
#include "numeric/sparse.hpp"
#include "numeric/stats.hpp"

namespace num = amsyn::num;

TEST(Matrix, IdentityMultiply) {
  auto id = num::MatrixD::identity(3);
  num::MatrixD a(3, 3);
  int v = 1;
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) a(i, j) = v++;
  auto b = id * a;
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) EXPECT_DOUBLE_EQ(b(i, j), a(i, j));
}

TEST(LU, SolvesKnownSystem) {
  num::MatrixD a(2, 2);
  a(0, 0) = 2;  a(0, 1) = 1;
  a(1, 0) = 1;  a(1, 1) = 3;
  const num::VecD x = num::solveDense(a, {5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(LU, TransposedSolveMatchesExplicitTranspose) {
  num::MatrixD a(3, 3);
  const double vals[9] = {4, 1, 0, 2, 5, 1, 0, 3, 6};
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) a(i, j) = vals[3 * i + j];
  num::MatrixD at(3, 3);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 3; ++j) at(i, j) = a(j, i);
  const num::VecD b = {1.0, -2.0, 3.0};
  const num::VecD x1 = num::LUD(a).solveTransposed(b);
  const num::VecD x2 = num::solveDense(at, b);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(x1[i], x2[i], 1e-12);
}

TEST(LU, DeterminantWithPivoting) {
  num::MatrixD a(2, 2);
  a(0, 0) = 0;  a(0, 1) = 2;   // forces a row swap
  a(1, 0) = 3;  a(1, 1) = 1;
  EXPECT_NEAR(num::LUD(a).determinant(), -6.0, 1e-12);
}

TEST(LU, ThrowsOnSingular) {
  num::MatrixD a(2, 2);
  a(0, 0) = 1;  a(0, 1) = 2;
  a(1, 0) = 2;  a(1, 1) = 4;
  EXPECT_THROW(num::LUD{a}, std::runtime_error);
}

TEST(LU, ComplexSolve) {
  using C = std::complex<double>;
  num::MatrixC a(2, 2);
  a(0, 0) = C{1, 1};  a(0, 1) = C{0, 0};
  a(1, 0) = C{0, 0};  a(1, 1) = C{0, 2};
  const num::VecC x = num::solveDense(a, num::VecC{C{2, 0}, C{4, 0}});
  EXPECT_NEAR(x[0].real(), 1.0, 1e-12);
  EXPECT_NEAR(x[0].imag(), -1.0, 1e-12);
  EXPECT_NEAR(x[1].imag(), -2.0, 1e-12);
}

TEST(Sparse, CompressMergesDuplicates) {
  num::SparseBuilder b(3);
  b.add(0, 0, 1.0);
  b.add(0, 0, 2.0);
  b.add(2, 1, -1.0);
  const auto csr = b.compress();
  const auto y = csr.multiply({1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 0.0);
  EXPECT_DOUBLE_EQ(y[2], -1.0);
}

TEST(Sparse, CGSolvesResistiveLadder) {
  // 1D Laplacian (Dirichlet): classic SPD test.
  const std::size_t n = 50;
  num::SparseBuilder b(n);
  for (std::size_t i = 0; i < n; ++i) {
    b.add(i, i, 2.0);
    if (i > 0) b.add(i, i - 1, -1.0);
    if (i + 1 < n) b.add(i, i + 1, -1.0);
  }
  std::vector<double> rhs(n, 0.0);
  rhs[0] = 1.0;  // unit boundary injection
  const auto res = num::conjugateGradient(b.compress(), rhs, 1e-12);
  ASSERT_TRUE(res.converged);
  // Analytic solution: x_i = (n - i) / (n + 1).
  for (std::size_t i = 0; i < n; ++i)
    EXPECT_NEAR(res.x[i], static_cast<double>(n - i) / (n + 1), 1e-8);
}

TEST(Polynomial, EvaluateAndDerivative) {
  const num::Polynomial p({1.0, -3.0, 2.0});  // 1 - 3x + 2x^2
  EXPECT_DOUBLE_EQ(p.evaluate(2.0), 3.0);
  const auto d = p.derivative();
  EXPECT_DOUBLE_EQ(d.evaluate(2.0), 5.0);  // -3 + 4x
}

TEST(Polynomial, RootsOfQuadratic) {
  const num::Polynomial p({2.0, -3.0, 1.0});  // (x-1)(x-2)
  auto roots = p.roots();
  ASSERT_EQ(roots.size(), 2u);
  std::sort(roots.begin(), roots.end(),
            [](auto a, auto b) { return a.real() < b.real(); });
  EXPECT_NEAR(roots[0].real(), 1.0, 1e-8);
  EXPECT_NEAR(roots[1].real(), 2.0, 1e-8);
  EXPECT_NEAR(roots[0].imag(), 0.0, 1e-8);
}

TEST(Polynomial, ComplexConjugateRoots) {
  const num::Polynomial p({5.0, 2.0, 1.0});  // roots -1 +/- 2i
  auto roots = p.roots();
  ASSERT_EQ(roots.size(), 2u);
  for (const auto& r : roots) {
    EXPECT_NEAR(r.real(), -1.0, 1e-8);
    EXPECT_NEAR(std::abs(r.imag()), 2.0, 1e-8);
  }
}

TEST(Pade, RecoversSinglePoleExactly) {
  // H(s) = 1 / (1 + s): moments 1, -1, 1, -1, ...  The order-2 Hankel matrix
  // of a 1-pole response is singular, so padeAuto must fall back to q = 1.
  const std::vector<double> m = {1.0, -1.0, 1.0, -1.0};
  const auto r = num::padeAuto(m);
  EXPECT_EQ(r.den.degree(), 1u);
  const std::complex<double> s{0.0, 0.3};
  const auto exact = 1.0 / (1.0 + s);
  const auto approx = r.evaluate(s);
  EXPECT_NEAR(std::abs(approx - exact), 0.0, 1e-6);
}

TEST(Pade, PoleResidueMatchesTwoPoleSystem) {
  // H(s) = 1/((1+s)(1+s/10)); moments from partial fractions.
  // H(s) = (10/9)/(1+s) - (1/9)/(1+s/10)
  auto moment = [](int k) {
    return (10.0 / 9.0) * std::pow(-1.0, k) - (1.0 / 9.0) * std::pow(-0.1, k);
  };
  std::vector<double> m;
  for (int k = 0; k < 4; ++k) m.push_back(moment(k));
  const auto pr = num::toPoleResidue(num::padeApproximant(m, 2));
  ASSERT_EQ(pr.poles.size(), 2u);
  std::vector<double> poleRe = {pr.poles[0].real(), pr.poles[1].real()};
  std::sort(poleRe.begin(), poleRe.end());
  EXPECT_NEAR(poleRe[0], -10.0, 1e-4);
  EXPECT_NEAR(poleRe[1], -1.0, 1e-6);
}

TEST(Pade, StepResponseApproachesDc) {
  const std::vector<double> m = {2.0, -2.0, 2.0, -2.0};  // 2/(1+s)
  const auto pr = num::toPoleResidue(num::padeAuto(m));
  EXPECT_NEAR(pr.step(50.0), 2.0, 1e-3);
  EXPECT_NEAR(pr.step(0.0), 0.0, 1e-9);
}

TEST(Interval, ArithmeticBounds) {
  const num::Interval a{1.0, 2.0}, b{-1.0, 3.0};
  const auto sum = a + b;
  EXPECT_DOUBLE_EQ(sum.lo(), 0.0);
  EXPECT_DOUBLE_EQ(sum.hi(), 5.0);
  const auto prod = a * b;
  EXPECT_DOUBLE_EQ(prod.lo(), -2.0);
  EXPECT_DOUBLE_EQ(prod.hi(), 6.0);
}

TEST(Interval, DivisionByZeroIntervalThrows) {
  EXPECT_THROW(num::Interval(1.0, 2.0) / num::Interval(-1.0, 1.0), std::domain_error);
}

TEST(Interval, EvenPowerStraddlingZero) {
  const auto sq = num::pow(num::Interval{-2.0, 1.0}, 2);
  EXPECT_DOUBLE_EQ(sq.lo(), 0.0);
  EXPECT_DOUBLE_EQ(sq.hi(), 4.0);
}

TEST(Interval, ContainmentSemantics) {
  const num::Interval a{0.0, 10.0};
  EXPECT_TRUE(a.contains(5.0));
  EXPECT_TRUE(a.contains(num::Interval{1.0, 2.0}));
  EXPECT_FALSE(a.contains(num::Interval{5.0, 11.0}));
  EXPECT_TRUE(a.intersects(num::Interval{9.0, 20.0}));
  EXPECT_FALSE(a.intersects(num::Interval{10.5, 20.0}));
}

TEST(NelderMead, MinimizesRosenbrock) {
  auto rosen = [](const std::vector<double>& x) {
    const double a = 1.0 - x[0];
    const double b = x[1] - x[0] * x[0];
    return a * a + 100.0 * b * b;
  };
  num::BoxBounds box{{-5.0, -5.0}, {5.0, 5.0}};
  num::NelderMeadOptions opts;
  opts.maxEvaluations = 5000;
  const auto res = num::nelderMead(rosen, {-1.0, 2.0}, box, opts);
  EXPECT_NEAR(res.x[0], 1.0, 1e-3);
  EXPECT_NEAR(res.x[1], 1.0, 1e-3);
}

TEST(NelderMead, RespectsBounds) {
  auto f = [](const std::vector<double>& x) { return -x[0]; };  // pushes to upper bound
  num::BoxBounds box{{0.0}, {2.0}};
  const auto res = num::nelderMead(f, {1.0}, box);
  EXPECT_LE(res.x[0], 2.0 + 1e-12);
  EXPECT_NEAR(res.x[0], 2.0, 1e-3);
}

TEST(CoordinateSearch, FindsQuadraticMinimum) {
  auto f = [](const std::vector<double>& x) {
    return (x[0] - 0.3) * (x[0] - 0.3) + (x[1] + 0.7) * (x[1] + 0.7);
  };
  num::BoxBounds box{{-2.0, -2.0}, {2.0, 2.0}};
  const auto res = num::coordinateSearch(f, {0.0, 0.0}, box);
  EXPECT_NEAR(res.x[0], 0.3, 1e-4);
  EXPECT_NEAR(res.x[1], -0.7, 1e-4);
}

TEST(Anneal, OptimizesNoisyQuadratic) {
  // State: one double; moves perturb it.  Global minimum at x = 3.
  double x = -10.0, prev = x, best = x;
  amsyn::num::AnnealProblem prob;
  prob.cost = [&] { return (x - 3.0) * (x - 3.0); };
  prob.propose = [&](num::Rng& rng) {
    prev = x;
    x += rng.uniform(-1.0, 1.0);
  };
  prob.undo = [&] { x = prev; };
  prob.snapshot = [&] { best = x; };
  num::AnnealOptions opts;
  opts.seed = 42;
  const auto stats = num::anneal(prob, opts);
  EXPECT_NEAR(best, 3.0, 0.1);
  EXPECT_GT(stats.movesAccepted, 0u);
}

TEST(Stats, MeanVarPercentile) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(num::mean(xs), 3.0);
  EXPECT_DOUBLE_EQ(num::variance(xs), 2.5);
  EXPECT_DOUBLE_EQ(num::percentile(xs, 50), 3.0);
  EXPECT_DOUBLE_EQ(num::percentile(xs, 0), 1.0);
  EXPECT_DOUBLE_EQ(num::percentile(xs, 100), 5.0);
}

TEST(Stats, WilsonIntervalBrackets) {
  const auto p = num::wilsonInterval(90, 100);
  EXPECT_NEAR(p.estimate, 0.9, 1e-12);
  EXPECT_LT(p.lo95, 0.9);
  EXPECT_GT(p.hi95, 0.9);
  EXPECT_GT(p.lo95, 0.8);
}

TEST(Rng, Deterministic) {
  num::Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
}
