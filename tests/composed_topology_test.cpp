// Property + differential suite for the generated topology space
// (topology/blocks.hpp, topology/compose.hpp):
//   * the composed space is large enough, valid, uniquely named, and fully
//     backed by registered netlist builders and derived bounds;
//   * the two legacy cells are reproduced as composition instances with
//     *bit-identical* models and netlists (differential against the
//     hand-written OtaEquationModel / TwoStageEquationModel and
//     buildOta / buildTwoStageOpamp);
//   * every generated topology builds a sane netlist whose canonical digest
//     is stable under declaration shuffles and across rebuilds;
//   * selection over the space — boundary, rule-based, and genetic — is
//     bit-identical across thread counts and eval-cache states.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <set>
#include <string>
#include <vector>

#include "circuit/canonical.hpp"
#include "circuit/netlist.hpp"
#include "circuit/process.hpp"
#include "core/evalcache.hpp"
#include "core/parallel.hpp"
#include "knowledge/opamp_plans.hpp"
#include "numeric/rng.hpp"
#include "sizing/builders.hpp"
#include "sizing/eqmodel.hpp"
#include "sizing/opamp.hpp"
#include "topology/blocks.hpp"
#include "topology/compose.hpp"
#include "topology/genetic.hpp"
#include "topology/library.hpp"
#include "topology/select.hpp"

namespace tp = amsyn::topology;
namespace sz = amsyn::sizing;
namespace ckt = amsyn::circuit;
namespace core = amsyn::core;
namespace cache = amsyn::core::cache;
namespace num = amsyn::num;
namespace kn = amsyn::knowledge;

namespace {

constexpr double kLoadCap = 5e-12;

const ckt::Process& proc() { return ckt::defaultProcess(); }

const tp::TopologyLibrary& genLib() {
  static const tp::TopologyLibrary l =
      tp::amplifierLibrary(proc(), kLoadCap, tp::TopologySpace::Generated);
  return l;
}

/// Bitwise double equality (the differential tests' currency).
::testing::AssertionResult bitEq(double a, double b) {
  if (std::memcmp(&a, &b, sizeof a) == 0) return ::testing::AssertionSuccess();
  return ::testing::AssertionFailure()
         << a << " != " << b << " (bitwise; delta " << a - b << ")";
}

/// Deterministic sample points over a model's box (seeded, log-aware).
std::vector<std::vector<double>> samplePoints(const sz::PerformanceModel& m,
                                              std::size_t count, std::uint64_t seed) {
  num::Rng rng(seed);
  const auto& vars = m.variables();
  std::vector<std::vector<double>> pts;
  pts.push_back(m.initialPoint());
  for (std::size_t p = 0; p + 1 < count; ++p) {
    std::vector<double> x(vars.size());
    for (std::size_t i = 0; i < vars.size(); ++i) {
      const double u = rng.uniform();
      const auto& v = vars[i];
      x[i] = (v.logScale && v.lo > 0) ? v.lo * std::pow(v.hi / v.lo, u)
                                      : v.lo + u * (v.hi - v.lo);
    }
    pts.push_back(std::move(x));
  }
  return pts;
}

void expectSameDevices(const ckt::Netlist& a, const ckt::Netlist& b,
                       const std::string& label) {
  ASSERT_EQ(a.devices().size(), b.devices().size()) << label;
  for (std::size_t i = 0; i < a.devices().size(); ++i) {
    const auto& da = a.devices()[i];
    const auto& db = b.devices()[i];
    EXPECT_EQ(da.name, db.name) << label << " device " << i;
    EXPECT_EQ(da.type, db.type) << label << " " << da.name;
    ASSERT_EQ(da.nodes.size(), db.nodes.size()) << label << " " << da.name;
    for (std::size_t n = 0; n < da.nodes.size(); ++n)
      EXPECT_EQ(a.nodeName(da.nodes[n]), b.nodeName(db.nodes[n]))
          << label << " " << da.name << " terminal " << n;
    EXPECT_TRUE(bitEq(da.value, db.value)) << label << " " << da.name;
    EXPECT_TRUE(bitEq(da.acMag, db.acMag)) << label << " " << da.name;
    if (da.type == ckt::DeviceType::Mos) {
      EXPECT_EQ(da.mos.type, db.mos.type) << label << " " << da.name;
      EXPECT_TRUE(bitEq(da.mos.w, db.mos.w)) << label << " " << da.name;
      EXPECT_TRUE(bitEq(da.mos.l, db.mos.l)) << label << " " << da.name;
    }
  }
  EXPECT_EQ(ckt::canonicalNetlistDigest(a), ckt::canonicalNetlistDigest(b)) << label;
}

/// RAII eval-cache configuration guard (pattern from evalcache_test).
struct CacheGuard {
  CacheGuard()
      : c(cache::EvalCache::instance()),
        enabled(c.enabled()),
        capacity(c.capacity()),
        quantum(c.quantum()) {}
  ~CacheGuard() {
    c.setEnabled(enabled);
    c.setCapacity(capacity);
    c.setQuantum(quantum);
    c.clear();
  }
  cache::EvalCache& c;
  bool enabled;
  std::size_t capacity;
  double quantum;
};

}  // namespace

// ---------------------------------------------------------------------------
// Space shape

TEST(ComposedSpace, EnumerationIsLargeValidAndUniquelyNamed) {
  const auto structs = tp::enumerateOpampStructures();
  EXPECT_GE(structs.size(), 50u);
  std::set<std::string> names;
  std::size_t legacy = 0;
  for (const auto& s : structs) {
    std::string why;
    EXPECT_TRUE(s.valid(&why)) << s.name() << ": " << why;
    EXPECT_TRUE(names.insert(s.name()).second) << "duplicate name " << s.name();
    if (s.isLegacyOta() || s.isLegacyTwoStage()) ++legacy;
  }
  EXPECT_EQ(legacy, 2u);
  EXPECT_TRUE(names.count("five-transistor-ota"));
  EXPECT_TRUE(names.count("two-stage-miller"));
}

TEST(ComposedSpace, EnumerationOrderIsStableAcrossCalls) {
  const auto a = tp::enumerateOpampStructures();
  const auto b = tp::enumerateOpampStructures();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].name(), b[i].name()) << i;
}

TEST(ComposedSpace, ValidityRulesActuallyPrune) {
  tp::OpampStructure s;  // legacy OTA shape
  s.comp = tp::Compensation::Miller;
  EXPECT_FALSE(s.valid());  // compensation without a second stage
  s.comp = tp::Compensation::None;
  s.secondStage = true;
  EXPECT_FALSE(s.valid());  // second stage without compensation
  s.comp = tp::Compensation::Miller;
  EXPECT_TRUE(s.valid());
  s.secondStage = false;
  s.comp = tp::Compensation::None;
  s.inputCascode = s.loadCascode = s.tailCascode = true;
  EXPECT_FALSE(s.valid());  // headroom rule
}

TEST(ComposedSpace, LegacyComplexityFiguresMatchHandWrittenEntries) {
  for (const auto& s : tp::enumerateOpampStructures()) {
    if (s.isLegacyOta()) {
      EXPECT_EQ(s.deviceCount(), 6);
    }
    if (s.isLegacyTwoStage()) {
      EXPECT_EQ(s.deviceCount(), 9);
    }
  }
}

// ---------------------------------------------------------------------------
// Generated library

TEST(GeneratedLibrary, EveryEntryHasBuilderBoundsAndRules) {
  const auto& lib = genLib();
  EXPECT_GE(lib.size(), 50u);
  const auto& reg = sz::NetlistBuilderRegistry::instance();
  for (const auto& e : lib.entries()) {
    EXPECT_NE(reg.find(e.name), nullptr) << e.name;
    EXPECT_FALSE(e.bounds.empty()) << e.name;
    EXPECT_FALSE(e.rules.empty()) << e.name;
    EXPECT_GT(e.complexity, 0) << e.name;
    // The widening fix's contract across the whole space: strictly positive
    // performances keep strictly positive lower bounds.
    for (const char* perf : {"power", "ugf", "area", "noise_nv"}) {
      ASSERT_TRUE(e.bounds.count(perf)) << e.name << " " << perf;
      EXPECT_GT(e.bounds.at(perf).lo(), 0.0) << e.name << " " << perf;
    }
    EXPECT_GE(e.bounds.at("swing").lo(), 0.0) << e.name;
  }
}

TEST(GeneratedLibrary, ByNameWorksAndMissListsTheSpace) {
  EXPECT_NO_THROW(genLib().byName("five-transistor-ota"));
  EXPECT_NO_THROW(genLib().byName("gen/dpp.mirs.tails"));
  try {
    genLib().byName("no-such-topology");
    FAIL() << "expected out_of_range";
  } catch (const std::out_of_range& e) {
    EXPECT_NE(std::string(e.what()).find("gen/"), std::string::npos) << e.what();
  }
}

TEST(GeneratedLibrary, RebuildIsBitIdentical) {
  // Deterministic construction: a second library (same process, same load)
  // has the same entry order, bounds, and complexities, bit for bit.
  const auto& a = genLib();
  const auto b = tp::generatedAmplifierLibrary(proc(), kLoadCap);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto& ea = a.entries()[i];
    const auto& eb = b.entries()[i];
    EXPECT_EQ(ea.name, eb.name);
    EXPECT_EQ(ea.complexity, eb.complexity);
    ASSERT_EQ(ea.bounds.size(), eb.bounds.size()) << ea.name;
    for (const auto& [k, v] : ea.bounds) {
      ASSERT_TRUE(eb.bounds.count(k)) << ea.name << " " << k;
      EXPECT_TRUE(bitEq(v.lo(), eb.bounds.at(k).lo())) << ea.name << " " << k;
      EXPECT_TRUE(bitEq(v.hi(), eb.bounds.at(k).hi())) << ea.name << " " << k;
    }
  }
}

// ---------------------------------------------------------------------------
// Legacy cells as composition instances: bit-identical models

TEST(LegacyReproduction, OtaModelMatchesBitForBit) {
  const sz::OtaEquationModel hand(proc(), kLoadCap);
  const auto& composed = *genLib().byName("five-transistor-ota").model;

  const auto& hv = hand.variables();
  const auto& cv = composed.variables();
  ASSERT_EQ(hv.size(), cv.size());
  for (std::size_t i = 0; i < hv.size(); ++i) {
    EXPECT_EQ(hv[i].name, cv[i].name);
    EXPECT_TRUE(bitEq(hv[i].lo, cv[i].lo)) << hv[i].name;
    EXPECT_TRUE(bitEq(hv[i].hi, cv[i].hi)) << hv[i].name;
    EXPECT_EQ(hv[i].logScale, cv[i].logScale) << hv[i].name;
  }

  for (const auto& x : samplePoints(hand, 60, 101)) {
    const auto ph = hand.evaluate(x);
    const auto pc = composed.evaluate(x);
    ASSERT_EQ(ph.size(), pc.size());
    for (const auto& [k, v] : ph) {
      ASSERT_TRUE(pc.count(k)) << k;
      EXPECT_TRUE(bitEq(v, pc.at(k))) << k << " at x0=" << x[0];
    }
  }
}

TEST(LegacyReproduction, TwoStageModelMatchesBitForBit) {
  const sz::TwoStageEquationModel hand(proc(), kLoadCap);
  const auto& composed = *genLib().byName("two-stage-miller").model;

  const auto& hv = hand.variables();
  const auto& cv = composed.variables();
  ASSERT_EQ(hv.size(), cv.size());
  for (std::size_t i = 0; i < hv.size(); ++i) {
    EXPECT_EQ(hv[i].name, cv[i].name);
    EXPECT_TRUE(bitEq(hv[i].lo, cv[i].lo)) << hv[i].name;
    EXPECT_TRUE(bitEq(hv[i].hi, cv[i].hi)) << hv[i].name;
    EXPECT_EQ(hv[i].logScale, cv[i].logScale) << hv[i].name;
  }

  for (const auto& x : samplePoints(hand, 60, 103)) {
    const auto ph = hand.evaluate(x);
    const auto pc = composed.evaluate(x);
    ASSERT_EQ(ph.size(), pc.size());
    for (const auto& [k, v] : ph) {
      ASSERT_TRUE(pc.count(k)) << k;
      EXPECT_TRUE(bitEq(v, pc.at(k))) << k << " at x0=" << x[0];
    }
  }
}

TEST(LegacyReproduction, BoundsMatchTheLegacyLibraryBitForBit) {
  // Same models, same grids => same sampled hulls, same widened bounds.
  const auto legacy = tp::amplifierLibrary(proc(), kLoadCap, tp::TopologySpace::Legacy);
  for (const char* name : {"five-transistor-ota", "two-stage-miller"}) {
    const auto& bl = legacy.byName(name).bounds;
    const auto& bg = genLib().byName(name).bounds;
    ASSERT_EQ(bl.size(), bg.size()) << name;
    for (const auto& [k, v] : bl) {
      ASSERT_TRUE(bg.count(k)) << name << " " << k;
      EXPECT_TRUE(bitEq(v.lo(), bg.at(k).lo())) << name << " " << k;
      EXPECT_TRUE(bitEq(v.hi(), bg.at(k).hi())) << name << " " << k;
    }
  }
}

// ---------------------------------------------------------------------------
// Legacy cells as composition instances: bit-identical netlists

TEST(LegacyReproduction, OtaNetlistMatchesDeviceForDevice) {
  const sz::OtaEquationModel hand(proc(), kLoadCap);
  tp::OpampStructure s;  // default-constructed == legacy OTA
  ASSERT_TRUE(s.isLegacyOta());
  const sz::OpampTestbench tb;
  for (const auto& x : samplePoints(hand, 8, 107)) {
    const auto p = hand.toParams(x);
    sz::OtaParams op = p;
    const auto handNet = sz::buildOta(op, proc(), tb);
    const auto compNet = tp::buildComposedOpamp(s, x, proc(), tb);
    expectSameDevices(handNet, compNet, "ota");
  }
}

TEST(LegacyReproduction, TwoStageNetlistMatchesDeviceForDevice) {
  const sz::TwoStageEquationModel hand(proc(), kLoadCap);
  tp::OpampStructure s;
  s.secondStage = true;
  s.comp = tp::Compensation::Miller;
  ASSERT_TRUE(s.isLegacyTwoStage());
  const sz::OpampTestbench tb;
  for (const auto& x : samplePoints(hand, 8, 109)) {
    const auto handNet = sz::buildTwoStageOpamp(hand.toParams(x), proc(), tb);
    const auto compNet = tp::buildComposedOpamp(s, x, proc(), tb);
    expectSameDevices(handNet, compNet, "two-stage");
  }
}

// ---------------------------------------------------------------------------
// Every generated topology: netlist sanity + digest stability

TEST(GeneratedNetlists, EveryTopologyBuildsASaneNetlist) {
  const sz::OpampTestbench tb;
  const auto& reg = sz::NetlistBuilderRegistry::instance();
  for (const auto& e : genLib().entries()) {
    const auto* builder = reg.find(e.name);
    ASSERT_NE(builder, nullptr) << e.name;
    const auto x = e.model->initialPoint();
    const auto net = (*builder)(x, proc(), tb);

    // Core I/O nodes exist.
    for (const char* node : {"vdd", "inp", "inn", "out", "nbias", "tail"})
      EXPECT_TRUE(net.findNode(node).has_value()) << e.name << " missing " << node;

    const auto* model = dynamic_cast<const tp::ComposedOpampModel*>(e.model.get());
    ASSERT_NE(model, nullptr) << e.name;
    const auto& s = model->structure();

    std::size_t mosCount = 0, railCount = 0;
    for (const auto& d : net.devices()) {
      if (d.type == ckt::DeviceType::Mos) {
        ++mosCount;
        ASSERT_EQ(d.nodes.size(), 4u) << e.name << " " << d.name;
        EXPECT_GE(d.mos.w, proc().minW) << e.name << " " << d.name;
        EXPECT_GT(d.mos.l, 0.0) << e.name << " " << d.name;
        // Bulk hygiene: NMOS bulks tie to ground, PMOS bulks to vdd.
        const std::string bulk = net.nodeName(d.nodes[3]);
        if (d.mos.type == ckt::MosType::Nmos)
          EXPECT_EQ(bulk, "0") << e.name << " " << d.name;
        else
          EXPECT_EQ(bulk, "vdd") << e.name << " " << d.name;
      }
      if (d.name == "VCASN" || d.name == "VCASP") ++railCount;
    }
    // MOS count follows the structure (deviceCount minus compensation
    // passives); every cascode rail the structure needs is present.
    int passives = 0;
    if (s.secondStage) passives += 1;                              // CC
    if (s.comp == tp::Compensation::MillerNulled) passives += 1;   // RZ
    EXPECT_EQ(static_cast<int>(mosCount), s.deviceCount() - passives) << e.name;
    const bool anyCascode =
        s.inputCascode || s.loadCascode || s.tailCascode || s.sinkCascode;
    EXPECT_EQ(railCount > 0, anyCascode) << e.name;

    // Every model-predicted performance is a finite number at mid-box.
    for (const auto& [k, v] : e.model->evaluate(x))
      EXPECT_TRUE(std::isfinite(v)) << e.name << " " << k << "=" << v;
  }
}

TEST(GeneratedNetlists, CanonicalDigestSurvivesDeclarationShuffle) {
  const sz::OpampTestbench tb;
  const auto& reg = sz::NetlistBuilderRegistry::instance();
  for (const auto& e : genLib().entries()) {
    const auto* builder = reg.find(e.name);
    const auto x = e.model->initialPoint();
    auto net = (*builder)(x, proc(), tb);
    const auto digest = ckt::canonicalNetlistDigest(net);

    auto shuffled = net;
    std::reverse(shuffled.devices().begin(), shuffled.devices().end());
    EXPECT_EQ(ckt::canonicalNetlistDigest(shuffled), digest) << e.name;

    std::rotate(shuffled.devices().begin(), shuffled.devices().begin() + 3,
                shuffled.devices().end());
    EXPECT_EQ(ckt::canonicalNetlistDigest(shuffled), digest) << e.name;

    // And a from-scratch rebuild reproduces the digest exactly.
    const auto again = (*builder)(x, proc(), tb);
    EXPECT_EQ(ckt::canonicalNetlistDigest(again), digest) << e.name;
  }
}

// ---------------------------------------------------------------------------
// Selection over the generated space: deterministic and thread/cache
// invariant

TEST(GeneratedSelection, BoundaryAndRuleSelectionAreDeterministic) {
  sz::SpecSet specs;
  specs.atLeast("gain_db", 60.0).atLeast("ugf", 2e6).atLeast("pm", 55.0).minimize("power",
                                                                                  0.5, 1e-3);
  const auto i1 = tp::intervalSelect(genLib(), specs);
  const auto i2 = tp::intervalSelect(tp::generatedAmplifierLibrary(proc(), kLoadCap), specs);
  ASSERT_EQ(i1.size(), i2.size());
  for (std::size_t k = 0; k < i1.size(); ++k) {
    EXPECT_EQ(i1[k].name, i2[k].name) << k;
    EXPECT_EQ(i1[k].feasible, i2[k].feasible) << i1[k].name;
    EXPECT_TRUE(bitEq(i1[k].score, i2[k].score)) << i1[k].name;
  }
  const auto r1 = tp::ruleBasedSelect(genLib(), specs);
  const auto r2 = tp::ruleBasedSelect(genLib(), specs);
  ASSERT_EQ(r1.size(), r2.size());
  for (std::size_t k = 0; k < r1.size(); ++k) {
    EXPECT_EQ(r1[k].name, r2[k].name) << k;
    EXPECT_TRUE(bitEq(r1[k].score, r2[k].score)) << r1[k].name;
  }
}

TEST(GeneratedSelection, LegacyCellsStillWinTheirHomeTurf) {
  // The generated space must not displace the validated cells on the specs
  // they were written for: rules + provenance keep them ranked first.
  sz::SpecSet high;
  high.atLeast("gain_db", 70.0).atLeast("ugf", 3e6).atLeast("pm", 55.0);
  EXPECT_EQ(tp::ruleBasedSelect(genLib(), high)[0].name, "two-stage-miller");
  sz::SpecSet low;
  low.atLeast("gain_db", 35.0).atLeast("ugf", 3e7).minimize("power", 1.0, 1e-3);
  EXPECT_EQ(tp::ruleBasedSelect(genLib(), low)[0].name, "five-transistor-ota");
}

TEST(GeneratedSelection, GeneticIsBitIdenticalAcrossThreadsAndCache) {
  CacheGuard guard;
  sz::SpecSet specs;
  specs.atLeast("gain_db", 65.0).atLeast("ugf", 2e6).atLeast("pm", 50.0).minimize("power",
                                                                                  0.5, 1e-3);
  auto run = [&](bool cacheOn, std::size_t threads) {
    cache::EvalCache::instance().clear();
    cache::EvalCache::instance().setEnabled(cacheOn);
    core::ScopedThreadPool pool(threads);
    tp::GeneticOptions opts;
    opts.seed = 41;
    opts.populationSize = 24;
    opts.generations = 12;
    return tp::geneticSelectAndSize(genLib(), specs, opts);
  };
  const auto base = run(false, 1);
  for (const bool cacheOn : {false, true})
    for (const std::size_t threads : {std::size_t{1}, std::size_t{8}}) {
      const auto r = run(cacheOn, threads);
      EXPECT_EQ(r.topology, base.topology) << cacheOn << "/" << threads;
      EXPECT_TRUE(bitEq(r.cost, base.cost)) << cacheOn << "/" << threads;
      ASSERT_EQ(r.x.size(), base.x.size());
      for (std::size_t i = 0; i < r.x.size(); ++i)
        EXPECT_TRUE(bitEq(r.x[i], base.x[i])) << cacheOn << "/" << threads << " x" << i;
      EXPECT_EQ(r.evaluations, base.evaluations);
    }
}

// ---------------------------------------------------------------------------
// Plan seeds

TEST(PlanSeeds, LegacyTwoStageSeedMatchesTheKnowledgePlan) {
  sz::SpecSet specs;
  specs.atLeast("gain_db", 60.0).atLeast("ugf", 2e6).atLeast("pm", 60.0);
  tp::OpampStructure s;
  s.secondStage = true;
  s.comp = tp::Compensation::Miller;
  const auto seed = tp::composedPlanSeed(s, specs, proc(), kLoadCap);
  ASSERT_TRUE(seed.has_value());
  ASSERT_EQ(seed->size(), s.variables().size());

  const auto planIn = kn::opampPlanInputs(specs, kLoadCap);
  ASSERT_TRUE(planIn.has_value());
  const auto res = kn::twoStageOpampPlan().execute(proc(), *planIn);
  ASSERT_TRUE(res.success);
  const auto direct = kn::extractTwoStageDesign(res.context);
  ASSERT_EQ(seed->size(), direct.size());
  for (std::size_t i = 0; i < direct.size(); ++i)
    EXPECT_TRUE(bitEq((*seed)[i], direct[i])) << i;
}

TEST(PlanSeeds, EveryStructureGetsAnEvaluableSeed) {
  // Modest gain so both family plans (OTA and two-stage) can complete —
  // single-stage plans legitimately backtrack out of a 55+ dB ask.
  sz::SpecSet specs;
  specs.atLeast("gain_db", 35.0).atLeast("ugf", 2e6).atLeast("pm", 60.0);
  for (const auto& s : tp::enumerateOpampStructures()) {
    const auto seed = tp::composedPlanSeed(s, specs, proc(), kLoadCap);
    ASSERT_TRUE(seed.has_value()) << s.name();
    ASSERT_EQ(seed->size(), s.variables().size()) << s.name();
    // Seeds stay inside the variable box and evaluate to finite numbers.
    const auto& vars = s.variables();
    for (std::size_t i = 0; i < vars.size(); ++i) {
      EXPECT_GE((*seed)[i], vars[i].lo) << s.name() << " " << vars[i].name;
      EXPECT_LE((*seed)[i], vars[i].hi) << s.name() << " " << vars[i].name;
    }
    const tp::ComposedOpampModel model(s, proc(), kLoadCap);
    for (const auto& [k, v] : model.evaluate(*seed))
      EXPECT_TRUE(std::isfinite(v)) << s.name() << " " << k;
  }
  // Specs without the required gain_db+ugf pair yield no seed.
  sz::SpecSet bare;
  bare.atLeast("pm", 60.0);
  EXPECT_FALSE(tp::composedPlanSeed(tp::OpampStructure{}, bare, proc(), kLoadCap));
}
