#include <gtest/gtest.h>

#include "knowledge/opamp_plans.hpp"
#include "knowledge/plan.hpp"
#include "sizing/eqmodel.hpp"

namespace kn = amsyn::knowledge;
namespace sz = amsyn::sizing;
namespace ckt = amsyn::circuit;

namespace {
const ckt::Process& proc() { return ckt::defaultProcess(); }
}

TEST(PlanEngine, RunsStepsInOrder) {
  kn::DesignPlan plan("trivial");
  plan.step("a", [](kn::PlanContext& ctx) {
    ctx.set("x", 2.0);
    return kn::StepResult::success();
  });
  plan.step("b", [](kn::PlanContext& ctx) {
    ctx.set("y", ctx.get("x") * 3.0);
    return kn::StepResult::success();
  });
  const auto res = plan.execute(proc(), {});
  ASSERT_TRUE(res.success);
  EXPECT_DOUBLE_EQ(res.context.get("y"), 6.0);
  EXPECT_EQ(res.trace.size(), 2u);
}

TEST(PlanEngine, FailsFastOnMissingInput) {
  kn::DesignPlan plan("needs-input");
  plan.input("spec.gain");
  plan.step("never", [](kn::PlanContext&) { return kn::StepResult::success(); });
  const auto res = plan.execute(proc(), {});
  EXPECT_FALSE(res.success);
  EXPECT_EQ(res.failedStep, "(inputs)");
}

TEST(PlanEngine, BacktracksViaKnob) {
  // Step fails until the knob drops below 0.3; each retry scales it by 0.5.
  kn::DesignPlan plan("backtracking");
  plan.knob("k", 1.0, 0.01, 2.0);
  plan.step("check", [](kn::PlanContext& ctx) {
    if (ctx.get("k") > 0.3) return kn::StepResult::retry("too big", "k", 0.5);
    return kn::StepResult::success();
  });
  const auto res = plan.execute(proc(), {});
  ASSERT_TRUE(res.success);
  EXPECT_EQ(res.retries, 2u);  // 1.0 -> 0.5 -> 0.25
  EXPECT_DOUBLE_EQ(res.context.get("k"), 0.25);
}

TEST(PlanEngine, KnobRangeExhaustionFails) {
  kn::DesignPlan plan("stuck");
  plan.knob("k", 1.0, 0.5, 2.0);
  plan.step("check", [](kn::PlanContext& ctx) {
    (void)ctx;
    return kn::StepResult::retry("never satisfied", "k", 0.5);
  });
  const auto res = plan.execute(proc(), {});
  EXPECT_FALSE(res.success);
  EXPECT_GE(res.retries, 1u);  // clamped at 0.5, then detected as pinned
}

TEST(PlanEngine, SubplanSharesContext) {
  kn::DesignPlan inner("inner");
  inner.step("double", [](kn::PlanContext& ctx) {
    ctx.set("v", ctx.get("v") * 2.0);
    return kn::StepResult::success();
  });
  kn::DesignPlan outer("outer");
  outer.step("init", [](kn::PlanContext& ctx) {
    ctx.set("v", 5.0);
    return kn::StepResult::success();
  });
  outer.subplan(inner);
  outer.step("final", [](kn::PlanContext& ctx) {
    ctx.set("w", ctx.get("v") + 1.0);
    return kn::StepResult::success();
  });
  const auto res = outer.execute(proc(), {});
  ASSERT_TRUE(res.success);
  EXPECT_DOUBLE_EQ(res.context.get("w"), 11.0);
}

TEST(TwoStagePlan, MeetsModerateSpecs) {
  const auto plan = kn::twoStageOpampPlan();
  const auto res = plan.execute(proc(), {{"spec.gain_db", 70.0},
                                         {"spec.ugf", 5e6},
                                         {"spec.pm", 60.0},
                                         {"spec.slew", 5e6},
                                         {"spec.cload", 5e-12}});
  ASSERT_TRUE(res.success) << (res.trace.empty() ? "" : res.trace.back());

  // Verify the emitted design against the equation model: the plan's own
  // gain/ugf claims must hold.
  sz::TwoStageEquationModel model(proc(), 5e-12);
  const auto x = kn::extractTwoStageDesign(res.context);
  const auto perf = model.evaluate(x);
  EXPECT_GE(perf.at("gain_db"), 70.0 - 0.5);
  EXPECT_GE(perf.at("ugf"), 5e6 * 0.99);
  EXPECT_GE(perf.at("pm"), 55.0);
  EXPECT_GE(perf.at("slew"), 5e6 * 0.99);
}

TEST(TwoStagePlan, BacktracksForHighGain) {
  const auto plan = kn::twoStageOpampPlan();
  const auto res = plan.execute(proc(), {{"spec.gain_db", 88.0},
                                         {"spec.ugf", 2e6},
                                         {"spec.pm", 60.0},
                                         {"spec.slew", 2e6},
                                         {"spec.cload", 5e-12}});
  ASSERT_TRUE(res.success);
  EXPECT_GT(res.retries, 0u);  // default overdrives can't reach 88 dB
  EXPECT_GE(res.context.get("gain_db.achieved"), 88.0);
}

TEST(TwoStagePlan, FailsOnImpossiblePhaseMargin) {
  const auto plan = kn::twoStageOpampPlan();
  const auto res = plan.execute(proc(), {{"spec.gain_db", 60.0},
                                         {"spec.ugf", 5e6},
                                         {"spec.pm", 89.0},
                                         {"spec.slew", 1e6},
                                         {"spec.cload", 5e-12}});
  EXPECT_FALSE(res.success);
  EXPECT_EQ(res.failedStep, "compensation capacitor");
}

TEST(TwoStagePlan, RespectsPowerBudgetByShavingMargin) {
  const auto plan = kn::twoStageOpampPlan();
  std::map<std::string, double> specs = {{"spec.gain_db", 65.0}, {"spec.ugf", 1e7},
                                         {"spec.pm", 60.0},      {"spec.slew", 1e7},
                                         {"spec.cload", 10e-12}};
  const auto loose = plan.execute(proc(), specs);
  ASSERT_TRUE(loose.success);
  const double loosePower =
      proc().vdd * (loose.context.get("i5") + loose.context.get("i7") + 10e-6);
  specs["spec.power_max"] = loosePower * 0.9;  // force one backtrack
  const auto tight = plan.execute(proc(), specs);
  ASSERT_TRUE(tight.success);
  EXPECT_LE(tight.context.get("power.achieved"), loosePower * 0.9 + 1e-9);
}

TEST(OtaPlan, ProducesVerifiableDesign) {
  const auto plan = kn::otaPlan();
  const auto res = plan.execute(proc(), {{"spec.gain_db", 38.0},
                                         {"spec.ugf", 2e7},
                                         {"spec.slew", 1e7},
                                         {"spec.cload", 2e-12}});
  ASSERT_TRUE(res.success);
  sz::OtaEquationModel model(proc(), 2e-12);
  const auto perf = model.evaluate(kn::extractOtaDesign(res.context));
  EXPECT_GE(perf.at("gain_db"), 38.0 - 0.5);
  EXPECT_GE(perf.at("ugf"), 2e7 * 0.99);
}

TEST(OtaPlan, RejectsUnreachableGain) {
  const auto plan = kn::otaPlan();
  const auto res = plan.execute(proc(), {{"spec.gain_db", 90.0},
                                         {"spec.ugf", 1e6},
                                         {"spec.slew", 1e6},
                                         {"spec.cload", 2e-12}});
  EXPECT_FALSE(res.success);  // single stage can never reach 90 dB here
}

TEST(PlanVsOptimization, PlanIsDramaticallyCheaper) {
  // The Fig. 1 contrast in miniature: the plan does a handful of formula
  // evaluations; the optimizer needs hundreds of model calls.
  const auto plan = kn::twoStageOpampPlan();
  const auto res = plan.execute(proc(), {{"spec.gain_db", 70.0},
                                         {"spec.ugf", 5e6},
                                         {"spec.pm", 60.0},
                                         {"spec.slew", 5e6},
                                         {"spec.cload", 5e-12}});
  ASSERT_TRUE(res.success);
  EXPECT_LT(res.trace.size(), 40u);  // bounded plan work
}
