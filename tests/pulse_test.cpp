#include <gtest/gtest.h>

#include "sizing/pulse.hpp"
#include "sizing/spec.hpp"
#include "sizing/synth.hpp"

namespace sz = amsyn::sizing;
namespace ckt = amsyn::circuit;

namespace {
const ckt::Process& proc() { return ckt::defaultProcess(); }

/// The Table-1 specification set.
sz::SpecSet table1Specs() {
  sz::SpecSet s;
  s.atMost("peaking_us", 1.5)
      .atLeast("counting_khz", 200.0)
      .atMost("noise_e", 1000.0)
      .atLeast("gain_v_fc", 20.0)
      .atMost("gain_v_fc", 23.0)
      .atLeast("range_v", 1.0)
      .minimize("power", 1.0, 1e-3)
      .minimize("area_mm2", 0.2, 1.0);
  return s;
}
}  // namespace

TEST(PulseDetector, ManualDesignMatchesTable1ManualColumn) {
  sz::PulseDetectorModel model(proc());
  const auto perf = model.evaluate(model.manualDesign());
  // Paper, Table 1 "manual" column: peaking 1.1 us, counting 200 kHz,
  // noise 750 rms e-, gain 20 V/fC, range -1..1 V, power 40 mW, 0.7 mm^2.
  EXPECT_NEAR(perf.at("peaking_us"), 1.1, 0.15);
  EXPECT_NEAR(perf.at("counting_khz"), 200.0, 25.0);
  EXPECT_NEAR(perf.at("noise_e"), 750.0, 150.0);
  EXPECT_NEAR(perf.at("gain_v_fc"), 20.0, 2.0);
  EXPECT_NEAR(perf.at("range_v"), 1.0, 0.1);
  EXPECT_NEAR(perf.at("power"), 40e-3, 3e-3);
  EXPECT_NEAR(perf.at("area_mm2"), 0.7, 0.12);
}

TEST(PulseDetector, ManualDesignSatisfiesAllSpecs) {
  sz::PulseDetectorModel model(proc());
  const auto perf = model.evaluate(model.manualDesign());
  EXPECT_TRUE(table1Specs().satisfied(perf, 1e-3));
}

TEST(PulseDetector, NoiseDecreasesWithCsaCurrent) {
  sz::PulseDetectorModel model(proc());
  auto x = model.manualDesign();
  const double noiseHigh = model.evaluate(x).at("noise_e");
  x[0] /= 20.0;  // cut the CSA current
  const double noiseLow = model.evaluate(x).at("noise_e");
  EXPECT_GT(noiseLow, noiseHigh);  // series noise grows as gm shrinks
}

TEST(PulseDetector, PeakingScalesWithTau) {
  sz::PulseDetectorModel model(proc());
  auto x = model.manualDesign();
  const double tp1 = model.evaluate(x).at("peaking_us");
  x[3] *= 1.3;
  const double tp2 = model.evaluate(x).at("peaking_us");
  EXPECT_GT(tp2, tp1 * 1.2);
}

TEST(PulseDetector, GainInverseInFeedbackCap) {
  sz::PulseDetectorModel model(proc());
  auto x = model.manualDesign();
  const double g1 = model.evaluate(x).at("gain_v_fc");
  x[2] *= 2.0;
  const double g2 = model.evaluate(x).at("gain_v_fc");
  EXPECT_NEAR(g2, g1 / 2.0, g1 * 0.01);
}

TEST(PulseDetector, WeakShaperStagesDegradeRate) {
  sz::PulseDetectorModel model(proc());
  auto x = model.manualDesign();
  const double r1 = model.evaluate(x).at("counting_khz");
  x[4] /= 50.0;  // starve the shaper stages
  const double r2 = model.evaluate(x).at("counting_khz");
  EXPECT_LT(r2, r1 * 0.9);
}

TEST(PulseDetector, SynthesisBeatsManualPowerByLargeFactor) {
  // The headline Table-1 result: the synthesis system found a design with
  // ~6x less power than the expert while meeting every spec.  Our engine
  // must reproduce the shape: feasible, and at least 3x below manual.
  sz::PulseDetectorModel model(proc());
  const double manualPower = model.evaluate(model.manualDesign()).at("power");

  sz::SynthesisOptions opts;
  opts.seed = 11;
  const auto res = sz::synthesize(model, table1Specs(), opts);
  ASSERT_TRUE(res.feasible)
      << "noise=" << res.performance.at("noise_e")
      << " rate=" << res.performance.at("counting_khz")
      << " peak=" << res.performance.at("peaking_us")
      << " gain=" << res.performance.at("gain_v_fc")
      << " range=" << res.performance.at("range_v");
  EXPECT_LT(res.performance.at("power"), manualPower / 3.0);
  EXPECT_LE(res.performance.at("noise_e"), 1000.0 * 1.001);
  EXPECT_GE(res.performance.at("counting_khz"), 200.0 * 0.999);
}
