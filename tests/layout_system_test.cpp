#include <gtest/gtest.h>

#include "layout/system/channel.hpp"
#include "layout/system/floorplan.hpp"
#include "layout/system/wren.hpp"

namespace lay = amsyn::layout;
namespace geom = amsyn::geom;

namespace {
std::vector<lay::Block> mixedChip() {
  // Two noisy digital blocks, two sensitive analog blocks, one quiet.
  return {
      {"dsp", 800, 600, 10.0, 0.0},
      {"ctrl", 500, 400, 6.0, 0.0},
      {"adc", 400, 400, 0.0, 8.0},
      {"pll", 300, 300, 0.0, 5.0},
      {"rom", 400, 300, 0.0, 0.0},
  };
}

std::vector<lay::BlockNet> chipNets() {
  return {
      {"bus", {"dsp", "ctrl", "rom"}},
      {"sig", {"adc", "pll"}},
      {"clk", {"dsp", "pll"}},
  };
}
}  // namespace

// ------------------------------------------------------------- floorplan

TEST(Slicing, ProducesLegalFloorplan) {
  const auto fp = lay::slicingFloorplan(mixedChip(), chipNets());
  EXPECT_TRUE(fp.overlapFree);
  EXPECT_EQ(fp.blocks.size(), 5u);
  // Area sanity: chip must hold the blocks but not be absurdly large.
  geom::Coord blockArea = 0;
  for (const auto& b : mixedChip()) blockArea += b.width * b.height;
  EXPECT_GE(fp.chipBox.area(), blockArea);
  EXPECT_LE(fp.chipBox.area(), blockArea * 4);
}

TEST(Slicing, DeterministicForSeed) {
  lay::FloorplanOptions opts;
  opts.seed = 12;
  const auto a = lay::slicingFloorplan(mixedChip(), chipNets(), opts);
  const auto b = lay::slicingFloorplan(mixedChip(), chipNets(), opts);
  ASSERT_EQ(a.blocks.size(), b.blocks.size());
  for (std::size_t i = 0; i < a.blocks.size(); ++i)
    EXPECT_EQ(a.blocks[i].rect, b.blocks[i].rect);
}

TEST(SubstrateNoise, FallsWithDistance) {
  const auto blocks = mixedChip();
  std::vector<lay::PlacedBlock> close = {
      {"dsp", geom::Rect::fromSize(0, 0, 800, 600), false},
      {"adc", geom::Rect::fromSize(850, 0, 400, 400), false},
  };
  std::vector<lay::PlacedBlock> far = {
      {"dsp", geom::Rect::fromSize(0, 0, 800, 600), false},
      {"adc", geom::Rect::fromSize(4000, 0, 400, 400), false},
  };
  EXPECT_GT(lay::substrateNoise(blocks, close, 400.0),
            lay::substrateNoise(blocks, far, 400.0));
}

TEST(Wright, NoiseAwareFloorplanSeparatesNoisyFromSensitive) {
  lay::FloorplanOptions quietOpts;
  quietOpts.noiseWeight = 0.0;
  quietOpts.seed = 21;
  lay::FloorplanOptions noiseOpts;
  noiseOpts.noiseWeight = 6.0;
  noiseOpts.seed = 21;
  const auto fpQuiet = lay::wrightFloorplan(mixedChip(), chipNets(), quietOpts);
  const auto fpNoise = lay::wrightFloorplan(mixedChip(), chipNets(), noiseOpts);
  EXPECT_TRUE(fpNoise.overlapFree);
  // The substrate-aware floorplan must have equal or lower coupling.
  EXPECT_LE(fpNoise.substrateNoise, fpQuiet.substrateNoise * 1.05);
}

TEST(Wright, BlockLookupWorks) {
  const auto fp = lay::wrightFloorplan(mixedChip(), chipNets());
  EXPECT_NO_THROW(fp.block("adc"));
  EXPECT_THROW(fp.block("nope"), std::out_of_range);
}

// ------------------------------------------------------------- channel

TEST(Channel, SimpleTwoNetChannel) {
  // net a: top@1, bottom@5; net b: top@6, bottom@2 — overlapping spans.
  std::vector<lay::ChannelPin> pins = {
      {"a", 1, true}, {"a", 5, false}, {"b", 6, true}, {"b", 2, false}};
  const auto r = lay::routeChannel(pins);
  ASSERT_TRUE(r.routable);
  EXPECT_EQ(r.assignments.size(), 2u);
  EXPECT_GE(r.height, r.densityLowerBound);
}

TEST(Channel, NonOverlappingNetsShareTrack) {
  std::vector<lay::ChannelPin> pins = {
      {"a", 0, true}, {"a", 2, false}, {"b", 5, true}, {"b", 8, false}};
  const auto r = lay::routeChannel(pins);
  ASSERT_TRUE(r.routable);
  EXPECT_EQ(r.height, 1);  // left-edge packs them into one track
}

TEST(Channel, VerticalConstraintRespected) {
  // Column 3: top pin of "t", bottom pin of "b" -> t's track above b's.
  std::vector<lay::ChannelPin> pins = {
      {"t", 3, true}, {"t", 7, true}, {"b", 3, false}, {"b", 6, false}};
  const auto r = lay::routeChannel(pins);
  ASSERT_TRUE(r.routable);
  int tTrack = -1, bTrack = -1;
  for (const auto& a : r.assignments) {
    if (a.net == "t") tTrack = a.track;
    if (a.net == "b") bTrack = a.track;
  }
  EXPECT_GT(tTrack, bTrack);
}

TEST(Channel, CyclicVcgDetected) {
  // Column 1: a above b; column 4: b above a -> cycle.
  std::vector<lay::ChannelPin> pins = {
      {"a", 1, true}, {"b", 1, false}, {"b", 4, true}, {"a", 4, false}};
  const auto r = lay::routeChannel(pins);
  EXPECT_FALSE(r.routable);
}

TEST(Channel, WideWireOccupiesMultipleTracks) {
  std::vector<lay::ChannelPin> pins = {
      {"pwr", 0, true}, {"pwr", 9, false}, {"sig", 1, true}, {"sig", 8, false}};
  std::vector<lay::ChannelNetSpec> specs = {{"pwr", lay::WireClass::Quiet, 3}};
  const auto r = lay::routeChannel(pins, specs);
  ASSERT_TRUE(r.routable);
  EXPECT_GE(r.height, 4);  // 3 tracks of power + 1 of signal
}

TEST(Channel, ClassSeparationAddsSpace) {
  std::vector<lay::ChannelPin> pins = {
      {"noisy", 0, true}, {"noisy", 9, false}, {"sens", 1, true}, {"sens", 8, false}};
  std::vector<lay::ChannelNetSpec> specs = {{"noisy", lay::WireClass::Noisy, 1},
                                            {"sens", lay::WireClass::Sensitive, 1}};
  lay::ChannelOptions plain;
  plain.classSeparationTracks = 0;
  lay::ChannelOptions spaced;
  spaced.classSeparationTracks = 2;
  const auto r0 = lay::routeChannel(pins, specs, plain);
  const auto r1 = lay::routeChannel(pins, specs, spaced);
  ASSERT_TRUE(r0.routable);
  ASSERT_TRUE(r1.routable);
  EXPECT_GT(r1.height, r0.height);           // separation costs tracks...
  EXPECT_LT(r1.crosstalkAdjacency, r0.crosstalkAdjacency + 1);  // ...but kills adjacency
  EXPECT_GT(r0.crosstalkAdjacency, 0);
  EXPECT_EQ(r1.crosstalkAdjacency, 0);
}

TEST(Channel, ShieldInsertionReported) {
  std::vector<lay::ChannelPin> pins = {
      {"noisy", 0, true}, {"noisy", 9, false}, {"sens", 1, true}, {"sens", 8, false}};
  std::vector<lay::ChannelNetSpec> specs = {{"noisy", lay::WireClass::Noisy, 1},
                                            {"sens", lay::WireClass::Sensitive, 1}};
  lay::ChannelOptions opts;
  opts.classSeparationTracks = 1;
  opts.insertShields = true;
  const auto r = lay::routeChannel(pins, specs, opts);
  ASSERT_TRUE(r.routable);
  EXPECT_GE(r.shieldsInserted, 1u);
  EXPECT_EQ(r.crosstalkAdjacency, 0);
}

// ------------------------------------------------------------- WREN

namespace {
lay::ChannelGraph ladderGraph() {
  // 3x2 grid of junctions.
  lay::ChannelGraph g;
  for (int j = 0; j < 2; ++j)
    for (int i = 0; i < 3; ++i) g.addNode({i * 1000, j * 1000});
  auto id = [](int i, int j) { return static_cast<std::size_t>(j * 3 + i); };
  for (int j = 0; j < 2; ++j)
    for (int i = 0; i + 1 < 3; ++i) g.addEdge(id(i, j), id(i + 1, j), 8);
  for (int i = 0; i < 3; ++i) g.addEdge(id(i, 0), id(i, 1), 8);
  return g;
}
}  // namespace

TEST(Wren, RoutesAllNets) {
  const auto g = ladderGraph();
  std::vector<lay::GlobalNet> nets = {
      {"clk", lay::WireClass::Noisy, {{0, 0}, {2000, 0}}, 0.0},
      {"sig", lay::WireClass::Sensitive, {{0, 1000}, {2000, 1000}}, 0.0},
  };
  const auto r = lay::wrenGlobalRoute(g, nets);
  EXPECT_TRUE(r.routed.at("clk"));
  EXPECT_TRUE(r.routed.at("sig"));
  EXPECT_FALSE(r.anyOverflow);
}

TEST(Wren, SensitiveNetAvoidsNoisyChannels) {
  const auto g = ladderGraph();
  // Both nets connect the same endpoints; sensitive one should detour via
  // the other row to avoid sharing channels with the noisy one.
  std::vector<lay::GlobalNet> nets = {
      {"clk", lay::WireClass::Noisy, {{0, 0}, {2000, 0}}, 0.0},
      {"sig", lay::WireClass::Sensitive, {{0, 0}, {2000, 0}}, 0.0},
  };
  lay::WrenOptions opts;
  opts.noiseAvoidWeight = 50.0;
  const auto r = lay::wrenGlobalRoute(g, nets, opts);
  ASSERT_TRUE(r.routed.at("sig"));
  EXPECT_DOUBLE_EQ(r.couplingRaw.at("sig"), 0.0);  // fully avoided
}

TEST(Wren, ConstraintMapperMeetsSnrBudget) {
  // Force sharing with a tiny graph: a single corridor.
  lay::ChannelGraph g;
  g.addNode({0, 0});
  g.addNode({4000, 0});
  g.addEdge(0, 1, 8);
  std::vector<lay::GlobalNet> nets = {
      {"clk", lay::WireClass::Noisy, {{0, 0}, {4000, 0}}, 0.0},
      {"sig", lay::WireClass::Sensitive, {{0, 0}, {4000, 0}}, 0.5},
  };
  const auto r = lay::wrenGlobalRoute(g, nets);
  ASSERT_TRUE(r.routed.at("sig"));
  EXPECT_GT(r.couplingRaw.at("sig"), 0.5);           // violates raw...
  EXPECT_LE(r.couplingMitigated.at("sig"), 0.5);     // ...mapper fixes it
  EXPECT_TRUE(r.snrMet.at("sig"));
  EXPECT_FALSE(r.directives.empty());                // via separation/shield
}

TEST(Wren, ChannelGraphFromFloorplanConnects) {
  const auto fp = lay::slicingFloorplan(mixedChip(), chipNets());
  const auto g = lay::channelGraphFromFloorplan(fp);
  EXPECT_GT(g.nodes.size(), 4u);
  EXPECT_GT(g.edges.size(), 4u);
  // Route one net between two block corners.
  std::vector<lay::GlobalNet> nets = {
      {"n", lay::WireClass::Quiet,
       {{fp.chipBox.x0, fp.chipBox.y0}, {fp.chipBox.x1, fp.chipBox.y1}}, 0.0}};
  const auto r = lay::wrenGlobalRoute(g, nets);
  EXPECT_TRUE(r.routed.at("n"));
}
