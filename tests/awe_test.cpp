#include <gtest/gtest.h>

#include <cmath>

#include "awe/awe.hpp"
#include "circuit/parser.hpp"
#include "sim/ac.hpp"
#include "sim/dc.hpp"

namespace awe = amsyn::awe;
namespace ckt = amsyn::circuit;
namespace sim = amsyn::sim;
namespace num = amsyn::num;

namespace {
std::pair<sim::Mna, sim::DcResult> setup(const std::string& deck,
                                         const ckt::Netlist** keep) {
  static std::vector<std::unique_ptr<ckt::Netlist>> storage;
  storage.push_back(std::make_unique<ckt::Netlist>(ckt::parseDeck(deck)));
  *keep = storage.back().get();
  sim::Mna mna(*storage.back(), ckt::defaultProcess());
  auto op = sim::dcOperatingPoint(mna);
  return {std::move(mna), std::move(op)};
}
}  // namespace

TEST(Awe, RcPoleRecovered) {
  const ckt::Netlist* net;
  auto [mna, op] = setup(R"(
V1 in 0 DC 0 AC 1
R1 in out 1k
C1 out 0 1n
.end)", &net);
  ASSERT_TRUE(op.converged);
  const auto model = awe::aweTransfer(mna, op, "out", 2);
  // Single pole at -1/RC = -1e6 rad/s.
  ASSERT_GE(model.pr.poles.size(), 1u);
  // Dominant pole:
  double minMag = 1e30;
  std::complex<double> dom;
  for (const auto& p : model.pr.poles)
    if (std::abs(p) < minMag) {
      minMag = std::abs(p);
      dom = p;
    }
  EXPECT_NEAR(dom.real(), -1e6, 1e3);
  EXPECT_NEAR(dom.imag(), 0.0, 1e3);
  // Elmore delay = RC.
  EXPECT_NEAR(model.elmoreDelay(), 1e-6, 1e-9);
}

TEST(Awe, MagnitudeMatchesAcAnalysis) {
  const ckt::Netlist* net;
  auto [mna, op] = setup(R"(
V1 in 0 DC 0 AC 1
R1 in a 1k
C1 a 0 1n
R2 a out 10k
C2 out 0 100p
.end)", &net);
  ASSERT_TRUE(op.converged);
  const auto model = awe::aweTransfer(mna, op, "out", 3);
  for (double f : {1e3, 1e4, 1e5, 1e6}) {
    const auto exact = std::abs(sim::acTransfer(mna, op, "out", f));
    EXPECT_NEAR(model.magnitudeAt(f), exact, exact * 0.02) << "f=" << f;
  }
}

TEST(Awe, StepResponseMatchesTransientShape) {
  const ckt::Netlist* net;
  auto [mna, op] = setup(R"(
V1 in 0 DC 0 AC 1
R1 in out 1k
C1 out 0 1n
.end)", &net);
  ASSERT_TRUE(op.converged);
  const auto model = awe::aweTransfer(mna, op, "out", 2);
  // Unit step through H(s)=1/(1+sRC): v(t) = 1 - exp(-t/RC).
  for (double t : {0.5e-6, 1e-6, 3e-6}) {
    const double expected = 1.0 - std::exp(-t / 1e-6);
    EXPECT_NEAR(model.stepResponse(t), expected, 0.01) << "t=" << t;
  }
}

TEST(Awe, RcLadderDelayOrdering) {
  // Longer RC ladders must show monotonically larger Elmore delay.
  double lastDelay = 0.0;
  for (int stages : {2, 4, 6}) {
    std::string deck = "V1 n0 0 DC 0 AC 1\n";
    for (int i = 0; i < stages; ++i) {
      deck += "R" + std::to_string(i) + " n" + std::to_string(i) + " n" +
              std::to_string(i + 1) + " 1k\n";
      deck += "C" + std::to_string(i) + " n" + std::to_string(i + 1) + " 0 1p\n";
    }
    deck += ".end\n";
    const ckt::Netlist* net;
    auto [mna, op] = setup(deck, &net);
    ASSERT_TRUE(op.converged);
    const auto model =
        awe::aweTransfer(mna, op, "n" + std::to_string(stages), 3);
    const double delay = model.elmoreDelay();
    EXPECT_GT(delay, lastDelay);
    lastDelay = delay;
  }
}

TEST(Awe, StablePolesEnforced) {
  const ckt::Netlist* net;
  auto [mna, op] = setup(R"(
V1 in 0 DC 0 AC 1
R1 in a 1k
C1 a 0 2n
R2 a b 2k
C2 b 0 1n
R3 b out 5k
C3 out 0 0.5n
.end)", &net);
  ASSERT_TRUE(op.converged);
  const auto model = awe::aweTransfer(mna, op, "out", 4);
  for (const auto& p : model.pr.poles) EXPECT_LE(p.real(), 0.0);
}

TEST(Awe, GenericMomentEngineMatchesDense) {
  // 2x2 system: G = [[2,-1],[-1,2]], C = I, b = [1,0].
  num::MatrixD g(2, 2), c(2, 2);
  g(0, 0) = 2; g(0, 1) = -1; g(1, 0) = -1; g(1, 1) = 2;
  c(0, 0) = 1; c(1, 1) = 1;
  const num::VecD b = {1.0, 0.0};
  const auto model = awe::aweLinearSystem(g, c, b, 0, 2);
  // m0 = (G^-1 b)[0] = (2/3); check against hand computation.
  EXPECT_NEAR(model.moments[0], 2.0 / 3.0, 1e-12);
  // m1 = (-G^-1 C m0vec)[0]; m0vec = [2/3, 1/3], G^-1 = 1/3*[[2,1],[1,2]]
  // C m0vec = m0vec; -G^-1 m0vec = -[5/9, 4/9] -> m1 = -5/9.
  EXPECT_NEAR(model.moments[1], -5.0 / 9.0, 1e-12);
}

TEST(Awe, ModelFromMomentsReducesOrder) {
  // Moments of 1/(1+s) requested at order 2 -> singular Hankel -> q=1.
  const auto model = awe::modelFromMoments({1.0, -1.0, 1.0, -1.0});
  EXPECT_EQ(model.pr.poles.size(), 1u);
  EXPECT_NEAR(model.pr.poles[0].real(), -1.0, 1e-9);
}
