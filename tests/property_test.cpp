// Property-based (parameterized) invariant sweeps across the library:
// randomized-but-seeded inputs, checked against invariants that must hold
// for *every* instance, not just the hand-picked unit-test cases.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>

#include "layout/cell/drc.hpp"
#include "layout/cell/modgen.hpp"
#include "layout/cell/place.hpp"
#include "layout/cell/route.hpp"
#include "layout/cell/stack.hpp"
#include "layout/system/channel.hpp"
#include "layout/system/segregate.hpp"
#include "numeric/anneal.hpp"
#include "numeric/interval.hpp"
#include "numeric/pade.hpp"
#include "numeric/rng.hpp"
#include "sim/ac.hpp"
#include "sim/dc.hpp"
#include "sizing/eqmodel.hpp"
#include "sizing/opamp.hpp"

namespace {
using namespace amsyn;
const circuit::Process& proc() { return circuit::defaultProcess(); }
}  // namespace

// ------------------------------------------------------------ KCL property

class MnaKclProperty : public ::testing::TestWithParam<int> {};

TEST_P(MnaKclProperty, ResidualVanishesAtSolvedOperatingPoint) {
  // Random ladder of resistors, MOS devices and sources; whatever the
  // topology, a converged DC solution must satisfy KCL to solver tolerance.
  num::Rng rng(static_cast<std::uint64_t>(GetParam()));
  circuit::Netlist net;
  net.addVSource("VDD", "vdd", "0", 5.0);
  const int stages = 2 + static_cast<int>(rng.index(4));
  std::string prev = "vdd";
  for (int i = 0; i < stages; ++i) {
    const std::string node = "n" + std::to_string(i);
    net.addResistor("R" + std::to_string(i), prev, node,
                    1e3 * (1.0 + rng.uniform() * 9.0));
    if (rng.chance(0.5)) {
      net.addMos("M" + std::to_string(i), node, prev, "0", "0", circuit::MosType::Nmos,
                 (2.0 + rng.uniform() * 30.0) * 1e-6, 2e-6);
    } else {
      net.addResistor("RG" + std::to_string(i), node, "0",
                      1e3 * (1.0 + rng.uniform() * 9.0));
    }
    prev = node;
  }
  sim::Mna mna(net, proc());
  const auto op = sim::dcOperatingPoint(mna);
  ASSERT_TRUE(op.converged) << "seed " << GetParam();
  num::VecD f;
  mna.assemble(op.x, {}, nullptr, &f);
  EXPECT_LT(num::normInf(f), 1e-8) << "seed " << GetParam();
}

TEST_P(MnaKclProperty, AcSolutionSatisfiesComplexSystem) {
  num::Rng rng(static_cast<std::uint64_t>(GetParam()) + 1000);
  circuit::Netlist net;
  net.addVSource("VIN", "in", "0", 1.0, 1.0);
  std::string prev = "in";
  for (int i = 0; i < 3; ++i) {
    const std::string node = "m" + std::to_string(i);
    net.addResistor("R" + std::to_string(i), prev, node, 1e3 * (1 + rng.uniform() * 5));
    net.addCapacitor("C" + std::to_string(i), node, "0", 1e-12 * (1 + rng.uniform() * 10));
    prev = node;
  }
  sim::Mna mna(net, proc());
  const auto op = sim::dcOperatingPoint(mna);
  ASSERT_TRUE(op.converged);

  num::MatrixD g, c;
  num::VecD b;
  mna.acMatrices(op.x, g, c, b);
  const double f = 1e3 * std::pow(10.0, rng.uniform() * 5.0);
  const double w = 2 * M_PI * f;
  const std::size_t n = mna.size();
  num::MatrixC a(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) a(i, j) = {g(i, j), w * c(i, j)};
  num::VecC rhs(n);
  for (std::size_t i = 0; i < n; ++i) rhs[i] = b[i];
  const auto x = num::LUC(a).solve(rhs);
  // Residual of the complex system.
  double worst = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    std::complex<double> acc = -rhs[i];
    for (std::size_t j = 0; j < n; ++j) acc += std::complex<double>(g(i, j), w * c(i, j)) * x[j];
    worst = std::max(worst, std::abs(acc));
  }
  EXPECT_LT(worst, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MnaKclProperty, ::testing::Range(1, 13));

// ------------------------------------------------------------ Pade property

class PadeProperty : public ::testing::TestWithParam<int> {};

TEST_P(PadeProperty, RecoversRandomStableTwoPoleSystems) {
  // Draw two distinct stable real poles and positive residues; moments of
  // H(s) = r1/(1 - s/p1)... computed analytically: for H = sum r_i/(1 + s t_i),
  // m_k = sum r_i (-t_i)^k.
  num::Rng rng(static_cast<std::uint64_t>(GetParam()) * 7 + 3);
  const double t1 = std::pow(10.0, -7.0 + rng.uniform() * 2.0);  // 0.1-10 us... spread
  const double t2 = t1 * (3.0 + rng.uniform() * 30.0);
  const double r1 = 0.2 + rng.uniform();
  const double r2 = 0.2 + rng.uniform();

  std::vector<double> m;
  for (int k = 0; k < 6; ++k)
    m.push_back(r1 * std::pow(-t1, k) + r2 * std::pow(-t2, k));

  const auto pr = num::toPoleResidue(num::padeAuto(m));
  // All reconstructed poles stable.
  for (const auto& p : pr.poles) EXPECT_LE(p.real(), 1e-9);
  // Transfer magnitude matches at several frequencies spanning the poles.
  for (double f : {0.01 / t2, 0.3 / t2, 0.3 / t1, 3.0 / t1}) {
    const std::complex<double> s{0.0, f};
    const std::complex<double> exact =
        r1 / (1.0 + s * t1) + r2 / (1.0 + s * t2);
    const double got = std::abs(pr.evaluate(s));
    EXPECT_NEAR(got, std::abs(exact), std::abs(exact) * 0.02)
        << "seed " << GetParam() << " f " << f;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PadeProperty, ::testing::Range(1, 17));

// -------------------------------------------------------- interval property

struct IntervalCase {
  double xlo, xhi, ylo, yhi;
};

class IntervalProperty : public ::testing::TestWithParam<int> {};

TEST_P(IntervalProperty, ContainmentUnderArithmetic) {
  // Fundamental soundness of interval arithmetic: for x in X, y in Y,
  // x op y must lie in X op Y.
  num::Rng rng(static_cast<std::uint64_t>(GetParam()) * 31 + 1);
  const double xlo = rng.uniform(-10, 10);
  const double xhi = xlo + rng.uniform(0.1, 10);
  const double ylo = rng.uniform(-10, 10);
  const double yhi = ylo + rng.uniform(0.1, 10);
  const num::Interval X{xlo, xhi}, Y{ylo, yhi};

  for (int trial = 0; trial < 40; ++trial) {
    const double x = rng.uniform(xlo, xhi);
    const double y = rng.uniform(ylo, yhi);
    EXPECT_TRUE((X + Y).contains(x + y));
    EXPECT_TRUE((X - Y).contains(x - y));
    EXPECT_TRUE((X * Y).contains(x * y));
    EXPECT_TRUE(num::pow(X, 2).contains(x * x));
    EXPECT_TRUE(num::pow(X, 3).contains(x * x * x));
    if (!Y.contains(0.0)) {
      EXPECT_TRUE((X / Y).contains(x / y));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, IntervalProperty, ::testing::Range(1, 13));

// --------------------------------------------------------- stacking property

class StackingProperty : public ::testing::TestWithParam<int> {};

TEST_P(StackingProperty, GreedyIsAlwaysValidAndEulerOptimal) {
  num::Rng rng(static_cast<std::uint64_t>(GetParam()) * 13 + 5);
  circuit::Netlist net;
  const int nNets = 3 + static_cast<int>(rng.index(5));
  const int nDevs = 3 + static_cast<int>(rng.index(10));
  for (int i = 0; i < nDevs; ++i) {
    const std::string a = "n" + std::to_string(rng.index(nNets));
    std::string b = "n" + std::to_string(rng.index(nNets));
    if (a == b) b = "n" + std::to_string((rng.index(nNets - 1) + 1 +
                                          std::stoul(a.substr(1))) % nNets);
    net.addMos("M" + std::to_string(i), a, "g" + std::to_string(i), b, "0",
               circuit::MosType::Nmos, 10e-6, 2e-6);
  }
  for (const auto& g : layout::buildDiffusionGraphs(net)) {
    const auto s = layout::greedyStacking(g);
    EXPECT_TRUE(layout::stackingValid(g, s)) << "seed " << GetParam();
    EXPECT_EQ(s.stacks.size(), g.minimumStacks()) << "seed " << GetParam();
  }
}

TEST_P(StackingProperty, ExactSolutionsAllValidAndOptimal) {
  num::Rng rng(static_cast<std::uint64_t>(GetParam()) * 17 + 11);
  circuit::Netlist net;
  const int nDevs = 3 + static_cast<int>(rng.index(5));  // small: exact is exponential
  for (int i = 0; i < nDevs; ++i) {
    const std::string a = "n" + std::to_string(rng.index(4));
    std::string b = "n" + std::to_string(rng.index(4));
    if (a == b) continue;
    net.addMos("M" + std::to_string(i), a, "g" + std::to_string(i), b, "0",
               circuit::MosType::Nmos, 10e-6, 2e-6);
  }
  for (const auto& g : layout::buildDiffusionGraphs(net)) {
    if (g.edges.empty()) continue;
    const auto all = layout::enumerateOptimalStackings(g, 32);
    ASSERT_FALSE(all.empty()) << "seed " << GetParam();
    for (const auto& s : all) {
      EXPECT_TRUE(layout::stackingValid(g, s));
      EXPECT_EQ(s.stacks.size(), g.minimumStacks());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StackingProperty, ::testing::Range(1, 17));

// ----------------------------------------------------------- placer property

class PlacerProperty : public ::testing::TestWithParam<int> {};

TEST_P(PlacerProperty, AnnealedPlacementsAreAlwaysLegal) {
  std::vector<layout::PlacementComponent> comps;
  num::Rng rng(static_cast<std::uint64_t>(GetParam()) * 41 + 7);
  const int n = 3 + static_cast<int>(rng.index(4));
  for (int i = 0; i < n; ++i) {
    layout::PlacementComponent c;
    c.name = "M" + std::to_string(i);
    circuit::MosParams mp{circuit::MosType::Nmos, (5.0 + rng.uniform() * 30.0) * 1e-6,
                          2e-6, 1, 0.0, 1.0};
    c.variants = {layout::generateMos(c.name, mp, "d" + std::to_string(i), "g",
                                      "s" + std::to_string(i), "0", proc())};
    comps.push_back(std::move(c));
  }
  layout::PlacerOptions opts;
  opts.seed = static_cast<std::uint64_t>(GetParam());
  const auto p = layout::placeCells(comps, opts);
  EXPECT_TRUE(p.overlapFree) << "seed " << GetParam();
  EXPECT_EQ(p.instances.size(), comps.size());
  EXPECT_GT(p.boundingBox.area(), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlacerProperty, ::testing::Range(1, 9));

// ---------------------------------------------------------- channel property

class ChannelProperty : public ::testing::TestWithParam<int> {};

TEST_P(ChannelProperty, AssignmentsNeverOverlapAndRespectVcg) {
  num::Rng rng(static_cast<std::uint64_t>(GetParam()) * 53 + 3);
  std::vector<layout::ChannelPin> pins;
  const int nNets = 3 + static_cast<int>(rng.index(5));
  for (int i = 0; i < nNets; ++i) {
    const std::string net = "n" + std::to_string(i);
    const int c0 = static_cast<int>(rng.index(20));
    const int c1 = c0 + 1 + static_cast<int>(rng.index(10));
    pins.push_back({net, c0, rng.chance(0.5)});
    pins.push_back({net, c1, rng.chance(0.5)});
  }
  const auto r = layout::routeChannel(pins);
  if (!r.routable) return;  // cyclic VCG: correctly refused

  // No two assignments may overlap in (track-range x column-span).
  for (std::size_t i = 0; i < r.assignments.size(); ++i) {
    for (std::size_t j = i + 1; j < r.assignments.size(); ++j) {
      const auto& a = r.assignments[i];
      const auto& b = r.assignments[j];
      const bool trackOverlap = a.track < b.track + b.widthTracks &&
                                b.track < a.track + a.widthTracks;
      const bool colOverlap = a.colMin <= b.colMax && b.colMin <= a.colMax;
      EXPECT_FALSE(trackOverlap && colOverlap)
          << a.net << " and " << b.net << " collide, seed " << GetParam();
    }
  }
  EXPECT_GE(r.height, r.densityLowerBound);

  // VCG: at a column with a top pin of X and bottom pin of Y, X above Y.
  std::map<int, std::string> topAt, botAt;
  for (const auto& p : pins) (p.top ? topAt : botAt)[p.column] = p.net;
  std::map<std::string, int> trackOf;
  for (const auto& a : r.assignments)
    if (a.net != "(shield)") trackOf[a.net] = a.track;
  for (const auto& [col, tnet] : topAt) {
    auto bit = botAt.find(col);
    if (bit == botAt.end() || bit->second == tnet) continue;
    if (trackOf.count(tnet) && trackOf.count(bit->second)) {
      EXPECT_GT(trackOf[tnet], trackOf[bit->second]) << "col " << col;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChannelProperty, ::testing::Range(1, 21));

// ------------------------------------------------------- segregation property

class SegregateProperty : public ::testing::TestWithParam<int> {};

TEST_P(SegregateProperty, NoisyAndSensitiveNeverShareAChannel) {
  num::Rng rng(static_cast<std::uint64_t>(GetParam()) * 61 + 9);
  std::vector<layout::SegregatedNet> nets;
  const int n = 4 + static_cast<int>(rng.index(16));
  for (int i = 0; i < n; ++i) {
    layout::SegregatedNet sn;
    sn.name = "n" + std::to_string(i);
    const int k = static_cast<int>(rng.index(3));
    sn.wireClass = k == 0 ? layout::WireClass::Noisy
                          : (k == 1 ? layout::WireClass::Sensitive
                                    : layout::WireClass::Quiet);
    sn.preferredChannel = static_cast<int>(rng.index(8));
    nets.push_back(std::move(sn));
  }
  const auto a = layout::segregateChannels(nets);
  EXPECT_TRUE(layout::segregationHolds(a, nets)) << "seed " << GetParam();
  if (a.valid) {
    EXPECT_EQ(a.channelOf.size(), nets.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SegregateProperty, ::testing::Range(1, 17));

// --------------------------------------------------------- annealer property

class AnnealProperty : public ::testing::TestWithParam<int> {};

TEST_P(AnnealProperty, ConvergesOnSeparableQuadratic) {
  num::Rng seedRng(static_cast<std::uint64_t>(GetParam()));
  std::vector<double> target(4);
  for (double& t : target) t = seedRng.uniform(-3, 3);

  std::vector<double> x(4, 0.0), prev = x, best = x;
  num::AnnealProblem prob;
  prob.cost = [&] {
    double s = 0;
    for (std::size_t i = 0; i < 4; ++i) s += (x[i] - target[i]) * (x[i] - target[i]);
    return s;
  };
  prob.propose = [&](num::Rng& rng) {
    prev = x;
    x[rng.index(4)] += rng.uniform(-0.5, 0.5);
  };
  prob.undo = [&] { x = prev; };
  prob.snapshot = [&] { best = x; };
  num::AnnealOptions opts;
  opts.seed = static_cast<std::uint64_t>(GetParam()) + 77;
  num::anneal(prob, opts);
  for (std::size_t i = 0; i < 4; ++i) EXPECT_NEAR(best[i], target[i], 0.25);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnnealProperty, ::testing::Range(1, 9));

// -------------------------------------------------- corner-model consistency

class CornerConsistency : public ::testing::TestWithParam<int> {};

TEST_P(CornerConsistency, NominalCornerEqualsDirectEvaluation) {
  // The corner model evaluated AT the nominal process must reproduce the
  // plain equation model exactly (same geometry path).
  num::Rng rng(static_cast<std::uint64_t>(GetParam()) * 97 + 13);
  sizing::TwoStageEquationModel direct(proc(), 5e-12);
  const auto corner = sizing::makeTwoStageCornerModel(proc(), proc(), 5e-12);

  std::vector<double> x;
  for (const auto& v : direct.variables()) {
    const double t = rng.uniform();
    x.push_back(v.logScale && v.lo > 0 ? v.lo * std::pow(v.hi / v.lo, t)
                                       : v.lo + t * (v.hi - v.lo));
  }
  const auto a = direct.evaluate(x);
  const auto b = corner->evaluate(x);
  for (const auto& [k, va] : a) {
    ASSERT_TRUE(b.count(k)) << k;
    EXPECT_NEAR(b.at(k), va, std::abs(va) * 1e-12 + 1e-15) << k;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CornerConsistency, ::testing::Range(1, 13));

// ------------------------------------------------------ router DRC property

class RouterDrcProperty : public ::testing::TestWithParam<int> {};

TEST_P(RouterDrcProperty, RoutedWiresKeepMinimumSpacing) {
  // Route the diff-pair cell with several seeds; the wires the router emits
  // must keep design-rule spacing among themselves (different nets).
  std::vector<layout::PlacementComponent> comps;
  circuit::MosParams mp{circuit::MosType::Nmos, 20e-6, 2e-6, 1, 0.0, 1.0};
  for (int i = 0; i < 3; ++i) {
    layout::PlacementComponent c;
    c.name = "M" + std::to_string(i);
    c.variants = {layout::generateMos(c.name, mp, "d" + std::to_string(i), "gate",
                                      "tail", "0", proc())};
    comps.push_back(std::move(c));
  }
  layout::PlacerOptions popts;
  popts.seed = static_cast<std::uint64_t>(GetParam());
  const auto p = layout::placeCells(comps, popts);
  ASSERT_TRUE(p.overlapFree);

  std::vector<layout::RouteNet> nets = {
      {"tail", layout::WireClass::Quiet, 0.0, std::nullopt},
      {"gate", layout::WireClass::Quiet, 0.0, std::nullopt},
  };
  const auto r = layout::routeCells(p.instances, nets, proc());
  ASSERT_TRUE(r.allRouted) << "seed " << GetParam();

  // DRC over the generated wires only (device-internal geometry is the
  // module generator's own template and checked elsewhere).
  geom::Layout wiresOnly;
  wiresOnly.wires = r.layout.wires;
  layout::DrcOptions dopts;
  dopts.checkWidth = false;  // pads overlap same-net segments by design
  const auto violations = layout::checkDesignRules(wiresOnly, proc(), dopts);
  for (const auto& v : violations) ADD_FAILURE() << v.describe();
}

INSTANTIATE_TEST_SUITE_P(Seeds, RouterDrcProperty, ::testing::Range(1, 7));

// ------------------------------------------ evaluation-cache key properties
//
// The cache keys of core/evalcache.hpp are only sound if (a) semantically
// identical candidates always collide (declaration order, device names, and
// thread/schedule must not matter) and (b) electrically distinct candidates
// never collide by construction (any sizing change above the quantization
// epsilon must move the digest).  Sweep both directions over random
// netlists and design vectors.

#include "circuit/canonical.hpp"
#include "core/evalcache.hpp"
#include "core/parallel.hpp"

namespace {

/// One declarative device record, so the same netlist can be instantiated
/// in any declaration order.
struct DeviceRec {
  enum Kind { R, C, V, Mos, Diode } kind;
  std::string name, a, b;
  double value;
};

std::vector<DeviceRec> randomDeviceRecs(num::Rng& rng) {
  std::vector<DeviceRec> recs;
  recs.push_back({DeviceRec::V, "VDD", "vdd", "0", 5.0});
  const int n = 6 + static_cast<int>(rng.index(6));
  for (int i = 0; i < n; ++i) {
    const std::string a = "n" + std::to_string(rng.index(4));
    std::string b = "n" + std::to_string(rng.index(4));
    if (b == a) b = "0";
    const std::string nm = "D" + std::to_string(i);
    switch (rng.index(4)) {
      case 0: recs.push_back({DeviceRec::R, nm, a, b, 1e3 * (1 + rng.uniform() * 9)}); break;
      case 1: recs.push_back({DeviceRec::C, nm, a, b, 1e-12 * (1 + rng.uniform() * 9)}); break;
      case 2: recs.push_back({DeviceRec::Mos, nm, a, b, (2 + rng.uniform() * 20) * 1e-6}); break;
      default: recs.push_back({DeviceRec::Diode, nm, a, b, 1e-14}); break;
    }
  }
  return recs;
}

circuit::Netlist instantiate(const std::vector<DeviceRec>& recs,
                             const std::vector<std::size_t>& order,
                             const std::string& nameSuffix = "") {
  circuit::Netlist net;
  for (std::size_t k : order) {
    const DeviceRec& r = recs[k];
    const std::string nm = r.name + nameSuffix;
    switch (r.kind) {
      case DeviceRec::R: net.addResistor(nm, r.a, r.b, r.value); break;
      case DeviceRec::C: net.addCapacitor(nm, r.a, r.b, r.value); break;
      case DeviceRec::V: net.addVSource(nm, r.a, r.b, r.value); break;
      case DeviceRec::Mos:
        net.addMos(nm, r.a, "g", r.b, "0", circuit::MosType::Nmos, r.value, 2e-6);
        break;
      case DeviceRec::Diode: net.addDiode(nm, r.a, r.b, r.value); break;
    }
  }
  return net;
}

std::vector<std::size_t> identityOrder(std::size_t n) {
  std::vector<std::size_t> order(n);
  for (std::size_t i = 0; i < n; ++i) order[i] = i;
  return order;
}

}  // namespace

class CacheKeyProperty : public ::testing::TestWithParam<int> {};

TEST_P(CacheKeyProperty, NetlistDigestIgnoresDeclarationOrderAndDeviceNames) {
  num::Rng rng(static_cast<std::uint64_t>(GetParam()) * 131 + 7);
  const auto recs = randomDeviceRecs(rng);

  auto order = identityOrder(recs.size());
  const auto reference = circuit::canonicalNetlistDigest(instantiate(recs, order));

  // Any declaration order — which also permutes NodeId assignment, since
  // nodes are created on first use — must hash identically.
  for (int shuffle = 0; shuffle < 4; ++shuffle) {
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[rng.index(i)]);
    EXPECT_EQ(circuit::canonicalNetlistDigest(instantiate(recs, order)), reference)
        << "seed " << GetParam() << " shuffle " << shuffle;
  }

  // Device *names* are labels, not electrical facts.
  EXPECT_EQ(circuit::canonicalNetlistDigest(instantiate(recs, identityOrder(recs.size()),
                                                        "_renamed")),
            reference);
}

TEST_P(CacheKeyProperty, AnyElectricalPerturbationMovesTheNetlistDigest) {
  num::Rng rng(static_cast<std::uint64_t>(GetParam()) * 257 + 29);
  auto recs = randomDeviceRecs(rng);
  const auto order = identityOrder(recs.size());
  const auto reference = circuit::canonicalNetlistDigest(instantiate(recs, order));

  // One device value nudged by one ulp-scale relative step: a different
  // circuit, therefore a different digest (exact-bit canonical form).
  auto perturbed = recs;
  const std::size_t victim = rng.index(recs.size());
  perturbed[victim].value = std::nextafter(perturbed[victim].value, 1e30);
  EXPECT_NE(circuit::canonicalNetlistDigest(instantiate(perturbed, order)), reference)
      << "seed " << GetParam();

  // Node renaming is deliberately digest-visible: connectivity labels are
  // part of a candidate's identity (the testbench measures named nodes).
  auto renamed = recs;
  bool touched = false;
  for (auto& r : renamed) {
    if (r.a == "n0") r.a = "n9", touched = true;
    if (r.b == "n0") r.b = "n9", touched = true;
  }
  if (touched)
    EXPECT_NE(circuit::canonicalNetlistDigest(instantiate(renamed, order)), reference);
}

TEST_P(CacheKeyProperty, ModelKeyIsIdenticalAcrossThreadsAndRepeats) {
  num::Rng rng(static_cast<std::uint64_t>(GetParam()) * 389 + 3);
  const sizing::TwoStageEquationModel model(proc(), 5e-12);
  std::vector<double> x;
  for (const auto& v : model.variables()) {
    const double t = rng.uniform();
    x.push_back(v.logScale && v.lo > 0 ? v.lo * std::pow(v.hi / v.lo, t)
                                       : v.lo + t * (v.hi - v.lo));
  }
  const auto reference = model.cacheKey(x);
  ASSERT_TRUE(reference.has_value());

  // Same candidate, computed concurrently on pool workers: every digest
  // must equal the serial one (the cache would otherwise split entries —
  // or worse, alias different candidates — depending on scheduling).
  core::ScopedThreadPool scoped(8);
  const auto keys = core::parallelMap(64, [&](std::size_t) { return model.cacheKey(x); });
  for (const auto& k : keys) {
    ASSERT_TRUE(k.has_value());
    EXPECT_EQ(*k, *reference);
  }
  EXPECT_EQ(*model.cacheKey(x), *reference);  // and across repeats
}

TEST_P(CacheKeyProperty, SizingPerturbationAboveQuantumMovesTheModelKey) {
  num::Rng rng(static_cast<std::uint64_t>(GetParam()) * 577 + 11);
  auto& c = amsyn::core::cache::EvalCache::instance();
  const double savedQuantum = c.quantum();
  const sizing::TwoStageEquationModel model(proc(), 5e-12);
  std::vector<double> x;
  for (const auto& v : model.variables()) {
    const double t = 0.2 + 0.6 * rng.uniform();
    x.push_back(v.logScale && v.lo > 0 ? v.lo * std::pow(v.hi / v.lo, t)
                                       : v.lo + t * (v.hi - v.lo));
  }

  // Exact mode (the default): a single one-ulp change is a different key.
  c.setQuantum(0.0);
  const auto exactRef = *model.cacheKey(x);
  auto x1 = x;
  const std::size_t victim = rng.index(x.size());
  x1[victim] = std::nextafter(x1[victim], x1[victim] * 2);
  EXPECT_NE(*model.cacheKey(x1), exactRef) << "seed " << GetParam();

  // Quantized mode: a relative step beyond ~2q is guaranteed a different
  // bucket for the perturbed parameter, hence a different key.
  const double q = 1e-6;
  c.setQuantum(q);
  const auto quantRef = *model.cacheKey(x);
  auto x2 = x;
  x2[victim] *= 1.0 + 5.0 * q;
  EXPECT_NE(*model.cacheKey(x2), quantRef) << "seed " << GetParam();
  EXPECT_EQ(*model.cacheKey(x), quantRef);  // unperturbed stays put
  c.setQuantum(savedQuantum);
}

TEST_P(CacheKeyProperty, QuantizedHashSeparatesValuesBeyondTwoQuanta) {
  num::Rng rng(static_cast<std::uint64_t>(GetParam()) * 769 + 5);
  const double q = 0.01;
  for (int i = 0; i < 32; ++i) {
    // Log-uniform magnitudes across the sizes amsyn actually optimizes
    // (femtofarads to hundreds of microns to volts).
    const double v = std::pow(10.0, -15.0 + 18.0 * rng.uniform());
    amsyn::core::cache::Hasher128 h1, h2, h3;
    h1.mixQuantized(v, q);
    h2.mixQuantized(v * (1.0 + 5.0 * q), q);
    h3.mixQuantized(v, q);
    EXPECT_NE(h1.digest(), h2.digest()) << "v=" << v;
    EXPECT_EQ(h1.digest(), h3.digest()) << "v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CacheKeyProperty, ::testing::Range(1, 13));
