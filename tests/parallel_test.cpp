#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "core/parallel.hpp"
#include "core/threadpool.hpp"
#include "manufacture/corners.hpp"
#include "numeric/rng.hpp"
#include "sizing/eqmodel.hpp"
#include "topology/genetic.hpp"
#include "topology/library.hpp"

namespace core = amsyn::core;
namespace num = amsyn::num;
namespace sz = amsyn::sizing;
namespace tp = amsyn::topology;
namespace mf = amsyn::manufacture;
namespace ckt = amsyn::circuit;

namespace {
const ckt::Process& nominal() { return ckt::defaultProcess(); }

mf::ModelFactory twoStageFactory(double cl = 5e-12) {
  return [cl](const ckt::Process& p) {
    return sz::makeTwoStageCornerModel(p, nominal(), cl);
  };
}
}  // namespace

// ---------------------------------------------------------------------------
// Thread pool

TEST(ThreadPool, ExecutesEverySubmittedTask) {
  std::atomic<int> count{0};
  {
    core::ThreadPool pool(3);
    for (int i = 0; i < 200; ++i) pool.submit([&] { count.fetch_add(1); });
    // Destructor drains the queues: no task is ever dropped.
  }
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPool, TasksSubmittedFromWorkersRun) {
  std::atomic<int> count{0};
  {
    core::ThreadPool pool(2);
    for (int i = 0; i < 16; ++i)
      pool.submit([&count, &pool] {
        // Nested submit from a worker thread lands on its own deque.
        pool.submit([&count] { count.fetch_add(1); });
      });
  }
  EXPECT_EQ(count.load(), 16);
}

TEST(ThreadPool, ConfiguredThreadsReadsEnvironment) {
  ::setenv("AMSYN_THREADS", "3", 1);
  EXPECT_EQ(core::ThreadPool::configuredThreads(), 3u);
  ::setenv("AMSYN_THREADS", "0", 1);  // invalid: fall back to hardware
  EXPECT_GE(core::ThreadPool::configuredThreads(), 1u);
  ::unsetenv("AMSYN_THREADS");
  EXPECT_GE(core::ThreadPool::configuredThreads(), 1u);
}

TEST(ThreadPool, ScopedOverrideInstallsAndRestores) {
  {
    core::ScopedThreadPool scoped(2);
    EXPECT_EQ(&core::ThreadPool::global(), &scoped.pool());
    EXPECT_EQ(scoped.pool().threadCount(), 2u);
  }
  // After the scope the default global pool is back.
  EXPECT_GE(core::ThreadPool::global().threadCount(), 1u);
}

// ---------------------------------------------------------------------------
// parallelFor / parallelMap

TEST(Parallel, ZeroTasksIsANoop) {
  bool called = false;
  core::parallelFor(0, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
  const auto out = core::parallelMap(0, [](std::size_t i) { return i; });
  EXPECT_TRUE(out.empty());
}

TEST(Parallel, EveryIndexRunsExactlyOnce) {
  core::ScopedThreadPool scoped(4);
  std::vector<std::atomic<int>> hits(1000);
  core::parallelFor(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, MapLandsResultsByIndex) {
  core::ScopedThreadPool scoped(4);
  const auto out = core::parallelMap(512, [](std::size_t i) { return i * i; });
  ASSERT_EQ(out.size(), 512u);
  for (std::size_t i = 0; i < out.size(); ++i) EXPECT_EQ(out[i], i * i);
}

TEST(Parallel, ExceptionsPropagateToCaller) {
  core::ScopedThreadPool scoped(4);
  EXPECT_THROW(core::parallelFor(100,
                                 [](std::size_t i) {
                                   if (i == 37) throw std::runtime_error("boom");
                                 }),
               std::runtime_error);
  // The pool survives a failed loop and keeps serving work.
  std::atomic<int> count{0};
  core::parallelFor(50, [&](std::size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 50);
}

TEST(Parallel, NestedLoopsDoNotDeadlock) {
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    core::ScopedThreadPool scoped(threads);
    std::atomic<int> count{0};
    core::parallelFor(4, [&](std::size_t) {
      core::parallelFor(8, [&](std::size_t) { count.fetch_add(1); });
    });
    EXPECT_EQ(count.load(), 32) << threads << " threads";
  }
}

TEST(Parallel, PoolOverrideParameterIsHonored) {
  core::ThreadPool pool(2);
  std::atomic<int> count{0};
  core::parallelFor(
      64, [&](std::size_t) { count.fetch_add(1); }, &pool);
  EXPECT_EQ(count.load(), 64);
}

// ---------------------------------------------------------------------------
// RNG stream splitting

TEST(Rng, StreamSeedIsAPureFunctionOfSeedAndStream) {
  EXPECT_EQ(num::Rng::streamSeed(42, 7), num::Rng::streamSeed(42, 7));
  EXPECT_NE(num::Rng::streamSeed(42, 0), num::Rng::streamSeed(42, 1));
  EXPECT_NE(num::Rng::streamSeed(42, 0), num::Rng::streamSeed(43, 0));
}

TEST(Rng, SplitMatchesStreamConstructor) {
  num::Rng parent(123);
  num::Rng a = parent.split(5);
  num::Rng b(123, 5);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Rng, SplitIgnoresParentDrawCount) {
  num::Rng fresh(99);
  num::Rng used(99);
  for (int i = 0; i < 100; ++i) used.uniform();
  // Streams derive from the construction seed, not engine state: the split
  // set cannot depend on how much the parent has been consumed.
  num::Rng a = fresh.split(2);
  num::Rng b = used.split(2);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.uniform(), b.uniform());
}

TEST(Rng, StreamsAreDecorrelated) {
  // Crude independence check: the mean of products of paired draws from
  // neighboring streams should be near E[u]^2 = 0.25.
  num::Rng parent(7);
  double acc = 0.0;
  const int n = 2000;
  for (int s = 0; s < 4; ++s) {
    num::Rng a = parent.split(2 * s);
    num::Rng b = parent.split(2 * s + 1);
    for (int i = 0; i < n / 4; ++i) acc += a.uniform() * b.uniform();
  }
  EXPECT_NEAR(acc / n, 0.25, 0.02);
}

// ---------------------------------------------------------------------------
// Determinism across thread counts.  These are the load-bearing tests: every
// parallel loop must produce bit-identical results at any pool size.

TEST(Determinism, CornerSearchIdenticalAtOneAndEightThreads) {
  const auto factory = twoStageFactory();
  sz::TwoStageEquationModel model(nominal(), 5e-12);
  const auto x = model.initialPoint();
  mf::VariationSpace space;
  const sz::Spec spec{"gain_db", sz::SpecKind::GreaterEqual,
                      model.evaluate(x).at("gain_db"), 1.0, 0.0};

  auto run = [&](std::size_t threads) {
    core::ScopedThreadPool scoped(threads);
    return mf::worstCaseCorner(factory, nominal(), space, x, spec);
  };
  const auto serial = run(1);
  const auto parallel = run(8);
  EXPECT_EQ(serial.margin, parallel.margin);
  EXPECT_EQ(serial.value, parallel.value);
  ASSERT_EQ(serial.corner.size(), parallel.corner.size());
  for (std::size_t i = 0; i < serial.corner.size(); ++i)
    EXPECT_EQ(serial.corner[i], parallel.corner[i]) << "coordinate " << i;
}

TEST(Determinism, GeneticSelectionIdenticalAtOneAndEightThreads) {
  const tp::TopologyLibrary lib = tp::amplifierLibrary(nominal(), 5e-12);
  sz::SpecSet specs;
  specs.atLeast("gain_db", 60.0).atLeast("ugf", 3e6).minimize("power", 0.5, 1e-3);
  tp::GeneticOptions opts;
  opts.seed = 13;
  opts.populationSize = 12;
  opts.generations = 6;

  auto run = [&](std::size_t threads) {
    core::ScopedThreadPool scoped(threads);
    return tp::geneticSelectAndSize(lib, specs, opts);
  };
  const auto serial = run(1);
  const auto parallel = run(8);
  EXPECT_EQ(serial.topology, parallel.topology);
  EXPECT_EQ(serial.cost, parallel.cost);
  EXPECT_EQ(serial.feasible, parallel.feasible);
  EXPECT_EQ(serial.evaluations, parallel.evaluations);
  ASSERT_EQ(serial.x.size(), parallel.x.size());
  for (std::size_t i = 0; i < serial.x.size(); ++i) EXPECT_EQ(serial.x[i], parallel.x[i]);
  EXPECT_EQ(serial.populationShare, parallel.populationShare);
}

TEST(Determinism, MultistartSynthesisIdenticalAtOneAndEightThreads) {
  sz::TwoStageEquationModel model(nominal(), 5e-12);
  sz::SpecSet specs;
  specs.atLeast("gain_db", 60.0).atLeast("ugf", 3e6).minimize("power", 0.5, 1e-3);
  sz::SynthesisOptions opts;
  opts.seed = 11;
  opts.multistarts = 4;
  opts.anneal.stagnationStages = 2;
  opts.anneal.coolingRate = 0.7;
  opts.refineEvaluations = 40;

  auto run = [&](std::size_t threads) {
    core::ScopedThreadPool scoped(threads);
    const sz::CostFunction cost(model, specs, {});
    return sz::synthesize(cost, opts);
  };
  const auto serial = run(1);
  const auto parallel = run(8);
  EXPECT_EQ(serial.cost, parallel.cost);
  EXPECT_EQ(serial.feasible, parallel.feasible);
  EXPECT_EQ(serial.evaluations, parallel.evaluations);
  ASSERT_EQ(serial.x.size(), parallel.x.size());
  for (std::size_t i = 0; i < serial.x.size(); ++i) EXPECT_EQ(serial.x[i], parallel.x[i]);
}

TEST(Multistart, SingleStartPreservesLegacySeedBehavior) {
  // multistarts == 1 must run the annealer exactly as before this feature:
  // seeded with opts.seed itself, not with stream 0 of it.
  sz::TwoStageEquationModel model(nominal(), 5e-12);
  sz::SpecSet specs;
  specs.atLeast("gain_db", 60.0).minimize("power", 0.5, 1e-3);
  sz::SynthesisOptions opts;
  opts.seed = 11;
  opts.anneal.stagnationStages = 2;
  opts.refineEvaluations = 40;
  const sz::CostFunction costA(model, specs, {});
  const auto a = sz::synthesize(costA, opts);
  opts.multistarts = 1;  // explicit 1 must match the default
  const sz::CostFunction costB(model, specs, {});
  const auto b = sz::synthesize(costB, opts);
  EXPECT_EQ(a.cost, b.cost);
  ASSERT_EQ(a.x.size(), b.x.size());
  for (std::size_t i = 0; i < a.x.size(); ++i) EXPECT_EQ(a.x[i], b.x[i]);
}
