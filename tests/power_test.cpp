#include <gtest/gtest.h>

#include <numeric>

#include "power/grid.hpp"
#include "power/rail.hpp"

namespace pw = amsyn::power;
namespace geom = amsyn::geom;
namespace ckt = amsyn::circuit;

namespace {
const ckt::Process& proc() { return ckt::defaultProcess(); }

/// A synthetic mixed-signal chip: one hot digital DSP, a quieter digital
/// controller, and two sensitive analog blocks.
pw::PowerGridSpec dataChannelSpec() {
  pw::PowerGridSpec s;
  s.chip = geom::Rect::fromSize(0, 0, 20000, 20000);  // 2 x 2 mm at 0.4 um lambda
  s.rows = 6;
  s.cols = 6;
  s.vdd = 5.0;
  s.pads = {{{0, 0}, 0.5, 5e-9}, {{20000, 20000}, 0.5, 5e-9}};
  s.loads = {
      {"dsp", geom::Rect::fromSize(1000, 1000, 8000, 8000), 60e-3, 300e-3, 2e-9, 400e-12,
       false},
      {"ctrl", geom::Rect::fromSize(12000, 1000, 6000, 5000), 20e-3, 100e-3, 2e-9,
       150e-12, false},
      {"adc", geom::Rect::fromSize(1000, 12000, 5000, 6000), 8e-3, 0.0, 2e-9, 200e-12,
       true},
      {"vco", geom::Rect::fromSize(13000, 13000, 4000, 4000), 5e-3, 0.0, 2e-9, 200e-12,
       true},
  };
  return s;
}
}  // namespace

TEST(PowerGrid, BuildsMeshWithExpectedCounts) {
  pw::PowerGrid grid(dataChannelSpec(), proc());
  EXPECT_EQ(grid.nodeCount(), 36u);
  // 6x6 mesh: 2 * 6 * 5 = 60 wires.
  EXPECT_EQ(grid.wires().size(), 60u);
}

TEST(PowerGrid, DcSolveShowsIrDrop) {
  pw::PowerGrid grid(dataChannelSpec(), proc());
  const auto v = grid.dcSolve();
  double vmin = 1e9, vmax = -1e9;
  for (double x : v) {
    vmin = std::min(vmin, x);
    vmax = std::max(vmax, x);
  }
  EXPECT_LT(vmax, 5.0 + 1e-9);  // nothing above the supply
  EXPECT_LT(vmin, vmax);        // a real gradient exists
  EXPECT_GT(vmin, 0.0);         // grid not collapsed
}

TEST(PowerGrid, WideningWiresReducesDrop) {
  pw::PowerGrid grid(dataChannelSpec(), proc());
  pw::applyUniformWidth(grid, 2e-6);
  const auto thin = grid.analyze();
  pw::applyUniformWidth(grid, 20e-6);
  const auto thick = grid.analyze();
  EXPECT_LT(thick.worstDcDropVolts, thin.worstDcDropVolts);
  EXPECT_GT(thick.metalAreaM2, thin.metalAreaM2);
}

TEST(PowerGrid, TransferImpedanceFallsWithFrequencyBeyondDecap) {
  pw::PowerGrid grid(dataChannelSpec(), proc());
  pw::applyUniformWidth(grid, 10e-6);
  const std::size_t victim = grid.nearestNode({1000, 12000});  // adc corner
  const double zLow = grid.transferImpedance("dsp", victim, 1e3);
  const double zHigh = grid.transferImpedance("dsp", victim, 1e9);
  EXPECT_GT(zLow, 0.0);
  // Decoupling caps shunt the grid at high frequency.
  EXPECT_LT(zHigh, zLow);
}

TEST(PowerGrid, AnalysisReportsAllMetrics) {
  pw::PowerGrid grid(dataChannelSpec(), proc());
  const auto a = grid.analyze();
  ASSERT_TRUE(a.solved);
  EXPECT_GT(a.worstDcDropVolts, 0.0);
  EXPECT_GT(a.worstSpikeVolts, 0.0);
  EXPECT_GT(a.worstEmStressRatio, 0.0);
  EXPECT_GT(a.metalAreaM2, 0.0);
  EXPECT_LE(a.worstAnalogDcDropVolts, a.worstDcDropVolts + 1e-12);
  EXPECT_LE(a.worstAnalogSpikeVolts, a.worstSpikeVolts + 1e-12);
}

TEST(Rail, SynthesisMeetsConstraintsBaselineViolates) {
  auto spec = dataChannelSpec();
  pw::PowerGrid grid(spec, proc());
  pw::applyUniformWidth(grid, 2e-6);  // skinny start, like a digital router
  const auto before = grid.analyze();

  pw::RailConstraints cons;
  const auto res = pw::synthesizePowerGrid(grid, cons, proc());
  EXPECT_TRUE(res.constraintsMet)
      << "dc=" << res.final.worstDcDropVolts << " spike=" << res.final.worstSpikeVolts
      << " analogSpike=" << res.final.worstAnalogSpikeVolts
      << " em=" << res.final.worstEmStressRatio;
  // The initial skinny grid must actually have violated something, or the
  // experiment is vacuous.
  EXPECT_FALSE(pw::meets(before, cons));
  EXPECT_LE(res.final.worstDcDropVolts, cons.maxDcDropVolts + 1e-9);
}

TEST(Rail, ShrinkPassRecoversArea) {
  auto spec = dataChannelSpec();
  pw::PowerGrid gridA(spec, proc());
  pw::applyUniformWidth(gridA, 2e-6);
  pw::RailOptions noShrink;
  noShrink.shrinkPass = false;
  pw::RailConstraints cons;
  const auto resA = pw::synthesizePowerGrid(gridA, cons, proc(), noShrink);

  pw::PowerGrid gridB(spec, proc());
  pw::applyUniformWidth(gridB, 2e-6);
  pw::RailOptions shrink;
  shrink.shrinkPass = true;
  const auto resB = pw::synthesizePowerGrid(gridB, cons, proc(), shrink);

  if (resA.constraintsMet && resB.constraintsMet) {
    EXPECT_LE(resB.final.metalAreaM2, resA.final.metalAreaM2 + 1e-15);
  }
}

TEST(Rail, EmViolationGetsFixed) {
  auto spec = dataChannelSpec();
  // Crank the DSP current so EM dominates.
  spec.loads[0].avgCurrent = 200e-3;
  pw::PowerGrid grid(spec, proc());
  pw::applyUniformWidth(grid, 1.5e-6);
  EXPECT_GT(grid.analyze().worstEmStressRatio, 1.0);
  pw::RailConstraints cons;
  cons.maxDcDropVolts = 0.5;  // relax others; isolate EM
  cons.maxSpikeVolts = 2.0;
  cons.maxAnalogSpikeVolts = 2.0;
  const auto res = pw::synthesizePowerGrid(grid, cons, proc());
  EXPECT_LE(res.final.worstEmStressRatio, 1.0 + 1e-9);
}
