#include <gtest/gtest.h>

#include <cmath>

#include "circuit/mosmodel.hpp"
#include "circuit/netlist.hpp"
#include "circuit/parser.hpp"
#include "circuit/process.hpp"

namespace ckt = amsyn::circuit;

TEST(Netlist, GroundAliases) {
  ckt::Netlist n;
  EXPECT_EQ(n.node("0"), ckt::kGround);
  EXPECT_EQ(n.node("gnd"), ckt::kGround);
  EXPECT_NE(n.node("out"), ckt::kGround);
}

TEST(Netlist, BuildersRegisterDevices) {
  ckt::Netlist n;
  n.addResistor("R1", "a", "b", 1e3);
  n.addCapacitor("C1", "b", "0", 1e-12);
  n.addVSource("V1", "a", "0", 5.0, 1.0);
  n.addMos("M1", "d", "g", "s", "0", ckt::MosType::Nmos, 10e-6, 1e-6);
  EXPECT_EQ(n.devices().size(), 4u);
  EXPECT_EQ(n.branchCount(), 1u);  // only V1
  EXPECT_EQ(n.device("M1").mos.w, 10e-6);
  EXPECT_THROW(n.device("nope"), std::out_of_range);
}

TEST(Netlist, RejectsBadValues) {
  ckt::Netlist n;
  EXPECT_THROW(n.addResistor("R1", "a", "b", 0.0), std::invalid_argument);
  EXPECT_THROW(n.addResistor("R2", "a", "b", -5.0), std::invalid_argument);
  EXPECT_THROW(n.addMos("M1", "d", "g", "s", "b", ckt::MosType::Nmos, -1e-6, 1e-6),
               std::invalid_argument);
}

TEST(Netlist, DevicesOnNode) {
  ckt::Netlist n;
  n.addResistor("R1", "a", "b", 1e3);
  n.addResistor("R2", "b", "c", 1e3);
  const auto onB = n.devicesOnNode(n.node("b"));
  EXPECT_EQ(onB.size(), 2u);
}

TEST(Waveform, PulseShape) {
  ckt::Waveform w;
  w.kind = ckt::Waveform::Kind::Pulse;
  w.v1 = 0.0; w.v2 = 5.0;
  w.delay = 1e-9; w.rise = 1e-9; w.fall = 1e-9; w.width = 5e-9; w.period = 20e-9;
  EXPECT_DOUBLE_EQ(w.at(0.0), 0.0);
  EXPECT_NEAR(w.at(1.5e-9), 2.5, 1e-6);   // mid-rise
  EXPECT_DOUBLE_EQ(w.at(4e-9), 5.0);      // plateau
  EXPECT_NEAR(w.at(7.5e-9), 2.5, 1e-6);   // mid-fall
  EXPECT_DOUBLE_EQ(w.at(15e-9), 0.0);     // back low
  EXPECT_NEAR(w.at(21.5e-9), 2.5, 1e-6);  // periodic repeat
}

TEST(Waveform, PiecewiseLinear) {
  ckt::Waveform w;
  w.kind = ckt::Waveform::Kind::PiecewiseLinear;
  w.points = {{0.0, 0.0}, {1.0, 2.0}, {3.0, 2.0}};
  EXPECT_DOUBLE_EQ(w.at(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(w.at(0.5), 1.0);
  EXPECT_DOUBLE_EQ(w.at(2.0), 2.0);
  EXPECT_DOUBLE_EQ(w.at(9.0), 2.0);
}

TEST(ParseValue, EngineeringSuffixes) {
  EXPECT_DOUBLE_EQ(ckt::parseValue("1.5k"), 1500.0);
  EXPECT_DOUBLE_EQ(ckt::parseValue("10u"), 10e-6);
  EXPECT_DOUBLE_EQ(ckt::parseValue("2meg"), 2e6);
  EXPECT_DOUBLE_EQ(ckt::parseValue("3p"), 3e-12);
  EXPECT_DOUBLE_EQ(ckt::parseValue("4.7n"), 4.7e-9);
  EXPECT_DOUBLE_EQ(ckt::parseValue("1e-3"), 1e-3);
  EXPECT_THROW(ckt::parseValue("abc"), std::invalid_argument);
}

TEST(ParseValue, TrailingUnitLettersAreIgnored) {
  // SPICE semantics: an optional scale factor, then arbitrary alphabetic
  // unit letters that carry no meaning ("v", "hz", "ohm", "a", "x"...).
  EXPECT_DOUBLE_EQ(ckt::parseValue("2.5v"), 2.5);
  EXPECT_DOUBLE_EQ(ckt::parseValue("1kohm"), 1e3);
  EXPECT_DOUBLE_EQ(ckt::parseValue("100mhz"), 0.1);  // m = milli, hz = unit
  EXPECT_DOUBLE_EQ(ckt::parseValue("3GHz"), 3e9);
  EXPECT_DOUBLE_EQ(ckt::parseValue("10uA"), 10e-6);
  EXPECT_DOUBLE_EQ(ckt::parseValue("5ns"), 5e-9);
  EXPECT_DOUBLE_EQ(ckt::parseValue("1x"), 1.0);  // unknown letter = pure unit
}

TEST(ParseValue, MegVersusMilliDisambiguation) {
  // "meg" must be matched as a whole before "m" falls through to milli.
  EXPECT_DOUBLE_EQ(ckt::parseValue("1megohm"), 1e6);
  EXPECT_DOUBLE_EQ(ckt::parseValue("1mohm"), 1e-3);
  EXPECT_DOUBLE_EQ(ckt::parseValue("2.2MEG"), 2.2e6);
  EXPECT_DOUBLE_EQ(ckt::parseValue("1mv"), 1e-3);
}

TEST(ParseValue, NonAlphabeticTailStillThrows) {
  EXPECT_THROW(ckt::parseValue("1k5"), std::invalid_argument);
  EXPECT_THROW(ckt::parseValue("2.5v2"), std::invalid_argument);
  EXPECT_THROW(ckt::parseValue("1_ohm"), std::invalid_argument);
}

TEST(ParseDeck, SimpleRcCircuit) {
  const auto net = ckt::parseDeck(R"(
* a simple RC
V1 in 0 DC 1 AC 1
R1 in out 1k
C1 out 0 1p
.end
)");
  EXPECT_EQ(net.devices().size(), 3u);
  EXPECT_DOUBLE_EQ(net.device("R1").value, 1000.0);
  EXPECT_DOUBLE_EQ(net.device("V1").acMag, 1.0);
}

TEST(ParseDeck, MosWithParameters) {
  const auto net = ckt::parseDeck("M1 d g s 0 PMOS W=20u L=2u M=4\n.end\n");
  const auto& m = net.device("M1").mos;
  EXPECT_EQ(m.type, ckt::MosType::Pmos);
  EXPECT_DOUBLE_EQ(m.w, 20e-6);
  EXPECT_DOUBLE_EQ(m.l, 2e-6);
  EXPECT_EQ(m.m, 4);
}

TEST(ParseDeck, RejectsMalformedCards) {
  EXPECT_THROW(ckt::parseDeck("R1 a b\n"), std::invalid_argument);
  EXPECT_THROW(ckt::parseDeck("M1 d g s b NMOS\n"), std::invalid_argument);
  EXPECT_THROW(ckt::parseDeck("X1 a b c\n"), std::invalid_argument);
}

// ---------------------------------------------------------------- MOS model

class MosModelTest : public ::testing::Test {
 protected:
  ckt::Process proc = ckt::defaultProcess();
  ckt::MosParams nmos{ckt::MosType::Nmos, 10e-6, 1e-6, 1, 0.0, 1.0};
  ckt::MosParams pmos{ckt::MosType::Pmos, 10e-6, 1e-6, 1, 0.0, 1.0};
};

TEST_F(MosModelTest, CutoffBelowThreshold) {
  const auto op = ckt::evalMos(nmos, proc, 2.0, 0.3, 0.0, 0.0);
  EXPECT_EQ(op.region, ckt::MosRegion::Cutoff);
  EXPECT_NEAR(op.ids, 0.0, 1e-9);
}

TEST_F(MosModelTest, SaturationCurrentMatchesSquareLaw) {
  const double vgs = 1.5, vds = 3.0;
  const auto op = ckt::evalMos(nmos, proc, vds, vgs, 0.0, 0.0);
  EXPECT_EQ(op.region, ckt::MosRegion::Saturation);
  const double beta = proc.kpN * nmos.w / nmos.l;
  const double vov = vgs - proc.vt0N;
  const double lam = proc.lambdaN * 1e-6 / nmos.l;
  EXPECT_NEAR(op.ids, 0.5 * beta * vov * vov * (1 + lam * vds), 1e-9);
  EXPECT_NEAR(op.gm, beta * vov * (1 + lam * vds), 1e-9);
}

TEST_F(MosModelTest, TriodeRegion) {
  const auto op = ckt::evalMos(nmos, proc, 0.1, 3.0, 0.0, 0.0);
  EXPECT_EQ(op.region, ckt::MosRegion::Triode);
  EXPECT_GT(op.ids, 0.0);
  EXPECT_GT(op.gds, op.gm);  // deep triode: gds dominates
}

TEST_F(MosModelTest, BodyEffectRaisesThreshold) {
  const auto noBody = ckt::evalMos(nmos, proc, 3.0, 1.5, 0.0, 0.0);
  const auto withBody = ckt::evalMos(nmos, proc, 3.0, 1.5, 0.0, -2.0);  // vb below vs
  EXPECT_GT(withBody.vth, noBody.vth);
  EXPECT_LT(withBody.ids, noBody.ids);
}

TEST_F(MosModelTest, PmosSymmetry) {
  // PMOS with source at vdd, gate low => conducting; |ids| mirrors NMOS.
  const auto op = ckt::evalMos(pmos, proc, 2.0, 3.5, 5.0, 5.0);  // vsg = 1.5, vsd = 3
  EXPECT_EQ(op.region, ckt::MosRegion::Saturation);
  EXPECT_LT(op.ids, 0.0);  // current flows out of the drain terminal
}

TEST_F(MosModelTest, DrainSourceSwapAntisymmetry) {
  // Swapping drain/source voltages must flip the current sign (the channel
  // is symmetric in level 1).
  const auto fwd = ckt::evalMos(nmos, proc, 1.0, 3.0, 0.0, 0.0);
  const auto rev = ckt::evalMos(nmos, proc, 0.0, 3.0, 1.0, 0.0);
  EXPECT_NEAR(fwd.ids, -rev.ids, 1e-12);
}

TEST_F(MosModelTest, MultiplicityScalesCurrent) {
  auto m4 = nmos;
  m4.m = 4;
  const auto op1 = ckt::evalMos(nmos, proc, 3.0, 1.5, 0.0, 0.0);
  const auto op4 = ckt::evalMos(m4, proc, 3.0, 1.5, 0.0, 0.0);
  EXPECT_NEAR(op4.ids, 4.0 * op1.ids, 1e-12);
}

TEST_F(MosModelTest, CapsPartitionByRegion) {
  const auto sat = ckt::evalMos(nmos, proc, 3.0, 1.5, 0.0, 0.0);
  EXPECT_GT(sat.cgs, sat.cgd);  // saturation: cgs ~ 2/3 Cox, cgd = overlap only
  const auto tri = ckt::evalMos(nmos, proc, 0.05, 3.0, 0.0, 0.0);
  EXPECT_NEAR(tri.cgs, tri.cgd, 1e-18);  // triode: split evenly
}

TEST_F(MosModelTest, NoisePsdPositiveAndFlickerRises) {
  const auto op = ckt::evalMos(nmos, proc, 3.0, 1.5, 0.0, 0.0);
  const double lowF = ckt::mosNoisePsd(nmos, proc, op, 10.0);
  const double highF = ckt::mosNoisePsd(nmos, proc, op, 1e7);
  EXPECT_GT(lowF, highF);  // 1/f dominates at low frequency
  EXPECT_GT(highF, 0.0);
}

TEST(Process, DefaultsSane) {
  const auto& p = ckt::defaultProcess();
  EXPECT_GT(p.vdd, 0);
  EXPECT_GT(p.kpN, p.kpP);  // electrons faster than holes
  EXPECT_LT(p.vt0P, 0);
  EXPECT_GT(p.kT(), 0);
}
