// Golden-file regression test for the flow run-report JSON schema
// (core/runreport.hpp).  The report's *shape* — key set, nesting, section
// order — is a public interface consumed by downstream tooling (the
// BENCH_*.json scrapers, CI trend dashboards), so accidental schema drift
// must fail loudly.  Values are volatile (timings, counter magnitudes), so
// the comparison masks every JSON number and neutralizes the spans section
// (span *paths* depend on which pool worker opened a nested span first).
//
// This test lives in its own binary on purpose: metrics-registry counters
// register lazily on first use, so the registered-counter *set* — and
// therefore the golden key set — must not depend on whichever unrelated
// tests happened to run earlier in the same process.
//
// Regenerating the golden after an intentional schema change:
//
//   cmake --build build --target report_schema_test
//   AMSYN_REGEN_GOLDEN=1 ./build/tests/report_schema_test
//
// then review the diff of tests/golden/flow_run_report.golden.json.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "circuit/process.hpp"
#include "core/evalcache.hpp"
#include "core/flow.hpp"
#include "core/parallel.hpp"
#include "core/surrogate.hpp"

namespace core = amsyn::core;
namespace sz = amsyn::sizing;
namespace ckt = amsyn::circuit;

#ifndef AMSYN_GOLDEN_DIR
#error "AMSYN_GOLDEN_DIR must point at tests/golden (set in tests/CMakeLists.txt)"
#endif

namespace {

const std::string kGoldenPath =
    std::string(AMSYN_GOLDEN_DIR) + "/flow_run_report.golden.json";

/// Replace every JSON number literal (outside strings) with '#' so the
/// comparison pins the schema, not the run's measurements.
std::string maskNumbers(const std::string& json) {
  std::string out;
  out.reserve(json.size());
  bool inString = false;
  for (std::size_t i = 0; i < json.size(); ++i) {
    const char c = json[i];
    if (inString) {
      out.push_back(c);
      if (c == '\\' && i + 1 < json.size()) out.push_back(json[++i]);
      else if (c == '"') inString = false;
      continue;
    }
    if (c == '"') {
      inString = true;
      out.push_back(c);
      continue;
    }
    const bool startsNumber =
        std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && i + 1 < json.size() &&
         std::isdigit(static_cast<unsigned char>(json[i + 1])));
    if (!startsNumber) {
      out.push_back(c);
      continue;
    }
    while (i < json.size() &&
           (std::isdigit(static_cast<unsigned char>(json[i])) || json[i] == '.' ||
            json[i] == 'e' || json[i] == 'E' || json[i] == '+' || json[i] == '-'))
      ++i;
    --i;
    out.push_back('#');
  }
  return out;
}

/// Drop the spans payload: span paths encode which caller's stack a worker
/// thread inherited, which is scheduling-dependent by nature.  The section
/// key itself stays, so dropping spans from the schema still fails.
std::string neutralizeSpans(const std::string& json) {
  const auto pos = json.find("\"spans\"");
  if (pos == std::string::npos) return json;
  return json.substr(0, pos) + "\"spans\": \"<masked>\"\n}\n";
}

std::string normalizedFlowReport(
    core::SurrogateOption surrogate = core::SurrogateOption::Off) {
  // Pinned configuration: fixed seed, fixed thread count, cache enabled at
  // defaults — the same flow tests/evalcache_test.cpp proves bit-identical
  // across all of these knobs, so this report is reproducible everywhere.
  core::cache::EvalCache::instance().setEnabled(true);
  core::cache::EvalCache::instance().clear();
  core::ScopedThreadPool scoped(2);
  sz::SpecSet specs;
  specs.atLeast("gain_db", 36.0)
      .atLeast("ugf", 1e7)
      .atLeast("pm", 60.0)
      .atMost("power", 4e-3)
      .minimize("power", 0.3, 1e-3);
  core::FlowOptions opts;
  opts.loadCap = 2e-12;
  opts.seed = 3;
  opts.synthesis.seed = 11;
  opts.synthesis.multistarts = 2;
  opts.synthesis.anneal.stagnationStages = 2;
  opts.synthesis.anneal.coolingRate = 0.7;
  opts.synthesis.refineEvaluations = 40;
  opts.layout.annealPlacement = false;
  opts.surrogate = surrogate;
  amsyn::core::surrogate::Store::instance().clear();
  const auto result = core::synthesizeAmplifier(specs, ckt::defaultProcess(), opts);
  return neutralizeSpans(maskNumbers(core::flowRunReportJson(result)));
}

}  // namespace

TEST(ReportSchema, FlowRunReportMatchesGolden) {
  const std::string actual = normalizedFlowReport();

  if (const char* regen = std::getenv("AMSYN_REGEN_GOLDEN"); regen && *regen == '1') {
    std::ofstream out(kGoldenPath);
    ASSERT_TRUE(out.good()) << "cannot write " << kGoldenPath;
    out << actual;
    GTEST_SKIP() << "regenerated " << kGoldenPath;
  }

  std::ifstream in(kGoldenPath);
  ASSERT_TRUE(in.good()) << "missing golden file " << kGoldenPath
                         << " — regenerate with AMSYN_REGEN_GOLDEN=1 (see header)";
  std::ostringstream golden;
  golden << in.rdbuf();
  EXPECT_EQ(actual, golden.str())
      << "flow run-report schema drifted; if intentional, regenerate via "
         "AMSYN_REGEN_GOLDEN=1 ./build/tests/report_schema_test and review the diff";
}

TEST(ReportSchema, SchemaIsSurrogateModeIndependent) {
  // The core.surrogate.* counters register eagerly (not at first use), so
  // the report's key set — the schema — must be identical whether the
  // surrogate is off, ordering, or pruning.  For Off and Ordering the whole
  // normalized report matches (ordering keeps flow results bit-identical;
  // tests/surrogate_test.cpp proves that at the result level); Pruning in
  // this flow never fires (equation models are Cheap, below the prune
  // gate's Heavy threshold), so its report matches too.
  const std::string off = normalizedFlowReport(core::SurrogateOption::Off);
  EXPECT_EQ(off, normalizedFlowReport(core::SurrogateOption::Ordering));
  EXPECT_EQ(off, normalizedFlowReport(core::SurrogateOption::Pruning));
  amsyn::core::surrogate::Store::instance().setMode(
      amsyn::core::surrogate::Mode::Off);
}

TEST(ReportSchema, MaskingIsStableAcrossRuns) {
  // The masked form itself must be deterministic, or the golden comparison
  // would flake: two fresh flows in the same process produce byte-identical
  // normalized reports.
  EXPECT_EQ(normalizedFlowReport(), normalizedFlowReport());
}
