#include <gtest/gtest.h>

#include <cmath>

#include "circuit/parser.hpp"
#include "sim/ac.hpp"
#include "sim/dc.hpp"
#include "symbolic/analyze.hpp"
#include "symbolic/linearize.hpp"
#include "symbolic/sympoly.hpp"

namespace sym = amsyn::symbolic;
namespace ckt = amsyn::circuit;
namespace sim = amsyn::sim;

TEST(SymSum, CanonicalMerging) {
  sym::SymbolTable t;
  const auto a = t.intern("a", 2.0);
  const auto b = t.intern("b", 3.0);
  auto s = sym::SymSum::symbol(a) * sym::SymSum::symbol(b);
  s = s + sym::SymSum::symbol(b) * sym::SymSum::symbol(a);  // same product
  EXPECT_EQ(s.termCount(), 1u);
  EXPECT_DOUBLE_EQ(s.evaluate(t), 12.0);  // 2 * (a*b)
}

TEST(SymSum, CancellationRemovesTerm) {
  sym::SymbolTable t;
  const auto a = t.intern("a", 2.0);
  const auto s = sym::SymSum::symbol(a) - sym::SymSum::symbol(a);
  EXPECT_TRUE(s.isZero());
}

TEST(SymSum, SimplificationDropsSmallTerms) {
  sym::SymbolTable t;
  const auto big = t.intern("big", 1.0);
  const auto small = t.intern("small", 1e-9);
  const auto s = sym::SymSum::symbol(big) + sym::SymSum::symbol(small);
  const auto simp = s.simplified(t, 1e-3);
  EXPECT_EQ(simp.termCount(), 1u);
  EXPECT_DOUBLE_EQ(simp.evaluate(t), 1.0);
}

TEST(SymSum, ToStringReadable) {
  sym::SymbolTable t;
  const auto gm = t.intern("gm1", 1e-3);
  const auto s = sym::SymSum::symbol(gm) * sym::SymSum::constant(2.0);
  EXPECT_EQ(s.toString(t), "2*gm1");
}

TEST(SPoly, PolynomialArithmetic) {
  sym::SymbolTable t;
  const auto g = t.intern("g", 0.5);
  const auto c = t.intern("c", 2.0);
  // (g + s c)^2 = g^2 + 2 g c s + c^2 s^2
  const auto p = sym::SPoly{sym::SymSum::symbol(g)} + sym::SPoly::sTimes(sym::SymSum::symbol(c));
  const auto sq = p * p;
  EXPECT_EQ(sq.degree(), 2u);
  const auto coeffs = sq.evaluate(t);
  EXPECT_DOUBLE_EQ(coeffs[0], 0.25);
  EXPECT_DOUBLE_EQ(coeffs[1], 2.0);
  EXPECT_DOUBLE_EQ(coeffs[2], 4.0);
}

TEST(Determinant, DiagonalAndPermutationSigns) {
  sym::SymbolTable t;
  const auto a = t.intern("a", 3.0);
  const auto b = t.intern("b", 5.0);
  // [[a, 0], [0, b]] -> det = a*b
  std::vector<std::vector<sym::SPoly>> m(2, std::vector<sym::SPoly>(2));
  m[0][0] = sym::SPoly{sym::SymSum::symbol(a)};
  m[1][1] = sym::SPoly{sym::SymSum::symbol(b)};
  EXPECT_DOUBLE_EQ(sym::symbolicDeterminant(m).evaluate(t)[0], 15.0);
  // [[0, a], [b, 0]] -> det = -a*b
  std::vector<std::vector<sym::SPoly>> m2(2, std::vector<sym::SPoly>(2));
  m2[0][1] = sym::SPoly{sym::SymSum::symbol(a)};
  m2[1][0] = sym::SPoly{sym::SymSum::symbol(b)};
  EXPECT_DOUBLE_EQ(sym::symbolicDeterminant(m2).evaluate(t)[0], -15.0);
}

TEST(Determinant, MatchesNumericFor4x4) {
  // Random-ish numeric matrix as constants; compare against direct LU det.
  sym::SymbolTable t;
  std::vector<std::vector<sym::SPoly>> m(4, std::vector<sym::SPoly>(4));
  amsyn::num::MatrixD a(4, 4);
  const double vals[16] = {4, 1, 2, 0.5, 1, 3, 0, 2, 2, 0, 5, 1, 0.5, 2, 1, 4};
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 4; ++j) {
      a(i, j) = vals[4 * i + j];
      m[i][j] = sym::SPoly{sym::SymSum::constant(vals[4 * i + j])};
    }
  EXPECT_NEAR(sym::symbolicDeterminant(m).evaluate(t)[0], amsyn::num::LUD(a).determinant(),
              1e-9);
}

TEST(Analyze, RcVoltageDividerTransfer) {
  // v_out/v_in of series g1 into shunt g2: H = g1/(g1+g2), frequency-flat.
  sym::SmallSignalCircuit c(3);  // gnd, in=1, out=2
  c.addConductance("g1", 1e-3, 1, 2);
  c.addConductance("g2", 3e-3, 2, 0);
  const auto h = sym::voltageTransfer(c, 1, 2);
  EXPECT_NEAR(h.magnitudeAt(c.symbols(), 1.0), 0.25, 1e-12);
  EXPECT_NEAR(h.magnitudeAt(c.symbols(), 1e9), 0.25, 1e-12);
}

TEST(Analyze, RcLowpassSymbolic) {
  sym::SmallSignalCircuit c(3);
  c.addConductance("g", 1e-3, 1, 2);    // R = 1k
  c.addCapacitance("cl", 1e-9, 2, 0);   // C = 1n
  const auto h = sym::voltageTransfer(c, 1, 2);
  // Denominator must contain a g term and an s*c term: H = g/(g + s c).
  const auto den = h.den.evaluate(c.symbols());
  ASSERT_EQ(den.size(), 2u);
  EXPECT_NEAR(den[1] / den[0], 1e-6, 1e-12);  // time constant RC
  const double fp = 1.0 / (2 * M_PI * 1e-6);
  EXPECT_NEAR(h.magnitudeAt(c.symbols(), fp), 1.0 / std::sqrt(2.0), 1e-6);
}

TEST(Analyze, CommonSourceSymbolicGain) {
  // gm stage with output conductance go and load cl:
  // H(0) = -gm/go; one pole at go/cl.
  sym::SmallSignalCircuit c(3);
  c.addTransconductance("gm", 2e-3, 2, 0, 1, 0);  // current leaves node 2
  c.addConductance("go", 1e-5, 2, 0);
  c.addCapacitance("cl", 1e-12, 2, 0);
  const auto h = sym::voltageTransfer(c, 1, 2);
  EXPECT_NEAR(h.magnitudeAt(c.symbols(), 1.0), 200.0, 1e-6);
  // Symbolic structure: numerator should be exactly -gm (one term).
  EXPECT_EQ(h.num.termCount(), 1u);
  const auto numc = h.num.evaluate(c.symbols());
  EXPECT_DOUBLE_EQ(numc[0], -2e-3);
}

TEST(Analyze, TransimpedanceOfParallelRc) {
  // Current into node 1 with g + sc to ground: Z = 1/(g + s c).
  sym::SmallSignalCircuit c(2);
  c.addConductance("g", 1e-3, 1, 0);
  c.addCapacitance("cp", 1e-9, 1, 0);
  const auto h = sym::transimpedance(c, 1, 1);
  EXPECT_NEAR(h.magnitudeAt(c.symbols(), 0.001), 1000.0, 1e-3);
}

TEST(Linearize, MatchesNumericAcForCommonSource) {
  // Full loop: transistor netlist -> DC op -> symbolic linearization ->
  // symbolic |H| must track the simulator's AC within tight tolerance.
  auto net = ckt::parseDeck(R"(
VDD vdd 0 DC 5
VG g 0 DC 1.1 AC 1
RD vdd out 20k
M1 out g 0 0 NMOS W=20u L=2u
CL out 0 1p
.end)");
  sim::Mna mna(net, ckt::defaultProcess());
  const auto op = sim::dcOperatingPoint(mna);
  ASSERT_TRUE(op.converged);

  const auto lin = sym::linearize(mna, op);
  const auto h = sym::voltageTransfer(lin.circuit, lin.node("g"), lin.node("out"));
  for (double f : {1e2, 1e5, 1e7, 1e8}) {
    const double exact = std::abs(sim::acTransfer(mna, op, "out", f));
    const double symbolic = h.magnitudeAt(lin.circuit.symbols(), f);
    EXPECT_NEAR(symbolic, exact, exact * 0.02) << "f=" << f;
  }
}

TEST(Linearize, VddIsAcGround) {
  auto net = ckt::parseDeck(R"(
VDD vdd 0 DC 5
R1 vdd out 10k
.end)");
  sim::Mna mna(net, ckt::defaultProcess());
  const auto op = sim::dcOperatingPoint(mna);
  ASSERT_TRUE(op.converged);
  const auto lin = sym::linearize(mna, op);
  EXPECT_EQ(lin.node("vdd"), 0u);  // merged with ground
}

TEST(Linearize, SimplificationShrinksExpression) {
  auto net = ckt::parseDeck(R"(
VDD vdd 0 DC 5
VG g 0 DC 1.1 AC 1
RD vdd out 20k
M1 out g 0 0 NMOS W=20u L=2u
CL out 0 10p
.end)");
  sim::Mna mna(net, ckt::defaultProcess());
  const auto op = sim::dcOperatingPoint(mna);
  ASSERT_TRUE(op.converged);
  const auto lin = sym::linearize(mna, op);
  const auto h = sym::voltageTransfer(lin.circuit, lin.node("g"), lin.node("out"));
  const auto simp = h.simplified(lin.circuit.symbols(), 0.05);
  EXPECT_LT(simp.termCount(), h.termCount());
  // The simplified function must still be numerically accurate at dc.
  const double full = h.magnitudeAt(lin.circuit.symbols(), 10.0);
  const double reduced = simp.magnitudeAt(lin.circuit.symbols(), 10.0);
  EXPECT_NEAR(reduced, full, full * 0.1);
}
