#include <gtest/gtest.h>

#include "geom/layout.hpp"
#include "geom/rect.hpp"
#include "geom/transform.hpp"

namespace geom = amsyn::geom;
using geom::Orientation;
using geom::Point;
using geom::Rect;
using geom::Transform;

TEST(Rect, BasicProperties) {
  const Rect r = Rect::fromSize(2, 3, 10, 4);
  EXPECT_EQ(r.width(), 10);
  EXPECT_EQ(r.height(), 4);
  EXPECT_EQ(r.area(), 40);
  EXPECT_EQ(r.halfPerimeter(), 14);
  EXPECT_FALSE(r.empty());
  EXPECT_TRUE(Rect{}.empty());
}

TEST(Rect, OverlapAndIntersect) {
  const Rect a{0, 0, 10, 10}, b{5, 5, 15, 15}, c{20, 20, 30, 30};
  EXPECT_TRUE(a.overlaps(b));
  EXPECT_FALSE(a.overlaps(c));
  const Rect i = a.intersect(b);
  EXPECT_EQ(i, (Rect{5, 5, 10, 10}));
  EXPECT_TRUE(a.intersect(c).empty());
}

TEST(Rect, TouchingRectsDoNotOverlap) {
  const Rect a{0, 0, 10, 10}, b{10, 0, 20, 10};
  EXPECT_FALSE(a.overlaps(b));
  EXPECT_EQ(a.gapTo(b), 0);
}

TEST(Rect, GapBetweenSeparatedRects) {
  const Rect a{0, 0, 10, 10}, b{13, 0, 20, 10};
  EXPECT_EQ(a.gapTo(b), 3);
  EXPECT_EQ(b.gapTo(a), 3);
  const Rect diag{15, 14, 20, 20};
  EXPECT_EQ(a.gapTo(diag), 5);  // max of x-gap 5 and y-gap 4
}

TEST(Rect, UnionAndBoundingBox) {
  const Rect a{0, 0, 5, 5}, b{10, 10, 12, 12};
  EXPECT_EQ(a.unionWith(b), (Rect{0, 0, 12, 12}));
  EXPECT_EQ(geom::boundingBox({a, b, Rect{}}), (Rect{0, 0, 12, 12}));
}

TEST(Transform, RotationsPreserveArea) {
  const Rect r{1, 2, 5, 10};
  for (auto o : geom::kAllOrientations) {
    const Transform t{o, 100, 200};
    const Rect q = t.apply(r);
    EXPECT_EQ(q.area(), r.area()) << geom::toString(o);
    if (geom::swapsAxes(o)) {
      EXPECT_EQ(q.width(), r.height());
    } else {
      EXPECT_EQ(q.width(), r.width());
    }
  }
}

TEST(Transform, R90RotatesPointCounterclockwise) {
  const Transform t{Orientation::R90, 0, 0};
  const Point p = t.apply(Point{1, 0});
  EXPECT_EQ(p, (Point{0, 1}));
}

TEST(Transform, MirrorXFlipsX) {
  const Transform t{Orientation::MX, 0, 0};
  EXPECT_EQ(t.apply(Point{3, 5}), (Point{-3, 5}));
}

TEST(Transform, ComposeMatchesSequentialApplication) {
  const Transform outer{Orientation::R90, 10, 0};
  const Transform inner{Orientation::MX, 2, 3};
  const Transform combined = outer.compose(inner);
  for (const Point p : {Point{0, 0}, Point{1, 0}, Point{4, 7}, Point{-3, 2}}) {
    EXPECT_EQ(combined.apply(p), outer.apply(inner.apply(p)));
  }
}

TEST(Transform, MirrorAboutAxis) {
  const Rect r{2, 0, 5, 4};
  const Rect m = geom::mirrorX(r, 10);
  EXPECT_EQ(m, (Rect{15, 0, 18, 4}));
  // Mirroring twice is the identity.
  EXPECT_EQ(geom::mirrorX(m, 10), r);
}

TEST(Layout, MasterBoundingBoxAndPins) {
  geom::CellMaster m;
  m.name = "dev";
  m.shapes.push_back({geom::Layer::NDiff, {0, 0, 10, 6}, "d"});
  m.shapes.push_back({geom::Layer::Poly, {4, -2, 6, 8}, "g"});
  m.pins.push_back({"d", geom::Layer::Metal1, {8, 2, 10, 4}});
  m.pins.push_back({"d", geom::Layer::Metal1, {0, 2, 2, 4}});
  EXPECT_EQ(m.boundingBox(), (Rect{0, -2, 10, 8}));
  EXPECT_EQ(m.pinsOnNet("d").size(), 2u);
  EXPECT_TRUE(m.pinsOnNet("x").empty());
}

TEST(Layout, InstanceTransformsShapes) {
  geom::CellMaster m;
  m.shapes.push_back({geom::Layer::Metal1, {0, 0, 4, 2}, "a"});
  geom::CellInstance inst{"i0", &m, Transform{Orientation::R0, 100, 50}};
  const auto shapes = inst.transformedShapes();
  ASSERT_EQ(shapes.size(), 1u);
  EXPECT_EQ(shapes[0].rect, (Rect{100, 50, 104, 52}));
}

TEST(Layout, WireLengthSumsLongEdges) {
  geom::Layout l;
  l.wires.push_back({geom::Layer::Metal1, {0, 0, 10, 2}, "n"});   // length 10
  l.wires.push_back({geom::Layer::Metal2, {0, 0, 2, 30}, "n"});   // length 30
  l.wires.push_back({geom::Layer::Contact, {0, 0, 2, 2}, "n"});   // not routing
  EXPECT_EQ(l.totalWireLength(), 40);
}
