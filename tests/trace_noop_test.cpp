// Proves the AMSYN_TRACE=OFF build shape: with AMSYN_TRACE_ENABLED forced to
// 0 *before* including core/trace.hpp, AMSYN_SPAN must expand to a no-op
// statement with zero runtime footprint — usable even inside a constexpr
// function, which a real Span construction could never be.
#define AMSYN_TRACE_ENABLED 0

#include <gtest/gtest.h>

#include "core/trace.hpp"

namespace {

constexpr int constexprScopeWithSpan(int x) {
  AMSYN_SPAN("compiled_out");
  return x * 2;
}

static_assert(constexprScopeWithSpan(21) == 42,
              "disabled AMSYN_SPAN must be constexpr-safe");

}  // namespace

TEST(TraceNoop, DisabledSpanLeavesNoTrace) {
  amsyn::core::trace::reset();
  {
    AMSYN_SPAN("invisible");
  }
  // The macro compiled to ((void)0): nothing was recorded.
  const auto spans = amsyn::core::trace::collect();
  EXPECT_EQ(spans.count("invisible"), 0u);
}

TEST(TraceNoop, RuntimeApiStillLinksWhenMacroDisabled) {
  // The library symbols stay available for code that constructs Span
  // directly; only the macro is compiled out.
  const auto t0 = amsyn::core::trace::monotonicNowNs();
  const auto t1 = amsyn::core::trace::monotonicNowNs();
  EXPECT_GE(t1, t0);
}
