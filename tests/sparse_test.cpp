// Tests for the sparse-MNA fast path: the general sparse LU
// (numeric/sparse_lu.hpp), the fixed-pattern stamp plan (sim/mnasparse.hpp),
// the solver-mode knob (sim/solver.hpp), and — the headline proof — a
// differential suite showing synthesis results are *bit-identical* across
// {Dense, Sparse} solver modes at 1 and 8 threads with the eval cache on or
// off.  Like the eval cache, the solver knob may only change speed, never
// results; these tests are the enforcement.
//
// The solver mode is process-wide state (like the cache), so every test
// scopes its changes with SolverModeGuard and measures counters as deltas.
#include <gtest/gtest.h>

#include <cmath>
#include <complex>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "circuit/process.hpp"
#include "core/evalcache.hpp"
#include "core/flow.hpp"
#include "core/flowgraph.hpp"
#include "core/metrics.hpp"
#include "core/parallel.hpp"
#include "manufacture/corners.hpp"
#include "numeric/matrix.hpp"
#include "numeric/rng.hpp"
#include "numeric/sparse_lu.hpp"
#include "sim/ac.hpp"
#include "sim/dc.hpp"
#include "sim/mna.hpp"
#include "sim/mnasparse.hpp"
#include "sim/solver.hpp"
#include "sim/transient.hpp"
#include "sizing/opamp.hpp"
#include "sizing/simmodel.hpp"
#include "sizing/spec.hpp"

namespace core = amsyn::core;
namespace cache = amsyn::core::cache;
namespace num = amsyn::num;
namespace sim = amsyn::sim;
namespace sz = amsyn::sizing;
namespace mf = amsyn::manufacture;
namespace ckt = amsyn::circuit;

namespace {

const ckt::Process& proc() { return ckt::defaultProcess(); }

/// RAII snapshot/restore of the process-wide solver mode.
struct SolverModeGuard {
  SolverModeGuard() : saved(sim::solverMode()) {}
  explicit SolverModeGuard(sim::SolverMode m) : saved(sim::solverMode()) {
    sim::setSolverMode(m);
  }
  ~SolverModeGuard() { sim::setSolverMode(saved); }
  sim::SolverMode saved;
};

std::uint64_t rawBits(double v) {
  std::uint64_t b;
  std::memcpy(&b, &v, sizeof(b));
  return b;
}

::testing::AssertionResult vecBitIdentical(const std::vector<double>& a,
                                           const std::vector<double>& b) {
  if (a.size() != b.size())
    return ::testing::AssertionFailure()
           << "sizes differ: " << a.size() << " vs " << b.size();
  for (std::size_t i = 0; i < a.size(); ++i)
    if (rawBits(a[i]) != rawBits(b[i]))
      return ::testing::AssertionFailure()
             << "[" << i << "] differs in bits: " << a[i] << " vs " << b[i];
  return ::testing::AssertionSuccess();
}

::testing::AssertionResult vecBitIdentical(const num::VecC& a, const num::VecC& b) {
  if (a.size() != b.size())
    return ::testing::AssertionFailure()
           << "sizes differ: " << a.size() << " vs " << b.size();
  for (std::size_t i = 0; i < a.size(); ++i)
    if (rawBits(a[i].real()) != rawBits(b[i].real()) ||
        rawBits(a[i].imag()) != rawBits(b[i].imag()))
      return ::testing::AssertionFailure()
             << "[" << i << "] differs in bits: (" << a[i].real() << "," << a[i].imag()
             << ") vs (" << b[i].real() << "," << b[i].imag() << ")";
  return ::testing::AssertionSuccess();
}

template <typename T>
num::Matrix<T> denseOf(const num::CscMatrix<T>& a) {
  num::Matrix<T> m(a.n, a.n);
  for (std::size_t c = 0; c < a.n; ++c)
    for (std::size_t k = a.colPtr[c]; k < a.colPtr[c + 1]; ++k) m(a.row[k], c) = a.val[k];
  return m;
}

/// Random structurally-sparse matrix with a full diagonal; density in (0,1)
/// is the off-diagonal fill probability.
num::CscMatrix<double> randomSparse(num::Rng& rng, std::size_t n, double density) {
  num::CscBuilder bld(n);
  std::vector<std::size_t> handles;
  for (std::size_t i = 0; i < n; ++i) handles.push_back(bld.add(i, i));
  std::vector<std::pair<std::size_t, std::size_t>> offDiag;
  for (std::size_t c = 0; c < n; ++c)
    for (std::size_t r = 0; r < n; ++r)
      if (r != c && rng.uniform() < density) {
        handles.push_back(bld.add(r, c));
        offDiag.push_back({r, c});
      }
  std::vector<std::size_t> slotOf;
  auto a = bld.finalize<double>(slotOf);
  std::size_t h = 0;
  for (std::size_t i = 0; i < n; ++i)
    a.val[slotOf[handles[h++]]] = rng.uniform(0.5, 3.0) * (rng.uniform() < 0.5 ? -1 : 1);
  for (std::size_t k = 0; k < offDiag.size(); ++k)
    a.val[slotOf[handles[h++]]] = rng.uniform(-2.0, 2.0);
  return a;
}

num::VecD randomVec(num::Rng& rng, std::size_t n) {
  num::VecD b(n);
  for (auto& v : b) v = rng.uniform(-1.0, 1.0);
  return b;
}

}  // namespace

// ---------------------------------------------------------------------------
// Sparse LU: bit-compatibility with the dense kernel (Natural ordering)

TEST(SparseLu, NaturalOrderingMatchesDenseBitwiseOnRandomMatrices) {
  num::Rng rng(20260808);
  int solved = 0;
  for (int trial = 0; trial < 60; ++trial) {
    const std::size_t n = 3 + static_cast<std::size_t>(rng.index(22));
    const auto a = randomSparse(rng, n, rng.uniform(0.05, 0.45));
    const num::VecD b = randomVec(rng, n);

    num::SparseLuD slu;
    const auto st = slu.factor(a);
    bool denseThrew = false;
    std::optional<num::LUD> dlu;
    try {
      dlu.emplace(denseOf(a));
    } catch (const std::runtime_error&) {
      denseThrew = true;
    }
    // Singular verdicts must agree (the dense kernel throws there).
    ASSERT_EQ(st == num::SparseLuStatus::Singular, denseThrew) << "trial " << trial;
    if (denseThrew) continue;
    ASSERT_EQ(st, num::SparseLuStatus::Ok) << "trial " << trial;
    EXPECT_TRUE(vecBitIdentical(slu.solve(b), dlu->solve(b))) << "trial " << trial;
    EXPECT_TRUE(vecBitIdentical(slu.solveTransposed(b), dlu->solveTransposed(b)))
        << "trial " << trial;
    ++solved;
  }
  EXPECT_GE(solved, 40);  // the suite must not pass vacuously
}

TEST(SparseLu, ComplexNaturalOrderingMatchesDenseBitwise) {
  num::Rng rng(7);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t n = 3 + static_cast<std::size_t>(rng.index(14));
    const auto ar = randomSparse(rng, n, 0.3);
    num::CscMatrix<std::complex<double>> a;
    a.n = ar.n;
    a.colPtr = ar.colPtr;
    a.row = ar.row;
    for (double v : ar.val) a.val.push_back({v, 0.3 * v + 0.1});
    num::VecC b(n);
    for (auto& v : b) v = {rng.uniform(-1, 1), rng.uniform(-1, 1)};

    num::SparseLuC slu;
    if (slu.factor(a) != num::SparseLuStatus::Ok) continue;
    num::LUC dlu(denseOf(a));
    EXPECT_TRUE(vecBitIdentical(slu.solve(b), dlu.solve(b))) << "trial " << trial;
    EXPECT_TRUE(vecBitIdentical(slu.solveTransposed(b), dlu.solveTransposed(b)))
        << "trial " << trial;
  }
}

TEST(SparseLu, RefactorReplaysWithoutReanalysisAndStaysBitIdentical) {
  num::Rng rng(42);
  const std::size_t n = 12;
  auto a = randomSparse(rng, n, 0.3);
  num::SparseLuD slu;
  ASSERT_EQ(slu.factor(a), num::SparseLuStatus::Ok);
  EXPECT_EQ(slu.analyzeCount(), 1u);

  // Scaling every value preserves the partial-pivot choice, so subsequent
  // factors are numeric-only replays of the cached analysis.
  for (int pass = 0; pass < 3; ++pass) {
    for (auto& v : a.val) v *= 1.5;
    ASSERT_EQ(slu.factor(a), num::SparseLuStatus::Ok);
    const num::VecD b = randomVec(rng, n);
    EXPECT_TRUE(vecBitIdentical(slu.solve(b), num::LUD(denseOf(a)).solve(b)));
  }
  EXPECT_EQ(slu.analyzeCount(), 1u);
  EXPECT_EQ(slu.refactorCount(), 3u);
  EXPECT_EQ(slu.pivotDriftCount(), 0u);
}

TEST(SparseLu, PivotDriftTriggersReanalysisWithBitIdenticalResults) {
  // Column 0's pivot moves from the diagonal to the off-diagonal row when
  // the values flip dominance; the refactor must detect the drift,
  // re-analyze, and still match dense bitwise.
  num::CscBuilder bld(2);
  const auto h00 = bld.add(0, 0), h10 = bld.add(1, 0), h01 = bld.add(0, 1),
             h11 = bld.add(1, 1);
  std::vector<std::size_t> slotOf;
  auto a = bld.finalize<double>(slotOf);
  num::SparseLuD slu;

  a.val[slotOf[h00]] = 4.0;
  a.val[slotOf[h10]] = 1.0;
  a.val[slotOf[h01]] = 1.0;
  a.val[slotOf[h11]] = 2.0;
  ASSERT_EQ(slu.factor(a), num::SparseLuStatus::Ok);
  EXPECT_TRUE(vecBitIdentical(slu.solve({1.0, -1.0}), num::LUD(denseOf(a)).solve({1.0, -1.0})));

  a.val[slotOf[h00]] = 1.0;
  a.val[slotOf[h10]] = 4.0;  // pivot now row 1
  ASSERT_EQ(slu.factor(a), num::SparseLuStatus::Ok);
  EXPECT_GE(slu.pivotDriftCount(), 1u);
  EXPECT_TRUE(vecBitIdentical(slu.solve({1.0, -1.0}), num::LUD(denseOf(a)).solve({1.0, -1.0})));
}

TEST(SparseLu, NearSingularStaysBitIdenticalToDense) {
  // A nearly rank-deficient system (rows almost parallel) stresses pivoting
  // and cancellation; as long as dense does not throw, sparse must replay
  // the identical arithmetic.
  num::CscBuilder bld(3);
  std::vector<std::size_t> h;
  for (std::size_t c = 0; c < 3; ++c)
    for (std::size_t r = 0; r < 3; ++r) h.push_back(bld.add(r, c));
  std::vector<std::size_t> slotOf;
  auto a = bld.finalize<double>(slotOf);
  const double eps = 1e-13;
  const double vals[9] = {1.0, 1.0, 2.0, 2.0, 2.0 + eps, 1.0, 3.0, 3.0, 5.0};
  for (std::size_t i = 0; i < 9; ++i) a.val[slotOf[h[i]]] = vals[i];

  num::SparseLuD slu;
  ASSERT_EQ(slu.factor(a), num::SparseLuStatus::Ok);
  num::LUD dlu(denseOf(a));
  const num::VecD b = {0.25, -1.5, 3.0};
  EXPECT_TRUE(vecBitIdentical(slu.solve(b), dlu.solve(b)));
}

TEST(SparseLu, StructurallySingularReportsSingular) {
  num::CscBuilder bld(3);
  bld.add(0, 0);
  bld.add(1, 1);  // column 2 empty
  std::vector<std::size_t> slotOf;
  auto a = bld.finalize<double>(slotOf);
  a.val[0] = 1.0;
  a.val[1] = 1.0;
  num::SparseLuD slu;
  EXPECT_EQ(slu.factor(a), num::SparseLuStatus::Singular);
}

namespace {

/// Arrow matrix with the dense hub at row/column 0: worst case for Natural
/// ordering (complete fill), best case for min-degree (hub eliminated last,
/// no fill at all).
num::CscMatrix<double> arrowMatrix(std::size_t n) {
  num::CscBuilder bld(n);
  std::vector<std::size_t> handles;
  for (std::size_t i = 0; i < n; ++i) handles.push_back(bld.add(i, i));
  for (std::size_t i = 1; i < n; ++i) {
    handles.push_back(bld.add(0, i));
    handles.push_back(bld.add(i, 0));
  }
  std::vector<std::size_t> slotOf;
  auto a = bld.finalize<double>(slotOf);
  std::size_t h = 0;
  for (std::size_t i = 0; i < n; ++i)
    a.val[slotOf[handles[h++]]] = 10.0 + static_cast<double>(i);  // dominant diagonal
  for (std::size_t i = 1; i < n; ++i) {
    a.val[slotOf[handles[h++]]] = 1.0 / static_cast<double>(i + 1);
    a.val[slotOf[handles[h++]]] = -1.0 / static_cast<double>(i + 2);
  }
  return a;
}

}  // namespace

TEST(SparseLu, ExcessFillGuardTripsOnArrowMatrixUnderNaturalOrdering) {
  const auto a = arrowMatrix(40);
  num::SparseLuOptions opts;
  opts.maxFillRatio = 0.3;  // natural-order arrow fill is ~100%
  num::SparseLu<double> slu(opts);
  EXPECT_EQ(slu.factor(a), num::SparseLuStatus::ExcessFill);
}

TEST(SparseLu, MinDegreeOrderingKeepsArrowSparseAndAccurate) {
  const std::size_t n = 40;
  const auto a = arrowMatrix(n);

  num::SparseLuOptions opts;
  opts.ordering = num::SparseLuOptions::Ordering::MinDegree;
  opts.pivotTolerance = 0.1;  // threshold pivoting preserves the ordering's fill win
  opts.maxFillRatio = 0.3;    // the same bound Natural ordering trips
  num::SparseLu<double> slu(opts);
  ASSERT_EQ(slu.factor(a), num::SparseLuStatus::Ok);
  // Hub eliminated last => factor nnz stays ~3n, far below the n^2 of the
  // natural order.
  EXPECT_LT(slu.fillRatio(), 0.15);

  // No longer the dense pivot sequence, so agreement is rounding-level.
  num::Rng rng(5);
  const num::VecD b = randomVec(rng, n);
  const auto xs = slu.solve(b);
  const auto xd = num::LUD(denseOf(a)).solve(b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(xs[i], xd[i], 1e-10);
}

TEST(SparseLu, MinDegreeOrderEliminatesTheHubLast) {
  const auto a = arrowMatrix(16);
  const auto order = num::minDegreeOrder(a.n, a.colPtr, a.row);
  ASSERT_EQ(order.size(), a.n);
  // Spokes (degree 1) all go before the hub until the hub's own degree has
  // decayed to 1; the final tie leaves the hub in one of the last two
  // elimination steps — never early, where it would cause complete fill.
  std::size_t hubStep = a.n;
  for (std::size_t s = 0; s < order.size(); ++s)
    if (order[s] == 0) hubStep = s;
  EXPECT_GE(hubStep, a.n - 2);
}

TEST(SparseLu, PivotGrowthGuardTrips) {
  // [[1e-8, 1], [1, 1]] with the tiny pivot forced by structure would grow;
  // with partial pivoting growth is |u11| bounded, so instead cap the guard
  // below the achievable growth of a matrix whose elimination amplifies.
  num::CscBuilder bld(2);
  const auto h00 = bld.add(0, 0), h10 = bld.add(1, 0), h01 = bld.add(0, 1),
             h11 = bld.add(1, 1);
  std::vector<std::size_t> slotOf;
  auto a = bld.finalize<double>(slotOf);
  a.val[slotOf[h00]] = 2.0;
  a.val[slotOf[h10]] = 1.0;
  a.val[slotOf[h01]] = -3.0;
  a.val[slotOf[h11]] = 4.0;  // u11 = 4 - (1/2)(-3) = 5.5 > max|A| = 4
  num::SparseLuOptions opts;
  opts.maxPivotGrowth = 1.0;
  num::SparseLu<double> slu(opts);
  EXPECT_EQ(slu.factor(a), num::SparseLuStatus::PivotGrowth);

  // The same factorization passes a sane bound.
  num::SparseLu<double> ok;  // default: growth check at 0 = disabled
  EXPECT_EQ(ok.factor(a), num::SparseLuStatus::Ok);
  EXPECT_GT(slu.pivotGrowth(), 1.0);
}

TEST(SparseLu, CscBuilderCollapsesDuplicateStampsIntoOneSlot) {
  num::CscBuilder bld(2);
  const auto h1 = bld.add(0, 0);
  const auto h2 = bld.add(0, 0);  // duplicate stamp position
  const auto h3 = bld.add(1, 1);
  std::vector<std::size_t> slotOf;
  auto a = bld.finalize<double>(slotOf);
  EXPECT_EQ(a.val.size(), 2u);
  EXPECT_EQ(slotOf[h1], slotOf[h2]);
  EXPECT_NE(slotOf[h1], slotOf[h3]);
  a.val[slotOf[h1]] += 1.0;
  a.val[slotOf[h2]] += 2.0;  // accumulates into the same entry
  EXPECT_EQ(a.val[slotOf[h1]], 3.0);
}

TEST(SparseLu, AdoptedSymbolicSkipsAnalysisAcrossInstances) {
  num::Rng rng(99);
  auto a = randomSparse(rng, 10, 0.3);
  num::SparseLuD first;
  ASSERT_EQ(first.factor(a), num::SparseLuStatus::Ok);
  ASSERT_TRUE(first.haveSymbolic());

  // Same structure, scaled values (pivot order preserved): the adopter
  // replays the shared analysis numerically with no analysis of its own.
  for (auto& v : a.val) v *= 2.0;
  num::SparseLuD second;
  second.adoptSymbolic(first.symbolic());
  ASSERT_EQ(second.factor(a), num::SparseLuStatus::Ok);
  EXPECT_EQ(second.analyzeCount(), 0u);
  EXPECT_EQ(second.refactorCount(), 1u);
  const num::VecD b = randomVec(rng, 10);
  EXPECT_TRUE(vecBitIdentical(second.solve(b), num::LUD(denseOf(a)).solve(b)));
}

// ---------------------------------------------------------------------------
// Solver-mode knob

TEST(SolverMode, ParseAndNameRoundtrip) {
  using sim::SolverMode;
  EXPECT_EQ(sim::parseSolverMode("auto"), SolverMode::Auto);
  EXPECT_EQ(sim::parseSolverMode("Dense"), SolverMode::Dense);
  EXPECT_EQ(sim::parseSolverMode("SPARSE"), SolverMode::Sparse);
  EXPECT_EQ(sim::parseSolverMode("nonsense"), std::nullopt);
  EXPECT_EQ(sim::parseSolverMode(""), std::nullopt);
  for (auto m : {SolverMode::Auto, SolverMode::Dense, SolverMode::Sparse})
    EXPECT_EQ(sim::parseSolverMode(sim::solverModeName(m)), m);
}

TEST(SolverMode, UseSparseSolverFollowsModeAndThreshold) {
  SolverModeGuard guard;
  sim::setSolverMode(sim::SolverMode::Dense);
  EXPECT_FALSE(sim::useSparseSolver(100000));
  sim::setSolverMode(sim::SolverMode::Sparse);
  EXPECT_TRUE(sim::useSparseSolver(2));
  EXPECT_FALSE(sim::useSparseSolver(1));  // a 1x1 "system" has no sparse win
  sim::setSolverMode(sim::SolverMode::Auto);
  EXPECT_FALSE(sim::useSparseSolver(sim::kSparseAutoThreshold - 1));
  EXPECT_TRUE(sim::useSparseSolver(sim::kSparseAutoThreshold));
}

TEST(SolverMode, FlowOptionRoutesToProcessMode) {
  SolverModeGuard guard;
  sim::setSolverMode(sim::SolverMode::Auto);
  core::applySolverOption(core::SolverOption::Sparse);
  EXPECT_EQ(sim::solverMode(), sim::SolverMode::Sparse);
  core::applySolverOption(core::SolverOption::Default);  // no-op
  EXPECT_EQ(sim::solverMode(), sim::SolverMode::Sparse);
  core::applySolverOption(core::SolverOption::Dense);
  EXPECT_EQ(sim::solverMode(), sim::SolverMode::Dense);
  core::applySolverOption(core::SolverOption::Auto);
  EXPECT_EQ(sim::solverMode(), sim::SolverMode::Auto);
}

// ---------------------------------------------------------------------------
// SparseMna: the stamp plan reproduces the dense assembler bit for bit

namespace {

/// Opamp testbench plus one of every remaining device type, so the stamp
/// plan covers every branch of the dense assembler's switch.
ckt::Netlist mixedNetlist() {
  ckt::Netlist net = sz::buildTwoStageOpamp(sz::TwoStageParams{}, proc());
  net.addInductor("LX", "out", "lx1", 1e-6);
  net.addResistor("RX", "lx1", "0", 50.0);
  net.addDiode("DX", "lx1", "0", 1e-14);
  net.addVcvs("EX", "ex1", "0", "out", "0", 2.0);
  net.addResistor("RE", "ex1", "0", 1e4);
  net.addVccs("GX", "0", "gx1", "out", "0", 1e-4);
  net.addResistor("RG", "gx1", "0", 2e3);
  net.addISource("IX", "0", "gx1", 1e-6);
  return net;
}

}  // namespace

TEST(SparseMna, AssemblyMatchesDenseBitwiseInEveryMode) {
  const ckt::Netlist net = mixedNetlist();
  const sim::Mna mna(net, proc());
  sim::SparseMna sp(mna);
  const std::size_t n = mna.size();
  ASSERT_EQ(sp.size(), n);

  num::Rng rng(123);
  for (int trial = 0; trial < 10; ++trial) {
    num::VecD x(n);
    for (auto& v : x) v = rng.uniform(-0.5, proc().vdd + 0.5);

    sim::AssemblyOptions aopt;
    std::map<std::size_t, sim::CompanionState> companions;
    if (trial % 3 == 1) {  // DC continuation shapes
      aopt.sourceScale = rng.uniform(0.1, 1.0);
      aopt.gmin = rng.uniform(0.0, 1e-6);
    } else if (trial % 3 == 2) {  // transient with companion states
      aopt.time = rng.uniform(0.0, 1e-6);
      aopt.timestep = 1e-9;
      aopt.trapezoidal = trial % 2 == 0;
      for (std::size_t d = 0; d < net.devices().size(); ++d) {
        const double pv = rng.uniform(-1.0, 1.0);
        const double pi = rng.uniform(-1e-4, 1e-4);
        companions[d] = {pv, pi};  // storage elements read theirs; rest ignored
      }
      aopt.companions = &companions;
    }

    num::MatrixD jd(n, n);
    num::VecD fd(n, 0.0);
    mna.assemble(x, aopt, &jd, &fd);
    num::VecD fs;
    sp.assemble(x, aopt, true, &fs);

    EXPECT_TRUE(vecBitIdentical(fs, fd)) << "residual, trial " << trial;
    const auto& csc = sp.csc();
    num::MatrixD js(n, n);
    for (std::size_t c = 0; c < n; ++c)
      for (std::size_t k = csc.colPtr[c]; k < csc.colPtr[c + 1]; ++k)
        js(csc.row[k], c) = csc.val[k];
    EXPECT_TRUE(vecBitIdentical(js.data(), jd.data())) << "jacobian, trial " << trial;
  }
}

TEST(SparseMna, AcValuesMatchDenseAcMatricesBitwise) {
  const ckt::Netlist net = mixedNetlist();
  const sim::Mna mna(net, proc());
  sim::SparseMna sp(mna);
  const std::size_t n = mna.size();

  num::Rng rng(321);
  num::VecD xOp(n);
  for (auto& v : xOp) v = rng.uniform(0.0, proc().vdd);

  num::MatrixD gd, cd;
  num::VecD bd;
  mna.acMatrices(xOp, gd, cd, bd);
  std::vector<double> gv, cv;
  num::VecD bs;
  sp.acValues(xOp, gv, cv, bs);

  EXPECT_TRUE(vecBitIdentical(bs, bd));
  const auto& csc = sp.csc();
  num::MatrixD gs(n, n), cs(n, n);
  for (std::size_t c = 0; c < n; ++c)
    for (std::size_t k = csc.colPtr[c]; k < csc.colPtr[c + 1]; ++k) {
      gs(csc.row[k], c) = gv[k];
      cs(csc.row[k], c) = cv[k];
    }
  EXPECT_TRUE(vecBitIdentical(gs.data(), gd.data()));
  EXPECT_TRUE(vecBitIdentical(cs.data(), cd.data()));
}

TEST(SparseMna, PatternDigestSeparatesStructures) {
  const ckt::Netlist netA = mixedNetlist();
  const sim::Mna mnaA(netA, proc());
  sim::SparseMna a1(mnaA), a2(mnaA);
  EXPECT_EQ(a1.patternDigest(), a2.patternDigest());  // same structure, same key

  // A grounded resistor on an existing node only restamps its diagonal and
  // leaves the union pattern (hence the digest) unchanged — that is the
  // cache working as intended.  A genuinely new coupling must change it.
  ckt::Netlist netB = mixedNetlist();
  netB.addResistor("RZ", "inp", "gx1", 1e6);  // new off-diagonal pair
  const sim::Mna mnaB(netB, proc());
  sim::SparseMna b(mnaB);
  EXPECT_NE(a1.patternDigest(), b.patternDigest());
}

// ---------------------------------------------------------------------------
// Analyses: DC / AC / transient bit-identical across solver modes

namespace {

struct AnalysisRun {
  num::VecD dcX;
  std::string dcStrategy;
  num::VecC acValues;
  std::vector<num::VecD> tranStates;
};

AnalysisRun runAnalyses(sim::SolverMode mode) {
  SolverModeGuard guard(mode);
  ckt::Netlist net;
  auto& v = net.addVSource("V1", "in", "0", 0.0, 1.0);
  v.waveform.kind = ckt::Waveform::Kind::Pulse;
  v.waveform.v1 = 0.0;
  v.waveform.v2 = 1.0;
  v.waveform.rise = 1e-12;
  v.waveform.width = 1.0;
  v.waveform.period = 2.0;
  net.addResistor("R1", "in", "n1", 1e3);
  net.addInductor("L1", "n1", "out", 1e-6);
  net.addCapacitor("C1", "out", "0", 1e-9);
  net.addResistor("R2", "out", "0", 1e5);
  net.addDiode("D1", "out", "0", 1e-14);
  const sim::Mna mna(net, proc());

  AnalysisRun run;
  const auto op = sim::dcOperatingPoint(mna);
  EXPECT_TRUE(op.converged);
  run.dcX = op.x;
  run.dcStrategy = op.strategy;

  const auto sweep = sim::acAnalysis(mna, op, "out", sim::logspace(1e3, 1e8, 4));
  EXPECT_EQ(sweep.status, core::EvalStatus::Ok);
  for (const auto& p : sweep.points) run.acValues.push_back(p.value);

  sim::TransientOptions topts;
  topts.tStop = 2e-7;
  topts.tStep = 1e-9;
  const auto tr = sim::transientAnalysis(mna, op, topts);
  EXPECT_TRUE(tr.completed);
  run.tranStates = tr.states;
  return run;
}

std::uint64_t sparseSolveTotal() {
  return core::metrics::Registry::instance().total(sim::sparseCounters().solves);
}

}  // namespace

TEST(SparseDifferential, DcAcTransientBitIdenticalAcrossSolverModes) {
  const auto dense = runAnalyses(sim::SolverMode::Dense);
  const auto before = sparseSolveTotal();
  const auto sparse = runAnalyses(sim::SolverMode::Sparse);
  // The differential is vacuous unless the sparse path actually ran.
  EXPECT_GT(sparseSolveTotal(), before);

  EXPECT_EQ(dense.dcStrategy, sparse.dcStrategy);
  EXPECT_TRUE(vecBitIdentical(dense.dcX, sparse.dcX));
  EXPECT_TRUE(vecBitIdentical(dense.acValues, sparse.acValues));
  ASSERT_EQ(dense.tranStates.size(), sparse.tranStates.size());
  for (std::size_t i = 0; i < dense.tranStates.size(); ++i)
    EXPECT_TRUE(vecBitIdentical(dense.tranStates[i], sparse.tranStates[i])) << "step " << i;
}

TEST(SparseDifferential, AcSolveBatchMatchesPointwiseSolves) {
  SolverModeGuard guard(sim::SolverMode::Sparse);
  const ckt::Netlist net = sz::buildTwoStageOpamp(sz::TwoStageParams{}, proc());
  const sim::Mna mna(net, proc());
  const auto op = sim::dcOperatingPoint(mna, sim::flatStart(mna, proc().vdd / 2));
  ASSERT_TRUE(op.converged);

  sim::AcSolver one(mna, op);
  sim::AcSolver batch(mna, op);
  const auto freqs = sim::logspace(1.0, 1e9, 3);
  const auto rhs = one.stimulus();
  const auto xs = batch.solveBatch(freqs, rhs);
  ASSERT_EQ(xs.size(), freqs.size());
  for (std::size_t i = 0; i < freqs.size(); ++i)
    EXPECT_TRUE(vecBitIdentical(xs[i], one.solve(freqs[i], rhs))) << "freq " << freqs[i];
}

// ---------------------------------------------------------------------------
// Differential suite: full flow and corner hunt across
// {Dense, Sparse} x {1, 8} threads x {cache on, off}

namespace {

sz::SynthesisOptions fastSynthesisOptions() {
  sz::SynthesisOptions opts;
  opts.seed = 11;
  opts.multistarts = 2;
  opts.anneal.stagnationStages = 2;
  opts.anneal.coolingRate = 0.7;
  opts.refineEvaluations = 40;
  return opts;
}

core::FlowResult runFlow(core::SolverOption solver, bool cacheOn, std::size_t threads) {
  auto& c = cache::EvalCache::instance();
  c.clear();
  c.setEnabled(cacheOn);
  core::ScopedThreadPool scoped(threads);
  sz::SpecSet specs;
  specs.atLeast("gain_db", 36.0)
      .atLeast("ugf", 1e7)
      .atLeast("pm", 60.0)
      .atMost("power", 4e-3)
      .minimize("power", 0.3, 1e-3);
  core::FlowOptions opts;
  opts.loadCap = 2e-12;
  opts.seed = 3;
  opts.synthesis = fastSynthesisOptions();
  opts.layout.annealPlacement = false;
  opts.solver = solver;
  return core::synthesizeAmplifier(specs, proc(), opts);
}

/// The run-report prefix that is a pure function of the FlowResult (name +
/// info + values; counters/spans and wall-clock seconds masked) — the same
/// schema check the eval-cache differential pins.
std::string reportResultPrefix(const core::FlowResult& r) {
  std::string json = core::flowRunReportJson(r);
  const auto pos = json.find("\"counters\"");
  if (pos != std::string::npos) json = json.substr(0, pos);
  std::string masked;
  std::size_t at = 0;
  while (true) {
    const auto hit = json.find(".seconds\": ", at);
    if (hit == std::string::npos) break;
    const auto valueStart = hit + std::strlen(".seconds\": ");
    auto valueEnd = valueStart;
    while (valueEnd < json.size() && json[valueEnd] != ',' && json[valueEnd] != '\n')
      ++valueEnd;
    masked += json.substr(at, valueStart - at);
    masked += '#';
    at = valueEnd;
  }
  masked += json.substr(at);
  return masked;
}

::testing::AssertionResult perfBitIdentical(const sz::Performance& a,
                                            const sz::Performance& b) {
  if (a.size() != b.size())
    return ::testing::AssertionFailure()
           << "sizes differ: " << a.size() << " vs " << b.size();
  auto ia = a.begin();
  auto ib = b.begin();
  for (; ia != a.end(); ++ia, ++ib) {
    if (ia->first != ib->first)
      return ::testing::AssertionFailure()
             << "keys differ: " << ia->first << " vs " << ib->first;
    if (rawBits(ia->second) != rawBits(ib->second))
      return ::testing::AssertionFailure()
             << ia->first << " differs in bits: " << ia->second << " vs " << ib->second;
  }
  return ::testing::AssertionSuccess();
}

void expectFlowsBitIdentical(const core::FlowResult& a, const core::FlowResult& b,
                             const std::string& label) {
  SCOPED_TRACE(label);
  EXPECT_EQ(a.success, b.success);
  EXPECT_EQ(a.topology, b.topology);
  EXPECT_TRUE(vecBitIdentical(a.designPoint, b.designPoint));
  EXPECT_EQ(a.redesigns, b.redesigns);
  EXPECT_EQ(a.failureReason, b.failureReason);
  EXPECT_EQ(a.failureStatus, b.failureStatus);
  ASSERT_EQ(a.verifications.size(), b.verifications.size());
  for (std::size_t i = 0; i < a.verifications.size(); ++i) {
    EXPECT_EQ(a.verifications[i].stage, b.verifications[i].stage);
    EXPECT_EQ(a.verifications[i].passed, b.verifications[i].passed);
    EXPECT_TRUE(
        perfBitIdentical(a.verifications[i].measured, b.verifications[i].measured));
  }
  ASSERT_EQ(a.stageRecords.size(), b.stageRecords.size());
  for (std::size_t i = 0; i < a.stageRecords.size(); ++i) {
    EXPECT_EQ(a.stageRecords[i].name, b.stageRecords[i].name);
    EXPECT_EQ(a.stageRecords[i].attempt, b.stageRecords[i].attempt);
    EXPECT_EQ(a.stageRecords[i].status, b.stageRecords[i].status);
    EXPECT_EQ(a.stageRecords[i].detail, b.stageRecords[i].detail);
    EXPECT_EQ(a.stageRecords[i].evalStatus, b.stageRecords[i].evalStatus);
  }
  EXPECT_EQ(reportResultPrefix(a), reportResultPrefix(b));
}

}  // namespace

TEST(SparseDifferential, FlowBitIdenticalAcrossSolversThreadsAndCache) {
  SolverModeGuard guard;
  auto& c = cache::EvalCache::instance();
  const bool savedEnabled = c.enabled();
  const auto reference = runFlow(core::SolverOption::Dense, false, 1);
  for (const auto solver : {core::SolverOption::Dense, core::SolverOption::Sparse})
    for (const std::size_t threads : {std::size_t{1}, std::size_t{8}})
      for (const bool cacheOn : {false, true}) {
        if (solver == core::SolverOption::Dense && threads == 1 && !cacheOn) continue;
        const std::string label =
            std::string(solver == core::SolverOption::Dense ? "dense" : "sparse") +
            " threads=" + std::to_string(threads) + " cache=" + (cacheOn ? "on" : "off");
        expectFlowsBitIdentical(reference, runFlow(solver, cacheOn, threads), label);
      }
  c.setEnabled(savedEnabled);
  c.clear();
}

namespace {

/// Simulation-based worst-case corner hunt + audit at a fixed design — the
/// robustSynthesize access pattern, heavy in DC + AC solves.
std::vector<double> cornerHuntMargins(core::SolverOption solver) {
  SolverModeGuard guard;
  core::applySolverOption(solver);
  auto& c = cache::EvalCache::instance();
  c.clear();
  c.setEnabled(false);  // isolate the solver differential from the cache
  const mf::ModelFactory factory = [](const ckt::Process& p) {
    sz::SimModelOptions opts;
    opts.measureNoise = false;
    return std::make_unique<sz::SimulationModel>(
        sz::twoStageTemplate(p, {5e-12, 2.2, true}), p, opts);
  };
  sz::SpecSet specs;
  specs.atLeast("gain_db", 55.0).atLeast("pm", 45.0).atMost("power", 1e-2);
  const auto tmpl = sz::twoStageTemplate(proc(), {5e-12, 2.2, true});
  std::vector<double> x;
  for (const auto& v : tmpl.variables)
    x.push_back(v.logScale && v.lo > 0 ? std::sqrt(v.lo * v.hi) : 0.5 * (v.lo + v.hi));
  mf::VariationSpace space;
  std::vector<double> margins;
  for (int phase = 0; phase < 2; ++phase)  // hunt, then audit
    for (const auto& spec : specs.specs()) {
      const auto wc = mf::worstCaseCorner(factory, proc(), space, x, spec);
      margins.push_back(wc.margin);
      margins.push_back(wc.value);
      for (double cc : wc.corner) margins.push_back(cc);
    }
  c.setEnabled(true);
  return margins;
}

}  // namespace

TEST(SparseDifferential, CornerHuntBitIdenticalAcrossSolverModes) {
  const auto dense = cornerHuntMargins(core::SolverOption::Dense);
  const auto before = sparseSolveTotal();
  const auto sparse = cornerHuntMargins(core::SolverOption::Sparse);
  EXPECT_GT(sparseSolveTotal(), before);  // the sparse leg really ran sparse
  EXPECT_TRUE(vecBitIdentical(dense, sparse));
}
