// Hierarchical design plan for the Table-1 pulse-detector frontend — the
// OASYS mechanism [1] on the AMGIE workload [16]: the top-level plan
// *translates* the frontend specification into sub-block specifications
// (exactly the "specification translation" step of section 2.1), then
// invokes the charge-sensitive-amplifier and pulse-shaper sub-plans, which
// size their own devices.  Knobs allow the classic backtracking when a
// sub-block cannot meet its translated budget.
//
// Inputs (context keys):
//   spec.peaking_us, spec.counting_khz, spec.noise_e, spec.gain_v_fc,
//   spec.range_v
// Outputs: out.i_csa, out.vov_csa, out.cf, out.tau, out.i_stage,
//   out.vov_stage — the PulseDetectorModel variable order.
#pragma once

#include <vector>

#include "knowledge/plan.hpp"
#include "sizing/pulse.hpp"

namespace amsyn::knowledge {

/// Sub-plan: size the charge-sensitive amplifier against its translated
/// budgets (context keys csa.tau_budget, csa.noise_budget_e, csa.cf).
DesignPlan csaPlan(const sizing::PulseDetectorConfig& cfg = {});

/// Sub-plan: size the 4-stage semi-Gaussian shaper against its budgets
/// (context keys shaper.tau, spec.range_v).
DesignPlan shaperPlan(const sizing::PulseDetectorConfig& cfg = {});

/// Top-level hierarchical plan: specification translation + both sub-plans.
DesignPlan pulseDetectorPlan(const sizing::PulseDetectorConfig& cfg = {});

/// Extract the PulseDetectorModel design vector from a completed context.
std::vector<double> extractPulseDetectorDesign(const PlanContext& ctx);

}  // namespace amsyn::knowledge
