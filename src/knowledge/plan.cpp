#include "knowledge/plan.hpp"

#include <algorithm>
#include <stdexcept>

namespace amsyn::knowledge {

double PlanContext::get(const std::string& key) const {
  auto it = values_.find(key);
  if (it == values_.end()) throw std::out_of_range("PlanContext: missing value " + key);
  return it->second;
}

double PlanContext::getOr(const std::string& key, double fallback) const {
  auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

DesignPlan& DesignPlan::input(const std::string& input) {
  inputs_.push_back(input);
  return *this;
}

DesignPlan& DesignPlan::knob(const std::string& name, double initial, double lo, double hi) {
  knobs_.push_back(Knob{name, initial, lo, hi});
  return *this;
}

DesignPlan& DesignPlan::step(const std::string& name,
                             std::function<StepResult(PlanContext&)> fn) {
  steps_.push_back(PlanStep{name, std::move(fn)});
  return *this;
}

DesignPlan& DesignPlan::subplan(const DesignPlan& sub) {
  // Capture by value: the sub-plan definition is frozen at composition time,
  // exactly like OASYS's compiled plan hierarchy.
  steps_.push_back(PlanStep{
      "subplan:" + sub.name_, [sub](PlanContext& ctx) -> StepResult {
        for (const auto& in : sub.inputs_)
          if (!ctx.has(in))
            return StepResult::failure(sub.name_ + ": missing input " + in);
        for (const auto& k : sub.knobs_)
          if (!ctx.has(k.name)) ctx.set(k.name, k.initial);
        for (const auto& s : sub.steps_) {
          StepResult r = s.run(ctx);
          if (!r.ok) {
            r.message = sub.name_ + "/" + s.name + ": " + r.message;
            return r;  // bubble up, including any knob-adjust request
          }
        }
        return StepResult::success(sub.name_ + " complete");
      }});
  return *this;
}

PlanResult DesignPlan::execute(const circuit::Process& proc,
                               const std::map<std::string, double>& inputs,
                               std::size_t maxRetries) const {
  PlanResult result{false, {}, {}, 0, PlanContext(proc)};

  // Knob values persist across retries so adjustments accumulate.
  std::map<std::string, double> knobValues;
  for (const auto& k : knobs_) knobValues[k.name] = k.initial;

  for (std::size_t attempt = 0; attempt <= maxRetries; ++attempt) {
    PlanContext ctx(proc);
    for (const auto& [k, v] : inputs) ctx.set(k, v);
    for (const auto& [k, v] : knobValues) ctx.set(k, v);

    bool missing = false;
    for (const auto& in : inputs_) {
      if (!ctx.has(in)) {
        result.trace.push_back("missing required input: " + in);
        result.failedStep = "(inputs)";
        missing = true;
        break;
      }
    }
    if (missing) return result;

    bool failed = false;
    for (const auto& s : steps_) {
      const StepResult r = s.run(ctx);
      result.trace.push_back(s.name + ": " + (r.ok ? "ok" : "FAIL") +
                             (r.message.empty() ? "" : " — " + r.message));
      if (r.ok) continue;

      failed = true;
      result.failedStep = s.name;
      if (!r.adjustKnob.empty() && knobValues.count(r.adjustKnob) && attempt < maxRetries) {
        // Backtrack: adjust the knob within its declared range and retry.
        const auto kit = std::find_if(knobs_.begin(), knobs_.end(),
                                      [&](const Knob& k) { return k.name == r.adjustKnob; });
        double next = knobValues[r.adjustKnob] * r.adjustFactor;
        if (kit != knobs_.end()) next = std::clamp(next, kit->lo, kit->hi);
        if (next == knobValues[r.adjustKnob]) {
          result.trace.push_back("knob " + r.adjustKnob + " exhausted its range");
          result.context = std::move(ctx);
          return result;  // knob pinned at its limit: genuine failure
        }
        knobValues[r.adjustKnob] = next;
        ++result.retries;
        result.trace.push_back("retry with " + r.adjustKnob + " = " + std::to_string(next));
      } else {
        result.context = std::move(ctx);
        return result;  // non-retryable failure
      }
      break;  // restart the step sequence
    }

    if (!failed) {
      result.success = true;
      result.context = std::move(ctx);
      return result;
    }
  }
  return result;
}

}  // namespace amsyn::knowledge
