// Knowledge-based synthesis: executable design plans (Fig. 1a of the paper).
// IDAC [4] encoded manually derived, prearranged design plans; OASYS [1]
// added hierarchy (plans invoking sub-plans) and backtracking on failure.
// This engine reproduces both mechanisms: a plan is an ordered list of steps
// over a shared numeric context, a step may fail with a diagnostic, and a
// plan may declare *knobs* — heuristic quantities a failed step can ask to
// have adjusted before the plan is retried (OASYS-style backtracking).
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "circuit/process.hpp"

namespace amsyn::knowledge {

/// Shared blackboard: specification inputs, intermediate design quantities,
/// and final outputs all live here under string keys.
class PlanContext {
 public:
  explicit PlanContext(const circuit::Process& proc) : proc_(&proc) {}

  const circuit::Process& process() const { return *proc_; }

  bool has(const std::string& key) const { return values_.count(key) != 0; }
  double get(const std::string& key) const;
  double getOr(const std::string& key, double fallback) const;
  void set(const std::string& key, double value) { values_[key] = value; }

  const std::map<std::string, double>& values() const { return values_; }

 private:
  const circuit::Process* proc_;
  std::map<std::string, double> values_;
};

/// Outcome of one plan step.
struct StepResult {
  bool ok = true;
  std::string message;
  /// On failure: the knob the step wants adjusted (OASYS backtracking).
  std::string adjustKnob;
  double adjustFactor = 1.0;  ///< multiply the knob by this and retry

  static StepResult success(std::string msg = {}) { return {true, std::move(msg), {}, 1.0}; }
  static StepResult failure(std::string msg) { return {false, std::move(msg), {}, 1.0}; }
  static StepResult retry(std::string msg, std::string knob, double factor) {
    return {false, std::move(msg), std::move(knob), factor};
  }
};

struct PlanStep {
  std::string name;
  std::function<StepResult(PlanContext&)> run;
};

struct PlanResult {
  bool success = false;
  std::vector<std::string> trace;   ///< step-by-step log
  std::string failedStep;
  std::size_t retries = 0;
  PlanContext context;              ///< final blackboard state
};

/// A design plan: required inputs, knobs with initial values, ordered steps.
class DesignPlan {
 public:
  DesignPlan(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  DesignPlan& input(const std::string& input);
  /// Declare a knob with its initial value and allowed range.
  DesignPlan& knob(const std::string& name, double initial, double lo, double hi);
  DesignPlan& step(const std::string& name, std::function<StepResult(PlanContext&)> fn);
  /// Hierarchical composition: run a sub-plan as one step (OASYS hierarchy).
  /// The sub-plan shares the parent's context directly.
  DesignPlan& subplan(const DesignPlan& sub);

  /// Execute with given spec inputs.  Steps run in order; a retryable
  /// failure adjusts the named knob (within its range) and restarts the
  /// plan, up to `maxRetries`.
  PlanResult execute(const circuit::Process& proc,
                     const std::map<std::string, double>& inputs,
                     std::size_t maxRetries = 25) const;

 private:
  struct Knob {
    std::string name;
    double initial, lo, hi;
  };
  std::string name_;
  std::vector<std::string> inputs_;
  std::vector<Knob> knobs_;
  std::vector<PlanStep> steps_;
};

}  // namespace amsyn::knowledge
