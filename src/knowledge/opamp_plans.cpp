#include "knowledge/opamp_plans.hpp"

#include <cmath>

#include "core/performances.hpp"

namespace amsyn::knowledge {

std::optional<std::map<std::string, double>> opampPlanInputs(
    const sizing::SpecSet& specs, double loadCap) {
  std::map<std::string, double> in{{"spec.cload", loadCap}};
  for (const auto& s : specs.specs()) {
    if (s.isObjective()) continue;
    for (const auto& p : core::electricalPerformanceTable()) {
      if (s.performance != p.name) continue;
      if (p.upperBoundOnly && s.kind != sizing::SpecKind::LessEqual) continue;
      in[p.planInput] = s.bound;
    }
    // Slew is plan input material even though the verification testbench
    // does not measure it (the plans size the tail current from it).
    if (s.performance == "slew") in["spec.slew"] = s.bound;
  }
  if (!in.count("spec.gain_db") || !in.count("spec.ugf")) return std::nullopt;
  if (!in.count("spec.pm")) in["spec.pm"] = 60.0;
  if (!in.count("spec.slew")) in["spec.slew"] = 2.0 * in["spec.ugf"];
  return in;
}

namespace {
constexpr double kTwoPi = 2.0 * M_PI;
constexpr double kIbiasRef = 10e-6;
constexpr double kGm6OverGm1 = 10.0;  ///< classic zero-placement ratio

double deg2rad(double d) { return d * M_PI / 180.0; }
}  // namespace

DesignPlan twoStageOpampPlan() {
  DesignPlan plan("two-stage-opamp");
  plan.input("spec.gain_db")
      .input("spec.ugf")
      .input("spec.pm")
      .input("spec.slew")
      .input("spec.cload")
      .knob("vov1", 0.20, 0.08, 0.50)
      .knob("vov3", 0.30, 0.10, 0.80)
      .knob("vov5", 0.25, 0.10, 0.80)
      .knob("vov6", 0.30, 0.10, 0.80)
      .knob("margin", 1.3, 1.02, 2.0);

  plan.step("compensation capacitor", [](PlanContext& ctx) {
    // Phase budget at the UGF: 90 (dominant) + atan(ugf/p2) + atan(ugf/z)
    // = 180 - PM.  With gm6 = 10 gm1 the RHP zero sits at 10 ugf
    // (atan(0.1) ~ 5.7 deg); the rest of the budget goes to p2 and fixes
    // Cc = CL / (10 tan(budget)).
    const double pm = ctx.get("spec.pm");
    const double budgetDeg = 90.0 - pm - 5.71;
    if (budgetDeg <= 2.0)
      return StepResult::failure("phase-margin spec too aggressive for this topology");
    const double t = std::tan(deg2rad(budgetDeg));
    const double cc = std::max(ctx.get("spec.cload") / (kGm6OverGm1 * t), 0.3e-12);
    ctx.set("cc", cc);
    return StepResult::success("cc = " + std::to_string(cc * 1e12) + " pF");
  });

  plan.step("input transconductance from UGF", [](PlanContext& ctx) {
    const double gm1 = kTwoPi * ctx.get("spec.ugf") * ctx.get("cc") * ctx.get("margin");
    ctx.set("gm1", gm1);
    return StepResult::success();
  });

  plan.step("tail current from slew rate", [](PlanContext& ctx) {
    // I5 must satisfy both the slew spec (I5 = SR * Cc) and the chosen
    // input overdrive (I5 = gm1 * vov1).
    const double iSlew = ctx.get("spec.slew") * ctx.get("cc") * ctx.get("margin");
    const double iGm = ctx.get("gm1") * ctx.get("vov1");
    const double i5 = std::max(iSlew, iGm);
    ctx.set("i5", i5);
    // Effective overdrive when slew dominates.
    ctx.set("vov1.eff", i5 / ctx.get("gm1"));
    return StepResult::success();
  });

  plan.step("second stage", [](PlanContext& ctx) {
    const double gm6 = kGm6OverGm1 * ctx.get("gm1");
    const double iVov = gm6 * ctx.get("vov6") / 2.0;
    const double iSlew = ctx.get("spec.slew") * ctx.get("spec.cload") * ctx.get("margin");
    ctx.set("gm6", gm6);
    ctx.set("i7", std::max(iVov, iSlew));
    return StepResult::success();
  });

  plan.step("gain check", [](PlanContext& ctx) {
    const auto& proc = ctx.process();
    const double l = 2e-6;
    const double lamN = proc.lambdaN * 1e-6 / l;
    const double lamP = proc.lambdaP * 1e-6 / l;
    const double i5 = ctx.get("i5"), i7 = ctx.get("i7");
    const double av1 = ctx.get("gm1") / ((lamN + lamP) * i5 / 2.0);
    const double av2 = ctx.get("gm6") / ((lamN + lamP) * i7);
    const double gainDb = 20.0 * std::log10(av1 * av2);
    ctx.set("gain_db.achieved", gainDb);
    if (gainDb < ctx.get("spec.gain_db")) {
      // Heuristic backtrack: lower the input overdrive first (raises first-
      // stage gain without power cost), then the output overdrive.
      if (ctx.get("vov1") > 0.085)
        return StepResult::retry("gain short: " + std::to_string(gainDb) + " dB", "vov1",
                                 0.8);
      return StepResult::retry("gain short at min vov1", "vov6", 0.8);
    }
    return StepResult::success(std::to_string(gainDb) + " dB");
  });

  plan.step("power budget", [](PlanContext& ctx) {
    if (!ctx.has("spec.power_max")) return StepResult::success("no budget given");
    const double p =
        ctx.process().vdd * (ctx.get("i5") + ctx.get("i7") + kIbiasRef);
    ctx.set("power.achieved", p);
    if (p > ctx.get("spec.power_max"))
      return StepResult::retry("over power budget", "margin", 0.85);
    return StepResult::success();
  });

  plan.step("emit design", [](PlanContext& ctx) {
    ctx.set("out.i5", ctx.get("i5"));
    ctx.set("out.i7", ctx.get("i7"));
    ctx.set("out.vov1", ctx.get("vov1.eff"));
    ctx.set("out.vov3", ctx.get("vov3"));
    ctx.set("out.vov5", ctx.get("vov5"));
    ctx.set("out.vov6", ctx.get("vov6"));
    ctx.set("out.cc", ctx.get("cc"));
    return StepResult::success();
  });

  return plan;
}

DesignPlan otaPlan() {
  DesignPlan plan("five-transistor-ota");
  plan.input("spec.gain_db")
      .input("spec.ugf")
      .input("spec.slew")
      .input("spec.cload")
      .knob("vov1", 0.20, 0.08, 0.50)
      .knob("vov3", 0.30, 0.10, 0.80)
      .knob("vov5", 0.25, 0.10, 0.80)
      .knob("margin", 1.2, 1.02, 2.0);

  plan.step("tail current", [](PlanContext& ctx) {
    const double gm1 =
        kTwoPi * ctx.get("spec.ugf") * ctx.get("spec.cload") * ctx.get("margin");
    const double iSlew = ctx.get("spec.slew") * ctx.get("spec.cload") * ctx.get("margin");
    const double i5 = std::max(gm1 * ctx.get("vov1"), iSlew);
    ctx.set("gm1", gm1);
    ctx.set("i5", i5);
    ctx.set("vov1.eff", i5 / gm1);
    return StepResult::success();
  });

  plan.step("gain check", [](PlanContext& ctx) {
    const auto& proc = ctx.process();
    const double l = 2e-6;
    const double gds = (proc.lambdaN + proc.lambdaP) * (1e-6 / l) * ctx.get("i5") / 2.0;
    const double gainDb = 20.0 * std::log10(ctx.get("gm1") / gds);
    ctx.set("gain_db.achieved", gainDb);
    if (gainDb < ctx.get("spec.gain_db")) {
      if (ctx.get("vov1") > 0.085)
        return StepResult::retry("gain short", "vov1", 0.8);
      return StepResult::failure("single stage cannot reach the gain spec");
    }
    return StepResult::success();
  });

  plan.step("emit design", [](PlanContext& ctx) {
    ctx.set("out.i5", ctx.get("i5"));
    ctx.set("out.vov1", ctx.get("vov1.eff"));
    ctx.set("out.vov3", ctx.get("vov3"));
    ctx.set("out.vov5", ctx.get("vov5"));
    return StepResult::success();
  });

  return plan;
}

std::vector<double> extractTwoStageDesign(const PlanContext& ctx) {
  return {ctx.get("out.i5"),   ctx.get("out.i7"),   ctx.get("out.vov1"),
          ctx.get("out.vov3"), ctx.get("out.vov5"), ctx.get("out.vov6"),
          ctx.get("out.cc")};
}

std::vector<double> extractOtaDesign(const PlanContext& ctx) {
  return {ctx.get("out.i5"), ctx.get("out.vov1"), ctx.get("out.vov3"),
          ctx.get("out.vov5")};
}

}  // namespace amsyn::knowledge
