#include "knowledge/pulse_plan.hpp"

#include <algorithm>
#include <cmath>

namespace amsyn::knowledge {

namespace {
constexpr double kQ = 1.602176634e-19;

/// Shaper/CSA timing shares the translation step hands down: the CSA gets
/// ~30% of the shaping span, the stage lag ~10% per stage.
constexpr double kCsaShare = 0.30;
constexpr double kStageShare = 0.10;
}  // namespace

DesignPlan csaPlan(const sizing::PulseDetectorConfig& cfg) {
  DesignPlan plan("charge-sensitive-amplifier");
  plan.input("csa.tau_budget").input("csa.noise_budget_e").input("out.cf");
  plan.knob("vov_csa", 0.20, 0.10, 0.50);
  plan.knob("csaSpeed", 1.2, 1.0, 10.0);

  plan.step("input transconductance from charge-transfer budget",
            [cfg](PlanContext& ctx) {
              // tau_csa = Cdet * Cload / (gm1 * Cf): invert for gm1, with a
              // speed factor the noise check can crank.
              const double gm1 = cfg.detectorCap * cfg.csaLoadCap /
                                 (ctx.get("csa.tau_budget") * ctx.get("out.cf")) *
                                 ctx.get("csaSpeed");
              ctx.set("csa.gm1", gm1);
              ctx.set("out.vov_csa", ctx.get("vov_csa"));
              ctx.set("out.i_csa", gm1 * ctx.get("vov_csa") / 2.0);
              return StepResult::success();
            });

  plan.step("equivalent-noise-charge check", [cfg](PlanContext& ctx) {
    const auto& proc = ctx.process();
    const double l = 1e-6;
    const double gm1 = ctx.get("csa.gm1");
    const double iCsa = ctx.get("out.i_csa");
    const double vov = ctx.get("out.vov_csa");
    const double w1 =
        std::max(proc.minW, 2.0 * iCsa * l / (proc.kpN * vov * vov));
    const double cin = cfg.detectorCap + (2.0 / 3.0) * proc.cox * w1 * l;
    const double tShape = ctx.get("shaper.span");  // n*tau from the parent
    const double series2 =
        0.9 * cin * cin * (4.0 * proc.kT() * (2.0 / 3.0) / gm1) / tShape;
    const double par2 = 0.6 * 2.0 * kQ * cfg.leakageCurrent * tShape;
    const double flick2 = 2.0 * (proc.kfN / (proc.cox * w1 * l)) * cin * cin;
    const double enc = std::sqrt(series2 + par2 + flick2) / kQ;
    ctx.set("csa.enc", enc);
    if (enc > ctx.get("csa.noise_budget_e"))
      return StepResult::retry("ENC " + std::to_string(enc) + " e- over budget",
                               "csaSpeed", 1.4);
    return StepResult::success(std::to_string(enc) + " rms e-");
  });

  return plan;
}

DesignPlan shaperPlan(const sizing::PulseDetectorConfig& cfg) {
  DesignPlan plan("pulse-shaper");
  plan.input("out.tau").input("spec.range_v");

  plan.step("stage overdrive from output range", [](PlanContext& ctx) {
    const double vdd = ctx.process().vdd;
    // range = vdd/2 - 3 vov; leave 10% margin on the spec.
    const double vov =
        std::clamp((vdd / 2.0 - 1.1 * ctx.get("spec.range_v")) / 3.0, 0.10, 0.50);
    ctx.set("out.vov_stage", vov);
    const double achieved = vdd / 2.0 - 3.0 * vov;
    if (achieved < ctx.get("spec.range_v"))
      return StepResult::failure("range unreachable at minimum overdrive");
    return StepResult::success();
  });

  plan.step("stage bias from bandwidth", [cfg](PlanContext& ctx) {
    // Stage lag budget: kStageShare of the shaping constant.
    const double tauStage = kStageShare * ctx.get("out.tau");
    const double gmSt = cfg.shaperStageGain * cfg.stageLoadCap / tauStage;
    ctx.set("out.i_stage", gmSt * ctx.get("out.vov_stage") / 2.0);
    return StepResult::success();
  });

  return plan;
}

DesignPlan pulseDetectorPlan(const sizing::PulseDetectorConfig& cfg) {
  DesignPlan plan("pulse-detector-frontend");
  plan.input("spec.peaking_us")
      .input("spec.counting_khz")
      .input("spec.noise_e")
      .input("spec.gain_v_fc")
      .input("spec.range_v")
      .knob("timingMargin", 1.10, 1.02, 2.5)
      .knob("vov_csa", 0.20, 0.10, 0.50)
      .knob("csaSpeed", 1.2, 1.0, 10.0);

  // --- specification translation (section 2.1's top-down step) ---
  plan.step("conversion gain -> feedback capacitor", [cfg](PlanContext& ctx) {
    const double n = static_cast<double>(cfg.shaperStages);
    const double peak = std::pow(n, n) * std::exp(-n) / std::tgamma(n + 1.0);
    const double shaperGain = std::pow(cfg.shaperStageGain, n);
    // Aim 5% above the minimum gain to sit inside a [spec, ~1.15 spec] box.
    const double cf = 1e-15 * shaperGain * peak / (1.05 * ctx.get("spec.gain_v_fc"));
    if (cf < 0.5e-15) return StepResult::failure("feedback cap below manufacturable floor");
    ctx.set("out.cf", cf);
    return StepResult::success();
  });

  plan.step("timing translation", [cfg](PlanContext& ctx) {
    const double n = static_cast<double>(cfg.shaperStages);
    const double margin = ctx.get("timingMargin");
    // tp ~= n*tau (1 + kStageShare) + kCsaShare n*tau; occupancy ~= 4.9 n*tau
    // (1 + kStageShare) + 2 kCsaShare n*tau.
    const double tpMax = ctx.get("spec.peaking_us") * 1e-6 / margin;
    const double occMax = 1.0 / (ctx.get("spec.counting_khz") * 1e3) / margin;
    const double tpCoeff = 1.0 + kStageShare + kCsaShare;
    const double occCoeff = 4.9 * (1.0 + kStageShare) + 2.0 * kCsaShare;
    const double span = std::min(tpMax / tpCoeff, occMax / occCoeff);  // n*tau
    if (span <= 0) return StepResult::failure("timing budget impossible");
    ctx.set("shaper.span", span);
    ctx.set("out.tau", span / n);
    ctx.set("csa.tau_budget", kCsaShare * span);
    // Noise budget handed to the CSA: 95% of the spec (integration slack).
    ctx.set("csa.noise_budget_e", 0.95 * ctx.get("spec.noise_e"));
    return StepResult::success();
  });

  // --- sub-blocks (OASYS hierarchy: sub-plans share the context) ---
  plan.subplan(shaperPlan(cfg));
  plan.subplan(csaPlan(cfg));

  // --- bottom-line verification against the shared equation model ---
  plan.step("verify against performance model", [cfg](PlanContext& ctx) {
    const sizing::PulseDetectorModel model(ctx.process(), cfg);
    const auto x = extractPulseDetectorDesign(ctx);
    const auto perf = model.evaluate(x);
    ctx.set("perf.peaking_us", perf.at("peaking_us"));
    ctx.set("perf.counting_khz", perf.at("counting_khz"));
    ctx.set("perf.noise_e", perf.at("noise_e"));
    ctx.set("perf.gain_v_fc", perf.at("gain_v_fc"));
    ctx.set("perf.range_v", perf.at("range_v"));
    ctx.set("perf.power", perf.at("power"));
    if (perf.at("peaking_us") > ctx.get("spec.peaking_us"))
      return StepResult::retry("peaking over spec", "timingMargin", 1.15);
    if (perf.at("counting_khz") < ctx.get("spec.counting_khz"))
      return StepResult::retry("counting rate under spec", "timingMargin", 1.15);
    if (perf.at("noise_e") > ctx.get("spec.noise_e"))
      return StepResult::retry("noise over spec", "csaSpeed", 1.4);
    if (perf.at("range_v") < ctx.get("spec.range_v"))
      return StepResult::failure("range check failed post-verification");
    return StepResult::success();
  });

  return plan;
}

std::vector<double> extractPulseDetectorDesign(const PlanContext& ctx) {
  return {ctx.get("out.i_csa"),  ctx.get("out.vov_csa"), ctx.get("out.cf"),
          ctx.get("out.tau"),    ctx.get("out.i_stage"), ctx.get("out.vov_stage")};
}

}  // namespace amsyn::knowledge
