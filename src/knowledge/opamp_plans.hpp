// Concrete design plans for the amplifier library — the hand-derived sizing
// procedures an IDAC/OASYS developer would encode (here: the classic
// Allen & Holberg two-stage procedure and its OTA counterpart).
//
// Plan inputs (context keys):
//   spec.gain_db, spec.ugf, spec.pm, spec.slew, spec.cload
//   optional: spec.power_max
// Plan outputs: out.i5, out.i7, out.vov1, out.vov3, out.vov5, out.vov6,
// out.cc (two-stage) — the same coordinates as TwoStageEquationModel, so a
// plan result can be evaluated, simulated and laid out like any optimizer
// result.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "knowledge/plan.hpp"
#include "sizing/spec.hpp"

namespace amsyn::knowledge {

/// Map a (possibly retargeted) spec set onto the opamp plans' input context
/// keys (spec.gain_db, spec.ugf, spec.pm, spec.slew, spec.power_max,
/// spec.cload), using the shared electrical-performance table
/// (core/performances.hpp).  Returns nullopt when the specs do not carry
/// the gain_db + ugf pair the plans require; otherwise fills the plan
/// defaults (pm = 60 deg, slew = 2 * ugf) for inputs the specs omit.
std::optional<std::map<std::string, double>> opampPlanInputs(
    const sizing::SpecSet& specs, double loadCap);

/// Two-stage Miller opamp plan with gain/power backtracking knobs.
DesignPlan twoStageOpampPlan();

/// Five-transistor OTA plan (outputs out.i5, out.vov1, out.vov3, out.vov5).
DesignPlan otaPlan();

/// Pull the two-stage design vector (TwoStageEquationModel variable order)
/// out of a completed plan context.
std::vector<double> extractTwoStageDesign(const PlanContext& ctx);

/// Pull the OTA design vector (OtaEquationModel variable order).
std::vector<double> extractOtaDesign(const PlanContext& ctx);

}  // namespace amsyn::knowledge
