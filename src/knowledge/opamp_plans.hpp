// Concrete design plans for the amplifier library — the hand-derived sizing
// procedures an IDAC/OASYS developer would encode (here: the classic
// Allen & Holberg two-stage procedure and its OTA counterpart).
//
// Plan inputs (context keys):
//   spec.gain_db, spec.ugf, spec.pm, spec.slew, spec.cload
//   optional: spec.power_max
// Plan outputs: out.i5, out.i7, out.vov1, out.vov3, out.vov5, out.vov6,
// out.cc (two-stage) — the same coordinates as TwoStageEquationModel, so a
// plan result can be evaluated, simulated and laid out like any optimizer
// result.
#pragma once

#include <vector>

#include "knowledge/plan.hpp"

namespace amsyn::knowledge {

/// Two-stage Miller opamp plan with gain/power backtracking knobs.
DesignPlan twoStageOpampPlan();

/// Five-transistor OTA plan (outputs out.i5, out.vov1, out.vov3, out.vov5).
DesignPlan otaPlan();

/// Pull the two-stage design vector (TwoStageEquationModel variable order)
/// out of a completed plan context.
std::vector<double> extractTwoStageDesign(const PlanContext& ctx);

/// Pull the OTA design vector (OtaEquationModel variable order).
std::vector<double> extractOtaDesign(const PlanContext& ctx);

}  // namespace amsyn::knowledge
