// Mixed-signal power-grid electrical modeling — the analysis half of RAIL
// (Stanisic, Verghese, Rutenbar, Carley & Allstot [58,60]).  The grid,
// package parasitics and block loads become one linear network; RAIL's key
// idea is evaluating that entire network *during layout* with AWE [61]
// instead of full simulation, fast enough to sit inside a synthesis loop.
//
// The model: a rows x cols mesh of metal wires over the chip; supply pads
// connect through a package branch (R + L); each functional block draws a
// DC current, switching (digital) blocks add triangular current spikes, and
// every block contributes decoupling capacitance at its nearest grid node.
#pragma once

#include <string>
#include <vector>

#include "circuit/process.hpp"
#include "geom/rect.hpp"
#include "numeric/matrix.hpp"

namespace amsyn::power {

struct BlockLoad {
  std::string name;
  geom::Rect rect;            ///< placement (quarter-lambda units)
  double avgCurrent = 0.0;    ///< DC draw (A)
  double peakCurrent = 0.0;   ///< switching spike amplitude (A), digital only
  double spikeDuration = 2e-9;///< spike width (s)
  double decouplingCap = 50e-12;
  bool analog = false;        ///< sensitive supply consumer
};

struct PowerPad {
  geom::Point location;
  double packageR = 0.5;     ///< ohms
  double packageL = 5e-9;    ///< henries
};

struct PowerGridSpec {
  geom::Rect chip;
  int rows = 5;
  int cols = 5;
  std::vector<PowerPad> pads;
  std::vector<BlockLoad> loads;
  double vdd = 5.0;
};

/// One mesh segment with its assigned width.
struct GridWire {
  std::size_t a = 0, b = 0;   ///< node indices
  double lengthMeters = 0.0;
  double widthMeters = 2e-6;

  double resistance(const circuit::Process& proc) const {
    return proc.rsMetal2 * lengthMeters / widthMeters;
  }
};

/// Analysis results against the constraints RAIL manages.
struct GridAnalysis {
  double worstDcDropVolts = 0.0;        ///< max IR drop at any node
  double worstAnalogDcDropVolts = 0.0;  ///< max at analog blocks only
  double worstSpikeVolts = 0.0;         ///< worst transient dip (AWE estimate)
  double worstAnalogSpikeVolts = 0.0;   ///< spike coupled into analog nodes
  double worstEmStressRatio = 0.0;      ///< max (current density / limit)
  double metalAreaM2 = 0.0;             ///< total wire metal area
  bool solved = false;
};

/// Discretized grid: nodes, wires, load/pad attachment.
class PowerGrid {
 public:
  PowerGrid(const PowerGridSpec& spec, const circuit::Process& proc);

  std::size_t nodeCount() const { return nodes_.size(); }
  const std::vector<GridWire>& wires() const { return wires_; }
  std::vector<GridWire>& wires() { return wires_; }
  const PowerGridSpec& spec() const { return spec_; }

  /// Add synthesized bypass capacitance at a block's supply node (RAIL
  /// places decoupling when metal alone cannot tame L di/dt spikes).
  void addDecap(std::size_t loadIndex, double farads);
  double totalAddedDecap() const;

  /// Node a block/pad attaches to.
  std::size_t nearestNode(geom::Point p) const;

  /// DC solve: node voltages under average currents (pads ideal at vdd
  /// behind their package resistance).
  num::VecD dcSolve() const;

  /// Full analysis: DC drop, AWE transient spike, electromigration stress.
  GridAnalysis analyze() const;

  /// Transfer impedance magnitude |Z(j 2 pi f)| from a block's injection
  /// node to an observation node, via AWE on the grid + package model.
  double transferImpedance(const std::string& fromBlock, std::size_t toNode,
                           double frequency) const;

 private:
  void buildMnaMatrices(num::MatrixD& g, num::MatrixD& c) const;

  PowerGridSpec spec_;
  const circuit::Process& proc_;
  std::vector<geom::Point> nodes_;
  std::vector<GridWire> wires_;
  std::vector<std::size_t> padNode_;   // per pad
  std::vector<std::size_t> loadNode_;  // per load
  std::vector<double> extraDecap_;     // per load, synthesized bypass
};

}  // namespace amsyn::power
