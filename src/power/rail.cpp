#include "power/rail.hpp"

#include <algorithm>
#include <numeric>
#include <cmath>

namespace amsyn::power {

bool meets(const GridAnalysis& a, const RailConstraints& c) {
  return a.worstDcDropVolts <= c.maxDcDropVolts && a.worstSpikeVolts <= c.maxSpikeVolts &&
         a.worstAnalogSpikeVolts <= c.maxAnalogSpikeVolts &&
         a.worstEmStressRatio <= c.maxEmStress;
}

void applyUniformWidth(PowerGrid& grid, double widthMeters) {
  for (auto& w : grid.wires()) w.widthMeters = widthMeters;
}

namespace {

/// Per-wire DC current magnitudes at the present widths.
std::vector<double> wireCurrents(const PowerGrid& grid, const circuit::Process& proc) {
  const num::VecD v = grid.dcSolve();
  std::vector<double> out;
  out.reserve(grid.wires().size());
  for (const auto& w : grid.wires())
    out.push_back(std::abs(v[w.a] - v[w.b]) / w.resistance(proc));
  return out;
}

}  // namespace

RailResult synthesizePowerGrid(PowerGrid& grid, const RailConstraints& constraints,
                               const circuit::Process& proc, const RailOptions& opts) {
  RailResult result;
  result.initial = grid.analyze();

  GridAnalysis current = result.initial;
  for (std::size_t it = 0; it < opts.maxIterations && !meets(current, constraints); ++it) {
    ++result.iterations;
    const auto currents = wireCurrents(grid, proc);

    if (current.worstEmStressRatio > constraints.maxEmStress) {
      // Widen every over-stressed wire directly to its compliant width.
      for (std::size_t i = 0; i < grid.wires().size(); ++i) {
        auto& w = grid.wires()[i];
        const double limit = proc.jMaxMetal * w.widthMeters * proc.metalThickness;
        if (currents[i] > 0.8 * limit) {
          const double needed = currents[i] / (proc.jMaxMetal * proc.metalThickness) * 1.25;
          w.widthMeters = std::clamp(std::max(needed, w.widthMeters * opts.widenFactor),
                                     opts.minWidth, opts.maxWidth);
        }
      }
    } else if (current.worstSpikeVolts > constraints.maxSpikeVolts ||
               current.worstAnalogSpikeVolts > constraints.maxAnalogSpikeVolts) {
      // Spikes are dominated by package L di/dt: synthesize bypass
      // capacitance at the switching aggressors (and at analog victims when
      // the coupled spike is the violation).
      const bool analogViolated =
          current.worstAnalogSpikeVolts > constraints.maxAnalogSpikeVolts;
      const double decapBudget =
          opts.maxDecapPerBlock * static_cast<double>(grid.spec().loads.size());
      for (std::size_t l = 0; l < grid.spec().loads.size(); ++l) {
        const auto& load = grid.spec().loads[l];
        const bool aggressor = load.peakCurrent > 0.0;
        const bool victim = analogViolated && load.analog;
        if (!aggressor && !victim) continue;
        if (grid.totalAddedDecap() >= decapBudget) break;
        grid.addDecap(l, load.decouplingCap * (opts.decapBoostFactor - 1.0) * (it + 1.0));
      }
    } else {
      // IR drop / spike: widen the wires carrying the most current (they
      // dominate the resistive path from pad to victim).
      std::vector<std::size_t> idx(grid.wires().size());
      std::iota(idx.begin(), idx.end(), std::size_t{0});
      std::sort(idx.begin(), idx.end(),
                [&](std::size_t a, std::size_t b) { return currents[a] > currents[b]; });
      const std::size_t top = std::max<std::size_t>(1, idx.size() / 4);
      for (std::size_t k = 0; k < top; ++k) {
        auto& w = grid.wires()[idx[k]];
        w.widthMeters =
            std::clamp(w.widthMeters * opts.widenFactor, opts.minWidth, opts.maxWidth);
      }
    }
    current = grid.analyze();
  }

  // Area-recovery pass: narrow lightly-loaded wires while constraints hold.
  if (opts.shrinkPass && meets(current, constraints)) {
    const auto currents = wireCurrents(grid, proc);
    std::vector<std::size_t> idx(grid.wires().size());
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    std::sort(idx.begin(), idx.end(),
              [&](std::size_t a, std::size_t b) { return currents[a] < currents[b]; });
    for (std::size_t k : idx) {
      auto& w = grid.wires()[k];
      const double saved = w.widthMeters;
      w.widthMeters = std::max(opts.minWidth, w.widthMeters / opts.widenFactor);
      if (w.widthMeters == saved) continue;
      if (!meets(grid.analyze(), constraints)) w.widthMeters = saved;  // revert
    }
    current = grid.analyze();
  }

  result.final = current;
  result.constraintsMet = meets(current, constraints);
  result.addedDecapFarads = grid.totalAddedDecap();
  for (const auto& w : grid.wires()) result.widths.push_back(w.widthMeters);
  return result;
}

}  // namespace amsyn::power
