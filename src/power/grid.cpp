#include "power/grid.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "awe/awe.hpp"

namespace amsyn::power {

using geom::Coord;
using geom::Point;

PowerGrid::PowerGrid(const PowerGridSpec& spec, const circuit::Process& proc)
    : spec_(spec), proc_(proc) {
  if (spec.rows < 2 || spec.cols < 2)
    throw std::invalid_argument("PowerGrid: need at least a 2x2 mesh");
  if (spec.pads.empty()) throw std::invalid_argument("PowerGrid: no supply pads");

  // Mesh nodes.
  for (int r = 0; r < spec.rows; ++r)
    for (int c = 0; c < spec.cols; ++c) {
      const Coord x =
          spec.chip.x0 + spec.chip.width() * static_cast<Coord>(c) / (spec.cols - 1);
      const Coord y =
          spec.chip.y0 + spec.chip.height() * static_cast<Coord>(r) / (spec.rows - 1);
      nodes_.push_back({x, y});
    }
  auto nodeId = [&](int r, int c) { return static_cast<std::size_t>(r) * spec.cols + c; };

  // Mesh wires (lengths in meters via the process lambda).
  const double quarter = proc.lambda / 4.0;
  for (int r = 0; r < spec.rows; ++r)
    for (int c = 0; c < spec.cols; ++c) {
      if (c + 1 < spec.cols) {
        GridWire w;
        w.a = nodeId(r, c);
        w.b = nodeId(r, c + 1);
        w.lengthMeters = static_cast<double>(nodes_[w.b].x - nodes_[w.a].x) * quarter;
        wires_.push_back(w);
      }
      if (r + 1 < spec.rows) {
        GridWire w;
        w.a = nodeId(r, c);
        w.b = nodeId(r + 1, c);
        w.lengthMeters = static_cast<double>(nodes_[w.b].y - nodes_[w.a].y) * quarter;
        wires_.push_back(w);
      }
    }

  for (const auto& p : spec.pads) padNode_.push_back(nearestNode(p.location));
  for (const auto& l : spec.loads) loadNode_.push_back(nearestNode(l.rect.center()));
  extraDecap_.assign(spec.loads.size(), 0.0);
}

void PowerGrid::addDecap(std::size_t loadIndex, double farads) {
  extraDecap_.at(loadIndex) += farads;
}

double PowerGrid::totalAddedDecap() const {
  double total = 0.0;
  for (double d : extraDecap_) total += d;
  return total;
}

std::size_t PowerGrid::nearestNode(Point p) const {
  std::size_t best = 0;
  Coord bestD = std::numeric_limits<Coord>::max();
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Coord d = std::abs(nodes_[i].x - p.x) + std::abs(nodes_[i].y - p.y);
    if (d < bestD) {
      bestD = d;
      best = i;
    }
  }
  return best;
}

num::VecD PowerGrid::dcSolve() const {
  const std::size_t n = nodes_.size();
  num::MatrixD g(n, n);
  num::VecD b(n, 0.0);
  for (const auto& w : wires_) {
    const double cond = 1.0 / w.resistance(proc_);
    g(w.a, w.a) += cond;
    g(w.b, w.b) += cond;
    g(w.a, w.b) -= cond;
    g(w.b, w.a) -= cond;
  }
  for (std::size_t p = 0; p < padNode_.size(); ++p) {
    const double cond = 1.0 / std::max(spec_.pads[p].packageR, 1e-6);
    g(padNode_[p], padNode_[p]) += cond;
    b[padNode_[p]] += cond * spec_.vdd;
  }
  for (std::size_t l = 0; l < loadNode_.size(); ++l)
    b[loadNode_[l]] -= spec_.loads[l].avgCurrent;
  return num::solveDense(g, b);
}

void PowerGrid::buildMnaMatrices(num::MatrixD& g, num::MatrixD& c) const {
  // Unknowns: node voltages (small-signal about vdd) + one branch current
  // per pad through the package R + L.
  const std::size_t n = nodes_.size();
  const std::size_t total = n + padNode_.size();
  g = num::MatrixD(total, total);
  c = num::MatrixD(total, total);

  for (const auto& w : wires_) {
    const double cond = 1.0 / w.resistance(proc_);
    g(w.a, w.a) += cond;
    g(w.b, w.b) += cond;
    g(w.a, w.b) -= cond;
    g(w.b, w.a) -= cond;
    // Wire ground capacitance, split between endpoints.
    const double cw = w.lengthMeters * w.widthMeters * proc_.caMetal2 +
                      2.0 * w.lengthMeters * proc_.cfMetal2;
    c(w.a, w.a) += cw / 2.0;
    c(w.b, w.b) += cw / 2.0;
  }
  for (std::size_t l = 0; l < loadNode_.size(); ++l)
    c(loadNode_[l], loadNode_[l]) += spec_.loads[l].decouplingCap + extraDecap_[l];

  for (std::size_t p = 0; p < padNode_.size(); ++p) {
    const std::size_t br = n + p;
    const std::size_t nd = padNode_[p];
    // Branch current i flows supply -> node.  KCL at the node: -i leaves.
    g(nd, br) -= 1.0;
    // Branch equation: -v_node - R i - sL i = 0.
    g(br, nd) -= 1.0;
    g(br, br) -= std::max(spec_.pads[p].packageR, 1e-6);
    c(br, br) -= spec_.pads[p].packageL;
  }
}

double PowerGrid::transferImpedance(const std::string& fromBlock, std::size_t toNode,
                                    double frequency) const {
  std::size_t src = SIZE_MAX;
  for (std::size_t l = 0; l < spec_.loads.size(); ++l)
    if (spec_.loads[l].name == fromBlock) src = loadNode_[l];
  if (src == SIZE_MAX)
    throw std::invalid_argument("transferImpedance: unknown block " + fromBlock);

  num::MatrixD g, c;
  buildMnaMatrices(g, c);
  num::VecD b(g.rows(), 0.0);
  b[src] = 1.0;  // unit current injection
  const auto model = awe::aweLinearSystem(g, c, b, toNode, 3);
  return model.magnitudeAt(frequency);
}

GridAnalysis PowerGrid::analyze() const {
  GridAnalysis a;

  // --- DC drop + electromigration ---
  const num::VecD v = dcSolve();
  for (std::size_t l = 0; l < loadNode_.size(); ++l) {
    const double drop = spec_.vdd - v[loadNode_[l]];
    a.worstDcDropVolts = std::max(a.worstDcDropVolts, drop);
    if (spec_.loads[l].analog) a.worstAnalogDcDropVolts = std::max(a.worstAnalogDcDropVolts, drop);
  }
  for (const auto& w : wires_) {
    const double i = std::abs(v[w.a] - v[w.b]) / w.resistance(proc_);
    const double limit = proc_.jMaxMetal * w.widthMeters * proc_.metalThickness;
    a.worstEmStressRatio = std::max(a.worstEmStressRatio, i / std::max(limit, 1e-18));
    a.metalAreaM2 += w.lengthMeters * w.widthMeters;
  }

  // --- transient spikes via AWE ---
  num::MatrixD g, c;
  buildMnaMatrices(g, c);
  for (std::size_t d = 0; d < spec_.loads.size(); ++d) {
    const auto& agg = spec_.loads[d];
    if (agg.peakCurrent <= 0.0) continue;
    num::VecD b(g.rows(), 0.0);
    b[loadNode_[d]] = 1.0;
    // Victims: the aggressor's own node plus every analog node.
    std::vector<std::size_t> victims{loadNode_[d]};
    std::vector<bool> victimAnalog{false};
    for (std::size_t l = 0; l < spec_.loads.size(); ++l)
      if (spec_.loads[l].analog) {
        victims.push_back(loadNode_[l]);
        victimAnalog.push_back(true);
      }
    for (std::size_t k = 0; k < victims.size(); ++k) {
      try {
        const auto model = awe::aweLinearSystem(g, c, b, victims[k], 3);
        // Current-step response bounds the pulse response; sample within
        // and just beyond the spike.
        double worst = 0.0;
        for (double t : {0.5 * agg.spikeDuration, agg.spikeDuration, 2.0 * agg.spikeDuration})
          worst = std::max(worst, std::abs(model.stepResponse(t)) * agg.peakCurrent);
        a.worstSpikeVolts = std::max(a.worstSpikeVolts, worst);
        if (victimAnalog[k]) a.worstAnalogSpikeVolts = std::max(a.worstAnalogSpikeVolts, worst);
      } catch (const std::exception&) {
        // AWE failure on a degenerate configuration: treat as unconstrained
        // worst case so the optimizer reacts.
        a.worstSpikeVolts = std::max(a.worstSpikeVolts, spec_.vdd);
      }
    }
  }
  a.solved = true;
  return a;
}

}  // namespace amsyn::power
