// RAIL power-grid synthesis (Stanisic et al. [58,60]; Fig. 3 of the paper):
// cast mixed-signal power distribution as an optimization over wire widths
// against dc, ac/transient, and electromigration constraints, with the whole
// grid + package evaluated electrically (AWE) at every step.  The paper's
// Fig. 3 shows RAIL re-designing the IBM data-channel grid to meet "a
// demanding set of dc, ac and transient performance constraints
// automatically" — bench/bench_fig3_rail_grid reproduces that flow on the
// synthetic data-channel chip.
#pragma once

#include "power/grid.hpp"

namespace amsyn::power {

struct RailConstraints {
  double maxDcDropVolts = 0.15;
  double maxSpikeVolts = 0.30;         ///< at any supply node
  double maxAnalogSpikeVolts = 0.10;   ///< coupled into analog blocks
  double maxEmStress = 1.0;            ///< current density / limit
};

struct RailOptions {
  double widenFactor = 1.35;
  double minWidth = 1e-6;
  double maxWidth = 250e-6;   ///< power trunks of hundreds of um are normal
  std::size_t maxIterations = 48;
  bool shrinkPass = true;  ///< recover metal area after constraints are met
  /// Spike mitigation: supply spikes are limited by package L di/dt, which
  /// metal width cannot fix; RAIL places bypass capacitance instead.
  double decapBoostFactor = 1.7;
  double maxDecapPerBlock = 20e-9;
};

struct RailResult {
  GridAnalysis initial;
  GridAnalysis final;
  bool constraintsMet = false;
  std::size_t iterations = 0;
  std::vector<double> widths;     ///< final per-wire widths
  double addedDecapFarads = 0.0;  ///< synthesized bypass capacitance
};

/// Check an analysis against the constraints.
bool meets(const GridAnalysis& a, const RailConstraints& c);

/// Width-optimize the grid in place.  Strategy: widen the wires responsible
/// for the worst violated constraint (EM-stressed wires, then high-current
/// wires for IR/spike) until everything holds, then optionally narrow
/// low-current wires while constraints keep holding.
RailResult synthesizePowerGrid(PowerGrid& grid, const RailConstraints& constraints,
                               const circuit::Process& proc, const RailOptions& opts = {});

/// Digital-style reference grid: a uniform width chosen for connectivity
/// and average IR drop only (the paper: digital schemes "focus on
/// connectivity, pad-to-pin ohmic drop, and electromigration"), ignoring
/// transient spikes and analog victims.  The Fig. 3 bench compares this
/// baseline against the RAIL result.
void applyUniformWidth(PowerGrid& grid, double widthMeters);

}  // namespace amsyn::power
