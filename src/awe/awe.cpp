#include "awe/awe.hpp"

#include <cmath>
#include <complex>
#include <stdexcept>

namespace amsyn::awe {

double AweModel::magnitudeAt(double frequencyHz) const {
  const std::complex<double> s{0.0, 2.0 * M_PI * frequencyHz};
  return std::abs(pr.evaluate(s));
}

double AweModel::elmoreDelay() const {
  if (moments.size() < 2 || moments[0] == 0.0)
    throw std::logic_error("elmoreDelay: need m0 != 0 and m1");
  return -moments[1] / moments[0];
}

double AweModel::stepResponse(double t) const { return pr.step(t); }

std::vector<double> computeMoments(
    const std::function<num::VecD(const num::VecD&)>& solveG,
    const std::function<num::VecD(const num::VecD&)>& multiplyC, const num::VecD& b,
    std::size_t outputIndex, std::size_t order) {
  if (order == 0) throw std::invalid_argument("computeMoments: order must be >= 1");
  std::vector<double> moments;
  moments.reserve(2 * order);
  num::VecD mk = solveG(b);  // m_0 vector
  moments.push_back(mk.at(outputIndex));
  for (std::size_t k = 1; k < 2 * order; ++k) {
    num::VecD cm = multiplyC(mk);
    for (double& x : cm) x = -x;
    mk = solveG(cm);
    moments.push_back(mk.at(outputIndex));
  }
  return moments;
}

AweModel modelFromMoments(std::vector<double> moments) {
  AweModel model;
  model.rational = num::padeAuto(moments);
  model.pr = num::toPoleResidue(model.rational, /*enforceStability=*/true);
  model.moments = std::move(moments);
  return model;
}

AweModel aweLinearSystem(const num::MatrixD& g, const num::MatrixD& c, const num::VecD& b,
                         std::size_t outputIndex, std::size_t order) {
  const num::LUD lu(g);
  auto solveG = [&](const num::VecD& r) { return lu.solve(r); };
  auto multiplyC = [&](const num::VecD& x) { return c * x; };
  return modelFromMoments(computeMoments(solveG, multiplyC, b, outputIndex, order));
}

AweModel aweTransfer(const sim::Mna& mna, const sim::DcResult& op,
                     const std::string& outputNode, std::size_t order) {
  if (!op.converged) throw std::invalid_argument("aweTransfer: op not converged");
  const auto node = mna.netlist().findNode(outputNode);
  if (!node || *node == circuit::kGround)
    throw std::invalid_argument("aweTransfer: bad output node " + outputNode);

  num::MatrixD g, c;
  num::VecD b;
  mna.acMatrices(op.x, g, c, b);
  return aweLinearSystem(g, c, b, mna.nodeIndex(*node), order);
}

}  // namespace amsyn::awe
