// Asymptotic Waveform Evaluation (Pillage & Rohrer, IEEE TCAD 1990 — the
// paper's ref [61]).  AWE reduces a large linear(ized) network to a few
// dominant poles by matching moments of the transfer function, giving
// orders-of-magnitude-faster evaluation than full AC/transient analysis.
//
// In this library AWE serves two masters, exactly as in the paper:
//  * ASTRX/OBLX-style synthesis [23] evaluates linear small-signal
//    characteristics with AWE inside the annealing loop, and
//  * RAIL [58,60] models the entire power grid + package electrically
//    during layout via AWE.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "numeric/pade.hpp"
#include "sim/dc.hpp"
#include "sim/mna.hpp"

namespace amsyn::awe {

/// Reduced-order model of one transfer function.
struct AweModel {
  std::vector<double> moments;   ///< m0 .. m_{2q-1} of the output variable
  num::Rational rational;        ///< [q-1/q] Padé approximant
  num::PoleResidue pr;           ///< stable pole/residue form

  /// Evaluate |H(j 2 pi f)|.
  double magnitudeAt(double frequencyHz) const;

  /// First-moment (Elmore-style) delay estimate: -m1/m0.
  double elmoreDelay() const;

  /// Unit-step response at time t from the pole/residue form.
  double stepResponse(double t) const;
};

/// Generic moment engine: given a solver for G x = r and the action of the
/// storage matrix C, compute 2q output moments of x at `outputIndex` driven
/// by excitation b.  This form lets the dense MNA path and the sparse
/// power-grid path share one implementation:
///   m_0 = G^{-1} b,   m_k = -G^{-1} C m_{k-1}.
std::vector<double> computeMoments(
    const std::function<num::VecD(const num::VecD&)>& solveG,
    const std::function<num::VecD(const num::VecD&)>& multiplyC, const num::VecD& b,
    std::size_t outputIndex, std::size_t order);

/// Build an AWE model from explicit moments (order reduced automatically when
/// the moment sequence comes from fewer poles than requested).
AweModel modelFromMoments(std::vector<double> moments);

/// AWE model of the small-signal transfer from the netlist's AC sources to
/// `outputNode`, linearized at operating point `op`.  `order` is the number
/// of requested poles q (2q moments are computed).
AweModel aweTransfer(const sim::Mna& mna, const sim::DcResult& op,
                     const std::string& outputNode, std::size_t order = 4);

/// AWE model of a driving-point/transfer response of an arbitrary linear
/// system given dense G and C matrices and excitation b.
AweModel aweLinearSystem(const num::MatrixD& g, const num::MatrixD& c, const num::VecD& b,
                         std::size_t outputIndex, std::size_t order = 4);

}  // namespace amsyn::awe
