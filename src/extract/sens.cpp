#include "extract/sens.hpp"

#include <cmath>
#include <stdexcept>

namespace amsyn::extract {

Sensitivity capacitanceSensitivity(const circuit::Netlist& net, const MeasureFn& measure,
                                   const std::vector<std::string>& netNames,
                                   double deltaCap) {
  Sensitivity out;
  out.nominal = measure(net);
  std::size_t idx = 0;
  for (const auto& name : netNames) {
    circuit::Netlist perturbed = net;
    if (!perturbed.findNode(name))
      throw std::invalid_argument("capacitanceSensitivity: unknown net " + name);
    perturbed.addCapacitor("CSENS" + std::to_string(idx++), name, "0", deltaCap);
    const double v = measure(perturbed);
    out.dPerfDCap[name] = (v - out.nominal) / deltaCap;
  }
  return out;
}

std::map<std::string, double> mapParasiticBounds(const Sensitivity& sens,
                                                 double allowedDelta, double floorCap) {
  if (allowedDelta <= 0.0)
    throw std::invalid_argument("mapParasiticBounds: allowedDelta must be positive");
  // Allocation proportional to 1/|S_i|: each net may consume an equal share
  // of the degradation budget, which translates to more farads where the
  // circuit does not care.
  double sumInv = 0.0;
  for (const auto& [net, s] : sens.dPerfDCap) {
    (void)net;
    sumInv += 1.0;  // equal budget shares; farads follow from |S|
  }
  if (sumInv == 0.0) return {};
  const double sharePerNet = allowedDelta / sumInv;

  std::map<std::string, double> bounds;
  for (const auto& [net, s] : sens.dPerfDCap) {
    const double mag = std::abs(s);
    const double cap = mag > 1e-30 ? sharePerNet / mag : 1.0;  // insensitive: huge bound
    bounds[net] = std::max(cap, floorCap);
  }
  return bounds;
}

}  // namespace amsyn::extract
