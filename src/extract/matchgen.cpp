#include "extract/matchgen.hpp"

#include <cmath>
#include <set>

namespace amsyn::extract {

using circuit::Device;
using circuit::DeviceType;

namespace {
bool sameGeometry(const Device& a, const Device& b) {
  const double wa = a.mos.w * a.mos.m, wb = b.mos.w * b.mos.m;
  return a.mos.type == b.mos.type && std::abs(wa - wb) <= 0.01 * std::max(wa, wb) &&
         std::abs(a.mos.l - b.mos.l) <= 0.01 * std::max(a.mos.l, b.mos.l);
}
}  // namespace

std::vector<MatchConstraint> generateMatchingConstraints(const circuit::Netlist& net) {
  std::vector<MatchConstraint> out;
  std::vector<const Device*> mos;
  for (const auto& d : net.devices())
    if (d.type == DeviceType::Mos) mos.push_back(&d);

  auto nodeName = [&](circuit::NodeId n) { return net.nodeName(n); };
  std::set<std::string> inPair, inMirror;

  // Differential pairs: shared source, equal geometry, distinct gates,
  // distinct drains.
  for (std::size_t i = 0; i < mos.size(); ++i) {
    for (std::size_t j = i + 1; j < mos.size(); ++j) {
      const Device& a = *mos[i];
      const Device& b = *mos[j];
      if (inPair.count(a.name) || inPair.count(b.name)) continue;
      if (!sameGeometry(a, b)) continue;
      if (a.nodes[2] != b.nodes[2]) continue;        // source shared
      if (a.nodes[1] == b.nodes[1]) continue;        // gates must differ
      if (a.nodes[0] == b.nodes[0]) continue;        // drains must differ
      // The shared source must not be a supply rail (that would be a
      // mirror-ish structure, not a pair).
      const std::string src = nodeName(a.nodes[2]);
      if (src == "0" || src == "gnd" || src == "vdd") continue;
      MatchConstraint c;
      c.kind = MatchKind::DifferentialPair;
      c.deviceA = a.name;
      c.deviceB = b.name;
      c.symmetricNets.emplace_back(nodeName(a.nodes[1]), nodeName(b.nodes[1]));
      c.symmetricNets.emplace_back(nodeName(a.nodes[0]), nodeName(b.nodes[0]));
      out.push_back(std::move(c));
      inPair.insert(a.name);
      inPair.insert(b.name);
    }
  }

  // Current mirrors: shared gate + shared source, one device diode-
  // connected (gate tied to its own drain).
  for (std::size_t i = 0; i < mos.size(); ++i) {
    for (std::size_t j = 0; j < mos.size(); ++j) {
      if (i == j) continue;
      const Device& diode = *mos[i];
      const Device& mirror = *mos[j];
      if (inMirror.count(diode.name) || inMirror.count(mirror.name)) continue;
      if (diode.mos.type != mirror.mos.type) continue;
      if (diode.nodes[1] != diode.nodes[0]) continue;   // diode-connected
      if (mirror.nodes[1] != diode.nodes[1]) continue;  // gates shared
      if (mirror.nodes[2] != diode.nodes[2]) continue;  // sources shared
      if (mirror.nodes[0] == diode.nodes[0]) continue;  // distinct outputs
      MatchConstraint c;
      c.kind = MatchKind::CurrentMirror;
      c.deviceA = diode.name;
      c.deviceB = mirror.name;
      out.push_back(std::move(c));
      inMirror.insert(diode.name);
      inMirror.insert(mirror.name);
    }
  }
  return out;
}

}  // namespace amsyn::extract
