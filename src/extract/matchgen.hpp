// Automatic generation of symmetry / matching constraints from the device
// schematic (Charbon, Malavasi & Sangiovanni-Vincentelli, ICCAD 1993 — the
// paper's ref [47]): recognize differential pairs and current mirrors
// structurally so the placer and router receive their symmetric-pair and
// matched-device constraints without designer annotation.
#pragma once

#include <string>
#include <vector>

#include "circuit/netlist.hpp"

namespace amsyn::extract {

enum class MatchKind : std::uint8_t {
  DifferentialPair,  ///< shared source, equal geometry, distinct gates
  CurrentMirror,     ///< shared gate + shared source, one diode-connected
  MatchedPair,       ///< equal geometry, same type (weaker constraint)
};

struct MatchConstraint {
  MatchKind kind = MatchKind::MatchedPair;
  std::string deviceA;
  std::string deviceB;
  /// Symmetric nets implied by the pair (e.g. the two gate nets of a
  /// differential pair must be routed symmetrically).
  std::vector<std::pair<std::string, std::string>> symmetricNets;
};

/// Scan the netlist for matching structures.  Differential pairs are
/// reported before mirrors; each device appears in at most one constraint of
/// each kind.
std::vector<MatchConstraint> generateMatchingConstraints(const circuit::Netlist& net);

}  // namespace amsyn::extract
