// Layout parasitic extraction: wire resistance, ground capacitance and
// same-layer coupling capacitance from routed geometry, plus back-annotation
// into the circuit netlist for post-layout ("detailed design verification
// after extraction" in the paper's bottom-up path, section 2.1).
#pragma once

#include <map>
#include <string>

#include "circuit/netlist.hpp"
#include "circuit/process.hpp"
#include "geom/layout.hpp"

namespace amsyn::extract {

struct NetParasitics {
  double groundCap = 0.0;    ///< F, area + fringe to substrate
  double resistance = 0.0;   ///< ohms, series estimate over all wire shapes
  std::map<std::string, double> couplingTo;  ///< F per neighboring net
};

struct ExtractionResult {
  std::map<std::string, NetParasitics> nets;

  double groundCapOf(const std::string& net) const;
  double couplingBetween(const std::string& a, const std::string& b) const;
  /// Largest single coupling cap in the layout (crosstalk hot spot).
  double worstCoupling() const;
};

struct ExtractOptions {
  /// Same-layer shapes closer than this (quarter-lambda) couple.
  geom::Coord couplingDistance = 24;
};

ExtractionResult extractParasitics(const geom::Layout& layout,
                                   const circuit::Process& proc,
                                   const ExtractOptions& opts = {});

/// Add extracted ground and coupling capacitors to a copy of the netlist
/// (capacitors below `minCap` are dropped to keep the matrix small).  Wire
/// resistance is *not* inserted as series elements — it is reported for
/// constraint checking, as era extractors did for cell-level analog.
circuit::Netlist backAnnotate(const circuit::Netlist& net, const ExtractionResult& ext,
                              double minCap = 0.5e-15);

}  // namespace amsyn::extract
