#include "extract/extract.hpp"

#include <algorithm>
#include <cmath>

namespace amsyn::extract {

using geom::Coord;
using geom::Layer;
using geom::Rect;
using geom::Shape;

double ExtractionResult::groundCapOf(const std::string& net) const {
  auto it = nets.find(net);
  return it == nets.end() ? 0.0 : it->second.groundCap;
}

double ExtractionResult::couplingBetween(const std::string& a, const std::string& b) const {
  auto it = nets.find(a);
  if (it == nets.end()) return 0.0;
  auto jt = it->second.couplingTo.find(b);
  return jt == it->second.couplingTo.end() ? 0.0 : jt->second;
}

double ExtractionResult::worstCoupling() const {
  double worst = 0.0;
  for (const auto& [net, par] : nets) {
    (void)net;
    for (const auto& [other, c] : par.couplingTo) {
      (void)other;
      worst = std::max(worst, c);
    }
  }
  return worst;
}

namespace {

struct LayerElectricals {
  double ca = 0.0, cf = 0.0, rs = 0.0;
};

LayerElectricals electricalsOf(Layer l, const circuit::Process& proc) {
  switch (l) {
    case Layer::Poly: return {proc.caPoly, proc.cfPoly, proc.rsPoly};
    case Layer::Metal1: return {proc.caMetal1, proc.cfMetal1, proc.rsMetal1};
    case Layer::Metal2: return {proc.caMetal2, proc.cfMetal2, proc.rsMetal2};
    default: return {};
  }
}

/// Overlap of the projections of two rects along one axis.
Coord projectionOverlap(Coord a0, Coord a1, Coord b0, Coord b1) {
  return std::max<Coord>(0, std::min(a1, b1) - std::max(a0, b0));
}

}  // namespace

ExtractionResult extractParasitics(const geom::Layout& layout, const circuit::Process& proc,
                                   const ExtractOptions& opts) {
  ExtractionResult out;
  const double quarter = proc.lambda / 4.0;  // meters per grid unit

  // Collect all named routing shapes (wires plus in-device routing shapes).
  std::vector<Shape> shapes;
  for (const auto& w : layout.wires)
    if (!w.net.empty() && geom::isRoutingLayer(w.layer)) shapes.push_back(w);
  for (const auto& inst : layout.instances)
    for (const auto& s : inst.transformedShapes())
      if (!s.net.empty() && geom::isRoutingLayer(s.layer)) shapes.push_back(s);

  // Ground cap + resistance per net.
  for (const auto& s : shapes) {
    const auto el = electricalsOf(s.layer, proc);
    const double w = static_cast<double>(std::min(s.rect.width(), s.rect.height())) * quarter;
    const double len =
        static_cast<double>(std::max(s.rect.width(), s.rect.height())) * quarter;
    auto& par = out.nets[s.net];
    par.groundCap += len * w * el.ca + 2.0 * (len + w) * el.cf;
    if (w > 0.0) par.resistance += el.rs * len / w;
  }

  // Same-layer proximity coupling.
  for (std::size_t i = 0; i < shapes.size(); ++i) {
    for (std::size_t j = i + 1; j < shapes.size(); ++j) {
      const Shape& a = shapes[i];
      const Shape& b = shapes[j];
      if (a.layer != b.layer || a.net == b.net) continue;
      const Coord gap = a.rect.gapTo(b.rect);
      if (gap <= 0 || gap > opts.couplingDistance) continue;
      // Parallel-run length: the larger projection overlap.
      const Coord run = std::max(
          projectionOverlap(a.rect.x0, a.rect.x1, b.rect.x0, b.rect.x1),
          projectionOverlap(a.rect.y0, a.rect.y1, b.rect.y0, b.rect.y1));
      if (run <= 0) continue;
      // Coupling scales with run length and inversely with spacing relative
      // to the minimum design-rule spacing.
      const double minSpace = proc.ruleMinSpacing * 4.0;  // quarter-lambda
      const double c = proc.ccAdjacent * static_cast<double>(run) * quarter *
                       (minSpace / static_cast<double>(gap));
      out.nets[a.net].couplingTo[b.net] += c;
      out.nets[b.net].couplingTo[a.net] += c;
    }
  }
  return out;
}

circuit::Netlist backAnnotate(const circuit::Netlist& net, const ExtractionResult& ext,
                              double minCap) {
  circuit::Netlist out = net;  // copy: original stays pristine
  std::size_t idx = 0;
  for (const auto& [name, par] : ext.nets) {
    if (!out.findNode(name)) continue;  // layout net not in this netlist
    if (par.groundCap >= minCap && name != "0" && name != "gnd")
      out.addCapacitor("CPAR" + std::to_string(idx++), name, "0", par.groundCap);
    for (const auto& [other, c] : par.couplingTo) {
      if (c < minCap || other <= name) continue;  // emit each pair once
      if (!out.findNode(other)) continue;
      out.addCapacitor("CCPL" + std::to_string(idx++), name, other, c);
    }
  }
  return out;
}

}  // namespace amsyn::extract
