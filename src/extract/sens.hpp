// Layout-to-performance sensitivity analysis and constraint mapping — the
// "critical glue" of section 3.1 (Choudhury & Sangiovanni-Vincentelli [46]):
// quantify how each net's parasitic capacitance degrades circuit
// performance, then convert an allowed total degradation into per-net
// parasitic *bounds* that performance-driven layout tools (ROAD-mode
// routing, sensitivity-driven placement [42]) can obey.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "circuit/netlist.hpp"
#include "circuit/process.hpp"

namespace amsyn::extract {

/// A performance measure evaluated on a netlist (e.g. "AC gain at 1 kHz").
using MeasureFn = std::function<double(const circuit::Netlist&)>;

struct Sensitivity {
  std::map<std::string, double> dPerfDCap;  ///< per net, units: perf per farad
  double nominal = 0.0;                     ///< measure at zero added parasitics
};

/// Finite-difference sensitivity of `measure` with respect to ground
/// capacitance added on each listed net.
Sensitivity capacitanceSensitivity(const circuit::Netlist& net, const MeasureFn& measure,
                                   const std::vector<std::string>& netNames,
                                   double deltaCap = 50e-15);

/// Constraint mapping [46]: distribute an allowed performance degradation
/// `allowedDelta` (same units as the measure, positive magnitude) over the
/// nets, inversely weighted by |sensitivity| — insensitive nets get loose
/// bounds (routing freedom), critical nets get tight ones.  Returns per-net
/// capacitance bounds (F), each at least `floorCap`.
std::map<std::string, double> mapParasiticBounds(const Sensitivity& sens,
                                                 double allowedDelta,
                                                 double floorCap = 2e-15);

}  // namespace amsyn::extract
