// Integer-lambda geometry primitives.  All layout tools in amsyn operate on
// an integer grid in units of lambda/4 (quarter design-rule-lambda), which
// keeps arithmetic exact — a standard choice in era layout tools (Magic,
// KOAN) to avoid floating-point design-rule ambiguity.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace amsyn::geom {

using Coord = std::int64_t;

struct Point {
  Coord x = 0;
  Coord y = 0;

  friend bool operator==(const Point&, const Point&) = default;
  Point operator+(const Point& o) const { return {x + o.x, y + o.y}; }
  Point operator-(const Point& o) const { return {x - o.x, y - o.y}; }
};

/// Half-open axis-aligned rectangle [x0, x1) x [y0, y1).  A rect with
/// x0 >= x1 or y0 >= y1 is empty.
struct Rect {
  Coord x0 = 0, y0 = 0, x1 = 0, y1 = 0;

  friend bool operator==(const Rect&, const Rect&) = default;

  static Rect fromSize(Coord x, Coord y, Coord w, Coord h) { return {x, y, x + w, y + h}; }

  Coord width() const { return x1 - x0; }
  Coord height() const { return y1 - y0; }
  Coord area() const { return empty() ? 0 : width() * height(); }
  bool empty() const { return x0 >= x1 || y0 >= y1; }
  Point center() const { return {(x0 + x1) / 2, (y0 + y1) / 2}; }
  Coord halfPerimeter() const { return empty() ? 0 : width() + height(); }

  bool contains(Point p) const { return p.x >= x0 && p.x < x1 && p.y >= y0 && p.y < y1; }
  bool contains(const Rect& o) const {
    return o.x0 >= x0 && o.x1 <= x1 && o.y0 >= y0 && o.y1 <= y1;
  }
  bool overlaps(const Rect& o) const {
    return !empty() && !o.empty() && x0 < o.x1 && o.x0 < x1 && y0 < o.y1 && o.y0 < y1;
  }

  Rect intersect(const Rect& o) const {
    return {std::max(x0, o.x0), std::max(y0, o.y0), std::min(x1, o.x1), std::min(y1, o.y1)};
  }
  Rect unionWith(const Rect& o) const {
    if (empty()) return o;
    if (o.empty()) return *this;
    return {std::min(x0, o.x0), std::min(y0, o.y0), std::max(x1, o.x1), std::max(y1, o.y1)};
  }
  Rect translated(Coord dx, Coord dy) const { return {x0 + dx, y0 + dy, x1 + dx, y1 + dy}; }
  Rect inflated(Coord d) const { return {x0 - d, y0 - d, x1 + d, y1 + d}; }

  /// Minimum separation between two non-overlapping rects (Chebyshev-style:
  /// max of the per-axis gaps; 0 when touching or overlapping).
  Coord gapTo(const Rect& o) const {
    const Coord gx = std::max<Coord>({o.x0 - x1, x0 - o.x1, 0});
    const Coord gy = std::max<Coord>({o.y0 - y1, y0 - o.y1, 0});
    return std::max(gx, gy);
  }
};

/// Bounding box of a set of rects (empty rects ignored).
Rect boundingBox(const std::vector<Rect>& rects);

/// Manhattan distance between rect centers.
Coord centerDistance(const Rect& a, const Rect& b);

}  // namespace amsyn::geom
