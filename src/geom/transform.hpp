// Eight-way orientation group (rotations + mirrors) and placement transforms.
// Device placers (KOAN-style) explore orientations as annealing moves;
// symmetric analog pairs need exact mirror transforms.
#pragma once

#include <array>
#include <string>

#include "geom/rect.hpp"

namespace amsyn::geom {

/// The dihedral group D4: R0..R270 are counterclockwise rotations; M*
/// variants mirror about the Y axis first (i.e. flip X), then rotate.
enum class Orientation : std::uint8_t { R0, R90, R180, R270, MX, MX90, MY, MY90 };

constexpr std::array<Orientation, 8> kAllOrientations = {
    Orientation::R0, Orientation::R90, Orientation::R180, Orientation::R270,
    Orientation::MX, Orientation::MX90, Orientation::MY, Orientation::MY90};

std::string toString(Orientation o);

/// Does this orientation swap width and height?
constexpr bool swapsAxes(Orientation o) {
  return o == Orientation::R90 || o == Orientation::R270 || o == Orientation::MX90 ||
         o == Orientation::MY90;
}

/// Placement transform: orient about the local origin, then translate.
struct Transform {
  Orientation orient = Orientation::R0;
  Coord dx = 0;
  Coord dy = 0;

  Point apply(Point p) const;
  Rect apply(const Rect& r) const;

  /// Compose: result applies `inner` first, then *this.
  Transform compose(const Transform& inner) const;
};

/// Mirror-about-vertical-axis x = axisX, used for symmetric pair placement.
Rect mirrorX(const Rect& r, Coord axisX);
Point mirrorX(Point p, Coord axisX);

}  // namespace amsyn::geom
