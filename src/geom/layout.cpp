#include "geom/layout.hpp"

namespace amsyn::geom {

std::string toString(Layer layer) {
  switch (layer) {
    case Layer::NDiff: return "ndiff";
    case Layer::PDiff: return "pdiff";
    case Layer::Poly: return "poly";
    case Layer::Metal1: return "metal1";
    case Layer::Metal2: return "metal2";
    case Layer::Contact: return "contact";
    case Layer::Via: return "via";
    case Layer::NWell: return "nwell";
    case Layer::PWell: return "pwell";
    case Layer::Substrate: return "substrate";
  }
  return "?";
}

Rect CellMaster::boundingBox() const {
  Rect bb;
  for (const Shape& s : shapes) bb = bb.unionWith(s.rect);
  for (const Pin& p : pins) bb = bb.unionWith(p.rect);
  return bb;
}

std::vector<Pin> CellMaster::pinsOnNet(const std::string& net) const {
  std::vector<Pin> out;
  for (const Pin& p : pins)
    if (p.name == net) out.push_back(p);
  return out;
}

Rect CellInstance::boundingBox() const {
  return master ? placement.apply(master->boundingBox()) : Rect{};
}

std::vector<Shape> CellInstance::transformedShapes() const {
  std::vector<Shape> out;
  if (!master) return out;
  out.reserve(master->shapes.size());
  for (const Shape& s : master->shapes)
    out.push_back(Shape{s.layer, placement.apply(s.rect), s.net});
  return out;
}

std::vector<Pin> CellInstance::transformedPins() const {
  std::vector<Pin> out;
  if (!master) return out;
  out.reserve(master->pins.size());
  for (const Pin& p : master->pins)
    out.push_back(Pin{p.name, p.layer, placement.apply(p.rect)});
  return out;
}

Rect Layout::boundingBox() const {
  Rect bb;
  for (const CellInstance& inst : instances) bb = bb.unionWith(inst.boundingBox());
  for (const Shape& w : wires) bb = bb.unionWith(w.rect);
  return bb;
}

Coord Layout::totalWireLength() const {
  Coord len = 0;
  for (const Shape& w : wires)
    if (isRoutingLayer(w.layer)) len += std::max(w.rect.width(), w.rect.height());
  return len;
}

}  // namespace amsyn::geom
