// Mask-level layout representation shared by the module generators, the
// KOAN-style placer, the ANAGRAM-style router and the parasitic extractor.
// A CellMaster is a bag of layer rectangles plus named pins; instances place
// masters under a Transform.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "geom/rect.hpp"
#include "geom/transform.hpp"

namespace amsyn::geom {

/// Mask layers of the synthetic 2-metal CMOS process used throughout amsyn.
enum class Layer : std::uint8_t {
  NDiff,     ///< n+ diffusion
  PDiff,     ///< p+ diffusion
  Poly,      ///< polysilicon (gates + short wires)
  Metal1,
  Metal2,
  Contact,   ///< diff/poly to metal1
  Via,       ///< metal1 to metal2
  NWell,
  PWell,
  Substrate  ///< marker layer for substrate-contact/guard-ring shapes
};

std::string toString(Layer layer);

/// Is this a layer wires may be routed on?
constexpr bool isRoutingLayer(Layer l) {
  return l == Layer::Poly || l == Layer::Metal1 || l == Layer::Metal2;
}

/// One rectangle of mask geometry, tagged with the electrical net it
/// implements (empty for wells / dummies).
struct Shape {
  Layer layer = Layer::Metal1;
  Rect rect;
  std::string net;
};

/// A named connection point of a cell: a rect on a routing layer.
struct Pin {
  std::string name;  ///< net/terminal name
  Layer layer = Layer::Metal1;
  Rect rect;
};

/// A reusable piece of layout (a generated device, a stack, or a block).
struct CellMaster {
  std::string name;
  std::vector<Shape> shapes;
  std::vector<Pin> pins;

  Rect boundingBox() const;

  /// Pins with the given net name (a master may expose a net at several
  /// physically equivalent points).
  std::vector<Pin> pinsOnNet(const std::string& net) const;
};

/// A placed instance of a master.
struct CellInstance {
  std::string name;
  const CellMaster* master = nullptr;
  Transform placement;

  Rect boundingBox() const;
  std::vector<Shape> transformedShapes() const;
  std::vector<Pin> transformedPins() const;
};

/// A flat assembled layout: instances plus routing shapes.
struct Layout {
  std::vector<CellInstance> instances;
  std::vector<Shape> wires;  ///< router-generated geometry

  Rect boundingBox() const;
  Coord totalWireLength() const;  ///< sum of max(w,h) over wire shapes
};

}  // namespace amsyn::geom
