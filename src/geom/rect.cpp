#include "geom/rect.hpp"

#include <cstdlib>

namespace amsyn::geom {

Rect boundingBox(const std::vector<Rect>& rects) {
  Rect bb;  // empty
  for (const Rect& r : rects) bb = bb.unionWith(r);
  return bb;
}

Coord centerDistance(const Rect& a, const Rect& b) {
  const Point ca = a.center(), cb = b.center();
  return std::llabs(ca.x - cb.x) + std::llabs(ca.y - cb.y);
}

}  // namespace amsyn::geom
