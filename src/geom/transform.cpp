#include "geom/transform.hpp"

#include <stdexcept>

namespace amsyn::geom {

std::string toString(Orientation o) {
  switch (o) {
    case Orientation::R0: return "R0";
    case Orientation::R90: return "R90";
    case Orientation::R180: return "R180";
    case Orientation::R270: return "R270";
    case Orientation::MX: return "MX";
    case Orientation::MX90: return "MX90";
    case Orientation::MY: return "MY";
    case Orientation::MY90: return "MY90";
  }
  return "?";
}

namespace {
Point orientPoint(Point p, Orientation o) {
  // Mirror variants flip X first.
  Coord x = p.x, y = p.y;
  switch (o) {
    case Orientation::MX: case Orientation::MX90: x = -x; break;
    case Orientation::MY: case Orientation::MY90: y = -y; break;
    default: break;
  }
  switch (o) {
    case Orientation::R0: case Orientation::MX: case Orientation::MY:
      return {x, y};
    case Orientation::R90: case Orientation::MX90: case Orientation::MY90:
      return {-y, x};
    case Orientation::R180:
      return {-x, -y};
    case Orientation::R270:
      return {y, -x};
  }
  throw std::logic_error("orientPoint: bad orientation");
}
}  // namespace

Point Transform::apply(Point p) const {
  const Point q = orientPoint(p, orient);
  return {q.x + dx, q.y + dy};
}

Rect Transform::apply(const Rect& r) const {
  const Point a = apply(Point{r.x0, r.y0});
  const Point b = apply(Point{r.x1, r.y1});
  return {std::min(a.x, b.x), std::min(a.y, b.y), std::max(a.x, b.x), std::max(a.y, b.y)};
}

Transform Transform::compose(const Transform& inner) const {
  // Determine composed orientation by probing basis points; the dihedral
  // group is tiny so probing is simpler than a composition table.
  const Point e1 = apply(orientPoint({1, 0}, inner.orient));
  const Point e2 = apply(orientPoint({0, 1}, inner.orient));
  const Point o = apply(Point{inner.dx, inner.dy});
  const Point b1 = {e1.x - apply(orientPoint({0, 0}, inner.orient)).x,
                    e1.y - apply(orientPoint({0, 0}, inner.orient)).y};
  const Point b2 = {e2.x - apply(orientPoint({0, 0}, inner.orient)).x,
                    e2.y - apply(orientPoint({0, 0}, inner.orient)).y};
  for (Orientation cand : kAllOrientations) {
    if (orientPoint({1, 0}, cand) == b1 && orientPoint({0, 1}, cand) == b2)
      return Transform{cand, o.x, o.y};
  }
  throw std::logic_error("Transform::compose: no matching orientation");
}

Rect mirrorX(const Rect& r, Coord axisX) {
  return {2 * axisX - r.x1, r.y0, 2 * axisX - r.x0, r.y1};
}

Point mirrorX(Point p, Coord axisX) { return {2 * axisX - p.x, p.y}; }

}  // namespace amsyn::geom
