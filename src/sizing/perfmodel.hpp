// The evaluator abstraction behind Fig. 1b of the paper: every optimization-
// based synthesis engine iterates "evaluate performance -> adjust sizes".
// What varies between the surveyed systems is only the evaluator:
//   * equation-based (OPASYN [8], OPTIMAN [10]) -> EquationModel subclasses
//   * simulation-based (FRIDGE [22])            -> SimulationModel
//   * mixed AWE/equations (ASTRX/OBLX [23])     -> RelaxedDcModel
// All plug into the same CostFunction + annealer.
#pragma once

#include <cmath>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/context.hpp"
#include "core/evalcache.hpp"
#include "core/evalstatus.hpp"
#include "core/surrogate.hpp"

namespace amsyn::circuit {
struct Process;
}

namespace amsyn::sizing {

/// One independent design variable with box bounds.  Log-scaled variables
/// move multiplicatively during optimization (right for currents and device
/// sizes that span decades).
struct DesignVariable {
  std::string name;
  double lo = 0.0;
  double hi = 1.0;
  bool logScale = true;
  /// Relative proposal step for annealing moves (1.0 = default spread).
  /// Bias-voltage unknowns in the relaxed-dc formulation use small values:
  /// a valid operating point survives millivolt nudges, not volt jumps.
  double moveScale = 1.0;
};

using Performance = std::map<std::string, double>;

/// Performance key carrying the structured failure reason: the value is the
/// numeric core::EvalStatus code.  Present only on maps tagged by
/// markInfeasible (spec-level infeasibility — a circuit that evaluated fine
/// but is simply bad — stays untagged).
inline constexpr const char* kEvalStatusKey = "_status";

/// Mark a performance map infeasible with a structured reason.  The first
/// reason sticks: later, more generic failures of the same evaluation do
/// not overwrite the root cause.
inline void markInfeasible(Performance& perf, core::EvalStatus reason) {
  perf["_infeasible"] = 1.0;
  perf.emplace(kEvalStatusKey, static_cast<double>(static_cast<int>(reason)));
}

/// Structured reason of a performance map; Ok when untagged (feasible, or
/// infeasible for spec-level reasons rather than an evaluation failure).
inline core::EvalStatus performanceStatus(const Performance& perf) {
  const auto it = perf.find(kEvalStatusKey);
  if (it == perf.end()) return core::EvalStatus::Ok;
  const int code = static_cast<int>(it->second);
  if (code < 0 || code >= static_cast<int>(core::kEvalStatusCount))
    return core::EvalStatus::InternalError;
  return static_cast<core::EvalStatus>(code);
}

/// How an evaluation's cost compares to a cache transaction.  The memoized
/// evaluation cache pays a canonical digest plus a sharded-map lookup per
/// call (~1 us); a simulator evaluation costs hundreds of microseconds, but
/// a closed-form equation model costs about one — caching the latter is all
/// overhead and no win (BENCH_cache.json measures this floor directly).
/// Models self-attest their tier so safeEvaluate can skip the cache for
/// evaluations cheaper than their own key.
enum class EvalCost : std::uint8_t {
  Heavy,  ///< evaluation dominates a cache transaction: cache it (default)
  Cheap,  ///< evaluation ~ lookup cost: bypass the cache entirely
};

/// Interface: map a design-variable vector to named performance numbers.
class PerformanceModel {
 public:
  virtual ~PerformanceModel() = default;

  virtual const std::vector<DesignVariable>& variables() const = 0;

  /// Evaluate all performances at design point x (same order/size as
  /// variables()).  Implementations must be deterministic.  A design point
  /// that fails to evaluate (e.g. no DC convergence) reports the special
  /// performance {"_infeasible": 1.0} plus whatever it could compute.
  virtual Performance evaluate(const std::vector<double>& x) const = 0;

  /// A reasonable starting point (defaults to the geometric middle).
  virtual std::vector<double> initialPoint() const;

  /// Canonical candidate key for the memoized evaluation cache
  /// (core/evalcache.hpp): a digest of everything evaluate(x) depends on —
  /// model identity tag, canonicalized netlist, process parameters,
  /// evaluator options, and the (quantized) design vector.  Models return
  /// nullopt (the default) when they cannot attest a deterministic,
  /// self-contained identity — e.g. custom models, or evaluations wired to
  /// a wall-clock-dependent cancel flag — and such evaluations are never
  /// cached.  Two models with equal keys MUST produce bit-identical
  /// evaluate(x); safeEvaluate relies on this for the cache-on/off
  /// differential guarantee (tests/evalcache_test.cpp).
  virtual std::optional<core::cache::Digest128> cacheKey(
      const std::vector<double>& x) const {
    (void)x;
    return std::nullopt;
  }

  /// Cost tier driving safeEvaluate's cache policy (see EvalCost).  Heavy
  /// by default; models whose evaluate(x) costs about as much as a cache
  /// transaction override to Cheap and are never cached.  The tier only
  /// changes speed: a bypassed evaluation runs the same deterministic
  /// evaluate(x) a miss would.
  virtual EvalCost evalCost() const { return EvalCost::Heavy; }

  /// Learnable-family attestation for the surrogate store (core/surrogate).
  /// `classKey` identifies everything evaluate(x) depends on EXCEPT what the
  /// feature vector encodes; `context` carries the remainder as normalized
  /// features.  Corner-evaluating models deliberately exclude the corner
  /// process from the class key and encode it in the context instead, so
  /// all vertices of one corner hunt train a single model — per-corner
  /// classes would see one observation each and never calibrate.  nullopt
  /// (the default) opts the model out of surrogate training/screening.
  struct SurrogateSignature {
    core::cache::Digest128 classKey;
    std::vector<double> context;
  };
  virtual std::optional<SurrogateSignature> surrogateSignature() const {
    return std::nullopt;
  }

  std::size_t dimension() const { return variables().size(); }
};

/// Total evaluation: never throws, never returns NaN scores.  An evaluator
/// exception becomes {"_infeasible": 1, "_status": internal_error}; a NaN in
/// any performance value marks the map infeasible with nan_detected (a NaN
/// is a failed measurement, not a neutral score).  Both are tallied in the
/// sim.fail.* registry counters (sim::recordEvalFailure).  This is the
/// containment boundary the corner search
/// and any direct model consumer should call instead of evaluate().
///
/// Memoization: when the process-wide evaluation cache is enabled and the
/// model attests a canonical key (PerformanceModel::cacheKey), repeated
/// evaluations of the same candidate — annealing revisits, duplicate
/// genetic genomes, corner-vertex re-visits — return the cached Performance
/// map, failure taxonomy included, without re-running the evaluator.
/// Failure tallies (sim::recordEvalFailure) are recorded once per distinct
/// candidate, on the miss; observability counters are the only thing the
/// cache changes — results are bit-identical with the cache on or off.
Performance safeEvaluate(const PerformanceModel& model, const std::vector<double>& x);

/// Context-explicit overload: resolves the eval cache and surrogate store
/// through `ctx` instead of the calling thread's current context.  The
/// two-argument form above is exactly this with
/// core::ExecutionContext::current().
Performance safeEvaluate(const PerformanceModel& model, const std::vector<double>& x,
                         core::ExecutionContext& ctx);

/// Featurize one (model, x) pair for the surrogate store: nullopt when the
/// model attests no signature; otherwise features =
/// [1 (bias)] ++ unit-cube design coordinates (log-aware per DesignVariable)
/// ++ the signature's context, and a class key derived from the signature's
/// with the feature dimension mixed in (layout drift can never alias an old
/// class).
std::optional<core::surrogate::Candidate> surrogateCandidate(
    const PerformanceModel& model, const std::vector<double>& x);

/// Normalized feature encoding of the process parameters a corner hunt
/// varies (manufacture::VariationSpace::apply): vdd, temperature, kp, vt0.
/// Shared by every corner-evaluating model's signature context so one
/// surrogate class spans all vertices of a hunt.
std::vector<double> processSurrogateContext(const circuit::Process& proc);

inline std::vector<double> PerformanceModel::initialPoint() const {
  std::vector<double> x;
  for (const DesignVariable& v : variables()) {
    if (v.logScale && v.lo > 0.0)
      x.push_back(std::sqrt(v.lo * v.hi));  // geometric middle
    else
      x.push_back(0.5 * (v.lo + v.hi));
  }
  return x;
}

}  // namespace amsyn::sizing
