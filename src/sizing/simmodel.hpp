// Simulation-based performance evaluation (FRIDGE [22] style): every
// optimizer iteration builds the netlist from the design vector and runs the
// full simulator — DC operating point, AC sweep, noise, and (optionally)
// large-signal transient for slew.  Orders of magnitude slower per iteration
// than the equation models (bench/bench_claim_eval_speed quantifies this),
// but introduces no modeling error and makes new circuit schematics cheap to
// bring up: exactly the trade the paper describes in section 2.2.
#pragma once

#include <atomic>
#include <functional>
#include <mutex>

#include "circuit/netlist.hpp"
#include "circuit/process.hpp"
#include "sizing/opamp.hpp"
#include "sizing/perfmodel.hpp"

namespace amsyn::sizing {

struct SimModelOptions {
  double fStart = 1.0;
  double fStop = 1e9;
  std::size_t pointsPerDecade = 6;
  bool measureNoise = true;
  double noiseSpotFrequency = 1e4;  ///< Hz for the "noise_nv" spot value
  bool measureSlewTransient = false;  ///< run a step-response transient (slow)
  /// Declare the design infeasible when the DC output sits at a supply rail
  /// (the latched solution of a feedback-biased open-loop bench).
  bool outputMustBeInterior = true;
  double interiorMargin = 0.15;  ///< volts from either rail
  /// Per-evaluation work budget in Newton-iteration units (0 = unlimited).
  /// An evaluation that exhausts it returns whatever it measured so far,
  /// marked infeasible with budget_exhausted — deterministically, because
  /// work units are counted, not wall clock.
  std::uint64_t workBudget = 0;
  /// Optional cooperative cancel flag shared by every evaluation (e.g. a
  /// whole-run abort).  Checked at the same points as the budget.
  const std::atomic<bool>* cancel = nullptr;
  /// Optional absolute wall-clock deadline (monotonic ns per
  /// core::EvalBudget::nowNs(); 0 = none) armed on every evaluation's
  /// budget.  An evaluation past the deadline stops at the next strided
  /// cancel point and reports deadline_expired.  Wall-clock truncation is
  /// not reproducible, so a deadline — like `cancel` — makes evaluations
  /// uncacheable (cacheKey returns nullopt).
  std::int64_t deadlineNs = 0;
};

/// Generic netlist-producing template: design vector -> testbench netlist.
/// The output node is where gain/noise are measured; the input source must
/// carry the AC stimulus.
struct CircuitTemplate {
  std::vector<DesignVariable> variables;
  std::function<circuit::Netlist(const std::vector<double>&)> build;
  std::string outputNode = "out";
};

class SimulationModel : public PerformanceModel {
 public:
  SimulationModel(CircuitTemplate tmpl, const circuit::Process& proc,
                  SimModelOptions opts = {});

  const std::vector<DesignVariable>& variables() const override {
    return tmpl_.variables;
  }

  /// Performances: gain_db, ugf, pm, power, noise_nv (when enabled), swing,
  /// area (gate area), slew (when transient enabled).  Total: a failed
  /// analysis reports {"_infeasible": 1, "_status": <reason>} (see
  /// kEvalStatusKey) with whatever it could compute, and an exception
  /// anywhere inside becomes bad_topology (netlist construction) or
  /// internal_error instead of escaping into the optimizer.
  Performance evaluate(const std::vector<double>& x) const override;

  /// Canonical candidate key (core/evalcache.hpp): digest of the
  /// *canonicalized* testbench netlist built at x (so template device/node
  /// declaration order is irrelevant), the process, every evaluator option,
  /// and the quantized design vector.  Evaluations wired to an external
  /// cancel flag are wall-clock-dependent and return nullopt (never
  /// cached); a deterministic work budget is part of the key instead.
  std::optional<core::cache::Digest128> cacheKey(
      const std::vector<double>& x) const override;

  /// Surrogate class (core/surrogate): the canonicalized template netlist
  /// at the initial point — a stable identity for the template+bench that
  /// is independent of the query x — plus the output node and every
  /// evaluator option; the process rides along as context features so
  /// instances at perturbed processes can pool observations when their
  /// templates build identical netlists.  nullopt when the template cannot
  /// build the initial point or when evaluations are wall-clock dependent
  /// (cancel flag / deadline), mirroring cacheKey's attestation rules.
  std::optional<SurrogateSignature> surrogateSignature() const override;

  /// Number of full simulator invocations so far (for the Fig. 1 runtime
  /// comparison).  Cache hits do not reach evaluate(), so with the
  /// evaluation cache enabled this counts *misses* (real simulator work).
  std::size_t evaluations() const { return evals_.load(std::memory_order_relaxed); }

 private:
  CircuitTemplate tmpl_;
  const circuit::Process& proc_;
  SimModelOptions opts_;
  /// Atomic: evaluate() runs concurrently under core/parallel.hpp loops.
  mutable std::atomic<std::size_t> evals_{0};
  /// Lazily memoized surrogate signature (building the initial-point
  /// netlist once is enough; the template is fixed per instance).
  mutable std::once_flag surrogateSigOnce_;
  mutable std::optional<SurrogateSignature> surrogateSig_;
};

/// Ready-made template: two-stage opamp with widths/cc/ibias as variables.
/// Variables: w1, w3, w5, w6, w7, cc, ibias (w8 tracks w5 at the reference
/// current ratio; lengths fixed at 2 um).
CircuitTemplate twoStageTemplate(const circuit::Process& proc, const OpampTestbench& tb);

}  // namespace amsyn::sizing
