// The optimization-based synthesis driver of Fig. 1b: global simulated
// annealing over the (log-scaled) design space followed by Nelder-Mead
// refinement — the OPTIMAN / FRIDGE / OBLX recipe.
#pragma once

#include <chrono>

#include "numeric/anneal.hpp"
#include "sizing/cost.hpp"

namespace amsyn::sizing {

struct SynthesisOptions {
  num::AnnealOptions anneal;
  std::size_t refineEvaluations = 400;  ///< Nelder-Mead budget after annealing
  std::uint64_t seed = 1;
  /// Warm start (design-space coordinates); empty = model's initial point.
  std::vector<double> startPoint;
  /// When the annealed result sits just outside a constraint (the classic
  /// penalty-method gap), run a second, objective-free pass that drives the
  /// violations to zero from the best point found.
  bool feasibilityPush = true;
  /// Independent annealing starts.  With 1 (the default) the annealer runs
  /// exactly as it always has, seeded with `seed`.  With k > 1, start i
  /// anneals on RNG stream num::Rng::streamSeed(seed, i); starts execute
  /// concurrently on the shared pool and the winner is chosen by
  /// (feasible, cost, start index), so the result is bit-identical at any
  /// thread count.
  std::size_t multistarts = 1;
};

struct SynthesisResult {
  std::vector<double> x;           ///< best design point found
  Performance performance;         ///< performances at x
  double cost = 0.0;
  bool feasible = false;           ///< all constraint specs met
  std::size_t evaluations = 0;     ///< total model evaluations
  double seconds = 0.0;            ///< wall-clock synthesis time
};

/// Run annealing + refinement on a compiled cost function.
SynthesisResult synthesize(const CostFunction& cost, const SynthesisOptions& opts = {});

/// Convenience: compile and run in one call.
SynthesisResult synthesize(const PerformanceModel& model, const SpecSet& specs,
                           const SynthesisOptions& opts = {},
                           const CostOptions& costOpts = {});

}  // namespace amsyn::sizing
