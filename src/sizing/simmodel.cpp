#include "sizing/simmodel.hpp"

#include <cmath>

#include "circuit/canonical.hpp"

#include "core/context.hpp"
#include "sim/ac.hpp"
#include "sim/dc.hpp"
#include "sim/measure.hpp"
#include "sim/noise.hpp"
#include "sim/stats.hpp"
#include "sim/transient.hpp"

namespace amsyn::sizing {

using core::EvalStatus;

SimulationModel::SimulationModel(CircuitTemplate tmpl, const circuit::Process& proc,
                                 SimModelOptions opts)
    : tmpl_(std::move(tmpl)), proc_(proc), opts_(opts) {}

std::optional<core::cache::Digest128> SimulationModel::cacheKey(
    const std::vector<double>& x) const {
  // An external cancel flag or wall-clock deadline can truncate an
  // evaluation at a wall-clock-dependent point; such payloads are not
  // reproducible, so never cached.
  if (opts_.cancel || opts_.deadlineNs != 0) return std::nullopt;
  circuit::Netlist net;
  try {
    net = tmpl_.build(x);
  } catch (...) {
    // Let evaluate() run and classify the bad-topology failure itself; an
    // unbuildable candidate is not worth a cache entry.
    return std::nullopt;
  }
  core::cache::Hasher128 h;
  h.mixString("sim-model");
  h.mixDigest(circuit::canonicalNetlistDigest(net));
  circuit::hashProcess(h, proc_);
  h.mixString(tmpl_.outputNode);
  h.mixDouble(opts_.fStart).mixDouble(opts_.fStop);
  h.mix(opts_.pointsPerDecade);
  h.mix(opts_.measureNoise ? 1u : 0u);
  h.mixDouble(opts_.noiseSpotFrequency);
  h.mix(opts_.measureSlewTransient ? 1u : 0u);
  h.mix(opts_.outputMustBeInterior ? 1u : 0u);
  h.mixDouble(opts_.interiorMargin);
  h.mix(opts_.workBudget);
  h.mixQuantizedDoubles(x, core::currentEvalCache().quantum());
  return h.digest();
}

std::optional<PerformanceModel::SurrogateSignature>
SimulationModel::surrogateSignature() const {
  // Same attestation rules as cacheKey: wall-clock-truncatable evaluations
  // produce nondeterministic payloads, which would poison the training set.
  if (opts_.cancel || opts_.deadlineNs != 0) return std::nullopt;
  std::call_once(surrogateSigOnce_, [&] {
    circuit::Netlist net;
    try {
      net = tmpl_.build(initialPoint());
    } catch (...) {
      return;  // unbuildable template: surrogateSig_ stays nullopt
    }
    core::cache::Hasher128 h;
    h.mixString("surr-sim-model");
    h.mixDigest(circuit::canonicalNetlistDigest(net));
    h.mixString(tmpl_.outputNode);
    h.mixDouble(opts_.fStart).mixDouble(opts_.fStop);
    h.mix(opts_.pointsPerDecade);
    h.mix(opts_.measureNoise ? 1u : 0u);
    h.mixDouble(opts_.noiseSpotFrequency);
    h.mix(opts_.measureSlewTransient ? 1u : 0u);
    h.mix(opts_.outputMustBeInterior ? 1u : 0u);
    h.mixDouble(opts_.interiorMargin);
    h.mix(opts_.workBudget);
    surrogateSig_ = SurrogateSignature{h.digest(), processSurrogateContext(proc_)};
  });
  return surrogateSig_;
}

Performance SimulationModel::evaluate(const std::vector<double>& x) const {
  ++evals_;
  Performance perf;

  // A candidate that cannot even be built into a netlist is bad topology,
  // distinct from a numerical failure downstream.
  circuit::Netlist net;
  try {
    net = tmpl_.build(x);
  } catch (...) {
    markInfeasible(perf, EvalStatus::BadTopology);
    sim::recordEvalFailure(EvalStatus::BadTopology);
    return perf;
  }

  // One deterministic work budget funds every analysis of this evaluation
  // (Newton iterations in DC/transient, solves per AC/noise frequency);
  // the job deadline, when armed, rides on the same budget.
  core::EvalBudget budget(opts_.workBudget, opts_.cancel);
  if (opts_.deadlineNs != 0) budget.setDeadlineNs(opts_.deadlineNs);

  try {
    sim::Mna mna(net, proc_);
    sim::DcOptions dopts;
    dopts.budget = &budget;

    // Mid-rail start: feedback-biased benches latch when started from zero.
    const auto op = sim::dcOperatingPoint(mna, sim::flatStart(mna, proc_.vdd / 2), dopts);
    if (!op.converged) {
      markInfeasible(perf, op.status);  // dc already tallied the failure
      return perf;
    }
    if (opts_.outputMustBeInterior) {
      const double vout = mna.nodeVoltage(op.x, *net.findNode(tmpl_.outputNode));
      if (vout < opts_.interiorMargin || vout > proc_.vdd - opts_.interiorMargin) {
        perf["_infeasible"] = 1.0;  // output stuck at a rail (latched bias):
        return perf;                // a bad circuit, not an eval failure
      }
    }

    perf["power"] = sim::staticPower(mna, op);
    perf["area"] = net.totalGateArea();

    const auto freqs = sim::logspace(opts_.fStart, opts_.fStop, opts_.pointsPerDecade);
    const auto sweep = sim::acAnalysis(mna, op, tmpl_.outputNode, freqs, &budget);
    if (sweep.status != EvalStatus::Ok) {
      markInfeasible(perf, sweep.status);
      return perf;
    }
    perf["gain_db"] = sim::dcGainDb(sweep);
    const auto ugf = sim::unityGainFrequency(sweep);
    const auto pm = sim::phaseMarginDeg(sweep);
    if (!ugf || !pm) {
      markInfeasible(perf, EvalStatus::NoAcCrossing);
      sim::recordEvalFailure(EvalStatus::NoAcCrossing);
      return perf;
    }
    perf["ugf"] = *ugf;
    perf["pm"] = *pm;

    // Output swing estimated from the output-stage overdrives: the stage is
    // linear while its devices remain saturated.
    double swingLo = 0.0, swingHi = proc_.vdd;
    const auto ops = mna.mosOperatingPoints(op.x);
    for (const auto& [name, mop] : ops) {
      if (name == "M6") swingHi = proc_.vdd - std::max(0.0, mop.vov);
      if (name == "M7") swingLo = std::max(0.0, mop.vov);
      if (name == "M4") swingHi = std::min(swingHi, proc_.vdd - std::max(0.0, mop.vov));
    }
    perf["swing"] = std::max(0.0, swingHi - swingLo);

    if (opts_.measureNoise) {
      const auto nz = sim::noiseAnalysis(mna, op, tmpl_.outputNode,
                                         {opts_.noiseSpotFrequency}, &budget);
      if (nz.status != EvalStatus::Ok) {
        markInfeasible(perf, nz.status);
        return perf;
      }
      perf["noise_nv"] = std::sqrt(nz.points.at(0).inputReferredPsd) * 1e9;
    }

    // Slew rate: either a (slow) transient measurement or the classic
    // tail-current estimate from the operating point.
    if (opts_.measureSlewTransient) {
      circuit::Netlist tnet = tmpl_.build(x);
      if (auto* vin = tnet.findDevice("VINP")) {
        vin->waveform.kind = circuit::Waveform::Kind::Pulse;
        vin->waveform.v1 = vin->value - 0.5;
        vin->waveform.v2 = vin->value + 0.5;
        vin->waveform.delay = 1e-7;
        vin->waveform.rise = 1e-9;
        vin->waveform.width = 1.0;
        vin->waveform.period = 2.0;
        sim::Mna tmna(tnet, proc_);
        const auto top = sim::dcOperatingPoint(tmna, dopts);
        if (core::isWorkExhaustion(top.status)) {
          markInfeasible(perf, top.status);
          return perf;
        }
        if (top.converged) {
          sim::TransientOptions topts;
          topts.tStop = 2e-6;
          topts.tStep = 2e-9;
          topts.budget = &budget;
          const auto tr = sim::transientAnalysis(tmna, top, topts);
          if (core::isWorkExhaustion(tr.status)) {
            // A runaway transient degrades to budget_exhausted, keeping the
            // DC/AC measurements already made as partial results.
            markInfeasible(perf, tr.status);
            return perf;
          }
          if (tr.completed)
            perf["slew"] =
                sim::maxSlewRate(tr.time, tr.nodeWaveform(tmna, tmpl_.outputNode));
        }
      }
    } else {
      // I(tail) / Cc estimate when the template exposes them.
      double itail = 0.0, cc = 0.0;
      for (const auto& [name, mop] : ops)
        if (name == "M5") itail = std::abs(mop.ids);
      for (const auto& d : net.devices())
        if (d.name == "CC") cc = d.value;
      if (itail > 0 && cc > 0) perf["slew"] = itail / cc;
    }
  } catch (...) {
    // Anything the analyses threw (bad node names from a malformed template,
    // allocation failure, ...) is contained at this boundary; bad_alloc is
    // classified apart so OOM is never misfiled as retryable.
    const EvalStatus st = core::classifyCurrentException();
    markInfeasible(perf, st);
    sim::recordEvalFailure(st);
  }

  return perf;
}

CircuitTemplate twoStageTemplate(const circuit::Process& proc, const OpampTestbench& tb) {
  CircuitTemplate t;
  t.variables = {
      {"w1", proc.minW, 800e-6, true},
      {"w3", proc.minW, 400e-6, true},
      {"w5", proc.minW, 400e-6, true},
      {"w6", proc.minW, 1600e-6, true},
      {"w7", proc.minW, 800e-6, true},
      {"cc", 0.2e-12, 2e-11, true},
      {"ibias", 2e-6, 200e-6, true},
  };
  t.outputNode = "out";
  t.build = [&proc, tb](const std::vector<double>& x) {
    TwoStageParams p;
    p.w1 = x[0];
    p.w3 = x[1];
    p.w5 = x[2];
    p.w6 = x[3];
    p.w7 = x[4];
    p.cc = x[5];
    p.ibias = x[6];
    p.w8 = p.w5 / 4.0;  // mirror ratio 4: tail carries 4x the reference
    p.l = 2e-6;
    return buildTwoStageOpamp(p, proc, tb);
  };
  return t;
}

}  // namespace amsyn::sizing
