// Circuit templates for the classic CMOS amplifiers every surveyed synthesis
// system cut its teeth on: the two-stage Miller-compensated opamp and the
// five-transistor OTA.  One parameter block serves the equation-based
// evaluator, the simulation-based evaluator, and the layout generators, so a
// sizing produced by any engine can be verified and laid out by the others.
#pragma once

#include <string>

#include "circuit/netlist.hpp"
#include "circuit/process.hpp"

namespace amsyn::sizing {

/// Device sizes for the two-stage opamp (M2 = M1, M4 = M3 by symmetry):
///   M1/M2  NMOS input pair          M3/M4  PMOS mirror load
///   M5     NMOS tail source         M8     NMOS bias diode
///   M6     PMOS output driver       M7     NMOS output sink
///   Cc     Miller capacitor (farads)
struct TwoStageParams {
  double w1 = 50e-6;
  double w3 = 20e-6;
  double w5 = 20e-6;
  double w6 = 100e-6;
  double w7 = 40e-6;
  double w8 = 10e-6;
  double l = 2e-6;       ///< channel length, all devices
  double cc = 3e-12;
  double ibias = 20e-6;  ///< reference current into the bias diode

  /// Total active gate area plus an estimate for Cc (m^2).
  double activeArea(const circuit::Process& proc) const;
};

struct OpampTestbench {
  double loadCap = 5e-12;
  double vicm = 2.2;      ///< input common-mode voltage
  bool dcFeedback = true; ///< huge-RC feedback to pin the DC operating point
};

/// Build the open-loop AC test bench netlist around a two-stage opamp:
/// supplies, bias source, load, and (optionally) the R-C feedback trick that
/// fixes the DC operating point while leaving AC >= 1 Hz open loop.
/// Node names: "inp" (AC input), "inn", "out", "no1" (stage-1 output).
circuit::Netlist buildTwoStageOpamp(const TwoStageParams& p, const circuit::Process& proc,
                                    const OpampTestbench& tb = {});

/// Five-transistor OTA (single-stage): NMOS pair M1/M2, PMOS mirror M3/M4,
/// NMOS tail M5, bias diode M8.
struct OtaParams {
  double w1 = 40e-6;
  double w3 = 20e-6;
  double w5 = 20e-6;
  double w8 = 10e-6;
  double l = 2e-6;
  double ibias = 20e-6;

  double activeArea(const circuit::Process& proc) const;
};

circuit::Netlist buildOta(const OtaParams& p, const circuit::Process& proc,
                          const OpampTestbench& tb = {});

// --- shared sub-netlists ---------------------------------------------------
// The composed-topology builders (topology/compose.hpp) stitch the same
// supply, bias and testbench fixtures around generated cores; sharing the
// device sequences keeps a composed legacy cell byte-identical to the
// hand-written builders above.

/// VDD supply plus the bias reference pushing `ibias` into "nbias" (the
/// NMOS bias-diode rail).  `pmosDiode` flips the reference for a PMOS bias
/// diode hanging from vdd: the source then pulls `ibias` out of "nbias".
void addOpampSupplies(circuit::Netlist& net, const circuit::Process& proc, double ibias,
                      bool pmosDiode = false);

/// The open-loop AC bench: AC stimulus on "inp", DC feedback (or a fixed
/// "inn" drive), and the load capacitor on "out".
void addOpampTestbench(circuit::Netlist& net, const OpampTestbench& tb);

/// Capacitor area estimate at ~1 fF/um^2 (m^2 per farad) — the same figure
/// TwoStageParams::activeArea folds in for Cc.
double opampCapArea(double farads);

}  // namespace amsyn::sizing
