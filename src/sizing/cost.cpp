#include "sizing/cost.hpp"

#include <cmath>

#include "core/metrics.hpp"
#include "sim/stats.hpp"

namespace amsyn::sizing {

CostFunction::CostFunction(const PerformanceModel& model, SpecSet specs, CostOptions opts)
    : model_(model), specs_(std::move(specs)), opts_(opts) {}

double CostFunction::operator()(const std::vector<double>& x) const {
  return detailed(x).cost;
}

CostFunction::Detail CostFunction::detailed(const std::vector<double>& x) const {
  evals_.fetch_add(1, std::memory_order_relaxed);
  static const auto cEvals =
      core::metrics::Registry::instance().counter("sizing.cost_evals");
  core::metrics::add(cEvals);
  Detail d;
  // Containment boundary: exceptions and NaN scores become infeasible data.
  d.performance = safeEvaluate(model_, x);
  d.status = performanceStatus(d.performance);

  if (auto it = d.performance.find("_infeasible"); it != d.performance.end()) {
    d.penalty += opts_.infeasibleCost * it->second;
  }
  // The relaxed-dc residual, when present, acts as an extra penalty even if
  // the caller forgot to spec it — an unconverged bias point must never win.
  if (auto it = d.performance.find("_dc_residual"); it != d.performance.end()) {
    d.penalty += opts_.penaltyWeight * it->second * it->second;
  }

  for (const Spec& s : specs_.specs()) {
    auto it = d.performance.find(s.performance);
    if (s.isObjective()) {
      if (it == d.performance.end()) continue;
      const double v = it->second / s.normalization();
      d.objective += opts_.objectiveWeight * s.weight *
                     (s.kind == SpecKind::Minimize ? v : -v);
    } else {
      if (it == d.performance.end()) {
        d.penalty += opts_.penaltyWeight * s.weight;  // missing = violated
        continue;
      }
      const double viol = s.violation(it->second);
      d.penalty += opts_.penaltyWeight * s.weight * viol * viol;
    }
  }
  d.feasible = !d.performance.count("_infeasible") &&
               specs_.satisfied(d.performance, opts_.feasibilityTolerance) &&
               (!d.performance.count("_dc_residual") ||
                d.performance.at("_dc_residual") < 1e-2);
  d.cost = d.penalty + d.objective;
  // The cost must stay finite: annealers and GAs compare and subtract
  // costs, and one NaN would poison every comparison after it.  A non-finite
  // cost (NaN score that slipped into a penalty term, or an infinite
  // violation) becomes a deterministic, very large penalty — far above any
  // real infeasible evaluation, so such points still lose to everything.
  if (!std::isfinite(d.cost)) {
    if (d.status == core::EvalStatus::Ok) {
      d.status = core::EvalStatus::NanDetected;
      sim::recordEvalFailure(d.status);
    }
    markInfeasible(d.performance, d.status);
    d.penalty = opts_.infeasibleCost * 1e3;
    d.objective = 0.0;
    d.cost = d.penalty;
    d.feasible = false;
  }
  return d;
}

}  // namespace amsyn::sizing
