#include "sizing/cost.hpp"

#include <cmath>

#include "core/context.hpp"
#include "core/metrics.hpp"
#include "sim/stats.hpp"

namespace amsyn::sizing {

namespace {

// Pruning gate: a constraint is "confidently infeasible" when even the
// optimistic edge of the prediction band — normalized margin plus kPruneZ
// predictive sigmas — still sits kPruneMargin below zero.  Both constants
// are deliberately conservative: the differential suite counts a false-prune
// budget of ZERO on the seed specs, and a wide band that prunes less is
// strictly safer than a tight one that prunes wrong.
constexpr double kPruneZ = 6.0;
constexpr double kPruneMargin = 0.25;

/// Normalized signed margin of one constraint at a performance value
/// (positive = satisfied with slack).
double normalizedMargin(const Spec& s, double value) {
  const double n = s.normalization();
  return s.kind == SpecKind::GreaterEqual ? (value - s.bound) / n
                                          : (s.bound - value) / n;
}

}  // namespace

CostFunction::CostFunction(const PerformanceModel& model, SpecSet specs, CostOptions opts)
    : model_(model), specs_(std::move(specs)), opts_(opts) {}

double CostFunction::operator()(const std::vector<double>& x) const {
  return detailed(x).cost;
}

void CostFunction::score(Detail& d) const {
  if (auto it = d.performance.find("_infeasible"); it != d.performance.end()) {
    d.penalty += opts_.infeasibleCost * it->second;
  }
  // The relaxed-dc residual, when present, acts as an extra penalty even if
  // the caller forgot to spec it — an unconverged bias point must never win.
  if (auto it = d.performance.find("_dc_residual"); it != d.performance.end()) {
    d.penalty += opts_.penaltyWeight * it->second * it->second;
  }

  for (const Spec& s : specs_.specs()) {
    auto it = d.performance.find(s.performance);
    if (s.isObjective()) {
      if (it == d.performance.end()) continue;
      const double v = it->second / s.normalization();
      d.objective += opts_.objectiveWeight * s.weight *
                     (s.kind == SpecKind::Minimize ? v : -v);
    } else {
      if (it == d.performance.end()) {
        d.penalty += opts_.penaltyWeight * s.weight;  // missing = violated
        continue;
      }
      const double viol = s.violation(it->second);
      d.penalty += opts_.penaltyWeight * s.weight * viol * viol;
    }
  }
  d.feasible = !d.performance.count("_infeasible") &&
               specs_.satisfied(d.performance, opts_.feasibilityTolerance) &&
               (!d.performance.count("_dc_residual") ||
                d.performance.at("_dc_residual") < 1e-2);
  d.cost = d.penalty + d.objective;
  // The cost must stay finite: annealers and GAs compare and subtract
  // costs, and one NaN would poison every comparison after it.  A non-finite
  // cost (NaN score that slipped into a penalty term, or an infinite
  // violation) becomes a deterministic, very large penalty — far above any
  // real infeasible evaluation, so such points still lose to everything.
  if (!std::isfinite(d.cost)) {
    if (d.status == core::EvalStatus::Ok) {
      d.status = core::EvalStatus::NanDetected;
      sim::recordEvalFailure(d.status);
    }
    markInfeasible(d.performance, d.status);
    d.penalty = opts_.infeasibleCost * 1e3;
    d.objective = 0.0;
    d.cost = d.penalty;
    d.feasible = false;
  }
}

std::optional<CostFunction::Detail> CostFunction::tryPrune(
    const std::vector<double>& x) const {
  auto& store = core::currentSurrogateStore();
  if (store.mode() != core::surrogate::Mode::Pruning) return std::nullopt;
  // Only heavy evaluations are worth skipping: a cheap model's evaluation
  // costs about as much as the prediction that would replace it.
  if (model_.evalCost() != EvalCost::Heavy) return std::nullopt;
  const auto cand = surrogateCandidate(model_, x);
  if (!cand) return std::nullopt;

  std::vector<std::string> names;
  names.reserve(specs_.specs().size());
  for (const Spec& s : specs_.specs()) names.push_back(s.performance);
  const auto preds = store.predictMany(*cand, names);

  const Spec* trigger = nullptr;
  double triggerUpper = 0.0;
  double triggerSigma = 0.0;
  for (std::size_t i = 0; i < names.size(); ++i) {
    const Spec& s = specs_.specs()[i];
    if (s.isObjective() || !preds[i] || !preds[i]->calibrated) continue;
    const double margin = normalizedMargin(s, preds[i]->mean);
    const double sigmaN = preds[i]->sigma / s.normalization();
    const double upper = margin + kPruneZ * sigmaN;
    if (upper < -kPruneMargin && (!trigger || upper < triggerUpper)) {
      trigger = &s;
      triggerUpper = upper;
      triggerSigma = sigmaN;
    }
  }
  if (!trigger) return std::nullopt;

  // Synthetic verdict: predicted means stand in for the evaluation and run
  // through the ordinary scoring formula, so the pruned cost tracks what the
  // real evaluation would have scored (the candidate still lands infeasible:
  // its trigger spec is violated by at least kPruneMargin at +kPruneZ sigma).
  // Deliberately NOT markInfeasible'd — the hard infeasibleCost penalty
  // would hand the optimizer a wildly different cost scale than the real
  // evaluation, perturbing annealing accept decisions far more than the
  // prediction error does.  The status code still tells a pruned candidate
  // from a real verdict.  Never cached (safeEvaluate was never called) and
  // never trained on (the observe hook only sees real evaluations).
  Detail d;
  for (std::size_t i = 0; i < names.size(); ++i)
    if (preds[i]) d.performance[names[i]] = preds[i]->mean;
  d.status = core::EvalStatus::SurrogatePruned;
  score(d);
  d.feasible = false;  // pruned = confidently infeasible, whatever score says
  sim::recordEvalFailure(core::EvalStatus::SurrogatePruned);
  store.recordPrune({cand->classKey, x, trigger->performance, triggerUpper,
                     triggerSigma});
  return d;
}

std::optional<double> CostFunction::predictedCost(const std::vector<double>& x) const {
  auto& store = core::currentSurrogateStore();
  if (store.mode() == core::surrogate::Mode::Off) return std::nullopt;
  const auto cand = surrogateCandidate(model_, x);
  if (!cand) return std::nullopt;
  std::vector<std::string> names;
  names.reserve(specs_.specs().size());
  for (const Spec& s : specs_.specs()) names.push_back(s.performance);
  if (names.empty()) return std::nullopt;
  const auto preds = store.predictMany(*cand, names);
  Detail d;
  for (std::size_t i = 0; i < names.size(); ++i) {
    if (!preds[i]) return std::nullopt;
    d.performance[names[i]] = preds[i]->mean;
  }
  score(d);
  return d.cost;
}

CostFunction::Detail CostFunction::detailed(const std::vector<double>& x) const {
  evals_.fetch_add(1, std::memory_order_relaxed);
  static const auto cEvals =
      core::metrics::registry().counter("sizing.cost_evals");
  core::metrics::add(cEvals);
  if (auto pruned = tryPrune(x)) return *pruned;
  Detail d;
  // Containment boundary: exceptions and NaN scores become infeasible data.
  d.performance = safeEvaluate(model_, x);
  d.status = performanceStatus(d.performance);
  score(d);
  return d;
}

}  // namespace amsyn::sizing
