#include "sizing/database.hpp"

#include <cmath>
#include <limits>

namespace amsyn::sizing {

double DesignDatabase::specDistance(const SpecSet& a, const SpecSet& b) {
  double dist = 0.0;
  std::size_t shared = 0;
  for (const auto& sa : a.specs()) {
    if (sa.isObjective()) continue;
    bool found = false;
    for (const auto& sb : b.specs()) {
      if (sb.isObjective() || sb.performance != sa.performance || sb.kind != sa.kind)
        continue;
      found = true;
      ++shared;
      const double norm = std::max(std::abs(sa.bound), std::abs(sb.bound));
      if (norm > 0) dist += std::abs(sa.bound - sb.bound) / norm;
      break;
    }
    if (!found) dist += 1.0;  // constraint the stored design never saw
  }
  if (shared == 0) return std::numeric_limits<double>::infinity();
  return dist;
}

std::optional<StoredDesign> DesignDatabase::nearest(const SpecSet& query) const {
  const StoredDesign* best = nullptr;
  double bestDist = std::numeric_limits<double>::infinity();
  for (const auto& d : designs_) {
    const double dist = specDistance(query, d.specs);
    if (dist < bestDist) {
      bestDist = dist;
      best = &d;
    }
  }
  if (!best) return std::nullopt;
  return *best;
}

SynthesisResult synthesizeWithDatabase(DesignDatabase& db, const PerformanceModel& model,
                                       const SpecSet& specs, const std::string& label,
                                       const SynthesisOptions& opts,
                                       const CostOptions& costOpts) {
  SynthesisOptions warm = opts;
  if (const auto seed = db.nearest(specs);
      seed && seed->x.size() == model.dimension()) {
    warm.startPoint = seed->x;
    // A good warm start wants exploitation, not exploration: cool fast.
    if (warm.anneal.initialTemperature <= 0.0) warm.anneal.initialAcceptance = 0.3;
    warm.anneal.stagnationStages = std::min<std::size_t>(warm.anneal.stagnationStages, 8);
  }
  SynthesisResult res = synthesize(model, specs, warm, costOpts);
  if (res.feasible) db.store(StoredDesign{label, specs, res.x, res.performance});
  return res;
}

}  // namespace amsyn::sizing
