#include "sizing/synth.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "core/context.hpp"
#include "core/parallel.hpp"
#include "core/surrogate.hpp"
#include "core/trace.hpp"
#include "numeric/optimize.hpp"
#include "numeric/rng.hpp"

namespace amsyn::sizing {

namespace {

/// Bijection between the design box and the annealer's internal unit cube,
/// respecting per-variable log scaling.
struct Scaler {
  explicit Scaler(const std::vector<DesignVariable>& vars) : vars_(&vars) {}

  double toUnit(double v, std::size_t i) const {
    const auto& d = (*vars_)[i];
    if (d.logScale && d.lo > 0)
      return std::log(v / d.lo) / std::log(d.hi / d.lo);
    return (v - d.lo) / (d.hi - d.lo);
  }
  double fromUnit(double u, std::size_t i) const {
    const auto& d = (*vars_)[i];
    u = std::clamp(u, 0.0, 1.0);
    if (d.logScale && d.lo > 0) return d.lo * std::pow(d.hi / d.lo, u);
    return d.lo + u * (d.hi - d.lo);
  }
  std::vector<double> fromUnit(const std::vector<double>& u) const {
    std::vector<double> x(u.size());
    for (std::size_t i = 0; i < u.size(); ++i) x[i] = fromUnit(u[i], i);
    return x;
  }

  const std::vector<DesignVariable>* vars_;
};

/// One annealing + refinement run seeded with `seed` (the classic OPTIMAN /
/// FRIDGE / OBLX recipe).  Pure given (cost, opts, seed): no shared mutable
/// state beyond the cost function's atomic evaluation counter, so starts
/// may run concurrently.
SynthesisResult synthesizeSingle(const CostFunction& cost, const SynthesisOptions& opts,
                                 std::uint64_t seed) {
  const auto t0 = std::chrono::steady_clock::now();
  const auto& vars = cost.model().variables();
  const std::size_t n = vars.size();
  const Scaler scaler(vars);

  // Annealing state: unit-cube coordinates.
  std::vector<double> u(n), uPrev(n), uBest(n);
  const auto x0 =
      opts.startPoint.size() == n ? opts.startPoint : cost.model().initialPoint();
  for (std::size_t i = 0; i < n; ++i) u[i] = scaler.toUnit(x0[i], i);
  uPrev = uBest = u;

  double stepScale = 0.25;
  std::size_t sinceCool = 0;

  num::AnnealProblem prob;
  prob.cost = [&] { return cost(scaler.fromUnit(u)); };
  prob.propose = [&](num::Rng& rng) {
    uPrev = u;
    // Perturb one to three coordinates; shrink moves slowly over time.
    const std::size_t moves = 1 + rng.index(3);
    for (std::size_t m = 0; m < moves; ++m) {
      const std::size_t i = rng.index(n);
      u[i] = std::clamp(u[i] + rng.normal(0.0, stepScale * vars[i].moveScale), 0.0, 1.0);
    }
    if (++sinceCool % 512 == 0) stepScale = std::max(0.02, stepScale * 0.95);
  };
  prob.undo = [&] { u = uPrev; };
  prob.snapshot = [&] { uBest = u; };
  // Batched-calibration hooks.  generateNeighbor mirrors propose exactly —
  // same RNG draws in the same order, same stepScale/sinceCool decay — but
  // perturbs a copy, so calibration probes never move the state.  Both
  // hooks are installed unconditionally: the annealer then uses the same
  // batched arithmetic whether or not a surrogate ranks the batch, keeping
  // the two arms trivially comparable.
  prob.generateNeighbor = [&](num::Rng& rng) {
    std::vector<double> p = u;
    const std::size_t moves = 1 + rng.index(3);
    for (std::size_t m = 0; m < moves; ++m) {
      const std::size_t i = rng.index(n);
      p[i] = std::clamp(p[i] + rng.normal(0.0, stepScale * vars[i].moveScale), 0.0, 1.0);
    }
    if (++sinceCool % 512 == 0) stepScale = std::max(0.02, stepScale * 0.95);
    return p;
  };
  prob.costAt = [&](const std::vector<double>& p) { return cost(scaler.fromUnit(p)); };
  prob.rankBatch = [&](const std::vector<std::vector<double>>& probes) {
    std::vector<std::size_t> order(probes.size());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    auto& store = core::currentSurrogateStore();
    if (store.mode() == core::surrogate::Mode::Off) return order;
    std::vector<std::optional<double>> scores(probes.size());
    bool any = false;
    for (std::size_t i = 0; i < probes.size(); ++i) {
      scores[i] = cost.predictedCost(scaler.fromUnit(probes[i]));
      any = any || scores[i].has_value();
    }
    if (!any) return order;
    store.noteOrderedBatch();
    return core::surrogate::orderByScore(scores);
  };

  num::AnnealOptions aopts = opts.anneal;
  aopts.seed = seed;
  if (aopts.problemSizeHint == 16) aopts.problemSizeHint = std::max<std::size_t>(n, 4);
  num::anneal(prob, aopts);

  // Local refinement from the annealing best.
  num::BoxBounds unitBox{std::vector<double>(n, 0.0), std::vector<double>(n, 1.0)};
  num::NelderMeadOptions nm;
  nm.maxEvaluations = opts.refineEvaluations;
  nm.initialStep = 0.05;
  const auto refined = num::nelderMead(
      [&](const std::vector<double>& uu) { return cost(scaler.fromUnit(uu)); }, uBest,
      unitBox, nm);

  const std::vector<double> xBest = scaler.fromUnit(
      refined.value <= cost(scaler.fromUnit(uBest)) ? refined.x : uBest);

  SynthesisResult res;
  res.x = xBest;
  const auto detail = cost.detailed(xBest);
  res.performance = detail.performance;
  res.cost = detail.cost;
  res.feasible = detail.feasible;
  res.evaluations = cost.evaluationCount();
  res.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return res;
}

}  // namespace

SynthesisResult synthesize(const CostFunction& cost, const SynthesisOptions& opts) {
  AMSYN_SPAN("synthesize");
  if (opts.multistarts <= 1) return synthesizeSingle(cost, opts, opts.seed);

  // Parallel multi-start: independent anneals on split RNG streams, best
  // result wins.  The reduction prefers feasibility, then cost, then the
  // lowest start index — a total order with no dependence on completion
  // order, so the winner is identical at any thread count.
  const std::size_t evalsBefore = cost.evaluationCount();
  const auto t0 = std::chrono::steady_clock::now();
  auto runs = core::parallelMap(opts.multistarts, [&](std::size_t k) {
    SynthesisOptions single = opts;
    single.multistarts = 1;
    return synthesizeSingle(cost, single, num::Rng::streamSeed(opts.seed, k));
  });
  std::size_t winner = 0;
  for (std::size_t k = 1; k < runs.size(); ++k) {
    const bool better = (runs[k].feasible && !runs[winner].feasible) ||
                        (runs[k].feasible == runs[winner].feasible &&
                         runs[k].cost < runs[winner].cost);
    if (better) winner = k;
  }
  SynthesisResult res = std::move(runs[winner]);
  // Per-start counter snapshots interleave under concurrency; the total
  // across all starts is deterministic.
  res.evaluations = cost.evaluationCount() - evalsBefore;
  res.seconds = std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  return res;
}

SynthesisResult synthesize(const PerformanceModel& model, const SpecSet& specs,
                           const SynthesisOptions& opts, const CostOptions& costOpts) {
  const CostFunction cost(model, specs, costOpts);
  SynthesisResult res = synthesize(cost, opts);
  if (res.feasible || !opts.feasibilityPush) return res;

  // Feasibility push: crank the penalty weight (keeping the objective as an
  // anchor so the point cannot drift into expensive feasibility) and descend
  // greedily from the best point found.  This closes the small residual
  // violations a finite penalty weight leaves behind.
  CostOptions pushCost = costOpts;
  pushCost.penaltyWeight *= 30.0;
  const CostFunction push(model, specs, pushCost);
  SynthesisOptions pushOpts = opts;
  pushOpts.startPoint = res.x;
  pushOpts.feasibilityPush = false;
  pushOpts.multistarts = 1;  // the push is a greedy descent from res.x
  pushOpts.anneal.initialTemperature = 1e-12;  // greedy descent only
  pushOpts.anneal.stagnationStages = 4;
  pushOpts.refineEvaluations = std::max<std::size_t>(opts.refineEvaluations, 600);
  const SynthesisResult pushed = synthesize(push, pushOpts);

  // Re-judge the pushed point under the original cost for honest reporting.
  const auto detail = cost.detailed(pushed.x);
  if (detail.feasible || detail.cost < res.cost) {
    res.x = pushed.x;
    res.performance = detail.performance;
    res.cost = detail.cost;
    res.feasible = detail.feasible;
  }
  res.evaluations += pushed.evaluations;
  res.seconds += pushed.seconds;
  return res;
}

}  // namespace amsyn::sizing
