#include "sizing/builders.hpp"

#include "sizing/eqmodel.hpp"

namespace amsyn::sizing {

NetlistBuilderRegistry::NetlistBuilderRegistry() {
  add("two-stage-miller",
      [](const std::vector<double>& x, const circuit::Process& proc,
         const OpampTestbench& tb) {
        const TwoStageEquationModel model(proc, tb.loadCap);
        return buildTwoStageOpamp(model.toParams(x), proc, tb);
      });
  add("five-transistor-ota",
      [](const std::vector<double>& x, const circuit::Process& proc,
         const OpampTestbench& tb) {
        const OtaEquationModel model(proc, tb.loadCap);
        return buildOta(model.toParams(x), proc, tb);
      });
}

NetlistBuilderRegistry& NetlistBuilderRegistry::instance() {
  static NetlistBuilderRegistry registry;
  return registry;
}

void NetlistBuilderRegistry::add(const std::string& topology, NetlistBuilder builder) {
  builders_[topology] = std::move(builder);
}

const NetlistBuilder* NetlistBuilderRegistry::find(const std::string& topology) const {
  const auto it = builders_.find(topology);
  return it == builders_.end() ? nullptr : &it->second;
}

std::vector<std::string> NetlistBuilderRegistry::topologies() const {
  std::vector<std::string> names;
  names.reserve(builders_.size());
  for (const auto& [name, builder] : builders_) {
    (void)builder;
    names.push_back(name);
  }
  return names;
}

}  // namespace amsyn::sizing
