#include "sizing/relaxed.hpp"

#include <cmath>
#include <complex>

#include "awe/awe.hpp"
#include "circuit/canonical.hpp"
#include "core/context.hpp"
#include "sim/dc.hpp"
#include "sim/mna.hpp"
#include "sim/stats.hpp"

namespace amsyn::sizing {

RelaxedDcModel::RelaxedDcModel(CircuitTemplate tmpl, const circuit::Process& proc,
                               RelaxedDcOptions opts)
    : tmpl_(std::move(tmpl)), proc_(proc), opts_(opts) {
  // Determine the MNA state size from a probe netlist at the template's
  // middle point; the template must keep node/branch ordering fixed across
  // design points (ours do: they build the same devices in the same order).
  std::vector<double> mid;
  for (const auto& v : tmpl_.variables)
    mid.push_back(v.logScale && v.lo > 0 ? std::sqrt(v.lo * v.hi) : 0.5 * (v.lo + v.hi));
  circuit::Netlist probe = tmpl_.build(mid);
  sim::Mna mna(probe, proc_);
  stateSize_ = mna.size();

  vars_ = tmpl_.variables;
  for (std::size_t i = 0; i < mna.nodeUnknowns(); ++i)
    vars_.push_back(DesignVariable{"v_" + probe.nodeName(static_cast<circuit::NodeId>(i + 1)),
                                   -0.5, proc_.vdd + 0.5, false, 0.03});
  for (std::size_t i = mna.nodeUnknowns(); i < stateSize_; ++i)
    vars_.push_back(DesignVariable{"i_branch" + std::to_string(i - mna.nodeUnknowns()),
                                   -opts_.branchCurrentLimit, opts_.branchCurrentLimit,
                                   false, 0.02});
}

std::vector<double> RelaxedDcModel::initialPoint() const {
  std::vector<double> x;
  for (const auto& v : tmpl_.variables)
    x.push_back(v.logScale && v.lo > 0 ? std::sqrt(v.lo * v.hi) : 0.5 * (v.lo + v.hi));
  circuit::Netlist net = tmpl_.build(x);
  sim::Mna mna(net, proc_);
  const auto op = sim::dcOperatingPoint(mna, sim::flatStart(mna, proc_.vdd / 2));
  if (op.converged) {
    for (double v : op.x) x.push_back(v);
  } else {
    for (std::size_t i = 0; i < stateSize_; ++i)
      x.push_back(i < mna.nodeUnknowns() ? proc_.vdd / 2 : 0.0);
  }
  return x;
}

std::optional<core::cache::Digest128> RelaxedDcModel::cacheKey(
    const std::vector<double>& x) const {
  if (x.size() < tmpl_.variables.size()) return std::nullopt;
  circuit::Netlist net;
  try {
    net = tmpl_.build({x.begin(), x.begin() + tmpl_.variables.size()});
  } catch (...) {
    return std::nullopt;  // evaluate() classifies unbuildable candidates
  }
  core::cache::Hasher128 h;
  h.mixString("relaxed-dc");
  h.mixDigest(circuit::canonicalNetlistDigest(net));
  circuit::hashProcess(h, proc_);
  h.mixString(tmpl_.outputNode);
  h.mixDouble(opts_.residualScale);
  h.mix(opts_.aweOrder);
  h.mixDouble(opts_.branchCurrentLimit);
  h.mixQuantizedDoubles(x, core::currentEvalCache().quantum());
  return h.digest();
}

Performance RelaxedDcModel::evaluate(const std::vector<double>& x) const {
  Performance perf;
  const std::size_t nt = tmpl_.variables.size();
  const std::vector<double> sizes(x.begin(), x.begin() + nt);
  const num::VecD state(x.begin() + nt, x.end());

  circuit::Netlist net = tmpl_.build(sizes);
  sim::Mna mna(net, proc_);
  if (state.size() != mna.size()) {
    markInfeasible(perf, core::EvalStatus::BadTopology);
    sim::recordEvalFailure(core::EvalStatus::BadTopology);
    return perf;
  }

  // KCL residual penalty (the "dc-free" trick).
  num::VecD f;
  mna.assemble(state, {}, nullptr, &f);
  perf["_dc_residual"] = num::normInf(f) / opts_.residualScale;

  perf["area"] = net.totalGateArea();

  // Power from the supply branch currents in the relaxed state.
  double power = 0.0;
  const auto& devs = net.devices();
  for (std::size_t k = 0; k < devs.size(); ++k)
    if (devs[k].type == circuit::DeviceType::VSource && devs[k].value > 0)
      power += devs[k].value * std::abs(state[mna.branchIndex(k)]);
  perf["power"] = power;

  // Slew estimate: tail current over the compensation cap, read from the
  // (relaxed) operating point — the same proxy the simulation model uses.
  {
    double itail = 0.0, cc = 0.0;
    for (const auto& [name, mop] : mna.mosOperatingPoints(state))
      if (name == "M5") itail = std::abs(mop.ids);
    for (const auto& d : devs)
      if (d.name == "CC") cc = d.value;
    if (itail > 0 && cc > 0) perf["slew"] = itail / cc;
  }

  // Small-signal characteristics from AWE on the Jacobian at this state.
  const auto outNode = net.findNode(tmpl_.outputNode);
  if (!outNode) {
    markInfeasible(perf, core::EvalStatus::BadTopology);
    sim::recordEvalFailure(core::EvalStatus::BadTopology);
    return perf;
  }
  try {
    num::MatrixD g, c;
    num::VecD b;
    mna.acMatrices(state, g, c, b);
    const auto model = awe::aweLinearSystem(g, c, b, mna.nodeIndex(*outNode), opts_.aweOrder);
    const double dcGain = std::abs(model.pr.evaluate({0.0, 0.0}));
    perf["gain_db"] = 20.0 * std::log10(std::max(dcGain, 1e-12));

    // UGF and phase margin from the reduced model on a log grid.
    double ugf = 0.0, phaseAtUgf = 0.0;
    double prevMag = dcGain, prevF = 0.0;
    for (double f10 = 0; f10 <= 10.0; f10 += 0.05) {
      const double freq = std::pow(10.0, f10);
      const std::complex<double> h =
          model.pr.evaluate({0.0, 2.0 * M_PI * freq});
      const double mag = std::abs(h);
      if (prevMag >= 1.0 && mag < 1.0) {
        ugf = prevF > 0 ? std::sqrt(prevF * freq) : freq;
        phaseAtUgf = std::arg(h) * 180.0 / M_PI;
        break;
      }
      prevMag = mag;
      prevF = freq;
    }
    if (ugf > 0.0) {
      perf["ugf"] = ugf;
      perf["pm"] = 180.0 + phaseAtUgf;
    } else {
      markInfeasible(perf, core::EvalStatus::NoAcCrossing);
      sim::recordEvalFailure(core::EvalStatus::NoAcCrossing);
    }
  } catch (const std::exception&) {
    // AWE blew up on this state (singular moment matrix, over-ordered
    // Hankel system): infeasible data with the reason attached.
    markInfeasible(perf, core::EvalStatus::SingularJacobian);
    sim::recordEvalFailure(core::EvalStatus::SingularJacobian);
  }
  return perf;
}

}  // namespace amsyn::sizing
