// ASTRX-style cost compilation [23]: a SpecSet plus a PerformanceModel
// become one scalar function whose minimum is a good circuit.  Constraints
// enter as quadratic penalties in normalized units; objectives enter as
// weighted scalarized terms; infeasible evaluations (no DC convergence, no
// unity-gain crossing) get a large but finite cost so the annealer can walk
// out of them.
#pragma once

#include <atomic>
#include <vector>

#include "sizing/perfmodel.hpp"
#include "sizing/spec.hpp"

namespace amsyn::sizing {

struct CostOptions {
  double penaltyWeight = 200.0;    ///< global multiplier on constraint penalties
  double infeasibleCost = 1e4;     ///< added when the model reports _infeasible
  double objectiveWeight = 1.0;    ///< global multiplier on objectives
  /// Normalized violation below which a constraint counts as met when
  /// reporting feasibility (penalty methods approach constraints
  /// asymptotically; 1e-3 = 0.1% of the bound).
  double feasibilityTolerance = 1e-3;
};

class CostFunction {
 public:
  CostFunction(const PerformanceModel& model, SpecSet specs, CostOptions opts = {});

  /// Scalar cost at design point x.
  double operator()(const std::vector<double>& x) const;

  /// Cost with the full evaluation attached (for reporting).  detailed()
  /// is total: a throwing model or a NaN anywhere in the evaluation yields
  /// a large-but-finite cost with the reason in `status` — one poisoned
  /// candidate can never abort or corrupt an optimization run.
  struct Detail {
    double cost = 0.0;
    double penalty = 0.0;
    double objective = 0.0;
    bool feasible = false;
    /// Why the evaluation failed (Ok for clean evaluations, including
    /// feasible-but-bad circuits).
    core::EvalStatus status = core::EvalStatus::Ok;
    Performance performance;
  };
  Detail detailed(const std::vector<double>& x) const;

  /// Surrogate-predicted scalar cost at x, for ordering-mode batch pre-
  /// ranking.  nullopt when the surrogate is off, the model attests no
  /// signature, or any spec head is not yet predictable — ordering callers
  /// then keep the original order.  Never evaluates the model.
  std::optional<double> predictedCost(const std::vector<double>& x) const;

  const SpecSet& specs() const { return specs_; }
  const PerformanceModel& model() const { return model_; }
  std::size_t evaluationCount() const { return evals_.load(std::memory_order_relaxed); }

 private:
  /// Shared spec arithmetic: penalties, objectives, feasibility, and the
  /// non-finite containment — everything detailed() does after the model
  /// evaluation, reused by the pruned and predicted paths so a synthetic
  /// verdict scores exactly like a real map with the same values.
  void score(Detail& d) const;

  /// Pruning mode: a Detail built from predictions instead of an evaluation
  /// when every gate holds (calibrated band confidently below the margin
  /// threshold); nullopt means "evaluate for real".
  std::optional<Detail> tryPrune(const std::vector<double>& x) const;

  const PerformanceModel& model_;
  SpecSet specs_;
  CostOptions opts_;
  /// Atomic: one CostFunction is shared by concurrent evaluations (parallel
  /// population scoring, multi-start annealing).
  mutable std::atomic<std::size_t> evals_{0};
};

}  // namespace amsyn::sizing
