#include "sizing/spec.hpp"

#include <cmath>
#include <sstream>

namespace amsyn::sizing {

double Spec::normalization() const {
  if (norm > 0.0) return norm;
  if (isObjective()) return 1.0;
  return std::abs(bound) > 0.0 ? std::abs(bound) : 1.0;
}

double Spec::violation(double value) const {
  switch (kind) {
    case SpecKind::GreaterEqual:
      return std::max(0.0, (bound - value) / normalization());
    case SpecKind::LessEqual:
      return std::max(0.0, (value - bound) / normalization());
    case SpecKind::Minimize:
    case SpecKind::Maximize:
      return 0.0;
  }
  return 0.0;
}

std::string Spec::describe() const {
  std::ostringstream out;
  out << performance;
  switch (kind) {
    case SpecKind::GreaterEqual: out << " >= " << bound; break;
    case SpecKind::LessEqual: out << " <= " << bound; break;
    case SpecKind::Minimize: out << " -> min"; break;
    case SpecKind::Maximize: out << " -> max"; break;
  }
  return out.str();
}

SpecSet& SpecSet::require(const std::string& perf, SpecKind kind, double bound,
                          double weight) {
  specs_.push_back(Spec{perf, kind, bound, weight, 0.0});
  return *this;
}

SpecSet& SpecSet::atLeast(const std::string& perf, double bound, double weight) {
  return require(perf, SpecKind::GreaterEqual, bound, weight);
}

SpecSet& SpecSet::atMost(const std::string& perf, double bound, double weight) {
  return require(perf, SpecKind::LessEqual, bound, weight);
}

SpecSet& SpecSet::minimize(const std::string& perf, double weight, double norm) {
  specs_.push_back(Spec{perf, SpecKind::Minimize, 0.0, weight, norm});
  return *this;
}

SpecSet& SpecSet::maximize(const std::string& perf, double weight, double norm) {
  specs_.push_back(Spec{perf, SpecKind::Maximize, 0.0, weight, norm});
  return *this;
}

bool SpecSet::satisfied(const std::map<std::string, double>& perf, double tolerance) const {
  for (const Spec& s : specs_) {
    if (s.isObjective()) continue;
    auto it = perf.find(s.performance);
    if (it == perf.end()) return false;
    if (s.violation(it->second) > tolerance) return false;
  }
  return true;
}

core::cache::Digest128 SpecSet::digest() const {
  core::cache::Hasher128 h;
  h.mixString("spec-set");
  h.mix(specs_.size());
  for (const Spec& s : specs_) {
    h.mixString(s.performance);
    h.mix(static_cast<std::uint64_t>(s.kind));
    h.mixDouble(s.bound).mixDouble(s.weight).mixDouble(s.norm);
  }
  return h.digest();
}

double SpecSet::totalViolation(const std::map<std::string, double>& perf) const {
  double v = 0.0;
  for (const Spec& s : specs_) {
    if (s.isObjective()) continue;
    auto it = perf.find(s.performance);
    v += it == perf.end() ? 1.0 : s.violation(it->second);
  }
  return v;
}

}  // namespace amsyn::sizing
