// OAC-style redesign from a design database (Onodera et al., JSSC 1990 —
// the paper's ref [25]): "based on redesign starting from a previous design
// solution stored in the system's database."  Completed syntheses are stored
// with their specs; a new synthesis warm-starts from the nearest stored
// design instead of the model's generic initial point.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sizing/spec.hpp"
#include "sizing/synth.hpp"

namespace amsyn::sizing {

struct StoredDesign {
  std::string label;
  SpecSet specs;
  std::vector<double> x;
  Performance performance;
};

class DesignDatabase {
 public:
  void store(StoredDesign design) { designs_.push_back(std::move(design)); }
  std::size_t size() const { return designs_.size(); }
  const std::vector<StoredDesign>& designs() const { return designs_; }

  /// Nearest stored design under a normalized spec-distance metric: for
  /// every constraint the query and the stored entry share, accumulate the
  /// relative bound difference; unshared constraints cost a fixed penalty.
  std::optional<StoredDesign> nearest(const SpecSet& query) const;

  /// Spec distance exposed for inspection/testing.
  static double specDistance(const SpecSet& a, const SpecSet& b);

 private:
  std::vector<StoredDesign> designs_;
};

/// Synthesize with database support: warm-start from the nearest stored
/// design (when one exists), then store the result on success.
SynthesisResult synthesizeWithDatabase(DesignDatabase& db, const PerformanceModel& model,
                                       const SpecSet& specs, const std::string& label,
                                       const SynthesisOptions& opts = {},
                                       const CostOptions& costOpts = {});

}  // namespace amsyn::sizing
