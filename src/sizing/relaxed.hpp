// ASTRX/OBLX-style "dc-free biasing" formulation [23]: instead of solving
// the nonlinear DC operating point at every optimizer iteration (the
// expensive part of simulation-based sizing), the node voltages become
// optimization variables and Kirchhoff's current law becomes a penalty term.
// The annealer then relaxes the circuit into bias while it sizes it, and the
// linear small-signal characteristics are evaluated with AWE [61] on the
// Jacobian at the current (not-yet-converged) bias point.
#pragma once

#include "circuit/process.hpp"
#include "sizing/perfmodel.hpp"
#include "sizing/simmodel.hpp"

namespace amsyn::sizing {

struct RelaxedDcOptions {
  double residualScale = 1e-4;  ///< current scale for the KCL penalty (A)
  std::size_t aweOrder = 3;
  double branchCurrentLimit = 0.05;  ///< bound on branch-current unknowns (A)
};

class RelaxedDcModel : public PerformanceModel {
 public:
  RelaxedDcModel(CircuitTemplate tmpl, const circuit::Process& proc,
                 RelaxedDcOptions opts = {});

  const std::vector<DesignVariable>& variables() const override { return vars_; }

  /// Performances: gain_db, ugf, pm, power, area plus the special
  /// "_dc_residual" (normalized KCL violation) which the cost function must
  /// drive to zero — SpecSet users add
  /// `atMost("_dc_residual", tol, bigWeight)`.
  Performance evaluate(const std::vector<double>& x) const override;

  /// Initial point: template middle + node voltages from an actual DC solve
  /// (a fair warm start, as ASTRX does with its dc estimator).
  std::vector<double> initialPoint() const override;

  /// Canonical candidate key: canonicalized netlist at the template portion
  /// of x plus the relaxed bias state (also part of x — a different node-
  /// voltage guess is a different candidate), process, and options.
  std::optional<core::cache::Digest128> cacheKey(
      const std::vector<double>& x) const override;

  std::size_t templateDimension() const { return tmpl_.variables.size(); }

 private:
  CircuitTemplate tmpl_;
  const circuit::Process& proc_;
  RelaxedDcOptions opts_;
  std::vector<DesignVariable> vars_;
  std::size_t stateSize_ = 0;
};

}  // namespace amsyn::sizing
