#include "sizing/eqmodel.hpp"

#include <cmath>
#include <stdexcept>

#include "circuit/canonical.hpp"
#include "core/context.hpp"

namespace amsyn::sizing {

namespace {
constexpr double kTwoPi = 2.0 * M_PI;
constexpr double kIbiasRef = 10e-6;  // reference current into the bias diode

/// W from the square law: W = 2 I L / (kp Vov^2), floored at the process
/// minimum width.
double widthFor(double i, double vov, double kp, double l, double minW) {
  return std::max(minW, 2.0 * i * l / (kp * vov * vov));
}
}  // namespace

TwoStageEquationModel::TwoStageEquationModel(const circuit::Process& proc, double loadCap)
    : proc_(proc), loadCap_(loadCap) {
  vars_ = {
      {"i5", 2e-6, 2e-3, true},     // first-stage tail current
      {"i7", 2e-6, 5e-3, true},     // second-stage current
      {"vov1", 0.08, 0.5, false},   // input-pair overdrive
      {"vov3", 0.10, 0.8, false},   // mirror overdrive
      {"vov5", 0.10, 0.8, false},   // tail / sink overdrive
      {"vov6", 0.10, 0.8, false},   // output-driver overdrive
      {"cc", 0.2e-12, 2e-11, true}, // Miller capacitor
  };
  // The key components that never change per model instance — identity tag,
  // process parameters, load — are mixed once here; cacheKey() copies the
  // prefix hasher (two words) and only mixes the sizing vector per call.
  keyPrefix_.mixString("eq-two-stage");
  circuit::hashProcess(keyPrefix_, proc_);
  keyPrefix_.mixDouble(loadCap_);
  // Surrogate class: tag + load only.  The process is context, not
  // identity, so instances at different process points (yield sampling,
  // per-corner libraries) pool their observations into one model.
  core::cache::Hasher128 sh;
  sh.mixString("surr-eq-two-stage");
  sh.mixDouble(loadCap_);
  surrogateSig_ = {sh.digest(), processSurrogateContext(proc_)};
}

Performance TwoStageEquationModel::evaluate(const std::vector<double>& x) const {
  if (x.size() != vars_.size())
    throw std::invalid_argument("TwoStageEquationModel: wrong dimension");
  // Evaluate through the geometry path: map the electrical point onto
  // device sizes first (with minimum-width flooring) and derive the
  // performances from that geometry.  This keeps the model exactly
  // consistent with the netlist buildTwoStageOpamp() will produce — the
  // classic OPASYN failure mode is an equation model whose idealized
  // variables drift away from the realizable device sizes.
  return evaluateTwoStageGeometry(toParams(x), proc_, loadCap_);
}

std::optional<core::cache::Digest128> TwoStageEquationModel::cacheKey(
    const std::vector<double>& x) const {
  core::cache::Hasher128 h = keyPrefix_;
  h.mixQuantizedDoubles(x, core::currentEvalCache().quantum());
  return h.digest();
}

TwoStageParams TwoStageEquationModel::toParams(const std::vector<double>& x) const {
  const double i5 = x[0], i7 = x[1];
  const double vov1 = x[2], vov3 = x[3], vov5 = x[4];
  const double l = 2e-6;
  TwoStageParams p;
  p.l = l;
  p.w1 = widthFor(i5 / 2.0, vov1, proc_.kpN, l, proc_.minW);
  p.w3 = widthFor(i5 / 2.0, vov3, proc_.kpP, l, proc_.minW);
  p.w5 = widthFor(i5, vov5, proc_.kpN, l, proc_.minW);
  // Zero-systematic-offset constraint (Allen & Holberg): the mirror pins
  // M6's gate voltage to M4's, so vov6 = vov3 and W6 follows from the
  // current ratio rather than from an independent overdrive choice.
  // (x[5], the vov6 coordinate, deliberately has no effect: treating it as
  // free is exactly the model-vs-circuit inconsistency that made early
  // equation-based tools produce designs that failed in SPICE.)
  p.w6 = std::max(proc_.minW, p.w3 * 2.0 * i7 / i5);
  p.w7 = widthFor(i7, vov5, proc_.kpN, l, proc_.minW);
  p.ibias = kIbiasRef;
  // Bias diode sized for the same overdrive as the tail at the reference
  // current, so the mirror ratio sets I5.
  p.w8 = std::max(proc_.minW, p.w5 * p.ibias / std::max(i5, 1e-9));
  p.cc = x[6];
  return p;
}

OtaEquationModel::OtaEquationModel(const circuit::Process& proc, double loadCap)
    : proc_(proc), loadCap_(loadCap) {
  vars_ = {
      {"i5", 2e-6, 2e-3, true},
      {"vov1", 0.08, 0.5, false},
      {"vov3", 0.10, 0.8, false},
      {"vov5", 0.10, 0.8, false},
  };
  keyPrefix_.mixString("eq-ota");
  circuit::hashProcess(keyPrefix_, proc_);
  keyPrefix_.mixDouble(loadCap_);
  core::cache::Hasher128 sh;
  sh.mixString("surr-eq-ota");
  sh.mixDouble(loadCap_);
  surrogateSig_ = {sh.digest(), processSurrogateContext(proc_)};
}

Performance OtaEquationModel::evaluate(const std::vector<double>& x) const {
  if (x.size() != vars_.size()) throw std::invalid_argument("OtaEquationModel: wrong dimension");
  const double i5 = x[0], vov1 = x[1], vov3 = x[2], vov5 = x[3];
  const double l = 2e-6;
  const double lamN = proc_.lambdaN * 1e-6 / l;
  const double lamP = proc_.lambdaP * 1e-6 / l;

  const double gm1 = i5 / vov1;
  const double gds = (lamN + lamP) * i5 / 2.0;
  const double av = gm1 / gds;
  const double ugf = gm1 / (kTwoPi * loadCap_);
  // Non-dominant pole at the mirror node ~ gm3 / (2 Cgs3); approximate
  // Cgs3 from the mirror width.
  const double gm3 = i5 / vov3;
  const double w3 = std::max(proc_.minW, 2.0 * (i5 / 2.0) * l / (proc_.kpP * vov3 * vov3));
  const double cgs3 = (2.0 / 3.0) * proc_.cox * w3 * l;
  const double pMirror = gm3 / (kTwoPi * 2.0 * cgs3);
  const double pm = 180.0 - 90.0 - std::atan(ugf / pMirror) * 180.0 / M_PI;

  const OtaParams p = toParams(x);
  Performance perf;
  perf["gain_db"] = 20.0 * std::log10(av);
  perf["ugf"] = ugf;
  perf["pm"] = pm;
  perf["slew"] = i5 / loadCap_;
  perf["power"] = proc_.vdd * (i5 + 10e-6);
  perf["area"] = p.activeArea(proc_);
  perf["swing"] = std::max(0.0, proc_.vdd - vov3 - vov5 - vov1);
  const double psd = 2.0 * (16.0 / 3.0) * proc_.kT() / gm1 * (1.0 + gm3 / gm1);
  perf["noise_nv"] = std::sqrt(psd) * 1e9;
  return perf;
}

std::optional<core::cache::Digest128> OtaEquationModel::cacheKey(
    const std::vector<double>& x) const {
  core::cache::Hasher128 h = keyPrefix_;
  h.mixQuantizedDoubles(x, core::currentEvalCache().quantum());
  return h.digest();
}

OtaParams OtaEquationModel::toParams(const std::vector<double>& x) const {
  const double i5 = x[0], vov1 = x[1], vov3 = x[2], vov5 = x[3];
  const double l = 2e-6;
  OtaParams p;
  p.l = l;
  p.w1 = widthFor(i5 / 2.0, vov1, proc_.kpN, l, proc_.minW);
  p.w3 = widthFor(i5 / 2.0, vov3, proc_.kpP, l, proc_.minW);
  p.w5 = widthFor(i5, vov5, proc_.kpN, l, proc_.minW);
  p.ibias = 10e-6;
  p.w8 = std::max(proc_.minW, p.w5 * p.ibias / std::max(i5, 1e-9));
  return p;
}

namespace {

template <typename Model>
class OwningProcessModel : public PerformanceModel {
 public:
  OwningProcessModel(const circuit::Process& proc, double loadCap)
      : proc_(proc), inner_(proc_, loadCap) {}  // proc_ initialized first

  const std::vector<DesignVariable>& variables() const override {
    return inner_.variables();
  }
  Performance evaluate(const std::vector<double>& x) const override {
    return inner_.evaluate(x);
  }
  EvalCost evalCost() const override { return inner_.evalCost(); }
  std::optional<SurrogateSignature> surrogateSignature() const override {
    return inner_.surrogateSignature();
  }

 private:
  circuit::Process proc_;
  Model inner_;
};

}  // namespace

std::unique_ptr<PerformanceModel> makeTwoStageModel(const circuit::Process& proc,
                                                    double loadCap) {
  return std::make_unique<OwningProcessModel<TwoStageEquationModel>>(proc, loadCap);
}

std::unique_ptr<PerformanceModel> makeOtaModel(const circuit::Process& proc,
                                               double loadCap) {
  return std::make_unique<OwningProcessModel<OtaEquationModel>>(proc, loadCap);
}

Performance evaluateTwoStageGeometry(const TwoStageParams& p, const circuit::Process& proc,
                                     double loadCap) {
  // Bias currents from the mirror ratios off the (ideal) reference.
  const double i5 = p.ibias * p.w5 / p.w8;
  const double i7 = p.ibias * p.w7 / p.w8;
  const double l = p.l;
  const double lamN = proc.lambdaN * 1e-6 / l;
  const double lamP = proc.lambdaP * 1e-6 / l;

  // Overdrives follow from the square law at the corner's kp.
  const double vov1 = std::sqrt(i5 * l / (proc.kpN * p.w1));
  const double vov3 = std::sqrt(i5 * l / (proc.kpP * p.w3));
  [[maybe_unused]] const double vov5 = std::sqrt(2.0 * i5 * l / (proc.kpN * p.w5));
  const double vov6 = std::sqrt(2.0 * i7 * l / (proc.kpP * p.w6));
  const double vov7 = std::sqrt(2.0 * i7 * l / (proc.kpN * p.w7));

  const double gm1 = i5 / vov1;
  const double gm6 = 2.0 * i7 / vov6;
  const double av1 = gm1 / ((lamN + lamP) * i5 / 2.0);
  const double av2 = gm6 / ((lamN + lamP) * i7);

  const double gbw = gm1 / (kTwoPi * p.cc);  // gain-bandwidth product
  const double p2 = gm6 / (kTwoPi * loadCap);
  const double z = gm6 / (kTwoPi * p.cc);
  // Mirror pole: the diode-connected M3 loads the first stage's internal
  // node with ~2 cgs3 at conductance gm3.
  const double gm3 = i5 / vov3;
  const double cgs3 = (2.0 / 3.0) * proc.cox * p.w3 * l;
  const double p3 = gm3 / (kTwoPi * 2.0 * std::max(cgs3, 1e-18));

  // True unity-gain crossing of the 3-pole / 1-RHP-zero response.  When p2
  // sits near the GBW product the magnitude falls at -40 dB/dec before
  // crossing, so the measured UGF lands well below gm1/(2 pi Cc); reporting
  // the naive GBW here is exactly the kind of model-vs-silicon drift the
  // verification step of section 2.1 exists to catch.
  const double av0 = av1 * av2;
  const double p1 = gbw / std::max(av0, 1.0);  // dominant pole (Hz)
  auto magnitude = [&](double f) {
    const double num = 1.0 + (f / z) * (f / z);
    const double den = (1.0 + (f / p1) * (f / p1)) * (1.0 + (f / p2) * (f / p2)) *
                       (1.0 + (f / p3) * (f / p3));
    return av0 * std::sqrt(num / den);
  };
  double lo = p1, hi = 1e13;
  for (int it = 0; it < 80; ++it) {
    const double mid = std::sqrt(lo * hi);
    (magnitude(mid) > 1.0 ? lo : hi) = mid;
  }
  const double ugf = std::sqrt(lo * hi);

  const double pm = 180.0 - std::atan(ugf / p1) * 180.0 / M_PI -
                    std::atan(ugf / p2) * 180.0 / M_PI -
                    std::atan(ugf / z) * 180.0 / M_PI -
                    std::atan(ugf / p3) * 180.0 / M_PI;

  const double psd = 2.0 * (16.0 / 3.0) * proc.kT() / gm1 * (1.0 + gm3 / gm1);

  Performance perf;
  perf["gain_db"] = 20.0 * std::log10(av1 * av2);
  perf["ugf"] = ugf;
  perf["pm"] = pm;
  perf["slew"] = std::min(i5 / p.cc, i7 / loadCap);
  perf["power"] = proc.vdd * (i5 + i7 + p.ibias);
  perf["area"] = p.activeArea(proc);
  // Headroom shrinks with |Vt| growth as well as overdrive growth.
  perf["swing"] =
      std::max(0.0, proc.vdd - vov6 - vov7 -
                        0.5 * (std::abs(proc.vt0N) - 0.75 + std::abs(proc.vt0P) - 0.85));
  perf["noise_nv"] = std::sqrt(psd) * 1e9;
  return perf;
}

namespace {

/// See makeTwoStageCornerModel.
class TwoStageCornerModel : public PerformanceModel {
 public:
  TwoStageCornerModel(const circuit::Process& corner, const circuit::Process& nominal,
                      double loadCap)
      : corner_(corner), nominal_(nominal), nominalModel_(nominal_, loadCap),
        loadCap_(loadCap) {
    keyPrefix_.mixString("eq-two-stage-corner");
    circuit::hashProcess(keyPrefix_, corner_);
    circuit::hashProcess(keyPrefix_, nominal_);
    keyPrefix_.mixDouble(loadCap_);
    // Surrogate class excludes the corner: every vertex and coordinate-
    // search probe of one hunt trains a single model, with the corner's
    // electrical parameters riding along as context features.  A per-corner
    // class would see one observation per round and never calibrate.
    core::cache::Hasher128 sh;
    sh.mixString("surr-eq-two-stage-corner");
    circuit::hashProcess(sh, nominal_);
    sh.mixDouble(loadCap_);
    surrogateSig_ = {sh.digest(), processSurrogateContext(corner_)};
  }

  const std::vector<DesignVariable>& variables() const override {
    return nominalModel_.variables();
  }

  Performance evaluate(const std::vector<double>& x) const override {
    const TwoStageParams geometry = nominalModel_.toParams(x);
    return evaluateTwoStageGeometry(geometry, corner_, loadCap_);
  }

  /// Corner-hunt hot path: worstCaseCorner re-visits the same (corner, x)
  /// pairs across cutting-plane rounds and in the final audit; the key
  /// mixes both processes because the geometry is frozen at nominal and
  /// evaluated at the corner.
  std::optional<core::cache::Digest128> cacheKey(
      const std::vector<double>& x) const override {
    core::cache::Hasher128 h = keyPrefix_;
    h.mixQuantizedDoubles(x, core::currentEvalCache().quantum());
    return h.digest();
  }

  // Stays Heavy: the corner hunt's value is precisely the cross-round /
  // audit re-hit pattern, and the cost of one evaluation (geometry map +
  // 80-iteration UGF bisection, times the vertex fan-out) clears the
  // cache-transaction bar.

  std::optional<SurrogateSignature> surrogateSignature() const override {
    return surrogateSig_;
  }

 private:
  circuit::Process corner_;
  circuit::Process nominal_;
  TwoStageEquationModel nominalModel_;
  double loadCap_;
  core::cache::Hasher128 keyPrefix_;  ///< tag+corner+nominal+loadCap
  SurrogateSignature surrogateSig_;   ///< tag+nominal+loadCap; corner as context
};

}  // namespace

std::unique_ptr<PerformanceModel> makeTwoStageCornerModel(const circuit::Process& corner,
                                                          const circuit::Process& nominal,
                                                          double loadCap) {
  return std::make_unique<TwoStageCornerModel>(corner, nominal, loadCap);
}

}  // namespace amsyn::sizing
