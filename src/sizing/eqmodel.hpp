// Equation-based performance models (OPASYN [8] / OPTIMAN [10] style):
// hand-derived first-order design equations evaluated in microseconds.
// Design variables are bias currents, overdrive voltages, and the
// compensation capacitor; device widths follow from W/L = 2 I / (kp Vov^2),
// so every equation-model design point maps onto the simulatable and
// layoutable TwoStageParams / OtaParams templates.
#pragma once

#include <memory>

#include "circuit/process.hpp"
#include "sizing/opamp.hpp"
#include "sizing/perfmodel.hpp"

namespace amsyn::sizing {

/// Two-stage Miller opamp, equation-based.
/// Variables: i5, i7 (stage currents), vov1, vov3, vov5, vov6 (overdrives),
/// cc (compensation).  Performances: gain_db, ugf, pm, slew, power, area,
/// swing, noise_nv (input thermal noise density in nV/sqrt(Hz)).
class TwoStageEquationModel : public PerformanceModel {
 public:
  TwoStageEquationModel(const circuit::Process& proc, double loadCap);

  const std::vector<DesignVariable>& variables() const override { return vars_; }
  Performance evaluate(const std::vector<double>& x) const override;
  std::optional<core::cache::Digest128> cacheKey(
      const std::vector<double>& x) const override;
  /// Closed-form equations evaluate in ~1 us — the same order as a cache
  /// transaction — so caching them is pure overhead (the BENCH_cache
  /// genetic workload measures exactly this floor).
  EvalCost evalCost() const override { return EvalCost::Cheap; }
  /// Cheap models are never pruned (tryPrune skips them) but still attest a
  /// signature so ordering mode can pre-rank genetic offspring over the
  /// default equation-model library.
  std::optional<SurrogateSignature> surrogateSignature() const override {
    return surrogateSig_;
  }

  /// Map a design point to device sizes for simulation / layout.
  TwoStageParams toParams(const std::vector<double>& x) const;

  double loadCap() const { return loadCap_; }

 private:
  const circuit::Process& proc_;
  double loadCap_;
  std::vector<DesignVariable> vars_;
  core::cache::Hasher128 keyPrefix_;  ///< tag+process+loadCap, mixed once
  SurrogateSignature surrogateSig_;   ///< tag+loadCap class; process as context
};

/// Five-transistor OTA, equation-based.
/// Variables: i5, vov1, vov3, vov5.  Performances: gain_db, ugf, pm, slew,
/// power, area, swing, noise_nv.
class OtaEquationModel : public PerformanceModel {
 public:
  OtaEquationModel(const circuit::Process& proc, double loadCap);

  const std::vector<DesignVariable>& variables() const override { return vars_; }
  Performance evaluate(const std::vector<double>& x) const override;
  std::optional<core::cache::Digest128> cacheKey(
      const std::vector<double>& x) const override;
  EvalCost evalCost() const override { return EvalCost::Cheap; }
  std::optional<SurrogateSignature> surrogateSignature() const override {
    return surrogateSig_;
  }

  OtaParams toParams(const std::vector<double>& x) const;

 private:
  const circuit::Process& proc_;
  double loadCap_;
  std::vector<DesignVariable> vars_;
  core::cache::Hasher128 keyPrefix_;  ///< tag+process+loadCap, mixed once
  SurrogateSignature surrogateSig_;   ///< tag+loadCap class; process as context
};

/// Equation model that owns a copy of its process — corner and yield
/// analyses instantiate models at perturbed processes whose lifetime would
/// otherwise be the caller's problem.
std::unique_ptr<PerformanceModel> makeTwoStageModel(const circuit::Process& proc,
                                                    double loadCap);
std::unique_ptr<PerformanceModel> makeOtaModel(const circuit::Process& proc, double loadCap);

/// Evaluate a *fixed geometry* (widths, Cc, Ibias) under an arbitrary
/// process instance.  This is the physically correct object for corner and
/// yield analysis: what a fab varies is kp/Vt/Vdd/T around frozen masks, so
/// currents and overdrives — the equation model's free variables — shift
/// with the corner.  Mirror currents derive from the bias reference through
/// the W5/W8 and W7/W8 ratios.
Performance evaluateTwoStageGeometry(const TwoStageParams& p, const circuit::Process& proc,
                                     double loadCap);

/// Corner model: design points live in the electrical variable space of
/// TwoStageEquationModel, are mapped to geometry at the *nominal* process
/// (that is what the designer tapes out), and evaluated under the corner
/// process.  Use in manufacture::ModelFactory lambdas:
///   [&](const Process& corner) {
///     return makeTwoStageCornerModel(corner, nominalProcess, cl); }
std::unique_ptr<PerformanceModel> makeTwoStageCornerModel(const circuit::Process& corner,
                                                          const circuit::Process& nominal,
                                                          double loadCap);

}  // namespace amsyn::sizing
