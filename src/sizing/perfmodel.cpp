#include "sizing/perfmodel.hpp"

#include "sim/stats.hpp"

namespace amsyn::sizing {

using core::EvalStatus;

Performance safeEvaluate(const PerformanceModel& model, const std::vector<double>& x) {
  // Memoized fast path: the cache sits here — below every hot consumer
  // (sizing::CostFunction, topology/genetic batches, manufacture corner
  // hunts all evaluate through safeEvaluate) — so one integration point
  // covers all three loops the paper's runtime analysis names.
  auto& cache = core::cache::EvalCache::instance();
  std::optional<core::cache::Digest128> key;
  if (cache.enabled()) {
    if (model.evalCost() == EvalCost::Cheap) {
      // Evaluation ~ lookup cost: skip the digest, the lookup, *and* the
      // insert (key stays nullopt below).  Counted so hit-rate math over
      // core.cache.* stays honest about what the cache never saw.
      cache.noteBypass();
    } else {
      key = model.cacheKey(x);
      if (key) {
        core::cache::CachedEval cached;
        if (cache.lookup(*key, x, cached)) return std::move(cached.performance);
      }
    }
  }

  Performance perf;
  try {
    perf = model.evaluate(x);
  } catch (...) {
    // A throwing candidate is infeasible data, not a fatal error: the
    // optimization loop must keep iterating past it (FRIDGE-style robust
    // cost evaluation).  out_of_memory verdicts are environmental, not a
    // property of the candidate, so they are never cached — the same point
    // may evaluate fine once the pressure subsides.
    const EvalStatus st = core::classifyCurrentException();
    perf.clear();
    markInfeasible(perf, st);
    sim::recordEvalFailure(st);
    if (key && st != EvalStatus::OutOfMemory) cache.insert(*key, x, {perf, st});
    return perf;
  }
  for (const auto& [name, value] : perf) {
    if (std::isnan(value)) {
      markInfeasible(perf, EvalStatus::NanDetected);
      sim::recordEvalFailure(EvalStatus::NanDetected);
      break;
    }
  }
  // Cache the full payload, taxonomy keys included: a later hit on a failed
  // candidate reports the same _infeasible/_status data the first
  // evaluation did (the failure tally itself is recorded once, above).
  if (key) cache.insert(*key, x, {perf, performanceStatus(perf)});
  return perf;
}

}  // namespace amsyn::sizing
