#include "sizing/perfmodel.hpp"

#include "sim/stats.hpp"

namespace amsyn::sizing {

using core::EvalStatus;

Performance safeEvaluate(const PerformanceModel& model, const std::vector<double>& x) {
  Performance perf;
  try {
    perf = model.evaluate(x);
  } catch (...) {
    // A throwing candidate is infeasible data, not a fatal error: the
    // optimization loop must keep iterating past it (FRIDGE-style robust
    // cost evaluation).
    perf.clear();
    markInfeasible(perf, EvalStatus::InternalError);
    sim::recordEvalFailure(EvalStatus::InternalError);
    return perf;
  }
  for (const auto& [name, value] : perf) {
    if (std::isnan(value)) {
      markInfeasible(perf, EvalStatus::NanDetected);
      sim::recordEvalFailure(EvalStatus::NanDetected);
      break;
    }
  }
  return perf;
}

}  // namespace amsyn::sizing
