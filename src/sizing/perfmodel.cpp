#include "sizing/perfmodel.hpp"

#include <cmath>

#include "circuit/process.hpp"
#include "sim/stats.hpp"

namespace amsyn::sizing {

using core::EvalStatus;

namespace {

/// Feed one fresh evaluation to the surrogate store.  Training data is the
/// by-product of real evaluations only: feasible maps (the taxonomy keys
/// "_infeasible"/"_status" never become regression targets), fresh misses
/// (cache hits return before this point), and never pruned verdicts (the
/// prune path skips safeEvaluate entirely) — so the surrogate can never
/// train on its own predictions.
void observeSurrogate(core::surrogate::Store& store, const PerformanceModel& model,
                      const std::vector<double>& x, const Performance& perf) {
  if (store.mode() == core::surrogate::Mode::Off) return;
  if (perf.count("_infeasible")) return;
  const auto cand = surrogateCandidate(model, x);
  if (!cand) return;
  std::map<std::string, double> heads;
  for (const auto& [name, value] : perf)
    if (!name.empty() && name[0] != '_') heads.emplace(name, value);
  if (!heads.empty()) store.observe(*cand, heads);
}

}  // namespace

std::optional<core::surrogate::Candidate> surrogateCandidate(
    const PerformanceModel& model, const std::vector<double>& x) {
  const auto sig = model.surrogateSignature();
  if (!sig) return std::nullopt;
  const auto& vars = model.variables();
  if (x.size() != vars.size()) return std::nullopt;
  core::surrogate::Candidate c;
  core::cache::Hasher128 h;
  h.mixString("surrogate-class");
  h.mixDigest(sig->classKey);
  h.mix(1 + vars.size() + sig->context.size());
  c.classKey = h.digest();
  c.features.reserve(1 + vars.size() + sig->context.size());
  c.features.push_back(1.0);
  for (std::size_t i = 0; i < vars.size(); ++i) {
    const DesignVariable& v = vars[i];
    double t = 0.5;
    if (v.logScale && v.lo > 0.0 && v.hi > v.lo && x[i] > 0.0)
      t = std::log(x[i] / v.lo) / std::log(v.hi / v.lo);
    else if (v.hi > v.lo)
      t = (x[i] - v.lo) / (v.hi - v.lo);
    c.features.push_back(t);
  }
  c.features.insert(c.features.end(), sig->context.begin(), sig->context.end());
  return c;
}

std::vector<double> processSurrogateContext(const circuit::Process& proc) {
  // Order-1 scaling keeps the ridge problem well-conditioned next to the
  // unit-cube design coordinates.
  return {proc.vdd / 5.0,          proc.temperature / 300.0,
          proc.kpN * 1e4,          proc.kpP * 1e4,
          proc.vt0N,               proc.vt0P};
}

Performance safeEvaluate(const PerformanceModel& model, const std::vector<double>& x) {
  return safeEvaluate(model, x, core::ExecutionContext::current());
}

Performance safeEvaluate(const PerformanceModel& model, const std::vector<double>& x,
                         core::ExecutionContext& ctx) {
  // Memoized fast path: the cache sits here — below every hot consumer
  // (sizing::CostFunction, topology/genetic batches, manufacture corner
  // hunts all evaluate through safeEvaluate) — so one integration point
  // covers all three loops the paper's runtime analysis names.  Both the
  // cache and the surrogate store resolve through the execution context:
  // the shared process-wide instances by default, a tenant's private ones
  // when its context asked for isolation.
  auto& cache = ctx.evalCache();
  std::optional<core::cache::Digest128> key;
  if (cache.enabled()) {
    if (model.evalCost() == EvalCost::Cheap) {
      // Evaluation ~ lookup cost: skip the digest, the lookup, *and* the
      // insert (key stays nullopt below).  Counted so hit-rate math over
      // core.cache.* stays honest about what the cache never saw.
      cache.noteBypass();
    } else {
      key = model.cacheKey(x);
      if (key) {
        core::cache::CachedEval cached;
        if (cache.lookup(*key, x, cached)) return std::move(cached.performance);
      }
    }
  }

  Performance perf;
  try {
    perf = model.evaluate(x);
  } catch (...) {
    // A throwing candidate is infeasible data, not a fatal error: the
    // optimization loop must keep iterating past it (FRIDGE-style robust
    // cost evaluation).  out_of_memory verdicts are environmental, not a
    // property of the candidate, so they are never cached — the same point
    // may evaluate fine once the pressure subsides.
    const EvalStatus st = core::classifyCurrentException();
    perf.clear();
    markInfeasible(perf, st);
    sim::recordEvalFailure(st);
    if (key && st != EvalStatus::OutOfMemory) cache.insert(*key, x, {perf, st});
    return perf;
  }
  for (const auto& [name, value] : perf) {
    if (std::isnan(value)) {
      markInfeasible(perf, EvalStatus::NanDetected);
      sim::recordEvalFailure(EvalStatus::NanDetected);
      break;
    }
  }
  // Cache the full payload, taxonomy keys included: a later hit on a failed
  // candidate reports the same _infeasible/_status data the first
  // evaluation did (the failure tally itself is recorded once, above).
  if (key) cache.insert(*key, x, {perf, performanceStatus(perf)});
  observeSurrogate(ctx.surrogateStore(), model, x, perf);
  return perf;
}

}  // namespace amsyn::sizing
