#include "sizing/opamp.hpp"

namespace amsyn::sizing {

using circuit::MosType;
using circuit::Netlist;
using circuit::Process;

double opampCapArea(double farads) { return farads / 1e-3; }

void addOpampSupplies(Netlist& net, const Process& proc, double ibias, bool pmosDiode) {
  net.addVSource("VDD", "vdd", "0", proc.vdd);
  if (pmosDiode)
    net.addISource("IBIAS", "nbias", "0", ibias);
  else
    net.addISource("IBIAS", "vdd", "nbias", ibias);
}

void addOpampTestbench(Netlist& net, const OpampTestbench& tb) {
  net.addVSource("VINP", "inp", "0", tb.vicm, 1.0);  // AC stimulus
  if (tb.dcFeedback) {
    // DC feedback through a huge RC pins the operating point while staying
    // open-loop for any measurement frequency >= 1 Hz.  The weak divider to
    // VCM removes the second (latched, output-at-rail) DC solution the pure
    // RC feedback would otherwise admit: if the output sat at a rail, the
    // divider would hold inn near vicm and the amplifier would drive the
    // output back toward mid-rail — a contradiction.
    net.addVSource("VCM", "vcm", "0", tb.vicm);
    net.addResistor("RFB", "out", "inn", 1e9);
    net.addResistor("RHELP", "inn", "vcm", 1e6);
    net.addCapacitor("CFB", "inn", "0", 1.0);
  } else {
    net.addVSource("VINN", "inn", "0", tb.vicm, 0.0);
  }
  net.addCapacitor("CL", "out", "0", tb.loadCap);
}

double TwoStageParams::activeArea(const circuit::Process& proc) const {
  (void)proc;
  const double gates = 2 * w1 * l + 2 * w3 * l + w5 * l + w6 * l + w7 * l + w8 * l;
  return gates + opampCapArea(cc);
}

Netlist buildTwoStageOpamp(const TwoStageParams& p, const Process& proc,
                           const OpampTestbench& tb) {
  Netlist net;
  addOpampSupplies(net, proc, p.ibias);

  // First stage: NMOS differential pair with PMOS mirror load.
  net.addMos("M1", "n1", "inp", "tail", "0", MosType::Nmos, p.w1, p.l);
  net.addMos("M2", "no1", "inn", "tail", "0", MosType::Nmos, p.w1, p.l);
  net.addMos("M3", "n1", "n1", "vdd", "vdd", MosType::Pmos, p.w3, p.l);
  net.addMos("M4", "no1", "n1", "vdd", "vdd", MosType::Pmos, p.w3, p.l);
  net.addMos("M5", "tail", "nbias", "0", "0", MosType::Nmos, p.w5, p.l);

  // Second stage: PMOS common source with NMOS current-sink load.
  net.addMos("M6", "out", "no1", "vdd", "vdd", MosType::Pmos, p.w6, p.l);
  net.addMos("M7", "out", "nbias", "0", "0", MosType::Nmos, p.w7, p.l);

  // Bias diode.
  net.addMos("M8", "nbias", "nbias", "0", "0", MosType::Nmos, p.w8, p.l);

  // Miller compensation.
  net.addCapacitor("CC", "no1", "out", p.cc);

  addOpampTestbench(net, tb);
  return net;
}

double OtaParams::activeArea(const circuit::Process& proc) const {
  (void)proc;
  return 2 * w1 * l + 2 * w3 * l + w5 * l + w8 * l;
}

Netlist buildOta(const OtaParams& p, const Process& proc, const OpampTestbench& tb) {
  Netlist net;
  addOpampSupplies(net, proc, p.ibias);

  net.addMos("M1", "n1", "inp", "tail", "0", MosType::Nmos, p.w1, p.l);
  net.addMos("M2", "out", "inn", "tail", "0", MosType::Nmos, p.w1, p.l);
  net.addMos("M3", "n1", "n1", "vdd", "vdd", MosType::Pmos, p.w3, p.l);
  net.addMos("M4", "out", "n1", "vdd", "vdd", MosType::Pmos, p.w3, p.l);
  net.addMos("M5", "tail", "nbias", "0", "0", MosType::Nmos, p.w5, p.l);
  net.addMos("M8", "nbias", "nbias", "0", "0", MosType::Nmos, p.w8, p.l);

  addOpampTestbench(net, tb);
  return net;
}

}  // namespace amsyn::sizing
