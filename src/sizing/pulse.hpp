// Performance model of the Table-1 workload: a particle/pulse detector
// frontend made of a charge-sensitive amplifier (CSA) followed by a 4-stage
// pulse-shaping amplifier — the circuit synthesized by AMGIE [16] in the
// paper's reported experiment.  The physics-level design equations below
// (ENC noise decomposition, semi-Gaussian shaping, occupancy-limited
// counting rate) are the standard detector-frontend relations the K.U.
// Leuven tools encoded.
//
// Performances reported (matching Table 1's rows):
//   peaking_us    — shaper peaking time (spec: < 1.5 us)
//   counting_khz  — maximum counting rate (spec: > 200 kHz)
//   noise_e       — equivalent noise charge in rms electrons (spec: < 1000)
//   gain_v_fc     — conversion gain in V/fC (spec: 20)
//   range_v       — output range, +/- volts (spec: >= 1 V, i.e. -1..1)
//   power         — watts (objective: minimal; manual design: 40 mW)
//   area_mm2      — estimated layout area (objective: minimal; manual 0.7)
#pragma once

#include "circuit/process.hpp"
#include "sizing/perfmodel.hpp"

namespace amsyn::sizing {

struct PulseDetectorConfig {
  double detectorCap = 10e-12;   ///< detector capacitance at the CSA input (F)
  double leakageCurrent = 100e-9;///< detector leakage (parallel noise source)
  int shaperStages = 4;          ///< semi-Gaussian shaping order (paper: 4)
  double stageLoadCap = 15e-12;  ///< interstage load each shaper stage drives
  double shaperStageGain = 4.0;  ///< voltage gain per shaper stage
  /// Load at the CSA amplifier's internal node: with feedback cap Cf the
  /// charge-transfer time constant is Cdet*CcsaLoad/(gm1*Cf) — the term
  /// that makes real CSA frontends burn milliamps in the input device.
  double csaLoadCap = 2e-12;
};

/// Equation-based model of the pulse-detector frontend.
/// Variables: i_csa (CSA input-branch current), vov_csa, cf (feedback cap),
/// tau (shaper time constant), i_stage (per-shaper-stage current),
/// vov_stage.
class PulseDetectorModel : public PerformanceModel {
 public:
  PulseDetectorModel(const circuit::Process& proc, PulseDetectorConfig cfg = {});

  const std::vector<DesignVariable>& variables() const override { return vars_; }
  Performance evaluate(const std::vector<double>& x) const override;

  /// The encoded expert ("manual") design of Table 1: heavily over-margined
  /// currents that meet every spec with room to spare at ~40 mW.
  std::vector<double> manualDesign() const;

  const PulseDetectorConfig& config() const { return cfg_; }

 private:
  const circuit::Process& proc_;
  PulseDetectorConfig cfg_;
  std::vector<DesignVariable> vars_;
};

}  // namespace amsyn::sizing
