// Performance specifications.  A SpecSet is the input to every synthesis
// engine in amsyn — design plans check specs step by step, optimization
// engines compile them into a scalar cost (ASTRX-style), and the
// verification stage re-checks them against full simulation.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "core/evalcache.hpp"

namespace amsyn::sizing {

enum class SpecKind : std::uint8_t {
  GreaterEqual,  ///< perf >= bound (e.g. gain, phase margin)
  LessEqual,     ///< perf <= bound (e.g. power, noise, peaking time)
  Minimize,      ///< objective: smaller is better
  Maximize,      ///< objective: larger is better
};

struct Spec {
  std::string performance;  ///< measurement name, e.g. "gain_db", "power"
  SpecKind kind = SpecKind::GreaterEqual;
  double bound = 0.0;   ///< constraint bound (ignored for pure objectives)
  double weight = 1.0;  ///< relative importance in the scalar cost
  /// Normalization scale; 0 = auto (|bound| for constraints, 1 for
  /// objectives).  ASTRX calls this the "good value" that makes penalty
  /// terms commensurable.
  double norm = 0.0;

  double normalization() const;
  bool isObjective() const {
    return kind == SpecKind::Minimize || kind == SpecKind::Maximize;
  }
  /// Constraint violation in normalized units (0 when satisfied/objective).
  double violation(double value) const;
  std::string describe() const;
};

/// An ordered collection of specs with builder helpers.
class SpecSet {
 public:
  SpecSet& require(const std::string& perf, SpecKind kind, double bound, double weight = 1.0);
  SpecSet& atLeast(const std::string& perf, double bound, double weight = 1.0);
  SpecSet& atMost(const std::string& perf, double bound, double weight = 1.0);
  SpecSet& minimize(const std::string& perf, double weight = 1.0, double norm = 0.0);
  SpecSet& maximize(const std::string& perf, double weight = 1.0, double norm = 0.0);

  const std::vector<Spec>& specs() const { return specs_; }
  bool empty() const { return specs_.empty(); }

  /// All constraints satisfied by the given performance values?  Missing
  /// performances count as violations.
  bool satisfied(const std::map<std::string, double>& perf, double tolerance = 0.0) const;

  /// Total normalized violation across constraints.
  double totalViolation(const std::map<std::string, double>& perf) const;

  /// Canonical digest of the spec set, for evaluation-cache keys whose
  /// payload depends on the specs (e.g. manufacture::CornerSetModel, which
  /// aggregates a worst case *per spec*).  Declaration order is preserved
  /// deliberately: cost compilation sums penalty terms in spec order, so
  /// reordered specs are a genuinely different scalarization.
  core::cache::Digest128 digest() const;

 private:
  std::vector<Spec> specs_;
};

}  // namespace amsyn::sizing
