// Per-topology netlist builder registry: maps a topology name to the
// function that turns a design point (in that topology's equation-model
// coordinates) into a sized testbench netlist.  The flow's BuildStage
// resolves builders here instead of hard-coding an `if (topology == ...)`
// ladder, so adding a circuit class to the synthesis flow means adding a
// library entry plus one registration — no core changes.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "circuit/netlist.hpp"
#include "circuit/process.hpp"
#include "sizing/opamp.hpp"

namespace amsyn::sizing {

/// Build a sized testbench netlist for one topology from a design point in
/// that topology's equation-model variable order.  Builders must be
/// deterministic pure functions of (x, proc, tb).
using NetlistBuilder = std::function<circuit::Netlist(
    const std::vector<double>& x, const circuit::Process& proc,
    const OpampTestbench& tb)>;

class NetlistBuilderRegistry {
 public:
  /// The process-wide registry, pre-populated with the built-in amplifier
  /// topologies ("two-stage-miller", "five-transistor-ota").
  static NetlistBuilderRegistry& instance();

  /// Register (or replace) the builder for `topology`.  Call during
  /// startup/setup only: registration is not synchronized against flows
  /// concurrently resolving builders.
  void add(const std::string& topology, NetlistBuilder builder);

  /// Builder for `topology`, or nullptr when none is registered.
  const NetlistBuilder* find(const std::string& topology) const;

  /// Registered topology names, sorted.
  std::vector<std::string> topologies() const;

 private:
  NetlistBuilderRegistry();
  std::map<std::string, NetlistBuilder> builders_;
};

}  // namespace amsyn::sizing
