#include "sizing/pulse.hpp"

#include <cmath>
#include <stdexcept>

namespace amsyn::sizing {

namespace {
constexpr double kQ = 1.602176634e-19;  // electron charge
constexpr double kSeriesForm = 0.9;     // semi-Gaussian series-noise form factor
constexpr double kParallelForm = 0.6;   // parallel-noise form factor
constexpr double kFlickerForm = 2.0;
constexpr double kCsaLength = 1e-6;     // CSA input-device channel length
constexpr double kBiasOverhead = 20e-6; // bias branch current
constexpr double kLayoutOverhead = 330; // gate-area to placed-and-routed ratio
}  // namespace

PulseDetectorModel::PulseDetectorModel(const circuit::Process& proc, PulseDetectorConfig cfg)
    : proc_(proc), cfg_(cfg) {
  vars_ = {
      {"i_csa", 2e-6, 10e-3, true},       // CSA input branch current
      {"vov_csa", 0.10, 0.50, false},
      {"cf", 1e-15, 200e-15, true},       // CSA feedback capacitor
      {"tau", 0.05e-6, 0.5e-6, true},     // shaper time constant
      {"i_stage", 5e-6, 3e-3, true},      // per-stage shaper current
      {"vov_stage", 0.10, 0.50, false},
  };
}

Performance PulseDetectorModel::evaluate(const std::vector<double>& x) const {
  if (x.size() != vars_.size()) throw std::invalid_argument("PulseDetectorModel: dimension");
  const double iCsa = x[0], vovCsa = x[1], cf = x[2], tau = x[3];
  const double iStage = x[4], vovStage = x[5];
  const double n = static_cast<double>(cfg_.shaperStages);

  // CSA input device.
  const double gm1 = 2.0 * iCsa / vovCsa;
  const double w1 =
      std::max(proc_.minW, 2.0 * iCsa * kCsaLength / (proc_.kpN * vovCsa * vovCsa));
  const double cgs1 = (2.0 / 3.0) * proc_.cox * w1 * kCsaLength;
  const double cin = cfg_.detectorCap + cgs1;

  // Shaper stage lag: each stage must realize gain g at bandwidth 1/tau;
  // a weak stage adds its own time constant g*Cst/gm_st.
  const double gmSt = 2.0 * iStage / vovStage;
  const double tauStage = cfg_.shaperStageGain * cfg_.stageLoadCap / gmSt;

  // CSA charge-transfer time constant: the loop gain through Cf must slew
  // the detector charge onto the feedback cap; tau_csa = Cdet*Cload/(gm1*Cf)
  // is what actually forces big input-device transconductance (and hence
  // the milliwatts) in real pulse frontends.
  const double tauCsa = cfg_.detectorCap * cfg_.csaLoadCap / (gm1 * cf);

  // Semi-Gaussian peaking time: n shaping constants + CSA rise + stage lag.
  const double tShape = n * tau;
  const double tp = tShape + tauCsa + 3.0 * cin / gm1 + n * tauStage;

  // Occupancy-limited counting rate: a pulse occupies ~4.9 shaping spans
  // plus the CSA recovery.
  const double occupancy = 4.9 * (tShape + n * tauStage) + 2.0 * tauCsa + 2.0 * cin / gm1;

  // Equivalent noise charge (rms electrons): series (channel thermal),
  // parallel (detector leakage shot noise), 1/f.
  const double series2 =
      kSeriesForm * cin * cin * (4.0 * proc_.kT() * (2.0 / 3.0) / gm1) / tShape;
  const double parallel2 = kParallelForm * 2.0 * kQ * cfg_.leakageCurrent * tShape;
  const double flicker2 =
      kFlickerForm * (proc_.kfN / (proc_.cox * w1 * kCsaLength)) * cin * cin;
  const double encE = std::sqrt(series2 + parallel2 + flicker2) / kQ;

  // Conversion gain: Q/Cf through the shaper's gain and semi-Gaussian peak
  // factor n^n e^-n / n!.
  const double peakFactor = std::pow(n, n) * std::exp(-n) / std::tgamma(n + 1.0);
  const double shaperGain = std::pow(cfg_.shaperStageGain, n);
  const double gainVfC = (1e-15 / cf) * shaperGain * peakFactor;

  // Output range: stages run out of headroom at ~3 overdrives from mid-rail.
  const double rangeV = std::max(0.0, proc_.vdd / 2.0 - 3.0 * vovStage);

  const double power = proc_.vdd * (iCsa + n * iStage + kBiasOverhead);

  const double wStage = std::max(
      proc_.minW, 2.0 * iStage * kCsaLength / (proc_.kpN * vovStage * vovStage));
  const double gateArea = w1 * kCsaLength + n * wStage * kCsaLength;
  const double areaMm2 = 1e6 * kLayoutOverhead * gateArea + 0.08;

  Performance perf;
  perf["peaking_us"] = tp * 1e6;
  perf["counting_khz"] = 1e-3 / occupancy;
  perf["noise_e"] = encE;
  perf["gain_v_fc"] = gainVfC;
  perf["range_v"] = rangeV;
  perf["power"] = power;
  perf["area_mm2"] = areaMm2;
  return perf;
}

std::vector<double> PulseDetectorModel::manualDesign() const {
  // The encoded expert solution: big currents everywhere for comfortable
  // margins — 40 mW, ENC well under budget, exactly the Table-1 "manual"
  // column's character.
  return {4e-3, 0.20, 2.5e-15, 0.20e-6, 1e-3, 0.50};
}

}  // namespace amsyn::sizing
