// Minimal SPICE-deck parser.  Supports the element cards needed by the
// examples and tests (R, C, L, V, I, E, G, M, D) with engineering-notation
// suffixes, comments, and .end.  This is a convenience frontend to the
// Netlist builders, not a full SPICE dialect.
#pragma once

#include <string>

#include "circuit/netlist.hpp"

namespace amsyn::circuit {

/// Parse "1.5k", "10u", "2meg", "3e-12" etc. into a double.
/// Throws std::invalid_argument on malformed input.
double parseValue(const std::string& token);

/// Parse a SPICE-like deck into a netlist.  Recognized cards:
///   R/C/L name n1 n2 value
///   V/I  name n+ n- [DC val] [AC mag]
///   E/G  name out+ out- in+ in- gain
///   M    name d g s b NMOS|PMOS W=... L=... [M=...]
///   D    name anode cathode [IS=...]
/// Lines starting with '*' are comments; text after ';' is ignored;
/// parsing stops at ".end".  Card letters are case-insensitive.
Netlist parseDeck(const std::string& deck);

}  // namespace amsyn::circuit
