#include "circuit/parser.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <stdexcept>

namespace amsyn::circuit {

namespace {

std::string lower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return s;
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream ss(line);
  std::string tok;
  while (ss >> tok) {
    if (tok[0] == ';') break;
    out.push_back(tok);
  }
  return out;
}

/// Split "W=10u" into {"w", "10u"}; returns false if not key=value.
bool splitKeyValue(const std::string& tok, std::string& key, std::string& val) {
  const auto eq = tok.find('=');
  if (eq == std::string::npos) return false;
  key = lower(tok.substr(0, eq));
  val = tok.substr(eq + 1);
  return true;
}

}  // namespace

double parseValue(const std::string& token) {
  const std::string t = lower(token);
  std::size_t pos = 0;
  double base;
  try {
    base = std::stod(t, &pos);
  } catch (const std::exception&) {
    throw std::invalid_argument("parseValue: not a number: " + token);
  }
  const std::string suffix = t.substr(pos);
  if (suffix.empty()) return base;
  // SPICE semantics: an optional scale factor, then an arbitrary alphabetic
  // unit tail that is ignored ("2.5v" = 2.5, "100mhz" = 0.1 since m is
  // milli, "1kohm" = 1e3).  "meg" must be matched before "m": "1megohm" is
  // 1e6 while "1mohm" is 1e-3.  A first letter that is not a scale factor
  // starts a pure unit ("2.5v"), scale 1.
  double scale = 1.0;
  std::size_t consumed = 0;
  if (suffix.rfind("meg", 0) == 0) {
    scale = 1e6;
    consumed = 3;
  } else {
    switch (suffix[0]) {
      case 'f': scale = 1e-15; consumed = 1; break;
      case 'p': scale = 1e-12; consumed = 1; break;
      case 'n': scale = 1e-9; consumed = 1; break;
      case 'u': scale = 1e-6; consumed = 1; break;
      case 'm': scale = 1e-3; consumed = 1; break;
      case 'k': scale = 1e3; consumed = 1; break;
      case 'g': scale = 1e9; consumed = 1; break;
      case 't': scale = 1e12; consumed = 1; break;
      default: break;  // pure unit tail, e.g. "v" or "ohm"
    }
  }
  const std::string tail = suffix.substr(consumed);
  const bool tailIsUnit = std::all_of(tail.begin(), tail.end(), [](unsigned char c) {
    return std::isalpha(c) != 0;
  });
  if (!tailIsUnit)
    throw std::invalid_argument("parseValue: unknown suffix in " + token);
  return base * scale;
}

Netlist parseDeck(const std::string& deck) {
  Netlist net;
  std::istringstream lines(deck);
  std::string line;
  std::size_t lineNo = 0;
  while (std::getline(lines, line)) {
    ++lineNo;
    const auto toks = tokenize(line);
    if (toks.empty() || toks[0][0] == '*') continue;
    const std::string card = lower(toks[0]);
    if (card == ".end") break;
    if (card[0] == '.') continue;  // other directives ignored

    auto need = [&](std::size_t n) {
      if (toks.size() < n)
        throw std::invalid_argument("parse error line " + std::to_string(lineNo) + ": " + line);
    };

    switch (card[0]) {
      case 'r':
        need(4);
        net.addResistor(toks[0], toks[1], toks[2], parseValue(toks[3]));
        break;
      case 'c':
        need(4);
        net.addCapacitor(toks[0], toks[1], toks[2], parseValue(toks[3]));
        break;
      case 'l':
        need(4);
        net.addInductor(toks[0], toks[1], toks[2], parseValue(toks[3]));
        break;
      case 'v':
      case 'i': {
        need(3);
        double dc = 0.0, ac = 0.0;
        for (std::size_t k = 3; k < toks.size(); ++k) {
          const std::string kw = lower(toks[k]);
          if (kw == "dc" && k + 1 < toks.size()) {
            dc = parseValue(toks[++k]);
          } else if (kw == "ac" && k + 1 < toks.size()) {
            ac = parseValue(toks[++k]);
          } else {
            dc = parseValue(toks[k]);  // bare value means DC
          }
        }
        if (card[0] == 'v')
          net.addVSource(toks[0], toks[1], toks[2], dc, ac);
        else
          net.addISource(toks[0], toks[1], toks[2], dc, ac);
        break;
      }
      case 'e':
        need(6);
        net.addVcvs(toks[0], toks[1], toks[2], toks[3], toks[4], parseValue(toks[5]));
        break;
      case 'g':
        need(6);
        net.addVccs(toks[0], toks[1], toks[2], toks[3], toks[4], parseValue(toks[5]));
        break;
      case 'm': {
        need(6);
        const std::string typeTok = lower(toks[5]);
        MosType type;
        if (typeTok == "nmos")
          type = MosType::Nmos;
        else if (typeTok == "pmos")
          type = MosType::Pmos;
        else
          throw std::invalid_argument("line " + std::to_string(lineNo) +
                                      ": unknown MOS model " + toks[5]);
        double w = 0, l = 0;
        int m = 1;
        for (std::size_t k = 6; k < toks.size(); ++k) {
          std::string key, val;
          if (!splitKeyValue(toks[k], key, val)) continue;
          if (key == "w") w = parseValue(val);
          else if (key == "l") l = parseValue(val);
          else if (key == "m") m = static_cast<int>(parseValue(val));
        }
        if (w <= 0 || l <= 0)
          throw std::invalid_argument("line " + std::to_string(lineNo) + ": MOS needs W= and L=");
        net.addMos(toks[0], toks[1], toks[2], toks[3], toks[4], type, w, l, m);
        break;
      }
      case 'd': {
        need(3);
        double isat = 1e-14;
        for (std::size_t k = 3; k < toks.size(); ++k) {
          std::string key, val;
          if (splitKeyValue(toks[k], key, val) && key == "is") isat = parseValue(val);
        }
        net.addDiode(toks[0], toks[1], toks[2], isat);
        break;
      }
      default:
        throw std::invalid_argument("line " + std::to_string(lineNo) + ": unknown card " +
                                    toks[0]);
    }
  }
  return net;
}

}  // namespace amsyn::circuit
