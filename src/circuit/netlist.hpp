// Circuit netlist intermediate representation.  This is the hub of the whole
// system: the frontend sizes it, the simulator analyzes it, the symbolic tool
// linearizes it, and the backend lays it out.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "circuit/process.hpp"

namespace amsyn::circuit {

using NodeId = std::uint32_t;
inline constexpr NodeId kGround = 0;

enum class DeviceType : std::uint8_t {
  Resistor,
  Capacitor,
  Inductor,
  VSource,
  ISource,
  Vcvs,  ///< voltage-controlled voltage source (E)
  Vccs,  ///< voltage-controlled current source (G)
  Mos,
  Diode,
};

enum class MosType : std::uint8_t { Nmos, Pmos };

/// Transient stimulus attached to an independent source.
struct Waveform {
  enum class Kind : std::uint8_t { Dc, Pulse, Sine, PiecewiseLinear } kind = Kind::Dc;
  // Pulse: v1 -> v2 after delay, with rise/fall/width/period.
  double v1 = 0, v2 = 0, delay = 0, rise = 1e-9, fall = 1e-9, width = 1e-6, period = 2e-6;
  // Sine: offset + amplitude * sin(2 pi freq (t - delay)).
  double offset = 0, amplitude = 0, frequency = 1e3;
  // PWL points (t, v), sorted by t.
  std::vector<std::pair<double, double>> points;

  /// Instantaneous value at time t (>= 0).
  double at(double t) const;
};

struct MosParams {
  MosType type = MosType::Nmos;
  double w = 10e-6;  ///< channel width (m)
  double l = 1e-6;   ///< channel length (m)
  int m = 1;         ///< parallel multiplicity
  double vtShift = 0.0;    ///< threshold shift for mismatch/corner studies (V)
  double betaScale = 1.0;  ///< transconductance-factor scale for mismatch/corners
};

struct Device {
  DeviceType type = DeviceType::Resistor;
  std::string name;
  /// Terminal nodes. R/C/L/V/I: {a, b}; E/G: {out+, out-, ctrl+, ctrl-};
  /// MOS: {d, g, s, b}; Diode: {anode, cathode}.
  std::vector<NodeId> nodes;
  /// Primary value: ohms / farads / henries / volts / amps / gain.
  double value = 0.0;
  double acMag = 0.0;    ///< ac stimulus magnitude for V/I sources
  Waveform waveform;     ///< transient stimulus for V/I sources
  MosParams mos;         ///< valid when type == Mos
  double diodeIs = 1e-14;  ///< diode saturation current
};

/// Flat netlist with named nodes.  Node 0 is always ground ("0" / "gnd").
class Netlist {
 public:
  Netlist();

  /// Get-or-create a node by name.  "0" and "gnd" alias ground.
  NodeId node(const std::string& name);
  /// Lookup without creating; nullopt if unknown.
  std::optional<NodeId> findNode(const std::string& name) const;
  const std::string& nodeName(NodeId id) const { return nodeNames_.at(id); }
  std::size_t nodeCount() const { return nodeNames_.size(); }

  const std::vector<Device>& devices() const { return devices_; }
  std::vector<Device>& devices() { return devices_; }
  const Device& device(const std::string& name) const;
  Device* findDevice(const std::string& name);

  // --- builders ---
  Device& addResistor(const std::string& name, const std::string& a, const std::string& b,
                      double ohms);
  Device& addCapacitor(const std::string& name, const std::string& a, const std::string& b,
                       double farads);
  Device& addInductor(const std::string& name, const std::string& a, const std::string& b,
                      double henries);
  Device& addVSource(const std::string& name, const std::string& plus, const std::string& minus,
                     double dc, double acMag = 0.0);
  Device& addISource(const std::string& name, const std::string& from, const std::string& to,
                     double dc, double acMag = 0.0);
  Device& addVcvs(const std::string& name, const std::string& outP, const std::string& outM,
                  const std::string& inP, const std::string& inM, double gain);
  Device& addVccs(const std::string& name, const std::string& outP, const std::string& outM,
                  const std::string& inP, const std::string& inM, double gm);
  Device& addMos(const std::string& name, const std::string& d, const std::string& g,
                 const std::string& s, const std::string& b, MosType type, double w, double l,
                 int m = 1);
  Device& addDiode(const std::string& name, const std::string& anode,
                   const std::string& cathode, double isat = 1e-14);

  /// Number of independent voltage-source-like branches (V sources + VCVS +
  /// inductors), i.e. the extra MNA unknowns.
  std::size_t branchCount() const;

  /// All device names attached to a node.
  std::vector<std::string> devicesOnNode(NodeId n) const;

  /// Total MOS gate area (used as a crude active-area estimate).
  double totalGateArea() const;

 private:
  Device& add(Device d);
  std::vector<std::string> nodeNames_;
  std::map<std::string, NodeId> byName_;
  std::vector<Device> devices_;
};

}  // namespace amsyn::circuit
