#include "circuit/mosmodel.hpp"

#include <algorithm>
#include <cmath>

namespace amsyn::circuit {

MosOp evalMos(const MosParams& p, const Process& proc, double vd, double vg, double vs,
              double vb) {
  const bool isN = p.type == MosType::Nmos;
  // Map PMOS onto the NMOS equations by flipping all voltages.
  const double sgn = isN ? 1.0 : -1.0;
  double vds = sgn * (vd - vs);
  double vgs = sgn * (vg - vs);
  double vbs = sgn * (vb - vs);

  // Source/drain swap so vds >= 0 (the model is symmetric).
  bool swapped = false;
  if (vds < 0) {
    vgs = vgs - vds;  // becomes vgd
    vbs = vbs - vds;  // becomes vbd
    vds = -vds;
    swapped = true;
  }

  const double kp = (isN ? proc.kpN : proc.kpP) * p.betaScale;
  const double vt0 = std::abs(isN ? proc.vt0N : proc.vt0P) + p.vtShift;
  const double gamma = isN ? proc.gammaN : proc.gammaP;
  const double lambda = (isN ? proc.lambdaN : proc.lambdaP) * (1e-6 / p.l);
  const double beta = kp * (p.w * p.m) / p.l;

  MosOp op;
  // Body effect: vth = vt0 + gamma (sqrt(phi - vbs) - sqrt(phi)); clamp the
  // junction to weak forward bias to keep the sqrt real.
  const double phi = proc.phiF2;
  const double sb = std::sqrt(std::max(phi - vbs, 0.05));
  op.vth = vt0 + gamma * (sb - std::sqrt(phi));
  op.vov = vgs - op.vth;

  if (op.vov <= 0) {
    op.region = MosRegion::Cutoff;
    // Tiny subthreshold-ish leak keeps Newton Jacobians nonsingular.
    const double gLeak = 1e-12;
    op.ids = gLeak * vds;
    op.gds = gLeak;
    op.gm = 0.0;
    op.gmb = 0.0;
  } else if (vds < op.vov) {
    op.region = MosRegion::Triode;
    const double clm = 1.0 + lambda * vds;
    op.ids = beta * (op.vov * vds - 0.5 * vds * vds) * clm;
    op.gm = beta * vds * clm;
    op.gds = beta * (op.vov - vds) * clm + beta * (op.vov * vds - 0.5 * vds * vds) * lambda;
    op.gmb = op.gm * gamma / (2.0 * sb);
  } else {
    op.region = MosRegion::Saturation;
    const double clm = 1.0 + lambda * vds;
    op.ids = 0.5 * beta * op.vov * op.vov * clm;
    op.gm = beta * op.vov * clm;
    op.gds = 0.5 * beta * op.vov * op.vov * lambda;
    op.gmb = op.gm * gamma / (2.0 * sb);
  }

  // Intrinsic + overlap capacitances (Meyer-style partition).
  const double w = p.w * p.m;
  const double cOxTot = proc.cox * w * p.l;
  const double cOv = proc.covPerW * w;
  switch (op.region) {
    case MosRegion::Cutoff:
      op.cgb = cOxTot;
      op.cgs = cOv;
      op.cgd = cOv;
      break;
    case MosRegion::Triode:
      op.cgs = 0.5 * cOxTot + cOv;
      op.cgd = 0.5 * cOxTot + cOv;
      op.cgb = 0.0;
      break;
    case MosRegion::Saturation:
      op.cgs = (2.0 / 3.0) * cOxTot + cOv;
      op.cgd = cOv;
      op.cgb = 0.0;
      break;
  }
  // Junction caps from a default drain/source diffusion geometry
  // (width x 5 lambda strip).
  const double diffLen = 5.0 * proc.lambda;
  const double aj = w * diffLen;
  const double pj = 2.0 * (w + diffLen);
  op.cdb = proc.cjArea * aj + proc.cjPerim * pj;
  op.csb = op.cdb;

  // Undo source/drain swap for the current direction; small-signal
  // conductances are symmetric enough at the accuracy level of this model.
  if (swapped) op.ids = -op.ids;
  // Restore current sign convention for PMOS (ids flows source->drain).
  op.ids *= sgn;
  return op;
}

double mosNoisePsd(const MosParams& p, const Process& proc, const MosOp& op, double f) {
  const bool isN = p.type == MosType::Nmos;
  const double thermal = 4.0 * proc.kT() * (2.0 / 3.0) * std::max(op.gm, 0.0);
  const double kf = isN ? proc.kfN : proc.kfP;
  const double w = p.w * p.m;
  const double flicker =
      kf * std::pow(std::abs(op.ids), proc.afExp) / (proc.cox * w * p.l * std::max(f, 1.0));
  return thermal + flicker;
}

}  // namespace amsyn::circuit
