// Canonical (declaration-order-independent) digests of circuit objects —
// the netlist and process components of the evaluation-cache candidate key
// (core/evalcache.hpp).
//
// Canonical form: a netlist is hashed as the *sorted multiset* of its
// devices' electrical records.  Each record covers the device type, the
// terminal node NAMES in terminal order, and every electrically meaningful
// parameter (value, AC magnitude, waveform, MOS geometry, diode Is) — but
// NOT the device's own name or its declaration index.  Node identity is the
// node name, never the NodeId (ids are assigned in declaration order).
// Consequences, proven by the hash property tests in
// tests/property_test.cpp:
//   * reordering device or node declarations leaves the digest unchanged;
//   * renaming a device leaves the digest unchanged (electrical identity);
//   * identical parallel devices are preserved (multiset, not set);
//   * any electrical change — one resistor value, one MOS width — changes
//     the digest;
//   * renaming a NODE changes the digest by design: node names are
//     semantic anchors (testbench output nodes, supply names), not
//     arbitrary labels, and graph-canonical relabeling is out of scope.
#pragma once

#include "circuit/netlist.hpp"
#include "circuit/process.hpp"
#include "core/evalcache.hpp"

namespace amsyn::circuit {

/// Digest of one device's electrical record (no name, node names for ids).
core::cache::Digest128 canonicalDeviceDigest(const Netlist& net, const Device& d);

/// Canonical digest of a whole netlist (sorted device-record multiset).
core::cache::Digest128 canonicalNetlistDigest(const Netlist& net);

/// Mix every electrical/lithographic Process parameter into `h` in a fixed
/// field order (corner instances differ from nominal in exactly these).
void hashProcess(core::cache::Hasher128& h, const Process& p);

}  // namespace amsyn::circuit
