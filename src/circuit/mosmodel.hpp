// Square-law (SPICE level-1) MOS model with channel-length modulation and
// body effect.  Synthesis loops need millions of cheap, smooth evaluations
// far more than they need BSIM accuracy; level 1 is exactly what the
// surveyed 1990s tools (IDAC, OASYS, OPASYN, ASTRX/OBLX) designed against.
#pragma once

#include "circuit/netlist.hpp"
#include "circuit/process.hpp"

namespace amsyn::circuit {

enum class MosRegion : std::uint8_t { Cutoff, Triode, Saturation };

/// Operating-point evaluation of one MOS device.
struct MosOp {
  MosRegion region = MosRegion::Cutoff;
  double ids = 0.0;   ///< drain current, positive into drain for NMOS (A)
  double vth = 0.0;   ///< effective threshold incl. body effect (V)
  double vov = 0.0;   ///< overdrive |vgs| - |vth| (V, can be negative)
  double gm = 0.0;    ///< d ids / d vgs (A/V)
  double gds = 0.0;   ///< d ids / d vds (A/V)
  double gmb = 0.0;   ///< d ids / d vbs (A/V)
  double cgs = 0.0, cgd = 0.0, cgb = 0.0;  ///< intrinsic + overlap caps (F)
  double cdb = 0.0, csb = 0.0;             ///< junction caps (F)
};

/// Evaluate the model at terminal voltages (vd, vg, vs, vb), all referenced
/// to ground.  PMOS handled by internal sign symmetry.
MosOp evalMos(const MosParams& p, const Process& proc, double vd, double vg, double vs,
              double vb);

/// Thermal + flicker drain-noise current PSD (A^2/Hz) at frequency f.
double mosNoisePsd(const MosParams& p, const Process& proc, const MosOp& op, double f);

}  // namespace amsyn::circuit
