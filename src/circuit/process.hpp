// Synthetic CMOS process description.  Every tool in amsyn reads technology
// data through this one struct, mirroring how era tools (IDAC, OASYS, KOAN)
// isolated process knowledge so designs could retarget.  Default values model
// a generic 0.8 um double-metal CMOS similar to the processes the surveyed
// systems were demonstrated on.
#pragma once

#include <cstdint>

namespace amsyn::circuit {

/// Electrical + lithographic process parameters.  Lengths in meters unless
/// noted; layout rules in integer lambda (the geometry grid is lambda/4).
struct Process {
  // --- supplies / environment ---
  double vdd = 5.0;
  double temperature = 300.15;  ///< K

  // --- MOS level-1 parameters (NMOS / PMOS) ---
  double kpN = 120e-6;   ///< uA/V^2 transconductance factor, NMOS
  double kpP = 40e-6;    ///< PMOS
  double vt0N = 0.75;    ///< zero-bias threshold, NMOS (V)
  double vt0P = -0.85;   ///< PMOS (V, negative)
  double lambdaN = 0.06; ///< channel-length modulation at L = 1 um (1/V); scales ~1/L
  double lambdaP = 0.09;
  double gammaN = 0.45;  ///< body-effect coefficient (sqrt(V))
  double gammaP = 0.40;
  double phiF2 = 0.65;   ///< 2*phi_F surface potential (V)
  double cox = 2.1e-3;   ///< gate-oxide capacitance (F/m^2)
  double covPerW = 3.0e-10;  ///< gate-drain/source overlap cap per width (F/m)
  double cjArea = 3.0e-4;    ///< junction cap per area (F/m^2)
  double cjPerim = 2.5e-10;  ///< junction sidewall cap per perimeter (F/m)
  double kfN = 3e-26;    ///< flicker-noise coefficient, NMOS
  double kfP = 1e-26;
  double afExp = 1.0;    ///< flicker-noise current exponent

  // --- matching (Pelgrom) coefficients ---
  double avt = 12e-9;    ///< sigma(dVT) = avt / sqrt(W*L)  (V*m)
  double abeta = 0.02e-6;///< sigma(dBeta/Beta) = abeta / sqrt(W*L) (m)

  // --- minimum feature sizes ---
  double minL = 0.8e-6;  ///< minimum channel length (m)
  double minW = 1.6e-6;  ///< minimum channel width (m)
  double lambda = 0.4e-6;///< layout lambda (m); geometry grid is lambda/4

  // --- interconnect electricals ---
  double rsPoly = 25.0;    ///< sheet resistance (ohm/sq)
  double rsMetal1 = 0.07;
  double rsMetal2 = 0.04;
  double rsDiff = 50.0;
  double rContact = 8.0;   ///< ohms per contact/via cut
  double caPoly = 6.0e-5;  ///< area cap to substrate (F/m^2)
  double caMetal1 = 3.0e-5;
  double caMetal2 = 2.0e-5;
  double cfPoly = 4.0e-11; ///< fringe cap per edge length (F/m)
  double cfMetal1 = 5.0e-11;
  double cfMetal2 = 4.5e-11;
  double ccAdjacent = 6.0e-11;  ///< same-layer coupling per length at min spacing (F/m)
  double jMaxMetal = 1.0e9;     ///< electromigration current-density limit (A/m^2-ish, per unit width*thickness lump)
  double metalThickness = 0.8e-6;

  // --- layout design rules, in lambda ---
  int ruleMinWidth = 3;       ///< min wire width
  int ruleMinSpacing = 3;     ///< min same-layer spacing
  int ruleContactSize = 2;
  int ruleGateExtension = 2;  ///< poly past diffusion
  int ruleDiffContactEnclosure = 1;
  int ruleWellEnclosure = 5;

  /// Boltzmann * T (J), used in noise computations.
  double kT() const { return 1.380649e-23 * temperature; }
};

/// The default process used by all examples, tests, and benches.
const Process& defaultProcess();

}  // namespace amsyn::circuit
