#include "circuit/process.hpp"

namespace amsyn::circuit {

const Process& defaultProcess() {
  static const Process p{};
  return p;
}

}  // namespace amsyn::circuit
