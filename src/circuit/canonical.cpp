#include "circuit/canonical.hpp"

#include <algorithm>

namespace amsyn::circuit {

using core::cache::Digest128;
using core::cache::Hasher128;

core::cache::Digest128 canonicalDeviceDigest(const Netlist& net, const Device& d) {
  Hasher128 h;
  h.mix(static_cast<std::uint64_t>(d.type));
  h.mix(d.nodes.size());
  for (NodeId n : d.nodes) h.mixString(net.nodeName(n));
  h.mixDouble(d.value);
  h.mixDouble(d.acMag);
  // Waveform: only sources carry one, but the default-constructed fields
  // hash identically everywhere, so mixing unconditionally stays canonical.
  const Waveform& w = d.waveform;
  h.mix(static_cast<std::uint64_t>(w.kind));
  h.mixDouble(w.v1).mixDouble(w.v2).mixDouble(w.delay).mixDouble(w.rise);
  h.mixDouble(w.fall).mixDouble(w.width).mixDouble(w.period);
  h.mixDouble(w.offset).mixDouble(w.amplitude).mixDouble(w.frequency);
  h.mix(w.points.size());
  for (const auto& [t, v] : w.points) h.mixDouble(t).mixDouble(v);
  if (d.type == DeviceType::Mos) {
    h.mix(static_cast<std::uint64_t>(d.mos.type));
    h.mixDouble(d.mos.w).mixDouble(d.mos.l);
    h.mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(d.mos.m)));
    h.mixDouble(d.mos.vtShift).mixDouble(d.mos.betaScale);
  }
  if (d.type == DeviceType::Diode) h.mixDouble(d.diodeIs);
  return h.digest();
}

core::cache::Digest128 canonicalNetlistDigest(const Netlist& net) {
  std::vector<Digest128> records;
  records.reserve(net.devices().size());
  for (const Device& d : net.devices()) records.push_back(canonicalDeviceDigest(net, d));
  // Sorting the per-device digests is what erases declaration order while
  // keeping duplicates (parallel devices) distinct contributions.
  std::sort(records.begin(), records.end());
  Hasher128 h;
  h.mixString("netlist");
  h.mix(records.size());
  for (const Digest128& r : records) h.mixDigest(r);
  return h.digest();
}

void hashProcess(core::cache::Hasher128& h, const Process& p) {
  h.mixString("process");
  h.mixDouble(p.vdd).mixDouble(p.temperature);
  h.mixDouble(p.kpN).mixDouble(p.kpP).mixDouble(p.vt0N).mixDouble(p.vt0P);
  h.mixDouble(p.lambdaN).mixDouble(p.lambdaP).mixDouble(p.gammaN).mixDouble(p.gammaP);
  h.mixDouble(p.phiF2).mixDouble(p.cox).mixDouble(p.covPerW);
  h.mixDouble(p.cjArea).mixDouble(p.cjPerim);
  h.mixDouble(p.kfN).mixDouble(p.kfP).mixDouble(p.afExp);
  h.mixDouble(p.avt).mixDouble(p.abeta);
  h.mixDouble(p.minL).mixDouble(p.minW).mixDouble(p.lambda);
  h.mixDouble(p.rsPoly).mixDouble(p.rsMetal1).mixDouble(p.rsMetal2).mixDouble(p.rsDiff);
  h.mixDouble(p.rContact);
  h.mixDouble(p.caPoly).mixDouble(p.caMetal1).mixDouble(p.caMetal2);
  h.mixDouble(p.cfPoly).mixDouble(p.cfMetal1).mixDouble(p.cfMetal2);
  h.mixDouble(p.ccAdjacent).mixDouble(p.jMaxMetal).mixDouble(p.metalThickness);
  h.mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(p.ruleMinWidth)));
  h.mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(p.ruleMinSpacing)));
  h.mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(p.ruleContactSize)));
  h.mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(p.ruleGateExtension)));
  h.mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(p.ruleDiffContactEnclosure)));
  h.mix(static_cast<std::uint64_t>(static_cast<std::int64_t>(p.ruleWellEnclosure)));
}

}  // namespace amsyn::circuit
