#include "circuit/netlist.hpp"

#include <cmath>
#include <stdexcept>

namespace amsyn::circuit {

double Waveform::at(double t) const {
  switch (kind) {
    case Kind::Dc:
      return v1;
    case Kind::Pulse: {
      if (t < delay) return v1;
      double tc = std::fmod(t - delay, period);
      if (tc < rise) return v1 + (v2 - v1) * tc / rise;
      tc -= rise;
      if (tc < width) return v2;
      tc -= width;
      if (tc < fall) return v2 + (v1 - v2) * tc / fall;
      return v1;
    }
    case Kind::Sine:
      if (t < delay) return offset;
      return offset + amplitude * std::sin(2.0 * M_PI * frequency * (t - delay));
    case Kind::PiecewiseLinear: {
      if (points.empty()) return 0.0;
      if (t <= points.front().first) return points.front().second;
      for (std::size_t i = 1; i < points.size(); ++i) {
        if (t <= points[i].first) {
          const auto& [t0, v0] = points[i - 1];
          const auto& [t1, vv1] = points[i];
          const double f = (t - t0) / (t1 - t0);
          return v0 + f * (vv1 - v0);
        }
      }
      return points.back().second;
    }
  }
  return 0.0;
}

Netlist::Netlist() {
  nodeNames_.push_back("0");
  byName_["0"] = kGround;
  byName_["gnd"] = kGround;
}

NodeId Netlist::node(const std::string& name) {
  auto it = byName_.find(name);
  if (it != byName_.end()) return it->second;
  const NodeId id = static_cast<NodeId>(nodeNames_.size());
  nodeNames_.push_back(name);
  byName_[name] = id;
  return id;
}

std::optional<NodeId> Netlist::findNode(const std::string& name) const {
  auto it = byName_.find(name);
  if (it == byName_.end()) return std::nullopt;
  return it->second;
}

const Device& Netlist::device(const std::string& name) const {
  for (const Device& d : devices_)
    if (d.name == name) return d;
  throw std::out_of_range("Netlist::device: no device named " + name);
}

Device* Netlist::findDevice(const std::string& name) {
  for (Device& d : devices_)
    if (d.name == name) return &d;
  return nullptr;
}

Device& Netlist::add(Device d) {
  devices_.push_back(std::move(d));
  return devices_.back();
}

Device& Netlist::addResistor(const std::string& name, const std::string& a,
                             const std::string& b, double ohms) {
  if (ohms <= 0) throw std::invalid_argument("resistor " + name + ": non-positive value");
  return add(Device{DeviceType::Resistor, name, {node(a), node(b)}, ohms, 0, {}, {}, 0});
}

Device& Netlist::addCapacitor(const std::string& name, const std::string& a,
                              const std::string& b, double farads) {
  if (farads < 0) throw std::invalid_argument("capacitor " + name + ": negative value");
  return add(Device{DeviceType::Capacitor, name, {node(a), node(b)}, farads, 0, {}, {}, 0});
}

Device& Netlist::addInductor(const std::string& name, const std::string& a,
                             const std::string& b, double henries) {
  if (henries <= 0) throw std::invalid_argument("inductor " + name + ": non-positive value");
  return add(Device{DeviceType::Inductor, name, {node(a), node(b)}, henries, 0, {}, {}, 0});
}

Device& Netlist::addVSource(const std::string& name, const std::string& plus,
                            const std::string& minus, double dc, double acMag) {
  Device d{DeviceType::VSource, name, {node(plus), node(minus)}, dc, acMag, {}, {}, 0};
  d.waveform.v1 = dc;
  return add(std::move(d));
}

Device& Netlist::addISource(const std::string& name, const std::string& from,
                            const std::string& to, double dc, double acMag) {
  Device d{DeviceType::ISource, name, {node(from), node(to)}, dc, acMag, {}, {}, 0};
  d.waveform.v1 = dc;
  return add(std::move(d));
}

Device& Netlist::addVcvs(const std::string& name, const std::string& outP,
                         const std::string& outM, const std::string& inP,
                         const std::string& inM, double gain) {
  return add(Device{DeviceType::Vcvs, name,
                    {node(outP), node(outM), node(inP), node(inM)}, gain, 0, {}, {}, 0});
}

Device& Netlist::addVccs(const std::string& name, const std::string& outP,
                         const std::string& outM, const std::string& inP,
                         const std::string& inM, double gm) {
  return add(Device{DeviceType::Vccs, name,
                    {node(outP), node(outM), node(inP), node(inM)}, gm, 0, {}, {}, 0});
}

Device& Netlist::addMos(const std::string& name, const std::string& d, const std::string& g,
                        const std::string& s, const std::string& b, MosType type, double w,
                        double l, int m) {
  if (w <= 0 || l <= 0 || m < 1) throw std::invalid_argument("MOS " + name + ": bad geometry");
  Device dev{DeviceType::Mos, name, {node(d), node(g), node(s), node(b)}, 0, 0, {}, {}, 0};
  dev.mos = MosParams{type, w, l, m, 0.0, 1.0};
  return add(std::move(dev));
}

Device& Netlist::addDiode(const std::string& name, const std::string& anode,
                          const std::string& cathode, double isat) {
  Device dev{DeviceType::Diode, name, {node(anode), node(cathode)}, 0, 0, {}, {}, isat};
  return add(std::move(dev));
}

std::size_t Netlist::branchCount() const {
  std::size_t n = 0;
  for (const Device& d : devices_)
    if (d.type == DeviceType::VSource || d.type == DeviceType::Vcvs ||
        d.type == DeviceType::Inductor)
      ++n;
  return n;
}

std::vector<std::string> Netlist::devicesOnNode(NodeId n) const {
  std::vector<std::string> out;
  for (const Device& d : devices_)
    for (NodeId t : d.nodes)
      if (t == n) {
        out.push_back(d.name);
        break;
      }
  return out;
}

double Netlist::totalGateArea() const {
  double a = 0.0;
  for (const Device& d : devices_)
    if (d.type == DeviceType::Mos) a += d.mos.w * d.mos.l * d.mos.m;
  return a;
}

}  // namespace amsyn::circuit
