// Monte-Carlo yield estimation with Pelgrom-law device mismatch — the
// "statistical process tolerances and mismatches" the paper lists as the
// other half of industrial robustness (section 2.2, last paragraph).
#pragma once

#include <cstdint>

#include "circuit/netlist.hpp"
#include "manufacture/corners.hpp"
#include "numeric/rng.hpp"
#include "numeric/stats.hpp"
#include "sizing/spec.hpp"

namespace amsyn::manufacture {

/// Pelgrom threshold-mismatch sigma for one device: sigma(dVT) = AVT /
/// sqrt(W L) (per unit; the pair mismatch is sqrt(2) larger).
double pelgromSigmaVt(const circuit::Process& proc, double w, double l);

/// Pelgrom current-factor mismatch sigma: sigma(dBeta/Beta) = Abeta /
/// sqrt(W L).
double pelgromSigmaBeta(const circuit::Process& proc, double w, double l);

/// Perturb every MOS in the netlist with an independent Pelgrom sample
/// (vtShift and betaScale fields).
void applyMismatch(circuit::Netlist& net, const circuit::Process& proc, num::Rng& rng);

struct YieldOptions {
  std::size_t samples = 200;
  std::uint64_t seed = 1;
  bool includeGlobalVariation = true;  ///< sample VariationSpace uniformly too
  VariationSpace space;
};

struct YieldResult {
  num::Proportion yield;                 ///< pass fraction with 95% interval
  std::size_t samples = 0;
  std::map<std::string, double> worstSeen;  ///< most pessimistic value per perf
};

/// Yield of a design under global (process corner) variation: each sample
/// draws a process uniformly from the variation box and checks the specs.
YieldResult yieldMonteCarlo(const ModelFactory& factory, const circuit::Process& nominal,
                            const std::vector<double>& x, const sizing::SpecSet& specs,
                            const YieldOptions& opts = {});

}  // namespace amsyn::manufacture
