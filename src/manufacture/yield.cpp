#include "manufacture/yield.hpp"

#include <cmath>

namespace amsyn::manufacture {

double pelgromSigmaVt(const circuit::Process& proc, double w, double l) {
  return proc.avt / std::sqrt(w * l);
}

double pelgromSigmaBeta(const circuit::Process& proc, double w, double l) {
  return proc.abeta / std::sqrt(w * l);
}

void applyMismatch(circuit::Netlist& net, const circuit::Process& proc, num::Rng& rng) {
  for (auto& d : net.devices()) {
    if (d.type != circuit::DeviceType::Mos) continue;
    const double w = d.mos.w * d.mos.m;
    d.mos.vtShift = rng.normal(0.0, pelgromSigmaVt(proc, w, d.mos.l));
    d.mos.betaScale = std::max(0.1, 1.0 + rng.normal(0.0, pelgromSigmaBeta(proc, w, d.mos.l)));
  }
}

YieldResult yieldMonteCarlo(const ModelFactory& factory, const circuit::Process& nominal,
                            const std::vector<double>& x, const sizing::SpecSet& specs,
                            const YieldOptions& opts) {
  num::Rng rng(opts.seed);
  YieldResult res;
  std::size_t pass = 0;

  for (std::size_t s = 0; s < opts.samples; ++s) {
    circuit::Process p = nominal;
    if (opts.includeGlobalVariation) {
      std::vector<double> c(VariationSpace::kDims);
      for (double& ci : c) ci = rng.uniform();
      p = opts.space.apply(nominal, c);
    }
    const auto model = factory(p);
    const auto perf = model->evaluate(x);
    if (specs.satisfied(perf, 0.0)) ++pass;

    for (const auto& spec : specs.specs()) {
      if (spec.isObjective()) continue;
      auto it = perf.find(spec.performance);
      if (it == perf.end()) continue;
      auto [wit, inserted] = res.worstSeen.try_emplace(spec.performance, it->second);
      if (!inserted) {
        wit->second = spec.kind == sizing::SpecKind::GreaterEqual
                          ? std::min(wit->second, it->second)
                          : std::max(wit->second, it->second);
      }
    }
  }

  res.samples = opts.samples;
  res.yield = num::wilsonInterval(pass, opts.samples);
  return res;
}

}  // namespace amsyn::manufacture
