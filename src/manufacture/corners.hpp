// Manufacturability-aware synthesis (Mukherjee, Carley & Rutenbar,
// ICCAD 1995 — the paper's ref [31]).  Industrial practice demands designs
// that hold their specs across supply, temperature and process variation;
// the paper notes this was hard-coded into IDAC's plans but requires an
// explicit worst-case search in optimization-based flows, at a 4x-10x CPU
// premium.  This module implements the reference's strategy: a nonlinear
// (infinite-programming style) search for the worst-case "corners" of the
// operating/process box, wrapped in a cutting-plane synthesis loop that
// re-optimizes against the accumulated active corner set.
#pragma once

#include <functional>
#include <memory>

#include "circuit/process.hpp"
#include "sizing/cost.hpp"
#include "sizing/synth.hpp"

namespace amsyn::manufacture {

/// The operating/process variation box.  A corner is a point c in [0,1]^6
/// mapped onto (vdd, T, kpN, kpP, vtN, vtP).
struct VariationSpace {
  double vddRel = 0.10;     ///< +/- 10% supply
  double tempMin = 233.15;  ///< -40 C
  double tempMax = 398.15;  ///< +125 C
  double kpRel = 0.15;      ///< +/- 15% transconductance factor
  double vtAbs = 0.10;      ///< +/- 100 mV threshold shift

  static constexpr std::size_t kDims = 6;

  /// Instantiate the process at corner coordinates c (each in [0,1]).
  circuit::Process apply(const circuit::Process& nominal,
                         const std::vector<double>& c) const;
};

/// Factory building a performance model against a specific process instance
/// (corner evaluation needs models at non-nominal processes).
using ModelFactory =
    std::function<std::unique_ptr<sizing::PerformanceModel>(const circuit::Process&)>;

struct WorstCorner {
  std::vector<double> corner;  ///< coordinates in [0,1]^6
  double margin = 0.0;         ///< signed normalized margin (< 0: spec violated)
  double value = 0.0;          ///< performance value at the corner
};

/// Find the corner minimizing the signed margin of one spec for a fixed
/// design x: vertex enumeration of the box (the worst case of a quasi-
/// monotone response sits at a vertex) refined by coordinate search.
WorstCorner worstCaseCorner(const ModelFactory& factory, const circuit::Process& nominal,
                            const VariationSpace& space, const std::vector<double>& x,
                            const sizing::Spec& spec);

struct RobustOptions {
  sizing::SynthesisOptions synthesis;
  sizing::CostOptions cost;
  std::size_t maxRounds = 4;  ///< cutting-plane iterations
};

struct RobustResult {
  sizing::SynthesisResult nominal;   ///< plain (nominal-only) synthesis
  sizing::SynthesisResult robust;    ///< corner-aware result
  bool robustFeasibleAtCorners = false;
  std::size_t activeCorners = 0;     ///< corners accumulated by the loop
  std::size_t rounds = 0;
  double nominalEvaluations = 0;     ///< model evaluations, nominal run
  double robustEvaluations = 0;      ///< model evaluations, corner-aware run
  double nominalSeconds = 0;         ///< wall time of the nominal-only synthesis
  double cornerSearchSeconds = 0;    ///< wall time of the cutting-plane phase
};

/// Cutting-plane robust synthesis: synthesize at the nominal process, hunt
/// worst-case corners for every constraint, add violated corners to the
/// evaluation set (the cost becomes the max over corners), re-synthesize,
/// repeat.  Reports evaluation counts so the paper's 4x-10x CPU claim can be
/// checked (bench/bench_claim_corners).
RobustResult robustSynthesize(const ModelFactory& factory, const circuit::Process& nominal,
                              const VariationSpace& space, const sizing::SpecSet& specs,
                              const RobustOptions& opts = {});

}  // namespace amsyn::manufacture
