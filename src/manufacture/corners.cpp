#include "manufacture/corners.hpp"

#include <cmath>
#include <limits>

#include "core/metrics.hpp"
#include "core/parallel.hpp"
#include "core/trace.hpp"
#include "numeric/optimize.hpp"

namespace amsyn::manufacture {

using sizing::Spec;
using sizing::SpecKind;

circuit::Process VariationSpace::apply(const circuit::Process& nominal,
                                       const std::vector<double>& c) const {
  if (c.size() != kDims) throw std::invalid_argument("VariationSpace::apply: dimension");
  auto u = [&](std::size_t i) { return std::clamp(c[i], 0.0, 1.0); };
  circuit::Process p = nominal;
  p.vdd = nominal.vdd * (1.0 - vddRel + 2.0 * vddRel * u(0));
  p.temperature = tempMin + (tempMax - tempMin) * u(1);
  p.kpN = nominal.kpN * (1.0 - kpRel + 2.0 * kpRel * u(2));
  p.kpP = nominal.kpP * (1.0 - kpRel + 2.0 * kpRel * u(3));
  p.vt0N = nominal.vt0N + (-vtAbs + 2.0 * vtAbs * u(4));
  p.vt0P = nominal.vt0P + (-vtAbs + 2.0 * vtAbs * u(5));
  // First-order temperature dependence: mobility degrades ~T^-1.5, Vt drifts
  // ~-2 mV/K relative to 300 K.
  const double tRatio = p.temperature / 300.15;
  p.kpN *= std::pow(tRatio, -1.5);
  p.kpP *= std::pow(tRatio, -1.5);
  p.vt0N -= 2e-3 * (p.temperature - 300.15);
  p.vt0P += 2e-3 * (p.temperature - 300.15);
  return p;
}

namespace {

/// Signed normalized margin of a spec at a performance value (negative =
/// violated).  Objectives have no margin (+inf).
double signedMargin(const Spec& spec, const sizing::Performance& perf) {
  if (spec.isObjective()) return std::numeric_limits<double>::infinity();
  auto it = perf.find(spec.performance);
  if (it == perf.end()) return -1.0;
  switch (spec.kind) {
    case SpecKind::GreaterEqual:
      return (it->second - spec.bound) / spec.normalization();
    case SpecKind::LessEqual:
      return (spec.bound - it->second) / spec.normalization();
    default:
      return std::numeric_limits<double>::infinity();
  }
}

}  // namespace

WorstCorner worstCaseCorner(const ModelFactory& factory, const circuit::Process& nominal,
                            const VariationSpace& space, const std::vector<double>& x,
                            const Spec& spec) {
  AMSYN_SPAN("corner_hunt");
  static const auto cVertexEvals =
      core::metrics::Registry::instance().counter("corners.vertex_evals");
  // safeEvaluate: a corner whose evaluation throws or yields NaN comes back
  // tagged _infeasible, and signedMargin treats a missing performance as
  // violated (-1.0) — the pessimistic reading, which is the correct
  // worst-case semantics for a corner we could not evaluate.
  // safeEvaluate also consults the process-wide evaluation cache
  // (core/evalcache.hpp): hunts for different specs at the same design x
  // enumerate the *same* 64 vertices, coordinate search re-probes points it
  // has already seen, and robustSynthesize's final audit repeats the last
  // round's hunts verbatim — all of those become cache hits instead of
  // fresh simulations.
  auto marginAt = [&](const std::vector<double>& c) {
    const circuit::Process p = space.apply(nominal, c);
    const auto model = factory(p);
    const auto perf = sizing::safeEvaluate(*model, x);
    if (perf.count("_infeasible")) return -1.0;
    return signedMargin(spec, perf);
  };

  // Stage 1: enumerate the 2^6 box vertices (worst cases of quasi-monotone
  // circuit responses live at vertices) — concurrently, one model per
  // vertex.  The reduction scans in mask order with a strict <, so the
  // winner is identical to the serial loop's at any thread count.
  constexpr std::size_t kVertices = std::size_t{1} << VariationSpace::kDims;
  const std::vector<double> vertexMargins =
      core::parallelMap(kVertices, [&](std::size_t mask) {
        std::vector<double> c(VariationSpace::kDims);
        for (std::size_t i = 0; i < VariationSpace::kDims; ++i)
          c[i] = (mask >> i) & 1u ? 1.0 : 0.0;
        return marginAt(c);
      });
  core::metrics::add(cVertexEvals, kVertices);
  WorstCorner worst;
  worst.margin = std::numeric_limits<double>::infinity();
  for (std::size_t mask = 0; mask < kVertices; ++mask) {
    if (vertexMargins[mask] < worst.margin) {
      worst.margin = vertexMargins[mask];
      worst.corner.assign(VariationSpace::kDims, 0.0);
      for (std::size_t i = 0; i < VariationSpace::kDims; ++i)
        worst.corner[i] = (mask >> i) & 1u ? 1.0 : 0.0;
    }
  }

  // Stage 2: local refinement — interior worst cases (non-monotone
  // responses like phase margin) are caught here.
  num::BoxBounds box{std::vector<double>(VariationSpace::kDims, 0.0),
                     std::vector<double>(VariationSpace::kDims, 1.0)};
  num::CoordinateSearchOptions cs;
  cs.maxSweeps = 20;
  cs.initialStep = 0.25;
  const auto refined = num::coordinateSearch(marginAt, worst.corner, box, cs);
  if (refined.value < worst.margin) {
    worst.margin = refined.value;
    worst.corner = refined.x;
  }

  const circuit::Process p = space.apply(nominal, worst.corner);
  const auto perf = sizing::safeEvaluate(*factory(p), x);
  if (auto it = perf.find(spec.performance); it != perf.end()) worst.value = it->second;
  return worst;
}

namespace {

/// Model whose evaluation is the worst case over an explicit corner set:
/// constraint-relevant performances take their most pessimistic value across
/// corners, objectives their nominal value.
class CornerSetModel : public sizing::PerformanceModel {
 public:
  CornerSetModel(const ModelFactory& factory, const circuit::Process& nominal,
                 const VariationSpace& space, const sizing::SpecSet& specs,
                 const std::vector<std::vector<double>>& corners)
      : specs_(specs) {
    models_.push_back(factory(nominal));  // corner 0 = nominal
    processes_.push_back(nominal);
    for (const auto& c : corners) {
      processes_.push_back(space.apply(nominal, c));
      models_.push_back(factory(processes_.back()));
    }
  }

  const std::vector<sizing::DesignVariable>& variables() const override {
    return models_.front()->variables();
  }

  sizing::Performance evaluate(const std::vector<double>& x) const override {
    // Evaluate every corner model concurrently (each is a distinct object,
    // so no shared mutable state), then aggregate in corner order — the
    // min/max reduction is order-independent anyway, but keeping a fixed
    // order costs nothing and keeps floating-point identity trivial.
    // Small sets stay serial: the pool round-trip would dominate the
    // microsecond equation models.
    // Corners route through safeEvaluate: one throwing corner model marks
    // the aggregate _infeasible below instead of tearing down its siblings.
    std::vector<sizing::Performance> perfs;
    if (models_.size() >= 4) {
      perfs = core::parallelMap(models_.size(), [&](std::size_t k) {
        return sizing::safeEvaluate(*models_[k], x);
      });
    } else {
      perfs.reserve(models_.size());
      for (const auto& m : models_) perfs.push_back(sizing::safeEvaluate(*m, x));
    }
    sizing::Performance agg = perfs.front();
    for (std::size_t k = 1; k < models_.size(); ++k) {
      const auto& perf = perfs[k];
      for (const auto& spec : specs_.specs()) {
        if (spec.isObjective()) continue;
        auto it = perf.find(spec.performance);
        if (it == perf.end()) continue;
        auto& cur = agg[spec.performance];
        cur = spec.kind == SpecKind::GreaterEqual ? std::min(cur, it->second)
                                                  : std::max(cur, it->second);
      }
      if (perf.count("_infeasible")) {
        agg["_infeasible"] = 1.0;
        // First failing corner's reason sticks (emplace semantics).
        if (auto st = perf.find(sizing::kEvalStatusKey); st != perf.end())
          agg.emplace(sizing::kEvalStatusKey, st->second);
      }
    }
    return agg;
  }

  /// Cacheable iff every corner model is: the aggregate is a pure function
  /// of the per-corner payloads and the spec set (which picks the
  /// performances to fold and the min/max direction), so the key combines
  /// the sub-model keys in corner order with the spec-set digest.
  std::optional<core::cache::Digest128> cacheKey(
      const std::vector<double>& x) const override {
    core::cache::Hasher128 h;
    h.mixString("corner-set");
    h.mix(models_.size());
    for (const auto& m : models_) {
      const auto sub = m->cacheKey(x);
      if (!sub) return std::nullopt;
      h.mixDigest(*sub);
    }
    h.mixDigest(specs_.digest());
    return h.digest();
  }

  std::size_t cornerCount() const { return models_.size() - 1; }

 private:
  sizing::SpecSet specs_;
  std::vector<circuit::Process> processes_;
  std::vector<std::unique_ptr<sizing::PerformanceModel>> models_;
};

}  // namespace

RobustResult robustSynthesize(const ModelFactory& factory, const circuit::Process& nominal,
                              const VariationSpace& space, const sizing::SpecSet& specs,
                              const RobustOptions& opts) {
  RobustResult result;

  // Reference run: nominal-only synthesis.  Phase wall times land both in
  // the result (bench_claim_corners reports the paper's 4x-10x CPU premium
  // from them) and in trace spans for the run report.
  {
    AMSYN_SPAN("nominal_sizing");
    const std::uint64_t t0 = core::trace::monotonicNowNs();
    const auto nominalModel = factory(nominal);
    const sizing::CostFunction cost(*nominalModel, specs, opts.cost);
    result.nominal = sizing::synthesize(cost, opts.synthesis);
    result.nominalEvaluations = static_cast<double>(result.nominal.evaluations);
    result.nominalSeconds =
        static_cast<double>(core::trace::monotonicNowNs() - t0) * 1e-9;
  }
  const std::uint64_t tCorner0 = core::trace::monotonicNowNs();
  AMSYN_SPAN("corner_search");

  // Cutting-plane loop.
  std::vector<std::vector<double>> corners;
  sizing::SynthesisResult current = result.nominal;
  double robustEvals = result.nominalEvaluations;

  // Constraint specs, hunted concurrently each round (worstCaseCorner
  // itself fans its vertex enumeration out on the same pool).
  std::vector<const Spec*> constraintSpecs;
  for (const auto& spec : specs.specs())
    if (!spec.isObjective()) constraintSpecs.push_back(&spec);

  for (std::size_t round = 0; round < opts.maxRounds; ++round) {
    ++result.rounds;
    // Hunt a worst corner per constraint spec at the current design; append
    // violated corners in spec order so the accumulated set (and therefore
    // the re-synthesis) is independent of scheduling.
    const auto hunts = core::parallelMap(constraintSpecs.size(), [&](std::size_t i) {
      return worstCaseCorner(factory, nominal, space, current.x, *constraintSpecs[i]);
    });
    bool addedCorner = false;
    for (const auto& wc : hunts) {
      robustEvals += 64 + 80;  // vertex enumeration + refinement budget
      if (wc.margin < 0.0) {
        corners.push_back(wc.corner);
        addedCorner = true;
      }
    }
    if (!addedCorner) break;  // design already robust

    CornerSetModel cornerModel(factory, nominal, space, specs, corners);
    const sizing::CostFunction cost(cornerModel, specs, opts.cost);
    current = sizing::synthesize(cost, opts.synthesis);
    // Each corner-set evaluation simulates (1 + #corners) models.
    robustEvals +=
        static_cast<double>(current.evaluations) * static_cast<double>(1 + corners.size());
  }

  // Final verdict: check every spec's worst corner at the final design.
  result.robustFeasibleAtCorners = current.feasible;
  const auto audit = core::parallelMap(constraintSpecs.size(), [&](std::size_t i) {
    return worstCaseCorner(factory, nominal, space, current.x, *constraintSpecs[i]);
  });
  for (const auto& wc : audit) {
    robustEvals += 64 + 80;
    if (wc.margin < -1e-3) result.robustFeasibleAtCorners = false;
  }

  result.robust = current;
  result.activeCorners = corners.size();
  result.robustEvaluations = robustEvals;
  result.cornerSearchSeconds =
      static_cast<double>(core::trace::monotonicNowNs() - tCorner0) * 1e-9;
  return result;
}

}  // namespace amsyn::manufacture
