#include "manufacture/corners.hpp"

#include <cmath>
#include <limits>
#include <numeric>

#include "core/context.hpp"
#include "core/metrics.hpp"
#include "core/parallel.hpp"
#include "core/surrogate.hpp"
#include "core/trace.hpp"
#include "numeric/optimize.hpp"

namespace amsyn::manufacture {

using sizing::Spec;
using sizing::SpecKind;

circuit::Process VariationSpace::apply(const circuit::Process& nominal,
                                       const std::vector<double>& c) const {
  if (c.size() != kDims) throw std::invalid_argument("VariationSpace::apply: dimension");
  auto u = [&](std::size_t i) { return std::clamp(c[i], 0.0, 1.0); };
  circuit::Process p = nominal;
  p.vdd = nominal.vdd * (1.0 - vddRel + 2.0 * vddRel * u(0));
  p.temperature = tempMin + (tempMax - tempMin) * u(1);
  p.kpN = nominal.kpN * (1.0 - kpRel + 2.0 * kpRel * u(2));
  p.kpP = nominal.kpP * (1.0 - kpRel + 2.0 * kpRel * u(3));
  p.vt0N = nominal.vt0N + (-vtAbs + 2.0 * vtAbs * u(4));
  p.vt0P = nominal.vt0P + (-vtAbs + 2.0 * vtAbs * u(5));
  // First-order temperature dependence: mobility degrades ~T^-1.5, Vt drifts
  // ~-2 mV/K relative to 300 K.
  const double tRatio = p.temperature / 300.15;
  p.kpN *= std::pow(tRatio, -1.5);
  p.kpP *= std::pow(tRatio, -1.5);
  p.vt0N -= 2e-3 * (p.temperature - 300.15);
  p.vt0P += 2e-3 * (p.temperature - 300.15);
  return p;
}

namespace {

// Vertex-screening gate (surrogate Pruning mode).  A vertex is skipped when
// its predicted margin's lower confidence bound clears the best vertex's
// upper bound by kScreenMargin — i.e. it is confidently NOT the worst
// corner, so dropping it cannot move the hunt's argmin.  The vertex
// attaining the best upper bound is never skipped by construction, so the
// hunt always evaluates the predicted worst case for real.  The 6-sigma
// band carries the statistical safety; the fixed 5%-of-normalization guard
// on top covers residual miscalibration.  The audit in
// tests/surrogate_test.cpp re-evaluates every skipped vertex and budgets
// ZERO that beat the found minimum.
constexpr double kScreenZ = 6.0;
constexpr double kScreenMargin = 0.05;

/// Signed normalized margin of a spec at a performance value (negative =
/// violated).  Objectives have no margin (+inf).
double signedMargin(const Spec& spec, const sizing::Performance& perf) {
  if (spec.isObjective()) return std::numeric_limits<double>::infinity();
  auto it = perf.find(spec.performance);
  if (it == perf.end()) return -1.0;
  switch (spec.kind) {
    case SpecKind::GreaterEqual:
      return (it->second - spec.bound) / spec.normalization();
    case SpecKind::LessEqual:
      return (spec.bound - it->second) / spec.normalization();
    default:
      return std::numeric_limits<double>::infinity();
  }
}

}  // namespace

WorstCorner worstCaseCorner(const ModelFactory& factory, const circuit::Process& nominal,
                            const VariationSpace& space, const std::vector<double>& x,
                            const Spec& spec) {
  AMSYN_SPAN("corner_hunt");
  static const auto cVertexEvals =
      core::metrics::registry().counter("corners.vertex_evals");
  // safeEvaluate: a corner whose evaluation throws or yields NaN comes back
  // tagged _infeasible, and signedMargin treats a missing performance as
  // violated (-1.0) — the pessimistic reading, which is the correct
  // worst-case semantics for a corner we could not evaluate.
  // safeEvaluate also consults the process-wide evaluation cache
  // (core/evalcache.hpp): hunts for different specs at the same design x
  // enumerate the *same* 64 vertices, coordinate search re-probes points it
  // has already seen, and robustSynthesize's final audit repeats the last
  // round's hunts verbatim — all of those become cache hits instead of
  // fresh simulations.
  auto marginAt = [&](const std::vector<double>& c) {
    const circuit::Process p = space.apply(nominal, c);
    const auto model = factory(p);
    const auto perf = sizing::safeEvaluate(*model, x);
    if (perf.count("_infeasible")) return -1.0;
    return signedMargin(spec, perf);
  };

  // Stage 1: enumerate the 2^6 box vertices (worst cases of quasi-monotone
  // circuit responses live at vertices) — concurrently, one model per
  // vertex.  The reduction scans in mask order with a strict <, so the
  // winner is identical to the serial loop's at any thread count.
  constexpr std::size_t kVertices = std::size_t{1} << VariationSpace::kDims;
  const auto vertexCoords = [](std::size_t mask) {
    std::vector<double> c(VariationSpace::kDims);
    for (std::size_t i = 0; i < VariationSpace::kDims; ++i)
      c[i] = (mask >> i) & 1u ? 1.0 : 0.0;
    return c;
  };
  // Surrogate ordering: predict each vertex's margin and claim the most
  // violating ones first (a violated corner found early warms the cache for
  // the refinement stage sooner).  Margins still land in their own mask
  // slot and the reduction below scans mask order, so the permutation is
  // pure scheduling — the winning corner is bit-identical either way.
  //
  // Surrogate pruning adds vertex screening on top: a vertex whose margin
  // is confidently (kScreenZ sigma + kScreenMargin) above the best vertex's
  // upper bound cannot be the argmin, so it is skipped entirely.  Skipped
  // vertices are excluded from the reduction (never placeholder-scored) and
  // logged for the offline audit.
  std::vector<std::size_t> order(kVertices);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::vector<char> skipped(kVertices, 0);
  auto& surrStore = core::currentSurrogateStore();
  const auto surrMode = surrStore.mode();
  if (surrMode != core::surrogate::Mode::Off && !spec.isObjective()) {
    struct VertexPred {
      double margin = 0.0;  ///< normalized margin at the predicted mean
      double sigmaN = 0.0;  ///< predictive sigma / spec normalization
      bool calibrated = false;
      core::cache::Digest128 classKey;
    };
    std::vector<std::optional<VertexPred>> preds(kVertices);
    std::vector<std::optional<double>> scores(kVertices);
    bool any = false;
    for (std::size_t mask = 0; mask < kVertices; ++mask) {
      try {
        const circuit::Process p = space.apply(nominal, vertexCoords(mask));
        const auto model = factory(p);
        if (const auto cand = sizing::surrogateCandidate(*model, x)) {
          if (const auto pred = surrStore.predict(*cand, spec.performance)) {
            sizing::Performance predicted{{spec.performance, pred->mean}};
            preds[mask] = VertexPred{signedMargin(spec, predicted),
                                     pred->sigma / spec.normalization(),
                                     pred->calibrated, cand->classKey};
            scores[mask] = preds[mask]->margin;
          }
        }
      } catch (...) {
        // A factory that throws for some corner fails the real evaluation
        // too; ranking just leaves that vertex unscored.
      }
      any = any || scores[mask].has_value();
    }
    if (any) {
      order = core::surrogate::orderByScore(scores);
      surrStore.noteOrderedBatch();
    }
    if (surrMode == core::surrogate::Mode::Pruning) {
      // Best (lowest) upper confidence bound among calibrated predictions.
      // The vertex attaining it always stays: its own lower bound cannot
      // clear its upper bound, so the comparison below keeps it.
      double bestUpper = std::numeric_limits<double>::infinity();
      for (std::size_t mask = 0; mask < kVertices; ++mask)
        if (preds[mask] && preds[mask]->calibrated)
          bestUpper = std::min(bestUpper,
                               preds[mask]->margin + kScreenZ * preds[mask]->sigmaN);
      if (std::isfinite(bestUpper)) {
        for (std::size_t mask = 0; mask < kVertices; ++mask) {
          if (!preds[mask] || !preds[mask]->calibrated) continue;
          const double lower = preds[mask]->margin - kScreenZ * preds[mask]->sigmaN;
          if (lower > bestUpper + kScreenMargin) {
            skipped[mask] = 1;
            surrStore.recordPrune({preds[mask]->classKey, x, spec.performance, lower,
                                   preds[mask]->sigmaN, vertexCoords(mask)});
          }
        }
      }
    }
  }
  std::vector<std::size_t> toEval;
  toEval.reserve(kVertices);
  for (std::size_t i = 0; i < kVertices; ++i)
    if (!skipped[order[i]]) toEval.push_back(order[i]);
  std::vector<double> vertexMargins(kVertices,
                                    std::numeric_limits<double>::infinity());
  core::parallelFor(toEval.size(), [&](std::size_t i) {
    const std::size_t mask = toEval[i];
    vertexMargins[mask] = marginAt(vertexCoords(mask));
  });
  core::metrics::add(cVertexEvals, toEval.size());
  WorstCorner worst;
  worst.margin = std::numeric_limits<double>::infinity();
  for (std::size_t mask = 0; mask < kVertices; ++mask) {
    if (skipped[mask]) continue;  // confidently not the argmin; audited
    if (vertexMargins[mask] < worst.margin) {
      worst.margin = vertexMargins[mask];
      worst.corner.assign(VariationSpace::kDims, 0.0);
      for (std::size_t i = 0; i < VariationSpace::kDims; ++i)
        worst.corner[i] = (mask >> i) & 1u ? 1.0 : 0.0;
    }
  }

  // Stage 2: local refinement — interior worst cases (non-monotone
  // responses like phase margin) are caught here.
  num::BoxBounds box{std::vector<double>(VariationSpace::kDims, 0.0),
                     std::vector<double>(VariationSpace::kDims, 1.0)};
  num::CoordinateSearchOptions cs;
  cs.maxSweeps = 20;
  cs.initialStep = 0.25;
  const auto refined = num::coordinateSearch(marginAt, worst.corner, box, cs);
  if (refined.value < worst.margin) {
    worst.margin = refined.value;
    worst.corner = refined.x;
  }

  const circuit::Process p = space.apply(nominal, worst.corner);
  const auto perf = sizing::safeEvaluate(*factory(p), x);
  if (auto it = perf.find(spec.performance); it != perf.end()) worst.value = it->second;
  return worst;
}

namespace {

/// Model whose evaluation is the worst case over an explicit corner set:
/// constraint-relevant performances take their most pessimistic value across
/// corners, objectives their nominal value.
class CornerSetModel : public sizing::PerformanceModel {
 public:
  CornerSetModel(const ModelFactory& factory, const circuit::Process& nominal,
                 const VariationSpace& space, const sizing::SpecSet& specs,
                 const std::vector<std::vector<double>>& corners)
      : specs_(specs) {
    models_.push_back(factory(nominal));  // corner 0 = nominal
    processes_.push_back(nominal);
    for (const auto& c : corners) {
      processes_.push_back(space.apply(nominal, c));
      models_.push_back(factory(processes_.back()));
    }
  }

  const std::vector<sizing::DesignVariable>& variables() const override {
    return models_.front()->variables();
  }

  sizing::Performance evaluate(const std::vector<double>& x) const override {
    // Evaluate every corner model concurrently (each is a distinct object,
    // so no shared mutable state), then aggregate in corner order — the
    // min/max reduction is order-independent anyway, but keeping a fixed
    // order costs nothing and keeps floating-point identity trivial.
    // Small sets stay serial: the pool round-trip would dominate the
    // microsecond equation models.
    // Corners route through safeEvaluate: one throwing corner model marks
    // the aggregate _infeasible below instead of tearing down its siblings.
    std::vector<sizing::Performance> perfs;
    if (models_.size() >= 4) {
      perfs = core::parallelMap(models_.size(), [&](std::size_t k) {
        return sizing::safeEvaluate(*models_[k], x);
      });
    } else {
      perfs.reserve(models_.size());
      for (const auto& m : models_) perfs.push_back(sizing::safeEvaluate(*m, x));
    }
    sizing::Performance agg = perfs.front();
    for (std::size_t k = 1; k < models_.size(); ++k) {
      const auto& perf = perfs[k];
      for (const auto& spec : specs_.specs()) {
        if (spec.isObjective()) continue;
        auto it = perf.find(spec.performance);
        if (it == perf.end()) continue;
        auto& cur = agg[spec.performance];
        cur = spec.kind == SpecKind::GreaterEqual ? std::min(cur, it->second)
                                                  : std::max(cur, it->second);
      }
      if (perf.count("_infeasible")) {
        agg["_infeasible"] = 1.0;
        // First failing corner's reason sticks (emplace semantics).
        if (auto st = perf.find(sizing::kEvalStatusKey); st != perf.end())
          agg.emplace(sizing::kEvalStatusKey, st->second);
      }
    }
    return agg;
  }

  /// Cacheable iff every corner model is: the aggregate is a pure function
  /// of the per-corner payloads and the spec set (which picks the
  /// performances to fold and the min/max direction), so the key combines
  /// the sub-model keys in corner order with the spec-set digest.
  std::optional<core::cache::Digest128> cacheKey(
      const std::vector<double>& x) const override {
    core::cache::Hasher128 h;
    h.mixString("corner-set");
    h.mix(models_.size());
    for (const auto& m : models_) {
      const auto sub = m->cacheKey(x);
      if (!sub) return std::nullopt;
      h.mixDigest(*sub);
    }
    h.mixDigest(specs_.digest());
    return h.digest();
  }

  /// Surrogate class: every sub-model's full signature (class key AND
  /// context — the corner set is frozen per instance, so corner parameters
  /// are identity here, not features) plus the spec digest that shapes the
  /// min/max aggregation.  Context stays empty: the design vector is the
  /// only thing that varies across evaluations of one instance.
  std::optional<SurrogateSignature> surrogateSignature() const override {
    core::cache::Hasher128 h;
    h.mixString("surr-corner-set");
    h.mix(models_.size());
    for (const auto& m : models_) {
      const auto sub = m->surrogateSignature();
      if (!sub) return std::nullopt;
      h.mixDigest(sub->classKey);
      h.mixDoubles(sub->context);
    }
    h.mixDigest(specs_.digest());
    return SurrogateSignature{h.digest(), {}};
  }

  std::size_t cornerCount() const { return models_.size() - 1; }

 private:
  sizing::SpecSet specs_;
  std::vector<circuit::Process> processes_;
  std::vector<std::unique_ptr<sizing::PerformanceModel>> models_;
};

/// Scoped downgrade Pruning -> Ordering for the cutting-plane synthesis
/// phases.  The annealer consumes exact costs sequentially; substituting
/// predicted costs for pruned candidates redirects its accept decisions and
/// changes the final design.  Within robustSynthesize, pruning is therefore
/// restricted to the hunt's vertex screening (argmin-safe by construction);
/// the optimizer itself still gets ordering.
class ScopedOrderingOnly {
 public:
  ScopedOrderingOnly()
      : store_(core::currentSurrogateStore()), prev_(store_.mode()) {
    if (prev_ == core::surrogate::Mode::Pruning)
      store_.setMode(core::surrogate::Mode::Ordering);
  }
  ~ScopedOrderingOnly() { store_.setMode(prev_); }
  ScopedOrderingOnly(const ScopedOrderingOnly&) = delete;
  ScopedOrderingOnly& operator=(const ScopedOrderingOnly&) = delete;

 private:
  core::surrogate::Store& store_;
  core::surrogate::Mode prev_;
};

}  // namespace

RobustResult robustSynthesize(const ModelFactory& factory, const circuit::Process& nominal,
                              const VariationSpace& space, const sizing::SpecSet& specs,
                              const RobustOptions& opts) {
  RobustResult result;

  // Reference run: nominal-only synthesis.  Phase wall times land both in
  // the result (bench_claim_corners reports the paper's 4x-10x CPU premium
  // from them) and in trace spans for the run report.
  {
    AMSYN_SPAN("nominal_sizing");
    const std::uint64_t t0 = core::trace::monotonicNowNs();
    const auto nominalModel = factory(nominal);
    const sizing::CostFunction cost(*nominalModel, specs, opts.cost);
    const ScopedOrderingOnly noPruning;
    result.nominal = sizing::synthesize(cost, opts.synthesis);
    result.nominalEvaluations = static_cast<double>(result.nominal.evaluations);
    result.nominalSeconds =
        static_cast<double>(core::trace::monotonicNowNs() - t0) * 1e-9;
  }
  const std::uint64_t tCorner0 = core::trace::monotonicNowNs();
  AMSYN_SPAN("corner_search");

  // Cutting-plane loop.
  std::vector<std::vector<double>> corners;
  sizing::SynthesisResult current = result.nominal;
  double robustEvals = result.nominalEvaluations;

  // Constraint specs, hunted concurrently each round (worstCaseCorner
  // itself fans its vertex enumeration out on the same pool).
  std::vector<const Spec*> constraintSpecs;
  for (const auto& spec : specs.specs())
    if (!spec.isObjective()) constraintSpecs.push_back(&spec);

  for (std::size_t round = 0; round < opts.maxRounds; ++round) {
    ++result.rounds;
    // Hunt a worst corner per constraint spec at the current design; append
    // violated corners in spec order so the accumulated set (and therefore
    // the re-synthesis) is independent of scheduling.
    const auto hunts = core::parallelMap(constraintSpecs.size(), [&](std::size_t i) {
      return worstCaseCorner(factory, nominal, space, current.x, *constraintSpecs[i]);
    });
    bool addedCorner = false;
    for (const auto& wc : hunts) {
      robustEvals += 64 + 80;  // vertex enumeration + refinement budget
      if (wc.margin < 0.0) {
        corners.push_back(wc.corner);
        addedCorner = true;
      }
    }
    if (!addedCorner) break;  // design already robust

    CornerSetModel cornerModel(factory, nominal, space, specs, corners);
    const sizing::CostFunction cost(cornerModel, specs, opts.cost);
    const ScopedOrderingOnly noPruning;
    current = sizing::synthesize(cost, opts.synthesis);
    // Each corner-set evaluation simulates (1 + #corners) models.
    robustEvals +=
        static_cast<double>(current.evaluations) * static_cast<double>(1 + corners.size());
  }

  // Final verdict: check every spec's worst corner at the final design.
  result.robustFeasibleAtCorners = current.feasible;
  const auto audit = core::parallelMap(constraintSpecs.size(), [&](std::size_t i) {
    return worstCaseCorner(factory, nominal, space, current.x, *constraintSpecs[i]);
  });
  for (const auto& wc : audit) {
    robustEvals += 64 + 80;
    if (wc.margin < -1e-3) result.robustFeasibleAtCorners = false;
  }

  result.robust = current;
  result.activeCorners = corners.size();
  result.robustEvaluations = robustEvals;
  result.cornerSearchSeconds =
      static_cast<double>(core::trace::monotonicNowNs() - tCorner0) * 1e-9;
  return result;
}

}  // namespace amsyn::manufacture
