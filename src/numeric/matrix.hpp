// Dense matrix / vector kernels used throughout amsyn.
//
// The circuits handled by the cell-level tools in this library are small
// (10-100 devices, so well under ~300 MNA unknowns); dense LU with partial
// pivoting is both simpler and faster than sparse machinery at that size.
// Larger structures (power grids) use numeric/sparse.hpp instead.
#pragma once

#include <complex>
#include <cstddef>
#include <stdexcept>
#include <vector>

namespace amsyn::num {

/// Dense row-major matrix over a scalar field (double or complex<double>).
template <typename T>
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, T init = T{})
      : rows_(rows), cols_(cols), data_(rows * cols, init) {}

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  T& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  const T& operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  /// Set every entry to zero (keeps the shape).
  void setZero() { data_.assign(data_.size(), T{}); }

  /// Row-major storage, for value-identity checks (LU-reuse caches compare
  /// a freshly assembled matrix against the one behind a cached
  /// factorization).
  const std::vector<T>& data() const { return data_; }

  /// Identity of size n.
  static Matrix identity(std::size_t n) {
    Matrix m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = T{1};
    return m;
  }

  Matrix operator*(const Matrix& rhs) const {
    if (cols_ != rhs.rows_) throw std::invalid_argument("matrix dim mismatch");
    Matrix out(rows_, rhs.cols_);
    for (std::size_t i = 0; i < rows_; ++i)
      for (std::size_t k = 0; k < cols_; ++k) {
        const T a = (*this)(i, k);
        if (a == T{}) continue;
        for (std::size_t j = 0; j < rhs.cols_; ++j) out(i, j) += a * rhs(k, j);
      }
    return out;
  }

  std::vector<T> operator*(const std::vector<T>& v) const {
    if (cols_ != v.size()) throw std::invalid_argument("matrix/vector dim mismatch");
    std::vector<T> out(rows_, T{});
    for (std::size_t i = 0; i < rows_; ++i)
      for (std::size_t j = 0; j < cols_; ++j) out[i] += (*this)(i, j) * v[j];
    return out;
  }

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<T> data_;
};

using MatrixD = Matrix<double>;
using MatrixC = Matrix<std::complex<double>>;
using VecD = std::vector<double>;
using VecC = std::vector<std::complex<double>>;

/// LU factorization with partial pivoting. Holds the factors so that many
/// right-hand sides can be solved against one factorization (the AWE moment
/// recursion and adjoint noise analysis both depend on this).
template <typename T>
class LU {
 public:
  /// Factor a (square) matrix. Throws std::runtime_error when singular to
  /// working precision.
  explicit LU(Matrix<T> a);

  /// Solve A x = b.
  std::vector<T> solve(const std::vector<T>& b) const;

  /// Solve A^T x = b (used for adjoint analyses).
  std::vector<T> solveTransposed(const std::vector<T>& b) const;

  /// Determinant of the factored matrix.
  T determinant() const;

  /// Crude conditioning estimate: min |U_ii| / max |U_ii|.  Near-zero values
  /// signal numerical rank deficiency (used by the Padé order-reduction
  /// logic to reject over-ordered Hankel systems).
  double conditionProxy() const;

  std::size_t size() const { return lu_.rows(); }

 private:
  Matrix<T> lu_;
  std::vector<std::size_t> perm_;  // row permutation: row i of U came from perm_[i]
  int permSign_ = 1;
};

using LUD = LU<double>;
using LUC = LU<std::complex<double>>;

/// Convenience one-shot solve of A x = b.
template <typename T>
std::vector<T> solveDense(Matrix<T> a, const std::vector<T>& b) {
  return LU<T>(std::move(a)).solve(b);
}

/// Euclidean norm.
double norm2(const VecD& v);
double norm2(const VecC& v);

/// Infinity norm.
double normInf(const VecD& v);

}  // namespace amsyn::num
