// Small statistics helpers for Monte-Carlo yield estimation and benchmark
// reporting.
#pragma once

#include <cstddef>
#include <vector>

namespace amsyn::num {

double mean(const std::vector<double>& xs);
double variance(const std::vector<double>& xs);  ///< sample variance (n-1)
double stddev(const std::vector<double>& xs);

/// p-th percentile (0..100) by linear interpolation on the sorted sample.
double percentile(std::vector<double> xs, double p);

/// Wilson score interval for a binomial proportion (yield confidence bound).
struct Proportion {
  double estimate = 0.0;
  double lo95 = 0.0;
  double hi95 = 0.0;
};
Proportion wilsonInterval(std::size_t successes, std::size_t trials);

}  // namespace amsyn::num
