#include "numeric/stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace amsyn::num {

double mean(const std::vector<double>& xs) {
  if (xs.empty()) throw std::invalid_argument("mean of empty sample");
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double variance(const std::vector<double>& xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return s / static_cast<double>(xs.size() - 1);
}

double stddev(const std::vector<double>& xs) { return std::sqrt(variance(xs)); }

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) throw std::invalid_argument("percentile of empty sample");
  std::sort(xs.begin(), xs.end());
  const double rank = std::clamp(p, 0.0, 100.0) / 100.0 * static_cast<double>(xs.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

Proportion wilsonInterval(std::size_t successes, std::size_t trials) {
  Proportion out;
  if (trials == 0) return out;
  constexpr double z = 1.959963984540054;  // 97.5 percentile of N(0,1)
  const double n = static_cast<double>(trials);
  const double phat = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (phat + z2 / (2 * n)) / denom;
  const double half = z * std::sqrt(phat * (1 - phat) / n + z2 / (4 * n * n)) / denom;
  out.estimate = phat;
  out.lo95 = std::max(0.0, center - half);
  out.hi95 = std::min(1.0, center + half);
  return out;
}

}  // namespace amsyn::num
