// Interval arithmetic for the boundary-checking topology-selection strategy
// (Veselinovic et al., ED&TC 1995 — the paper's ref [15]).  A topology's
// achievable performance range is evaluated with design variables replaced by
// their allowed intervals; a specification that falls outside the resulting
// interval proves the topology infeasible without any sizing run.
//
// Header-only: every operation is a handful of min/max expressions.
#pragma once

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace amsyn::num {

/// Closed interval [lo, hi] with outward-directed arithmetic.
class Interval {
 public:
  constexpr Interval() : lo_(0.0), hi_(0.0) {}
  constexpr Interval(double point) : lo_(point), hi_(point) {}  // NOLINT: implicit by design
  constexpr Interval(double lo, double hi) : lo_(lo), hi_(hi) {
    if (lo > hi) throw std::invalid_argument("Interval: lo > hi");
  }

  constexpr double lo() const { return lo_; }
  constexpr double hi() const { return hi_; }
  constexpr double width() const { return hi_ - lo_; }
  constexpr double mid() const { return 0.5 * (lo_ + hi_); }
  constexpr bool contains(double x) const { return lo_ <= x && x <= hi_; }
  constexpr bool contains(const Interval& o) const { return lo_ <= o.lo_ && o.hi_ <= hi_; }
  constexpr bool intersects(const Interval& o) const { return lo_ <= o.hi_ && o.lo_ <= hi_; }

  friend Interval operator+(const Interval& a, const Interval& b) {
    return {a.lo_ + b.lo_, a.hi_ + b.hi_};
  }
  friend Interval operator-(const Interval& a, const Interval& b) {
    return {a.lo_ - b.hi_, a.hi_ - b.lo_};
  }
  friend Interval operator-(const Interval& a) { return {-a.hi_, -a.lo_}; }
  friend Interval operator*(const Interval& a, const Interval& b) {
    const double p1 = a.lo_ * b.lo_, p2 = a.lo_ * b.hi_;
    const double p3 = a.hi_ * b.lo_, p4 = a.hi_ * b.hi_;
    return {std::min({p1, p2, p3, p4}), std::max({p1, p2, p3, p4})};
  }
  friend Interval operator/(const Interval& a, const Interval& b) {
    if (b.contains(0.0)) throw std::domain_error("Interval division by interval containing 0");
    return a * Interval{1.0 / b.hi_, 1.0 / b.lo_};
  }

 private:
  double lo_, hi_;
};

inline Interval sqrt(const Interval& a) {
  if (a.lo() < 0.0) throw std::domain_error("Interval sqrt of negative");
  return {std::sqrt(a.lo()), std::sqrt(a.hi())};
}

inline Interval exp(const Interval& a) { return {std::exp(a.lo()), std::exp(a.hi())}; }

inline Interval log(const Interval& a) {
  if (a.lo() <= 0.0) throw std::domain_error("Interval log of non-positive");
  return {std::log(a.lo()), std::log(a.hi())};
}

/// x^n for integer n (monotone pieces handled by case analysis).
inline Interval pow(const Interval& a, int n) {
  if (n == 0) return {1.0, 1.0};
  if (n < 0) return Interval{1.0, 1.0} / pow(a, -n);
  Interval acc{1.0, 1.0};
  for (int i = 0; i < n; ++i) acc = acc * a;
  // Tighten even powers straddling zero: min is 0, not product of bounds.
  if (n % 2 == 0 && a.contains(0.0)) {
    const double m = std::max(std::abs(a.lo()), std::abs(a.hi()));
    return {0.0, std::pow(m, n)};
  }
  return acc;
}

inline Interval min(const Interval& a, const Interval& b) {
  return {std::min(a.lo(), b.lo()), std::min(a.hi(), b.hi())};
}
inline Interval max(const Interval& a, const Interval& b) {
  return {std::max(a.lo(), b.lo()), std::max(a.hi(), b.hi())};
}

}  // namespace amsyn::num
