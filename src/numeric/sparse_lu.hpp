// General (non-SPD) sparse LU with split symbolic / numeric factorization.
//
// numeric/sparse.hpp covers the SPD power-grid case with conjugate
// gradients; this file covers the unsymmetric MNA case: Jacobians and
// (G + jwC) systems whose *structure* is fixed per netlist while their
// *values* change on every Newton iteration, continuation rung, and
// frequency point.  The factorization is therefore split:
//
//   analyze  - one pass that records the column elimination order, the
//              pivot sequence, the fill pattern of L and U, and the pivot
//              candidate scan order.  O(n^2 + flops), run once per matrix
//              structure (and shareable across structure-identical systems
//              via SparseLu::adoptSymbolic / symbolic()).
//   refactor - numeric-only replay against the cached pattern: O(factor
//              flops), no allocation, no graph work.  Each column's pivot
//              choice is re-verified against the cached sequence; when the
//              values have drifted enough that partial pivoting would pick
//              a different row, the factorization transparently re-analyzes
//              (counted in pivotDriftCount()) so accuracy never degrades.
//
// Dense compatibility.  With the default Natural ordering the elimination
// performs *exactly* the arithmetic of the dense num::LU<T> kernel — same
// pivot sequence (largest magnitude, earliest simulated physical row on
// ties), same per-entry update order, same skip of zero multipliers (the
// dense kernel skips them too), and solves that accumulate in the same
// direction (U is mirrored into row-major form for back substitution).
// Factor and solve results are bit-identical to the dense path on every
// structurally-reachable entry, which is what lets sim/ swap solvers under
// a differential bit-identity harness.  (The one documented exception is
// the sign of exact zeros: the dense kernel "subtracts" products with
// structurally-zero operands, which can flip -0.0 to +0.0 in pathological
// intermediates.  tests/sparse_test.cpp probes this does not occur on the
// supported circuit families.)
//
// Fill control.  Ordering::MinDegree preorders columns with a greedy
// minimum-degree heuristic on the pattern of A + A^T (the classic
// Markowitz-style fill reducer for unsymmetric MNA matrices); the pivot
// sequence then no longer matches the dense kernel's, so results agree to
// rounding rather than bitwise — use it where fill matters more than
// replayability.  Both orderings report fillRatio(), and two guards let
// callers bail back to dense LU: maxFillRatio rejects analyses whose
// factors densify, and maxPivotGrowth rejects numerically wild
// factorizations (max|U| / max|A|).
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

namespace amsyn::num {

/// Compressed-sparse-column matrix with a fixed structure and refreshable
/// values.  `row` is ascending within each column; duplicates are collapsed
/// by CscBuilder at build time so assembly is add-into-slot.
template <typename T>
struct CscMatrix {
  std::size_t n = 0;               ///< square dimension
  std::vector<std::size_t> colPtr; ///< n+1 offsets into row/val
  std::vector<std::size_t> row;    ///< row index per entry
  std::vector<T> val;              ///< value per entry
};

/// Registers (row, col) stamp positions — duplicates allowed — and
/// finalizes them into a CscMatrix plus a handle->slot map, so per-iteration
/// assembly is `fill(val, 0); val[slot] += stamp;`.
class CscBuilder {
 public:
  explicit CscBuilder(std::size_t n) : n_(n) {}

  /// Register one position; returns a handle resolved by finalize().
  std::size_t add(std::size_t r, std::size_t c) {
    entries_.push_back({r, c});
    return entries_.size() - 1;
  }

  std::size_t dimension() const { return n_; }

  /// Build the deduplicated structure (values zero-initialized).
  /// slotOf[handle] is the value index of each registered position.
  template <typename T>
  CscMatrix<T> finalize(std::vector<std::size_t>& slotOf) const;

 private:
  struct Pos {
    std::size_t r, c;
  };
  std::size_t n_;
  std::vector<Pos> entries_;
};

/// How a factor request ended.  ExcessFill / PivotGrowth mean the factor
/// data is invalid and the caller should fall back to the dense kernel
/// (which, in DenseCompatible use, produces the identical result anyway).
enum class SparseLuStatus {
  Ok,
  Singular,     ///< structurally or numerically singular (dense LU throws here)
  ExcessFill,   ///< nnz(L+U) exceeded maxFillRatio * n^2 during analysis
  PivotGrowth,  ///< max|U| / max|A| exceeded maxPivotGrowth
};

struct SparseLuOptions {
  enum class Ordering {
    Natural,   ///< dense-compatible: bit-identical replay of num::LU
    MinDegree, ///< fill-reducing column preorder on A + A^T
  };
  Ordering ordering = Ordering::Natural;
  /// Refactor pivot acceptance: 0 demands the exact partial-pivot choice
  /// (any drift re-analyzes); t > 0 keeps the cached pivot while
  /// |cached| >= t * max|column| (threshold pivoting, MinDegree-style).
  double pivotTolerance = 0.0;
  /// Analysis fails with ExcessFill when nnz(L+U+D) > maxFillRatio * n^2.
  double maxFillRatio = 1.0;
  /// Factor fails with PivotGrowth when max|U| / max|A| exceeds this;
  /// 0 disables the check.
  double maxPivotGrowth = 0.0;
};

/// Immutable result of one symbolic analysis: elimination order, pivot
/// sequence, factor patterns, and the scan/permutation tables needed to
/// replay numerics.  Pattern-only (no values), so one analysis is shared
/// across structure-identical systems of either scalar type — the adopter's
/// refactor re-verifies the pivot sequence against its own values.
struct SparseLuSymbolic {
  std::size_t n = 0;
  std::size_t aNnz = 0;  ///< entry count of the analyzed matrix (sanity check)
  std::vector<std::size_t> colOrder;   ///< step j -> original column
  std::vector<std::size_t> pivotRow;   ///< step j -> original row chosen as pivot
  std::vector<std::size_t> stepOfRow;  ///< original row -> elimination step
  // Scatter pattern per column (original rows incl. fill), for zeroing the
  // work vector between columns.
  std::vector<std::size_t> patPtr, patRow;
  // Pivot-candidate scan per column: uneliminated pattern rows in the dense
  // kernel's physical scan order.  candDiag[j] != 0 when the row sitting at
  // the diagonal's physical slot is itself in the pattern (it then seeds
  // the strict-greater magnitude scan, exactly like the dense kernel).
  std::vector<std::size_t> candPtr, candRow;
  std::vector<unsigned char> candDiag;
  // U columns: source elimination steps, ascending (matches the dense
  // kernel's left-to-right update order).
  std::vector<std::size_t> uPtr, uStep;
  // L columns: entries sorted by target step (lRowStep) with the original
  // row kept alongside for value gathers during refactor.
  std::vector<std::size_t> lPtr, lRowStep, lRowOrig;
  // Row-major mirror of U for back substitution (ascending columns within a
  // row, as the dense kernel accumulates), mapped back to CSC value slots.
  std::vector<std::size_t> uCsrPtr, uCsrCol, uCsrFromCsc;

  std::size_t factorNonzeros() const { return lRowStep.size() + uStep.size() + n; }
  double fillRatio() const {
    return n == 0 ? 0.0
                  : static_cast<double>(factorNonzeros()) /
                        (static_cast<double>(n) * static_cast<double>(n));
  }
};

template <typename T>
class SparseLu {
 public:
  explicit SparseLu(SparseLuOptions opts = {}) : opts_(opts) {}

  /// Factor `a`: numeric-only replay when a symbolic analysis for this
  /// structure is already held (own or adopted), full analysis otherwise.
  /// On anything but Ok the factor data is invalid.
  SparseLuStatus factor(const CscMatrix<T>& a);

  bool haveSymbolic() const { return sym_ != nullptr; }
  std::shared_ptr<const SparseLuSymbolic> symbolic() const { return sym_; }

  /// Adopt a symbolic analysis produced for the *same matrix structure*
  /// (same n, same pattern) — e.g. from a process-wide pattern cache.  The
  /// next factor() replays it numerically, re-analyzing on pivot drift.
  void adoptSymbolic(std::shared_ptr<const SparseLuSymbolic> sym) {
    sym_ = std::move(sym);
    factored_ = false;
  }

  /// Solve A x = b / A^T x = b against the last successful factor().
  std::vector<T> solve(const std::vector<T>& b) const;
  std::vector<T> solveTransposed(const std::vector<T>& b) const;

  std::size_t factorNonzeros() const { return sym_ ? sym_->factorNonzeros() : 0; }
  double fillRatio() const { return sym_ ? sym_->fillRatio() : 0.0; }
  /// max|U| / max|A| of the last successful factorization.
  double pivotGrowth() const { return growth_; }

  std::uint64_t analyzeCount() const { return analyzeCount_; }
  std::uint64_t refactorCount() const { return refactorCount_; }
  std::uint64_t pivotDriftCount() const { return pivotDriftCount_; }

 private:
  SparseLuStatus analyze(const CscMatrix<T>& a);
  SparseLuStatus refactor(const CscMatrix<T>& a);

  SparseLuOptions opts_;
  std::shared_ptr<const SparseLuSymbolic> sym_;
  bool factored_ = false;
  double growth_ = 0.0;
  // Numeric payload aligned with sym_'s patterns.
  std::vector<T> lVal_;     ///< L entries (unit diagonal implicit), CSC order
  std::vector<T> uVal_;     ///< U off-diagonal entries, CSC order
  std::vector<T> uCsrVal_;  ///< U off-diagonal entries, CSR mirror
  std::vector<T> dVal_;     ///< U diagonal (the pivots)
  std::uint64_t analyzeCount_ = 0;
  std::uint64_t refactorCount_ = 0;
  std::uint64_t pivotDriftCount_ = 0;
};

using SparseLuD = SparseLu<double>;
using SparseLuC = SparseLu<std::complex<double>>;

/// Greedy minimum-degree ordering on the pattern of A + A^T (ties broken by
/// smallest index, so the order is deterministic).  Exposed for tests.
std::vector<std::size_t> minDegreeOrder(std::size_t n,
                                        const std::vector<std::size_t>& colPtr,
                                        const std::vector<std::size_t>& rowIdx);

}  // namespace amsyn::num
