#include "numeric/anneal.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "core/metrics.hpp"
#include "core/trace.hpp"

namespace amsyn::num {

namespace {

/// Estimate an initial temperature that accepts `targetAcceptance` of random
/// uphill moves (classic Aarts & van Laarhoven calibration).  Every probe is
/// undone so calibration cannot walk the state away from its starting point
/// (which would wreck warm starts, e.g. the relaxed-dc bias vector).
double calibrateTemperature(const AnnealProblem& p, Rng& rng, double targetAcceptance,
                            std::size_t samples) {
  std::vector<double> uphill;
  const double cur = p.cost();
  if (p.generateNeighbor && p.costAt) {
    // Batched path: draw every probe up front (the generator consumes the
    // exact RNG sequence the serial propose loop would, and the state never
    // moves, so no undo is needed), optionally let the problem pick the
    // evaluation order, then collect deltas in probe order.  The uphill sum
    // — and therefore the temperature — is bit-identical to the serial
    // path; only the evaluation schedule can differ.
    std::vector<std::vector<double>> probes(samples);
    for (std::size_t i = 0; i < samples; ++i) probes[i] = p.generateNeighbor(rng);
    std::vector<std::size_t> order(samples);
    for (std::size_t i = 0; i < samples; ++i) order[i] = i;
    if (p.rankBatch) {
      const auto ranked = p.rankBatch(probes);
      if (ranked.size() == samples) order = ranked;
    }
    std::vector<double> deltas(samples);
    for (std::size_t k = 0; k < samples; ++k) {
      const std::size_t i = order[k];
      deltas[i] = p.costAt(probes[i]) - cur;
    }
    for (std::size_t i = 0; i < samples; ++i)
      if (deltas[i] > 0) uphill.push_back(deltas[i]);
  } else {
    for (std::size_t i = 0; i < samples; ++i) {
      p.propose(rng);
      const double delta = p.cost() - cur;
      if (delta > 0) uphill.push_back(delta);
      p.undo();
    }
  }
  if (uphill.empty()) return 1.0;
  double mean = 0.0;
  for (double d : uphill) mean += d;
  mean /= static_cast<double>(uphill.size());
  const double lnA = std::log(std::max(1e-6, targetAcceptance));
  return -mean / lnA;
}

}  // namespace

AnnealStats anneal(const AnnealProblem& problem, const AnnealOptions& opts) {
  AMSYN_SPAN("anneal");
  Rng rng(opts.seed);
  AnnealStats stats;

  const std::size_t movesPerStage =
      opts.movesPerStage ? opts.movesPerStage
                         : std::max<std::size_t>(64, 16 * opts.problemSizeHint);

  double temperature = opts.initialTemperature;
  if (temperature <= 0.0)
    temperature = calibrateTemperature(problem, rng, opts.initialAcceptance,
                                       std::max<std::size_t>(32, movesPerStage / 2));

  double current = problem.cost();
  double best = current;
  if (problem.snapshot) problem.snapshot();

  const double tStop = temperature * opts.finalTemperature;
  std::size_t stagnant = 0;

  while (temperature > tStop && stagnant < opts.stagnationStages) {
    bool improvedThisStage = false;
    for (std::size_t m = 0; m < movesPerStage; ++m) {
      problem.propose(rng);
      ++stats.movesAttempted;
      const double next = problem.cost();
      const double delta = next - current;
      const bool accept = delta <= 0.0 || rng.uniform() < std::exp(-delta / temperature);
      if (accept) {
        ++stats.movesAccepted;
        current = next;
        if (current < best - 1e-15 * std::abs(best)) {
          best = current;
          improvedThisStage = true;
          if (problem.snapshot) problem.snapshot();
        }
      } else {
        problem.undo();
      }
    }
    ++stats.stages;
    stagnant = improvedThisStage ? 0 : stagnant + 1;
    temperature *= opts.coolingRate;
  }

  stats.bestCost = best;
  // Bulk-record the run's move traffic: one registry touch per anneal, not
  // per move, keeps the inner loop free of even relaxed atomics.
  static const auto cMoves =
      core::metrics::registry().counter("anneal.moves_attempted");
  static const auto cAccepts =
      core::metrics::registry().counter("anneal.moves_accepted");
  static const auto cStages = core::metrics::registry().counter("anneal.stages");
  core::metrics::add(cMoves, stats.movesAttempted);
  core::metrics::add(cAccepts, stats.movesAccepted);
  core::metrics::add(cStages, stats.stages);
  return stats;
}

}  // namespace amsyn::num
