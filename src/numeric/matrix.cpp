#include "numeric/matrix.hpp"

#include <cmath>
#include <limits>
#include <numeric>

namespace amsyn::num {

namespace {
double magnitude(double x) { return std::abs(x); }
double magnitude(const std::complex<double>& x) { return std::abs(x); }
}  // namespace

template <typename T>
LU<T>::LU(Matrix<T> a) : lu_(std::move(a)), perm_(lu_.rows()) {
  if (lu_.rows() != lu_.cols()) throw std::invalid_argument("LU: matrix not square");
  const std::size_t n = lu_.rows();
  std::iota(perm_.begin(), perm_.end(), std::size_t{0});

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivot: largest magnitude in column k at or below the diagonal.
    std::size_t piv = k;
    double best = magnitude(lu_(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double m = magnitude(lu_(i, k));
      if (m > best) {
        best = m;
        piv = i;
      }
    }
    if (best == 0.0) throw std::runtime_error("LU: singular matrix");
    if (piv != k) {
      for (std::size_t j = 0; j < n; ++j) std::swap(lu_(k, j), lu_(piv, j));
      std::swap(perm_[k], perm_[piv]);
      permSign_ = -permSign_;
    }
    const T pivot = lu_(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const T f = lu_(i, k) / pivot;
      lu_(i, k) = f;
      if (f == T{}) continue;
      for (std::size_t j = k + 1; j < n; ++j) lu_(i, j) -= f * lu_(k, j);
    }
  }
}

template <typename T>
std::vector<T> LU<T>::solve(const std::vector<T>& b) const {
  const std::size_t n = lu_.rows();
  if (b.size() != n) throw std::invalid_argument("LU::solve: size mismatch");
  std::vector<T> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[perm_[i]];
  // Forward substitution with unit lower factor.
  for (std::size_t i = 1; i < n; ++i)
    for (std::size_t j = 0; j < i; ++j) x[i] -= lu_(i, j) * x[j];
  // Back substitution with upper factor.
  for (std::size_t i = n; i-- > 0;) {
    for (std::size_t j = i + 1; j < n; ++j) x[i] -= lu_(i, j) * x[j];
    x[i] /= lu_(i, i);
  }
  return x;
}

template <typename T>
std::vector<T> LU<T>::solveTransposed(const std::vector<T>& b) const {
  // A = P^T L U  =>  A^T = U^T L^T P.  Solve U^T y = b, L^T z = y, x = P^T z.
  const std::size_t n = lu_.rows();
  if (b.size() != n) throw std::invalid_argument("LU::solveTransposed: size mismatch");
  std::vector<T> y(b);
  // U^T is lower triangular (non-unit diagonal): forward substitution.
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < i; ++j) y[i] -= lu_(j, i) * y[j];
    y[i] /= lu_(i, i);
  }
  // L^T is unit upper triangular: back substitution.
  for (std::size_t i = n; i-- > 0;)
    for (std::size_t j = i + 1; j < n; ++j) y[i] -= lu_(j, i) * y[j];
  // Undo the row permutation: x[perm_[i]] = z[i].
  std::vector<T> x(n);
  for (std::size_t i = 0; i < n; ++i) x[perm_[i]] = y[i];
  return x;
}

template <typename T>
T LU<T>::determinant() const {
  T det = static_cast<T>(permSign_);
  for (std::size_t i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
  return det;
}

template <typename T>
double LU<T>::conditionProxy() const {
  double mn = std::numeric_limits<double>::infinity(), mx = 0.0;
  for (std::size_t i = 0; i < lu_.rows(); ++i) {
    const double m = magnitude(lu_(i, i));
    mn = std::min(mn, m);
    mx = std::max(mx, m);
  }
  return mx == 0.0 ? 0.0 : mn / mx;
}

template class LU<double>;
template class LU<std::complex<double>>;

double norm2(const VecD& v) {
  double s = 0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

double norm2(const VecC& v) {
  double s = 0;
  for (const auto& x : v) s += std::norm(x);
  return std::sqrt(s);
}

double normInf(const VecD& v) {
  double s = 0;
  for (double x : v) s = std::max(s, std::abs(x));
  return s;
}

}  // namespace amsyn::num
