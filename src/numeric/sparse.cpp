#include "numeric/sparse.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace amsyn::num {

void SparseBuilder::add(std::size_t i, std::size_t j, double v) {
  if (i >= n_ || j >= n_) throw std::out_of_range("SparseBuilder::add");
  if (v == 0.0) return;
  is_.push_back(i);
  js_.push_back(j);
  vs_.push_back(v);
}

SparseBuilder::CSR SparseBuilder::compress() const {
  const std::size_t nnzIn = vs_.size();
  std::vector<std::size_t> order(nnzIn);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return is_[a] != is_[b] ? is_[a] < is_[b] : js_[a] < js_[b];
  });

  CSR out;
  out.n = n_;
  std::vector<std::size_t> rowOf;  // row index of each compressed entry
  for (std::size_t k : order) {
    const std::size_t i = is_[k], j = js_[k];
    if (!rowOf.empty() && rowOf.back() == i && out.col.back() == j) {
      out.val.back() += vs_[k];  // merge duplicate (i, j)
    } else {
      rowOf.push_back(i);
      out.col.push_back(j);
      out.val.push_back(vs_[k]);
    }
  }
  out.rowPtr.assign(n_ + 1, 0);
  for (std::size_t r : rowOf) ++out.rowPtr[r + 1];
  for (std::size_t r = 1; r <= n_; ++r) out.rowPtr[r] += out.rowPtr[r - 1];
  return out;
}

std::vector<double> SparseBuilder::CSR::multiply(const std::vector<double>& x) const {
  if (x.size() != n) throw std::invalid_argument("CSR::multiply size mismatch");
  std::vector<double> y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t k = rowPtr[i]; k < rowPtr[i + 1]; ++k) y[i] += val[k] * x[col[k]];
  return y;
}

CGResult conjugateGradient(const SparseBuilder::CSR& a, const std::vector<double>& b,
                           double tol, std::size_t maxIter) {
  const std::size_t n = a.n;
  if (b.size() != n) throw std::invalid_argument("conjugateGradient size mismatch");
  if (maxIter == 0) maxIter = 4 * n + 100;

  // Jacobi preconditioner.
  std::vector<double> diag(n, 1.0);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t k = a.rowPtr[i]; k < a.rowPtr[i + 1]; ++k)
      if (a.col[k] == i && a.val[k] != 0.0) diag[i] = a.val[k];

  CGResult res;
  res.x.assign(n, 0.0);
  std::vector<double> r = b;
  std::vector<double> z(n), p(n), ap(n);
  for (std::size_t i = 0; i < n; ++i) z[i] = r[i] / diag[i];
  p = z;
  double rz = std::inner_product(r.begin(), r.end(), z.begin(), 0.0);
  const double bnorm = std::sqrt(std::inner_product(b.begin(), b.end(), b.begin(), 0.0));
  if (bnorm == 0.0) {
    res.converged = true;
    return res;
  }

  for (std::size_t it = 0; it < maxIter; ++it) {
    ap = a.multiply(p);
    const double pap = std::inner_product(p.begin(), p.end(), ap.begin(), 0.0);
    if (pap <= 0.0) break;  // matrix not SPD along p; bail with best effort
    const double alpha = rz / pap;
    for (std::size_t i = 0; i < n; ++i) {
      res.x[i] += alpha * p[i];
      r[i] -= alpha * ap[i];
    }
    const double rnorm = std::sqrt(std::inner_product(r.begin(), r.end(), r.begin(), 0.0));
    res.iterations = it + 1;
    res.residual = rnorm / bnorm;
    if (res.residual < tol) {
      res.converged = true;
      return res;
    }
    for (std::size_t i = 0; i < n; ++i) z[i] = r[i] / diag[i];
    const double rzNew = std::inner_product(r.begin(), r.end(), z.begin(), 0.0);
    const double beta = rzNew / rz;
    rz = rzNew;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  return res;
}

}  // namespace amsyn::num
