// Generic simulated-annealing engine.  Annealing is the workhorse global
// optimizer of 1990s analog CAD: OPTIMAN and FRIDGE anneal device sizes,
// OBLX anneals the ASTRX cost function, KOAN anneals device placement, and
// WRIGHT anneals mixed-signal floorplans.  One engine drives all of them; the
// problem supplies move / undo / cost callbacks.
#pragma once

#include <cstddef>
#include <functional>

#include "numeric/rng.hpp"

namespace amsyn::num {

struct AnnealOptions {
  double initialTemperature = 0.0;  ///< 0 = calibrate from random-move statistics
  double finalTemperature = 1e-6;   ///< relative to the initial temperature
  double coolingRate = 0.92;        ///< geometric factor per stage
  std::size_t movesPerStage = 0;    ///< 0 = scale with problem size hint
  std::size_t problemSizeHint = 16;
  double initialAcceptance = 0.9;  ///< target acceptance ratio during calibration
  std::size_t stagnationStages = 12;  ///< stop after this many stages without improvement
  std::uint64_t seed = 1;
};

struct AnnealStats {
  double bestCost = 0.0;
  std::size_t movesAttempted = 0;
  std::size_t movesAccepted = 0;
  std::size_t stages = 0;
};

/// Problem interface for the annealer.
///
/// `propose` mutates the state and returns the cost delta estimate is not
/// required: the engine calls `cost` before/after. `undo` must restore the
/// exact previous state.  `snapshot` is called whenever a new global best is
/// seen so the problem can record it (the engine itself is state-agnostic).
struct AnnealProblem {
  std::function<double()> cost;        ///< full cost of the current state
  std::function<void(Rng&)> propose;   ///< apply a random move
  std::function<void()> undo;          ///< revert the last move
  std::function<void()> snapshot;      ///< record current state as best (optional)

  // Optional batched-calibration support.  When generateNeighbor AND costAt
  // are set, temperature calibration draws its whole probe batch first
  // (generateNeighbor must consume exactly the RNG draws propose would and
  // replicate any proposal-state side effects, WITHOUT touching the current
  // state) and evaluates the probes via costAt.  Deltas enter the uphill
  // statistic in probe order regardless of evaluation order, so the
  // calibrated temperature is bit-identical to the propose/cost/undo path.
  // rankBatch, when additionally set, returns a permutation of batch
  // indices giving the *evaluation* order (e.g. a learned surrogate putting
  // promising probes first — core/surrogate.hpp); it is pure scheduling.
  std::function<std::vector<double>(Rng&)> generateNeighbor;
  std::function<double(const std::vector<double>&)> costAt;
  std::function<std::vector<std::size_t>(const std::vector<std::vector<double>>&)>
      rankBatch;
};

/// Run simulated annealing; returns statistics.  The problem's state is left
/// at the last accepted configuration; callers normally restore the snapshot
/// recorded at the best cost.
AnnealStats anneal(const AnnealProblem& problem, const AnnealOptions& opts = {});

}  // namespace amsyn::num
