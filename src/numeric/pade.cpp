#include "numeric/pade.hpp"

#include <cmath>
#include <stdexcept>

#include "numeric/matrix.hpp"

namespace amsyn::num {

std::complex<double> PoleResidue::evaluate(std::complex<double> s) const {
  std::complex<double> acc = direct;
  for (std::size_t i = 0; i < poles.size(); ++i) acc += residues[i] / (s - poles[i]);
  return acc;
}

double PoleResidue::impulse(double t) const {
  std::complex<double> acc = 0.0;
  for (std::size_t i = 0; i < poles.size(); ++i) acc += residues[i] * std::exp(poles[i] * t);
  return acc.real();
}

double PoleResidue::step(double t) const {
  std::complex<double> acc = direct;
  for (std::size_t i = 0; i < poles.size(); ++i) {
    if (std::abs(poles[i]) < 1e-300) continue;
    acc += residues[i] / poles[i] * (std::exp(poles[i] * t) - 1.0);
  }
  return acc.real();
}

Rational padeApproximant(const std::vector<double>& moments, std::size_t q) {
  if (q == 0 || moments.size() < 2 * q)
    throw std::invalid_argument("padeApproximant: need 2q moments");

  // Frequency scaling (standard AWE practice): raw circuit moments span tens
  // of decades (m_k ~ tau^k), which destroys the Hankel system's
  // conditioning.  Work with m'_k = m_k * tau^{-k}... i.e. substitute
  // s = t / tau so the scaled moments are O(m0), then map the coefficients
  // back at the end.
  double tau = 1.0;
  if (moments[0] != 0.0 && moments[1] != 0.0) tau = std::abs(moments[1] / moments[0]);
  std::vector<double> m(moments.begin(), moments.begin() + 2 * q);
  double scale = 1.0;
  for (std::size_t k = 0; k < m.size(); ++k) {
    m[k] *= scale;  // scale = tau^{-k}
    scale /= tau;
  }

  // Denominator D(t) = 1 + b1 t + ... + bq t^q from the Hankel system:
  //   sum_{j=1..q} m_{q+i-j} b_j = -m_{q+i},  i = 0..q-1.
  MatrixD h(q, q);
  VecD rhs(q);
  for (std::size_t i = 0; i < q; ++i) {
    for (std::size_t j = 0; j < q; ++j) h(i, j) = m[q + i - j - 1];
    rhs[i] = -m[q + i];
  }
  const LU<double> lu(std::move(h));  // throws when exactly singular
  // A numerically rank-deficient (over-ordered) Hankel system produces a
  // spurious pole; treat it as singular so padeAuto steps the order down.
  if (lu.conditionProxy() < 1e-12)
    throw std::runtime_error("padeApproximant: rank-deficient moment matrix");
  VecD b = lu.solve(rhs);

  std::vector<double> den(q + 1, 0.0);
  den[0] = 1.0;
  for (std::size_t j = 0; j < q; ++j) den[j + 1] = b[j];

  // Numerator N(t) = sum_{k=0..q-1} a_k t^k with a_k = sum_{j=0..k} m_{k-j} den_j.
  std::vector<double> numc(q, 0.0);
  for (std::size_t k = 0; k < q; ++k)
    for (std::size_t j = 0; j <= k; ++j) numc[k] += m[k - j] * den[j];

  // Undo the scaling: coefficient of s^k gains tau^k (since t = s * tau).
  double unscale = 1.0;
  for (std::size_t k = 0; k < den.size(); ++k) {
    if (k < numc.size()) numc[k] *= unscale;
    den[k] *= unscale;
    unscale *= tau;
  }

  return Rational{Polynomial(std::move(numc)), Polynomial(std::move(den))};
}

namespace {

/// Does the rational approximant reproduce the given moments?  A Padé fit
/// through a near-singular Hankel system (more poles requested than the
/// response has) passes LU but yields a polluted approximant; checking the
/// Taylor series of N/D against the input moments catches that case.
bool momentsConsistent(const Rational& r, const std::vector<double>& moments,
                       std::size_t count) {
  const auto& nc = r.num.coefficients();
  const auto& dc = r.den.coefficients();
  double scale = 0.0;
  for (std::size_t k = 0; k < count; ++k) scale = std::max(scale, std::abs(moments[k]));
  if (scale == 0.0) return true;
  std::vector<double> taylor(count, 0.0);
  for (std::size_t k = 0; k < count; ++k) {
    double t = k < nc.size() ? nc[k] : 0.0;
    for (std::size_t j = 1; j <= k && j < dc.size(); ++j) t -= dc[j] * taylor[k - j];
    taylor[k] = t / dc[0];
    if (std::abs(taylor[k] - moments[k]) > 1e-6 * scale) return false;
  }
  return true;
}

}  // namespace

Rational padeAuto(const std::vector<double>& moments) {
  for (std::size_t q = moments.size() / 2; q >= 1; --q) {
    try {
      Rational r = padeApproximant(moments, q);
      if (momentsConsistent(r, moments, 2 * q)) return r;
    } catch (const std::runtime_error&) {
      // singular at this order; fall through to a lower one
    }
    if (q == 1)
      throw std::runtime_error("padeAuto: no consistent approximant at any order");
  }
  throw std::invalid_argument("padeAuto: need at least 2 moments");
}

PoleResidue toPoleResidue(const Rational& r, bool enforceStability) {
  PoleResidue out;
  auto poles = r.den.roots();
  // Reflect unstable poles (Re > 0) into the left half plane if requested.
  if (enforceStability)
    for (auto& p : poles)
      if (p.real() > 0.0) p = std::complex<double>(-p.real(), p.imag());

  // Residues by the derivative formula r_i = N(p_i) / D'(p_i), computed on
  // the (possibly reflected) pole set against the original numerator.  After
  // reflection the residues are recomputed so that moments m0 (dc value) is
  // preserved exactly by rescaling.
  const Polynomial dden = r.den.derivative();
  out.poles = poles;
  out.residues.resize(poles.size());
  for (std::size_t i = 0; i < poles.size(); ++i) {
    std::complex<double> dp = dden.evaluate(poles[i]);
    if (std::abs(dp) < 1e-300) dp = 1e-300;
    out.residues[i] = r.num.evaluate(poles[i]) / dp;
  }

  // Preserve the dc value H(0) = m0: scale residues so that
  // sum(-r_i / p_i) = m0 (when all poles are nonzero).
  const double m0 = r.num.coefficient(0) / r.den.coefficient(0);
  std::complex<double> dc = 0.0;
  bool allNonzero = true;
  for (std::size_t i = 0; i < poles.size(); ++i) {
    if (std::abs(out.poles[i]) < 1e-300) {
      allNonzero = false;
      break;
    }
    dc += -out.residues[i] / out.poles[i];
  }
  if (allNonzero && std::abs(dc) > 1e-300 && std::abs(m0) > 0.0) {
    const std::complex<double> scale = m0 / dc;
    for (auto& res : out.residues) res *= scale.real();
  }
  return out;
}

}  // namespace amsyn::num
