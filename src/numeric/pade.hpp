// Padé approximation from a moment (Taylor) series — the numerical core of
// Asymptotic Waveform Evaluation (Pillage & Rohrer, IEEE TCAD 1990, the
// paper's ref [61]).  Given 2q moments of H(s) = m0 + m1 s + m2 s^2 + ...,
// compute a [q-1 / q] rational approximation and its pole/residue form.
#pragma once

#include <complex>
#include <vector>

#include "numeric/polynomial.hpp"

namespace amsyn::num {

/// A rational function num(s)/den(s).
struct Rational {
  Polynomial num;
  Polynomial den;

  std::complex<double> evaluate(std::complex<double> s) const {
    return num.evaluate(s) / den.evaluate(s);
  }
};

/// Pole/residue decomposition H(s) ~= k + sum_i r_i / (s - p_i).
struct PoleResidue {
  std::vector<std::complex<double>> poles;
  std::vector<std::complex<double>> residues;
  double direct = 0.0;  // constant (direct-coupling) term

  std::complex<double> evaluate(std::complex<double> s) const;

  /// Impulse response h(t) = sum_i r_i e^{p_i t} (t >= 0).
  double impulse(double t) const;

  /// Unit-step response y(t) = k + sum_i (r_i / p_i)(e^{p_i t} - 1).
  double step(double t) const;
};

/// Compute the [q-1/q] Padé approximant from moments m0..m_{2q-1}.
/// Throws std::runtime_error if the moment (Hankel) system is singular,
/// which signals that a lower order q should be used.
Rational padeApproximant(const std::vector<double>& moments, std::size_t q);

/// Padé with automatic order reduction: try order q = moments.size()/2 and
/// step down when the Hankel system is singular (which happens exactly when
/// the underlying response has fewer poles than requested — e.g. a 1-pole RC
/// line approximated at q = 2).  Throws only if even q = 1 fails.
Rational padeAuto(const std::vector<double>& moments);

/// Convert a rational approximant to pole/residue form.  Poles with positive
/// real part are unstable artifacts of Padé; when `enforceStability` is set
/// they are reflected into the left half plane (standard AWE practice).
PoleResidue toPoleResidue(const Rational& r, bool enforceStability = true);

}  // namespace amsyn::num
