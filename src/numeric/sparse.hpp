// Sparse symmetric-positive-definite solver support for large resistive
// meshes (the RAIL power-grid substrate).  A triplet builder assembles the
// conductance matrix; conjugate gradients with Jacobi preconditioning solves
// it.  Grid matrices are diagonally dominant SPD, for which CG converges in a
// few hundred iterations even on multi-thousand-node grids.
#pragma once

#include <cstddef>
#include <vector>

namespace amsyn::num {

/// Coordinate-format accumulator that compresses to CSR.
class SparseBuilder {
 public:
  explicit SparseBuilder(std::size_t n) : n_(n) {}

  /// Accumulate a(i,j) += v.
  void add(std::size_t i, std::size_t j, double v);

  std::size_t size() const { return n_; }

  struct CSR {
    std::size_t n = 0;
    std::vector<std::size_t> rowPtr;
    std::vector<std::size_t> col;
    std::vector<double> val;

    /// y = A x
    std::vector<double> multiply(const std::vector<double>& x) const;
  };

  /// Compress accumulated triplets (duplicates summed) into CSR.
  CSR compress() const;

 private:
  std::size_t n_;
  std::vector<std::size_t> is_, js_;
  std::vector<double> vs_;
};

struct CGResult {
  std::vector<double> x;
  std::size_t iterations = 0;
  double residual = 0.0;
  bool converged = false;
};

/// Preconditioned conjugate gradients on an SPD CSR matrix.
CGResult conjugateGradient(const SparseBuilder::CSR& a, const std::vector<double>& b,
                           double tol = 1e-10, std::size_t maxIter = 0);

}  // namespace amsyn::num
