#include "numeric/polynomial.hpp"

#include <cmath>
#include <stdexcept>

namespace amsyn::num {

Polynomial::Polynomial(std::vector<double> coeffs) : coeff_(std::move(coeffs)) {
  if (coeff_.empty()) coeff_.push_back(0.0);
  while (coeff_.size() > 1 && coeff_.back() == 0.0) coeff_.pop_back();
}

bool Polynomial::isZero() const { return coeff_.size() == 1 && coeff_[0] == 0.0; }

double Polynomial::evaluate(double x) const {
  double acc = 0.0;
  for (std::size_t k = coeff_.size(); k-- > 0;) acc = acc * x + coeff_[k];
  return acc;
}

std::complex<double> Polynomial::evaluate(std::complex<double> x) const {
  std::complex<double> acc = 0.0;
  for (std::size_t k = coeff_.size(); k-- > 0;) acc = acc * x + coeff_[k];
  return acc;
}

Polynomial Polynomial::derivative() const {
  if (coeff_.size() <= 1) return Polynomial{};
  std::vector<double> d(coeff_.size() - 1);
  for (std::size_t k = 1; k < coeff_.size(); ++k) d[k - 1] = coeff_[k] * static_cast<double>(k);
  return Polynomial(std::move(d));
}

Polynomial Polynomial::operator+(const Polynomial& rhs) const {
  std::vector<double> out(std::max(coeff_.size(), rhs.coeff_.size()), 0.0);
  for (std::size_t k = 0; k < coeff_.size(); ++k) out[k] += coeff_[k];
  for (std::size_t k = 0; k < rhs.coeff_.size(); ++k) out[k] += rhs.coeff_[k];
  return Polynomial(std::move(out));
}

Polynomial Polynomial::operator-(const Polynomial& rhs) const {
  return *this + rhs * -1.0;
}

Polynomial Polynomial::operator*(const Polynomial& rhs) const {
  if (isZero() || rhs.isZero()) return Polynomial{};
  std::vector<double> out(coeff_.size() + rhs.coeff_.size() - 1, 0.0);
  for (std::size_t i = 0; i < coeff_.size(); ++i)
    for (std::size_t j = 0; j < rhs.coeff_.size(); ++j) out[i + j] += coeff_[i] * rhs.coeff_[j];
  return Polynomial(std::move(out));
}

Polynomial Polynomial::operator*(double s) const {
  std::vector<double> out = coeff_;
  for (double& c : out) c *= s;
  return Polynomial(std::move(out));
}

std::vector<std::complex<double>> Polynomial::roots(double tol, std::size_t maxIter) const {
  const std::size_t n = degree();
  if (n == 0) return {};
  if (coeff_.back() == 0.0) throw std::logic_error("Polynomial::roots: untrimmed");

  // Variable scaling x = r y with r ~ geometric mean of the root magnitudes
  // keeps the monic coefficients O(1) even when roots sit at 1e6..1e9 (AWE
  // pole finding) — Durand-Kerner diverges on badly scaled inputs otherwise.
  double r = 1.0;
  if (coeff_[0] != 0.0)
    r = std::pow(std::abs(coeff_[0] / coeff_.back()), 1.0 / static_cast<double>(n));
  // Monic normalization of the scaled polynomial: coeff of y^k is
  // c_k r^k / (c_n r^n).
  std::vector<std::complex<double>> c(coeff_.begin(), coeff_.end());
  double rk = 1.0;
  for (std::size_t k = 0; k < c.size(); ++k) {
    c[k] *= rk;
    rk *= r;
  }
  for (auto& x : c) x /= c.back();

  // Initial guesses on a circle whose radius bounds the root magnitudes
  // (Cauchy bound), rotated off the real axis to break symmetry.
  double bound = 0.0;
  for (std::size_t k = 0; k < n; ++k) bound = std::max(bound, std::abs(c[k]));
  const double radius = 1.0 + bound;
  std::vector<std::complex<double>> z(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double theta = 2.0 * M_PI * static_cast<double>(k) / static_cast<double>(n) + 0.4;
    z[k] = std::polar(radius * 0.5, theta);
  }

  auto evalMonic = [&](std::complex<double> x) {
    std::complex<double> acc = 1.0;
    for (std::size_t k = n; k-- > 0;) acc = acc * x + c[k];
    return acc;
  };

  for (std::size_t it = 0; it < maxIter; ++it) {
    double maxStep = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      std::complex<double> denom = 1.0;
      for (std::size_t j = 0; j < n; ++j)
        if (j != i) denom *= (z[i] - z[j]);
      if (denom == std::complex<double>{}) denom = 1e-30;
      const std::complex<double> step = evalMonic(z[i]) / denom;
      z[i] -= step;
      maxStep = std::max(maxStep, std::abs(step));
    }
    if (maxStep < tol * radius) break;
  }
  // Undo the variable scaling.
  for (auto& root : z) root *= r;
  return z;
}

}  // namespace amsyn::num
