#include "numeric/sparse_lu.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>
#include <stdexcept>

namespace amsyn::num {

namespace {
constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

double magnitude(double x) { return std::abs(x); }
double magnitude(const std::complex<double>& x) { return std::abs(x); }
}  // namespace

template <typename T>
CscMatrix<T> CscBuilder::finalize(std::vector<std::size_t>& slotOf) const {
  // Order registered positions by (col, row); equal positions collapse to
  // one slot so repeated stamps accumulate.
  std::vector<std::size_t> order(entries_.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    if (entries_[a].c != entries_[b].c) return entries_[a].c < entries_[b].c;
    return entries_[a].r < entries_[b].r;
  });

  CscMatrix<T> m;
  m.n = n_;
  m.colPtr.assign(n_ + 1, 0);
  slotOf.assign(entries_.size(), kNone);
  std::size_t prevR = kNone, prevC = kNone;
  for (std::size_t h : order) {
    const auto& e = entries_[h];
    if (e.r >= n_ || e.c >= n_) throw std::invalid_argument("CscBuilder: index out of range");
    if (e.r != prevR || e.c != prevC) {
      m.row.push_back(e.r);
      ++m.colPtr[e.c + 1];
      prevR = e.r;
      prevC = e.c;
    }
    slotOf[h] = m.row.size() - 1;
  }
  for (std::size_t c = 0; c < n_; ++c) m.colPtr[c + 1] += m.colPtr[c];
  m.val.assign(m.row.size(), T{});
  return m;
}

template CscMatrix<double> CscBuilder::finalize(std::vector<std::size_t>&) const;
template CscMatrix<std::complex<double>> CscBuilder::finalize(std::vector<std::size_t>&) const;

std::vector<std::size_t> minDegreeOrder(std::size_t n,
                                        const std::vector<std::size_t>& colPtr,
                                        const std::vector<std::size_t>& rowIdx) {
  // Adjacency of A + A^T without the diagonal.  Simple list-of-neighbors
  // representation: the matrices this library factors are small enough
  // (hundreds to low thousands of unknowns) that the O(d^2) clique update
  // per elimination is cheap next to the numeric work it saves.
  std::vector<std::vector<std::size_t>> adj(n);
  for (std::size_t c = 0; c < n; ++c)
    for (std::size_t p = colPtr[c]; p < colPtr[c + 1]; ++p) {
      const std::size_t r = rowIdx[p];
      if (r == c) continue;
      adj[r].push_back(c);
      adj[c].push_back(r);
    }
  for (auto& a : adj) {
    std::sort(a.begin(), a.end());
    a.erase(std::unique(a.begin(), a.end()), a.end());
  }

  std::vector<char> eliminated(n, 0);
  std::vector<char> mark(n, 0);
  std::vector<std::size_t> order;
  order.reserve(n);
  for (std::size_t step = 0; step < n; ++step) {
    // Min degree among uneliminated nodes; smallest index wins ties.
    std::size_t best = kNone, bestDeg = kNone;
    for (std::size_t v = 0; v < n; ++v) {
      if (eliminated[v]) continue;
      if (adj[v].size() < bestDeg) {
        bestDeg = adj[v].size();
        best = v;
      }
    }
    order.push_back(best);
    eliminated[best] = 1;
    // Eliminating `best` cliques its neighborhood (the fill edges).
    std::vector<std::size_t> nbrs;
    nbrs.reserve(adj[best].size());
    for (std::size_t u : adj[best])
      if (!eliminated[u]) nbrs.push_back(u);
    for (std::size_t u : nbrs) {
      // Remove `best`, add the other neighbors.
      auto& au = adj[u];
      au.erase(std::remove(au.begin(), au.end(), best), au.end());
      for (std::size_t w : au) mark[w] = 1;
      mark[u] = 1;
      for (std::size_t w : nbrs)
        if (!mark[w]) au.push_back(w);
      for (std::size_t w : au) mark[w] = 0;
      mark[u] = 0;
      std::sort(au.begin(), au.end());
    }
    adj[best].clear();
    adj[best].shrink_to_fit();
  }
  return order;
}

template <typename T>
SparseLuStatus SparseLu<T>::factor(const CscMatrix<T>& a) {
  if (a.colPtr.size() != a.n + 1 || a.row.size() != a.val.size())
    throw std::invalid_argument("SparseLu: malformed CSC matrix");
  if (sym_ && sym_->n == a.n && sym_->aNnz == a.row.size()) return refactor(a);
  return analyze(a);
}

template <typename T>
SparseLuStatus SparseLu<T>::analyze(const CscMatrix<T>& a) {
  const std::size_t n = a.n;
  ++analyzeCount_;
  factored_ = false;
  auto sym = std::make_shared<SparseLuSymbolic>();
  sym->n = n;
  sym->aNnz = a.row.size();

  sym->colOrder.resize(n);
  if (opts_.ordering == SparseLuOptions::Ordering::MinDegree)
    sym->colOrder = minDegreeOrder(n, a.colPtr, a.row);
  else
    std::iota(sym->colOrder.begin(), sym->colOrder.end(), std::size_t{0});

  sym->pivotRow.assign(n, kNone);
  sym->stepOfRow.assign(n, kNone);
  sym->patPtr.assign(1, 0);
  sym->candPtr.assign(1, 0);
  sym->uPtr.assign(1, 0);
  sym->lPtr.assign(1, 0);
  sym->candDiag.assign(n, 0);

  // Simulated dense row swaps: physOf[r] is the physical slot original row
  // r occupies in the dense kernel right now; origAt is its inverse.  The
  // pivot scan and its tie-breaks are replayed against these positions.
  std::vector<std::size_t> physOf(n), origAt(n);
  std::iota(physOf.begin(), physOf.end(), std::size_t{0});
  std::iota(origAt.begin(), origAt.end(), std::size_t{0});

  std::vector<T> w(n, T{});
  std::vector<unsigned char> inPat(n, 0);
  std::vector<std::size_t> pat, cand;
  pat.reserve(64);
  cand.reserve(64);

  lVal_.clear();
  uVal_.clear();
  dVal_.assign(n, T{});

  double maxA = 0.0;
  for (const T& v : a.val) maxA = std::max(maxA, magnitude(v));
  double maxU = 0.0;

  const double n2 = static_cast<double>(n) * static_cast<double>(n);

  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t col = sym->colOrder[j];
    // Scatter the structural column.
    pat.clear();
    for (std::size_t p = a.colPtr[col]; p < a.colPtr[col + 1]; ++p) {
      const std::size_t r = a.row[p];
      w[r] = a.val[p];
      inPat[r] = 1;
      pat.push_back(r);
    }
    // Left-looking update sweep in ascending step order — the dense
    // kernel's left-to-right elimination order.  Fill introduced at step m
    // belongs to rows eliminated after m, so a single ascending pass sees
    // every structural U entry.
    for (std::size_t m = 0; m < j; ++m) {
      const std::size_t pr = sym->pivotRow[m];
      if (!inPat[pr]) continue;
      const T umj = w[pr];
      sym->uStep.push_back(m);
      uVal_.push_back(umj);
      maxU = std::max(maxU, magnitude(umj));
      for (std::size_t p = sym->lPtr[m]; p < sym->lPtr[m + 1]; ++p) {
        const std::size_t r = sym->lRowOrig[p];
        if (!inPat[r]) {
          inPat[r] = 1;
          w[r] = T{};
          pat.push_back(r);
        }
        const T lv = lVal_[p];
        if (lv == T{}) continue;  // dense kernel skips zero multipliers too
        w[r] -= lv * umj;
      }
    }
    sym->uPtr.push_back(sym->uStep.size());

    // Pivot scan, replaying the dense kernel exactly: best seeds from the
    // row at the diagonal's physical slot (0 when that row is outside the
    // pattern), then a strictly-greater magnitude scan walks the remaining
    // candidates in ascending physical position.
    cand.clear();
    for (std::size_t r : pat)
      if (sym->stepOfRow[r] == kNone) cand.push_back(r);
    std::sort(cand.begin(), cand.end(),
              [&](std::size_t x, std::size_t y) { return physOf[x] < physOf[y]; });
    const std::size_t diagOrig = origAt[j];
    std::size_t bestR = kNone;
    double best = 0.0;
    std::size_t scanFrom = 0;
    if (!cand.empty() && cand[0] == diagOrig) {
      bestR = diagOrig;
      best = magnitude(w[diagOrig]);
      sym->candDiag[j] = 1;
      scanFrom = 1;
    }
    for (std::size_t i = scanFrom; i < cand.size(); ++i) {
      const double m = magnitude(w[cand[i]]);
      if (m > best) {
        best = m;
        bestR = cand[i];
      }
    }
    if (best == 0.0 || bestR == kNone) {
      for (std::size_t r : pat) {
        w[r] = T{};
        inPat[r] = 0;
      }
      sym_.reset();
      return SparseLuStatus::Singular;  // dense LU throws at this same step
    }
    for (std::size_t r : cand) sym->candRow.push_back(r);
    sym->candPtr.push_back(sym->candRow.size());

    const T pivot = w[bestR];
    dVal_[j] = pivot;
    maxU = std::max(maxU, magnitude(pivot));
    sym->pivotRow[j] = bestR;
    sym->stepOfRow[bestR] = j;
    // Simulate the dense row swap.
    const std::size_t p = physOf[bestR];
    const std::size_t other = origAt[j];
    origAt[j] = bestR;
    origAt[p] = other;
    physOf[bestR] = j;
    physOf[other] = p;

    // L column: every remaining candidate, multiplier = w / pivot (computed
    // and stored even when zero, as the dense kernel does).
    for (std::size_t r : cand) {
      if (r == bestR) continue;
      sym->lRowOrig.push_back(r);
      lVal_.push_back(w[r] / pivot);
    }
    sym->lPtr.push_back(sym->lRowOrig.size());

    for (std::size_t r : pat) sym->patRow.push_back(r);
    sym->patPtr.push_back(sym->patRow.size());
    for (std::size_t r : pat) {
      w[r] = T{};
      inPat[r] = 0;
    }

    // Fill guard: bail before the factors densify past the point where the
    // dense kernel is the better engine.
    if (opts_.maxFillRatio < 1.0 &&
        static_cast<double>(sym->lRowOrig.size() + sym->uStep.size() + n) >
            opts_.maxFillRatio * n2) {
      sym_.reset();
      return SparseLuStatus::ExcessFill;
    }
  }

  // L entries sorted by target step within each column, so transposed
  // solves accumulate in the dense kernel's ascending order.
  sym->lRowStep.resize(sym->lRowOrig.size());
  std::vector<std::size_t> perm;
  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t b0 = sym->lPtr[j], b1 = sym->lPtr[j + 1];
    perm.resize(b1 - b0);
    std::iota(perm.begin(), perm.end(), std::size_t{0});
    std::sort(perm.begin(), perm.end(), [&](std::size_t x, std::size_t y) {
      return sym->stepOfRow[sym->lRowOrig[b0 + x]] < sym->stepOfRow[sym->lRowOrig[b0 + y]];
    });
    std::vector<std::size_t> rowsOrig(b1 - b0);
    std::vector<T> vals(b1 - b0);
    for (std::size_t i = 0; i < perm.size(); ++i) {
      rowsOrig[i] = sym->lRowOrig[b0 + perm[i]];
      vals[i] = lVal_[b0 + perm[i]];
    }
    for (std::size_t i = 0; i < perm.size(); ++i) {
      sym->lRowOrig[b0 + i] = rowsOrig[i];
      sym->lRowStep[b0 + i] = sym->stepOfRow[rowsOrig[i]];
      lVal_[b0 + i] = vals[i];
    }
  }

  // Row-major mirror of U for back substitution.
  sym->uCsrPtr.assign(n + 1, 0);
  for (std::size_t s : sym->uStep) ++sym->uCsrPtr[s + 1];
  for (std::size_t i = 0; i < n; ++i) sym->uCsrPtr[i + 1] += sym->uCsrPtr[i];
  sym->uCsrCol.resize(sym->uStep.size());
  sym->uCsrFromCsc.resize(sym->uStep.size());
  std::vector<std::size_t> fill(n, 0);
  for (std::size_t j = 0; j < n; ++j)
    for (std::size_t p = sym->uPtr[j]; p < sym->uPtr[j + 1]; ++p) {
      const std::size_t m = sym->uStep[p];
      const std::size_t pos = sym->uCsrPtr[m] + fill[m]++;
      sym->uCsrCol[pos] = j;  // ascending within a row: j sweeps upward
      sym->uCsrFromCsc[pos] = p;
    }
  uCsrVal_.resize(uVal_.size());
  for (std::size_t p = 0; p < uVal_.size(); ++p)
    uCsrVal_[p] = uVal_[sym->uCsrFromCsc[p]];

  growth_ = maxA > 0.0 ? maxU / maxA : 0.0;
  sym_ = std::move(sym);
  if (opts_.maxPivotGrowth > 0.0 && growth_ > opts_.maxPivotGrowth) {
    sym_.reset();
    return SparseLuStatus::PivotGrowth;
  }
  factored_ = true;
  return SparseLuStatus::Ok;
}

template <typename T>
SparseLuStatus SparseLu<T>::refactor(const CscMatrix<T>& a) {
  const SparseLuSymbolic& s = *sym_;
  const std::size_t n = s.n;
  ++refactorCount_;
  factored_ = false;

  lVal_.resize(s.lRowOrig.size());
  uVal_.resize(s.uStep.size());
  dVal_.assign(n, T{});
  if (uCsrVal_.size() != uVal_.size()) uCsrVal_.resize(uVal_.size());

  std::vector<T> w(n, T{});
  double maxA = 0.0;
  for (const T& v : a.val) maxA = std::max(maxA, magnitude(v));
  double maxU = 0.0;

  for (std::size_t j = 0; j < n; ++j) {
    const std::size_t col = s.colOrder[j];
    // Zero the full scatter pattern, then load the structural values.
    for (std::size_t p = s.patPtr[j]; p < s.patPtr[j + 1]; ++p) w[s.patRow[p]] = T{};
    for (std::size_t p = a.colPtr[col]; p < a.colPtr[col + 1]; ++p) w[a.row[p]] = a.val[p];

    for (std::size_t up = s.uPtr[j]; up < s.uPtr[j + 1]; ++up) {
      const std::size_t m = s.uStep[up];
      const T umj = w[s.pivotRow[m]];
      uVal_[up] = umj;
      maxU = std::max(maxU, magnitude(umj));
      for (std::size_t p = s.lPtr[m]; p < s.lPtr[m + 1]; ++p) {
        const T lv = lVal_[p];
        if (lv == T{}) continue;
        w[s.lRowOrig[p]] -= lv * umj;
      }
    }

    // Pivot verification: replay the dense scan over the cached candidate
    // order and confirm partial pivoting still lands on the cached row.
    const std::size_t b0 = s.candPtr[j], b1 = s.candPtr[j + 1];
    std::size_t bestR = kNone;
    double best = 0.0;
    std::size_t i0 = b0;
    if (s.candDiag[j]) {
      bestR = s.candRow[b0];
      best = magnitude(w[bestR]);
      i0 = b0 + 1;
    }
    for (std::size_t i = i0; i < b1; ++i) {
      const double m = magnitude(w[s.candRow[i]]);
      if (m > best) {
        best = m;
        bestR = s.candRow[i];
      }
    }
    if (best == 0.0 || bestR == kNone) return SparseLuStatus::Singular;
    const std::size_t cached = s.pivotRow[j];
    bool keep = bestR == cached;
    if (!keep && opts_.pivotTolerance > 0.0)
      keep = magnitude(w[cached]) >= opts_.pivotTolerance * best;
    if (!keep) {
      // Values drifted across the pivot threshold: the cached sequence
      // would lose accuracy, so pay for a fresh analysis instead.
      ++pivotDriftCount_;
      return analyze(a);
    }

    const T pivot = w[cached];
    dVal_[j] = pivot;
    maxU = std::max(maxU, magnitude(pivot));
    for (std::size_t p = s.lPtr[j]; p < s.lPtr[j + 1]; ++p)
      lVal_[p] = w[s.lRowOrig[p]] / pivot;
  }

  for (std::size_t p = 0; p < uVal_.size(); ++p)
    uCsrVal_[p] = uVal_[s.uCsrFromCsc[p]];

  growth_ = maxA > 0.0 ? maxU / maxA : 0.0;
  if (opts_.maxPivotGrowth > 0.0 && growth_ > opts_.maxPivotGrowth)
    return SparseLuStatus::PivotGrowth;
  factored_ = true;
  return SparseLuStatus::Ok;
}

template <typename T>
std::vector<T> SparseLu<T>::solve(const std::vector<T>& b) const {
  if (!factored_) throw std::runtime_error("SparseLu::solve: no valid factorization");
  const SparseLuSymbolic& s = *sym_;
  const std::size_t n = s.n;
  if (b.size() != n) throw std::invalid_argument("SparseLu::solve: size mismatch");
  std::vector<T> x(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = b[s.pivotRow[i]];
  // Forward substitution, unit L (column-oriented; each target row receives
  // its updates in ascending source order, the dense kernel's rounding).
  for (std::size_t j = 0; j < n; ++j) {
    const T xj = x[j];
    for (std::size_t p = s.lPtr[j]; p < s.lPtr[j + 1]; ++p)
      x[s.lRowStep[p]] -= lVal_[p] * xj;
  }
  // Back substitution over the row-major U mirror (ascending columns, then
  // the diagonal divide — the dense loop verbatim).
  for (std::size_t i = n; i-- > 0;) {
    T xi = x[i];
    for (std::size_t p = s.uCsrPtr[i]; p < s.uCsrPtr[i + 1]; ++p)
      xi -= uCsrVal_[p] * x[s.uCsrCol[p]];
    x[i] = xi / dVal_[i];
  }
  // Undo the column permutation (identity under Natural ordering).
  std::vector<T> out(n);
  for (std::size_t j = 0; j < n; ++j) out[s.colOrder[j]] = x[j];
  return out;
}

template <typename T>
std::vector<T> SparseLu<T>::solveTransposed(const std::vector<T>& b) const {
  if (!factored_) throw std::runtime_error("SparseLu::solveTransposed: no valid factorization");
  const SparseLuSymbolic& s = *sym_;
  const std::size_t n = s.n;
  if (b.size() != n) throw std::invalid_argument("SparseLu::solveTransposed: size mismatch");
  std::vector<T> y(n);
  for (std::size_t j = 0; j < n; ++j) y[j] = b[s.colOrder[j]];
  // U^T is lower triangular (non-unit): forward substitution; U's CSC
  // column i lists sources in ascending step order, matching dense.
  for (std::size_t i = 0; i < n; ++i) {
    T yi = y[i];
    for (std::size_t p = s.uPtr[i]; p < s.uPtr[i + 1]; ++p)
      yi -= uVal_[p] * y[s.uStep[p]];
    y[i] = yi / dVal_[i];
  }
  // L^T is unit upper triangular: back substitution; L's columns are sorted
  // by target step, so the accumulation order again matches dense.
  for (std::size_t i = n; i-- > 0;) {
    T yi = y[i];
    for (std::size_t p = s.lPtr[i]; p < s.lPtr[i + 1]; ++p)
      yi -= lVal_[p] * y[s.lRowStep[p]];
    y[i] = yi;
  }
  std::vector<T> x(n);
  for (std::size_t i = 0; i < n; ++i) x[s.pivotRow[i]] = y[i];
  return x;
}

template class SparseLu<double>;
template class SparseLu<std::complex<double>>;

}  // namespace amsyn::num
