// Derivative-free local optimization: Nelder-Mead simplex with box bounds and
// coordinate (pattern) search.  In the synthesis flow these refine the result
// of global annealing (the classic OPTIMAN / OBLX two-stage strategy) and
// drive the worst-case corner search of the manufacturability tool.
#pragma once

#include <functional>
#include <vector>

namespace amsyn::num {

using ObjectiveFn = std::function<double(const std::vector<double>&)>;

struct BoxBounds {
  std::vector<double> lo;
  std::vector<double> hi;

  /// Clamp a point into the box.
  std::vector<double> clamp(std::vector<double> x) const;
};

struct OptResult {
  std::vector<double> x;
  double value = 0.0;
  std::size_t evaluations = 0;
  bool converged = false;
};

struct NelderMeadOptions {
  std::size_t maxEvaluations = 2000;
  double xTolerance = 1e-9;   ///< simplex size convergence threshold (relative)
  double fTolerance = 1e-12;  ///< function spread convergence threshold
  double initialStep = 0.1;   ///< initial simplex edge, relative to box width
};

/// Minimize f over the box starting from x0 (clamped into the box).
OptResult nelderMead(const ObjectiveFn& f, std::vector<double> x0, const BoxBounds& bounds,
                     const NelderMeadOptions& opts = {});

struct CoordinateSearchOptions {
  std::size_t maxSweeps = 60;
  double initialStep = 0.25;  ///< relative to box width per dimension
  double shrink = 0.5;
  double minStep = 1e-6;
};

/// Compass / coordinate pattern search: evaluate +/- step along each axis,
/// accept improvements, shrink when stuck.  Monotone and extremely robust for
/// the low-dimensional corner boxes of the manufacturability tool.
OptResult coordinateSearch(const ObjectiveFn& f, std::vector<double> x0,
                           const BoxBounds& bounds, const CoordinateSearchOptions& opts = {});

}  // namespace amsyn::num
