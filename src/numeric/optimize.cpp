#include "numeric/optimize.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace amsyn::num {

std::vector<double> BoxBounds::clamp(std::vector<double> x) const {
  for (std::size_t i = 0; i < x.size(); ++i) x[i] = std::clamp(x[i], lo[i], hi[i]);
  return x;
}

OptResult nelderMead(const ObjectiveFn& f, std::vector<double> x0, const BoxBounds& bounds,
                     const NelderMeadOptions& opts) {
  const std::size_t n = x0.size();
  if (bounds.lo.size() != n || bounds.hi.size() != n)
    throw std::invalid_argument("nelderMead: bounds dimension mismatch");

  OptResult res;
  auto eval = [&](const std::vector<double>& x) {
    ++res.evaluations;
    return f(bounds.clamp(x));
  };

  // Initial simplex: x0 plus a perturbation along each axis.
  std::vector<std::vector<double>> pts(n + 1, bounds.clamp(std::move(x0)));
  std::vector<double> vals(n + 1);
  for (std::size_t i = 0; i < n; ++i) {
    const double span = bounds.hi[i] - bounds.lo[i];
    double step = opts.initialStep * (span > 0 ? span : 1.0);
    if (pts[i + 1][i] + step > bounds.hi[i]) step = -step;
    pts[i + 1][i] += step;
  }
  for (std::size_t i = 0; i <= n; ++i) vals[i] = eval(pts[i]);

  constexpr double kAlpha = 1.0, kGamma = 2.0, kRho = 0.5, kSigma = 0.5;

  while (res.evaluations < opts.maxEvaluations) {
    // Order: pts[order[0]] best, pts[order[n]] worst.
    std::vector<std::size_t> order(n + 1);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(),
              [&](std::size_t a, std::size_t b) { return vals[a] < vals[b]; });
    const std::size_t best = order[0], worst = order[n], second = order[n - 1];

    // Convergence: simplex extent and value spread.
    double extent = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double span = bounds.hi[i] - bounds.lo[i];
      if (span <= 0) span = 1.0;
      double d = 0.0;
      for (std::size_t k = 1; k <= n; ++k)
        d = std::max(d, std::abs(pts[order[k]][i] - pts[best][i]) / span);
      extent = std::max(extent, d);
    }
    if (extent < opts.xTolerance || std::abs(vals[worst] - vals[best]) < opts.fTolerance) {
      res.converged = true;
      break;
    }

    // Centroid of all but worst.
    std::vector<double> centroid(n, 0.0);
    for (std::size_t k = 0; k <= n; ++k) {
      if (k == worst) continue;
      for (std::size_t i = 0; i < n; ++i) centroid[i] += pts[k][i];
    }
    for (double& c : centroid) c /= static_cast<double>(n);

    auto affine = [&](double t) {
      std::vector<double> x(n);
      for (std::size_t i = 0; i < n; ++i) x[i] = centroid[i] + t * (centroid[i] - pts[worst][i]);
      return bounds.clamp(std::move(x));
    };

    const auto xr = affine(kAlpha);
    const double fr = eval(xr);
    if (fr < vals[best]) {
      const auto xe = affine(kGamma);
      const double fe = eval(xe);
      if (fe < fr) {
        pts[worst] = xe;
        vals[worst] = fe;
      } else {
        pts[worst] = xr;
        vals[worst] = fr;
      }
    } else if (fr < vals[second]) {
      pts[worst] = xr;
      vals[worst] = fr;
    } else {
      const auto xc = affine(-kRho);
      const double fc = eval(xc);
      if (fc < vals[worst]) {
        pts[worst] = xc;
        vals[worst] = fc;
      } else {
        // Shrink toward best.
        for (std::size_t k = 0; k <= n; ++k) {
          if (k == order[0]) continue;
          for (std::size_t i = 0; i < n; ++i)
            pts[k][i] = pts[order[0]][i] + kSigma * (pts[k][i] - pts[order[0]][i]);
          vals[k] = eval(pts[k]);
        }
      }
    }
  }

  const auto it = std::min_element(vals.begin(), vals.end());
  res.value = *it;
  res.x = pts[static_cast<std::size_t>(it - vals.begin())];
  return res;
}

OptResult coordinateSearch(const ObjectiveFn& f, std::vector<double> x0,
                           const BoxBounds& bounds, const CoordinateSearchOptions& opts) {
  const std::size_t n = x0.size();
  OptResult res;
  auto eval = [&](const std::vector<double>& x) {
    ++res.evaluations;
    return f(x);
  };

  std::vector<double> x = bounds.clamp(std::move(x0));
  double fx = eval(x);
  std::vector<double> step(n);
  for (std::size_t i = 0; i < n; ++i) {
    double span = bounds.hi[i] - bounds.lo[i];
    step[i] = opts.initialStep * (span > 0 ? span : 1.0);
  }

  for (std::size_t sweep = 0; sweep < opts.maxSweeps; ++sweep) {
    bool improved = false;
    for (std::size_t i = 0; i < n; ++i) {
      for (double dir : {+1.0, -1.0}) {
        std::vector<double> xt = x;
        xt[i] = std::clamp(xt[i] + dir * step[i], bounds.lo[i], bounds.hi[i]);
        if (xt[i] == x[i]) continue;
        const double ft = eval(xt);
        if (ft < fx) {
          x = std::move(xt);
          fx = ft;
          improved = true;
          break;
        }
      }
    }
    if (!improved) {
      double maxStep = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        step[i] *= opts.shrink;
        double span = bounds.hi[i] - bounds.lo[i];
        if (span <= 0) span = 1.0;
        maxStep = std::max(maxStep, step[i] / span);
      }
      if (maxStep < opts.minStep) {
        res.converged = true;
        break;
      }
    }
  }
  res.x = std::move(x);
  res.value = fx;
  return res;
}

}  // namespace amsyn::num
