// Polynomials in one variable with real coefficients, plus complex root
// finding.  Used by the AWE/Padé machinery (denominator roots = approximate
// poles) and by the symbolic analyzer (transfer-function coefficients in s).
#pragma once

#include <complex>
#include <vector>

namespace amsyn::num {

/// Polynomial c[0] + c[1] x + c[2] x^2 + ...  Trailing zero coefficients are
/// trimmed on construction so degree() reflects the true degree.
class Polynomial {
 public:
  Polynomial() : coeff_{0.0} {}
  explicit Polynomial(std::vector<double> coeffs);

  /// Degree (0 for constants, including the zero polynomial).
  std::size_t degree() const { return coeff_.size() - 1; }
  const std::vector<double>& coefficients() const { return coeff_; }
  double coefficient(std::size_t k) const { return k < coeff_.size() ? coeff_[k] : 0.0; }
  bool isZero() const;

  double evaluate(double x) const;
  std::complex<double> evaluate(std::complex<double> x) const;

  Polynomial derivative() const;
  Polynomial operator+(const Polynomial& rhs) const;
  Polynomial operator-(const Polynomial& rhs) const;
  Polynomial operator*(const Polynomial& rhs) const;
  Polynomial operator*(double s) const;

  /// All complex roots via the Durand-Kerner (Weierstrass) iteration.
  /// Robust for the modest degrees (< ~20) that arise from Padé denominators
  /// and symbolic transfer functions.
  std::vector<std::complex<double>> roots(double tol = 1e-12,
                                          std::size_t maxIter = 500) const;

 private:
  std::vector<double> coeff_;
};

}  // namespace amsyn::num
