// Deterministic random-number utility shared by every stochastic tool in
// amsyn (annealers, genetic search, Monte-Carlo yield).  One seeded engine
// per tool run keeps experiments reproducible.
#pragma once

#include <cstdint>
#include <random>

namespace amsyn::num {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : eng_(seed) {}

  /// Uniform double in [0, 1).
  double uniform() { return std::uniform_real_distribution<double>(0.0, 1.0)(eng_); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(eng_);
  }

  /// Uniform integer in [0, n).
  std::size_t index(std::size_t n) {
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(eng_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int integer(int lo, int hi) { return std::uniform_int_distribution<int>(lo, hi)(eng_); }

  /// Standard normal deviate.
  double normal() { return std::normal_distribution<double>(0.0, 1.0)(eng_); }

  /// Normal with given mean / standard deviation.
  double normal(double mean, double sigma) {
    return std::normal_distribution<double>(mean, sigma)(eng_);
  }

  /// Bernoulli draw.
  bool chance(double p) { return uniform() < p; }

  std::mt19937_64& engine() { return eng_; }

 private:
  std::mt19937_64 eng_;
};

}  // namespace amsyn::num
