// Deterministic random-number utility shared by every stochastic tool in
// amsyn (annealers, genetic search, Monte-Carlo yield).  One seeded engine
// per tool run keeps experiments reproducible.  Parallel callers derive one
// independent stream per task via split()/streamSeed() instead of sharing a
// generator: sharing would race, and even a locked shared engine would make
// results depend on scheduling order.
#pragma once

#include <cstdint>
#include <random>

namespace amsyn::num {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) : seed_(seed), eng_(seed) {}

  /// Construct directly on stream `stream` of `seed` (see split()).
  Rng(std::uint64_t seed, std::uint64_t stream) : Rng(streamSeed(seed, stream)) {}

  /// Seed of the independent sub-stream `stream` of `seed`: SplitMix64
  /// finalizer over the pair, so streams 0, 1, 2, ... of one seed are
  /// decorrelated from each other and from the parent.  A pure function of
  /// (seed, stream) — results are bit-identical no matter which thread, in
  /// which order, instantiates the stream.
  static std::uint64_t streamSeed(std::uint64_t seed, std::uint64_t stream) {
    std::uint64_t z = seed + 0x9e3779b97f4a7c15ULL * (stream + 1);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  /// Independent generator for parallel task `stream`.  Derived from the
  /// construction seed, not the current engine state, so the set of streams
  /// a seed produces does not depend on how many draws happened in between.
  Rng split(std::uint64_t stream) const { return Rng(streamSeed(seed_, stream)); }

  /// The seed this generator was constructed with.
  std::uint64_t seed() const { return seed_; }

  /// Uniform double in [0, 1).
  double uniform() { return std::uniform_real_distribution<double>(0.0, 1.0)(eng_); }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(eng_);
  }

  /// Uniform integer in [0, n).
  std::size_t index(std::size_t n) {
    return std::uniform_int_distribution<std::size_t>(0, n - 1)(eng_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int integer(int lo, int hi) { return std::uniform_int_distribution<int>(lo, hi)(eng_); }

  /// Standard normal deviate.
  double normal() { return std::normal_distribution<double>(0.0, 1.0)(eng_); }

  /// Normal with given mean / standard deviation.
  double normal(double mean, double sigma) {
    return std::normal_distribution<double>(mean, sigma)(eng_);
  }

  /// Bernoulli draw.
  bool chance(double p) { return uniform() < p; }

  std::mt19937_64& engine() { return eng_; }

 private:
  std::uint64_t seed_ = 0;
  std::mt19937_64 eng_;
};

}  // namespace amsyn::num
