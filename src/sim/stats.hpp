// Linear-solver traffic counters for the analyses in this module.  AC and
// transient sweeps cache their LU factorization and re-factor only when the
// matrix values change (sim/ac.cpp, sim/transient.cpp); these counters make
// that observable — tests assert the factor/reuse split, benchmarks report
// it.  Thread-local so concurrently running evaluations (core/parallel.hpp)
// do not race; read the counters on the thread that ran the analysis.
#pragma once

#include <cstdint>

namespace amsyn::sim {

struct SimStats {
  std::uint64_t luFactorizations = 0;  ///< dense LU factorizations computed
  std::uint64_t luReuses = 0;          ///< solves served from a cached factorization
};

/// Counters of the calling thread.
SimStats& simStats();

/// Zero the calling thread's counters.
void resetSimStats();

}  // namespace amsyn::sim
