// Observability counters for the analyses in this module.
//
// Linear-solver traffic: AC and transient sweeps cache their LU
// factorization and re-factor only when the matrix values change
// (sim/ac.cpp, sim/transient.cpp); these counters make that observable —
// tests assert the factor/reuse split, benchmarks report it.  Thread-local
// so concurrently running evaluations (core/parallel.hpp) do not race; read
// the counters on the thread that ran the analysis.
//
// Failure taxonomy: per-reason tallies of failed candidate evaluations and
// continuation-strategy usage (newton/gmin/source).  These are
// process-global atomics, not thread-local: an optimization run spreads its
// evaluations across pool threads, and the interesting number is the total
// over the run — which is deterministic at any thread count because the set
// of evaluations is.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>

#include "core/evalstatus.hpp"

namespace amsyn::sim {

struct SimStats {
  std::uint64_t luFactorizations = 0;  ///< dense LU factorizations computed
  std::uint64_t luReuses = 0;          ///< solves served from a cached factorization
};

/// Counters of the calling thread.
SimStats& simStats();

/// Zero the calling thread's counters.
void resetSimStats();

/// Process-global failure/strategy tallies (see file comment).
struct FailureStats {
  /// Failed evaluations by reason, indexed by core::EvalStatus.
  std::array<std::atomic<std::uint64_t>, core::kEvalStatusCount> byReason{};
  /// DC operating points that converged via each continuation strategy.
  std::atomic<std::uint64_t> strategyNewton{0};
  std::atomic<std::uint64_t> strategyGmin{0};
  std::atomic<std::uint64_t> strategySource{0};
};

FailureStats& failureStats();
void resetFailureStats();

/// Tally one failed evaluation under its reason code (no-op for Ok).
void recordEvalFailure(core::EvalStatus reason);

/// Convenience read of one reason counter.
std::uint64_t evalFailureCount(core::EvalStatus reason);

}  // namespace amsyn::sim
