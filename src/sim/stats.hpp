// Observability counters for the analyses in this module — thin shims over
// the process-wide metrics registry (core/metrics.hpp).
//
// Linear-solver traffic: AC and transient sweeps cache their LU
// factorization and re-factor only when the matrix values change
// (sim/ac.cpp, sim/transient.cpp).  The counters live in the registry as
// "sim.lu_factorizations" / "sim.lu_reuses", sharded per thread: the
// recording hot path is lock-free, and aggregation sums every thread's
// shard.  This fixes the PR-1 bug where the counters were plain
// thread_locals — an analysis that ran on a pool thread (corner fan-out,
// genetic batches, multi-start anneals) accrued its counts on the worker
// and the caller never saw them.  simStats() keeps the old per-thread view
// for tests that run an analysis on the calling thread; totalSimStats() is
// the run-total view and is thread-count-invariant.
//
// Failure taxonomy: per-reason tallies of failed candidate evaluations and
// continuation-strategy usage (newton/gmin/source).  These are first-class
// registry counters ("sim.fail.<reason>", "sim.strategy.<name>") — the
// legacy FailureStats process-global atomics and their registerExternal
// bridge are retired, which is what lets per-context metric slices cover
// the failure taxonomy like every other counter.  The registry is
// monotonic, so resetFailureStats() is a baseline capture (reads below are
// deltas since the last reset), not a zeroing.
#pragma once

#include <cstdint>

#include "core/evalstatus.hpp"

namespace amsyn::sim {

struct SimStats {
  std::uint64_t luFactorizations = 0;  ///< dense LU factorizations computed
  std::uint64_t luReuses = 0;          ///< solves served from a cached factorization
};

/// Record one LU factorization / cache reuse (hot path; calling thread's
/// registry shard).
void recordLuFactorization();
void recordLuReuse();

/// View of the *calling thread's* counters since its last resetSimStats().
/// Read-only shim: writes to the returned struct are not recorded.
SimStats& simStats();

/// Baseline the calling thread's view at the current counts.
void resetSimStats();

/// Process-wide totals aggregated over every thread (live and exited) since
/// the last metrics::Registry::reset().  Use this for run totals: it is
/// correct at any AMSYN_THREADS.
SimStats totalSimStats();

/// DC continuation strategies tallied under "sim.strategy.<name>".
enum class DcStrategy : std::uint8_t { Newton = 0, Gmin, Source };

/// Tally one DC operating point that converged via `s` (hot path).
void recordDcStrategy(DcStrategy s);

/// Process-wide uses of one strategy since the last resetFailureStats().
std::uint64_t dcStrategyCount(DcStrategy s);

/// Tally one failed evaluation under its reason code (no-op for Ok).
void recordEvalFailure(core::EvalStatus reason);

/// Process-wide failures of one reason since the last resetFailureStats().
std::uint64_t evalFailureCount(core::EvalStatus reason);

/// Baseline every failure/strategy counter at its current total, so the
/// reads above start from zero.  The underlying registry counters are NOT
/// zeroed: process totals (and report snapshots) stay monotonic.
void resetFailureStats();

}  // namespace amsyn::sim
