#include "sim/mna.hpp"

#include <cmath>
#include <cstdint>
#include <limits>
#include <stdexcept>

namespace amsyn::sim {

using circuit::Device;
using circuit::DeviceType;
using circuit::kGround;
using circuit::MosOp;
using circuit::NodeId;

namespace {
constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();
}  // namespace

namespace detail {
/// Diode current with overflow-safe exponential (linearized above vCrit).
void diodeEval(double v, double isat, double vt, double& i, double& g) {
  constexpr double kMaxArg = 40.0;
  const double arg = v / vt;
  if (arg > kMaxArg) {
    const double e = std::exp(kMaxArg);
    i = isat * (e * (1.0 + (arg - kMaxArg)) - 1.0);
    g = isat * e / vt;
  } else {
    const double e = std::exp(arg);
    i = isat * (e - 1.0);
    g = isat * e / vt;
  }
  // Keep a floor conductance so reverse-biased diodes stay invertible.
  g += 1e-12;
}
}  // namespace detail

namespace {
using detail::diodeEval;
}  // namespace

Mna::Mna(const Netlist& net, const Process& proc) : net_(net), proc_(proc) {
  nNodeUnknowns_ = net_.nodeCount() - 1;
  branchOfDevice_.assign(net_.devices().size(), kNone);
  std::size_t next = nNodeUnknowns_;
  for (std::size_t k = 0; k < net_.devices().size(); ++k) {
    const DeviceType t = net_.devices()[k].type;
    if (t == DeviceType::VSource || t == DeviceType::Vcvs || t == DeviceType::Inductor)
      branchOfDevice_[k] = next++;
  }
  nUnknowns_ = next;
}

std::size_t Mna::nodeIndex(NodeId n) const { return n == kGround ? kNone : n - 1; }

double Mna::nodeVoltage(const num::VecD& x, NodeId n) const {
  return n == kGround ? 0.0 : x.at(n - 1);
}

std::size_t Mna::branchIndex(std::size_t deviceIndex) const {
  return branchOfDevice_.at(deviceIndex);
}

void Mna::assemble(const num::VecD& x, const AssemblyOptions& opt, num::MatrixD* jacobian,
                   num::VecD* residual) const {
  const std::size_t n = nUnknowns_;
  if (x.size() != n) throw std::invalid_argument("Mna::assemble: state size mismatch");
  if (jacobian) {
    if (jacobian->rows() != n || jacobian->cols() != n) *jacobian = num::MatrixD(n, n);
    else jacobian->setZero();
  }
  if (residual) residual->assign(n, 0.0);

  auto v = [&](NodeId nd) { return nodeVoltage(x, nd); };
  auto addF = [&](NodeId nd, double val) {
    if (residual && nd != kGround) (*residual)[nd - 1] += val;
  };
  auto addFRow = [&](std::size_t row, double val) {
    if (residual) (*residual)[row] += val;
  };
  auto addJ = [&](NodeId row, NodeId col, double val) {
    if (jacobian && row != kGround && col != kGround) (*jacobian)(row - 1, col - 1) += val;
  };
  auto addJRowNode = [&](std::size_t row, NodeId col, double val) {
    if (jacobian && col != kGround) (*jacobian)(row, col - 1) += val;
  };
  auto addJNodeRow = [&](NodeId row, std::size_t col, double val) {
    if (jacobian && row != kGround) (*jacobian)(row - 1, col) += val;
  };
  auto addJRaw = [&](std::size_t row, std::size_t col, double val) {
    if (jacobian) (*jacobian)(row, col) += val;
  };

  const bool transient = opt.time >= 0.0;
  const double vtherm = proc_.kT() / 1.602176634e-19;

  for (std::size_t k = 0; k < net_.devices().size(); ++k) {
    const Device& d = net_.devices()[k];
    switch (d.type) {
      case DeviceType::Resistor: {
        const NodeId a = d.nodes[0], b = d.nodes[1];
        const double g = 1.0 / d.value;
        const double i = g * (v(a) - v(b));
        addF(a, i);
        addF(b, -i);
        addJ(a, a, g); addJ(a, b, -g);
        addJ(b, b, g); addJ(b, a, -g);
        break;
      }
      case DeviceType::Capacitor: {
        if (!transient) break;  // open at DC
        const NodeId a = d.nodes[0], b = d.nodes[1];
        // Companion states are keyed by (deviceIndex << 3) | slot; plain
        // capacitors use slot 7, inductors slot 6, MOS caps slots 0-4.
        const std::size_t key = (k << 3) | 7;
        const CompanionState st =
            opt.companions && opt.companions->count(key) ? opt.companions->at(key)
                                                         : CompanionState{};
        const double h = opt.timestep;
        const double vNow = v(a) - v(b);
        double geq, i;
        if (opt.trapezoidal) {
          geq = 2.0 * d.value / h;
          i = geq * (vNow - st.prevV) - st.prevI;
        } else {
          geq = d.value / h;
          i = geq * (vNow - st.prevV);
        }
        addF(a, i);
        addF(b, -i);
        addJ(a, a, geq); addJ(a, b, -geq);
        addJ(b, b, geq); addJ(b, a, -geq);
        break;
      }
      case DeviceType::Inductor: {
        const NodeId a = d.nodes[0], b = d.nodes[1];
        const std::size_t br = branchOfDevice_[k];
        const double i = x[br];
        addF(a, i);
        addF(b, -i);
        addJNodeRow(a, br, 1.0);
        addJNodeRow(b, br, -1.0);
        // Branch equation.
        if (!transient) {
          addFRow(br, v(a) - v(b));  // short at DC
          addJRowNode(br, a, 1.0);
          addJRowNode(br, b, -1.0);
        } else {
          const std::size_t key = (k << 3) | 6;
          const CompanionState st =
              opt.companions && opt.companions->count(key) ? opt.companions->at(key)
                                                           : CompanionState{};
          const double h = opt.timestep;
          // BE: v = (L/h)(i - iPrev);  trap: v = (2L/h)(i - iPrev) - vPrev.
          const double req = (opt.trapezoidal ? 2.0 : 1.0) * d.value / h;
          const double extra = opt.trapezoidal ? -st.prevI : 0.0;  // prevI stores prev voltage
          addFRow(br, v(a) - v(b) - req * (x[br] - st.prevV) - extra);
          addJRowNode(br, a, 1.0);
          addJRowNode(br, b, -1.0);
          addJRaw(br, br, -req);
        }
        break;
      }
      case DeviceType::VSource: {
        const NodeId p = d.nodes[0], m = d.nodes[1];
        const std::size_t br = branchOfDevice_[k];
        addF(p, x[br]);
        addF(m, -x[br]);
        addJNodeRow(p, br, 1.0);
        addJNodeRow(m, br, -1.0);
        const double val = transient ? d.waveform.at(opt.time) : d.value * opt.sourceScale;
        addFRow(br, v(p) - v(m) - val);
        addJRowNode(br, p, 1.0);
        addJRowNode(br, m, -1.0);
        break;
      }
      case DeviceType::ISource: {
        const NodeId from = d.nodes[0], to = d.nodes[1];
        const double val = transient ? d.waveform.at(opt.time) : d.value * opt.sourceScale;
        addF(from, val);
        addF(to, -val);
        break;
      }
      case DeviceType::Vcvs: {
        const NodeId p = d.nodes[0], m = d.nodes[1], cp = d.nodes[2], cm = d.nodes[3];
        const std::size_t br = branchOfDevice_[k];
        addF(p, x[br]);
        addF(m, -x[br]);
        addJNodeRow(p, br, 1.0);
        addJNodeRow(m, br, -1.0);
        addFRow(br, v(p) - v(m) - d.value * (v(cp) - v(cm)));
        addJRowNode(br, p, 1.0);
        addJRowNode(br, m, -1.0);
        addJRowNode(br, cp, -d.value);
        addJRowNode(br, cm, d.value);
        break;
      }
      case DeviceType::Vccs: {
        const NodeId p = d.nodes[0], m = d.nodes[1], cp = d.nodes[2], cm = d.nodes[3];
        const double i = d.value * (v(cp) - v(cm));
        addF(p, i);
        addF(m, -i);
        addJ(p, cp, d.value); addJ(p, cm, -d.value);
        addJ(m, cp, -d.value); addJ(m, cm, d.value);
        break;
      }
      case DeviceType::Diode: {
        const NodeId a = d.nodes[0], b = d.nodes[1];
        double i, g;
        diodeEval(v(a) - v(b), d.diodeIs, vtherm, i, g);
        addF(a, i);
        addF(b, -i);
        addJ(a, a, g); addJ(a, b, -g);
        addJ(b, b, g); addJ(b, a, -g);
        break;
      }
      case DeviceType::Mos: {
        const NodeId nd = d.nodes[0], ng = d.nodes[1], ns = d.nodes[2], nb = d.nodes[3];
        const double vd = v(nd), vg = v(ng), vs = v(ns), vb = v(nb);
        const MosOp op = circuit::evalMos(d.mos, proc_, vd, vg, vs, vb);
        addF(nd, op.ids);
        addF(ns, -op.ids);
        if (jacobian) {
          // Exact-to-model derivatives via central differences: robust across
          // region boundaries and the source/drain-swap branch of the model.
          constexpr double kH = 1e-6;
          const NodeId terms[4] = {nd, ng, ns, nb};
          double volts[4] = {vd, vg, vs, vb};
          for (int t = 0; t < 4; ++t) {
            double vp[4] = {volts[0], volts[1], volts[2], volts[3]};
            double vm[4] = {volts[0], volts[1], volts[2], volts[3]};
            vp[t] += kH;
            vm[t] -= kH;
            const double ip =
                circuit::evalMos(d.mos, proc_, vp[0], vp[1], vp[2], vp[3]).ids;
            const double im =
                circuit::evalMos(d.mos, proc_, vm[0], vm[1], vm[2], vm[3]).ids;
            const double didv = (ip - im) / (2.0 * kH);
            addJ(nd, terms[t], didv);
            addJ(ns, terms[t], -didv);
          }
        }
        // Transient: intrinsic/junction caps as linear companions evaluated
        // at the present iterate (Meyer-style; charge errors are second order
        // in the step size and acceptable at level-1 accuracy).
        if (transient && opt.companions) {
          auto stampCap = [&](NodeId ca, NodeId cb, double cap, std::size_t slot) {
            const std::size_t key = (k << 3) | slot;
            const CompanionState st =
                opt.companions->count(key) ? opt.companions->at(key) : CompanionState{};
            const double h = opt.timestep;
            const double vNow = v(ca) - v(cb);
            double geq, i;
            if (opt.trapezoidal) {
              geq = 2.0 * cap / h;
              i = geq * (vNow - st.prevV) - st.prevI;
            } else {
              geq = cap / h;
              i = geq * (vNow - st.prevV);
            }
            addF(ca, i);
            addF(cb, -i);
            addJ(ca, ca, geq); addJ(ca, cb, -geq);
            addJ(cb, cb, geq); addJ(cb, ca, -geq);
          };
          stampCap(ng, ns, op.cgs, 0);
          stampCap(ng, nd, op.cgd, 1);
          stampCap(ng, nb, op.cgb, 2);
          stampCap(nd, nb, op.cdb, 3);
          stampCap(ns, nb, op.csb, 4);
        }
        break;
      }
    }
  }

  // gmin from every node to ground (Newton aid / dc path for floating nodes).
  if (opt.gmin > 0.0) {
    for (std::size_t i = 0; i < nNodeUnknowns_; ++i) {
      if (residual) (*residual)[i] += opt.gmin * x[i];
      addJRaw(i, i, opt.gmin);
    }
  }
}

void Mna::acMatrices(const num::VecD& xOp, num::MatrixD& g, num::MatrixD& c,
                     num::VecD& b) const {
  const std::size_t n = nUnknowns_;
  // G = static Jacobian at the operating point (all nonlinear devices
  // linearized), with a tiny gmin for numerical robustness.
  AssemblyOptions opt;
  opt.gmin = 1e-12;
  assemble(xOp, opt, &g, nullptr);

  c = num::MatrixD(n, n);
  b.assign(n, 0.0);

  auto v = [&](NodeId nd) { return nodeVoltage(xOp, nd); };
  auto addC = [&](NodeId a, NodeId bb, double cap) {
    const std::size_t ia = nodeIndex(a), ib = nodeIndex(bb);
    if (ia != std::numeric_limits<std::size_t>::max()) c(ia, ia) += cap;
    if (ib != std::numeric_limits<std::size_t>::max()) c(ib, ib) += cap;
    if (ia != std::numeric_limits<std::size_t>::max() &&
        ib != std::numeric_limits<std::size_t>::max()) {
      c(ia, ib) -= cap;
      c(ib, ia) -= cap;
    }
  };

  for (std::size_t k = 0; k < net_.devices().size(); ++k) {
    const Device& d = net_.devices()[k];
    switch (d.type) {
      case DeviceType::Capacitor:
        addC(d.nodes[0], d.nodes[1], d.value);
        break;
      case DeviceType::Inductor: {
        // Branch row already has v_a - v_b from the DC short equation; add
        // the -sL i term through C.
        const std::size_t br = branchOfDevice_[k];
        c(br, br) -= d.value;
        break;
      }
      case DeviceType::Mos: {
        const MosOp op = circuit::evalMos(d.mos, proc_, v(d.nodes[0]), v(d.nodes[1]),
                                          v(d.nodes[2]), v(d.nodes[3]));
        addC(d.nodes[1], d.nodes[2], op.cgs);
        addC(d.nodes[1], d.nodes[0], op.cgd);
        addC(d.nodes[1], d.nodes[3], op.cgb);
        addC(d.nodes[0], d.nodes[3], op.cdb);
        addC(d.nodes[2], d.nodes[3], op.csb);
        break;
      }
      case DeviceType::VSource: {
        const std::size_t br = branchOfDevice_[k];
        b[br] += d.acMag;
        break;
      }
      case DeviceType::ISource: {
        const std::size_t ia = nodeIndex(d.nodes[0]), ib = nodeIndex(d.nodes[1]);
        if (ia != std::numeric_limits<std::size_t>::max()) b[ia] -= d.acMag;
        if (ib != std::numeric_limits<std::size_t>::max()) b[ib] += d.acMag;
        break;
      }
      default:
        break;
    }
  }
}

std::vector<std::pair<std::string, MosOp>> Mna::mosOperatingPoints(const num::VecD& x) const {
  std::vector<std::pair<std::string, MosOp>> out;
  for (const Device& d : net_.devices()) {
    if (d.type != DeviceType::Mos) continue;
    out.emplace_back(d.name, circuit::evalMos(d.mos, proc_, nodeVoltage(x, d.nodes[0]),
                                              nodeVoltage(x, d.nodes[1]),
                                              nodeVoltage(x, d.nodes[2]),
                                              nodeVoltage(x, d.nodes[3])));
  }
  return out;
}

}  // namespace amsyn::sim
