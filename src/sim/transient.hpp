// Transient analysis with backward-Euler startup and trapezoidal integration,
// Newton iteration per step, and step halving on non-convergence.
#pragma once

#include <string>
#include <vector>

#include "sim/dc.hpp"
#include "sim/mna.hpp"

namespace amsyn::sim {

struct TransientOptions {
  double tStop = 1e-6;
  double tStep = 1e-9;          ///< nominal step
  bool trapezoidal = true;      ///< trapezoidal after the first BE step
  std::size_t maxNewton = 60;
  double absTol = 1e-9;
  double vAbsTol = 1e-6;
  std::size_t maxHalvings = 8;  ///< step-halving attempts per point
  /// Optional work budget (one Newton iteration = one unit).  Exhaustion
  /// ends the sweep early with EvalStatus::BudgetExhausted and a partial
  /// waveform — a runaway transient degrades instead of hanging its worker.
  core::EvalBudget* budget = nullptr;
};

struct TransientResult {
  bool completed = false;
  /// Ok when the sweep reached tStop; otherwise why it stopped
  /// (DcNoConvergence for a bad starting operating point, BudgetExhausted,
  /// or DcNoConvergence-like step failure reported as NanDetected /
  /// SingularJacobian / DcNoConvergence from the last step attempt).
  core::EvalStatus status = core::EvalStatus::Ok;
  std::vector<double> time;
  std::vector<num::VecD> states;  ///< full MNA state at each time point

  /// Waveform of one node across the run.
  std::vector<double> nodeWaveform(const Mna& mna, const std::string& node) const;
};

/// Run transient from the DC operating point at t = 0 (sources then follow
/// their waveforms).
TransientResult transientAnalysis(const Mna& mna, const DcResult& op,
                                  const TransientOptions& opts);

}  // namespace amsyn::sim
