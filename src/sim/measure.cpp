#include "sim/measure.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace amsyn::sim {

using circuit::Device;
using circuit::DeviceType;

double dcGainDb(const AcSweep& sweep) {
  if (sweep.points.empty()) throw std::invalid_argument("dcGainDb: empty sweep");
  return sweep.magnitudeDb(0);
}

std::optional<double> unityGainFrequency(const AcSweep& sweep) {
  for (std::size_t i = 1; i < sweep.points.size(); ++i) {
    const double m0 = sweep.magnitudeDb(i - 1);
    const double m1 = sweep.magnitudeDb(i);
    if (m0 >= 0.0 && m1 < 0.0) {
      const double f0 = sweep.points[i - 1].frequency;
      const double f1 = sweep.points[i].frequency;
      const double t = m0 / (m0 - m1);
      return f0 * std::pow(f1 / f0, t);  // log-frequency interpolation
    }
  }
  return std::nullopt;
}

std::optional<double> phaseMarginDeg(const AcSweep& sweep) {
  const auto ugf = unityGainFrequency(sweep);
  if (!ugf) return std::nullopt;
  // Phase margin = 180 deg minus the phase *lag accumulated since DC* at
  // the unity-gain frequency.  Referencing the lag to the first sweep point
  // makes the measurement independent of whether the bench sees the gain
  // path inverting (DC phase 180) or non-inverting (DC phase 0).
  const double pDc = sweep.phaseDeg(0);
  for (std::size_t i = 1; i < sweep.points.size(); ++i) {
    const double f0 = sweep.points[i - 1].frequency;
    const double f1 = sweep.points[i].frequency;
    if (f0 <= *ugf && *ugf <= f1) {
      const double p0 = sweep.phaseDeg(i - 1);
      const double p1 = sweep.phaseDeg(i);
      const double t = std::log(*ugf / f0) / std::log(f1 / f0);
      const double lag = pDc - (p0 + t * (p1 - p0));
      return 180.0 - lag;
    }
  }
  return std::nullopt;
}

std::optional<double> bandwidth3dB(const AcSweep& sweep) {
  if (sweep.points.empty()) return std::nullopt;
  const double ref = sweep.magnitudeDb(0) - 3.0103;
  for (std::size_t i = 1; i < sweep.points.size(); ++i) {
    const double m0 = sweep.magnitudeDb(i - 1);
    const double m1 = sweep.magnitudeDb(i);
    if (m0 >= ref && m1 < ref) {
      const double f0 = sweep.points[i - 1].frequency;
      const double f1 = sweep.points[i].frequency;
      const double t = (m0 - ref) / (m0 - m1);
      return f0 * std::pow(f1 / f0, t);
    }
  }
  return std::nullopt;
}

double gainDbAt(const AcSweep& sweep, double frequency) {
  if (sweep.points.empty()) throw std::invalid_argument("gainDbAt: empty sweep");
  if (frequency <= sweep.points.front().frequency) return sweep.magnitudeDb(0);
  for (std::size_t i = 1; i < sweep.points.size(); ++i) {
    const double f0 = sweep.points[i - 1].frequency;
    const double f1 = sweep.points[i].frequency;
    if (f0 <= frequency && frequency <= f1) {
      const double t = std::log(frequency / f0) / std::log(f1 / f0);
      return sweep.magnitudeDb(i - 1) + t * (sweep.magnitudeDb(i) - sweep.magnitudeDb(i - 1));
    }
  }
  return sweep.magnitudeDb(sweep.points.size() - 1);
}

double maxSlewRate(const std::vector<double>& time, const std::vector<double>& wave) {
  if (time.size() != wave.size() || time.size() < 2)
    throw std::invalid_argument("maxSlewRate: bad waveform");
  double best = 0.0;
  for (std::size_t i = 1; i < time.size(); ++i) {
    const double dt = time[i] - time[i - 1];
    if (dt <= 0) continue;
    best = std::max(best, std::abs(wave[i] - wave[i - 1]) / dt);
  }
  return best;
}

std::optional<double> settlingTime(const std::vector<double>& time,
                                   const std::vector<double>& wave, double target,
                                   double tolerance) {
  if (time.size() != wave.size()) throw std::invalid_argument("settlingTime: bad waveform");
  std::optional<double> entered;
  for (std::size_t i = 0; i < time.size(); ++i) {
    if (std::abs(wave[i] - target) <= tolerance) {
      if (!entered) entered = time[i];
    } else {
      entered.reset();
    }
  }
  return entered;
}

double peakTime(const std::vector<double>& time, const std::vector<double>& wave) {
  if (time.size() != wave.size() || time.empty())
    throw std::invalid_argument("peakTime: bad waveform");
  std::size_t best = 0;
  for (std::size_t i = 1; i < wave.size(); ++i)
    if (std::abs(wave[i]) > std::abs(wave[best])) best = i;
  return time[best];
}

double staticPower(const Mna& mna, const DcResult& op) {
  if (!op.converged) throw std::invalid_argument("staticPower: op not converged");
  double p = 0.0;
  const auto& devs = mna.netlist().devices();
  for (std::size_t k = 0; k < devs.size(); ++k) {
    const Device& d = devs[k];
    if (d.type != DeviceType::VSource) continue;
    const double i = op.x.at(mna.branchIndex(k));
    // Power delivered by the source: V * (-i) with our branch convention.
    p += d.value * (-i);
  }
  return std::max(p, 0.0);
}

std::optional<double> psrrDb(const circuit::Netlist& net, const circuit::Process& proc,
                             const std::string& outputNode, double frequency,
                             const std::string& inputSource,
                             const std::string& supplySource) {
  auto gainWithStimulusOn = [&](const std::string& hot,
                                const std::string& cold) -> std::optional<double> {
    circuit::Netlist n = net;
    auto* hotDev = n.findDevice(hot);
    auto* coldDev = n.findDevice(cold);
    if (!hotDev || !coldDev) return std::nullopt;
    hotDev->acMag = 1.0;
    coldDev->acMag = 0.0;
    Mna mna(n, proc);
    const auto op = dcOperatingPoint(mna, flatStart(mna, proc.vdd / 2));
    if (!op.converged) return std::nullopt;
    return std::abs(acTransfer(mna, op, outputNode, frequency));
  };
  const auto aDiff = gainWithStimulusOn(inputSource, supplySource);
  const auto aSupply = gainWithStimulusOn(supplySource, inputSource);
  // acTransfer reports a failed solve as NaN; treat it as "not measurable".
  if (!aDiff || !aSupply || !std::isfinite(*aDiff) || !std::isfinite(*aSupply) ||
      *aSupply <= 0.0)
    return std::nullopt;
  return 20.0 * std::log10(*aDiff / *aSupply);
}

std::string SwingResult::describe() const {
  if (valid) return "swing [" + std::to_string(low) + ", " + std::to_string(high) + "] V";
  return "no swing: " + std::to_string(unconvergedPoints) + " of " +
         std::to_string(requestedPoints) + " sweep points unconverged";
}

SwingResult outputSwing(const DcTransferResult& transfer, double gainFraction) {
  if (transfer.curve.size() < 3) {
    SwingResult res;
    res.valid = false;
    res.unconvergedPoints = transfer.skipped;
    res.requestedPoints = transfer.requested;
    return res;
  }
  SwingResult res = outputSwing(transfer.curve, gainFraction);
  res.unconvergedPoints = transfer.skipped;
  res.requestedPoints = transfer.requested;
  return res;
}

SwingResult outputSwing(const std::vector<std::pair<double, double>>& transfer,
                        double gainFraction) {
  if (transfer.size() < 3) throw std::invalid_argument("outputSwing: need a transfer curve");
  // Incremental gain along the curve.
  std::vector<double> gain(transfer.size(), 0.0);
  double peak = 0.0;
  for (std::size_t i = 1; i < transfer.size(); ++i) {
    const double dx = transfer[i].first - transfer[i - 1].first;
    if (dx == 0) continue;
    gain[i] = std::abs((transfer[i].second - transfer[i - 1].second) / dx);
    peak = std::max(peak, gain[i]);
  }
  const double thresh = gainFraction * peak;
  SwingResult res;
  res.low = res.high = transfer.front().second;
  bool any = false;
  for (std::size_t i = 1; i < transfer.size(); ++i) {
    if (gain[i] >= thresh) {
      const double lo = std::min(transfer[i - 1].second, transfer[i].second);
      const double hi = std::max(transfer[i - 1].second, transfer[i].second);
      if (!any) {
        res.low = lo;
        res.high = hi;
        any = true;
      } else {
        res.low = std::min(res.low, lo);
        res.high = std::max(res.high, hi);
      }
    }
  }
  return res;
}

}  // namespace amsyn::sim
