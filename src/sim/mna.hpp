// Modified nodal analysis assembly.  The unknown vector is
//   x = [ v(1) .. v(N-1) | i(branch 0) .. i(branch B-1) ]
// where node 0 (ground) is eliminated and each voltage-defined element
// (V source, VCVS, inductor) contributes one branch-current unknown.
//
// One assembler serves every analysis: the DC Newton iteration asks for the
// nonlinear residual f(x) and Jacobian J(x); the AC/noise/AWE analyses ask
// for the linearized (G, C, b) triple at an operating point; the transient
// loop asks for residuals with capacitor/inductor companion models folded in.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "circuit/mosmodel.hpp"
#include "circuit/netlist.hpp"
#include "numeric/matrix.hpp"

namespace amsyn::sim {

using circuit::Netlist;
using circuit::Process;

/// Companion-model state for one energy-storage element during transient.
struct CompanionState {
  double prevV = 0.0;  ///< capacitor voltage / inductor current at t_{n}
  double prevI = 0.0;  ///< element current (cap) or voltage (ind) at t_{n}
};

struct AssemblyOptions {
  double sourceScale = 1.0;  ///< scales independent sources (source stepping)
  double gmin = 0.0;         ///< conductance from every node to ground
  double time = -1.0;        ///< >= 0: transient mode, sources follow waveforms
  double timestep = 0.0;     ///< companion-model step (transient only)
  bool trapezoidal = false;  ///< trapezoidal vs backward-Euler companions
  /// Storage-element states keyed by device index (transient only).
  const std::map<std::size_t, CompanionState>* companions = nullptr;
};

namespace detail {
/// Diode current/conductance with overflow-safe exponential.  Shared by the
/// dense assembler and the sparse stamp batches (sim/mnasparse.cpp) so both
/// produce bit-identical stamps.
void diodeEval(double v, double isat, double vt, double& i, double& g);
}  // namespace detail

class Mna {
 public:
  Mna(const Netlist& net, const Process& proc);

  std::size_t size() const { return nUnknowns_; }
  std::size_t nodeUnknowns() const { return nNodeUnknowns_; }

  /// Index of a node voltage in x, or SIZE_MAX for ground.
  std::size_t nodeIndex(circuit::NodeId n) const;
  /// Voltage of node n under solution x (0 for ground).
  double nodeVoltage(const num::VecD& x, circuit::NodeId n) const;
  /// Branch-current index for voltage-defined device `deviceIndex`;
  /// SIZE_MAX when the device has no branch unknown.
  std::size_t branchIndex(std::size_t deviceIndex) const;

  

  /// Residual f(x) and (optionally) Jacobian J(x).  Sign convention: KCL
  /// rows sum currents *leaving* the node; a converged solution has f == 0.
  void assemble(const num::VecD& x, const AssemblyOptions& opt, num::MatrixD* jacobian,
                num::VecD* residual) const;

  /// Linearized system at operating point xOp: G x + s C x = b, where b holds
  /// the AC magnitudes of independent sources.  Inductor/source branch rows
  /// are included (the C matrix carries -L on inductor branch rows).
  void acMatrices(const num::VecD& xOp, num::MatrixD& g, num::MatrixD& c,
                  num::VecD& b) const;

  const Netlist& netlist() const { return net_; }
  const Process& process() const { return proc_; }

  /// Operating-point info for each MOS at solution x.
  std::vector<std::pair<std::string, circuit::MosOp>> mosOperatingPoints(
      const num::VecD& x) const;

 private:
  const Netlist& net_;
  const Process& proc_;
  std::size_t nNodeUnknowns_ = 0;
  std::size_t nUnknowns_ = 0;
  std::vector<std::size_t> branchOfDevice_;  // per device, SIZE_MAX if none
};

}  // namespace amsyn::sim
