#include "sim/fault.hpp"

namespace amsyn::sim {

FaultInjector& FaultInjector::instance() {
  thread_local FaultInjector tlInjector;
  return tlInjector;
}

void FaultInjector::arm(const FaultPlan& plan) {
  plan_ = plan;
  plan_.useExhaustBudget = plan.useExhaustBudget || plan.exhaustBudgetAfter > 0;
  armed_ = true;
}

void FaultInjector::disarm() {
  plan_ = FaultPlan{};
  armed_ = false;
}

namespace {
/// Consume one event from a countdown counter; true while events remain.
bool take(std::uint64_t& remaining) {
  if (remaining == 0) return false;
  --remaining;
  return true;
}
}  // namespace

bool FaultInjector::takeDcNewtonFailure() {
  return armed_ && take(plan_.failDcNewtonSolves);
}

bool FaultInjector::takeResidualPoison() {
  return armed_ && take(plan_.poisonDcResiduals);
}

bool FaultInjector::takeLuFailure() {
  return armed_ && take(plan_.failLuFactorizations);
}

bool FaultInjector::takeBudgetExhaustion() {
  if (!armed_ || !plan_.useExhaustBudget) return false;
  if (plan_.exhaustBudgetAfter > 0) {
    --plan_.exhaustBudgetAfter;
    return false;  // still within the injected allowance
  }
  return true;
}

bool consumeWork(core::EvalBudget* budget, std::uint64_t units) {
  FaultInjector& inj = FaultInjector::instance();
  if (inj.armed() && inj.takeBudgetExhaustion()) return false;
  if (!budget) return true;
  return budget->consume(units);
}

}  // namespace amsyn::sim
