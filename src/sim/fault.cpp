#include "sim/fault.hpp"

#include <algorithm>
#include <array>
#include <atomic>

#include "core/context.hpp"
#include "numeric/rng.hpp"

namespace amsyn::sim {

// The context-side schedule array must fit every site.
static_assert(kFaultSiteCount <= core::FaultScheduleState::kMaxSites,
              "FaultScheduleState::kMaxSites too small for FaultSite");

FaultInjector& FaultInjector::threadLocal() {
  thread_local FaultInjector tlInjector;
  return tlInjector;
}

void FaultInjector::arm(const FaultPlan& plan) {
  plan_ = plan;
  plan_.useExhaustBudget = plan.useExhaustBudget || plan.exhaustBudgetAfter > 0;
  armed_ = true;
}

void FaultInjector::disarm() {
  plan_ = FaultPlan{};
  armed_ = false;
}

namespace {
/// Consume one event from a countdown counter; true while events remain.
bool take(std::uint64_t& remaining) {
  if (remaining == 0) return false;
  --remaining;
  return true;
}
}  // namespace

bool FaultInjector::takeDcNewtonFailure() {
  // The batch draw runs first so its occurrence counter advances the same
  // way whether or not a thread-local plan happens to be armed too.
  const bool batch = takeBatchFault(FaultSite::DcNewton);
  return batch || (armed_ && take(plan_.failDcNewtonSolves));
}

bool FaultInjector::takeResidualPoison() {
  const bool batch = takeBatchFault(FaultSite::DcResidual);
  return batch || (armed_ && take(plan_.poisonDcResiduals));
}

bool FaultInjector::takeLuFailure() {
  const bool batch = takeBatchFault(FaultSite::LuFactor);
  return batch || (armed_ && take(plan_.failLuFactorizations));
}

bool FaultInjector::takeBudgetExhaustion() {
  if (!armed_ || !plan_.useExhaustBudget) return false;
  if (plan_.exhaustBudgetAfter > 0) {
    --plan_.exhaustBudgetAfter;
    return false;  // still within the injected allowance
  }
  return true;
}

bool consumeWork(core::EvalBudget* budget, std::uint64_t units) {
  FaultInjector& inj = FaultInjector::threadLocal();
  if (inj.armed() && inj.takeBudgetExhaustion()) return false;
  if (takeBatchFault(FaultSite::BudgetCharge)) return false;
  if (!budget) return true;
  return budget->consume(units);
}

// ---------------------------------------------------------------------------
// Batch-level deterministic fault schedule

namespace {

/// The calling thread's bound job: index + per-site occurrence counters.
/// Lives on the heap, owned by the innermost BatchFaultScope, so nesting
/// (a retry loop inside a pool task) restores the outer job exactly.
struct JobFaultState {
  std::size_t jobIndex = 0;
  std::array<std::uint64_t, kFaultSiteCount> occurrences{};
};

JobFaultState*& tlJobState() {
  thread_local JobFaultState* state = nullptr;
  return state;
}

bool& tlSolverWindow() {
  thread_local bool open = false;
  return open;
}

constexpr bool isSolverSite(FaultSite s) {
  switch (s) {
    case FaultSite::DcNewton:
    case FaultSite::DcResidual:
    case FaultSite::LuFactor:
    case FaultSite::BudgetCharge:
      return true;
    default:
      return false;
  }
}

}  // namespace

void armBatchFaults(const BatchFaultPlan& plan) {
  // Writes land on the *current* context: ambient for legacy callers, the
  // arming tenant's context in scoped code.  Plan fields are published
  // before the release-store on `armed`, matching the acquire-load in
  // takeBatchFault.
  core::FaultScheduleState& fs = core::ExecutionContext::current().faultSchedule();
  fs.seed = plan.seed;
  std::copy(plan.rates, plan.rates + kFaultSiteCount, fs.rates.begin());
  fs.armed.store(true, std::memory_order_release);
}

void disarmBatchFaults() {
  core::FaultScheduleState& fs = core::ExecutionContext::current().faultSchedule();
  fs.armed.store(false, std::memory_order_release);
  fs.seed = 1;
  fs.rates.fill(0.0);
}

bool batchFaultsArmed() {
  return core::ExecutionContext::current().armedFaultSchedule() != nullptr;
}

BatchFaultScope::BatchFaultScope(std::size_t jobIndex) {
  saved_ = tlJobState();
  tlJobState() = new JobFaultState{jobIndex, {}};
}

BatchFaultScope::~BatchFaultScope() {
  delete tlJobState();
  tlJobState() = static_cast<JobFaultState*>(saved_);
}

SolverFaultWindow::SolverFaultWindow() : saved_(tlSolverWindow()) {
  tlSolverWindow() = true;
}

SolverFaultWindow::~SolverFaultWindow() { tlSolverWindow() = saved_; }

bool takeBatchFault(FaultSite site) {
  // Resolve the governing schedule through the current context chain: a job
  // context inherits its tenant's (or the ambient) armed plan, and sibling
  // contexts never observe each other's.
  const core::FaultScheduleState* fs =
      core::ExecutionContext::current().armedFaultSchedule();
  if (!fs) return false;
  JobFaultState* state = tlJobState();
  if (!state) return false;
  if (isSolverSite(site) && !tlSolverWindow()) return false;
  // The occurrence counter advances on every consultation — including
  // zero-rate sites — so the draw sequence is a property of the job's
  // control flow alone, not of which rates a particular plan enables.
  const auto siteIx = static_cast<std::size_t>(site);
  const std::uint64_t occurrence = state->occurrences[siteIx]++;
  const double rate = fs->rates[siteIx];
  if (rate <= 0.0) return false;
  // Pure draw over (seed, jobIndex, site, occurrence): two SplitMix64
  // finalizer passes, the same construction the per-task RNG streams use.
  const std::uint64_t streamKey = num::Rng::streamSeed(
      fs->seed,
      (static_cast<std::uint64_t>(state->jobIndex) << 8) |
          static_cast<std::uint64_t>(siteIx));
  const std::uint64_t h = num::Rng::streamSeed(streamKey, occurrence);
  const double u = static_cast<double>(h >> 11) * 0x1.0p-53;
  return u < rate;
}

}  // namespace amsyn::sim
