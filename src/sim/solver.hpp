// Linear-solver selection and the sparse fast path's shared plumbing.
//
// Every analysis in sim/ solves structure-identical systems over and over:
// Newton iterations and continuation rungs reuse one Jacobian pattern, an
// AC sweep reuses one (G + jwC) pattern per frequency point, and a corner
// fan-out evaluates the same netlist structure at many process points.  The
// sparse path (numeric/sparse_lu.hpp + sim/mnasparse.hpp) exploits that by
// splitting factorization: analyze once per *pattern*, refactor numerically
// everywhere else.  This header provides:
//
//   - SolverMode + the process-wide knob (AMSYN_SOLVER env override, and
//     FlowOptions::solver per flow), with Auto picking sparse only above a
//     size threshold so small netlists keep the dense kernel's lower
//     constant factor;
//   - a process-wide symbolic-factorization cache keyed by pattern digest,
//     so the thousands of Mna instances a synthesis run creates for the
//     *same* testbench structure share one analysis;
//   - SparsePatternSolver<T>, the per-analysis wrapper that adopts/publishes
//     cached symbolics, maps SparseLuStatus to an outcome the caller can
//     act on (Singular, or Fallback => redo with dense — identical results
//     by construction in Natural ordering), and feeds the sim.sparse.*
//     counters.
#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "core/evalcache.hpp"
#include "core/metrics.hpp"
#include "numeric/sparse_lu.hpp"
#include "sim/mnasparse.hpp"

namespace amsyn::sim {

enum class SolverMode {
  Auto,    ///< sparse when the system is large enough to win (default)
  Dense,   ///< always num::LU
  Sparse,  ///< always the sparse path (with dense fallback on guard trips)
};

/// Process-wide solver mode.  Initialized once from AMSYN_SOLVER
/// ("auto" / "dense" / "sparse", case-insensitive); setSolverMode overrides
/// (FlowOptions::solver routes through this).
SolverMode solverMode();
void setSolverMode(SolverMode m);

/// Parse a mode name; nullopt on anything unrecognized.
std::optional<SolverMode> parseSolverMode(std::string_view s);
const char* solverModeName(SolverMode m);

/// Auto picks sparse at and above this unknown count.  The default opamp
/// testbenches sit near n = 11 where dense wins on constant factor; ladder
/// netlists a few times larger already favor sparse refactors.
inline constexpr std::size_t kSparseAutoThreshold = 32;

/// Should an analysis over an n-unknown system take the sparse path?
bool useSparseSolver(std::size_t n);

/// Process-wide symbolic cache: pattern digest -> analysis.  Thread-safe;
/// entries persist for the process lifetime (patterns are few — one per
/// testbench structure x domain — while instances number in the millions).
std::shared_ptr<const num::SparseLuSymbolic> lookupSymbolic(
    const core::cache::Digest128& key);
void publishSymbolic(const core::cache::Digest128& key,
                     std::shared_ptr<const num::SparseLuSymbolic> sym);

/// sim.sparse.* counter ids, registered on first sparse use (keeps the run
/// report's counter set — and the golden report-schema tests — unchanged
/// for runs that never touch the sparse path).
struct SparseCounters {
  core::metrics::CounterId analyses;       ///< sim.sparse.analyses
  core::metrics::CounterId refactors;      ///< sim.sparse.refactors
  core::metrics::CounterId pivotDrift;     ///< sim.sparse.pivot_drift
  core::metrics::CounterId denseFallbacks; ///< sim.sparse.dense_fallbacks
  core::metrics::CounterId symbolicHits;   ///< sim.sparse.symbolic_hits
  core::metrics::CounterId symbolicMisses; ///< sim.sparse.symbolic_misses
  core::metrics::CounterId solves;         ///< sim.sparse.solves
};
const SparseCounters& sparseCounters();

enum class SparseFactorOutcome {
  Ok,        ///< factored; solve()/solveTransposed() valid
  Singular,  ///< matches the dense kernel's singular throw
  Fallback,  ///< guard tripped (fill/growth): redo this system with dense
};

/// One analysis' solver over a fixed pattern.  Construct once per pattern
/// (per Newton context / AC sweep), factor per value refresh.  After the
/// first Fallback the instance stays in fallback so the caller's dense path
/// handles every subsequent system of the sweep (guards are properties of
/// the structure and operating region, not of one value set).
template <typename T>
class SparsePatternSolver {
 public:
  SparsePatternSolver(const core::cache::Digest128& patternDigest,
                      std::string_view domain)
      : lu_(luOptions()) {
    // Domain-tag the cache key: the real-valued Newton Jacobian and the
    // complex AC matrix share a structure but not a pivot sequence, and
    // letting them share a symbolic entry would thrash it via pivot drift.
    core::cache::Hasher128 h;
    h.mixDigest(patternDigest);
    h.mixString(domain);
    key_ = h.digest();
  }

  SparseFactorOutcome factor(const num::CscMatrix<T>& a);

  /// True once a guard has tripped; callers skip straight to dense.
  bool fellBack() const { return fallback_; }

  std::vector<T> solve(const std::vector<T>& b) const {
    core::metrics::add(sparseCounters().solves);
    return lu_.solve(b);
  }
  std::vector<T> solveTransposed(const std::vector<T>& b) const {
    core::metrics::add(sparseCounters().solves);
    return lu_.solveTransposed(b);
  }

  const num::SparseLu<T>& lu() const { return lu_; }

 private:
  static num::SparseLuOptions luOptions() {
    num::SparseLuOptions o;
    o.ordering = num::SparseLuOptions::Ordering::Natural;  // dense-compatible
    o.maxFillRatio = 0.8;      // denser than this and dense LU is cheaper
    o.maxPivotGrowth = 1e12;   // numerically wild => let dense handle it
    return o;
  }

  core::cache::Digest128 key_;
  num::SparseLu<T> lu_;
  bool triedAdopt_ = false;
  bool fallback_ = false;
};

extern template class SparsePatternSolver<double>;
extern template class SparsePatternSolver<std::complex<double>>;

/// Everything a sparse Newton iteration needs, bundled so dc.cpp can thread
/// one pointer through its continuation ladder: the stamp plan and the
/// pattern solver (shared across rungs — same structure, changing values).
struct SparseNewtonContext {
  SparseMna sys;
  SparsePatternSolver<double> solver;
  /// `domain` separates symbolic-cache entries whose pivot sequences would
  /// thrash each other ("newton" for DC Jacobians, "tran" for companion-
  /// augmented ones — same structure, different value regimes).
  explicit SparseNewtonContext(const Mna& mna, std::string_view domain = "newton")
      : sys(mna), solver(sys.patternDigest(), domain) {}
};

}  // namespace amsyn::sim
