#include "sim/noise.hpp"

#include <cmath>
#include <complex>
#include <stdexcept>

#include "core/metrics.hpp"
#include "core/trace.hpp"
#include "sim/ac.hpp"
#include "sim/fault.hpp"
#include "sim/stats.hpp"

namespace amsyn::sim {

using circuit::Device;
using circuit::DeviceType;
using circuit::NodeId;

double NoiseResult::integratedOutputRms() const {
  double acc = 0.0;
  for (std::size_t i = 1; i < points.size(); ++i) {
    const double df = points[i].frequency - points[i - 1].frequency;
    acc += 0.5 * (points[i].outputPsd + points[i - 1].outputPsd) * df;
  }
  return std::sqrt(acc);
}

NoiseResult noiseAnalysis(const Mna& mna, const DcResult& op, const std::string& outputNode,
                          const std::vector<double>& frequencies,
                          core::EvalBudget* budget) {
  if (!op.converged) throw std::invalid_argument("noiseAnalysis: op not converged");
  AMSYN_SPAN("noise_analysis");
  static const auto cRuns =
      core::metrics::registry().counter("sim.noise_analyses");
  core::metrics::add(cRuns);
  const auto outNode = mna.netlist().findNode(outputNode);
  if (!outNode || *outNode == circuit::kGround)
    throw std::invalid_argument("noiseAnalysis: bad output node " + outputNode);
  const std::size_t outIdx = mna.nodeIndex(*outNode);

  const std::size_t n = mna.size();
  const auto mosOps = mna.mosOperatingPoints(op.x);
  // One solver per analysis: the forward and adjoint solves at each
  // frequency share a single LU factorization.
  AcSolver solver(mna, op);
  const num::VecC rhs = solver.stimulus();

  NoiseResult res;
  for (double f : frequencies) {
    if (!consumeWork(budget)) {
      res.status = budgetStopStatus(budget);
      recordEvalFailure(res.status);
      return res;
    }
    // Forward solve: output phasor under the netlist's AC stimulus (for
    // input referral).  A singular linearized system at some frequency is a
    // property of the candidate, not a bug: stop with the reason attached.
    num::VecC xf, xa;
    num::VecC e(n, std::complex<double>{0.0, 0.0});
    e[outIdx] = 1.0;
    try {
      xf = solver.solve(f, rhs);
      // Adjoint solve: transfer from a unit current injected at any node
      // pair to the output voltage is (xa[a] - xa[b]).
      xa = solver.solveTransposed(f, e);
    } catch (const std::runtime_error&) {
      res.status = core::EvalStatus::SingularJacobian;
      recordEvalFailure(res.status);
      return res;
    }
    const double gainMag = std::abs(xf[outIdx]);

    auto h2 = [&](NodeId from, NodeId to) {
      std::complex<double> hv = 0.0;
      if (from != circuit::kGround) hv += xa[mna.nodeIndex(from)];
      if (to != circuit::kGround) hv -= xa[mna.nodeIndex(to)];
      return std::norm(hv);
    };

    double psd = 0.0;
    std::size_t mosIdx = 0;
    for (const Device& d : mna.netlist().devices()) {
      switch (d.type) {
        case DeviceType::Resistor:
          psd += h2(d.nodes[0], d.nodes[1]) * 4.0 * mna.process().kT() / d.value;
          break;
        case DeviceType::Mos: {
          const auto& opInfo = mosOps.at(mosIdx++).second;
          // Channel noise flows drain -> source.
          psd += h2(d.nodes[0], d.nodes[2]) *
                 circuit::mosNoisePsd(d.mos, mna.process(), opInfo, f);
          break;
        }
        default:
          break;
      }
    }

    NoisePoint pt;
    pt.frequency = f;
    pt.outputPsd = psd;
    pt.inputReferredPsd = gainMag > 1e-12 ? psd / (gainMag * gainMag) : 0.0;
    res.points.push_back(pt);
  }
  return res;
}

}  // namespace amsyn::sim
