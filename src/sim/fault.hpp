// Deterministic fault injection for the simulation kernels.  Robustness
// code is only trustworthy if its fallback paths demonstrably fire: the
// gmin/source continuation rungs, the NaN bail-out, the budget-exhaustion
// path.  Real circuits that hit those paths are fragile test fixtures, so
// tests instead arm a FaultPlan and the solvers consult it at well-defined
// points.
//
// The injector is thread_local: a test arms faults on its own thread and
// calls the solver directly, so concurrently running evaluations on pool
// threads are never perturbed and injection is deterministic by
// construction.  Production code pays one thread-local bool load per hook
// when disarmed.
#pragma once

#include <cstdint>

#include "core/evalstatus.hpp"

namespace amsyn::sim {

/// What to break, counted in solver events from the moment of arming.
struct FaultPlan {
  /// Force the next N calls to the DC Newton solver to fail as singular
  /// (each continuation rung makes one or more such calls, so N=1 forces
  /// plain Newton onto the gmin rung and N=2 pushes through to source
  /// stepping).
  std::uint64_t failDcNewtonSolves = 0;
  /// Poison the next N DC residual assemblies with a NaN entry (exercises
  /// the NaN guard that bails to the next continuation rung immediately).
  std::uint64_t poisonDcResiduals = 0;
  /// Force the next N AC/transient LU factorizations to be treated as
  /// singular.
  std::uint64_t failLuFactorizations = 0;
  /// > 0: after N successful budget charges, every further charge reports
  /// exhaustion regardless of the budget's real limit (exercises the
  /// BudgetExhausted path at a precise iterate, even mid-evaluation).
  std::uint64_t exhaustBudgetAfter = 0;
  bool useExhaustBudget = false;  ///< exhaustBudgetAfter == 0 means "immediately"
};

class FaultInjector {
 public:
  /// The calling thread's injector.
  static FaultInjector& instance();

  void arm(const FaultPlan& plan);
  void disarm();
  bool armed() const { return armed_; }

  // --- hooks consulted by the solvers (each consumes one planned event) ---
  bool takeDcNewtonFailure();   ///< sim/dc.cpp, once per Newton solve call
  bool takeResidualPoison();    ///< sim/dc.cpp, once per residual assembly
  bool takeLuFailure();         ///< sim/ac.cpp + sim/transient.cpp factorizations
  bool takeBudgetExhaustion();  ///< consumeWork(), once per charge

 private:
  FaultPlan plan_;
  bool armed_ = false;
};

/// RAII arming for tests: faults active for the scope's lifetime.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(const FaultPlan& plan) {
    FaultInjector::instance().arm(plan);
  }
  ~ScopedFaultInjection() { FaultInjector::instance().disarm(); }

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
};

/// Charge `units` against an (optional) budget, honoring injected
/// exhaustion.  All analysis loops fund their work through this helper so
/// the budget semantics — and the injector — act at every analysis kind.
bool consumeWork(core::EvalBudget* budget, std::uint64_t units = 1);

}  // namespace amsyn::sim
