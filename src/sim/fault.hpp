// Deterministic fault injection for the simulation kernels.  Robustness
// code is only trustworthy if its fallback paths demonstrably fire: the
// gmin/source continuation rungs, the NaN bail-out, the budget-exhaustion
// path.  Real circuits that hit those paths are fragile test fixtures, so
// tests instead arm a FaultPlan and the solvers consult it at well-defined
// points.
//
// The injector is thread_local: a test arms faults on its own thread and
// calls the solver directly, so concurrently running evaluations on pool
// threads are never perturbed and injection is deterministic by
// construction.  Production code pays one thread-local bool load per hook
// when disarmed.
//
// Batch/flow-level injection (the chaos harness) is a second mechanism,
// scoped to the current core::ExecutionContext: a seeded BatchFaultPlan
// armed once for a whole batch, with every decision a pure function of
// (seed, jobIndex, site, occurrence).
// The thread_local plan above cannot express this — under the
// work-stealing pool the thread that runs job i varies with thread count,
// so thread-scoped counters would make injection schedule-dependent.
// Instead each job's runner declares "this thread is now executing job i"
// (BatchFaultScope) and the per-job occurrence counters live in that
// scope, making the fault sequence a property of the job, invariant under
// AMSYN_THREADS.
//
// Scoping rule for solver-level sites: batch faults reach the DC/AC/LU
// hooks only inside a SolverFaultWindow, which the flow opens around its
// *serial* verification measurements.  The sizing optimizer's inner
// evaluations run under nested parallelFor loops where the set of indices
// the job thread happens to execute depends on scheduling; injecting there
// would break thread-count invariance, and those paths are already covered
// by the thread_local plans plus deterministic work budgets.
#pragma once

#include <cstddef>
#include <cstdint>

#include "core/evalstatus.hpp"

namespace amsyn::sim {

/// What to break, counted in solver events from the moment of arming.
struct FaultPlan {
  /// Force the next N calls to the DC Newton solver to fail as singular
  /// (each continuation rung makes one or more such calls, so N=1 forces
  /// plain Newton onto the gmin rung and N=2 pushes through to source
  /// stepping).
  std::uint64_t failDcNewtonSolves = 0;
  /// Poison the next N DC residual assemblies with a NaN entry (exercises
  /// the NaN guard that bails to the next continuation rung immediately).
  std::uint64_t poisonDcResiduals = 0;
  /// Force the next N AC/transient LU factorizations to be treated as
  /// singular.
  std::uint64_t failLuFactorizations = 0;
  /// > 0: after N successful budget charges, every further charge reports
  /// exhaustion regardless of the budget's real limit (exercises the
  /// BudgetExhausted path at a precise iterate, even mid-evaluation).
  std::uint64_t exhaustBudgetAfter = 0;
  bool useExhaustBudget = false;  ///< exhaustBudgetAfter == 0 means "immediately"
};

class FaultInjector {
 public:
  /// The calling thread's injector.  (Named for what it is — a thread_local
  /// slot, not a process singleton; the context lint bans `::instance()`
  /// spellings in production code.)
  static FaultInjector& threadLocal();

  void arm(const FaultPlan& plan);
  void disarm();
  bool armed() const { return armed_; }

  // --- hooks consulted by the solvers (each consumes one planned event) ---
  bool takeDcNewtonFailure();   ///< sim/dc.cpp, once per Newton solve call
  bool takeResidualPoison();    ///< sim/dc.cpp, once per residual assembly
  bool takeLuFailure();         ///< sim/ac.cpp + sim/transient.cpp factorizations
  bool takeBudgetExhaustion();  ///< consumeWork(), once per charge

 private:
  FaultPlan plan_;
  bool armed_ = false;
};

/// RAII arming for tests: faults active for the scope's lifetime.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(const FaultPlan& plan) {
    FaultInjector::threadLocal().arm(plan);
  }
  ~ScopedFaultInjection() { FaultInjector::threadLocal().disarm(); }

  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;
};

// ---------------------------------------------------------------------------
// Batch-level deterministic fault schedule (chaos harness)

/// Injection points the batch schedule can perturb.  Solver sites fire only
/// inside a SolverFaultWindow (see file comment); flow sites are consulted
/// directly by the flow engine and job queue.
enum class FaultSite : std::uint8_t {
  DcNewton = 0,    ///< force a DC Newton solve singular
  DcResidual,      ///< poison a DC residual assembly with NaN
  LuFactor,        ///< force an AC/transient LU factorization singular
  BudgetCharge,    ///< report budget exhaustion on a work charge
  StageRun,        ///< fail a flow stage outright (internal_error)
  DeadlineCheck,   ///< report deadline expiry at a stage boundary
  JobTask,         ///< throw from the job task before its flow starts
  kCount,
};

inline constexpr std::size_t kFaultSiteCount =
    static_cast<std::size_t>(FaultSite::kCount);

/// Per-site injection probabilities for one seeded batch schedule.  Every
/// draw is the SplitMix64 finalizer over (seed, jobIndex, site, occurrence)
/// mapped to [0, 1) — a pure function, so the fault sequence each job sees
/// is identical at any thread count, with or without the eval cache, and
/// reproducible across runs.
struct BatchFaultPlan {
  std::uint64_t seed = 1;
  double rates[kFaultSiteCount] = {};  ///< indexed by FaultSite

  double& rate(FaultSite s) { return rates[static_cast<std::size_t>(s)]; }
  double rate(FaultSite s) const { return rates[static_cast<std::size_t>(s)]; }
};

/// Arm/disarm the *current ExecutionContext's* batch schedule.  Code with
/// no installed context arms the ambient context — the old process-wide
/// behavior — while a job context created under an armed ancestor inherits
/// its schedule (takeBatchFault walks the parent chain), and sibling
/// contexts never see each other's plans.  Arming is not thread-safe
/// against in-flight jobs: arm before the batch fans out, disarm after it
/// drains (RAII: ScopedBatchFaults).
void armBatchFaults(const BatchFaultPlan& plan);
void disarmBatchFaults();
bool batchFaultsArmed();

/// RAII batch-schedule arming for tests and the chaos soak harness.
class ScopedBatchFaults {
 public:
  explicit ScopedBatchFaults(const BatchFaultPlan& plan) { armBatchFaults(plan); }
  ~ScopedBatchFaults() { disarmBatchFaults(); }
  ScopedBatchFaults(const ScopedBatchFaults&) = delete;
  ScopedBatchFaults& operator=(const ScopedBatchFaults&) = delete;
};

/// "This thread is now executing batch job `jobIndex`": binds the job's
/// occurrence counters to the calling thread for the scope's lifetime.
/// Nesting restores the outer scope on destruction.  Job-level retries run
/// inside one scope, so their occurrence counters continue across attempts
/// — a retry deterministically sees fresh draws.
class BatchFaultScope {
 public:
  explicit BatchFaultScope(std::size_t jobIndex);
  ~BatchFaultScope();
  BatchFaultScope(const BatchFaultScope&) = delete;
  BatchFaultScope& operator=(const BatchFaultScope&) = delete;

 private:
  void* saved_ = nullptr;  ///< outer scope's state (opaque)
};

/// Opens the solver-level sites (DcNewton/DcResidual/LuFactor/BudgetCharge)
/// to the batch schedule on the calling thread.  The flow's verify stages
/// hold one around their serial measurements; everything else leaves the
/// solver hooks untouched by batch faults.
class SolverFaultWindow {
 public:
  SolverFaultWindow();
  ~SolverFaultWindow();
  SolverFaultWindow(const SolverFaultWindow&) = delete;
  SolverFaultWindow& operator=(const SolverFaultWindow&) = delete;

 private:
  bool saved_ = false;
};

/// Draw the (jobIndex, site, occurrence++) decision for the calling
/// thread's job scope.  False when the schedule is disarmed, no scope is
/// bound, or — for solver sites — no SolverFaultWindow is open.
bool takeBatchFault(FaultSite site);

/// Charge `units` against an (optional) budget, honoring injected
/// exhaustion.  All analysis loops fund their work through this helper so
/// the budget semantics — and the injector — act at every analysis kind.
bool consumeWork(core::EvalBudget* budget, std::uint64_t units = 1);

/// Taxonomy code for a failed consumeWork(): DeadlineExpired when the
/// budget's wall-clock deadline tripped, BudgetExhausted otherwise
/// (including injected exhaustion and external cancellation).
inline core::EvalStatus budgetStopStatus(const core::EvalBudget* budget) {
  return budget ? budget->exhaustionStatus() : core::EvalStatus::BudgetExhausted;
}

}  // namespace amsyn::sim
