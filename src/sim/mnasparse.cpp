#include "sim/mnasparse.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace amsyn::sim {

using circuit::Device;
using circuit::DeviceType;
using circuit::kGround;
using circuit::MosOp;
using circuit::NodeId;

namespace {
constexpr std::size_t kNoRow = std::numeric_limits<std::size_t>::max();
}  // namespace

SparseMna::SparseMna(const Mna& mna) : mna_(mna), n_(mna.size()) {
  const auto& devs = mna_.netlist().devices();
  num::CscBuilder bld(n_);
  auto row = [&](NodeId nd) {
    return nd == kGround ? kNoRow : static_cast<std::size_t>(nd) - 1;
  };
  auto reg = [&](std::size_t r, std::size_t c) {
    return (r == kNoRow || c == kNoRow) ? kNoRow : bld.add(r, c);
  };
  auto makeTwoNode = [&](NodeId a, NodeId b) {
    TwoNodeStamp t;
    t.a = a;
    t.b = b;
    t.fa = row(a);
    t.fb = row(b);
    t.jaa = reg(t.fa, t.fa);
    t.jab = reg(t.fa, t.fb);
    t.jbb = reg(t.fb, t.fb);
    t.jba = reg(t.fb, t.fa);
    return t;
  };

  // Register the union pattern: DC + transient companion + AC C-matrix
  // stamps for every device, so one structure serves every analysis mode
  // (unused positions assemble to explicit zeros, like the dense matrix).
  for (std::size_t k = 0; k < devs.size(); ++k) {
    const Device& d = devs[k];
    switch (d.type) {
      case DeviceType::Resistor: {
        ResistorRec r;
        r.s = makeTwoNode(d.nodes[0], d.nodes[1]);
        r.g = 1.0 / d.value;
        recs_.push_back({d.type, resistors_.size()});
        resistors_.push_back(r);
        break;
      }
      case DeviceType::Capacitor: {
        CapacitorRec c;
        c.s = makeTwoNode(d.nodes[0], d.nodes[1]);
        c.dev = k;
        c.value = d.value;
        recs_.push_back({d.type, capacitors_.size()});
        capacitors_.push_back(c);
        break;
      }
      case DeviceType::Diode: {
        DiodeRec r;
        r.s = makeTwoNode(d.nodes[0], d.nodes[1]);
        r.isat = d.diodeIs;
        recs_.push_back({d.type, diodes_.size()});
        diodes_.push_back(r);
        break;
      }
      case DeviceType::Inductor: {
        InductorRec L;
        L.dev = k;
        L.a = d.nodes[0];
        L.b = d.nodes[1];
        L.fa = row(L.a);
        L.fb = row(L.b);
        L.br = mna_.branchIndex(k);
        L.jabr = reg(L.fa, L.br);
        L.jbbr = reg(L.fb, L.br);
        L.jbra = reg(L.br, L.fa);
        L.jbrb = reg(L.br, L.fb);
        L.jbrbr = reg(L.br, L.br);
        L.value = d.value;
        recs_.push_back({d.type, inductors_.size()});
        inductors_.push_back(L);
        break;
      }
      case DeviceType::VSource: {
        VSourceRec V;
        V.dev = k;
        V.p = d.nodes[0];
        V.m = d.nodes[1];
        V.fp = row(V.p);
        V.fm = row(V.m);
        V.br = mna_.branchIndex(k);
        V.jpbr = reg(V.fp, V.br);
        V.jmbr = reg(V.fm, V.br);
        V.jbrp = reg(V.br, V.fp);
        V.jbrm = reg(V.br, V.fm);
        recs_.push_back({d.type, vsources_.size()});
        vsources_.push_back(V);
        break;
      }
      case DeviceType::ISource: {
        ISourceRec I;
        I.dev = k;
        I.fa = row(d.nodes[0]);
        I.fb = row(d.nodes[1]);
        recs_.push_back({d.type, isources_.size()});
        isources_.push_back(I);
        break;
      }
      case DeviceType::Vcvs: {
        VcvsRec E;
        E.dev = k;
        E.p = d.nodes[0];
        E.m = d.nodes[1];
        E.cp = d.nodes[2];
        E.cm = d.nodes[3];
        E.fp = row(E.p);
        E.fm = row(E.m);
        E.br = mna_.branchIndex(k);
        E.jpbr = reg(E.fp, E.br);
        E.jmbr = reg(E.fm, E.br);
        E.jbrp = reg(E.br, E.fp);
        E.jbrm = reg(E.br, E.fm);
        E.jbrcp = reg(E.br, row(E.cp));
        E.jbrcm = reg(E.br, row(E.cm));
        recs_.push_back({d.type, vcvs_.size()});
        vcvs_.push_back(E);
        break;
      }
      case DeviceType::Vccs: {
        VccsRec G;
        G.cp = d.nodes[2];
        G.cm = d.nodes[3];
        G.fp = row(d.nodes[0]);
        G.fm = row(d.nodes[1]);
        G.jpcp = reg(G.fp, row(G.cp));
        G.jpcm = reg(G.fp, row(G.cm));
        G.jmcp = reg(G.fm, row(G.cp));
        G.jmcm = reg(G.fm, row(G.cm));
        G.value = d.value;
        recs_.push_back({d.type, vccs_.size()});
        vccs_.push_back(G);
        break;
      }
      case DeviceType::Mos: {
        MosRec m;
        m.dev = k;
        const NodeId nd = d.nodes[0], ng = d.nodes[1], ns = d.nodes[2], nb = d.nodes[3];
        m.fd = row(nd);
        m.fs = row(ns);
        const NodeId terms[4] = {nd, ng, ns, nb};
        for (int t = 0; t < 4; ++t) {
          m.jd[t] = reg(m.fd, row(terms[t]));
          m.js[t] = reg(m.fs, row(terms[t]));
        }
        m.caps[0] = makeTwoNode(ng, ns);
        m.caps[1] = makeTwoNode(ng, nd);
        m.caps[2] = makeTwoNode(ng, nb);
        m.caps[3] = makeTwoNode(nd, nb);
        m.caps[4] = makeTwoNode(ns, nb);
        recs_.push_back({d.type, mos_.size()});
        mos_.push_back(m);
        break;
      }
    }
  }
  std::vector<std::size_t> gminHandles;
  gminHandles.reserve(mna_.nodeUnknowns());
  for (std::size_t i = 0; i < mna_.nodeUnknowns(); ++i) gminHandles.push_back(bld.add(i, i));

  a_ = bld.finalize<double>(slotOf_);
  gminSlots_.reserve(gminHandles.size());
  for (std::size_t h : gminHandles) gminSlots_.push_back(slotOf_[h]);

  core::cache::Hasher128 h;
  h.mixString("mna-pattern");
  h.mix(n_);
  for (std::size_t p : a_.colPtr) h.mix(p);
  for (std::size_t r : a_.row) h.mix(r);
  digest_ = h.digest();
}

void SparseMna::assemble(const num::VecD& x, const AssemblyOptions& opt, bool wantJacobian,
                         num::VecD* residual) {
  if (x.size() != n_) throw std::invalid_argument("SparseMna::assemble: state size mismatch");
  const auto& devs = mna_.netlist().devices();
  const bool transient = opt.time >= 0.0;
  const double vtherm = mna_.process().kT() / 1.602176634e-19;
  auto v = [&](NodeId nd) { return mna_.nodeVoltage(x, nd); };

  // ---- Phase 1: batched device-model evaluation (struct of arrays). ----
  // All model math runs here over contiguous per-type arrays; the stamping
  // pass below only performs adds.  Evaluation order across devices is free
  // (the models are pure functions), accumulation order is not.
  resCur_.resize(resistors_.size());
  for (std::size_t i = 0; i < resistors_.size(); ++i) {
    const ResistorRec& r = resistors_[i];
    resCur_[i] = r.g * (v(r.s.a) - v(r.s.b));
  }
  dioCur_.resize(diodes_.size());
  dioCond_.resize(diodes_.size());
  for (std::size_t i = 0; i < diodes_.size(); ++i) {
    const DiodeRec& r = diodes_[i];
    detail::diodeEval(v(r.s.a) - v(r.s.b), r.isat, vtherm, dioCur_[i], dioCond_[i]);
  }
  mosOp_.resize(mos_.size());
  if (wantJacobian) mosDidv_.resize(mos_.size() * 4);
  for (std::size_t i = 0; i < mos_.size(); ++i) {
    const Device& d = devs[mos_[i].dev];
    const double vd = v(d.nodes[0]), vg = v(d.nodes[1]), vs = v(d.nodes[2]),
                 vb = v(d.nodes[3]);
    mosOp_[i] = circuit::evalMos(d.mos, mna_.process(), vd, vg, vs, vb);
    if (wantJacobian) {
      // Central differences, exactly as the dense assembler computes them.
      constexpr double kH = 1e-6;
      const double volts[4] = {vd, vg, vs, vb};
      for (int t = 0; t < 4; ++t) {
        double vp[4] = {volts[0], volts[1], volts[2], volts[3]};
        double vm[4] = {volts[0], volts[1], volts[2], volts[3]};
        vp[t] += kH;
        vm[t] -= kH;
        const double ip =
            circuit::evalMos(d.mos, mna_.process(), vp[0], vp[1], vp[2], vp[3]).ids;
        const double im =
            circuit::evalMos(d.mos, mna_.process(), vm[0], vm[1], vm[2], vm[3]).ids;
        mosDidv_[i * 4 + t] = (ip - im) / (2.0 * kH);
      }
    }
  }

  // ---- Phase 2: stamping in netlist declaration order. ----
  // Every slot and residual row receives the same adds in the same order as
  // the dense assembler, so the assembled values are bit-identical.
  if (wantJacobian) std::fill(a_.val.begin(), a_.val.end(), 0.0);
  if (residual) residual->assign(n_, 0.0);
  auto addA = [&](std::size_t h, double val) {
    if (wantJacobian && h != kNoRow) a_.val[slotOf_[h]] += val;
  };
  auto addF = [&](std::size_t r, double val) {
    if (residual && r != kNoRow) (*residual)[r] += val;
  };
  auto stampTwoNode = [&](const TwoNodeStamp& t, double i, double g) {
    addF(t.fa, i);
    addF(t.fb, -i);
    addA(t.jaa, g);
    addA(t.jab, -g);
    addA(t.jbb, g);
    addA(t.jba, -g);
  };
  auto companion = [&](std::size_t dev, std::size_t slot, double cap, double vNow,
                       double& geq, double& i) {
    const std::size_t key = (dev << 3) | slot;
    const CompanionState st =
        opt.companions && opt.companions->count(key) ? opt.companions->at(key)
                                                     : CompanionState{};
    const double h = opt.timestep;
    if (opt.trapezoidal) {
      geq = 2.0 * cap / h;
      i = geq * (vNow - st.prevV) - st.prevI;
    } else {
      geq = cap / h;
      i = geq * (vNow - st.prevV);
    }
  };

  for (const Rec& rec : recs_) {
    switch (rec.type) {
      case DeviceType::Resistor: {
        const ResistorRec& r = resistors_[rec.idx];
        stampTwoNode(r.s, resCur_[rec.idx], r.g);
        break;
      }
      case DeviceType::Capacitor: {
        if (!transient) break;  // open at DC
        const CapacitorRec& c = capacitors_[rec.idx];
        double geq, i;
        companion(c.dev, 7, c.value, v(c.s.a) - v(c.s.b), geq, i);
        stampTwoNode(c.s, i, geq);
        break;
      }
      case DeviceType::Diode: {
        const DiodeRec& r = diodes_[rec.idx];
        stampTwoNode(r.s, dioCur_[rec.idx], dioCond_[rec.idx]);
        break;
      }
      case DeviceType::Inductor: {
        const InductorRec& L = inductors_[rec.idx];
        const double i = x[L.br];
        addF(L.fa, i);
        addF(L.fb, -i);
        addA(L.jabr, 1.0);
        addA(L.jbbr, -1.0);
        if (!transient) {
          addF(L.br, v(L.a) - v(L.b));  // short at DC
          addA(L.jbra, 1.0);
          addA(L.jbrb, -1.0);
        } else {
          const std::size_t key = (L.dev << 3) | 6;
          const CompanionState st =
              opt.companions && opt.companions->count(key) ? opt.companions->at(key)
                                                           : CompanionState{};
          const double h = opt.timestep;
          const double req = (opt.trapezoidal ? 2.0 : 1.0) * L.value / h;
          const double extra = opt.trapezoidal ? -st.prevI : 0.0;
          addF(L.br, v(L.a) - v(L.b) - req * (x[L.br] - st.prevV) - extra);
          addA(L.jbra, 1.0);
          addA(L.jbrb, -1.0);
          addA(L.jbrbr, -req);
        }
        break;
      }
      case DeviceType::VSource: {
        const VSourceRec& V = vsources_[rec.idx];
        addF(V.fp, x[V.br]);
        addF(V.fm, -x[V.br]);
        addA(V.jpbr, 1.0);
        addA(V.jmbr, -1.0);
        const Device& d = devs[V.dev];
        const double val = transient ? d.waveform.at(opt.time) : d.value * opt.sourceScale;
        addF(V.br, v(V.p) - v(V.m) - val);
        addA(V.jbrp, 1.0);
        addA(V.jbrm, -1.0);
        break;
      }
      case DeviceType::ISource: {
        const ISourceRec& I = isources_[rec.idx];
        const Device& d = devs[I.dev];
        const double val = transient ? d.waveform.at(opt.time) : d.value * opt.sourceScale;
        addF(I.fa, val);
        addF(I.fb, -val);
        break;
      }
      case DeviceType::Vcvs: {
        const VcvsRec& E = vcvs_[rec.idx];
        addF(E.fp, x[E.br]);
        addF(E.fm, -x[E.br]);
        addA(E.jpbr, 1.0);
        addA(E.jmbr, -1.0);
        const Device& d = devs[E.dev];
        addF(E.br, v(E.p) - v(E.m) - d.value * (v(E.cp) - v(E.cm)));
        addA(E.jbrp, 1.0);
        addA(E.jbrm, -1.0);
        addA(E.jbrcp, -d.value);
        addA(E.jbrcm, d.value);
        break;
      }
      case DeviceType::Vccs: {
        const VccsRec& G = vccs_[rec.idx];
        const double i = G.value * (v(G.cp) - v(G.cm));
        addF(G.fp, i);
        addF(G.fm, -i);
        addA(G.jpcp, G.value);
        addA(G.jpcm, -G.value);
        addA(G.jmcp, -G.value);
        addA(G.jmcm, G.value);
        break;
      }
      case DeviceType::Mos: {
        const MosRec& m = mos_[rec.idx];
        const MosOp& op = mosOp_[rec.idx];
        addF(m.fd, op.ids);
        addF(m.fs, -op.ids);
        if (wantJacobian) {
          for (int t = 0; t < 4; ++t) {
            const double didv = mosDidv_[rec.idx * 4 + t];
            addA(m.jd[t], didv);
            addA(m.js[t], -didv);
          }
        }
        if (transient && opt.companions) {
          const double caps[5] = {op.cgs, op.cgd, op.cgb, op.cdb, op.csb};
          for (std::size_t cc = 0; cc < 5; ++cc) {
            const TwoNodeStamp& s = m.caps[cc];
            double geq, i;
            companion(m.dev, cc, caps[cc], v(s.a) - v(s.b), geq, i);
            stampTwoNode(s, i, geq);
          }
        }
        break;
      }
    }
  }

  if (opt.gmin > 0.0) {
    for (std::size_t i = 0; i < mna_.nodeUnknowns(); ++i) {
      if (residual) (*residual)[i] += opt.gmin * x[i];
      if (wantJacobian) a_.val[gminSlots_[i]] += opt.gmin;
    }
  }
}

void SparseMna::acValues(const num::VecD& xOp, std::vector<double>& gVals,
                         std::vector<double>& cVals, num::VecD& b) {
  const auto& devs = mna_.netlist().devices();
  AssemblyOptions opt;
  opt.gmin = 1e-12;
  assemble(xOp, opt, true, nullptr);
  gVals = a_.val;

  cVals.assign(a_.val.size(), 0.0);
  b.assign(n_, 0.0);
  auto addC = [&](const TwoNodeStamp& t, double cap) {
    if (t.fa != kNoRow) cVals[slotOf_[t.jaa]] += cap;
    if (t.fb != kNoRow) cVals[slotOf_[t.jbb]] += cap;
    if (t.fa != kNoRow && t.fb != kNoRow) {
      cVals[slotOf_[t.jab]] -= cap;
      cVals[slotOf_[t.jba]] -= cap;
    }
  };
  for (const Rec& rec : recs_) {
    switch (rec.type) {
      case DeviceType::Capacitor:
        addC(capacitors_[rec.idx].s, capacitors_[rec.idx].value);
        break;
      case DeviceType::Inductor: {
        const InductorRec& L = inductors_[rec.idx];
        cVals[slotOf_[L.jbrbr]] -= L.value;
        break;
      }
      case DeviceType::Mos: {
        // The phase-1 batch of the assemble() above evaluated every MOS at
        // xOp already; reuse those operating points (bit-identical to a
        // fresh evalMos — the model is a pure function).
        const MosRec& m = mos_[rec.idx];
        const MosOp& op = mosOp_[rec.idx];
        addC(m.caps[0], op.cgs);
        addC(m.caps[1], op.cgd);
        addC(m.caps[2], op.cgb);
        addC(m.caps[3], op.cdb);
        addC(m.caps[4], op.csb);
        break;
      }
      case DeviceType::VSource: {
        const VSourceRec& V = vsources_[rec.idx];
        b[V.br] += devs[V.dev].acMag;
        break;
      }
      case DeviceType::ISource: {
        const ISourceRec& I = isources_[rec.idx];
        const double mag = devs[I.dev].acMag;
        if (I.fa != kNoRow) b[I.fa] -= mag;
        if (I.fb != kNoRow) b[I.fb] += mag;
        break;
      }
      default:
        break;
    }
  }
}

}  // namespace amsyn::sim
