#include "sim/dc.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace amsyn::sim {

namespace {

/// One damped Newton solve at fixed (sourceScale, gmin).  Returns convergence
/// and leaves the iterate in x.
bool newtonSolve(const Mna& mna, num::VecD& x, double sourceScale, double gmin,
                 const DcOptions& opts, std::size_t& iterationsOut) {
  const std::size_t n = mna.size();
  num::MatrixD jac(n, n);
  num::VecD f(n);
  for (std::size_t it = 0; it < opts.maxIterations; ++it) {
    AssemblyOptions aopt;
    aopt.sourceScale = sourceScale;
    aopt.gmin = gmin;
    mna.assemble(x, aopt, &jac, &f);

    num::VecD dx;
    try {
      dx = num::LUD(jac).solve(f);
    } catch (const std::runtime_error&) {
      return false;  // singular Jacobian: let the continuation ladder retry
    }
    // Damped update with per-unknown clamping (SPICE-style voltage limiting).
    double maxDx = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double step = -dx[i];
      step = std::clamp(step, -opts.maxStep, opts.maxStep);
      x[i] += step;
      maxDx = std::max(maxDx, std::abs(step));
    }
    ++iterationsOut;
    if (maxDx < opts.vAbsTol) {
      // Confirm with the residual at the accepted point.
      mna.assemble(x, aopt, nullptr, &f);
      if (num::normInf(f) < opts.absTol) return true;
    }
  }
  return false;
}

}  // namespace

DcResult dcOperatingPoint(const Mna& mna, const DcOptions& opts) {
  return dcOperatingPoint(mna, num::VecD(mna.size(), 0.0), opts);
}

num::VecD flatStart(const Mna& mna, double nodeVoltage) {
  num::VecD x(mna.size(), 0.0);
  for (std::size_t i = 0; i < mna.nodeUnknowns(); ++i) x[i] = nodeVoltage;
  return x;
}

DcResult dcOperatingPoint(const Mna& mna, const num::VecD& x0, const DcOptions& opts) {
  DcResult res;
  res.x = x0;
  if (res.x.size() != mna.size()) res.x.assign(mna.size(), 0.0);
  const num::VecD start = res.x;  // continuation rungs restart from here

  // Rung 1: plain Newton with a small safety gmin.
  if (newtonSolve(mna, res.x, 1.0, 1e-12, opts, res.iterations)) {
    res.converged = true;
    res.strategy = "newton";
    return res;
  }

  // Rung 2: gmin stepping — start heavily damped, relax geometrically.
  if (opts.allowGminStepping) {
    res.x = start;
    bool ok = true;
    for (double gmin = 1e-2; gmin >= 1e-12; gmin *= 1e-2) {
      if (!newtonSolve(mna, res.x, 1.0, gmin, opts, res.iterations)) {
        ok = false;
        break;
      }
    }
    if (ok && newtonSolve(mna, res.x, 1.0, 1e-12, opts, res.iterations)) {
      res.converged = true;
      res.strategy = "gmin";
      return res;
    }
  }

  // Rung 3: source stepping — ramp all independent sources from 10%.
  if (opts.allowSourceStepping) {
    res.x = start;
    bool ok = true;
    for (double scale : {0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
      if (!newtonSolve(mna, res.x, scale, 1e-9, opts, res.iterations)) {
        ok = false;
        break;
      }
    }
    if (ok && newtonSolve(mna, res.x, 1.0, 1e-12, opts, res.iterations)) {
      res.converged = true;
      res.strategy = "source";
      return res;
    }
  }

  res.converged = false;
  return res;
}

std::vector<std::pair<double, double>> dcTransfer(const Mna& mna,
                                                  const std::string& sourceName, double from,
                                                  double to, std::size_t points,
                                                  const std::string& outputNode) {
  if (points < 2) throw std::invalid_argument("dcTransfer: need >= 2 points");
  // Work on a copy of the netlist so the sweep can modify the source value.
  Netlist net = mna.netlist();
  circuit::Device* src = net.findDevice(sourceName);
  if (!src) throw std::invalid_argument("dcTransfer: no source " + sourceName);
  const auto outNode = net.findNode(outputNode);
  if (!outNode) throw std::invalid_argument("dcTransfer: no node " + outputNode);

  std::vector<std::pair<double, double>> curve;
  Mna localMna(net, mna.process());
  num::VecD warm(localMna.size(), 0.0);
  bool haveWarm = false;
  for (std::size_t i = 0; i < points; ++i) {
    const double val = from + (to - from) * static_cast<double>(i) /
                                  static_cast<double>(points - 1);
    src->value = val;
    src->waveform.v1 = val;
    DcResult r = haveWarm ? dcOperatingPoint(localMna, warm) : dcOperatingPoint(localMna);
    if (!r.converged) continue;
    warm = r.x;
    haveWarm = true;
    curve.emplace_back(val, localMna.nodeVoltage(r.x, *outNode));
  }
  return curve;
}

double sourceCurrent(const Mna& mna, const DcResult& op, const std::string& sourceName) {
  const auto& devs = mna.netlist().devices();
  for (std::size_t k = 0; k < devs.size(); ++k) {
    if (devs[k].name != sourceName) continue;
    if (devs[k].type != circuit::DeviceType::VSource)
      throw std::invalid_argument("sourceCurrent: " + sourceName + " is not a V source");
    // Branch current is defined flowing + -> - through the source; the
    // source *delivers* -i from its + terminal.
    return -op.x.at(mna.branchIndex(k));
  }
  throw std::invalid_argument("sourceCurrent: no device " + sourceName);
}

}  // namespace amsyn::sim
