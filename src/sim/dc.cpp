#include "sim/dc.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>

#include "core/metrics.hpp"
#include "core/trace.hpp"
#include "sim/fault.hpp"
#include "sim/solver.hpp"
#include "sim/stats.hpp"

namespace amsyn::sim {

using core::EvalStatus;

namespace {

/// How one damped Newton solve ended.
enum class NewtonOutcome {
  Converged,
  NoConvergence,  ///< iteration limit hit with finite iterates
  Singular,       ///< LU factorization failed
  Nan,            ///< NaN/Inf in residual or update — bailed immediately
  Budget,         ///< work budget exhausted or evaluation cancelled
};

bool allFinite(const num::VecD& v) {
  for (double e : v)
    if (!std::isfinite(e)) return false;
  return true;
}

/// One damped Newton solve at fixed (sourceScale, gmin).  Returns the
/// outcome and leaves the iterate in x.  Charges one budget unit per
/// iteration.  A NaN/Inf residual or update aborts right away — burning the
/// remaining maxIterations on poisoned iterates cannot recover and only
/// wastes the budget the continuation ladder still needs.
///
/// With a SparseNewtonContext the Jacobian solve runs through the sparse
/// fast path (bit-identical by construction; see sim/mnasparse.hpp); a
/// tripped fill/growth guard falls back to the dense kernel mid-iteration
/// without disturbing the iterate.
NewtonOutcome newtonSolve(const Mna& mna, SparseNewtonContext* sparse, num::VecD& x,
                          double sourceScale, double gmin, const DcOptions& opts,
                          std::size_t& iterationsOut) {
  FaultInjector& inj = FaultInjector::threadLocal();
  if (inj.takeDcNewtonFailure()) return NewtonOutcome::Singular;

  const std::size_t n = mna.size();
  num::MatrixD jac;  // sized on first dense assemble; stays empty when sparse
  num::VecD f(n);
  for (std::size_t it = 0; it < opts.maxIterations; ++it) {
    if (!consumeWork(opts.budget)) return NewtonOutcome::Budget;
    AssemblyOptions aopt;
    aopt.sourceScale = sourceScale;
    aopt.gmin = gmin;

    num::VecD dx;
    bool haveDx = false;
    if (sparse && !sparse->solver.fellBack()) {
      sparse->sys.assemble(x, aopt, true, &f);
      if (inj.takeResidualPoison())
        f[0] = std::numeric_limits<double>::quiet_NaN();
      if (!allFinite(f)) return NewtonOutcome::Nan;
      const SparseFactorOutcome fo = sparse->solver.factor(sparse->sys.csc());
      if (fo == SparseFactorOutcome::Ok) {
        dx = sparse->solver.solve(f);
        haveDx = true;
      } else if (fo == SparseFactorOutcome::Singular) {
        return NewtonOutcome::Singular;  // dense LU would throw here too
      } else {
        // Guard tripped: finish this iteration dense (f is already
        // assembled and poison-checked; only the matrix is needed).
        mna.assemble(x, aopt, &jac, nullptr);
        try {
          dx = num::LUD(jac).solve(f);
        } catch (const std::runtime_error&) {
          return NewtonOutcome::Singular;
        }
        haveDx = true;
      }
    }
    if (!haveDx) {
      mna.assemble(x, aopt, &jac, &f);
      if (inj.takeResidualPoison())
        f[0] = std::numeric_limits<double>::quiet_NaN();
      if (!allFinite(f)) return NewtonOutcome::Nan;
      try {
        dx = num::LUD(jac).solve(f);
      } catch (const std::runtime_error&) {
        return NewtonOutcome::Singular;  // let the continuation ladder retry
      }
    }
    if (!allFinite(dx)) return NewtonOutcome::Nan;
    // Damped update with per-unknown clamping (SPICE-style voltage limiting).
    double maxDx = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      double step = -dx[i];
      step = std::clamp(step, -opts.maxStep, opts.maxStep);
      x[i] += step;
      maxDx = std::max(maxDx, std::abs(step));
    }
    ++iterationsOut;
    static const auto cIters =
        core::metrics::registry().counter("sim.newton_iterations");
    core::metrics::add(cIters);
    if (maxDx < opts.vAbsTol) {
      // Confirm with the residual at the accepted point.
      if (sparse && !sparse->solver.fellBack())
        sparse->sys.assemble(x, aopt, false, &f);
      else
        mna.assemble(x, aopt, nullptr, &f);
      const double r = num::normInf(f);
      if (!std::isfinite(r)) return NewtonOutcome::Nan;
      if (r < opts.absTol) return NewtonOutcome::Converged;
    }
  }
  return NewtonOutcome::NoConvergence;
}

/// Reason code for a ladder that died with this outcome.  The budget is
/// consulted to split the two exhaustion flavors (deterministic work units
/// vs wall-clock deadline) — the deadline flavor is transient/retryable.
EvalStatus outcomeStatus(NewtonOutcome o, const DcOptions& opts) {
  switch (o) {
    case NewtonOutcome::Singular: return EvalStatus::SingularJacobian;
    case NewtonOutcome::Nan: return EvalStatus::NanDetected;
    case NewtonOutcome::Budget: return budgetStopStatus(opts.budget);
    default: return EvalStatus::DcNoConvergence;
  }
}

}  // namespace

DcResult dcOperatingPoint(const Mna& mna, const DcOptions& opts) {
  return dcOperatingPoint(mna, num::VecD(mna.size(), 0.0), opts);
}

num::VecD flatStart(const Mna& mna, double nodeVoltage) {
  num::VecD x(mna.size(), 0.0);
  for (std::size_t i = 0; i < mna.nodeUnknowns(); ++i) x[i] = nodeVoltage;
  return x;
}

DcResult dcOperatingPoint(const Mna& mna, const num::VecD& x0, const DcOptions& opts) {
  AMSYN_SPAN("dc_solve");
  static const auto cSolves = core::metrics::registry().counter("sim.dc_solves");
  core::metrics::add(cSolves);
  DcResult res;
  res.x = x0;
  if (res.x.size() != mna.size()) res.x.assign(mna.size(), 0.0);
  const num::VecD start = res.x;  // continuation rungs restart from here

  // One sparse context for the whole continuation ladder: every rung shares
  // the Jacobian structure, so the symbolic analysis is paid at most once
  // (and usually zero times — the process-wide pattern cache serves it).
  std::unique_ptr<SparseNewtonContext> sparseCtx;
  if (useSparseSolver(mna.size())) sparseCtx = std::make_unique<SparseNewtonContext>(mna);
  SparseNewtonContext* sp = sparseCtx.get();

  auto succeed = [&](const char* strategy, DcStrategy tally) {
    res.converged = true;
    res.status = EvalStatus::Ok;
    res.strategy = strategy;
    recordDcStrategy(tally);
  };

  // Rung 1: plain Newton with a small safety gmin.
  NewtonOutcome out = newtonSolve(mna, sp, res.x, 1.0, 1e-12, opts, res.iterations);
  if (out == NewtonOutcome::Converged) {
    succeed("newton", DcStrategy::Newton);
    return res;
  }
  res.status = outcomeStatus(out, opts);  // remember the most recent failure mode
  if (out == NewtonOutcome::Budget) {
    recordEvalFailure(res.status);
    return res;  // the ladder shares the budget; nothing left to climb with
  }

  // Rung 2: gmin stepping — start heavily damped, relax geometrically.
  if (opts.allowGminStepping) {
    res.x = start;
    bool ok = true;
    for (double gmin = 1e-2; gmin >= 1e-12; gmin *= 1e-2) {
      out = newtonSolve(mna, sp, res.x, 1.0, gmin, opts, res.iterations);
      if (out != NewtonOutcome::Converged) {
        ok = false;
        break;
      }
    }
    if (ok) out = newtonSolve(mna, sp, res.x, 1.0, 1e-12, opts, res.iterations);
    if (ok && out == NewtonOutcome::Converged) {
      succeed("gmin", DcStrategy::Gmin);
      return res;
    }
    res.status = outcomeStatus(out, opts);
    if (out == NewtonOutcome::Budget) {
      recordEvalFailure(res.status);
      return res;
    }
  }

  // Rung 3: source stepping — ramp all independent sources from 10%.
  if (opts.allowSourceStepping) {
    res.x = start;
    bool ok = true;
    for (double scale : {0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
      out = newtonSolve(mna, sp, res.x, scale, 1e-9, opts, res.iterations);
      if (out != NewtonOutcome::Converged) {
        ok = false;
        break;
      }
    }
    if (ok) out = newtonSolve(mna, sp, res.x, 1.0, 1e-12, opts, res.iterations);
    if (ok && out == NewtonOutcome::Converged) {
      succeed("source", DcStrategy::Source);
      return res;
    }
    res.status = outcomeStatus(out, opts);
  }

  res.converged = false;
  recordEvalFailure(res.status);
  return res;
}

DcTransferResult dcTransfer(const Mna& mna, const std::string& sourceName, double from,
                            double to, std::size_t points, const std::string& outputNode,
                            const DcOptions& opts) {
  if (points < 2) throw std::invalid_argument("dcTransfer: need >= 2 points");
  // Work on a copy of the netlist so the sweep can modify the source value.
  Netlist net = mna.netlist();
  circuit::Device* src = net.findDevice(sourceName);
  if (!src) throw std::invalid_argument("dcTransfer: no source " + sourceName);
  const auto outNode = net.findNode(outputNode);
  if (!outNode) throw std::invalid_argument("dcTransfer: no node " + outputNode);

  DcTransferResult res;
  res.requested = points;
  Mna localMna(net, mna.process());
  num::VecD warm(localMna.size(), 0.0);
  bool haveWarm = false;
  for (std::size_t i = 0; i < points; ++i) {
    const double val = from + (to - from) * static_cast<double>(i) /
                                  static_cast<double>(points - 1);
    src->value = val;
    src->waveform.v1 = val;
    DcResult r =
        haveWarm ? dcOperatingPoint(localMna, warm, opts) : dcOperatingPoint(localMna, opts);
    if (core::isWorkExhaustion(r.status)) {
      // The remaining points share the same exhausted budget/deadline:
      // stop instead of charging a failed ladder climb per point.
      res.skipped += points - i;
      res.status = r.status;
      break;
    }
    if (!r.converged) {
      ++res.skipped;
      continue;
    }
    warm = r.x;
    haveWarm = true;
    res.curve.emplace_back(val, localMna.nodeVoltage(r.x, *outNode));
  }
  return res;
}

double sourceCurrent(const Mna& mna, const DcResult& op, const std::string& sourceName) {
  const auto& devs = mna.netlist().devices();
  for (std::size_t k = 0; k < devs.size(); ++k) {
    if (devs[k].name != sourceName) continue;
    if (devs[k].type != circuit::DeviceType::VSource)
      throw std::invalid_argument("sourceCurrent: " + sourceName + " is not a V source");
    // Branch current is defined flowing + -> - through the source; the
    // source *delivers* -i from its + terminal.
    return -op.x.at(mna.branchIndex(k));
  }
  throw std::invalid_argument("sourceCurrent: no device " + sourceName);
}

}  // namespace amsyn::sim
