#include "sim/ac.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "core/metrics.hpp"
#include "core/trace.hpp"
#include "sim/fault.hpp"
#include "sim/stats.hpp"

namespace amsyn::sim {

AcSolver::AcSolver(const Mna& mna, const DcResult& op) {
  if (!op.converged) throw std::invalid_argument("AcSolver: operating point not converged");
  n_ = mna.size();
  if (useSparseSolver(n_)) {
    // The stamp plan is only needed to extract (G, C, b) values and the
    // pattern; it need not outlive the constructor.
    SparseMna sys(mna);
    sys.acValues(op.x, gVals_, cVals_, b_);
    aC_.n = n_;
    aC_.colPtr = sys.csc().colPtr;
    aC_.row = sys.csc().row;
    aC_.val.assign(aC_.row.size(), {0.0, 0.0});
    sparse_ = std::make_unique<SparsePatternSolver<std::complex<double>>>(
        sys.patternDigest(), "ac");
  } else {
    mna.acMatrices(op.x, g_, c_, b_);
  }
}

const num::LUC& AcSolver::factorAt(double frequency) {
  if (lu_ && frequency == cachedFrequency_) {
    recordLuReuse();
    return *lu_;
  }
  if (FaultInjector::threadLocal().takeLuFailure())
    throw std::runtime_error("injected singular LU");
  const double w = 2.0 * M_PI * frequency;
  num::MatrixC a(n_, n_);
  for (std::size_t i = 0; i < n_; ++i)
    for (std::size_t j = 0; j < n_; ++j) a(i, j) = {g_(i, j), w * c_(i, j)};
  lu_.emplace(std::move(a));
  cachedFrequency_ = frequency;
  recordLuFactorization();
  return *lu_;
}

void AcSolver::sparseFactorAt(double frequency) {
  if (sparseFactored_ && frequency == cachedFrequency_) {
    recordLuReuse();
    return;
  }
  if (FaultInjector::threadLocal().takeLuFailure())
    throw std::runtime_error("injected singular LU");
  const double w = 2.0 * M_PI * frequency;
  for (std::size_t k = 0; k < aC_.val.size(); ++k) aC_.val[k] = {gVals_[k], w * cVals_[k]};
  const SparseFactorOutcome fo = sparse_->factor(aC_);
  if (fo == SparseFactorOutcome::Ok) {
    cachedFrequency_ = frequency;
    sparseFactored_ = true;
    recordLuFactorization();
    return;
  }
  if (fo == SparseFactorOutcome::Singular)
    throw std::runtime_error("LU: singular matrix");  // dense kernel's throw
  // Guard tripped: demote to the dense path for the rest of this solver's
  // life.  Scatter the sparse (G, C) values into dense matrices — entries
  // outside the pattern are structurally zero, so this reproduces
  // Mna::acMatrices exactly.
  g_ = num::MatrixD(n_, n_);
  c_ = num::MatrixD(n_, n_);
  for (std::size_t col = 0; col < n_; ++col)
    for (std::size_t k = aC_.colPtr[col]; k < aC_.colPtr[col + 1]; ++k) {
      g_(aC_.row[k], col) = gVals_[k];
      c_(aC_.row[k], col) = cVals_[k];
    }
  sparseFactored_ = false;
}

num::VecC AcSolver::solve(double frequency, const num::VecC& rhs) {
  if (sparseActive()) {
    sparseFactorAt(frequency);
    if (sparseFactored_) return sparse_->solve(rhs);
  }
  return factorAt(frequency).solve(rhs);
}

num::VecC AcSolver::solveTransposed(double frequency, const num::VecC& rhs) {
  if (sparseActive()) {
    sparseFactorAt(frequency);
    if (sparseFactored_) return sparse_->solveTransposed(rhs);
  }
  return factorAt(frequency).solveTransposed(rhs);
}

std::vector<num::VecC> AcSolver::solveBatch(const std::vector<double>& frequencies,
                                            const num::VecC& rhs) {
  std::vector<num::VecC> out;
  out.reserve(frequencies.size());
  for (double f : frequencies) out.push_back(solve(f, rhs));
  return out;
}

num::VecC AcSolver::stimulus() const {
  num::VecC rhs(n_);
  for (std::size_t i = 0; i < n_; ++i) rhs[i] = b_[i];
  return rhs;
}

double AcSweep::magnitudeDb(std::size_t i) const {
  return 20.0 * std::log10(std::max(std::abs(points.at(i).value), 1e-30));
}

double AcSweep::phaseDeg(std::size_t i) const {
  // Unwrap from the start of the sweep so phase margins read correctly.
  double prev = std::arg(points.at(0).value);
  double acc = prev;
  for (std::size_t k = 1; k <= i; ++k) {
    double ph = std::arg(points.at(k).value);
    while (ph - prev > M_PI) ph -= 2.0 * M_PI;
    while (ph - prev < -M_PI) ph += 2.0 * M_PI;
    acc = ph;
    prev = ph;
  }
  return acc * 180.0 / M_PI;
}

std::vector<double> logspace(double fStart, double fStop, std::size_t pointsPerDecade) {
  if (fStart <= 0 || fStop <= fStart || pointsPerDecade == 0)
    throw std::invalid_argument("logspace: bad range");
  std::vector<double> fs;
  const double decades = std::log10(fStop / fStart);
  const std::size_t n = static_cast<std::size_t>(std::ceil(decades * pointsPerDecade)) + 1;
  for (std::size_t i = 0; i < n; ++i)
    fs.push_back(fStart * std::pow(10.0, decades * static_cast<double>(i) /
                                             static_cast<double>(n - 1)));
  return fs;
}

AcSweep acAnalysis(const Mna& mna, const DcResult& op, const std::string& outputNode,
                   const std::vector<double>& frequencies, core::EvalBudget* budget) {
  if (!op.converged) throw std::invalid_argument("acAnalysis: operating point not converged");
  AMSYN_SPAN("ac_sweep");
  static const auto cSweeps = core::metrics::registry().counter("sim.ac_sweeps");
  static const auto cPoints = core::metrics::registry().counter("sim.ac_points");
  core::metrics::add(cSweeps);
  const auto outNode = mna.netlist().findNode(outputNode);
  if (!outNode) throw std::invalid_argument("acAnalysis: unknown node " + outputNode);
  const std::size_t outIdx = mna.nodeIndex(*outNode);
  if (outIdx == static_cast<std::size_t>(-1))
    throw std::invalid_argument("acAnalysis: output is ground");

  AcSolver solver(mna, op);
  const num::VecC rhs = solver.stimulus();

  AcSweep sweep;
  sweep.points.reserve(frequencies.size());
  for (double f : frequencies) {
    if (!consumeWork(budget)) {
      sweep.status = budgetStopStatus(budget);
      break;
    }
    num::VecC x;
    try {
      x = solver.solve(f, rhs);
    } catch (const std::runtime_error&) {
      // Singular (G + jwC) at this frequency: a pathological candidate, not
      // a programming error.  Return what was solved with the reason.
      sweep.status = core::EvalStatus::SingularJacobian;
      break;
    }
    if (!std::isfinite(x[outIdx].real()) || !std::isfinite(x[outIdx].imag())) {
      sweep.status = core::EvalStatus::NanDetected;
      break;
    }
    sweep.points.push_back({f, x[outIdx]});
  }
  if (sweep.status != core::EvalStatus::Ok) recordEvalFailure(sweep.status);
  core::metrics::add(cPoints, sweep.points.size());
  return sweep;
}

std::complex<double> acTransfer(const Mna& mna, const DcResult& op,
                                const std::string& outputNode, double frequency) {
  const AcSweep sweep = acAnalysis(mna, op, outputNode, {frequency});
  if (sweep.points.empty()) {
    const double nan = std::numeric_limits<double>::quiet_NaN();
    return {nan, nan};  // status already tallied by acAnalysis
  }
  return sweep.points.at(0).value;
}

}  // namespace amsyn::sim
