// Performance extraction from analysis results — the bridge between raw
// simulation and the specification-driven synthesis loop.  These are the
// measurements every surveyed sizing tool optimizes: gain, unity-gain
// frequency, phase margin, bandwidth, slew rate, settling, power, swing.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "sim/ac.hpp"
#include "sim/dc.hpp"
#include "sim/transient.hpp"

namespace amsyn::sim {

/// Low-frequency gain in dB (taken from the first sweep point).
double dcGainDb(const AcSweep& sweep);

/// Frequency where |H| crosses 1 (0 dB), log-interpolated; nullopt if the
/// sweep never crosses.
std::optional<double> unityGainFrequency(const AcSweep& sweep);

/// Phase margin in degrees: 180 + phase at the unity-gain frequency.
std::optional<double> phaseMarginDeg(const AcSweep& sweep);

/// -3 dB bandwidth relative to the dc gain; nullopt if not reached.
std::optional<double> bandwidth3dB(const AcSweep& sweep);

/// Gain at a specific frequency (dB), log-interpolated on the sweep grid.
double gainDbAt(const AcSweep& sweep, double frequency);

/// Maximum |dv/dt| over a waveform (V/s) — slew-rate measurement on a
/// large-signal step response.
double maxSlewRate(const std::vector<double>& time, const std::vector<double>& wave);

/// Time at which the waveform enters and stays inside target +/- tolerance.
std::optional<double> settlingTime(const std::vector<double>& time,
                                   const std::vector<double>& wave, double target,
                                   double tolerance);

/// Time of the waveform's peak value (pulse-shaping "peaking time").
double peakTime(const std::vector<double>& time, const std::vector<double>& wave);

/// Static power drawn from all DC voltage sources (W).
double staticPower(const Mna& mna, const DcResult& op);

/// Output swing: the span of output voltages over a DC-transfer sweep where
/// the incremental gain exceeds `gainFraction` of its peak.
struct SwingResult {
  double low = 0.0;
  double high = 0.0;
  /// False when the transfer curve had too few converged points to measure
  /// a swing; `low`/`high` are then meaningless and `describe()` explains
  /// how much of the sweep was lost.
  bool valid = true;
  std::size_t unconvergedPoints = 0;  ///< sweep points dropped by dcTransfer
  std::size_t requestedPoints = 0;    ///< sweep points asked for

  /// "N of M sweep points unconverged" style diagnostic for reports.
  std::string describe() const;
};
SwingResult outputSwing(const std::vector<std::pair<double, double>>& transfer,
                        double gainFraction = 0.25);

/// Swing from a DcTransferResult: never throws — an unusable curve (fewer
/// than 3 converged points) yields {valid: false} carrying the
/// skipped/requested counts so callers report "N of M points unconverged"
/// instead of dying on a bare exception.
SwingResult outputSwing(const DcTransferResult& transfer, double gainFraction = 0.25);

/// Power-supply rejection ratio at `frequency` (dB): differential gain from
/// the source named `inputSource` over the gain from the source named
/// `supplySource` to the output.  Runs two AC analyses on copies of the
/// netlist with the AC stimulus moved between the two sources.
std::optional<double> psrrDb(const circuit::Netlist& net, const circuit::Process& proc,
                             const std::string& outputNode, double frequency,
                             const std::string& inputSource = "VINP",
                             const std::string& supplySource = "VDD");

}  // namespace amsyn::sim
