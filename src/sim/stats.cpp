#include "sim/stats.hpp"

namespace amsyn::sim {

namespace {
thread_local SimStats tlStats;
FailureStats gFailureStats;
}  // namespace

SimStats& simStats() { return tlStats; }

void resetSimStats() { tlStats = SimStats{}; }

FailureStats& failureStats() { return gFailureStats; }

void resetFailureStats() {
  for (auto& c : gFailureStats.byReason) c.store(0, std::memory_order_relaxed);
  gFailureStats.strategyNewton.store(0, std::memory_order_relaxed);
  gFailureStats.strategyGmin.store(0, std::memory_order_relaxed);
  gFailureStats.strategySource.store(0, std::memory_order_relaxed);
}

void recordEvalFailure(core::EvalStatus reason) {
  if (reason == core::EvalStatus::Ok || reason == core::EvalStatus::kCount) return;
  gFailureStats.byReason[static_cast<std::size_t>(reason)].fetch_add(
      1, std::memory_order_relaxed);
}

std::uint64_t evalFailureCount(core::EvalStatus reason) {
  return gFailureStats.byReason[static_cast<std::size_t>(reason)].load(
      std::memory_order_relaxed);
}

}  // namespace amsyn::sim
