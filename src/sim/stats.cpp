#include "sim/stats.hpp"

namespace amsyn::sim {

namespace {
thread_local SimStats tlStats;
}

SimStats& simStats() { return tlStats; }

void resetSimStats() { tlStats = SimStats{}; }

}  // namespace amsyn::sim
