#include "sim/stats.hpp"

#include <string>

#include "core/metrics.hpp"

namespace amsyn::sim {

namespace {

namespace metrics = core::metrics;

struct LuCounters {
  metrics::CounterId factorizations;
  metrics::CounterId reuses;
};

const LuCounters& luCounters() {
  static const LuCounters ids{
      metrics::Registry::instance().counter("sim.lu_factorizations"),
      metrics::Registry::instance().counter("sim.lu_reuses")};
  return ids;
}

FailureStats gFailureStats;

/// Surface the legacy global atomics through the registry as external
/// counters, once per process.  Instantiated lazily from failureStats() and
/// recordEvalFailure() so the registration cannot race static init order.
struct FailureExternals {
  FailureExternals() {
    auto& reg = metrics::Registry::instance();
    for (std::size_t i = 1; i < core::kEvalStatusCount; ++i) {
      const auto reason = static_cast<core::EvalStatus>(i);
      reg.registerExternal(std::string("sim.fail.") + core::evalStatusName(reason),
                           [i] {
                             return gFailureStats.byReason[i].load(
                                 std::memory_order_relaxed);
                           });
    }
    reg.registerExternal("sim.strategy.newton", [] {
      return gFailureStats.strategyNewton.load(std::memory_order_relaxed);
    });
    reg.registerExternal("sim.strategy.gmin", [] {
      return gFailureStats.strategyGmin.load(std::memory_order_relaxed);
    });
    reg.registerExternal("sim.strategy.source", [] {
      return gFailureStats.strategySource.load(std::memory_order_relaxed);
    });
  }
};

void ensureFailureExternals() { static FailureExternals once; }

// Per-thread baselines for the legacy simStats() view: the registry shard is
// monotonic, so "reset" is a baseline capture, not a zeroing.
thread_local SimStats tlBase;
thread_local SimStats tlView;

std::uint64_t sinceBase(std::uint64_t current, std::uint64_t base) {
  // A metrics::Registry::reset() between baseline and read can make the
  // shard value run behind the baseline; saturate instead of wrapping.
  return current >= base ? current - base : current;
}

}  // namespace

void recordLuFactorization() { metrics::add(luCounters().factorizations); }

void recordLuReuse() { metrics::add(luCounters().reuses); }

SimStats& simStats() {
  auto& reg = metrics::Registry::instance();
  tlView.luFactorizations =
      sinceBase(reg.threadValue(luCounters().factorizations), tlBase.luFactorizations);
  tlView.luReuses = sinceBase(reg.threadValue(luCounters().reuses), tlBase.luReuses);
  return tlView;
}

void resetSimStats() {
  auto& reg = metrics::Registry::instance();
  tlBase.luFactorizations = reg.threadValue(luCounters().factorizations);
  tlBase.luReuses = reg.threadValue(luCounters().reuses);
  tlView = SimStats{};
}

SimStats totalSimStats() {
  auto& reg = metrics::Registry::instance();
  SimStats total;
  total.luFactorizations = reg.total(luCounters().factorizations);
  total.luReuses = reg.total(luCounters().reuses);
  return total;
}

FailureStats& failureStats() {
  ensureFailureExternals();
  return gFailureStats;
}

void resetFailureStats() {
  for (auto& c : gFailureStats.byReason) c.store(0, std::memory_order_relaxed);
  gFailureStats.strategyNewton.store(0, std::memory_order_relaxed);
  gFailureStats.strategyGmin.store(0, std::memory_order_relaxed);
  gFailureStats.strategySource.store(0, std::memory_order_relaxed);
}

void recordEvalFailure(core::EvalStatus reason) {
  if (reason == core::EvalStatus::Ok || reason == core::EvalStatus::kCount) return;
  ensureFailureExternals();
  gFailureStats.byReason[static_cast<std::size_t>(reason)].fetch_add(
      1, std::memory_order_relaxed);
}

std::uint64_t evalFailureCount(core::EvalStatus reason) {
  return gFailureStats.byReason[static_cast<std::size_t>(reason)].load(
      std::memory_order_relaxed);
}

}  // namespace amsyn::sim
