#include "sim/stats.hpp"

#include <array>
#include <atomic>
#include <string>

#include "core/metrics.hpp"

namespace amsyn::sim {

namespace {

namespace metrics = core::metrics;

struct LuCounters {
  metrics::CounterId factorizations;
  metrics::CounterId reuses;
};

const LuCounters& luCounters() {
  static const LuCounters ids{metrics::registry().counter("sim.lu_factorizations"),
                              metrics::registry().counter("sim.lu_reuses")};
  return ids;
}

constexpr std::size_t kStrategyCount = 3;

/// First-class registry ids for the failure taxonomy, registered as one
/// block on first use (lazy, so registration cannot race static init
/// order; eager within the block, so the report counter key-set never
/// depends on which reasons actually fired).
struct FailureCounters {
  std::array<metrics::CounterId, core::kEvalStatusCount> byReason{};
  std::array<metrics::CounterId, kStrategyCount> strategies{};
};

const FailureCounters& failureCounters() {
  static const FailureCounters ids = [] {
    auto& reg = metrics::registry();
    FailureCounters c;
    for (std::size_t i = 1; i < core::kEvalStatusCount; ++i) {
      const auto reason = static_cast<core::EvalStatus>(i);
      c.byReason[i] =
          reg.counter(std::string("sim.fail.") + core::evalStatusName(reason));
    }
    c.strategies[static_cast<std::size_t>(DcStrategy::Newton)] =
        reg.counter("sim.strategy.newton");
    c.strategies[static_cast<std::size_t>(DcStrategy::Gmin)] =
        reg.counter("sim.strategy.gmin");
    c.strategies[static_cast<std::size_t>(DcStrategy::Source)] =
        reg.counter("sim.strategy.source");
    return c;
  }();
  return ids;
}

/// resetFailureStats() baselines — the registry is monotonic, so "reset" is
/// a process-wide baseline capture for the delta reads below.
struct FailureBaselines {
  std::array<std::atomic<std::uint64_t>, core::kEvalStatusCount> byReason{};
  std::array<std::atomic<std::uint64_t>, kStrategyCount> strategies{};
};

FailureBaselines gFailureBase;

// Per-thread baselines for the legacy simStats() view: the registry shard is
// monotonic, so "reset" is a baseline capture, not a zeroing.
thread_local SimStats tlBase;
thread_local SimStats tlView;

std::uint64_t sinceBase(std::uint64_t current, std::uint64_t base) {
  // A metrics::Registry::reset() between baseline and read can make the
  // shard value run behind the baseline; saturate instead of wrapping.
  return current >= base ? current - base : current;
}

}  // namespace

void recordLuFactorization() { metrics::add(luCounters().factorizations); }

void recordLuReuse() { metrics::add(luCounters().reuses); }

SimStats& simStats() {
  auto& reg = metrics::registry();
  tlView.luFactorizations =
      sinceBase(reg.threadValue(luCounters().factorizations), tlBase.luFactorizations);
  tlView.luReuses = sinceBase(reg.threadValue(luCounters().reuses), tlBase.luReuses);
  return tlView;
}

void resetSimStats() {
  auto& reg = metrics::registry();
  tlBase.luFactorizations = reg.threadValue(luCounters().factorizations);
  tlBase.luReuses = reg.threadValue(luCounters().reuses);
  tlView = SimStats{};
}

SimStats totalSimStats() {
  auto& reg = metrics::registry();
  SimStats total;
  total.luFactorizations = reg.total(luCounters().factorizations);
  total.luReuses = reg.total(luCounters().reuses);
  return total;
}

void recordDcStrategy(DcStrategy s) {
  metrics::add(failureCounters().strategies[static_cast<std::size_t>(s)]);
}

std::uint64_t dcStrategyCount(DcStrategy s) {
  const auto ix = static_cast<std::size_t>(s);
  return sinceBase(
      metrics::registry().total(failureCounters().strategies[ix]),
      gFailureBase.strategies[ix].load(std::memory_order_relaxed));
}

void recordEvalFailure(core::EvalStatus reason) {
  if (reason == core::EvalStatus::Ok || reason == core::EvalStatus::kCount) return;
  metrics::add(failureCounters().byReason[static_cast<std::size_t>(reason)]);
}

std::uint64_t evalFailureCount(core::EvalStatus reason) {
  const auto ix = static_cast<std::size_t>(reason);
  if (ix == 0 || ix >= core::kEvalStatusCount) return 0;
  return sinceBase(metrics::registry().total(failureCounters().byReason[ix]),
                   gFailureBase.byReason[ix].load(std::memory_order_relaxed));
}

void resetFailureStats() {
  const FailureCounters& ids = failureCounters();
  auto& reg = metrics::registry();
  for (std::size_t i = 1; i < core::kEvalStatusCount; ++i)
    gFailureBase.byReason[i].store(reg.total(ids.byReason[i]),
                                   std::memory_order_relaxed);
  for (std::size_t i = 0; i < kStrategyCount; ++i)
    gFailureBase.strategies[i].store(reg.total(ids.strategies[i]),
                                     std::memory_order_relaxed);
}

}  // namespace amsyn::sim
