// Small-signal AC analysis: solve (G + j w C) x = b over a frequency sweep,
// where (G, C, b) are the linearization produced by Mna::acMatrices at a DC
// operating point.
#pragma once

#include <complex>
#include <optional>
#include <string>
#include <vector>

#include "core/evalstatus.hpp"
#include "sim/dc.hpp"
#include "sim/mna.hpp"

namespace amsyn::sim {

struct AcPoint {
  double frequency = 0.0;                  ///< Hz
  std::complex<double> value{0.0, 0.0};    ///< output-node phasor
};

struct AcSweep {
  /// Ok, or why the sweep stopped early (SingularJacobian at some frequency,
  /// NanDetected in a solution, BudgetExhausted).  `points` then holds the
  /// frequencies solved before the failure; measurement helpers treat a
  /// short sweep as "no crossing found".
  core::EvalStatus status = core::EvalStatus::Ok;
  std::vector<AcPoint> points;

  double magnitudeDb(std::size_t i) const;
  double phaseDeg(std::size_t i) const;  ///< unwrapped phase in degrees
};

/// Logarithmic frequency grid.
std::vector<double> logspace(double fStart, double fStop, std::size_t pointsPerDecade);

/// Frequency-domain solver bound to one (netlist, operating point) pair.
/// Holds the linearized (G, C, b) triple and caches the LU of
/// A(w) = G + j w C, re-factoring only when the requested frequency differs
/// from the cached one — A's values are a pure function of w once (G, C)
/// are fixed.  Repeated spot analyses, the forward + adjoint solves of the
/// noise analysis, and duplicate sweep points all share one factorization.
/// Traffic is recorded in sim/stats.hpp.
class AcSolver {
 public:
  AcSolver(const Mna& mna, const DcResult& op);

  /// Solve A(w) x = rhs at frequency f (Hz).
  num::VecC solve(double frequency, const num::VecC& rhs);

  /// Solve A(w)^T x = rhs (adjoint analyses, e.g. noise).
  num::VecC solveTransposed(double frequency, const num::VecC& rhs);

  /// RHS built from the netlist's independent-source AC magnitudes.
  num::VecC stimulus() const;

  std::size_t size() const { return n_; }

 private:
  const num::LUC& factorAt(double frequency);

  num::MatrixD g_, c_;
  num::VecD b_;
  std::size_t n_ = 0;
  double cachedFrequency_ = 0.0;
  std::optional<num::LUC> lu_;
};

/// AC sweep of the voltage at `outputNode`.  The stimulus is whatever AC
/// magnitudes are present on the netlist's sources.  A singular linearized
/// system or a non-finite solution ends the sweep early with the reason in
/// AcSweep::status instead of throwing.  The optional budget is charged one
/// unit per frequency point.
AcSweep acAnalysis(const Mna& mna, const DcResult& op, const std::string& outputNode,
                   const std::vector<double>& frequencies,
                   core::EvalBudget* budget = nullptr);

/// Single-frequency transfer to an output node.
std::complex<double> acTransfer(const Mna& mna, const DcResult& op,
                                const std::string& outputNode, double frequency);

}  // namespace amsyn::sim
