// Small-signal AC analysis: solve (G + j w C) x = b over a frequency sweep,
// where (G, C, b) are the linearization produced by Mna::acMatrices at a DC
// operating point.
#pragma once

#include <complex>
#include <string>
#include <vector>

#include "sim/dc.hpp"
#include "sim/mna.hpp"

namespace amsyn::sim {

struct AcPoint {
  double frequency = 0.0;                  ///< Hz
  std::complex<double> value{0.0, 0.0};    ///< output-node phasor
};

struct AcSweep {
  std::vector<AcPoint> points;

  double magnitudeDb(std::size_t i) const;
  double phaseDeg(std::size_t i) const;  ///< unwrapped phase in degrees
};

/// Logarithmic frequency grid.
std::vector<double> logspace(double fStart, double fStop, std::size_t pointsPerDecade);

/// AC sweep of the voltage at `outputNode`.  The stimulus is whatever AC
/// magnitudes are present on the netlist's sources.
AcSweep acAnalysis(const Mna& mna, const DcResult& op, const std::string& outputNode,
                   const std::vector<double>& frequencies);

/// Single-frequency transfer to an output node.
std::complex<double> acTransfer(const Mna& mna, const DcResult& op,
                                const std::string& outputNode, double frequency);

}  // namespace amsyn::sim
