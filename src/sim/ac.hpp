// Small-signal AC analysis: solve (G + j w C) x = b over a frequency sweep,
// where (G, C, b) are the linearization produced by Mna::acMatrices at a DC
// operating point.
#pragma once

#include <complex>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/evalstatus.hpp"
#include "sim/dc.hpp"
#include "sim/mna.hpp"
#include "sim/solver.hpp"

namespace amsyn::sim {

struct AcPoint {
  double frequency = 0.0;                  ///< Hz
  std::complex<double> value{0.0, 0.0};    ///< output-node phasor
};

struct AcSweep {
  /// Ok, or why the sweep stopped early (SingularJacobian at some frequency,
  /// NanDetected in a solution, BudgetExhausted).  `points` then holds the
  /// frequencies solved before the failure; measurement helpers treat a
  /// short sweep as "no crossing found".
  core::EvalStatus status = core::EvalStatus::Ok;
  std::vector<AcPoint> points;

  double magnitudeDb(std::size_t i) const;
  double phaseDeg(std::size_t i) const;  ///< unwrapped phase in degrees
};

/// Logarithmic frequency grid.
std::vector<double> logspace(double fStart, double fStop, std::size_t pointsPerDecade);

/// Frequency-domain solver bound to one (netlist, operating point) pair.
/// Holds the linearized (G, C, b) triple and caches the factorization of
/// A(w) = G + j w C, re-factoring only when the requested frequency differs
/// from the cached one — A's values are a pure function of w once (G, C)
/// are fixed.  Repeated spot analyses, the forward + adjoint solves of the
/// noise analysis, and duplicate sweep points all share one factorization.
/// Traffic is recorded in sim/stats.hpp.
///
/// When the solver knob picks the sparse path (sim/solver.hpp), (G, C) live
/// as value vectors over the netlist's fixed sparsity pattern and each
/// frequency point is a numeric refactor against one shared symbolic
/// analysis — the batched-solve shape: an n-point sweep is one analysis
/// plus n refactor+solve passes.  Results are bit-identical to the dense
/// kernel; a tripped fill/growth guard scatters (G, C) into dense matrices
/// and the sweep continues on the dense path.
class AcSolver {
 public:
  AcSolver(const Mna& mna, const DcResult& op);

  /// Solve A(w) x = rhs at frequency f (Hz).
  num::VecC solve(double frequency, const num::VecC& rhs);

  /// Solve A(w)^T x = rhs (adjoint analyses, e.g. noise).
  num::VecC solveTransposed(double frequency, const num::VecC& rhs);

  /// Batched structure-identical solves: one solution per frequency for a
  /// shared RHS.  On the sparse path all points flow through one symbolic
  /// analysis with per-point numeric refactors.  Throws like solve() on a
  /// singular system.
  std::vector<num::VecC> solveBatch(const std::vector<double>& frequencies,
                                    const num::VecC& rhs);

  /// RHS built from the netlist's independent-source AC magnitudes.
  num::VecC stimulus() const;

  std::size_t size() const { return n_; }

 private:
  const num::LUC& factorAt(double frequency);
  bool sparseActive() const { return sparse_ && !sparse_->fellBack(); }
  /// Refactor the sparse A(w); throws on singular, demotes to dense on a
  /// guard trip (after which sparseActive() is false).
  void sparseFactorAt(double frequency);

  num::MatrixD g_, c_;
  num::VecD b_;
  std::size_t n_ = 0;
  double cachedFrequency_ = 0.0;
  std::optional<num::LUC> lu_;

  // Sparse mode: fixed pattern with (G, C) value vectors and the complex
  // working matrix whose values are {g, w c} per frequency.
  std::vector<double> gVals_, cVals_;
  num::CscMatrix<std::complex<double>> aC_;
  std::unique_ptr<SparsePatternSolver<std::complex<double>>> sparse_;
  bool sparseFactored_ = false;
};

/// AC sweep of the voltage at `outputNode`.  The stimulus is whatever AC
/// magnitudes are present on the netlist's sources.  A singular linearized
/// system or a non-finite solution ends the sweep early with the reason in
/// AcSweep::status instead of throwing.  The optional budget is charged one
/// unit per frequency point.
AcSweep acAnalysis(const Mna& mna, const DcResult& op, const std::string& outputNode,
                   const std::vector<double>& frequencies,
                   core::EvalBudget* budget = nullptr);

/// Single-frequency transfer to an output node.
std::complex<double> acTransfer(const Mna& mna, const DcResult& op,
                                const std::string& outputNode, double frequency);

}  // namespace amsyn::sim
