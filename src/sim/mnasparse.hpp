// Sparse MNA assembly: a fixed stamp plan over the union sparsity pattern
// of one Mna system, with struct-of-arrays device evaluation.
//
// SparseMna is the sparse twin of Mna::assemble / Mna::acMatrices.  At
// construction it walks the netlist once, registers every matrix position
// any analysis can touch — DC stamps, transient companion stamps, the AC
// C-matrix stamps, and the gmin diagonal — and freezes them into one CSC
// structure plus per-device slot handles.  Every subsequent assembly is
// two phases:
//
//   1. evaluation, batched per device type (struct-of-arrays): all MOS
//      model calls — the 9 evalMos invocations per device that dominate
//      assembly cost — run back to back over contiguous arrays, as do the
//      diode exponentials and resistor currents, instead of interleaving
//      with stamping in one big per-device switch;
//   2. stamping, in netlist declaration order with the exact add sequence
//      of the dense assembler, into precomputed value slots.
//
// Phase 2's ordering discipline is what keeps the sparse path bit-exact:
// every matrix entry and residual component is the same rounded sum of the
// same stamps in the same order the dense path produces, so a factorization
// that replays dense arithmetic (num::SparseLu, Natural ordering) yields
// bit-identical solutions.  The union pattern makes mode switches free —
// positions a given analysis does not use simply hold explicit zeros, which
// is also what the dense matrix holds there.
#pragma once

#include <cstddef>
#include <vector>

#include "core/evalcache.hpp"  // Hasher128 / Digest128 (header-only)
#include "numeric/sparse_lu.hpp"
#include "sim/mna.hpp"

namespace amsyn::sim {

class SparseMna {
 public:
  /// Builds the stamp plan.  Keeps a reference to `mna` (and through it the
  /// netlist): the SparseMna must not outlive either.
  explicit SparseMna(const Mna& mna);

  std::size_t size() const { return n_; }
  const Mna& mna() const { return mna_; }

  /// The fixed structure; `csc().val` holds the most recently assembled
  /// Jacobian values.
  const num::CscMatrix<double>& csc() const { return a_; }
  const std::vector<double>& values() const { return a_.val; }

  /// Digest of (n, colPtr, row) — the key under which structure-identical
  /// systems share one symbolic factorization (sim/solver.hpp).
  const core::cache::Digest128& patternDigest() const { return digest_; }

  /// Sparse analogue of Mna::assemble over the fixed pattern.  With
  /// wantJacobian the matrix values are refreshed in csc().val; residual
  /// (when non-null) is filled exactly as the dense assembler fills it.
  void assemble(const num::VecD& x, const AssemblyOptions& opt, bool wantJacobian,
                num::VecD* residual);

  /// Sparse analogue of Mna::acMatrices: G and C values over the same
  /// pattern plus the AC stimulus vector.
  void acValues(const num::VecD& xOp, std::vector<double>& gVals,
                std::vector<double>& cVals, num::VecD& b);

 private:
  struct TwoNodeStamp {  // conductance-style stamp between nodes a and b
    circuit::NodeId a = 0, b = 0;
    std::size_t fa = 0, fb = 0;                      // residual rows (kNoRow = ground)
    std::size_t jaa = 0, jab = 0, jbb = 0, jba = 0;  // slot handles
  };
  struct ResistorRec {
    TwoNodeStamp s;
    double g = 0.0;  // 1/R, fixed per netlist
  };
  struct CapacitorRec {
    TwoNodeStamp s;
    std::size_t dev = 0;
    double value = 0.0;
  };
  struct DiodeRec {
    TwoNodeStamp s;
    double isat = 0.0;
  };
  struct InductorRec {
    std::size_t dev = 0;
    circuit::NodeId a = 0, b = 0;
    std::size_t fa = 0, fb = 0, br = 0;
    std::size_t jabr = 0, jbbr = 0, jbra = 0, jbrb = 0, jbrbr = 0;
    double value = 0.0;
  };
  struct VSourceRec {
    std::size_t dev = 0;
    circuit::NodeId p = 0, m = 0;
    std::size_t fp = 0, fm = 0, br = 0;
    std::size_t jpbr = 0, jmbr = 0, jbrp = 0, jbrm = 0;
  };
  struct ISourceRec {
    std::size_t dev = 0;
    std::size_t fa = 0, fb = 0;
  };
  struct VcvsRec {
    std::size_t dev = 0;
    circuit::NodeId p = 0, m = 0, cp = 0, cm = 0;
    std::size_t fp = 0, fm = 0, br = 0;
    std::size_t jpbr = 0, jmbr = 0, jbrp = 0, jbrm = 0, jbrcp = 0, jbrcm = 0;
  };
  struct VccsRec {
    circuit::NodeId cp = 0, cm = 0;
    std::size_t fp = 0, fm = 0;
    std::size_t jpcp = 0, jpcm = 0, jmcp = 0, jmcm = 0;
    double value = 0.0;
  };
  struct MosRec {
    std::size_t dev = 0;
    std::size_t fd = 0, fs = 0;        // drain/source residual rows
    std::size_t jd[4] = {}, js[4] = {};  // rows {d, s} x terminals {d,g,s,b}
    TwoNodeStamp caps[5];              // gs, gd, gb, db, sb companion stamps
  };
  struct Rec {
    circuit::DeviceType type;
    std::size_t idx;  // into the per-type array
  };

  const Mna& mna_;
  std::size_t n_ = 0;
  num::CscMatrix<double> a_;
  std::vector<std::size_t> slotOf_;  // stamp handle -> value slot
  core::cache::Digest128 digest_;

  std::vector<Rec> recs_;  // declaration order
  std::vector<ResistorRec> resistors_;
  std::vector<CapacitorRec> capacitors_;
  std::vector<DiodeRec> diodes_;
  std::vector<InductorRec> inductors_;
  std::vector<VSourceRec> vsources_;
  std::vector<ISourceRec> isources_;
  std::vector<VcvsRec> vcvs_;
  std::vector<VccsRec> vccs_;
  std::vector<MosRec> mos_;
  std::vector<std::size_t> gminSlots_;  // node-diagonal slots

  // Phase-1 evaluation batches (struct of arrays), refreshed per assemble.
  std::vector<double> resCur_;                 // resistor currents
  std::vector<double> dioCur_, dioCond_;       // diode i, g
  std::vector<circuit::MosOp> mosOp_;          // model evaluation per MOS
  std::vector<double> mosDidv_;                // 4 derivatives per MOS
};

}  // namespace amsyn::sim
